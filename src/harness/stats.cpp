#include "harness/stats.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <sstream>

#include "core/types.hpp"

namespace vsg::harness {

namespace {
// Nearest-rank percentile on a sorted sample vector: the smallest sample
// such that at least q of the distribution is <= it, i.e. index
// ceil(q * n) - 1. The previous `n * 9 / 10` indexing overshot on small
// counts (n=10 returned the max as p90) and `n / 2` took the upper median.
sim::Time nearest_rank(const std::vector<sim::Time>& sorted, std::size_t num,
                       std::size_t den) {
  const std::size_t n = sorted.size();
  const std::size_t rank = (n * num + den - 1) / den;  // ceil(n * num / den), >= 1
  return sorted[rank - 1];
}
}  // namespace

LatencySummary summarize(std::vector<sim::Time> samples, std::size_t incomplete) {
  LatencySummary s;
  s.incomplete = incomplete;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = nearest_rank(samples, 1, 2);
  s.p90 = nearest_rank(samples, 9, 10);
  s.mean = static_cast<double>(std::accumulate(samples.begin(), samples.end(), sim::Time{0})) /
           static_cast<double>(samples.size());
  return s;
}

LatencySummary to_delivery_latency(const std::vector<trace::TimedEvent>& trace,
                                   const std::set<ProcId>& q, sim::Time from) {
  // Positional matching, exactly as in props/to_property.
  std::map<ProcId, std::vector<sim::Time>> bcasts;
  std::map<std::pair<ProcId, ProcId>, std::size_t> rcount;
  std::map<std::pair<ProcId, std::size_t>, std::map<ProcId, sim::Time>> delivs;
  for (const auto& te : trace) {
    if (const auto* e = trace::as<trace::BcastEvent>(te))
      bcasts[e->p].push_back(te.at);
    else if (const auto* e = trace::as<trace::BrcvEvent>(te)) {
      auto& k = rcount[{e->origin, e->dest}];
      delivs[{e->origin, k}].emplace(e->dest, te.at);
      ++k;
    }
  }
  std::vector<sim::Time> samples;
  std::size_t incomplete = 0;
  for (ProcId p : q) {
    const auto bit = bcasts.find(p);
    if (bit == bcasts.end()) continue;
    for (std::size_t k = 0; k < bit->second.size(); ++k) {
      const sim::Time t = bit->second[k];
      if (t < from) continue;
      const auto dit = delivs.find({p, k});
      sim::Time all = 0;
      bool complete = dit != delivs.end();
      if (complete)
        for (ProcId r : q) {
          const auto rt = dit->second.find(r);
          if (rt == dit->second.end()) {
            complete = false;
            break;
          }
          all = std::max(all, rt->second);
        }
      if (complete)
        samples.push_back(all - t);
      else
        ++incomplete;
    }
  }
  return summarize(std::move(samples), incomplete);
}

LatencySummary vs_safe_latency(const std::vector<trace::TimedEvent>& trace,
                               const std::set<ProcId>& q, int n, int n0, sim::Time from) {
  std::vector<std::optional<core::ViewId>> current(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n0; ++p)
    current[static_cast<std::size_t>(p)] = core::ViewId::initial();

  std::map<std::pair<core::ViewId, ProcId>, std::vector<sim::Time>> sends;
  std::map<std::tuple<core::ViewId, ProcId, ProcId>, std::size_t> scount;
  std::map<std::tuple<core::ViewId, ProcId, std::size_t>, std::map<ProcId, sim::Time>> safes;

  for (const auto& te : trace) {
    if (const auto* e = trace::as<trace::NewViewEvent>(te)) {
      if (e->p >= 0 && e->p < n) current[static_cast<std::size_t>(e->p)] = e->v.id;
    } else if (const auto* e = trace::as<trace::GpsndEvent>(te)) {
      const auto& cur = current[static_cast<std::size_t>(e->p)];
      if (cur.has_value()) sends[{*cur, e->p}].push_back(te.at);
    } else if (const auto* e = trace::as<trace::SafeEvent>(te)) {
      const auto& cur = current[static_cast<std::size_t>(e->dst)];
      if (!cur.has_value()) continue;
      auto& k = scount[{*cur, e->src, e->dst}];
      safes[{*cur, e->src, k}].emplace(e->dst, te.at);
      ++k;
    }
  }

  // Final views of the members of Q; measure only within the (unique) final
  // view whose membership is Q, matching the VS-property conclusion.
  std::vector<sim::Time> samples;
  std::size_t incomplete = 0;
  for (ProcId p : q) {
    const auto& cur = current[static_cast<std::size_t>(p)];
    if (!cur.has_value()) continue;
    const auto sit = sends.find({*cur, p});
    if (sit == sends.end()) continue;
    for (std::size_t k = 0; k < sit->second.size(); ++k) {
      const sim::Time t = sit->second[k];
      if (t < from) continue;
      const auto fit = safes.find({*cur, p, k});
      sim::Time all = 0;
      bool complete = fit != safes.end();
      if (complete)
        for (ProcId r : q) {
          const auto rt = fit->second.find(r);
          if (rt == fit->second.end()) {
            complete = false;
            break;
          }
          all = std::max(all, rt->second);
        }
      if (complete)
        samples.push_back(all - t);
      else
        ++incomplete;
    }
  }
  return summarize(std::move(samples), incomplete);
}

std::size_t deliveries_at(const std::vector<trace::TimedEvent>& trace, ProcId p,
                          sim::Time from, sim::Time to) {
  std::size_t count = 0;
  for (const auto& te : trace)
    if (const auto* e = trace::as<trace::BrcvEvent>(te))
      if (e->dest == p && te.at >= from && te.at < to) ++count;
  return count;
}

std::string fmt_time(sim::Time t) {
  std::ostringstream os;
  if (t >= 1000000)
    os << static_cast<double>(t) / 1e6 << "s";
  else if (t >= 1000)
    os << static_cast<double>(t) / 1e3 << "ms";
  else
    os << t << "us";
  return os.str();
}

std::string fmt_row(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    os << cells[i];
    const int pad = w - static_cast<int>(cells[i].size());
    for (int k = 0; k < pad; ++k) os << ' ';
    os << ' ';
  }
  return os.str();
}

}  // namespace vsg::harness
