#pragma once

// World: one fully assembled system — simulator, failure table, network,
// a VS back end (spec oracle or token ring), the VStoTO stack, and a trace
// recorder — plus convenience scheduling and checking entry points. Every
// test, bench and example builds one of these.

#include <memory>
#include <set>
#include <vector>

#include "core/quorum.hpp"
#include "membership/token_ring_vs.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "props/to_property.hpp"
#include "props/vs_property.hpp"
#include "sim/failure_table.hpp"
#include "sim/simulator.hpp"
#include "to/stack.hpp"
#include "trace/recorder.hpp"
#include "verify/derived.hpp"
#include "vs/spec_vs.hpp"

namespace vsg::harness {

enum class Backend {
  kSpec,      // SpecVS: VS-machine + partition oracle (reference)
  kTokenRing  // Section 8 protocol over the simulated network
};

struct WorldConfig {
  int n = 3;
  int n0 = -1;  // initial-view size; -1 means n
  Backend backend = Backend::kTokenRing;
  vs::SpecVSConfig spec_vs;
  membership::TokenRingConfig ring;
  net::LinkModel link;
  std::uint64_t seed = 1;
  /// Quorum system; defaults to majorities of n.
  std::shared_ptr<const core::QuorumSystem> quorums;
  /// Metrics registry every layer reports into; defaults to a fresh one
  /// per World. Pass a shared registry to accumulate across several runs
  /// (this is how benches build one BENCH_*.json from a parameter sweep).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Causal span tracing (off by default). When trace.enabled the World
  /// owns an obs::SpanTracer wired into every layer; export the result
  /// with write_chrome_trace(). Tracing never perturbs the protocol: fixed
  /// seeds produce bit-identical traces and counters either way.
  obs::TraceConfig trace;

  /// Rejects misconfiguration with std::invalid_argument: n <= 0, an
  /// explicit n0 outside [1, n], a quorum system no subset of {0..n-1} can
  /// ever satisfy (wrong universe), or non-positive ring timing
  /// parameters. Called by the World constructor; callers may invoke it
  /// early for a better error site.
  void validate() const;
};

class World {
 public:
  explicit World(WorldConfig config);

  int n() const noexcept { return config_.n; }
  int n0() const noexcept { return config_.n0; }
  const WorldConfig& config() const noexcept { return config_; }

  sim::Simulator& simulator() noexcept { return sim_; }
  sim::FailureTable& failures() noexcept { return failures_; }
  trace::Recorder& recorder() noexcept { return recorder_; }
  /// The registry all layers of this World report into (shared with other
  /// Worlds when WorldConfig::metrics was supplied).
  obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return *metrics_; }
  net::Network* network() noexcept { return net_.get(); }
  to::Stack& stack() noexcept { return *stack_; }
  vs::Service& vs() noexcept { return *vs_; }
  /// Non-null iff backend == kSpec.
  const vs::SpecVS* spec_vs() const noexcept { return spec_vs_; }
  /// Non-null iff backend == kTokenRing.
  const membership::TokenRingVS* token_ring() const noexcept { return ring_; }
  /// Non-null iff config().trace.enabled: the span tracer / flight recorder.
  obs::SpanTracer* tracer() noexcept { return tracer_.get(); }
  const obs::SpanTracer* tracer() const noexcept { return tracer_.get(); }

  /// Export the flight recorder as Chrome trace-event JSON (Perfetto-
  /// loadable); false when tracing is disabled or on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  // --- Scheduling helpers -----------------------------------------------------
  // All helpers validate their arguments eagerly (at schedule time, not when
  // the simulator fires the event) and throw std::invalid_argument with a
  // descriptive message, mirroring WorldConfig::validate(). partition_at is
  // strict: components must be non-empty, disjoint, within [0, n), and
  // together cover every processor — an explicit singleton {p} isolates p.
  void bcast_at(sim::Time t, ProcId p, core::Value a);
  void partition_at(sim::Time t, std::vector<std::set<ProcId>> components);
  void heal_at(sim::Time t);
  void proc_status_at(sim::Time t, ProcId p, sim::Status status);
  void link_status_at(sim::Time t, ProcId p, ProcId q, sim::Status status);

  /// The strict component-set check behind partition_at, usable standalone
  /// (the chaos schedule generator self-checks with it). Throws
  /// std::invalid_argument describing the first problem found.
  static void validate_partition(int n, const std::vector<std::set<ProcId>>& components);

  void run_until(sim::Time t) { sim_.run_until(t); }

  // --- Checking ----------------------------------------------------------------
  /// TOTraceChecker violations over the recorded trace.
  std::vector<std::string> check_to_safety() const;
  /// VSTraceChecker violations over the recorded trace.
  std::vector<std::string> check_vs_safety() const;

  props::TOPropertyReport to_report(const std::set<ProcId>& q, sim::Time d,
                                    sim::Time ignore_after = sim::kForever) const;
  props::VSPropertyReport vs_report(const std::set<ProcId>& q, sim::Time d,
                                    sim::Time ignore_after = sim::kForever) const;

  /// Global state for the verification layer. Only available with the spec
  /// back end (it owns the VS-machine); asserts otherwise.
  verify::GlobalState global_state() const;

 private:
  WorldConfig config_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  sim::Simulator sim_;
  sim::FailureTable failures_;
  trace::Recorder recorder_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<vs::Service> vs_;
  vs::SpecVS* spec_vs_ = nullptr;
  membership::TokenRingVS* ring_ = nullptr;
  std::unique_ptr<to::Stack> stack_;
  std::unique_ptr<obs::SpanTracer> tracer_;
};

}  // namespace vsg::harness
