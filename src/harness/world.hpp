#pragma once

// World: one fully assembled system — simulator, failure table, network,
// a VS back end (spec oracle or token ring), the VStoTO stack, and a trace
// recorder — plus convenience scheduling and checking entry points. Every
// test, bench and example builds one of these.

#include <cassert>
#include <memory>
#include <set>
#include <vector>

#include "core/quorum.hpp"
#include "membership/token_ring_vs.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "props/to_property.hpp"
#include "props/vs_property.hpp"
#include "sim/failure_table.hpp"
#include "sim/simulator.hpp"
#include "to/stack.hpp"
#include "trace/recorder.hpp"
#include "verify/derived.hpp"
#include "vs/spec_vs.hpp"

namespace vsg::harness {

enum class Backend {
  kSpec,      // SpecVS: VS-machine + partition oracle (reference)
  kTokenRing  // Section 8 protocol over the simulated network
};

/// Upper bound on WorldConfig::shards. A sanity rail, not a tuning limit:
/// scenario replays and campaign configs reject shard counts beyond it
/// loudly instead of silently building a degenerate World.
inline constexpr int kMaxShards = 64;

struct WorldConfig {
  int n = 3;
  int n0 = -1;  // initial-view size; -1 means n
  Backend backend = Backend::kTokenRing;
  vs::SpecVSConfig spec_vs;
  membership::TokenRingConfig ring;
  /// Number of independent VStoTO stacks (shards) sharing this World's one
  /// simulator, failure table and network. Each shard runs its own token
  /// ring on its own network port (frames never cross shards) and its own
  /// to::Stack; total order exists per shard, never across shards. 1 (the
  /// default) is the classic single-stack World and is bit-identical to the
  /// pre-shard harness on fixed seeds. K > 1 requires the token-ring
  /// backend.
  int shards = 1;
  /// Per-shard ring config overrides; empty means every shard runs `ring`.
  /// Size must equal `shards` when non-empty. The harness assigns each
  /// shard's network port (= shard index) itself, overriding any `port`
  /// set here.
  std::vector<membership::TokenRingConfig> shard_rings;
  net::LinkModel link;
  std::uint64_t seed = 1;
  /// Quorum system; defaults to majorities of n.
  std::shared_ptr<const core::QuorumSystem> quorums;
  /// Metrics registry every layer reports into; defaults to a fresh one
  /// per World. Pass a shared registry to accumulate across several runs
  /// (this is how benches build one BENCH_*.json from a parameter sweep).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Causal span tracing (off by default). When trace.enabled the World
  /// owns an obs::SpanTracer wired into every layer; export the result
  /// with write_chrome_trace(). Tracing never perturbs the protocol: fixed
  /// seeds produce bit-identical traces and counters either way.
  obs::TraceConfig trace;
  /// Virtual-time telemetry (off by default). When sampler.enabled the
  /// World owns an obs::Sampler snapshotting the aggregate registry (and
  /// each shard's, when shards > 1) every sampler.interval, feeding the
  /// obs::Health watchdogs; export with write_timeline(). Sampling only
  /// reads registries — protocol counters stay bit-identical either way.
  obs::SamplerConfig sampler;

  /// Rejects misconfiguration with std::invalid_argument: n <= 0, an
  /// explicit n0 outside [1, n], a quorum system no subset of {0..n-1} can
  /// ever satisfy (wrong universe), or non-positive ring timing
  /// parameters. Called by the World constructor; callers may invoke it
  /// early for a better error site.
  void validate() const;
};

class World {
 public:
  explicit World(WorldConfig config);

  int n() const noexcept { return config_.n; }
  int n0() const noexcept { return config_.n0; }
  /// Number of independent VStoTO stacks in this World (>= 1).
  int shards() const noexcept { return static_cast<int>(shards_.size()); }
  const WorldConfig& config() const noexcept { return config_; }

  sim::Simulator& simulator() noexcept { return sim_; }
  sim::FailureTable& failures() noexcept { return failures_; }
  /// Shard `shard`'s trace recorder. Every shard records its own VS/TO
  /// interface events (plus the shared failure-status inputs), so the
  /// existing single-stack trace checkers apply per shard unchanged.
  trace::Recorder& recorder(int shard = 0) noexcept { return *at(shard).recorder; }
  const trace::Recorder& recorder(int shard = 0) const noexcept { return *at(shard).recorder; }
  /// The registry all layers of this World report into (shared with other
  /// Worlds when WorldConfig::metrics was supplied). With shards > 1 the
  /// per-shard layers report into per-shard registries instead; fold them
  /// in with collect_shard_metrics().
  obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return *metrics_; }
  /// The registry shard `shard`'s ring/stack/tracer bind into. Identical to
  /// metrics() when shards() == 1.
  obs::MetricsRegistry& shard_metrics(int shard) noexcept { return *at(shard).metrics; }
  /// Fold every shard-scoped registry into metrics(), once unprefixed
  /// (aggregate totals) and once under "shard<k>." (per-shard view).
  /// Idempotent — call it at quiescence, before exporting or merging this
  /// World's metrics. No-op when shards() == 1 (layers bound directly).
  void collect_shard_metrics();
  net::Network* network() noexcept { return net_.get(); }
  to::Stack& stack(int shard = 0) noexcept { return *at(shard).stack; }
  vs::Service& vs(int shard = 0) noexcept { return *at(shard).vs; }
  /// Non-null iff backend == kSpec.
  const vs::SpecVS* spec_vs() const noexcept { return shards_.front().spec_vs; }
  /// Non-null iff backend == kTokenRing.
  const membership::TokenRingVS* token_ring(int shard = 0) const noexcept {
    return at(shard).ring;
  }
  /// Non-null iff config().trace.enabled: shard `shard`'s span tracer /
  /// flight recorder.
  obs::SpanTracer* tracer(int shard = 0) noexcept { return at(shard).tracer.get(); }
  const obs::SpanTracer* tracer(int shard = 0) const noexcept { return at(shard).tracer.get(); }
  /// All shard tracers (empty when tracing is disabled) — the argument for
  /// the multi-tracer obs::chrome_trace_json overload.
  std::vector<const obs::SpanTracer*> tracers() const;

  /// Export the flight recorder(s) as Chrome trace-event JSON (Perfetto-
  /// loadable, all shards merged); false when tracing is disabled or on I/O
  /// failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Non-null iff config().sampler.enabled.
  obs::Sampler* sampler() noexcept { return sampler_.get(); }
  const obs::Sampler* sampler() const noexcept { return sampler_.get(); }

  /// What the "aggregate" sampler series sees: metrics() with every shard
  /// registry folded in (unprefixed + "shard<k>." prefixed), without
  /// mutating metrics(). After collect_shard_metrics() this is exactly
  /// metrics().snapshot().
  obs::MetricsSnapshot aggregate_snapshot() const;

  /// Take a final sample at now() and write the vsg-timeseries-v1 document
  /// to `path`; false when the sampler is disabled or on I/O failure.
  bool write_timeline(const std::string& path);

  // --- Scheduling helpers -----------------------------------------------------
  // All helpers validate their arguments eagerly (at schedule time, not when
  // the simulator fires the event) and throw std::invalid_argument with a
  // descriptive message, mirroring WorldConfig::validate(). partition_at is
  // strict: components must be non-empty, disjoint, within [0, n), and
  // together cover every processor — an explicit singleton {p} isolates p.
  void bcast_at(sim::Time t, ProcId p, core::Value a);
  /// bcast_at on shard `shard`'s stack (bcast_at == bcast_shard_at(t, 0, ...)).
  void bcast_shard_at(sim::Time t, int shard, ProcId p, core::Value a);
  void partition_at(sim::Time t, std::vector<std::set<ProcId>> components);
  void heal_at(sim::Time t);
  void proc_status_at(sim::Time t, ProcId p, sim::Status status);
  void link_status_at(sim::Time t, ProcId p, ProcId q, sim::Status status);

  /// The strict component-set check behind partition_at, usable standalone
  /// (the chaos schedule generator self-checks with it). Throws
  /// std::invalid_argument describing the first problem found.
  static void validate_partition(int n, const std::vector<std::set<ProcId>>& components);

  void run_until(sim::Time t) { sim_.run_until(t); }

  // --- Checking ----------------------------------------------------------------
  /// TOTraceChecker violations over shard `shard`'s recorded trace.
  std::vector<std::string> check_to_safety(int shard = 0) const;
  /// VSTraceChecker violations over shard `shard`'s recorded trace.
  std::vector<std::string> check_vs_safety(int shard = 0) const;

  props::TOPropertyReport to_report(const std::set<ProcId>& q, sim::Time d,
                                    sim::Time ignore_after = sim::kForever) const;
  props::VSPropertyReport vs_report(const std::set<ProcId>& q, sim::Time d,
                                    sim::Time ignore_after = sim::kForever) const;

  /// Global state for the verification layer. Only available with the spec
  /// back end (it owns the VS-machine); asserts otherwise.
  verify::GlobalState global_state() const;

 private:
  /// Everything one shard owns: its recorder, VS backend, stack, the
  /// registry its layers bind into (== metrics_ when shards == 1) and its
  /// tracer. shards_ is declared after net_, so every stack and ring is
  /// destroyed before the network they attach handlers to.
  struct Shard {
    std::unique_ptr<trace::Recorder> recorder;
    std::shared_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<vs::Service> vs;
    vs::SpecVS* spec_vs = nullptr;
    membership::TokenRingVS* ring = nullptr;
    std::unique_ptr<to::Stack> stack;
    std::unique_ptr<obs::SpanTracer> tracer;
  };

  Shard& at(int shard) noexcept {
    assert(shard >= 0 && shard < static_cast<int>(shards_.size()));
    return shards_[static_cast<std::size_t>(shard)];
  }
  const Shard& at(int shard) const noexcept {
    assert(shard >= 0 && shard < static_cast<int>(shards_.size()));
    return shards_[static_cast<std::size_t>(shard)];
  }

  WorldConfig config_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  sim::Simulator sim_;
  sim::FailureTable failures_;
  std::unique_ptr<net::Network> net_;
  std::vector<Shard> shards_;
  bool shard_metrics_collected_ = false;
  // Declared last: sampler sources capture shard registries (by shared_ptr)
  // and this->failures_; it only runs inside simulator events, never at
  // destruction.
  std::unique_ptr<obs::Sampler> sampler_;
};

}  // namespace vsg::harness
