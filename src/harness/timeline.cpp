#include "harness/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "harness/stats.hpp"

namespace vsg::harness {

Timeline build_timeline(const std::vector<trace::TimedEvent>& trace, int n, int n0) {
  Timeline tl;
  // Index of each processor's open interval in tl.intervals (-1 = none).
  std::vector<int> open(static_cast<std::size_t>(n), -1);

  const core::View v0 = core::initial_view(n0);
  for (ProcId p = 0; p < n0; ++p) {
    open[static_cast<std::size_t>(p)] = static_cast<int>(tl.intervals.size());
    tl.intervals.push_back(ViewInterval{p, v0, 0, sim::kForever, 0, 0});
  }

  for (const auto& te : trace) {
    tl.end = std::max(tl.end, te.at);
    if (const auto* e = trace::as<trace::NewViewEvent>(te)) {
      if (e->p < 0 || e->p >= n) continue;
      auto& slot = open[static_cast<std::size_t>(e->p)];
      if (slot >= 0) tl.intervals[static_cast<std::size_t>(slot)].to = te.at;
      slot = static_cast<int>(tl.intervals.size());
      tl.intervals.push_back(ViewInterval{e->p, e->v, te.at, sim::kForever, 0, 0});
    } else if (const auto* e = trace::as<trace::GprcvEvent>(te)) {
      const auto slot = open[static_cast<std::size_t>(e->dst)];
      if (slot >= 0) ++tl.intervals[static_cast<std::size_t>(slot)].gprcvs;
    } else if (const auto* e = trace::as<trace::SafeEvent>(te)) {
      const auto slot = open[static_cast<std::size_t>(e->dst)];
      if (slot >= 0) ++tl.intervals[static_cast<std::size_t>(slot)].safes;
    } else if (const auto* e = trace::as<sim::StatusEvent>(te)) {
      tl.failures.push_back(*e);
    } else if (trace::as<trace::BcastEvent>(te)) {
      ++tl.bcasts;
    } else if (trace::as<trace::BrcvEvent>(te)) {
      ++tl.brcvs;
    }
  }
  // Stable order: by processor, then by start time (the construction above
  // interleaves processors).
  std::stable_sort(tl.intervals.begin(), tl.intervals.end(),
                   [](const ViewInterval& a, const ViewInterval& b) {
                     if (a.p != b.p) return a.p < b.p;
                     return a.from < b.from;
                   });
  return tl;
}

std::string render_timeline(const Timeline& tl) {
  std::ostringstream os;
  os << "timeline: " << tl.bcasts << " bcast, " << tl.brcvs << " brcv, "
     << tl.failures.size() << " failure events, horizon " << fmt_time(tl.end) << "\n";

  ProcId last = kNoProc;
  for (const auto& iv : tl.intervals) {
    if (iv.p != last) {
      os << "processor " << iv.p << ":\n";
      last = iv.p;
    }
    os << "  [" << fmt_time(iv.from) << " .. "
       << (iv.to == sim::kForever ? std::string("end") : fmt_time(iv.to)) << "] "
       << core::to_string(iv.view) << "  gprcv=" << iv.gprcvs << " safe=" << iv.safes
       << "\n";
  }
  if (!tl.failures.empty()) {
    os << "failure events:\n";
    for (const auto& f : tl.failures) {
      os << "  " << fmt_time(f.at) << " " << to_string(f.status) << " ";
      if (f.is_link)
        os << "link(" << f.p << "->" << f.q << ")";
      else
        os << "proc(" << f.p << ")";
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace vsg::harness
