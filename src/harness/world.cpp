#include "harness/world.hpp"

#include <cassert>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/trace_export.hpp"
#include "spec/to_trace_checker.hpp"
#include "spec/vs_trace_checker.hpp"

namespace vsg::harness {

void WorldConfig::validate() const {
  if (n <= 0)
    throw std::invalid_argument("WorldConfig: n must be positive, got n=" +
                                std::to_string(n));
  if (n0 != -1 && (n0 <= 0 || n0 > n))
    throw std::invalid_argument(
        "WorldConfig: initial-view size n0 must be -1 (meaning n) or in [1, n=" +
        std::to_string(n) + "], got n0=" + std::to_string(n0));
  if (quorums != nullptr) {
    std::set<ProcId> universe;
    for (ProcId p = 0; p < n; ++p) universe.insert(p);
    if (!quorums->contains_quorum(universe))
      throw std::invalid_argument(
          "WorldConfig: quorum system '" + quorums->name() + "' is unsatisfiable by the " +
          std::to_string(n) +
          "-processor universe {0.." + std::to_string(n - 1) +
          "} — no primary view could ever form (was it built for a larger universe?)");
  }
  if (backend == Backend::kTokenRing && (ring.delta <= 0 || ring.pi <= 0 || ring.mu <= 0))
    throw std::invalid_argument(
        "WorldConfig: token-ring timing parameters must be positive (delta=" +
        std::to_string(ring.delta) + ", pi=" + std::to_string(ring.pi) +
        ", mu=" + std::to_string(ring.mu) + ")");
  if (shards < 1 || shards > kMaxShards)
    throw std::invalid_argument("WorldConfig: shards must be in [1, " +
                                std::to_string(kMaxShards) + "], got shards=" +
                                std::to_string(shards));
  if (shards > 1 && backend == Backend::kSpec)
    throw std::invalid_argument(
        "WorldConfig: the spec backend is single-stack; shards=" + std::to_string(shards) +
        " requires the token-ring backend");
  if (!shard_rings.empty() && static_cast<int>(shard_rings.size()) != shards)
    throw std::invalid_argument(
        "WorldConfig: shard_rings overrides must cover every shard (got " +
        std::to_string(shard_rings.size()) + " configs for shards=" + std::to_string(shards) +
        ")");
  for (std::size_t k = 0; k < shard_rings.size(); ++k) {
    const auto& r = shard_rings[k];
    if (backend == Backend::kTokenRing && (r.delta <= 0 || r.pi <= 0 || r.mu <= 0))
      throw std::invalid_argument(
          "WorldConfig: shard_rings[" + std::to_string(k) +
          "] timing parameters must be positive (delta=" + std::to_string(r.delta) +
          ", pi=" + std::to_string(r.pi) + ", mu=" + std::to_string(r.mu) + ")");
    if (r.lanes && r.bulk_min_share == 0)
      throw std::invalid_argument(
          "WorldConfig: shard_rings[" + std::to_string(k) +
          "] enables lanes with bulk_min_share=0 — urgent traffic could starve the "
          "bulk lane (docs/FLOWCONTROL.md requires bulk_min_share >= 1)");
  }
  if (ring.lanes && ring.bulk_min_share == 0)
    throw std::invalid_argument(
        "WorldConfig: ring enables lanes with bulk_min_share=0 — urgent traffic could "
        "starve the bulk lane (docs/FLOWCONTROL.md requires bulk_min_share >= 1)");
}

namespace {
// Validation must run before any subsystem sees the config (FailureTable
// asserts on n, the ring divides by timing parameters).
int validated_n(const WorldConfig& config) {
  config.validate();
  return config.n;
}
}  // namespace

World::World(WorldConfig config)
    : config_(std::move(config)), sim_(), failures_(validated_n(config_)) {
  if (config_.n0 < 0) config_.n0 = config_.n;
  if (config_.quorums == nullptr) config_.quorums = core::majorities(config_.n);
  if (config_.metrics == nullptr) config_.metrics = std::make_shared<obs::MetricsRegistry>();
  metrics_ = config_.metrics;
  util::Rng rng(config_.seed);

  const int K = config_.shards;
  shards_.resize(static_cast<std::size_t>(K));
  for (auto& shard : shards_) {
    shard.recorder = std::make_unique<trace::Recorder>(sim_);
    // Every shard's checkers see the same failure/partition history, so
    // each recorder gets the full set of interface events it needs. With
    // K == 1 the bound registry is the World's own — names and counts stay
    // bit-identical to the pre-shard harness.
    shard.metrics = K == 1 ? metrics_ : std::make_shared<obs::MetricsRegistry>();
  }

  // Failure-status changes are input actions of the timed trace (Figure 4);
  // record them so the property checkers can find the stabilization point.
  failures_.subscribe([this](const sim::StatusEvent& ev) {
    for (auto& shard : shards_) shard.recorder->record(ev);
  });

  if (config_.backend == Backend::kSpec) {
    auto& s0 = shards_.front();
    auto spec = std::make_unique<vs::SpecVS>(sim_, failures_, *s0.recorder, config_.n,
                                             config_.n0, config_.spec_vs, rng.split());
    s0.spec_vs = spec.get();
    s0.vs = std::move(spec);
  } else {
    net_ = std::make_unique<net::Network>(sim_, failures_, config_.link, rng.split());
    net_->bind_metrics(*metrics_);
    for (int k = 0; k < K; ++k) {
      auto& shard = shards_[static_cast<std::size_t>(k)];
      membership::TokenRingConfig rcfg =
          config_.shard_rings.empty() ? config_.ring
                                      : config_.shard_rings[static_cast<std::size_t>(k)];
      rcfg.port = k;  // ring-scoped port space: frames never cross shards
      auto ring = std::make_unique<membership::TokenRingVS>(sim_, *net_, failures_,
                                                            *shard.recorder, config_.n,
                                                            config_.n0, rcfg, rng.split());
      shard.ring = ring.get();
      shard.ring->bind_metrics(*shard.metrics);
      shard.vs = std::move(ring);
    }
  }

  for (int k = 0; k < K; ++k) {
    auto& shard = shards_[static_cast<std::size_t>(k)];
    // Wire v3 carries the compact state exchange: digest first, then a
    // delta covering only what the weakest peer lacks. Earlier wire
    // versions (and the spec backend, whose verifier decodes whole
    // summaries from VS payloads) keep the Figure 8 full-summary exchange.
    const membership::TokenRingConfig& rcfg =
        config_.shard_rings.empty() ? config_.ring
                                    : config_.shard_rings[static_cast<std::size_t>(k)];
    const auto exchange =
        (config_.backend == Backend::kTokenRing && rcfg.wire == membership::WireFormat::kV3)
            ? vstoto::ExchangeMode::kDigestDelta
            : vstoto::ExchangeMode::kFullSummary;
    shard.stack = std::make_unique<to::Stack>(*shard.vs, *shard.recorder, config_.quorums,
                                              config_.n0, exchange);
    shard.stack->bind_metrics(*shard.metrics);
    // Sender-side admission gate (docs/FLOWCONTROL.md): armed only when the
    // ring config asks for it, so ungated worlds register no gate metrics
    // and stay bit-identical to pre-gate builds.
    if (shard.ring != nullptr && rcfg.admission_max_backlog > 0) {
      auto* ring = shard.ring;
      shard.stack->arm_admission(rcfg.admission_max_backlog,
                                 [ring](ProcId p) { return ring->backlog(p); },
                                 *shard.metrics);
      ring->set_drain_hook(
          [stack = shard.stack.get()](ProcId p) { stack->on_ring_drain(p); });
    }
  }

  if (config_.trace.enabled) {
    for (int k = 0; k < K; ++k) {
      auto& shard = shards_[static_cast<std::size_t>(k)];
      obs::TraceConfig tc = config_.trace;
      if (K > 1) tc.name_prefix = "shard" + std::to_string(k) + ".";
      shard.tracer = std::make_unique<obs::SpanTracer>(tc);
      shard.tracer->bind_metrics(*shard.metrics);
      if (net_ != nullptr) net_->set_tracer(k, shard.tracer.get());
      if (shard.ring != nullptr) shard.ring->set_tracer(shard.tracer.get());
      shard.stack->set_tracer(shard.tracer.get());
      // Events the explicit hooks do not cover arrive through the recorder
      // tap: bcast submissions (the tosnd milestone), newview deliveries
      // (state-exchange start) and failure-status markers.
      shard.recorder->subscribe([tracer = shard.tracer.get()](const trace::TimedEvent& te) {
        if (const auto* b = trace::as<trace::BcastEvent>(te))
          tracer->msg_submitted(b->p, te.at);
        else if (const auto* nv = trace::as<trace::NewViewEvent>(te))
          tracer->view_newview(nv->p, nv->v.id, te.at);
        else if (const auto* st = trace::as<sim::StatusEvent>(te))
          tracer->fault_marker(*st);
      });
    }
  }

  for (auto& shard : shards_)
    if (shard.ring != nullptr) shard.ring->start();

  if (config_.sampler.enabled) {
    sampler_ = std::make_unique<obs::Sampler>(config_.sampler);
    sampler_->health().bind_metrics(*metrics_);
    sampler_->health().set_liveness([this] {
      for (ProcId p = 0; p < config_.n; ++p)
        if (failures_.proc(p) != sim::Status::kBad) return true;
      return false;
    });
    sampler_->add_source("aggregate", [this] { return aggregate_snapshot(); });
    if (K > 1)
      for (int k = 0; k < K; ++k)
        sampler_->add_source("shard" + std::to_string(k),
                             [reg = shards_[static_cast<std::size_t>(k)].metrics] {
                               return reg->snapshot();
                             });
    sampler_->start(sim_);
  }
}

obs::MetricsSnapshot World::aggregate_snapshot() const {
  if (shards_.size() == 1 || shard_metrics_collected_) return metrics_->snapshot();
  obs::MetricsRegistry tmp;
  tmp.merge_from(metrics_->snapshot());
  for (int k = 0; k < static_cast<int>(shards_.size()); ++k) {
    const obs::MetricsSnapshot snap = at(k).metrics->snapshot();
    tmp.merge_from(snap);
    tmp.merge_from(snap, "shard" + std::to_string(k) + ".");
  }
  return tmp.snapshot();
}

bool World::write_timeline(const std::string& path) {
  if (sampler_ == nullptr) return false;
  // Sample twice at the same instant: the first pass may fire health
  // watchdogs (bumping health.* counters in metrics()); the second replaces
  // it so the final sample includes those bumps and exactly matches a
  // registry export taken now. Re-observing identical data never re-fires
  // an episode.
  sampler_->sample_now(sim_.now());
  sampler_->sample_now(sim_.now());
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << obs::write_timeseries(sampler_->doc());
  return static_cast<bool>(f);
}

void World::collect_shard_metrics() {
  if (shards() == 1 || shard_metrics_collected_) return;
  shard_metrics_collected_ = true;
  for (int k = 0; k < shards(); ++k) {
    const obs::MetricsSnapshot snap = at(k).metrics->snapshot();
    metrics_->merge_from(snap);
    metrics_->merge_from(snap, "shard" + std::to_string(k) + ".");
  }
}

std::vector<const obs::SpanTracer*> World::tracers() const {
  std::vector<const obs::SpanTracer*> out;
  for (const auto& shard : shards_)
    if (shard.tracer != nullptr) out.push_back(shard.tracer.get());
  return out;
}

bool World::write_chrome_trace(const std::string& path) const {
  const auto all = tracers();
  if (all.empty()) return false;
  return obs::write_chrome_trace_file(all, path);
}

namespace {
void require_proc_id(int n, ProcId p, const char* what) {
  if (p < 0 || p >= n)
    throw std::invalid_argument(std::string(what) + ": processor " + std::to_string(p) +
                                " out of range [0, " + std::to_string(n) + ")");
}
}  // namespace

void World::validate_partition(int n, const std::vector<std::set<ProcId>>& components) {
  if (components.empty())
    throw std::invalid_argument("partition: component list is empty (use heal to reconnect)");
  std::set<ProcId> seen;
  for (std::size_t c = 0; c < components.size(); ++c) {
    if (components[c].empty())
      throw std::invalid_argument("partition: component " + std::to_string(c) + " is empty");
    for (ProcId p : components[c]) {
      require_proc_id(n, p, "partition");
      if (!seen.insert(p).second)
        throw std::invalid_argument("partition: processor " + std::to_string(p) +
                                    " appears in more than one component");
    }
  }
  for (ProcId p = 0; p < n; ++p)
    if (seen.count(p) == 0)
      throw std::invalid_argument(
          "partition: processor " + std::to_string(p) +
          " is in no component — components must cover all of [0, " + std::to_string(n) +
          "); isolate a processor with an explicit singleton component");
}

void World::bcast_at(sim::Time t, ProcId p, core::Value a) {
  bcast_shard_at(t, 0, p, std::move(a));
}

void World::bcast_shard_at(sim::Time t, int shard, ProcId p, core::Value a) {
  require_proc_id(config_.n, p, "bcast_shard_at");
  if (shard < 0 || shard >= shards())
    throw std::invalid_argument("bcast_shard_at: shard " + std::to_string(shard) +
                                " out of range [0, " + std::to_string(shards()) + ")");
  // mutable + move: the value travels World -> Stack -> Process without a
  // copy (to.payload_copies counts what remains).
  sim_.at(t, [this, shard, p, a = std::move(a)]() mutable {
    at(shard).stack->bcast(p, std::move(a));
  });
}

void World::partition_at(sim::Time t, std::vector<std::set<ProcId>> components) {
  validate_partition(config_.n, components);
  sim_.at(t, [this, comps = std::move(components)] { failures_.partition(comps, sim_.now()); });
}

void World::heal_at(sim::Time t) {
  sim_.at(t, [this] { failures_.heal(sim_.now()); });
}

void World::proc_status_at(sim::Time t, ProcId p, sim::Status status) {
  require_proc_id(config_.n, p, "proc_status_at");
  sim_.at(t, [this, p, status] { failures_.set_proc(p, status, sim_.now()); });
}

void World::link_status_at(sim::Time t, ProcId p, ProcId q, sim::Status status) {
  require_proc_id(config_.n, p, "link_status_at");
  require_proc_id(config_.n, q, "link_status_at");
  if (p == q)
    throw std::invalid_argument("link_status_at: self-link (p == q == " + std::to_string(p) +
                                ")");
  sim_.at(t, [this, p, q, status] { failures_.set_link(p, q, status, sim_.now()); });
}

std::vector<std::string> World::check_to_safety(int shard) const {
  spec::TOTraceChecker checker(config_.n);
  checker.check_all(recorder(shard).events());
  return checker.violations();
}

std::vector<std::string> World::check_vs_safety(int shard) const {
  spec::VSTraceChecker checker(config_.n, config_.n0);
  checker.check_all(recorder(shard).events());
  return checker.violations();
}

props::TOPropertyReport World::to_report(const std::set<ProcId>& q, sim::Time d,
                                         sim::Time ignore_after) const {
  return props::evaluate_to_property(recorder().events(), q, config_.n, d, ignore_after);
}

props::VSPropertyReport World::vs_report(const std::set<ProcId>& q, sim::Time d,
                                         sim::Time ignore_after) const {
  return props::evaluate_vs_property(recorder().events(), q, config_.n, config_.n0, d,
                                     ignore_after);
}

verify::GlobalState World::global_state() const {
  assert(spec_vs() != nullptr && "verification requires the spec back end");
  verify::GlobalState gs;
  gs.machine = &spec_vs()->machine();
  gs.quorums = config_.quorums.get();
  for (ProcId p = 0; p < config_.n; ++p)
    gs.procs.push_back(&shards_.front().stack->process(p));
  return gs;
}

}  // namespace vsg::harness
