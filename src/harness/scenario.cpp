#include "harness/scenario.hpp"

#include <algorithm>
#include <cstdint>

#include "util/hash.hpp"

namespace vsg::harness {

namespace {

// Stable value->shard placement for scripted broadcasts: the same hash
// family the sharded KV router uses, mod the world's shard count. With
// shards()==1 this is identically shard 0, so K=1 scenario replays are
// bit-for-bit what the single-stack world ran.
int shard_for_value(const core::Value& a, int shards) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(a.data());
  const std::uint64_t h = util::fnv1a(util::BufferView(bytes, a.size()));
  return static_cast<int>(h % static_cast<std::uint64_t>(shards));
}

}  // namespace

void Scenario::apply(World& world) const {
  for (const auto& timed : ops) {
    if (const auto* b = std::get_if<OpBcast>(&timed.op))
      world.bcast_shard_at(timed.at, shard_for_value(b->a, world.shards()), b->p, b->a);
    else if (const auto* part = std::get_if<OpPartition>(&timed.op))
      world.partition_at(timed.at, part->components);
    else if (std::get_if<OpHeal>(&timed.op))
      world.heal_at(timed.at);
    else if (const auto* ps = std::get_if<OpProcStatus>(&timed.op))
      world.proc_status_at(timed.at, ps->p, ps->status);
    else if (const auto* ls = std::get_if<OpLinkStatus>(&timed.op))
      world.link_status_at(timed.at, ls->p, ls->q, ls->status);
  }
}

sim::Time Scenario::last_time() const {
  sim::Time last = 0;
  for (const auto& timed : ops) last = std::max(last, timed.at);
  return last;
}

Scenario steady_traffic(const std::vector<ProcId>& senders, int count, sim::Time start,
                        sim::Time gap) {
  Scenario s;
  for (int k = 0; k < count; ++k)
    for (ProcId p : senders)
      s.add(start + k * gap,
            OpBcast{p, "v" + std::to_string(p) + "." + std::to_string(k)});
  return s;
}

Scenario partition_heal(std::vector<std::set<ProcId>> components, sim::Time at,
                        sim::Time heal_time) {
  Scenario s;
  s.add(at, OpPartition{std::move(components)});
  if (heal_time > 0) s.add(heal_time, OpHeal{});
  return s;
}

Scenario random_churn(int n, int flips, sim::Time start, sim::Time end,
                      std::vector<std::set<ProcId>> final_components, util::Rng& rng) {
  Scenario s;
  const sim::Time span = end > start ? end - start : 1;
  for (int i = 0; i < flips; ++i) {
    const sim::Time at = start + rng.range(0, span - 1);
    const auto p = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    auto q = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    if (q == p) q = (q + 1) % n;
    const auto status = static_cast<sim::Status>(rng.below(3));
    s.add(at, OpLinkStatus{p, q, status});
  }
  s.add(end, OpPartition{std::move(final_components)});
  return s;
}

Scenario random_traffic(int n, int count, sim::Time start, sim::Time end, util::Rng& rng) {
  Scenario s;
  const sim::Time span = end > start ? end - start : 1;
  for (int k = 0; k < count; ++k) {
    const auto p = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    const sim::Time at = start + rng.range(0, span - 1);
    s.add(at, OpBcast{p, "r" + std::to_string(p) + "." + std::to_string(k)});
  }
  return s;
}

}  // namespace vsg::harness
