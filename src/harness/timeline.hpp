#pragma once

// Timeline reporting: turn a recorded timed trace into a human-readable
// account of the run — per-processor view intervals, delivery/safe counts
// per view, failure episodes, and TO-level progress. Used by the scenario
// runner (--timeline) and handy when a property checker reports a
// violation and you want to see what the system actually did.

#include <string>
#include <vector>

#include "trace/events.hpp"

namespace vsg::harness {

/// One processor's stay in one view.
struct ViewInterval {
  ProcId p = kNoProc;
  core::View view;
  sim::Time from = 0;
  sim::Time to = sim::kForever;  // kForever = still current at trace end
  std::size_t gprcvs = 0;        // deliveries received while in this view
  std::size_t safes = 0;
};

struct Timeline {
  std::vector<ViewInterval> intervals;     // grouped by processor, in order
  std::vector<sim::StatusEvent> failures;  // failure episodes, time order
  std::size_t bcasts = 0;
  std::size_t brcvs = 0;
  sim::Time end = 0;
};

/// Build the timeline from a trace over n processors (n0 = initial view).
Timeline build_timeline(const std::vector<trace::TimedEvent>& trace, int n, int n0);

/// Render as a multi-line report.
std::string render_timeline(const Timeline& timeline);

}  // namespace vsg::harness
