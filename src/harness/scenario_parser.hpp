#pragma once

// Text scenario format, so experiments can be described in files and run
// through the CLI tools (examples/scenario_runner, tools/chaos_runner)
// without recompiling:
//
//   # comments and blank lines are ignored
//   config n 5                   # optional world metadata (see ScenarioMeta)
//   config seed 42
//   config until 20s
//   config wire 1                # pin the frame version (docs/WIRE.md)
//   config shards 4              # shard count (docs/SHARDING.md)
//   config budget 256            # boarding budget, bytes/pass (docs/FLOWCONTROL.md)
//   at 100ms partition 0,1,2 | 3,4
//   at 2s    bcast 0 hello-world
//   at 2.5s  proc 2 bad          # good | bad | ugly
//   at 3s    link 0 3 ugly       # directed link (p -> q)
//   at 4s    heal
//
// Times accept us / ms / s suffixes (integer values).
//
// write_scenario() is the exact inverse of parse_scenario(): the chaos
// shrinker serializes minimized repros with it, and the round-trip property
// parse(write(s)) == s is locked in by tests/harness_scenario_roundtrip_test.

#include <cstdint>
#include <optional>
#include <string>

#include "harness/scenario.hpp"

namespace vsg::harness {

/// Optional world parameters embedded in a scenario file via `config`
/// directives, so a minimized chaos repro is self-contained (replayable
/// without remembering the campaign's command line).
struct ScenarioMeta {
  std::optional<int> n;              // config n <int>
  std::optional<std::uint64_t> seed;  // config seed <u64>
  std::optional<sim::Time> until;    // config until <duration>
  /// Frame version the scenario was recorded/minimized under (config wire
  /// <1|2>, docs/WIRE.md). Replays apply it to TokenRingConfig::wire so the
  /// run is byte-for-byte what the shrinker saw, even after the default
  /// version moves on.
  std::optional<int> wire;
  /// Shard count the scenario was recorded under (config shards <K>,
  /// docs/SHARDING.md). Replayers must reject counts outside
  /// [1, harness::kMaxShards] loudly rather than silently running K=1.
  std::optional<int> shards;
  /// Per-pass boarding budget in bytes the scenario was recorded under
  /// (config budget <B>, docs/FLOWCONTROL.md). Replays apply it to
  /// TokenRingConfig::board_budget_bytes and enable the urgency lanes —
  /// the same pairing chaos_runner --budget uses — so a repro minimized
  /// under a capacity bound replays under the same bound.
  std::optional<std::uint64_t> budget;
  bool operator==(const ScenarioMeta&) const = default;
};

struct ParseResult {
  std::optional<Scenario> scenario;  // engaged on success
  ScenarioMeta meta;                 // config directives (if any)
  std::string error;                 // human-readable, with line number
  bool ok() const noexcept { return scenario.has_value(); }
};

/// Parse the scenario text (the whole file contents).
ParseResult parse_scenario(const std::string& text);

/// Parse one duration token ("250ms", "3s", "1500us"); nullopt on error.
std::optional<sim::Time> parse_duration(const std::string& token);

/// Shortest exact representation of a non-negative duration ("3s", "250ms",
/// "1500us"). Throws std::invalid_argument on negative input.
std::string format_duration(sim::Time t);

/// Serialize a scenario (plus optional metadata) in the text format above.
/// Throws std::invalid_argument for ops the format cannot represent:
/// negative times, empty partition component lists or components, and bcast
/// values that are empty or contain whitespace / '#' / '|'.
std::string write_scenario(const Scenario& scenario, const ScenarioMeta& meta = {});

}  // namespace vsg::harness
