#pragma once

// Text scenario format, so experiments can be described in files and run
// through the CLI tool (examples/scenario_runner) without recompiling:
//
//   # comments and blank lines are ignored
//   at 100ms partition 0,1,2 | 3,4
//   at 2s    bcast 0 hello-world
//   at 2.5s  proc 2 bad          # good | bad | ugly
//   at 3s    link 0 3 ugly       # directed link (p -> q)
//   at 4s    heal
//
// Times accept us / ms / s suffixes (integer values).

#include <optional>
#include <string>

#include "harness/scenario.hpp"

namespace vsg::harness {

struct ParseResult {
  std::optional<Scenario> scenario;  // engaged on success
  std::string error;                 // human-readable, with line number
  bool ok() const noexcept { return scenario.has_value(); }
};

/// Parse the scenario text (the whole file contents).
ParseResult parse_scenario(const std::string& text);

/// Parse one duration token ("250ms", "3s", "1500us"); nullopt on error.
std::optional<sim::Time> parse_duration(const std::string& token);

}  // namespace vsg::harness
