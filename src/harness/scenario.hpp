#pragma once

// Declarative scenario scripting: a scenario is a timed list of operations
// (client broadcasts, partitions, heals, status flips) applied to a World.
// Canned generators cover the shapes the paper's analysis talks about —
// steady traffic in a stable group, a partition that stabilizes, a
// partition that heals, and random churn that eventually quiesces.

#include <set>
#include <string>
#include <variant>
#include <vector>

#include "harness/world.hpp"
#include "util/rng.hpp"

namespace vsg::harness {

// Equality on ops/scenarios backs the round-trip property test of the
// scenario writer and lets the chaos shrinker detect fixpoints.
struct OpBcast {
  ProcId p;
  core::Value a;
  bool operator==(const OpBcast&) const = default;
};
struct OpPartition {
  std::vector<std::set<ProcId>> components;
  bool operator==(const OpPartition&) const = default;
};
struct OpHeal {
  bool operator==(const OpHeal&) const = default;
};
struct OpProcStatus {
  ProcId p;
  sim::Status status;
  bool operator==(const OpProcStatus&) const = default;
};
struct OpLinkStatus {
  ProcId p;
  ProcId q;
  sim::Status status;
  bool operator==(const OpLinkStatus&) const = default;
};

using Op = std::variant<OpBcast, OpPartition, OpHeal, OpProcStatus, OpLinkStatus>;

struct TimedOp {
  sim::Time at;
  Op op;
  bool operator==(const TimedOp&) const = default;
};

struct Scenario {
  std::vector<TimedOp> ops;

  void add(sim::Time at, Op op) { ops.push_back({at, std::move(op)}); }
  /// Schedule every operation on the world (call before running).
  void apply(World& world) const;

  /// Time of the last scheduled operation.
  sim::Time last_time() const;

  bool operator==(const Scenario&) const = default;
};

/// Steady traffic: every sender in `senders` broadcasts `count` values,
/// spaced `gap` apart, starting at `start`. Values are "v<p>.<k>".
Scenario steady_traffic(const std::vector<ProcId>& senders, int count, sim::Time start,
                        sim::Time gap);

/// Partition into `components` at `at`, then (optionally) heal at `heal_at`
/// (pass 0 to skip healing).
Scenario partition_heal(std::vector<std::set<ProcId>> components, sim::Time at,
                        sim::Time heal_time);

/// Random churn: `flips` random link/partition changes between `start` and
/// `end`, then a final partition into `final_components` at `end` (the
/// stabilization premise of TO-/VS-property).
Scenario random_churn(int n, int flips, sim::Time start, sim::Time end,
                      std::vector<std::set<ProcId>> final_components, util::Rng& rng);

/// Mixed client workload with random senders/spacing.
Scenario random_traffic(int n, int count, sim::Time start, sim::Time end, util::Rng& rng);

}  // namespace vsg::harness
