#pragma once

// Measurement extraction for benches: latency distributions (bcast ->
// delivered-at-all-of-Q, gpsnd -> safe-at-all-of-Q), throughput, and small
// table-printing helpers so every bench binary prints uniform rows.

#include <set>
#include <string>
#include <vector>

#include "trace/events.hpp"

namespace vsg::harness {

struct LatencySummary {
  std::size_t count = 0;       // completed measurements
  std::size_t incomplete = 0;  // started but never completed
  sim::Time min = 0;
  sim::Time p50 = 0;
  sim::Time p90 = 0;
  sim::Time max = 0;
  double mean = 0.0;
};

/// Percentiles use the nearest-rank definition (index ceil(q*n)-1 on the
/// sorted samples), so a single sample reports itself as every percentile
/// and p90 of 10 samples is the 9th, not the max. Empty input yields the
/// all-zero summary with only `incomplete` set.
LatencySummary summarize(std::vector<sim::Time> samples, std::size_t incomplete = 0);

/// For every value bcast at a member of Q after `from`, the latency until it
/// has been brcv'd at every member of Q.
LatencySummary to_delivery_latency(const std::vector<trace::TimedEvent>& trace,
                                   const std::set<ProcId>& q, sim::Time from);

/// For every message gpsnd at a member of Q after `from`, the latency until
/// its safe indication reached every member of Q (view-aware: only messages
/// sent in the sender's final view are counted).
LatencySummary vs_safe_latency(const std::vector<trace::TimedEvent>& trace,
                               const std::set<ProcId>& q, int n, int n0, sim::Time from);

/// Count of brcv events at processor p within [from, to).
std::size_t deliveries_at(const std::vector<trace::TimedEvent>& trace, ProcId p,
                          sim::Time from, sim::Time to);

/// Formatting helpers (microseconds -> "12.3ms").
std::string fmt_time(sim::Time t);
std::string fmt_row(const std::vector<std::string>& cells,
                    const std::vector<int>& widths);

}  // namespace vsg::harness
