#include "harness/scenario_parser.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace vsg::harness {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

std::optional<std::set<ProcId>> parse_proc_set(const std::string& token) {
  std::set<ProcId> procs;
  std::string num;
  for (char c : token + ",") {
    if (c == ',') {
      if (num.empty()) return std::nullopt;
      for (char d : num)
        if (!std::isdigit(static_cast<unsigned char>(d))) return std::nullopt;
      procs.insert(static_cast<ProcId>(std::stoi(num)));
      num.clear();
    } else {
      num.push_back(c);
    }
  }
  return procs;
}

std::optional<ProcId> parse_proc(const std::string& token) {
  for (char c : token)
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
  if (token.empty()) return std::nullopt;
  return static_cast<ProcId>(std::stoi(token));
}

std::optional<sim::Status> parse_status(const std::string& token) {
  if (token == "good") return sim::Status::kGood;
  if (token == "bad") return sim::Status::kBad;
  if (token == "ugly") return sim::Status::kUgly;
  return std::nullopt;
}

}  // namespace

std::optional<sim::Time> parse_duration(const std::string& token) {
  std::size_t i = 0;
  while (i < token.size() && std::isdigit(static_cast<unsigned char>(token[i]))) ++i;
  if (i == 0) return std::nullopt;
  const long long value = std::stoll(token.substr(0, i));
  const std::string unit = token.substr(i);
  if (unit == "us") return sim::usec(value);
  if (unit == "ms") return sim::msec(value);
  if (unit == "s") return sim::sec(value);
  return std::nullopt;
}

ParseResult parse_scenario(const std::string& text) {
  ParseResult result;
  Scenario scenario;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;

  auto fail = [&result, &lineno](const std::string& what) {
    result.error = "line " + std::to_string(lineno) + ": " + what;
    return result;
  };

  while (std::getline(is, line)) {
    ++lineno;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "config") {
      if (tokens.size() != 3)
        return fail("config needs: config <n|seed|until|wire|shards|budget> <value>");
      if (tokens[1] == "n") {
        const auto n = parse_proc(tokens[2]);
        if (!n.has_value() || *n <= 0) return fail("bad config n '" + tokens[2] + "'");
        result.meta.n = static_cast<int>(*n);
      } else if (tokens[1] == "seed") {
        for (char c : tokens[2])
          if (!std::isdigit(static_cast<unsigned char>(c)))
            return fail("bad config seed '" + tokens[2] + "'");
        result.meta.seed = std::stoull(tokens[2]);
      } else if (tokens[1] == "until") {
        const auto until = parse_duration(tokens[2]);
        if (!until.has_value()) return fail("bad config until '" + tokens[2] + "'");
        result.meta.until = *until;
      } else if (tokens[1] == "wire") {
        const auto w = parse_proc(tokens[2]);  // small non-negative int
        if (!w.has_value() || *w < 1) return fail("bad config wire '" + tokens[2] + "'");
        result.meta.wire = static_cast<int>(*w);
      } else if (tokens[1] == "shards") {
        const auto k = parse_proc(tokens[2]);  // small non-negative int
        if (!k.has_value() || *k < 1) return fail("bad config shards '" + tokens[2] + "'");
        result.meta.shards = static_cast<int>(*k);
      } else if (tokens[1] == "budget") {
        for (char c : tokens[2])
          if (!std::isdigit(static_cast<unsigned char>(c)))
            return fail("bad config budget '" + tokens[2] + "'");
        const std::uint64_t b = std::stoull(tokens[2]);
        if (b < 1) return fail("bad config budget '" + tokens[2] + "'");
        result.meta.budget = b;
      } else {
        return fail("unknown config key '" + tokens[1] + "'");
      }
      continue;
    }
    if (tokens.size() < 3 || tokens[0] != "at")
      return fail("expected 'at <time> <op> ...'");
    const auto at = parse_duration(tokens[1]);
    if (!at.has_value()) return fail("bad time '" + tokens[1] + "'");
    const std::string& op = tokens[2];

    if (op == "heal") {
      if (tokens.size() != 3) return fail("heal takes no arguments");
      scenario.add(*at, OpHeal{});
    } else if (op == "bcast") {
      if (tokens.size() != 5) return fail("bcast needs: bcast <proc> <value>");
      const auto p = parse_proc(tokens[3]);
      if (!p.has_value()) return fail("bad processor '" + tokens[3] + "'");
      scenario.add(*at, OpBcast{*p, tokens[4]});
    } else if (op == "partition") {
      // components separated by '|' tokens: "0,1 | 2,3"
      std::vector<std::set<ProcId>> components;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        if (tokens[i] == "|") continue;
        const auto comp = parse_proc_set(tokens[i]);
        if (!comp.has_value()) return fail("bad component '" + tokens[i] + "'");
        components.push_back(*comp);
      }
      if (components.empty()) return fail("partition needs at least one component");
      scenario.add(*at, OpPartition{std::move(components)});
    } else if (op == "proc") {
      if (tokens.size() != 5) return fail("proc needs: proc <p> <good|bad|ugly>");
      const auto p = parse_proc(tokens[3]);
      const auto status = parse_status(tokens[4]);
      if (!p.has_value()) return fail("bad processor '" + tokens[3] + "'");
      if (!status.has_value()) return fail("bad status '" + tokens[4] + "'");
      scenario.add(*at, OpProcStatus{*p, *status});
    } else if (op == "link") {
      if (tokens.size() != 6) return fail("link needs: link <p> <q> <good|bad|ugly>");
      const auto p = parse_proc(tokens[3]);
      const auto q = parse_proc(tokens[4]);
      const auto status = parse_status(tokens[5]);
      if (!p.has_value() || !q.has_value()) return fail("bad processor id");
      if (!status.has_value()) return fail("bad status '" + tokens[5] + "'");
      scenario.add(*at, OpLinkStatus{*p, *q, *status});
    } else {
      return fail("unknown operation '" + op + "'");
    }
  }
  result.scenario = std::move(scenario);
  return result;
}

std::string format_duration(sim::Time t) {
  if (t < 0) throw std::invalid_argument("format_duration: negative duration");
  if (t % 1'000'000 == 0) return std::to_string(t / 1'000'000) + "s";
  if (t % 1'000 == 0) return std::to_string(t / 1'000) + "ms";
  return std::to_string(t) + "us";
}

namespace {

void check_writable_value(const core::Value& a) {
  if (a.empty())
    throw std::invalid_argument("write_scenario: empty bcast value is not representable");
  for (char c : a)
    if (std::isspace(static_cast<unsigned char>(c)) || c == '#' || c == '|')
      throw std::invalid_argument(
          "write_scenario: bcast value '" + a +
          "' contains whitespace/'#'/'|' — not representable in the text format");
}

std::string format_proc_set(const std::set<ProcId>& procs) {
  std::string out;
  for (ProcId p : procs) {
    if (!out.empty()) out += ',';
    out += std::to_string(p);
  }
  return out;
}

struct OpWriter {
  std::ostringstream& os;

  void operator()(const OpBcast& b) const {
    check_writable_value(b.a);
    os << "bcast " << b.p << ' ' << b.a;
  }
  void operator()(const OpPartition& part) const {
    if (part.components.empty())
      throw std::invalid_argument("write_scenario: partition with no components");
    os << "partition";
    for (std::size_t i = 0; i < part.components.size(); ++i) {
      if (part.components[i].empty())
        throw std::invalid_argument("write_scenario: empty partition component");
      os << (i == 0 ? " " : " | ") << format_proc_set(part.components[i]);
    }
  }
  void operator()(const OpHeal&) const { os << "heal"; }
  void operator()(const OpProcStatus& ps) const {
    os << "proc " << ps.p << ' ' << sim::to_string(ps.status);
  }
  void operator()(const OpLinkStatus& ls) const {
    os << "link " << ls.p << ' ' << ls.q << ' ' << sim::to_string(ls.status);
  }
};

}  // namespace

std::string write_scenario(const Scenario& scenario, const ScenarioMeta& meta) {
  std::ostringstream os;
  if (meta.n.has_value()) os << "config n " << *meta.n << '\n';
  if (meta.seed.has_value()) os << "config seed " << *meta.seed << '\n';
  if (meta.until.has_value()) os << "config until " << format_duration(*meta.until) << '\n';
  if (meta.wire.has_value()) os << "config wire " << *meta.wire << '\n';
  if (meta.shards.has_value()) os << "config shards " << *meta.shards << '\n';
  if (meta.budget.has_value()) os << "config budget " << *meta.budget << '\n';
  for (const auto& timed : scenario.ops) {
    os << "at " << format_duration(timed.at) << ' ';
    std::visit(OpWriter{os}, timed.op);
    os << '\n';
  }
  return os.str();
}

}  // namespace vsg::harness
