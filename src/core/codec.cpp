#include "core/codec.hpp"

namespace vsg::wire {

const char* to_string(Version w) noexcept {
  switch (w) {
    case Version::kV1:
      return "v1";
    case Version::kV2:
      return "v2";
    case Version::kV3:
      return "v3";
  }
  return "?";
}

// --- LabelChain (v3 delta-coded label lists) --------------------------------

std::size_t LabelChain::size(const core::Label& l) noexcept {
  const std::size_t n =
      util::svarint_size(static_cast<std::int64_t>(l.id.epoch - prev.id.epoch)) +
      util::svarint_size(static_cast<std::int64_t>(l.id.origin) - prev.id.origin) +
      util::svarint_size(static_cast<std::int64_t>(l.seqno) -
                         static_cast<std::int64_t>(prev.seqno)) +
      util::svarint_size(static_cast<std::int64_t>(l.origin) - prev.origin);
  prev = l;
  return n;
}

void LabelChain::encode(util::Encoder& e, const core::Label& l) {
  e.svarint(static_cast<std::int64_t>(l.id.epoch - prev.id.epoch));
  e.svarint(static_cast<std::int64_t>(l.id.origin) - prev.id.origin);
  e.svarint(static_cast<std::int64_t>(l.seqno) - static_cast<std::int64_t>(prev.seqno));
  e.svarint(static_cast<std::int64_t>(l.origin) - prev.origin);
  prev = l;
}

core::Label LabelChain::decode(util::Decoder& d) {
  core::Label l;
  l.id.epoch = prev.id.epoch + static_cast<std::uint64_t>(d.svarint());
  l.id.origin = static_cast<ProcId>(prev.id.origin + d.svarint());
  l.seqno = static_cast<std::uint32_t>(static_cast<std::int64_t>(prev.seqno) + d.svarint());
  l.origin = static_cast<ProcId>(prev.origin + d.svarint());
  prev = l;
  return l;
}

// --- ViewId -----------------------------------------------------------------

std::size_t Codec<core::ViewId>::size(const core::ViewId& g, Version w) {
  if (w != Version::kV3) return 8 + 4;
  return util::uvarint_size(g.epoch) +
         util::uvarint_size(static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.origin)));
}

void Codec<core::ViewId>::encode(util::Encoder& e, const core::ViewId& g, Version w) {
  if (w != Version::kV3) {
    e.u64(g.epoch);
    e.u32(static_cast<std::uint32_t>(g.origin));
    return;
  }
  e.uvarint(g.epoch);
  e.uvarint(static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.origin)));
}

core::ViewId Codec<core::ViewId>::decode(util::Decoder& d, Version w) {
  core::ViewId g;
  if (w != Version::kV3) {
    g.epoch = d.u64();
    g.origin = static_cast<ProcId>(d.u32());
    return g;
  }
  g.epoch = d.uvarint();
  g.origin = static_cast<ProcId>(static_cast<std::uint32_t>(d.uvarint()));
  return g;
}

// --- View -------------------------------------------------------------------

std::size_t Codec<core::View>::size(const core::View& v, Version w) {
  if (w != Version::kV3) return 12 + 4 + 4 * v.members.size();
  std::size_t n = Codec<core::ViewId>::size(v.id, w) + util::uvarint_size(v.members.size());
  ProcId prev = 0;
  for (ProcId p : v.members) {
    n += util::svarint_size(static_cast<std::int64_t>(p) - prev);
    prev = p;
  }
  return n;
}

void Codec<core::View>::encode(util::Encoder& e, const core::View& v, Version w) {
  Codec<core::ViewId>::encode(e, v.id, w);
  if (w != Version::kV3) {
    e.u32(static_cast<std::uint32_t>(v.members.size()));
    for (ProcId p : v.members) e.u32(static_cast<std::uint32_t>(p));
    return;
  }
  e.uvarint(v.members.size());
  ProcId prev = 0;
  for (ProcId p : v.members) {  // set iteration is ascending: deltas stay small
    e.svarint(static_cast<std::int64_t>(p) - prev);
    prev = p;
  }
}

core::View Codec<core::View>::decode(util::Decoder& d, Version w) {
  core::View v;
  v.id = Codec<core::ViewId>::decode(d, w);
  if (w != Version::kV3) {
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n && d.ok(); ++i)
      v.members.insert(static_cast<ProcId>(d.u32()));
    return v;
  }
  const std::uint64_t n = d.uvarint();
  ProcId prev = 0;
  for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
    prev = static_cast<ProcId>(prev + d.svarint());
    v.members.insert(prev);
  }
  return v;
}

// --- Label ------------------------------------------------------------------

std::size_t Codec<core::Label>::size(const core::Label& l, Version w) {
  if (w != Version::kV3) return 12 + 4 + 4;
  LabelChain chain;
  return chain.size(l);
}

void Codec<core::Label>::encode(util::Encoder& e, const core::Label& l, Version w) {
  if (w != Version::kV3) {
    e.u64(l.id.epoch);
    e.u32(static_cast<std::uint32_t>(l.id.origin));
    e.u32(l.seqno);
    e.u32(static_cast<std::uint32_t>(l.origin));
    return;
  }
  LabelChain chain;
  chain.encode(e, l);
}

core::Label Codec<core::Label>::decode(util::Decoder& d, Version w) {
  if (w != Version::kV3) {
    core::Label l;
    l.id.epoch = d.u64();
    l.id.origin = static_cast<ProcId>(d.u32());
    l.seqno = d.u32();
    l.origin = static_cast<ProcId>(d.u32());
    return l;
  }
  LabelChain chain;
  return chain.decode(d);
}

// --- Summary ----------------------------------------------------------------

std::size_t Codec<core::Summary>::size(const core::Summary& x, Version w) {
  if (w != Version::kV3) {
    std::size_t n = 4;  // con count
    for (const auto& [l, a] : x.con) n += 20 + 4 + a.size();
    n += 4 + 20 * x.ord.size();
    n += 4;  // next
    n += 1 + (x.high ? Codec<core::ViewId>::size(*x.high, w) : 0);
    return n;
  }
  std::size_t n = util::uvarint_size(x.con.size());
  LabelChain con_chain;
  for (const auto& [l, a] : x.con)
    n += con_chain.size(l) + util::uvarint_size(a.size()) + a.size();
  n += util::uvarint_size(x.ord.size());
  LabelChain ord_chain;
  for (const auto& l : x.ord) n += ord_chain.size(l);
  n += util::uvarint_size(x.next);
  n += 1 + (x.high ? Codec<core::ViewId>::size(*x.high, w) : 0);
  return n;
}

void Codec<core::Summary>::encode(util::Encoder& e, const core::Summary& x, Version w) {
  if (w != Version::kV3) {
    e.u32(static_cast<std::uint32_t>(x.con.size()));
    for (const auto& [l, a] : x.con) {
      Codec<core::Label>::encode(e, l, w);
      e.str(a);
    }
    e.u32(static_cast<std::uint32_t>(x.ord.size()));
    for (const auto& l : x.ord) Codec<core::Label>::encode(e, l, w);
    e.u32(x.next);
    e.boolean(x.high.has_value());
    if (x.high) Codec<core::ViewId>::encode(e, *x.high, w);
    return;
  }
  e.uvarint(x.con.size());
  LabelChain con_chain;
  for (const auto& [l, a] : x.con) {
    con_chain.encode(e, l);
    e.vstr(a);
  }
  e.uvarint(x.ord.size());
  LabelChain ord_chain;
  for (const auto& l : x.ord) ord_chain.encode(e, l);
  e.uvarint(x.next);
  e.boolean(x.high.has_value());
  if (x.high) Codec<core::ViewId>::encode(e, *x.high, w);
}

core::Summary Codec<core::Summary>::decode(util::Decoder& d, Version w) {
  core::Summary x;
  if (w != Version::kV3) {
    const std::uint32_t ncon = d.u32();
    for (std::uint32_t i = 0; i < ncon && d.ok(); ++i) {
      core::Label l = Codec<core::Label>::decode(d, w);
      x.con[l] = d.str();
    }
    const std::uint32_t nord = d.u32();
    for (std::uint32_t i = 0; i < nord && d.ok(); ++i)
      x.ord.push_back(Codec<core::Label>::decode(d, w));
    x.next = d.u32();
    if (d.boolean()) x.high = Codec<core::ViewId>::decode(d, w);
    return x;
  }
  const std::uint64_t ncon = d.uvarint();
  LabelChain con_chain;
  for (std::uint64_t i = 0; i < ncon && d.ok(); ++i) {
    core::Label l = con_chain.decode(d);
    x.con[l] = d.vstr();
  }
  const std::uint64_t nord = d.uvarint();
  LabelChain ord_chain;
  for (std::uint64_t i = 0; i < nord && d.ok(); ++i) x.ord.push_back(ord_chain.decode(d));
  x.next = static_cast<std::uint32_t>(d.uvarint());
  if (d.boolean()) x.high = Codec<core::ViewId>::decode(d, w);
  return x;
}

// --- SummaryDigest ----------------------------------------------------------
//
// Digest/delta layouts are varint-coded regardless of `w` (they are v3-era
// messages with no legacy layout); the version still flows through for the
// nested viewids so a future v4 can re-code them without a new type.

namespace {

/// Stream keys are (viewid, origin) triples delta-coded like labels.
struct StreamChain {
  core::LabelStream prev{core::ViewId{}, 0};

  std::size_t size(const core::LabelStream& s) noexcept {
    const std::size_t n =
        util::svarint_size(static_cast<std::int64_t>(s.first.epoch - prev.first.epoch)) +
        util::svarint_size(static_cast<std::int64_t>(s.first.origin) - prev.first.origin) +
        util::svarint_size(static_cast<std::int64_t>(s.second) - prev.second);
    prev = s;
    return n;
  }
  void encode(util::Encoder& e, const core::LabelStream& s) {
    e.svarint(static_cast<std::int64_t>(s.first.epoch - prev.first.epoch));
    e.svarint(static_cast<std::int64_t>(s.first.origin) - prev.first.origin);
    e.svarint(static_cast<std::int64_t>(s.second) - prev.second);
    prev = s;
  }
  core::LabelStream decode(util::Decoder& d) {
    core::LabelStream s;
    s.first.epoch = prev.first.epoch + static_cast<std::uint64_t>(d.svarint());
    s.first.origin = static_cast<ProcId>(prev.first.origin + d.svarint());
    s.second = static_cast<ProcId>(prev.second + d.svarint());
    prev = s;
    return s;
  }
};

}  // namespace

std::size_t Codec<core::SummaryDigest>::size(const core::SummaryDigest& g, Version w) {
  std::size_t n = util::uvarint_size(g.next) + util::uvarint_size(g.ord_len);
  n += 1 + (g.high ? Codec<core::ViewId>::size(*g.high, w) : 0);
  n += util::uvarint_size(g.marks.size());
  StreamChain chain;
  for (const auto& [s, wm] : g.marks) n += chain.size(s) + util::uvarint_size(wm);
  return n;
}

void Codec<core::SummaryDigest>::encode(util::Encoder& e, const core::SummaryDigest& g,
                                        Version w) {
  e.uvarint(g.next);
  e.uvarint(g.ord_len);
  e.boolean(g.high.has_value());
  if (g.high) Codec<core::ViewId>::encode(e, *g.high, w);
  e.uvarint(g.marks.size());
  StreamChain chain;
  for (const auto& [s, wm] : g.marks) {
    chain.encode(e, s);
    e.uvarint(wm);
  }
}

core::SummaryDigest Codec<core::SummaryDigest>::decode(util::Decoder& d, Version w) {
  core::SummaryDigest g;
  g.next = static_cast<std::uint32_t>(d.uvarint());
  g.ord_len = static_cast<std::uint32_t>(d.uvarint());
  if (d.boolean()) g.high = Codec<core::ViewId>::decode(d, w);
  const std::uint64_t n = d.uvarint();
  StreamChain chain;
  for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
    const core::LabelStream s = chain.decode(d);
    g.marks[s] = static_cast<std::uint32_t>(d.uvarint());
  }
  return g;
}

// --- SummaryDelta -----------------------------------------------------------

std::size_t Codec<core::SummaryDelta>::size(const core::SummaryDelta& dl, Version w) {
  std::size_t n = util::uvarint_size(dl.next);
  n += 1 + (dl.high ? Codec<core::ViewId>::size(*dl.high, w) : 0);
  n += util::uvarint_size(dl.ord_prefix);
  n += util::uvarint_size(dl.ord_suffix.size());
  LabelChain ord_chain;
  for (const auto& l : dl.ord_suffix) n += ord_chain.size(l);
  n += util::uvarint_size(dl.con.size());
  LabelChain con_chain;
  for (const auto& [l, a] : dl.con)
    n += con_chain.size(l) + util::uvarint_size(a.size()) + a.size();
  return n;
}

void Codec<core::SummaryDelta>::encode(util::Encoder& e, const core::SummaryDelta& dl,
                                       Version w) {
  e.uvarint(dl.next);
  e.boolean(dl.high.has_value());
  if (dl.high) Codec<core::ViewId>::encode(e, *dl.high, w);
  e.uvarint(dl.ord_prefix);
  e.uvarint(dl.ord_suffix.size());
  LabelChain ord_chain;
  for (const auto& l : dl.ord_suffix) ord_chain.encode(e, l);
  e.uvarint(dl.con.size());
  LabelChain con_chain;
  for (const auto& [l, a] : dl.con) {
    con_chain.encode(e, l);
    e.vstr(a);
  }
}

core::SummaryDelta Codec<core::SummaryDelta>::decode(util::Decoder& d, Version w) {
  core::SummaryDelta dl;
  dl.next = static_cast<std::uint32_t>(d.uvarint());
  if (d.boolean()) dl.high = Codec<core::ViewId>::decode(d, w);
  dl.ord_prefix = static_cast<std::uint32_t>(d.uvarint());
  const std::uint64_t nord = d.uvarint();
  LabelChain ord_chain;
  for (std::uint64_t i = 0; i < nord && d.ok(); ++i)
    dl.ord_suffix.push_back(ord_chain.decode(d));
  const std::uint64_t ncon = d.uvarint();
  LabelChain con_chain;
  for (std::uint64_t i = 0; i < ncon && d.ok(); ++i) {
    core::Label l = con_chain.decode(d);
    dl.con[l] = d.vstr();
  }
  return dl;
}

}  // namespace vsg::wire
