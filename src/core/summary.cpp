#include "core/summary.hpp"

#include <algorithm>
#include <set>
#include <cassert>

#include "core/codec.hpp"
#include "util/sequence.hpp"

namespace vsg::core {

std::vector<Label> confirmed_prefix(const Summary& x) {
  const std::size_t len =
      std::min<std::size_t>(x.next == 0 ? 0 : x.next - 1, x.ord.size());
  return util::prefix_of(x.ord, len);
}

std::map<Label, Value> knowncontent(const SummaryMap& y) {
  std::map<Label, Value> all;
  for (const auto& [q, x] : y) all.insert(x.con.begin(), x.con.end());
  return all;
}

std::optional<ViewId> maxprimary(const SummaryMap& y) {
  assert(!y.empty());
  std::optional<ViewId> best;
  for (const auto& [q, x] : y)
    if (x.high && (!best || *x.high > *best)) best = x.high;
  return best;
}

std::vector<ProcId> reps(const SummaryMap& y) {
  const auto best = maxprimary(y);
  std::vector<ProcId> out;
  for (const auto& [q, x] : y)
    if (x.high == best) out.push_back(q);
  return out;
}

ProcId chosenrep(const SummaryMap& y) {
  const auto r = reps(y);
  assert(!r.empty());
  return *std::max_element(r.begin(), r.end());
}

std::vector<Label> shortorder(const SummaryMap& y) {
  return y.at(chosenrep(y)).ord;
}

std::vector<Label> fullorder(const SummaryMap& y) {
  std::vector<Label> order = shortorder(y);
  const std::set<Label> in_short(order.begin(), order.end());
  // Append every known label not already in the short order, in label order
  // (map iteration is already sorted by label). The prefix keeps the
  // representative's ordering, exactly as Figure 8 specifies.
  for (const auto& [l, a] : knowncontent(y))
    if (in_short.count(l) == 0) order.push_back(l);
  return order;
}

std::uint32_t maxnextconfirm(const SummaryMap& y) {
  std::uint32_t best = 1;
  for (const auto& [q, x] : y) best = std::max(best, x.next);
  return best;
}

SummaryDigest digest(const Summary& x) {
  SummaryDigest g;
  g.next = x.next;
  g.ord_len = static_cast<std::uint32_t>(x.ord.size());
  g.high = x.high;
  // One pass over con (sorted by label = (view, seqno, origin), so each
  // stream's labels appear in increasing seqno order even though streams
  // interleave): extend a stream's watermark only while the prefix is dense.
  for (const auto& [l, a] : x.con) {
    const LabelStream s{l.id, l.origin};
    auto [it, inserted] = g.marks.try_emplace(s, 0);
    if (l.seqno == it->second + 1) it->second = l.seqno;
  }
  // Streams with no dense prefix (first held seqno > 1) carry watermark 0 —
  // the same as absent. Drop them so equal knowledge yields equal digests.
  for (auto it = g.marks.begin(); it != g.marks.end();)
    it = it->second == 0 ? g.marks.erase(it) : std::next(it);
  return g;
}

SummaryDigest meet(const SummaryDigest& a, const SummaryDigest& b) {
  SummaryDigest m;
  m.next = std::min(a.next, b.next);
  m.ord_len = std::min(a.ord_len, b.ord_len);
  if (a.high && b.high) m.high = std::min(*a.high, *b.high);
  for (const auto& [s, w] : a.marks) {
    const auto it = b.marks.find(s);
    if (it != b.marks.end()) m.marks[s] = std::min(w, it->second);
  }
  return m;
}

SummaryDelta delta(const Summary& a, const SummaryDigest& d) {
  SummaryDelta dl;
  dl.next = a.next;
  dl.high = a.high;
  const std::size_t shared = std::min(
      {static_cast<std::size_t>(a.next == 0 ? 0 : a.next - 1),
       static_cast<std::size_t>(d.next == 0 ? 0 : d.next - 1),
       static_cast<std::size_t>(d.ord_len), a.ord.size()});
  dl.ord_prefix = static_cast<std::uint32_t>(shared);
  dl.ord_suffix.assign(a.ord.begin() + static_cast<std::ptrdiff_t>(shared), a.ord.end());
  for (const auto& [l, v] : a.con) {
    const auto it = d.marks.find(LabelStream{l.id, l.origin});
    const std::uint32_t wm = it == d.marks.end() ? 0 : it->second;
    if (l.seqno > wm) dl.con.emplace(l, v);
  }
  return dl;
}

std::optional<Summary> apply_delta(const SummaryDelta& dl, const Summary& base) {
  if (dl.ord_prefix > base.ord.size()) return std::nullopt;
  Summary x;
  x.next = dl.next;
  x.high = dl.high;
  x.ord.assign(base.ord.begin(), base.ord.begin() + dl.ord_prefix);
  x.ord.insert(x.ord.end(), dl.ord_suffix.begin(), dl.ord_suffix.end());
  x.con = dl.con;
  // Fill from the receiver's own watermark-covered entries. The sender
  // omitted only entries under the *meet* watermark, which is <= ours, and
  // label -> value is a function (Lemma 6.5), so every omitted entry is
  // restored bit-identically; extras beyond the sender's con are entries we
  // hold anyway (union-equivalent for every consumer of gotstate).
  const SummaryDigest own = digest(base);
  for (const auto& [l, v] : base.con) {
    const auto it = own.marks.find(LabelStream{l.id, l.origin});
    if (it != own.marks.end() && l.seqno <= it->second) x.con.emplace(l, v);
  }
  return x;
}

// Deprecated shims over wire::Codec<Summary> (legacy fixed-width layout; see
// core/codec.hpp). New call sites pass an explicit version to the Codec.

void encode(util::Encoder& e, const Summary& x) {
  wire::Codec<Summary>::encode(e, x, wire::Version::kV2);
}

Summary decode_summary(util::Decoder& d) {
  return wire::Codec<Summary>::decode(d, wire::Version::kV2);
}

}  // namespace vsg::core
