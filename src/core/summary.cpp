#include "core/summary.hpp"

#include <algorithm>
#include <set>
#include <cassert>

#include "util/sequence.hpp"

namespace vsg::core {

std::vector<Label> confirmed_prefix(const Summary& x) {
  const std::size_t len =
      std::min<std::size_t>(x.next == 0 ? 0 : x.next - 1, x.ord.size());
  return util::prefix_of(x.ord, len);
}

std::map<Label, Value> knowncontent(const SummaryMap& y) {
  std::map<Label, Value> all;
  for (const auto& [q, x] : y) all.insert(x.con.begin(), x.con.end());
  return all;
}

std::optional<ViewId> maxprimary(const SummaryMap& y) {
  assert(!y.empty());
  std::optional<ViewId> best;
  for (const auto& [q, x] : y)
    if (x.high && (!best || *x.high > *best)) best = x.high;
  return best;
}

std::vector<ProcId> reps(const SummaryMap& y) {
  const auto best = maxprimary(y);
  std::vector<ProcId> out;
  for (const auto& [q, x] : y)
    if (x.high == best) out.push_back(q);
  return out;
}

ProcId chosenrep(const SummaryMap& y) {
  const auto r = reps(y);
  assert(!r.empty());
  return *std::max_element(r.begin(), r.end());
}

std::vector<Label> shortorder(const SummaryMap& y) {
  return y.at(chosenrep(y)).ord;
}

std::vector<Label> fullorder(const SummaryMap& y) {
  std::vector<Label> order = shortorder(y);
  const std::set<Label> in_short(order.begin(), order.end());
  // Append every known label not already in the short order, in label order
  // (map iteration is already sorted by label). The prefix keeps the
  // representative's ordering, exactly as Figure 8 specifies.
  for (const auto& [l, a] : knowncontent(y))
    if (in_short.count(l) == 0) order.push_back(l);
  return order;
}

std::uint32_t maxnextconfirm(const SummaryMap& y) {
  std::uint32_t best = 1;
  for (const auto& [q, x] : y) best = std::max(best, x.next);
  return best;
}

void encode(util::Encoder& e, const Summary& x) {
  e.u32(static_cast<std::uint32_t>(x.con.size()));
  for (const auto& [l, a] : x.con) {
    encode(e, l);
    e.str(a);
  }
  e.u32(static_cast<std::uint32_t>(x.ord.size()));
  for (const auto& l : x.ord) encode(e, l);
  e.u32(x.next);
  e.boolean(x.high.has_value());
  if (x.high) encode(e, *x.high);
}

Summary decode_summary(util::Decoder& d) {
  Summary x;
  const std::uint32_t ncon = d.u32();
  for (std::uint32_t i = 0; i < ncon && d.ok(); ++i) {
    Label l = decode_label(d);
    x.con[l] = d.str();
  }
  const std::uint32_t nord = d.u32();
  for (std::uint32_t i = 0; i < nord && d.ok(); ++i) x.ord.push_back(decode_label(d));
  x.next = d.u32();
  if (d.boolean()) x.high = decode_viewid(d);
  return x;
}

}  // namespace vsg::core
