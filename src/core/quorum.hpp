#pragma once

// Quorum systems (Section 5). VStoTO fixes a set Q of quorums, pairwise
// intersecting; a view is *primary* iff its membership contains a quorum.
// The paper notes quorums need not be precomputed (e.g. majorities), so the
// abstraction is a predicate over membership sets.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace vsg::core {

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  /// True iff `s` contains some quorum (the primary-view test).
  virtual bool contains_quorum(const std::set<ProcId>& s) const = 0;

  virtual std::string name() const = 0;
};

/// Majorities of a universe of n processors: |s| > n/2. The canonical
/// pairwise-intersecting family.
class MajorityQuorums final : public QuorumSystem {
 public:
  explicit MajorityQuorums(int n);
  bool contains_quorum(const std::set<ProcId>& s) const override;
  std::string name() const override;

 private:
  int n_;
};

/// Weighted majorities: sum of weights in s must exceed half the total.
/// Models deployments where some replicas matter more (e.g. a tie-breaker).
class WeightedQuorums final : public QuorumSystem {
 public:
  /// weights[p] is the weight of processor p; all weights must be >= 0 and
  /// their sum positive.
  explicit WeightedQuorums(std::vector<int> weights);
  bool contains_quorum(const std::set<ProcId>& s) const override;
  std::string name() const override;

 private:
  std::vector<int> weights_;
  long long total_;
};

/// An explicit, validated family of quorums: s is primary iff it contains
/// one of the listed sets. The constructor checks pairwise intersection,
/// the property all of Section 6's proofs rely on.
class ExplicitQuorums final : public QuorumSystem {
 public:
  /// Throws std::invalid_argument if two listed quorums are disjoint.
  explicit ExplicitQuorums(std::vector<std::set<ProcId>> quorums);
  bool contains_quorum(const std::set<ProcId>& s) const override;
  std::string name() const override;

 private:
  std::vector<std::set<ProcId>> quorums_;
};

/// Convenience: shared majority system over n processors.
std::shared_ptr<const QuorumSystem> majorities(int n);

}  // namespace vsg::core
