#pragma once

// Domain types from the paper (Section 4): view identifiers, views, values.
//
// G, the totally ordered set of view identifiers, is realized as
// (epoch, origin) pairs ordered lexicographically — exactly the scheme the
// paper suggests for the Cristian-Schmuck implementation ("viewids have a
// procid as low-order part and a stable epoch as high-order part"), which
// also gives system-wide uniqueness. The initial identifier g0 = (0, 0) is
// minimal.

#include <compare>
#include <cstdint>
#include <set>
#include <string>

#include "util/serde.hpp"
#include "util/types.hpp"

namespace vsg::core {

/// A client data value (the paper's set A). Opaque application payload.
using Value = std::string;

/// View identifier; element of the totally ordered set G.
struct ViewId {
  std::uint64_t epoch = 0;
  ProcId origin = 0;

  auto operator<=>(const ViewId&) const = default;

  /// The paper's g0: the minimal identifier, carried by the initial view.
  static constexpr ViewId initial() noexcept { return ViewId{0, 0}; }
};

/// A view: identifier plus membership set (the paper's `views = G x P(P)`).
struct View {
  ViewId id;
  std::set<ProcId> members;

  bool operator==(const View&) const = default;
  bool contains(ProcId p) const { return members.count(p) != 0; }
};

std::string to_string(const ViewId& g);
std::string to_string(const View& v);
std::string to_string(const std::set<ProcId>& s);

/// Deprecated: thin shims over wire::Codec<T> (core/codec.hpp) pinning the
/// legacy fixed-width layout. New call sites should use the Codec with an
/// explicit wire::Version.
void encode(util::Encoder& e, const ViewId& g);
ViewId decode_viewid(util::Decoder& d);

void encode(util::Encoder& e, const View& v);
View decode_view(util::Decoder& d);

/// Exact wire sizes of the legacy encodings above, used as Encoder::reserve
/// hints so a whole message encodes with one allocation (wire_fuzz/serde
/// tests assert the measured and actual sizes agree). Version-dependent
/// sizes come from wire::Codec<T>::size.
constexpr std::size_t encoded_size(const ViewId&) noexcept { return 8 + 4; }
inline std::size_t encoded_size(const View& v) noexcept {
  return 12 + 4 + 4 * v.members.size();
}

/// The distinguished initial view v0 = (g0, P0). P0 = {0..n0-1}: the first
/// n0 processors form the group at time zero; the rest start with view
/// undefined (the paper's hybrid initial-view rule, Section 1 item 3).
View initial_view(int n0);

}  // namespace vsg::core
