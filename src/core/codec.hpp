#pragma once

// The versioned wire codec API (docs/WIRE.md).
//
// One frame version byte selects the byte layout of everything inside the
// frame, and Codec<T> is the single switch point: each specialization
// provides the (size, encode, decode) triple for its type under every known
// version, so a new wire revision extends the specializations instead of
// forking call sites. Layout summary:
//
//   v1/v2 — fixed-width little-endian fields (the PR 5 layouts, byte-for-
//           byte; v1 vs v2 differ only in the token entries section, which
//           lives in membership's Codec<Token>).
//   v3    — varint frame bodies: LEB128 counters and lengths, zigzag
//           svarint deltas for label/viewid components (labels in a list
//           are delta-coded against their predecessor). The 9-byte frame
//           header itself stays fixed-width so the checksum can be
//           back-patched in place.
//
// Codec sizes are exact: Codec<T>::size(x, w) equals the bytes encode
// produces, so a measured Encoder::reserve still costs one allocation.
//
// The namespace is vsg::wire (not core or membership): versions cross every
// layer, and membership reopens it to specialize Codec for its packet types.

#include <cstdint>
#include <optional>
#include <string>

#include "core/label.hpp"
#include "core/summary.hpp"
#include "core/types.hpp"
#include "util/serde.hpp"

namespace vsg::wire {

/// Frame-header wire version (docs/WIRE.md). kV1 is the flat token-entries
/// layout, kV2 batches entries into same-source segments, kV3 varint-codes
/// frame bodies and carries the digest/delta state exchange.
enum class Version : std::uint8_t { kV1 = 1, kV2 = 2, kV3 = 3 };

constexpr bool known_version(std::uint8_t v) noexcept {
  return v >= static_cast<std::uint8_t>(Version::kV1) &&
         v <= static_cast<std::uint8_t>(Version::kV3);
}

const char* to_string(Version w) noexcept;

/// VSTOTO payload tags (the byte below the frame layer; docs/WIRE.md,
/// "VSTOTO payload layer"). Hoisted here because the membership layer peeks
/// at them — without decoding — to classify state-exchange bytes for the
/// ring.state_exchange_bytes.{summary,digest,delta} counters.
inline constexpr std::uint8_t kPayloadValue = 1;
inline constexpr std::uint8_t kPayloadSummary = 2;
inline constexpr std::uint8_t kPayloadDigest = 3;
inline constexpr std::uint8_t kPayloadDelta = 4;

/// The versioned codec for one wire type. Specializations provide:
///   static std::size_t size(const T& x, Version w);    // exact
///   static void encode(util::Encoder& e, const T& x, Version w);
///   static T decode(util::Decoder& d, Version w);      // defensive: d.ok()
/// decode never throws; callers check the decoder's ok()/complete() once
/// per message (the outcome-API wrappers in each layer do this).
template <typename T>
struct Codec;

/// Outcome of a non-throwing decode: engaged value or a reject reason.
/// The packet-layer instance (membership::DecodeOutcome) predates this
/// template and keeps its `packet` member name; new decode entry points
/// (vstoto::decode_message_ex) use this shape.
template <typename T>
struct DecodeOutcome {
  std::optional<T> value;
  std::string error;
  bool ok() const noexcept { return value.has_value(); }
};

template <>
struct Codec<core::ViewId> {
  static std::size_t size(const core::ViewId& g, Version w);
  static void encode(util::Encoder& e, const core::ViewId& g, Version w);
  static core::ViewId decode(util::Decoder& d, Version w);
};

template <>
struct Codec<core::View> {
  static std::size_t size(const core::View& v, Version w);
  static void encode(util::Encoder& e, const core::View& v, Version w);
  static core::View decode(util::Decoder& d, Version w);
};

template <>
struct Codec<core::Label> {
  static std::size_t size(const core::Label& l, Version w);
  static void encode(util::Encoder& e, const core::Label& l, Version w);
  static core::Label decode(util::Decoder& d, Version w);
};

template <>
struct Codec<core::Summary> {
  static std::size_t size(const core::Summary& x, Version w);
  static void encode(util::Encoder& e, const core::Summary& x, Version w);
  static core::Summary decode(util::Decoder& d, Version w);
};

/// Digest and delta frames exist only in the v3 exchange; their layout is
/// varint-coded under every version (there is no legacy layout to keep).
template <>
struct Codec<core::SummaryDigest> {
  static std::size_t size(const core::SummaryDigest& g, Version w);
  static void encode(util::Encoder& e, const core::SummaryDigest& g, Version w);
  static core::SummaryDigest decode(util::Decoder& d, Version w);
};

template <>
struct Codec<core::SummaryDelta> {
  static std::size_t size(const core::SummaryDelta& dl, Version w);
  static void encode(util::Encoder& e, const core::SummaryDelta& dl, Version w);
  static core::SummaryDelta decode(util::Decoder& d, Version w);
};

/// Delta-coded label lists (v3): each label is four zigzag svarints relative
/// to its predecessor (epoch, viewid origin, seqno, origin), starting from
/// the all-zero label. Exposed for the token/summary codecs and the mirror
/// property tests.
struct LabelChain {
  core::Label prev;
  std::size_t size(const core::Label& l) noexcept;
  void encode(util::Encoder& e, const core::Label& l);
  core::Label decode(util::Decoder& d);
};

}  // namespace vsg::wire
