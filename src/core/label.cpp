#include "core/label.hpp"

#include <sstream>

#include "core/codec.hpp"

namespace vsg::core {

std::string to_string(const Label& l) {
  std::ostringstream os;
  os << "<" << to_string(l.id) << "#" << l.seqno << "@" << l.origin << ">";
  return os.str();
}

// Deprecated shims over wire::Codec<Label> (legacy fixed-width layout; see
// core/codec.hpp). New call sites pass an explicit version to the Codec.

void encode(util::Encoder& e, const Label& l) {
  wire::Codec<Label>::encode(e, l, wire::Version::kV2);
}

Label decode_label(util::Decoder& d) {
  return wire::Codec<Label>::decode(d, wire::Version::kV2);
}

}  // namespace vsg::core
