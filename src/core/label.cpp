#include "core/label.hpp"

#include <sstream>

namespace vsg::core {

std::string to_string(const Label& l) {
  std::ostringstream os;
  os << "<" << to_string(l.id) << "#" << l.seqno << "@" << l.origin << ">";
  return os.str();
}

void encode(util::Encoder& e, const Label& l) {
  encode(e, l.id);
  e.u32(l.seqno);
  e.u32(static_cast<std::uint32_t>(l.origin));
}

Label decode_label(util::Decoder& d) {
  Label l;
  l.id = decode_viewid(d);
  l.seqno = d.u32();
  l.origin = static_cast<ProcId>(d.u32());
  return l;
}

}  // namespace vsg::core
