#include "core/types.hpp"

#include <sstream>

#include "core/codec.hpp"

namespace vsg::core {

std::string to_string(const ViewId& g) {
  std::ostringstream os;
  os << "g(" << g.epoch << "." << g.origin << ")";
  return os.str();
}

std::string to_string(const std::set<ProcId>& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (ProcId p : s) {
    if (!first) os << ",";
    os << p;
    first = false;
  }
  os << "}";
  return os.str();
}

std::string to_string(const View& v) {
  return to_string(v.id) + to_string(v.members);
}

// The unversioned free functions below are deprecated shims over
// wire::Codec<T> (core/codec.hpp): they pin the legacy fixed-width layout
// (identical under v1 and v2). New call sites should use the Codec with an
// explicit version.

void encode(util::Encoder& e, const ViewId& g) {
  wire::Codec<ViewId>::encode(e, g, wire::Version::kV2);
}

ViewId decode_viewid(util::Decoder& d) {
  return wire::Codec<ViewId>::decode(d, wire::Version::kV2);
}

void encode(util::Encoder& e, const View& v) {
  wire::Codec<View>::encode(e, v, wire::Version::kV2);
}

View decode_view(util::Decoder& d) {
  return wire::Codec<View>::decode(d, wire::Version::kV2);
}

View initial_view(int n0) {
  View v;
  v.id = ViewId::initial();
  for (ProcId p = 0; p < n0; ++p) v.members.insert(p);
  return v;
}

}  // namespace vsg::core
