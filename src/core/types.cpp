#include "core/types.hpp"

#include <sstream>

namespace vsg::core {

std::string to_string(const ViewId& g) {
  std::ostringstream os;
  os << "g(" << g.epoch << "." << g.origin << ")";
  return os.str();
}

std::string to_string(const std::set<ProcId>& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (ProcId p : s) {
    if (!first) os << ",";
    os << p;
    first = false;
  }
  os << "}";
  return os.str();
}

std::string to_string(const View& v) {
  return to_string(v.id) + to_string(v.members);
}

void encode(util::Encoder& e, const ViewId& g) {
  e.u64(g.epoch);
  e.u32(static_cast<std::uint32_t>(g.origin));
}

ViewId decode_viewid(util::Decoder& d) {
  ViewId g;
  g.epoch = d.u64();
  g.origin = static_cast<ProcId>(d.u32());
  return g;
}

void encode(util::Encoder& e, const View& v) {
  encode(e, v.id);
  e.u32(static_cast<std::uint32_t>(v.members.size()));
  for (ProcId p : v.members) e.u32(static_cast<std::uint32_t>(p));
}

View decode_view(util::Decoder& d) {
  View v;
  v.id = decode_viewid(d);
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n && d.ok(); ++i)
    v.members.insert(static_cast<ProcId>(d.u32()));
  return v;
}

View initial_view(int n0) {
  View v;
  v.id = ViewId::initial();
  for (ProcId p = 0; p < n0; ++p) v.members.insert(p);
  return v;
}

}  // namespace vsg::core
