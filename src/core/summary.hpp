#pragma once

// Summaries and the state-exchange algebra of Figure 8.
//
// A summary is the state snapshot a VStoTO process sends at the start of a
// view: summaries = P(L x A) x L* x N x G_bot, with selectors con, ord,
// next, high. The free functions below are literal transcriptions of the
// operations the algorithm applies to the collected summaries (`gotstate`).

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/label.hpp"
#include "core/types.hpp"

namespace vsg::core {

struct Summary {
  /// con: the (label, value) pairs known to the sender. Kept as a map —
  /// Lemma 6.5 proves `con` is a partial function from labels to values.
  std::map<Label, Value> con;
  /// ord: the sender's tentative total order of labels.
  std::vector<Label> ord;
  /// next: the sender's nextconfirm (1-based; labels ord[0..next-2] are
  /// confirmed).
  std::uint32_t next = 1;
  /// high: the sender's highprimary; nullopt is the paper's bottom, ordered
  /// below every view identifier.
  std::optional<ViewId> high;

  bool operator==(const Summary&) const = default;
};

/// The paper's x.confirm: the prefix of x.ord of length
/// min(x.next - 1, length(x.ord)).
std::vector<Label> confirmed_prefix(const Summary& x);

/// Collected state-exchange summaries, keyed by sender (the paper's Y, the
/// `gotstate` partial function).
using SummaryMap = std::map<ProcId, Summary>;

/// knowncontent(Y): union of all con components. Later entries never
/// contradict earlier ones (allcontent is a function — Lemma 6.5).
std::map<Label, Value> knowncontent(const SummaryMap& y);

/// maxprimary(Y): greatest `high` among the summaries (nullopt if all are
/// bottom). Requires y to be nonempty.
std::optional<ViewId> maxprimary(const SummaryMap& y);

/// reps(Y): the members whose summary attains maxprimary(Y).
std::vector<ProcId> reps(const SummaryMap& y);

/// chosenrep(Y): deterministic representative choice — the highest processor
/// id among reps(Y). (The paper allows any rule applied consistently.)
ProcId chosenrep(const SummaryMap& y);

/// shortorder(Y): the chosen representative's ord (adopted by non-primary
/// views).
std::vector<Label> shortorder(const SummaryMap& y);

/// fullorder(Y): shortorder(Y) followed by the remaining labels of
/// dom(knowncontent(Y)) in label order (adopted by primary views).
std::vector<Label> fullorder(const SummaryMap& y);

/// maxnextconfirm(Y): the highest reported nextconfirm.
std::uint32_t maxnextconfirm(const SummaryMap& y);

// --- Anti-entropy digests and deltas (docs/WIRE.md, "v3 state exchange") ----
//
// The digest/delta algebra below implements the two-phase exchange: instead
// of shipping a whole Summary, a process first advertises what it already
// holds (SummaryDigest) and then ships only what the weakest peer provably
// lacks (SummaryDelta). knowncontent/fullorder above are untouched — a
// reconstructed summary is fed into the same SummaryMap algebra, and
// apply_delta guarantees semantic equivalence (exact ord/next/high; con
// equal up to entries the receiver already holds, which union-style
// consumers cannot distinguish).

/// A label stream: all labels minted by one processor in one view. Within a
/// stream, seqnos are dense from 1, so "I hold the full prefix up to w" is
/// one integer per stream.
using LabelStream = std::pair<ViewId, ProcId>;

/// Compact advertisement of a Summary: cursors plus one prefix watermark
/// per label stream. marks[s] = w means the sender holds con entries for
/// every seqno 1..w of stream s (w >= 1; absent streams mean 0).
struct SummaryDigest {
  std::uint32_t next = 1;
  std::uint32_t ord_len = 0;
  std::optional<ViewId> high;
  std::map<LabelStream, std::uint32_t> marks;

  bool operator==(const SummaryDigest&) const = default;
};

/// What a digest's sender lacks of some Summary `a`: full cursors (they are
/// a few bytes), the ord tail past the provably shared confirmed prefix,
/// and the con entries past the digest's stream watermarks.
struct SummaryDelta {
  std::uint32_t next = 1;
  std::optional<ViewId> high;
  /// The receiver keeps base.ord[0 .. ord_prefix) and appends ord_suffix.
  std::uint32_t ord_prefix = 0;
  std::vector<Label> ord_suffix;
  std::map<Label, Value> con;

  bool operator==(const SummaryDelta&) const = default;
};

/// The digest of x: cursors plus per-stream prefix watermarks over x.con.
SummaryDigest digest(const Summary& x);

/// Pointwise weakest of two digests (min cursors, min/intersected marks):
/// the digest of "what every peer certainly holds". A delta computed
/// against meet(all peer digests) is sound for every one of those peers.
SummaryDigest meet(const SummaryDigest& a, const SummaryDigest& b);

/// The delta that upgrades any holder of (at least) digest d to a. The ord
/// split point is the provably shared confirmed prefix:
/// min(a.next - 1, d.next - 1, d.ord_len, |a.ord|) — total-order safety
/// makes confirmed prefixes agree across processes, so the receiver's own
/// base.ord supplies those labels verbatim.
SummaryDelta delta(const Summary& a, const SummaryDigest& d);

/// Reconstruct the sender's summary from `dl` and the receiver's own frozen
/// exchange base. nullopt when dl.ord_prefix exceeds base.ord (possible
/// only for corrupted input; a correct sender never overshoots a digest it
/// was given). The result's con is dl.con plus base's watermark-covered
/// entries — a superset of the sender's con whose extras the receiver
/// already holds (union-equivalent; see the header comment).
std::optional<Summary> apply_delta(const SummaryDelta& dl, const Summary& base);

/// Deprecated: shims over wire::Codec<Summary> (legacy fixed-width layout).
void encode(util::Encoder& e, const Summary& x);
Summary decode_summary(util::Decoder& d);

/// Exact wire size of the legacy encode(e, x) (Encoder::reserve hint).
inline std::size_t encoded_size(const Summary& x) noexcept {
  std::size_t n = 4;  // con count
  for (const auto& [l, a] : x.con) n += encoded_size(l) + 4 + a.size();
  n += 4 + encoded_size(Label{}) * x.ord.size();  // ord
  n += 4;                      // next
  n += 1 + (x.high ? encoded_size(*x.high) : 0);
  return n;
}

}  // namespace vsg::core
