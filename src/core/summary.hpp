#pragma once

// Summaries and the state-exchange algebra of Figure 8.
//
// A summary is the state snapshot a VStoTO process sends at the start of a
// view: summaries = P(L x A) x L* x N x G_bot, with selectors con, ord,
// next, high. The free functions below are literal transcriptions of the
// operations the algorithm applies to the collected summaries (`gotstate`).

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/label.hpp"
#include "core/types.hpp"

namespace vsg::core {

struct Summary {
  /// con: the (label, value) pairs known to the sender. Kept as a map —
  /// Lemma 6.5 proves `con` is a partial function from labels to values.
  std::map<Label, Value> con;
  /// ord: the sender's tentative total order of labels.
  std::vector<Label> ord;
  /// next: the sender's nextconfirm (1-based; labels ord[0..next-2] are
  /// confirmed).
  std::uint32_t next = 1;
  /// high: the sender's highprimary; nullopt is the paper's bottom, ordered
  /// below every view identifier.
  std::optional<ViewId> high;

  bool operator==(const Summary&) const = default;
};

/// The paper's x.confirm: the prefix of x.ord of length
/// min(x.next - 1, length(x.ord)).
std::vector<Label> confirmed_prefix(const Summary& x);

/// Collected state-exchange summaries, keyed by sender (the paper's Y, the
/// `gotstate` partial function).
using SummaryMap = std::map<ProcId, Summary>;

/// knowncontent(Y): union of all con components. Later entries never
/// contradict earlier ones (allcontent is a function — Lemma 6.5).
std::map<Label, Value> knowncontent(const SummaryMap& y);

/// maxprimary(Y): greatest `high` among the summaries (nullopt if all are
/// bottom). Requires y to be nonempty.
std::optional<ViewId> maxprimary(const SummaryMap& y);

/// reps(Y): the members whose summary attains maxprimary(Y).
std::vector<ProcId> reps(const SummaryMap& y);

/// chosenrep(Y): deterministic representative choice — the highest processor
/// id among reps(Y). (The paper allows any rule applied consistently.)
ProcId chosenrep(const SummaryMap& y);

/// shortorder(Y): the chosen representative's ord (adopted by non-primary
/// views).
std::vector<Label> shortorder(const SummaryMap& y);

/// fullorder(Y): shortorder(Y) followed by the remaining labels of
/// dom(knowncontent(Y)) in label order (adopted by primary views).
std::vector<Label> fullorder(const SummaryMap& y);

/// maxnextconfirm(Y): the highest reported nextconfirm.
std::uint32_t maxnextconfirm(const SummaryMap& y);

void encode(util::Encoder& e, const Summary& x);
Summary decode_summary(util::Decoder& d);

/// Exact wire size of encode(e, x) (Encoder::reserve hint).
inline std::size_t encoded_size(const Summary& x) noexcept {
  std::size_t n = 4;  // con count
  for (const auto& [l, a] : x.con) n += encoded_size(l) + 4 + a.size();
  n += 4 + encoded_size(Label{}) * x.ord.size();  // ord
  n += 4;                      // next
  n += 1 + (x.high ? encoded_size(*x.high) : 0);
  return n;
}

}  // namespace vsg::core
