#pragma once

// Labels (Figure 8): L = G x N x P with selectors id, seqno, origin,
// ordered lexicographically. Each client value submitted in a view gets a
// system-wide unique label; the VStoTO total order is an order on labels.

#include <compare>
#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace vsg::core {

struct Label {
  ViewId id;               // viewid at the origin when the value arrived
  std::uint32_t seqno = 1;  // per-(processor, view) sequence number, from 1
  ProcId origin = 0;

  auto operator<=>(const Label&) const = default;
};

std::string to_string(const Label& l);

/// Deprecated: shims over wire::Codec<Label> (legacy fixed-width layout).
void encode(util::Encoder& e, const Label& l);
Label decode_label(util::Decoder& d);

/// Exact wire size of the legacy encode(e, l): viewid + seqno + origin.
constexpr std::size_t encoded_size(const Label&) noexcept { return 12 + 4 + 4; }

}  // namespace vsg::core
