#include "core/quorum.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace vsg::core {

MajorityQuorums::MajorityQuorums(int n) : n_(n) { assert(n > 0); }

bool MajorityQuorums::contains_quorum(const std::set<ProcId>& s) const {
  return 2 * static_cast<int>(s.size()) > n_;
}

std::string MajorityQuorums::name() const {
  return "majority(" + std::to_string(n_) + ")";
}

WeightedQuorums::WeightedQuorums(std::vector<int> weights)
    : weights_(std::move(weights)),
      total_(std::accumulate(weights_.begin(), weights_.end(), 0LL)) {
  if (total_ <= 0) throw std::invalid_argument("WeightedQuorums: total weight must be positive");
  for (int w : weights_)
    if (w < 0) throw std::invalid_argument("WeightedQuorums: negative weight");
}

bool WeightedQuorums::contains_quorum(const std::set<ProcId>& s) const {
  long long sum = 0;
  for (ProcId p : s)
    if (p >= 0 && static_cast<std::size_t>(p) < weights_.size())
      sum += weights_[static_cast<std::size_t>(p)];
  return 2 * sum > total_;
}

std::string WeightedQuorums::name() const { return "weighted"; }

ExplicitQuorums::ExplicitQuorums(std::vector<std::set<ProcId>> quorums)
    : quorums_(std::move(quorums)) {
  if (quorums_.empty()) throw std::invalid_argument("ExplicitQuorums: empty family");
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    for (std::size_t j = i + 1; j < quorums_.size(); ++j) {
      std::vector<ProcId> inter;
      std::set_intersection(quorums_[i].begin(), quorums_[i].end(), quorums_[j].begin(),
                            quorums_[j].end(), std::back_inserter(inter));
      if (inter.empty())
        throw std::invalid_argument("ExplicitQuorums: quorums must pairwise intersect");
    }
  }
}

bool ExplicitQuorums::contains_quorum(const std::set<ProcId>& s) const {
  return std::any_of(quorums_.begin(), quorums_.end(), [&](const std::set<ProcId>& q) {
    return std::includes(s.begin(), s.end(), q.begin(), q.end());
  });
}

std::string ExplicitQuorums::name() const {
  return "explicit(" + std::to_string(quorums_.size()) + ")";
}

std::shared_ptr<const QuorumSystem> majorities(int n) {
  return std::make_shared<MajorityQuorums>(n);
}

}  // namespace vsg::core
