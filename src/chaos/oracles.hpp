#pragma once

// Oracle attachment for chaos executions.
//
// An OracleSet subscribes the online spec checkers to a World's trace
// recorder *before* the run: the TO trace checker (Figure 3 semantics), the
// VS trace checker (Figure 6 semantics), and — on the spec backend, where
// the VS-machine state is observable — the forward-simulation refinement
// checker of Section 6.2. Violations are detected the moment the offending
// event is recorded, against the live system state.
//
// The set must outlive the run (the recorder keeps callbacks into it);
// create it right after the World and keep both until checking is done.

#include <memory>
#include <string>
#include <vector>

#include "harness/world.hpp"
#include "spec/to_trace_checker.hpp"
#include "spec/vs_trace_checker.hpp"
#include "verify/forward_simulation.hpp"

namespace vsg::chaos {

class OracleSet {
 public:
  explicit OracleSet(harness::World& world);

  /// Call once at the quiescent end of the run: the forward-simulation
  /// oracle compares f(state) against its TO-machine image (spec backend
  /// only; a no-op otherwise).
  void finalize();

  /// All violations across the attached oracles, in oracle order.
  std::vector<std::string> violations() const;
  bool ok() const { return violations().empty(); }

  const spec::TOTraceChecker& to() const noexcept { return to_; }
  const spec::VSTraceChecker& vs() const noexcept { return vs_; }

 private:
  spec::TOTraceChecker to_;
  spec::VSTraceChecker vs_;
  std::unique_ptr<verify::SimulationChecker> fsim_;  // spec backend only
};

}  // namespace vsg::chaos
