#pragma once

// Oracle attachment for chaos executions.
//
// An OracleSet subscribes the online spec checkers to a World's trace
// recorders *before* the run: per shard, the TO trace checker (Figure 3
// semantics) and the VS trace checker (Figure 6 semantics), and — on the
// spec backend, where the VS-machine state is observable — the forward-
// simulation refinement checker of Section 6.2. Violations are detected
// the moment the offending event is recorded, against the live system
// state. With K shards each stack gets its own independent checker pair
// (each ring is its own group-communication instance; the paper's
// properties are per instance).
//
// The set must outlive the run (the recorders keep callbacks into it);
// create it right after the World and keep both until checking is done.

#include <memory>
#include <string>
#include <vector>

#include "harness/world.hpp"
#include "spec/to_trace_checker.hpp"
#include "spec/vs_trace_checker.hpp"
#include "verify/forward_simulation.hpp"

namespace vsg::chaos {

class OracleSet {
 public:
  explicit OracleSet(harness::World& world);

  /// Call once at the quiescent end of the run: the forward-simulation
  /// oracle compares f(state) against its TO-machine image (spec backend
  /// only; a no-op otherwise).
  void finalize();

  /// All violations across the attached oracles, in oracle order; with
  /// multiple shards each message is prefixed "shard<k>: ".
  std::vector<std::string> violations() const;
  bool ok() const { return violations().empty(); }

  const spec::TOTraceChecker& to(int shard = 0) const {
    return *to_[static_cast<std::size_t>(shard)];
  }
  const spec::VSTraceChecker& vs(int shard = 0) const {
    return *vs_[static_cast<std::size_t>(shard)];
  }
  int shards() const noexcept { return static_cast<int>(to_.size()); }

 private:
  std::vector<std::unique_ptr<spec::TOTraceChecker>> to_;  // one per shard
  std::vector<std::unique_ptr<spec::VSTraceChecker>> vs_;  // one per shard
  std::unique_ptr<verify::SimulationChecker> fsim_;        // spec backend only
};

}  // namespace vsg::chaos
