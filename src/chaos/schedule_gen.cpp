#include "chaos/schedule_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace vsg::chaos {
namespace {

// Random disjoint covering component set: every processor lands in exactly
// one of 1..min(n,3) buckets, empty buckets dropped.
std::vector<std::set<ProcId>> random_components(int n, util::Rng& rng) {
  const int k = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(std::min(n, 3))));
  std::vector<std::set<ProcId>> buckets(static_cast<std::size_t>(k));
  for (ProcId p = 0; p < n; ++p)
    buckets[rng.below(static_cast<std::uint64_t>(k))].insert(p);
  std::vector<std::set<ProcId>> components;
  for (auto& b : buckets)
    if (!b.empty()) components.push_back(std::move(b));
  return components;
}

sim::Time random_in(sim::Time lo, sim::Time hi, util::Rng& rng) {
  if (hi <= lo) return lo;
  // Millisecond grid: keeps generated (and shrunk) schedules readable.
  const sim::Time t = lo + rng.range(0, hi - lo - 1);
  return t - t % 1000;
}

sim::Status random_fault(util::Rng& rng) {
  return rng.chance(0.5) ? sim::Status::kBad : sim::Status::kUgly;
}

}  // namespace

GeneratedSchedule generate_schedule(const ScheduleConfig& cfg, std::uint64_t seed) {
  if (cfg.n <= 0)
    throw std::invalid_argument("generate_schedule: n must be positive, got n=" +
                                std::to_string(cfg.n));
  // Offset stream from the World seed so schedule randomness and link-level
  // randomness (jitter, corruption) are independent per seed.
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xc8a5);
  GeneratedSchedule out;
  harness::Scenario& s = out.scenario;
  const int n = cfg.n;
  const sim::Time lo = cfg.start;
  const sim::Time hi = std::max(cfg.horizon, lo + 1);

  // Partition/heal churn. Components are always valid covering sets
  // (validate_partition documents the contract; the self-check below makes
  // a generator regression loud instead of a confusing campaign failure).
  for (int i = 0; i < cfg.partition_rounds; ++i) {
    auto components = random_components(n, rng);
    harness::World::validate_partition(n, components);
    s.add(random_in(lo, hi, rng), harness::OpPartition{std::move(components)});
    if (rng.chance(0.6)) s.add(random_in(lo, hi, rng), harness::OpHeal{});
  }

  // Processor fault windows: bad/ugly, restored good before the horizon.
  for (int i = 0; i < cfg.proc_flips; ++i) {
    const auto p = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    const sim::Time down = random_in(lo, hi, rng);
    s.add(down, harness::OpProcStatus{p, random_fault(rng)});
    s.add(random_in(down, hi, rng), harness::OpProcStatus{p, sim::Status::kGood});
  }

  // Directed-link flips (any status, including spurious good).
  for (int i = 0; i < cfg.link_flips && n > 1; ++i) {
    const auto p = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    auto q = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    if (q == p) q = static_cast<ProcId>((q + 1) % n);
    const auto status = static_cast<sim::Status>(rng.below(3));
    s.add(random_in(lo, hi, rng), harness::OpLinkStatus{p, q, status});
  }

  // Token-loss windows: one processor's outgoing links all go bad for a
  // short window, so a token it holds (or receives) is lost and the ring
  // must recover via the token-check timer (Section 8).
  for (int i = 0; i < cfg.token_loss_windows && n > 1; ++i) {
    const auto p = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    const sim::Time at = random_in(lo, hi, rng);
    const sim::Time until = std::min(at + cfg.token_loss_window, hi);
    for (ProcId q = 0; q < n; ++q) {
      if (q == p) continue;
      s.add(at, harness::OpLinkStatus{p, q, sim::Status::kBad});
      s.add(until, harness::OpLinkStatus{p, q, sim::Status::kGood});
    }
  }

  // Failure domains: correlated outages along fixed contiguous processor
  // slices. Either the group partitions exactly at domain boundaries or a
  // whole domain goes bad in one instant; both restore within the window.
  for (int i = 0; i < cfg.failure_domains && n > 1; ++i) {
    const int domains = std::max(2, std::min(cfg.failure_domain_count, n));
    std::vector<std::set<ProcId>> components(static_cast<std::size_t>(domains));
    for (ProcId p = 0; p < n; ++p)
      components[static_cast<std::size_t>(p) * static_cast<std::size_t>(domains) /
                 static_cast<std::size_t>(n)]
          .insert(p);
    components.erase(std::remove_if(components.begin(), components.end(),
                                    [](const std::set<ProcId>& c) { return c.empty(); }),
                     components.end());
    const sim::Time at = random_in(lo, hi, rng);
    const sim::Time until = std::min(at + cfg.failure_domain_window, hi);
    if (rng.chance(0.5)) {
      harness::World::validate_partition(n, components);
      s.add(at, harness::OpPartition{std::move(components)});
      s.add(until, harness::OpHeal{});
    } else {
      const auto& domain = components[rng.below(components.size())];
      for (ProcId p : domain) {
        s.add(at, harness::OpProcStatus{p, sim::Status::kBad});
        s.add(until, harness::OpProcStatus{p, sim::Status::kGood});
      }
    }
  }

  // Client traffic: spread singles plus same-instant bursts, then a little
  // post-heal traffic to exercise the recovered group.
  auto bcast = [&](sim::Time at) {
    const auto p = static_cast<ProcId>(rng.below(static_cast<std::uint64_t>(n)));
    s.add(at, harness::OpBcast{p, "c" + std::to_string(p) + "." + std::to_string(out.bcasts)});
    ++out.bcasts;
  };
  for (int k = 0; k < cfg.traffic; ++k) bcast(random_in(lo, hi, rng));
  for (int b = 0; b < cfg.bursts; ++b) {
    const sim::Time at = random_in(lo, hi, rng);
    for (int k = 0; k < cfg.burst_size; ++k) bcast(at);
  }
  for (int k = 0; k < cfg.post_heal_traffic; ++k)
    bcast(random_in(hi, hi + cfg.quiescence / 4, rng));

  // Stabilization: everything healthy from the horizon on.
  for (ProcId p = 0; p < n; ++p)
    s.add(cfg.horizon, harness::OpProcStatus{p, sim::Status::kGood});
  s.add(cfg.horizon, harness::OpHeal{});

  std::stable_sort(s.ops.begin(), s.ops.end(),
                   [](const harness::TimedOp& a, const harness::TimedOp& b) {
                     return a.at < b.at;
                   });
  out.run_until = cfg.horizon + cfg.quiescence;
  return out;
}

}  // namespace vsg::chaos
