#include "chaos/oracles.hpp"

namespace vsg::chaos {

OracleSet::OracleSet(harness::World& world) {
  const int shards = world.shards();
  to_.reserve(static_cast<std::size_t>(shards));
  vs_.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    to_.push_back(std::make_unique<spec::TOTraceChecker>(world.n()));
    vs_.push_back(std::make_unique<spec::VSTraceChecker>(world.n(), world.n0()));
    to_.back()->attach(world.recorder(k));
    vs_.back()->attach(world.recorder(k));
  }
  if (world.spec_vs() != nullptr) {
    fsim_ = std::make_unique<verify::SimulationChecker>(world.global_state());
    fsim_->attach(world.recorder());
  }
}

void OracleSet::finalize() {
  if (fsim_ != nullptr) fsim_->check_f_matches();
}

std::vector<std::string> OracleSet::violations() const {
  std::vector<std::string> out;
  const bool prefix = to_.size() > 1;
  for (std::size_t k = 0; k < to_.size(); ++k) {
    const std::string tag = prefix ? "shard" + std::to_string(k) + ": " : "";
    for (const auto& v : to_[k]->violations()) out.push_back(tag + v);
    for (const auto& v : vs_[k]->violations()) out.push_back(tag + v);
  }
  if (fsim_ != nullptr)
    out.insert(out.end(), fsim_->violations().begin(), fsim_->violations().end());
  return out;
}

}  // namespace vsg::chaos
