#include "chaos/oracles.hpp"

namespace vsg::chaos {

OracleSet::OracleSet(harness::World& world)
    : to_(world.n()), vs_(world.n(), world.n0()) {
  to_.attach(world.recorder());
  vs_.attach(world.recorder());
  if (world.spec_vs() != nullptr) {
    fsim_ = std::make_unique<verify::SimulationChecker>(world.global_state());
    fsim_->attach(world.recorder());
  }
}

void OracleSet::finalize() {
  if (fsim_ != nullptr) fsim_->check_f_matches();
}

std::vector<std::string> OracleSet::violations() const {
  std::vector<std::string> out;
  out.insert(out.end(), to_.violations().begin(), to_.violations().end());
  out.insert(out.end(), vs_.violations().begin(), vs_.violations().end());
  if (fsim_ != nullptr)
    out.insert(out.end(), fsim_->violations().begin(), fsim_->violations().end());
  return out;
}

}  // namespace vsg::chaos
