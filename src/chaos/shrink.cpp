#include "chaos/shrink.hpp"

#include <algorithm>
#include <optional>

namespace vsg::chaos {
namespace {

struct Shrinker {
  const FailPredicate& fails;
  const ShrinkOptions& opts;
  harness::Scenario best;
  int n;
  int candidates = 0;
  int reductions = 0;

  bool budget_left() const { return candidates < opts.max_candidates; }

  /// Evaluate a candidate; adopt it when it still fails.
  bool try_accept(harness::Scenario candidate, int candidate_n) {
    if (!budget_left()) return false;
    if (candidate.ops == best.ops && candidate_n == n) return false;
    ++candidates;
    if (!fails(candidate, candidate_n)) return false;
    best = std::move(candidate);
    n = candidate_n;
    ++reductions;
    return true;
  }

  /// ddmin over the op list: remove chunks, halving the chunk size.
  bool drop_ops() {
    bool changed = false;
    std::size_t chunk = std::max<std::size_t>(1, best.ops.size() / 2);
    while (chunk >= 1 && budget_left()) {
      bool removed_any = false;
      for (std::size_t start = 0; start < best.ops.size() && budget_left();) {
        harness::Scenario candidate;
        const std::size_t stop = std::min(best.ops.size(), start + chunk);
        candidate.ops.reserve(best.ops.size() - (stop - start));
        candidate.ops.insert(candidate.ops.end(), best.ops.begin(),
                             best.ops.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.ops.insert(candidate.ops.end(),
                             best.ops.begin() + static_cast<std::ptrdiff_t>(stop),
                             best.ops.end());
        if (!candidate.ops.empty() && try_accept(std::move(candidate), n)) {
          changed = removed_any = true;
          // best shrank; the window at `start` now holds fresh ops.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
      if (!removed_any) chunk /= 2;
    }
    return changed;
  }

  /// Restrict the schedule to processors [0, new_n): ops mentioning dropped
  /// processors disappear, partition components lose the dropped members.
  /// Returns nullopt when the restriction degenerates (a partition with no
  /// members left keeps its op count honest by failing the candidate).
  static std::optional<harness::Scenario> restrict_universe(const harness::Scenario& s,
                                                            int new_n) {
    harness::Scenario out;
    for (const auto& timed : s.ops) {
      if (const auto* b = std::get_if<harness::OpBcast>(&timed.op)) {
        if (b->p >= new_n) continue;
      } else if (const auto* ps = std::get_if<harness::OpProcStatus>(&timed.op)) {
        if (ps->p >= new_n) continue;
      } else if (const auto* ls = std::get_if<harness::OpLinkStatus>(&timed.op)) {
        if (ls->p >= new_n || ls->q >= new_n) continue;
      } else if (const auto* part = std::get_if<harness::OpPartition>(&timed.op)) {
        harness::OpPartition restricted;
        for (const auto& comp : part->components) {
          std::set<ProcId> kept;
          for (ProcId p : comp)
            if (p < new_n) kept.insert(p);
          if (!kept.empty()) restricted.components.push_back(std::move(kept));
        }
        if (restricted.components.empty()) return std::nullopt;
        out.add(timed.at, std::move(restricted));
        continue;
      }
      out.ops.push_back(timed);
    }
    if (out.ops.empty()) return std::nullopt;
    return out;
  }

  bool drop_processors() {
    bool changed = false;
    while (n > 2 && budget_left()) {
      auto candidate = restrict_universe(best, n - 1);
      if (!candidate.has_value() || !try_accept(std::move(*candidate), n - 1)) break;
      changed = true;
    }
    return changed;
  }

  /// Times only ever move earlier, preserving op order, so accepted
  /// candidates stay sorted if the input was.
  bool compress_times() {
    bool changed = false;
    // Global halving (on a millisecond grid, keeping order).
    while (budget_left()) {
      harness::Scenario candidate = best;
      sim::Time prev = 0;
      for (auto& timed : candidate.ops) {
        sim::Time t = timed.at / 2;
        t -= t % 1000;
        timed.at = std::max(t, prev);
        prev = timed.at;
      }
      if (!try_accept(std::move(candidate), n)) break;
      changed = true;
    }
    // Pull each op back to its predecessor's time.
    for (std::size_t i = 0; i < best.ops.size() && budget_left(); ++i) {
      const sim::Time target = i == 0 ? 0 : best.ops[i - 1].at;
      if (best.ops[i].at == target) continue;
      harness::Scenario candidate = best;
      candidate.ops[i].at = target;
      if (try_accept(std::move(candidate), n)) changed = true;
    }
    return changed;
  }
};

}  // namespace

ShrinkOutcome shrink_schedule(harness::Scenario scenario, int n, const FailPredicate& fails,
                              const ShrinkOptions& opts) {
  Shrinker sh{fails, opts, std::move(scenario), n};
  for (int round = 0; round < opts.max_rounds && sh.budget_left(); ++round) {
    bool changed = sh.drop_ops();
    if (opts.shrink_universe && sh.drop_processors()) changed = true;
    if (opts.shrink_times && sh.compress_times()) changed = true;
    if (!changed) break;
  }
  return ShrinkOutcome{std::move(sh.best), sh.n, sh.candidates, sh.reductions};
}

}  // namespace vsg::chaos
