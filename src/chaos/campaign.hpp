#pragma once

// Chaos campaign: many seeded random schedules, each executed with the full
// oracle set attached, failures shrunk to minimal repros.
//
// Per seed: generate_schedule -> World(seed) + OracleSet -> run -> collect
// oracle violations plus the recovery oracle (after the healed quiescence
// tail, every processor must have delivered every broadcast value, in one
// identical order — the conclusion of the paper's TO-property once its
// stabilization premise holds). On failure the ddmin shrinker minimizes
// the schedule; repro_text() serializes it as a self-contained scenario
// file (config n/seed/until + ops) replayable by scenario_parser /
// `chaos_runner --replay`.
//
// Campaign statistics report into an obs::MetricsRegistry (chaos.runs,
// chaos.failures, chaos.violations, chaos.ops.*, chaos.shrink.*) so the
// existing --export JSON path publishes them.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/schedule_gen.hpp"
#include "chaos/shrink.hpp"
#include "harness/world.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace vsg::chaos {

struct CampaignConfig {
  ScheduleConfig schedule;
  harness::Backend backend = harness::Backend::kTokenRing;
  net::LinkModel link;  // campaign default enables ugly-link corruption
  membership::TokenRingConfig ring;
  /// Independent VStoTO stacks per World (harness::WorldConfig::shards).
  /// Scripted broadcasts route to shards by value hash; every shard gets
  /// its own oracle pair, recovery check, and fingerprint contribution.
  int shards = 1;
  std::uint64_t first_seed = 1;
  int seeds = 50;
  /// Worker threads for the per-seed run phase (exec::run_parallel): <= 1
  /// runs seeds inline, 0 means hardware concurrency. Seeds are
  /// independent Worlds, so any jobs value yields bit-identical verdicts,
  /// delivery fingerprints, and merged metrics (docs/CHAOS.md, "Parallel
  /// execution"); shrinking and reporting stay serialized in seed order.
  int jobs = 1;
  bool check_recovery = true;
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Optional shared registry; a fresh one is used when null.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Flight-recorder settings for trace-capturing runs (the `enabled` flag
  /// is ignored: campaign runs never trace — that keeps them bit-identical
  /// to untraced fixed-seed runs — and capture replays always trace).
  obs::TraceConfig trace;
  /// Virtual-time telemetry inside every seed's World (off by default).
  /// Sampling only reads registries, so verdicts, delivery fingerprints and
  /// protocol counters stay bit-identical to an unsampled campaign; each
  /// RunResult additionally carries its timeline and health events.
  obs::SamplerConfig sampler;
  /// Treat obs::Health watchdog events as soft-oracle verdicts: every event
  /// becomes a "health: <rule> ..." violation, so a stalled ring or an
  /// unbounded backlog fails the seed, gets ddmin-shrunk (preserving the
  /// set of fired rules) and lands in the repro manifest like any other
  /// failure. Requires sampler.enabled to observe anything.
  bool health_oracle = false;

  CampaignConfig() { link.ugly_corrupt = 0.25; }
};

struct RunResult {
  std::vector<std::string> violations;
  /// Chrome trace-event JSON of the run's flight recorder; empty unless the
  /// run was executed with capture_trace.
  std::string flight_recorder;
  /// Commutative combination of per-delivery fnv1a hashes over (processor,
  /// origin, value): two runs agree iff every processor delivered the same
  /// multiset of values — the equality the wire cross-check asserts between
  /// full-summary and digest/delta state exchange (chaos_runner
  /// --cross-check). Deliberately order-insensitive: the TO spec admits
  /// many total orders and the two exchange protocols may pick different
  /// ones; within-run order agreement is enforced by the TO oracle.
  std::uint64_t delivery_fingerprint = 0;
  /// Total values delivered across all processors (context for fingerprint
  /// mismatches).
  std::uint64_t delivered_total = 0;
  /// Snapshot of the run's own World registry (net.*, ring.*, to.*, ...).
  /// run_campaign folds these into the campaign registry in seed order via
  /// obs::MetricsRegistry::merge_from, so the exported campaign snapshot
  /// carries the protocol counters regardless of how many jobs ran.
  obs::MetricsSnapshot world_metrics;
  /// The run's vsg-timeseries-v1 document (empty unless cfg.sampler.enabled).
  obs::TimeseriesDoc timeline;
  /// Health watchdog events of the run (subset of timeline.health_events;
  /// empty unless cfg.sampler.enabled). Folded into `violations` as
  /// "health: ..." strings only when cfg.health_oracle.
  std::vector<obs::HealthEvent> health_events;
  bool ok() const { return violations.empty(); }
};

/// Execute one schedule under full oracle attachment. Deterministic in
/// (cfg, scenario, n, seed, run_until, expected_bcasts). expected_bcasts < 0
/// disables the recovery oracle's completeness check (used when replaying
/// hand-written scenarios whose traffic is not known a priori — order
/// agreement across processors is still enforced). With capture_trace the
/// World runs with span tracing on and the result carries the flight
/// recorder's Chrome trace JSON; tracing does not perturb the protocol, so
/// a captured re-run reproduces the uncaptured run exactly.
RunResult run_one(const CampaignConfig& cfg, const harness::Scenario& scenario, int n,
                  std::uint64_t seed, sim::Time run_until, int expected_bcasts,
                  bool capture_trace = false);

struct Failure {
  std::uint64_t seed = 0;
  /// Frame version the campaign ran under; repro_text pins it (`config
  /// wire N`) so the repro replays byte-for-byte even after the default
  /// wire version changes (docs/WIRE.md).
  int wire = static_cast<int>(membership::kDefaultWireFormat);
  /// Shard count the campaign ran under; repro_text pins it (`config
  /// shards K`) whenever K > 1 so replays rebuild the same topology.
  int shards = 1;
  /// Per-pass boarding budget the campaign ran under; repro_text pins it
  /// (`config budget B`) whenever B > 0 so a repro found under a capacity
  /// bound replays under the same bound (docs/FLOWCONTROL.md).
  std::uint64_t budget = 0;
  std::vector<std::string> violations;  // of the original schedule
  GeneratedSchedule schedule;           // as generated
  ShrinkOutcome minimal;                // shrunk repro (== original if !shrink)
  /// Chrome trace JSON captured by re-running the minimized scenario with
  /// the flight recorder on (the last cfg.trace.capacity spans before the
  /// violation). Dumped next to the repro scenario by chaos_runner.
  std::string flight_recorder;
  /// Health watchdog verdicts of the original failing run, recorded even
  /// when cfg.health_oracle is off (then they flag the seed in the manifest
  /// without failing it). Empty unless cfg.sampler.enabled.
  std::vector<std::string> health_verdicts;
};

/// Per-seed outcome digest, recorded for every seed (clean or not) in seed
/// order — the evidence the `--jobs 1` vs `--jobs N` equivalence claim is
/// checked against.
struct SeedSummary {
  std::uint64_t seed = 0;
  std::uint64_t delivery_fingerprint = 0;
  std::uint64_t delivered_total = 0;
  std::uint32_t violations = 0;

  bool operator==(const SeedSummary&) const = default;
};

struct CampaignResult {
  int runs = 0;
  std::uint64_t ops = 0;  // total ops scheduled across all runs
  std::vector<Failure> failures;
  /// One entry per seed, in seed order.
  std::vector<SeedSummary> seed_results;
  /// One timeline per seed, in seed order; empty unless cfg.sampler.enabled
  /// (chaos_runner --timeline-out writes these as timeline_seed<S>.json).
  std::vector<obs::TimeseriesDoc> seed_timelines;
  /// Order-sensitive fnv1a fold over seed_results: a single number that
  /// differs iff any seed's verdict count, fingerprint, or delivery total
  /// differs. chaos_runner prints it so two campaign invocations (e.g.
  /// different --jobs) can be compared from their logs alone.
  std::uint64_t campaign_fingerprint = 0;
  bool ok() const { return failures.empty(); }
};

CampaignResult run_campaign(const CampaignConfig& cfg);

/// Self-contained scenario file for a failure's minimized schedule.
std::string repro_text(const Failure& f);

/// One failure's artifact paths, as recorded in repro_manifest.json.
struct ManifestEntry {
  std::uint64_t seed = 0;
  std::vector<std::string> violations;
  std::string scenario_path;          // minimized .scn repro
  std::string flight_recorder_path;   // Chrome trace dump ("" if none)
  std::string timeline_path;          // vsg-timeseries-v1 dump ("" if none)
  /// Health watchdog verdicts of the failing run ("" entries never occur;
  /// empty when the campaign ran without the sampler/health oracle).
  std::vector<std::string> health_verdicts;

  bool operator==(const ManifestEntry&) const = default;
};

/// The vsg-repro-manifest-v2 document chaos_runner writes into --repro-dir:
/// which artifacts exist for each failure and where, so an operator (or a
/// later tool) never has to guess filenames. v2 adds per-failure "timeline"
/// and "health_events" next to the auto-captured trace; parse_repro_manifest
/// still reads v1 documents (whose entries simply lack both).
/// `metrics_export_path` is "" when the campaign ran without --export.
std::string repro_manifest_json(const std::vector<ManifestEntry>& entries,
                                const std::string& metrics_export_path);

/// A parsed repro manifest, either schema version.
struct Manifest {
  int version = 0;  // 1 or 2
  std::string metrics_export;
  std::vector<ManifestEntry> entries;
};

/// Versioned reader: accepts vsg-repro-manifest-v1 and -v2; nullopt on
/// malformed JSON or an unknown schema tag.
std::optional<Manifest> parse_repro_manifest(const std::string& json);

}  // namespace vsg::chaos
