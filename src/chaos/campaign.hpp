#pragma once

// Chaos campaign: many seeded random schedules, each executed with the full
// oracle set attached, failures shrunk to minimal repros.
//
// Per seed: generate_schedule -> World(seed) + OracleSet -> run -> collect
// oracle violations plus the recovery oracle (after the healed quiescence
// tail, every processor must have delivered every broadcast value, in one
// identical order — the conclusion of the paper's TO-property once its
// stabilization premise holds). On failure the ddmin shrinker minimizes
// the schedule; repro_text() serializes it as a self-contained scenario
// file (config n/seed/until + ops) replayable by scenario_parser /
// `chaos_runner --replay`.
//
// Campaign statistics report into an obs::MetricsRegistry (chaos.runs,
// chaos.failures, chaos.violations, chaos.ops.*, chaos.shrink.*) so the
// existing --export JSON path publishes them.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chaos/schedule_gen.hpp"
#include "chaos/shrink.hpp"
#include "harness/world.hpp"
#include "obs/metrics.hpp"

namespace vsg::chaos {

struct CampaignConfig {
  ScheduleConfig schedule;
  harness::Backend backend = harness::Backend::kTokenRing;
  net::LinkModel link;  // campaign default enables ugly-link corruption
  membership::TokenRingConfig ring;
  std::uint64_t first_seed = 1;
  int seeds = 50;
  bool check_recovery = true;
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Optional shared registry; a fresh one is used when null.
  std::shared_ptr<obs::MetricsRegistry> metrics;

  CampaignConfig() { link.ugly_corrupt = 0.25; }
};

struct RunResult {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Execute one schedule under full oracle attachment. Deterministic in
/// (cfg, scenario, n, seed, run_until, expected_bcasts). expected_bcasts < 0
/// disables the recovery oracle's completeness check (used when replaying
/// hand-written scenarios whose traffic is not known a priori — order
/// agreement across processors is still enforced).
RunResult run_one(const CampaignConfig& cfg, const harness::Scenario& scenario, int n,
                  std::uint64_t seed, sim::Time run_until, int expected_bcasts);

struct Failure {
  std::uint64_t seed = 0;
  std::vector<std::string> violations;  // of the original schedule
  GeneratedSchedule schedule;           // as generated
  ShrinkOutcome minimal;                // shrunk repro (== original if !shrink)
};

struct CampaignResult {
  int runs = 0;
  std::uint64_t ops = 0;  // total ops scheduled across all runs
  std::vector<Failure> failures;
  bool ok() const { return failures.empty(); }
};

CampaignResult run_campaign(const CampaignConfig& cfg);

/// Self-contained scenario file for a failure's minimized schedule.
std::string repro_text(const Failure& f);

}  // namespace vsg::chaos
