#pragma once

// Delta-debugging schedule shrinker.
//
// Given a failing schedule and a deterministic predicate "does this
// (scenario, n) still fail?", shrink_schedule greedily minimizes along
// three axes until a fixpoint:
//   - drop ops (classic ddmin: halving chunk sizes, then singles);
//   - shrink the universe (drop the highest processors, restricting
//     partition components and discarding ops that mention them);
//   - shrink times (scale everything down, pull ops to their predecessor).
// Each accepted step keeps the schedule failing, so the result is a
// 1-minimal repro: removing any single op makes the failure disappear.
//
// The predicate runs a full simulation per candidate; candidates are
// budgeted (ShrinkOptions::max_candidates) so pathological schedules
// cannot stall a campaign.

#include <functional>

#include "harness/scenario.hpp"

namespace vsg::chaos {

/// Must be deterministic in (scenario, n) — it is called many times and the
/// final accepted candidate is re-run by tests and CI.
using FailPredicate = std::function<bool(const harness::Scenario&, int n)>;

struct ShrinkOptions {
  int max_rounds = 6;         // full passes over all three axes
  int max_candidates = 400;   // total predicate evaluations
  bool shrink_times = true;
  bool shrink_universe = true;
};

struct ShrinkOutcome {
  harness::Scenario scenario;  // minimized (still failing) schedule
  int n = 0;                   // possibly reduced universe size
  int candidates = 0;          // predicate evaluations spent
  int reductions = 0;          // accepted shrink steps
};

/// `scenario` must fail under `fails` with universe size `n` (the outcome
/// merely echoes the input back if it somehow does not).
ShrinkOutcome shrink_schedule(harness::Scenario scenario, int n, const FailPredicate& fails,
                              const ShrinkOptions& opts = {});

}  // namespace vsg::chaos
