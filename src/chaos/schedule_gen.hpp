#pragma once

// Seeded random fault-schedule generator for the chaos campaign.
//
// A schedule is an ordinary harness::Scenario: a chaos window of partitions
// and heals (always with valid, covering component sets), per-processor and
// per-link good/bad/ugly status flips, token-loss windows (one processor's
// outgoing links go dark, so any token it holds is lost — the Section 8
// recovery path), and client traffic both spread out and in same-instant
// bursts. After the chaos window everything is forced healthy and a long
// quiescence tail follows, giving the stack the stabilization premise the
// paper's TO-/VS-properties (and the recovery oracle) require.
//
// generate_schedule(cfg, seed) is a pure function of its arguments — the
// same pair always yields the same schedule, so a failing seed is a
// complete, replayable repro.

#include <cstdint>

#include "harness/scenario.hpp"

namespace vsg::chaos {

struct ScheduleConfig {
  int n = 4;

  sim::Time start = sim::msec(100);     // earliest chaos op
  sim::Time horizon = sim::sec(5);      // chaos stops; heal + all-good here
  sim::Time quiescence = sim::sec(12);  // stabilization tail after horizon

  int partition_rounds = 2;  // partition ops (heals interleave randomly)
  int proc_flips = 3;        // bad/ugly windows on random processors
  int link_flips = 5;        // directed-link status flips
  int token_loss_windows = 1;
  sim::Time token_loss_window = sim::msec(150);

  /// Correlated-outage events. Each event splits the processors into
  /// `failure_domain_count` contiguous domains (racks, in data-center
  /// terms) and then either partitions the group exactly along domain
  /// boundaries or takes one whole domain bad at the same instant — the
  /// correlated failure shape that independent per-link/per-proc flips
  /// essentially never produce, and the one that hits every shard of a
  /// sharded world at once (all rings share the substrate). Restored
  /// within failure_domain_window. 0 (default) adds nothing, leaving
  /// existing seeds' schedules bit-identical.
  int failure_domains = 0;
  int failure_domain_count = 2;
  sim::Time failure_domain_window = sim::msec(300);

  int traffic = 14;           // broadcasts spread over the chaos window
  int bursts = 1;             // same-instant broadcast bursts
  int burst_size = 4;
  int post_heal_traffic = 2;  // broadcasts after the heal (recovery traffic)
};

struct GeneratedSchedule {
  harness::Scenario scenario;
  sim::Time run_until = 0;  // horizon + quiescence
  int bcasts = 0;           // OpBcast count (the recovery oracle expectation)
};

GeneratedSchedule generate_schedule(const ScheduleConfig& cfg, std::uint64_t seed);

}  // namespace vsg::chaos
