#include "chaos/campaign.hpp"

#include <stdexcept>

#include "chaos/oracles.hpp"
#include "exec/parallel.hpp"
#include "harness/scenario_parser.hpp"
#include "util/hash.hpp"
#include "util/serde.hpp"
#include "obs/json_util.hpp"
#include "obs/trace_export.hpp"

namespace vsg::chaos {
namespace {

int count_bcasts(const harness::Scenario& s) {
  int count = 0;
  for (const auto& timed : s.ops)
    if (std::get_if<harness::OpBcast>(&timed.op) != nullptr) ++count;
  return count;
}

bool is_recovery_violation(const std::string& v) { return v.rfind("recovery:", 0) == 0; }

bool is_health_violation(const std::string& v) { return v.rfind("health:", 0) == 0; }

// Safety = anything that is neither the recovery oracle nor a health
// watchdog verdict (TO / VS / forward-simulation checker output).
bool has_safety_violation(const std::vector<std::string>& vs) {
  for (const auto& v : vs)
    if (!is_recovery_violation(v) && !is_health_violation(v)) return true;
  return false;
}

bool has_recovery_violation(const std::vector<std::string>& vs) {
  for (const auto& v : vs)
    if (is_recovery_violation(v)) return true;
  return false;
}

// The distinct watchdog rules behind a run's health verdicts ("health:
// token_stall [...]" -> "token_stall"). Shrinking preserves this set: a
// candidate only counts as failing if every originally-fired rule fires
// again, so ddmin cannot trade a token stall for, say, a cheaper
// backlog-growth event.
std::set<std::string> health_rule_set(const std::vector<std::string>& vs) {
  std::set<std::string> rules;
  for (const auto& v : vs)
    if (is_health_violation(v)) {
      std::string rest = v.substr(std::string("health: ").size());
      rules.insert(rest.substr(0, rest.find(' ')));
    }
  return rules;
}

// Stabilization suffix: all processors good + heal at `at`. Appended to
// recovery-class shrink candidates so ddmin cannot fake a failure by merely
// dropping the heal (an unhealed partition trivially never recovers).
// gcc-12 -O2 flags the variant move path of vector growth here as
// maybe-uninitialized; it is a known false positive (PR105562).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
harness::Scenario with_stabilization(harness::Scenario s, int n, sim::Time at) {
  for (ProcId p = 0; p < n; ++p) s.add(at, harness::OpProcStatus{p, sim::Status::kGood});
  s.add(at, harness::OpHeal{});
  return s;
}
#pragma GCC diagnostic pop

void count_ops(const harness::Scenario& s, obs::MetricsRegistry& m) {
  for (const auto& timed : s.ops) {
    if (std::get_if<harness::OpBcast>(&timed.op) != nullptr)
      m.counter("chaos.ops.bcast").inc();
    else if (std::get_if<harness::OpPartition>(&timed.op) != nullptr)
      m.counter("chaos.ops.partition").inc();
    else if (std::get_if<harness::OpHeal>(&timed.op) != nullptr)
      m.counter("chaos.ops.heal").inc();
    else if (std::get_if<harness::OpProcStatus>(&timed.op) != nullptr)
      m.counter("chaos.ops.proc_status").inc();
    else
      m.counter("chaos.ops.link_status").inc();
  }
}

// Order-sensitive fold of one seed's digest into the campaign fingerprint
// (the first fold seeds the chain from the FNV offset basis).
std::uint64_t fold_summary(std::uint64_t acc, const SeedSummary& s) {
  const std::uint64_t words[4] = {s.seed, s.delivery_fingerprint, s.delivered_total,
                                  s.violations};
  return util::fnv1a(
      util::BufferView(reinterpret_cast<const std::uint8_t*>(words), sizeof words),
      acc == 0 ? util::kFnvOffset : acc);
}

}  // namespace

RunResult run_one(const CampaignConfig& cfg, const harness::Scenario& scenario, int n,
                  std::uint64_t seed, sim::Time run_until, int expected_bcasts,
                  bool capture_trace) {
  harness::WorldConfig wc;
  wc.n = n;
  wc.backend = cfg.backend;
  wc.seed = seed;
  wc.link = cfg.link;
  wc.ring = cfg.ring;
  wc.shards = cfg.shards;
  wc.sampler = cfg.sampler;
  if (capture_trace) {
    wc.trace = cfg.trace;
    wc.trace.enabled = true;
  }
  harness::World world(wc);
  OracleSet oracles(world);

  RunResult result;
  try {
    scenario.apply(world);
  } catch (const std::invalid_argument& e) {
    // A malformed schedule is itself a failure (the generator and shrinker
    // only produce valid ones; replayed files may not).
    result.violations.push_back(std::string("schedule rejected: ") + e.what());
    return result;
  }
  world.run_until(run_until);
  oracles.finalize();
  result.violations = oracles.violations();

  if (cfg.check_recovery) {
    // Across shards: the per-shard sequences together account for every
    // scripted broadcast (each bcast routes to exactly one shard, so the
    // sum must match). Per shard: all processors agree on one sequence.
    std::size_t delivered_at_p0 = 0;
    for (int k = 0; k < world.shards(); ++k)
      delivered_at_p0 += world.stack(k).process(0).delivered().size();
    if (expected_bcasts >= 0 &&
        delivered_at_p0 != static_cast<std::size_t>(expected_bcasts))
      result.violations.push_back(
          "recovery: processor 0 delivered " + std::to_string(delivered_at_p0) + "/" +
          std::to_string(expected_bcasts) + " values after stabilization");
    for (int k = 0; k < world.shards(); ++k) {
      const auto& reference = world.stack(k).process(0).delivered();
      for (ProcId p = 1; p < n; ++p)
        if (world.stack(k).process(p).delivered() != reference) {
          result.violations.push_back(
              "recovery: delivered sequence at processor " + std::to_string(p) +
              (world.shards() > 1 ? " shard " + std::to_string(k) : "") +
              " diverges from processor 0");
          break;
        }
    }
  }
  // Delivery fingerprint: per-delivery fnv1a over (processor, origin,
  // value), combined commutatively. Order-insensitive on purpose — the TO
  // specification admits many total orders, and two protocol variants (the
  // wire cross-check runs full-summary and digest/delta exchanges side by
  // side) may pick different ones while delivering exactly the same values
  // to exactly the same processors. Order agreement *within* a run is the
  // TO oracle's job, not the fingerprint's.
  std::uint64_t fp = 0;
  for (int k = 0; k < world.shards(); ++k) {
    for (ProcId p = 0; p < n; ++p) {
      for (const auto& [origin, value] : world.stack(k).process(p).delivered()) {
        // Shard 0 keeps the historical 2-byte head so a K=1 campaign's
        // fingerprint is bit-identical to the pre-sharding one; shards
        // beyond 0 fold their index in so deliveries never alias across
        // rings.
        const std::uint8_t head[3] = {static_cast<std::uint8_t>(k),
                                      static_cast<std::uint8_t>(p),
                                      static_cast<std::uint8_t>(origin)};
        const util::BufferView head_view(k == 0 ? head + 1 : head,
                                         k == 0 ? sizeof head - 1 : sizeof head);
        fp += util::fnv1a(
            util::BufferView(reinterpret_cast<const std::uint8_t*>(value.data()),
                             value.size()),
            util::fnv1a(head_view));
        ++result.delivered_total;
      }
    }
  }
  result.delivery_fingerprint = fp;
  if (world.sampler() != nullptr) {
    // Twice at the same instant so the final sample includes any health.*
    // bumps the first pass produced (see World::write_timeline).
    world.sampler()->sample_now(world.simulator().now());
    world.sampler()->sample_now(world.simulator().now());
    result.timeline = world.sampler()->doc();
    result.health_events = world.sampler()->health().events();
    if (cfg.health_oracle)
      for (auto& v : world.sampler()->health().verdicts())
        result.violations.push_back(std::move(v));
  }
  world.collect_shard_metrics();
  result.world_metrics = world.metrics().snapshot();
  if (capture_trace && world.tracer() != nullptr)
    result.flight_recorder = obs::chrome_trace_json(world.tracers());
  return result;
}

CampaignResult run_campaign(const CampaignConfig& cfg) {
  auto metrics = cfg.metrics != nullptr ? cfg.metrics
                                        : std::make_shared<obs::MetricsRegistry>();
  // Touch the headline counters so a clean campaign exports explicit zeros
  // (counters only materialize on first increment).
  metrics->counter("chaos.runs");
  metrics->counter("chaos.failures");
  metrics->counter("chaos.violations");
  CampaignResult result;
  if (cfg.seeds <= 0) return result;

  // Phase 1 — run every seed, possibly in parallel. Each task touches only
  // its own slot; schedule generation and the World are deterministic
  // functions of (cfg, seed), so the slot contents are independent of jobs
  // and of which thread ran them. The unchecked-decode injection flag is
  // thread_local (util/serde.hpp), so each worker re-asserts the spawning
  // thread's value before building its World.
  struct SeedOutcome {
    GeneratedSchedule schedule;
    RunResult run;
  };
  std::vector<SeedOutcome> outcomes(static_cast<std::size_t>(cfg.seeds));
  const bool inject_unchecked = util::unchecked_decode();
  exec::run_parallel(cfg.jobs, outcomes.size(), [&](std::size_t i) {
    util::set_unchecked_decode_for_test(inject_unchecked);
    const std::uint64_t seed = cfg.first_seed + static_cast<std::uint64_t>(i);
    SeedOutcome& out = outcomes[i];
    out.schedule = generate_schedule(cfg.schedule, seed);
    out.run = run_one(cfg, out.schedule.scenario, cfg.schedule.n, seed,
                      out.schedule.run_until, out.schedule.bcasts);
  });

  // Phase 2 — aggregate and shrink, serialized in seed order: metrics
  // merges, op counting, fingerprint folding, and the ddmin re-runs all
  // happen on this thread, so the campaign registry and failure list are
  // bit-identical across jobs values.
  for (int i = 0; i < cfg.seeds; ++i) {
    const std::uint64_t seed = cfg.first_seed + static_cast<std::uint64_t>(i);
    GeneratedSchedule& schedule = outcomes[static_cast<std::size_t>(i)].schedule;
    RunResult& run = outcomes[static_cast<std::size_t>(i)].run;
    metrics->counter("chaos.runs").inc();
    count_ops(schedule.scenario, *metrics);
    metrics->merge_from(run.world_metrics);
    result.ops += schedule.scenario.ops.size();
    ++result.runs;
    if (cfg.sampler.enabled) result.seed_timelines.push_back(std::move(run.timeline));

    SeedSummary summary;
    summary.seed = seed;
    summary.delivery_fingerprint = run.delivery_fingerprint;
    summary.delivered_total = run.delivered_total;
    summary.violations = static_cast<std::uint32_t>(run.violations.size());
    result.campaign_fingerprint = fold_summary(result.campaign_fingerprint, summary);
    result.seed_results.push_back(summary);

    if (run.ok()) continue;

    metrics->counter("chaos.failures").inc();
    metrics->counter("chaos.violations").inc(run.violations.size());

    Failure failure;
    failure.seed = seed;
    failure.wire = static_cast<int>(cfg.ring.wire);
    failure.shards = cfg.shards;
    failure.budget = cfg.ring.board_budget_bytes;
    failure.violations = run.violations;
    for (const auto& e : run.health_events)
      failure.health_verdicts.push_back(obs::to_verdict(e));
    failure.schedule = schedule;
    if (cfg.shrink) {
      // Preserve the failure class while shrinking. Safety violations (TO /
      // VS / forward-simulation) must survive as safety violations; for
      // failures involving the recovery oracle every candidate gets the
      // stabilization suffix re-appended, and the recovery oracle uses the
      // candidate's own bcast count (dropping a bcast legitimately lowers
      // it); health verdicts must re-fire the same rule set.
      const bool safety = has_safety_violation(run.violations);
      const bool recovery = has_recovery_violation(run.violations);
      const std::set<std::string> rules = health_rule_set(run.violations);
      const sim::Time run_until = schedule.run_until;
      const sim::Time horizon = cfg.schedule.horizon;
      auto fails = [&cfg, seed, run_until, horizon, safety, recovery,
                    &rules](const harness::Scenario& s, int n) {
        harness::Scenario candidate =
            !safety && recovery ? with_stabilization(s, n, horizon) : s;
        const RunResult r =
            run_one(cfg, candidate, n, seed, run_until, count_bcasts(candidate));
        if (safety) return has_safety_violation(r.violations);
        if (!rules.empty()) {
          const std::set<std::string> got = health_rule_set(r.violations);
          for (const auto& rule : rules)
            if (got.count(rule) == 0) return false;
        }
        return recovery ? !r.ok() : true;
      };
      failure.minimal =
          shrink_schedule(schedule.scenario, cfg.schedule.n, fails, cfg.shrink_options);
      if (!safety && recovery)
        failure.minimal.scenario =
            with_stabilization(std::move(failure.minimal.scenario), failure.minimal.n, horizon);
      metrics->counter("chaos.shrink.candidates")
          .inc(static_cast<std::uint64_t>(failure.minimal.candidates));
      metrics->counter("chaos.shrink.reductions")
          .inc(static_cast<std::uint64_t>(failure.minimal.reductions));
    } else {
      failure.minimal = ShrinkOutcome{schedule.scenario, cfg.schedule.n, 0, 0};
    }
    // Flight recorder: re-run the minimized scenario with tracing on. The
    // tracer does not perturb the protocol, so this traces the exact failing
    // execution; -1 skips the completeness count (shrinking may have dropped
    // bcasts) while keeping the order-agreement check.
    failure.flight_recorder =
        run_one(cfg, failure.minimal.scenario, failure.minimal.n, seed,
                schedule.run_until, -1, /*capture_trace=*/true)
            .flight_recorder;
    result.failures.push_back(std::move(failure));
  }
  return result;
}

std::string repro_text(const Failure& f) {
  harness::ScenarioMeta meta;
  meta.n = f.minimal.n;
  meta.seed = f.seed;
  meta.until = f.schedule.run_until;
  meta.wire = f.wire;
  if (f.shards > 1) meta.shards = f.shards;
  if (f.budget > 0) meta.budget = f.budget;
  std::string text = "# chaos repro: seed " + std::to_string(f.seed) + ", " +
                     std::to_string(f.minimal.scenario.ops.size()) + " ops (from " +
                     std::to_string(f.schedule.scenario.ops.size()) + ")\n";
  for (const auto& v : f.violations) text += "# " + v + "\n";
  return text + write_scenario(f.minimal.scenario, meta);
}

std::string repro_manifest_json(const std::vector<ManifestEntry>& entries,
                                const std::string& metrics_export_path) {
  // append_escaped emits the surrounding quotes.
  std::string out = "{\n  \"schema\": \"vsg-repro-manifest-v2\",\n  \"metrics_export\": ";
  obs::json::append_escaped(out, metrics_export_path);
  out += ",\n  \"failures\": [";
  bool first_entry = true;
  for (const auto& e : entries) {
    out += first_entry ? "\n" : ",\n";
    first_entry = false;
    out += "    {\n      \"seed\": " + std::to_string(e.seed) + ",\n      \"violations\": [";
    bool first_v = true;
    for (const auto& v : e.violations) {
      if (!first_v) out += ", ";
      first_v = false;
      obs::json::append_escaped(out, v);
    }
    out += "],\n      \"scenario\": ";
    obs::json::append_escaped(out, e.scenario_path);
    out += ",\n      \"flight_recorder\": ";
    obs::json::append_escaped(out, e.flight_recorder_path);
    out += ",\n      \"timeline\": ";
    obs::json::append_escaped(out, e.timeline_path);
    out += ",\n      \"health_events\": [";
    first_v = true;
    for (const auto& v : e.health_verdicts) {
      if (!first_v) out += ", ";
      first_v = false;
      obs::json::append_escaped(out, v);
    }
    out += "]\n    }";
  }
  out += entries.empty() ? "],\n" : "\n  ],\n";
  out += "  \"failure_count\": " + std::to_string(entries.size()) + "\n}\n";
  return out;
}

std::optional<Manifest> parse_repro_manifest(const std::string& json) {
  obs::json::Reader r(json);
  Manifest m;
  r.object([&](const std::string& key) {
    if (key == "schema") {
      const std::string tag = r.string();
      if (tag == "vsg-repro-manifest-v1")
        m.version = 1;
      else if (tag == "vsg-repro-manifest-v2")
        m.version = 2;
      else
        r.fail();
    } else if (key == "metrics_export") {
      m.metrics_export = r.string();
    } else if (key == "failures") {
      r.array([&] {
        ManifestEntry e;
        r.object([&](const std::string& field) {
          if (field == "seed") {
            e.seed = static_cast<std::uint64_t>(r.integer());
          } else if (field == "violations") {
            r.array([&] { e.violations.push_back(r.string()); });
          } else if (field == "scenario") {
            e.scenario_path = r.string();
          } else if (field == "flight_recorder") {
            e.flight_recorder_path = r.string();
          } else if (field == "timeline") {
            e.timeline_path = r.string();
          } else if (field == "health_events") {
            r.array([&] { e.health_verdicts.push_back(r.string()); });
          } else {
            r.skip_value();
          }
        });
        m.entries.push_back(std::move(e));
      });
    } else {
      r.skip_value();
    }
  });
  if (!r.ok() || !r.at_end() || m.version == 0) return std::nullopt;
  return m;
}

}  // namespace vsg::chaos
