#include "app/sharded_kv.hpp"

#include <cassert>
#include <stdexcept>

namespace vsg::app {

ShardedKV::ShardedKV(const std::vector<to::Service*>& shards)
    : n_(shards.empty() ? 0 : shards.front()->size()),
      router_(static_cast<int>(shards.size()), n_ > 0 ? n_ : 1) {
  if (shards.empty()) throw std::invalid_argument("ShardedKV: at least one shard required");
  kvs_.reserve(shards.size());
  for (to::Service* service : shards) {
    if (service == nullptr || service->size() != n_)
      throw std::invalid_argument(
          "ShardedKV: every shard must span the same processor set");
    kvs_.push_back(std::make_unique<ReplicatedKV>(*service));
  }
}

void ShardedKV::write(ProcId p, const std::string& key, const std::string& value) {
  kvs_[static_cast<std::size_t>(router_.shard_of(key))]->write(p, key, value);
}

std::optional<std::string> ShardedKV::read(ProcId p, const std::string& key) const {
  return kvs_[static_cast<std::size_t>(router_.shard_of(key))]->read(p, key);
}

void ShardedKV::barrier(int shard, ProcId p, ReplicatedKV::BarrierFn done) {
  assert(shard >= 0 && shard < shards());
  kvs_[static_cast<std::size_t>(shard)]->barrier(p, std::move(done));
}

void ShardedKV::barrier_for(const std::string& key, ProcId p, ReplicatedKV::BarrierFn done) {
  barrier(router_.shard_of(key), p, std::move(done));
}

std::size_t ShardedKV::total_applied(ProcId replica) const {
  std::size_t total = 0;
  for (const auto& kv : kvs_) total += kv->applied(replica).size();
  return total;
}

std::size_t ShardedKV::writes_in_flight(ProcId p) const {
  std::size_t total = 0;
  for (const auto& kv : kvs_) total += kv->writes_in_flight(p);
  return total;
}

}  // namespace vsg::app
