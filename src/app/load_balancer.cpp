#include "app/load_balancer.hpp"

#include <algorithm>
#include <cassert>

#include "util/serde.hpp"

namespace vsg::app {
namespace {

constexpr std::uint8_t kMsgTaskDone = 1;
constexpr std::uint8_t kMsgDoneSet = 2;

util::Bytes encode_task_done(std::uint32_t task) {
  util::Encoder e;
  e.u8(kMsgTaskDone);
  e.u32(task);
  return e.take();
}

util::Bytes encode_done_set(const std::set<std::uint32_t>& done) {
  util::Encoder e;
  e.u8(kMsgDoneSet);
  e.u32(static_cast<std::uint32_t>(done.size()));
  for (std::uint32_t task : done) e.u32(task);
  return e.take();
}

}  // namespace

class LoadBalancer::Worker final : public vs::Client {
 public:
  Worker(ProcId me, vs::Service& service, sim::Simulator& simulator,
         const LoadBalancerConfig& config, bool in_initial_view, int n0)
      : me_(me), service_(&service), sim_(&simulator), config_(config) {
    if (in_initial_view) {
      view_ = core::initial_view(n0);
      schedule_work();
    }
  }

  // --- vs::Client -----------------------------------------------------------
  void on_newview(const core::View& v) override {
    view_ = v;
    ++view_gen_;
    // Exchange what we know so merging components reconcile immediately.
    service_->gpsnd(me_, encode_done_set(done_));
    schedule_work();
  }

  void on_gprcv(ProcId src, const vs::Payload& m) override {
    (void)src;
    util::Decoder d(m);
    const std::uint8_t tag = d.u8();
    if (tag == kMsgTaskDone) {
      const std::uint32_t task = d.u32();
      if (d.complete()) done_.insert(task);
    } else if (tag == kMsgDoneSet) {
      const std::uint32_t count = d.u32();
      for (std::uint32_t i = 0; i < count && d.ok(); ++i) done_.insert(d.u32());
    }
  }

  void on_safe(ProcId, const vs::Payload&) override {}  // unused: no ordering needs

  // --- introspection ----------------------------------------------------------
  const std::set<std::uint32_t>& done() const noexcept { return done_; }
  std::uint64_t executed() const noexcept { return executed_; }
  bool all_done() const { return done_.size() >= config_.total_tasks; }

 private:
  /// My slice: tasks t with t mod |view| == my rank in the view.
  bool mine(std::uint32_t task) const {
    if (!view_.has_value()) return false;
    const auto members = std::vector<ProcId>(view_->members.begin(), view_->members.end());
    const auto rank = static_cast<std::uint32_t>(
        std::find(members.begin(), members.end(), me_) - members.begin());
    return task % members.size() == rank;
  }

  std::optional<std::uint32_t> next_task() const {
    for (std::uint32_t t = 0; t < config_.total_tasks; ++t)
      if (done_.count(t) == 0 && mine(t)) return t;
    return std::nullopt;
  }

  void schedule_work() {
    const std::uint64_t gen = view_gen_;
    sim_->after(config_.task_duration, [this, gen] { work_tick(gen); });
  }

  void work_tick(std::uint64_t gen) {
    if (gen != view_gen_) return;  // superseded by a newer view's loop
    const auto task = next_task();
    if (!task.has_value()) return;  // my slice is drained (for now)
    done_.insert(*task);
    ++executed_;
    service_->gpsnd(me_, encode_task_done(*task));
    schedule_work();
  }

  ProcId me_;
  vs::Service* service_;
  sim::Simulator* sim_;
  LoadBalancerConfig config_;
  std::optional<core::View> view_;
  std::uint64_t view_gen_ = 0;
  std::set<std::uint32_t> done_;
  std::uint64_t executed_ = 0;
};

LoadBalancer::LoadBalancer(vs::Service& service, sim::Simulator& simulator,
                           LoadBalancerConfig config) {
  const int n = service.size();
  // All processors participate; those outside P0 idle until merged in.
  // (n0 is not observable through vs::Service, so the caller's initial view
  // is discovered from the first newview for outsiders; for members of P0
  // we follow the spec's convention that everyone knows v0. We assume
  // P0 = everyone here — the common deployment — and idle workers simply
  // find their slice empty until a view includes them.)
  for (ProcId p = 0; p < n; ++p) {
    workers_.push_back(std::make_unique<Worker>(p, service, simulator, config,
                                                /*in_initial_view=*/true, n));
    service.attach(p, *workers_[static_cast<std::size_t>(p)]);
  }
}

LoadBalancer::~LoadBalancer() = default;

const std::set<std::uint32_t>& LoadBalancer::done(ProcId p) const {
  return workers_[static_cast<std::size_t>(p)]->done();
}

std::uint64_t LoadBalancer::executed(ProcId p) const {
  return workers_[static_cast<std::size_t>(p)]->executed();
}

bool LoadBalancer::all_done(ProcId p) const {
  return workers_[static_cast<std::size_t>(p)]->all_done();
}

std::uint64_t LoadBalancer::total_executions() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->executed();
  return total;
}

}  // namespace vsg::app
