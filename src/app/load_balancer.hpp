#pragma once

// Dynamic load balancing over the raw VS interface — the application family
// the paper points to in its conclusions ("Other results based on this VS
// specification include [20, 24, 27]", where [24] is Dolev-Segala-
// Shvartsman, *Dynamic Load Balancing with Group Communication*).
//
// A fixed set of tasks 0..total-1 must all be performed. Each worker
// performs the tasks whose index hashes to its *rank* in the current view,
// announces completions through the group, and exchanges its whole done-set
// when a view forms. The guarantees mirror the paper's partitionable
// semantics:
//   - progress: every component keeps working on the tasks not known done
//     (no primary view needed — load balancing is safe under partition);
//   - at-least-once: concurrent components may duplicate work, never lose
//     it; merging components reconcile done-sets via the view-change
//     exchange;
//   - exactly-once in stable runs: with one stable view the slices are
//     disjoint.
//
// Unlike VStoTO this client needs no total order — only membership ranks
// and view-synchronous delivery — so it exercises a different slice of the
// VS specification (newview + gprcv, no safe).

#include <cstdint>
#include <memory>
#include <set>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "util/hash.hpp"
#include "vs/service.hpp"

namespace vsg::app {

/// Client-side routing for the sharded KV: a stable hash maps every key to
/// one of `shards` partitions (same key, same shard, forever — the
/// partition function IS the data placement, motr-pool style), and a
/// round-robin cursor spreads read traffic across the n replicas of a
/// shard. Pure arithmetic over util::fnv1a — every client computes the same
/// placement with no coordination, which is what keeps shards off each
/// other's data path.
class ShardRouter {
 public:
  ShardRouter(int shards, int n) : shards_(shards), n_(n) {}

  int shards() const noexcept { return shards_; }

  /// Stable key placement in [0, shards).
  int shard_of(std::string_view key) const noexcept {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(key.data());
    const std::uint64_t h = util::fnv1a(util::BufferView(bytes, key.size()));
    return static_cast<int>(h % static_cast<std::uint64_t>(shards_));
  }

  /// Round-robin replica selection for read load (any replica answers a
  /// sequentially consistent read).
  ProcId pick_replica() noexcept {
    const ProcId p = cursor_;
    cursor_ = (cursor_ + 1) % n_;
    return p;
  }

 private:
  int shards_;
  int n_;
  ProcId cursor_ = 0;
};

struct LoadBalancerConfig {
  std::uint32_t total_tasks = 100;
  /// Simulated time to perform one task.
  sim::Time task_duration = sim::msec(10);
};

class LoadBalancer {
 public:
  /// Creates one worker per processor of `service` and attaches them.
  /// Workers start working immediately (processors outside the initial
  /// view idle until their first newview).
  LoadBalancer(vs::Service& service, sim::Simulator& simulator, LoadBalancerConfig config);
  ~LoadBalancer();

  LoadBalancer(const LoadBalancer&) = delete;
  LoadBalancer& operator=(const LoadBalancer&) = delete;

  /// Tasks known complete at worker p.
  const std::set<std::uint32_t>& done(ProcId p) const;

  /// Tasks actually executed by worker p (its own work, duplicates count).
  std::uint64_t executed(ProcId p) const;

  /// True iff worker p knows every task is done.
  bool all_done(ProcId p) const;

  /// Total executions across workers (>= total_tasks; == total_tasks when
  /// no partition forced duplicate work).
  std::uint64_t total_executions() const;

 private:
  class Worker;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace vsg::app
