#pragma once

// Key-partitioned replicated memory over K independent TO shards. One
// ReplicatedKV per shard, a stable hash (app::ShardRouter) placing every
// key on exactly one shard, and the classic scaling bet: each shard's token
// ring orders only its own writes, so aggregate write throughput grows with
// K while the per-shard guarantee stays the paper's footnote-3 sequential
// consistency.
//
// What sharding costs: there is NO total order across shards. A process
// that writes key a (shard A) then key b (shard B) can have its b-write
// applied at a remote replica long before its a-write — readers observing b
// then reading a see a cross-shard sequential-consistency violation that
// app::CrossShardChecker detects as a constraint-graph cycle. The repair is
// the per-shard barrier (ReplicatedKV::barrier): writers fence the earlier
// shard before touching the next; readers fence a shard before trusting a
// cross-shard implication. docs/SHARDING.md walks through the exact
// anomaly and the fence placement.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/load_balancer.hpp"
#include "app/replicated_kv.hpp"

namespace vsg::app {

class ShardedKV {
 public:
  /// One TO service per shard, all spanning the same n processors.
  explicit ShardedKV(const std::vector<to::Service*>& shards);

  int shards() const noexcept { return static_cast<int>(kvs_.size()); }
  int n() const noexcept { return n_; }

  /// The stable key placement (same arithmetic on every client).
  int shard_of(const std::string& key) const noexcept { return router_.shard_of(key); }

  /// Submit a write at processor p, routed to the key's shard.
  void write(ProcId p, const std::string& key, const std::string& value);

  /// Local read at processor p from the key's shard replica (sequentially
  /// consistent per shard; see the header comment for what that does NOT
  /// promise across shards).
  std::optional<std::string> read(ProcId p, const std::string& key) const;

  /// Fence shard `shard` at processor p: the callback fires once p's
  /// replica of that shard has applied everything ordered before the fence.
  void barrier(int shard, ProcId p, ReplicatedKV::BarrierFn done);
  /// Fence the shard that owns `key`.
  void barrier_for(const std::string& key, ProcId p, ReplicatedKV::BarrierFn done);

  ReplicatedKV& shard(int k) { return *kvs_[static_cast<std::size_t>(k)]; }
  const ReplicatedKV& shard(int k) const { return *kvs_[static_cast<std::size_t>(k)]; }
  ShardRouter& router() noexcept { return router_; }

  /// Writes applied at `replica` across all shards (the aggregate
  /// delivered-ops number the throughput bench reports).
  std::size_t total_applied(ProcId replica) const;

  /// Writes submitted at p (all shards) that have not yet been applied at p.
  std::size_t writes_in_flight(ProcId p) const;

 private:
  int n_;
  ShardRouter router_;
  std::vector<std::unique_ptr<ReplicatedKV>> kvs_;
};

}  // namespace vsg::app
