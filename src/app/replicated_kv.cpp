#include "app/replicated_kv.hpp"

#include <cassert>

#include "util/serde.hpp"

namespace vsg::app {

namespace {
constexpr std::uint8_t kOpWrite = 1;
constexpr std::uint8_t kOpReadMarker = 2;
constexpr std::uint8_t kOpCas = 3;
constexpr std::uint8_t kOpBarrier = 4;

struct CasOp {
  std::string key;
  std::optional<std::string> expected;
  std::string desired;
};

core::Value encode_cas(const CasOp& op) {
  util::Encoder e;
  e.u8(kOpCas);
  e.str(op.key);
  e.boolean(op.expected.has_value());
  if (op.expected) e.str(*op.expected);
  e.str(op.desired);
  const auto& b = e.bytes();
  return core::Value(b.begin(), b.end());
}

std::optional<CasOp> decode_cas(const core::Value& v) {
  util::Bytes bytes(v.begin(), v.end());
  util::Decoder d(bytes);
  if (d.u8() != kOpCas) return std::nullopt;
  CasOp op;
  op.key = d.str();
  if (d.boolean()) op.expected = d.str();
  op.desired = d.str();
  if (!d.complete()) return std::nullopt;
  return op;
}
}  // namespace

core::Value encode_write(const std::string& key, const std::string& value) {
  util::Encoder e;
  e.u8(kOpWrite);
  e.str(key);
  e.str(value);
  const auto& b = e.bytes();
  return core::Value(b.begin(), b.end());
}

std::optional<std::pair<std::string, std::string>> decode_write(const core::Value& v) {
  util::Bytes bytes(v.begin(), v.end());
  util::Decoder d(bytes);
  if (d.u8() != kOpWrite) return std::nullopt;
  std::string key = d.str();
  std::string value = d.str();
  if (!d.complete()) return std::nullopt;
  return std::make_pair(std::move(key), std::move(value));
}

core::Value encode_read_marker(const std::string& key) {
  util::Encoder e;
  e.u8(kOpReadMarker);
  e.str(key);
  const auto& b = e.bytes();
  return core::Value(b.begin(), b.end());
}

std::optional<std::string> decode_read_marker(const core::Value& v) {
  util::Bytes bytes(v.begin(), v.end());
  util::Decoder d(bytes);
  if (d.u8() != kOpReadMarker) return std::nullopt;
  std::string key = d.str();
  if (!d.complete()) return std::nullopt;
  return key;
}

ReplicatedKV::ReplicatedKV(to::Service& to_service)
    : to_(&to_service),
      stores_(static_cast<std::size_t>(to_service.size())),
      applied_(static_cast<std::size_t>(to_service.size())),
      submitted_(static_cast<std::size_t>(to_service.size()), 0),
      applied_own_(static_cast<std::size_t>(to_service.size()), 0),
      pending_reads_(static_cast<std::size_t>(to_service.size())),
      pending_cas_(static_cast<std::size_t>(to_service.size())),
      pending_barriers_(static_cast<std::size_t>(to_service.size())) {
  for (ProcId p = 0; p < to_->size(); ++p) {
    clients_.push_back(std::make_unique<to::CallbackClient>(
        [this, p](ProcId origin, const core::Value& v) { on_delivery(p, origin, v); }));
    to_->attach(p, *clients_.back());
  }
}

void ReplicatedKV::write(ProcId p, const std::string& key, const std::string& value) {
  assert(p >= 0 && p < to_->size());
  ++submitted_[static_cast<std::size_t>(p)];
  to_->bcast(p, encode_write(key, value));
}

std::optional<std::string> ReplicatedKV::read(ProcId p, const std::string& key) const {
  assert(p >= 0 && p < to_->size());
  const auto& store = stores_[static_cast<std::size_t>(p)];
  const auto it = store.find(key);
  if (it == store.end()) return std::nullopt;
  return it->second;
}

void ReplicatedKV::on_delivery(ProcId dest, ProcId origin, const core::Value& encoded) {
  if (auto op = decode_write(encoded)) {
    stores_[static_cast<std::size_t>(dest)][op->first] = op->second;
    applied_[static_cast<std::size_t>(dest)].push_back(
        AppliedWrite{origin, op->first, op->second});
    if (origin == dest) ++applied_own_[static_cast<std::size_t>(dest)];
    return;
  }
  if (auto op = decode_cas(encoded)) {
    // Every replica evaluates the same outcome at the same position in the
    // common order; success applies the write (and is recorded like one).
    auto& store = stores_[static_cast<std::size_t>(dest)];
    const auto it = store.find(op->key);
    const std::optional<std::string> current =
        it == store.end() ? std::nullopt : std::optional<std::string>(it->second);
    const bool succeeded = current == op->expected;
    if (succeeded) {
      store[op->key] = op->desired;
      applied_[static_cast<std::size_t>(dest)].push_back(
          AppliedWrite{origin, op->key, op->desired});
    }
    if (origin == dest) {
      auto& pending = pending_cas_[static_cast<std::size_t>(dest)];
      if (!pending.empty()) {
        auto done = std::move(pending.front());
        pending.pop_front();
        if (done) done(succeeded);
      }
    }
    return;
  }
  if (encoded.size() == 1 && static_cast<std::uint8_t>(encoded[0]) == kOpBarrier) {
    // A no-op in the common order; only the issuing replica answers, and
    // per-sender FIFO matches markers to callbacks positionally.
    if (origin != dest) return;
    auto& pending = pending_barriers_[static_cast<std::size_t>(dest)];
    if (pending.empty()) return;
    auto done = std::move(pending.front());
    pending.pop_front();
    if (done) done(applied_[static_cast<std::size_t>(dest)].size());
    return;
  }
  if (auto key = decode_read_marker(encoded)) {
    // Only the issuing replica answers; TO's per-sender FIFO guarantees
    // markers come back in issue order, so the queue front matches.
    if (origin != dest) return;
    auto& pending = pending_reads_[static_cast<std::size_t>(dest)];
    if (pending.empty() || pending.front().first != *key) return;  // foreign
    auto done = std::move(pending.front().second);
    pending.pop_front();
    const auto& store = stores_[static_cast<std::size_t>(dest)];
    const auto it = store.find(*key);
    done(it == store.end() ? std::nullopt : std::optional<std::string>(it->second),
         applied_[static_cast<std::size_t>(dest)].size());
  }
}

void ReplicatedKV::atomic_read(ProcId p, const std::string& key, AtomicReadFn done) {
  assert(p >= 0 && p < to_->size());
  pending_reads_[static_cast<std::size_t>(p)].emplace_back(key, std::move(done));
  to_->bcast(p, encode_read_marker(key));
}

std::size_t ReplicatedKV::atomic_reads_in_flight(ProcId p) const {
  return pending_reads_[static_cast<std::size_t>(p)].size();
}

void ReplicatedKV::barrier(ProcId p, BarrierFn done) {
  assert(p >= 0 && p < to_->size());
  pending_barriers_[static_cast<std::size_t>(p)].push_back(std::move(done));
  to_->bcast(p, core::Value{static_cast<char>(kOpBarrier)});
}

std::size_t ReplicatedKV::barriers_in_flight(ProcId p) const {
  return pending_barriers_[static_cast<std::size_t>(p)].size();
}

void ReplicatedKV::cas(ProcId p, const std::string& key,
                       const std::optional<std::string>& expected,
                       const std::string& desired, CasFn done) {
  assert(p >= 0 && p < to_->size());
  pending_cas_[static_cast<std::size_t>(p)].push_back(std::move(done));
  to_->bcast(p, encode_cas(CasOp{key, expected, desired}));
}

const std::map<std::string, std::string>& ReplicatedKV::store(ProcId p) const {
  return stores_[static_cast<std::size_t>(p)];
}

const std::vector<AppliedWrite>& ReplicatedKV::applied(ProcId p) const {
  return applied_[static_cast<std::size_t>(p)];
}

std::size_t ReplicatedKV::writes_in_flight(ProcId p) const {
  return submitted_[static_cast<std::size_t>(p)] - applied_own_[static_cast<std::size_t>(p)];
}

}  // namespace vsg::app
