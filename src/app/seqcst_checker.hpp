#pragma once

// Independent checker for the sequentially consistent memory built in
// app/replicated_kv. It trusts nothing about the implementation: it is fed
// the raw observations (which writes each replica applied, in order, and
// what each read returned together with how many writes the replica had
// applied at that moment) and verifies:
//   1. all replicas apply the same write sequence (each a prefix of one
//      common order) — the replicated-state-machine core;
//   2. every applied write was actually submitted, per-submitter FIFO;
//   3. every read returns exactly the latest value for its key among the
//      writes the replica had applied (or "missing" if none) — i.e. reads
//      are consistent with a prefix of the common order.
// Together these imply the history is sequentially consistent: order all
// writes by the common order and insert each read after the prefix it
// observed; program order is preserved because submissions are FIFO and
// reads at p observe a monotonically growing prefix.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "app/replicated_kv.hpp"
#include "util/types.hpp"

namespace vsg::app {

class SeqCstChecker {
 public:
  explicit SeqCstChecker(int n);

  /// A write was submitted at p (program order).
  void on_submit(ProcId p, const std::string& key, const std::string& value);

  /// Replica `replica` applied a write.
  void on_apply(ProcId replica, const AppliedWrite& w);

  /// A read at `replica` returned `result` when the replica had applied
  /// `applied_count` writes.
  void on_read(ProcId replica, const std::string& key,
               const std::optional<std::string>& result, std::size_t applied_count);

  bool ok() const noexcept { return violations_.empty(); }
  const std::vector<std::string>& violations() const noexcept { return violations_; }

  /// The reconstructed common write order.
  const std::vector<AppliedWrite>& common_order() const noexcept { return common_; }

 private:
  int n_;
  std::vector<std::vector<std::pair<std::string, std::string>>> submitted_;
  std::vector<std::size_t> ordered_per_submitter_;
  std::vector<AppliedWrite> common_;
  std::vector<std::size_t> applied_count_;
  std::vector<std::string> violations_;
};

/// Cross-shard sequential-consistency checker for the sharded KV. Each
/// shard's TO yields one common write order *per shard*; a process's
/// operations interleave across shards. Sequential consistency of the
/// combined history demands a single serialization of all operations that
/// respects (a) every process's program order, (b) every shard's write
/// order, and (c) every read returning the latest write to its key in the
/// serialization. The checker encodes those demands as a constraint graph
/// over the observed operations:
///   po:  consecutive operations of one process (across shards!),
///   so:  consecutive writes in one shard's common order,
///   rf:  the write a read observed -> the read,
///   fr:  the read -> the next write to the same key in its shard's order
///        (a read of "missing" precedes the shard's first write to the key).
/// Every edge is an ordering any witness serialization must satisfy, so a
/// cycle proves no witness exists — a real violation, not a heuristic. This
/// is exactly how the classic two-shard anomaly shows up: w(x)@A -po->
/// w(y)@B -rf-> r(y) -po-> r(x)=missing -fr-> w(x) closes the cycle.
class CrossShardChecker {
 public:
  explicit CrossShardChecker(int shards);

  /// Program-order events: call in issue order at process p.
  void on_write(ProcId p, int shard, const std::string& key, const std::string& value);
  /// A read at p routed to `shard`, returning `result` when p's replica of
  /// that shard had applied `applied_count` writes.
  void on_read(ProcId p, int shard, const std::string& key,
               const std::optional<std::string>& result, std::size_t applied_count);

  /// Feed shard `shard`'s common write order, front to back (e.g. one
  /// replica's ReplicatedKV::applied after the per-shard SeqCstChecker
  /// confirmed all replicas agree). Call at quiescence, before check().
  void on_order(int shard, const AppliedWrite& w);

  /// Build the constraint graph and search for a cycle. Call once after
  /// the run; repeated calls return the same result.
  const std::vector<std::string>& check();

  bool ok() { return check().empty(); }

 private:
  struct Op {
    bool is_write = false;
    ProcId proc = kNoProc;
    int shard = 0;
    std::string key;
    std::string value;            // write payload
    std::optional<std::string> result;  // read outcome
    std::size_t applied_count = 0;      // read: observed prefix length
    std::size_t order_pos = 0;          // write: position in shard order
    bool ordered = false;
  };

  std::string describe(const Op& op) const;

  int shards_;
  bool checked_ = false;
  std::vector<Op> ops_;
  std::vector<std::vector<std::size_t>> by_proc_;          // program order (op ids)
  std::vector<std::vector<std::size_t>> shard_orders_;     // per shard: ordered write op ids
  std::map<std::pair<ProcId, int>, std::vector<std::size_t>> unmatched_;  // FIFO per (p, shard)
  std::vector<std::string> violations_;
};

}  // namespace vsg::app
