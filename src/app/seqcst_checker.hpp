#pragma once

// Independent checker for the sequentially consistent memory built in
// app/replicated_kv. It trusts nothing about the implementation: it is fed
// the raw observations (which writes each replica applied, in order, and
// what each read returned together with how many writes the replica had
// applied at that moment) and verifies:
//   1. all replicas apply the same write sequence (each a prefix of one
//      common order) — the replicated-state-machine core;
//   2. every applied write was actually submitted, per-submitter FIFO;
//   3. every read returns exactly the latest value for its key among the
//      writes the replica had applied (or "missing" if none) — i.e. reads
//      are consistent with a prefix of the common order.
// Together these imply the history is sequentially consistent: order all
// writes by the common order and insert each read after the prefix it
// observed; program order is preserved because submissions are FIFO and
// reads at p observe a monotonically growing prefix.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "app/replicated_kv.hpp"
#include "util/types.hpp"

namespace vsg::app {

class SeqCstChecker {
 public:
  explicit SeqCstChecker(int n);

  /// A write was submitted at p (program order).
  void on_submit(ProcId p, const std::string& key, const std::string& value);

  /// Replica `replica` applied a write.
  void on_apply(ProcId replica, const AppliedWrite& w);

  /// A read at `replica` returned `result` when the replica had applied
  /// `applied_count` writes.
  void on_read(ProcId replica, const std::string& key,
               const std::optional<std::string>& result, std::size_t applied_count);

  bool ok() const noexcept { return violations_.empty(); }
  const std::vector<std::string>& violations() const noexcept { return violations_; }

  /// The reconstructed common write order.
  const std::vector<AppliedWrite>& common_order() const noexcept { return common_; }

 private:
  int n_;
  std::vector<std::vector<std::pair<std::string, std::string>>> submitted_;
  std::vector<std::size_t> ordered_per_submitter_;
  std::vector<AppliedWrite> common_;
  std::vector<std::size_t> applied_count_;
  std::vector<std::string> violations_;
};

}  // namespace vsg::app
