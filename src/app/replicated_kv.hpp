#pragma once

// Replicated memory over TO — the application of the paper's footnote 3
// (the replicated state machine approach):
//   - every replica holds a full copy of the store;
//   - a (fast) read is answered immediately from the local copy;
//   - a write is sent through totally ordered broadcast, and *every*
//     replica (including the writer) applies it only when TO delivers it.
// Sequential consistency follows from all replicas applying the same write
// sequence (the TO order) and each process's operations taking effect in
// program order.
//
// Footnote 3 also sketches the stronger alternative — "send all operations
// (not just updates) through the totally ordered broadcast service; this
// approach constructs an atomic shared memory". atomic_read implements it:
// the read is broadcast as a marker and answered when the issuing replica
// delivers its own marker, so the result reflects exactly the writes
// ordered before the read in the one common order (linearizability).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "to/service.hpp"

namespace vsg::app {

/// One applied update, as seen by a replica.
struct AppliedWrite {
  ProcId origin = kNoProc;
  std::string key;
  std::string value;
};

class ReplicatedKV {
 public:
  /// Attaches one to::Client per processor of `to_service` (the legacy
  /// global set_delivery callback stays free for observers).
  explicit ReplicatedKV(to::Service& to_service);

  /// Submit a write at processor p (takes effect when TO delivers it).
  void write(ProcId p, const std::string& key, const std::string& value);

  /// Read at processor p: immediate, from the local replica (sequentially
  /// consistent).
  std::optional<std::string> read(ProcId p, const std::string& key) const;

  /// Atomic (linearizable) read at p: routed through TO; the callback
  /// fires when p delivers its own read marker, with the value at that
  /// point of the common order and the number of writes applied by then.
  using AtomicReadFn =
      std::function<void(const std::optional<std::string>& value, std::size_t applied)>;
  void atomic_read(ProcId p, const std::string& key, AtomicReadFn done);

  /// Atomic reads issued at p whose markers have not come back yet.
  std::size_t atomic_reads_in_flight(ProcId p) const;

  /// Write barrier: a TO-routed no-op marker. The callback fires when p
  /// delivers its own marker; at that point p's replica has applied every
  /// write ordered before the marker in this stack's common order — in
  /// particular every write that had already been applied anywhere when the
  /// barrier was issued. One barrier fences one stack only; the cross-shard
  /// recipe (docs/SHARDING.md) inserts it per shard: a writer barriers
  /// shard A between a write to A and a later write to B, a reader barriers
  /// shard A after observing the B-write and before reading A.
  using BarrierFn = std::function<void(std::size_t applied)>;
  void barrier(ProcId p, BarrierFn done);

  /// Barriers issued at p whose markers have not come back yet.
  std::size_t barriers_in_flight(ProcId p) const;

  /// Compare-and-swap: set key to `desired` iff its value equals `expected`
  /// (nullopt = key absent) *at the operation's position in the common
  /// order*. Every replica evaluates the same deterministic outcome; the
  /// issuing replica reports it through the callback. This is the classic
  /// consensus-strength primitive built for free on totally ordered
  /// broadcast (the replicated-state-machine payoff of footnote 3).
  using CasFn = std::function<void(bool succeeded)>;
  void cas(ProcId p, const std::string& key, const std::optional<std::string>& expected,
           const std::string& desired, CasFn done);

  /// The local replica store of p.
  const std::map<std::string, std::string>& store(ProcId p) const;

  /// Updates applied at p so far, in application order.
  const std::vector<AppliedWrite>& applied(ProcId p) const;

  /// Writes submitted at p that have not yet been applied at p.
  std::size_t writes_in_flight(ProcId p) const;

 private:
  void on_delivery(ProcId dest, ProcId origin, const core::Value& encoded);

  to::Service* to_;
  std::vector<std::unique_ptr<to::Client>> clients_;  // one per processor
  std::vector<std::map<std::string, std::string>> stores_;
  std::vector<std::vector<AppliedWrite>> applied_;
  std::vector<std::size_t> submitted_;
  std::vector<std::size_t> applied_own_;
  // Pending atomic reads per issuing processor, in marker submission order
  // (TO's per-sender FIFO matches markers to callbacks positionally).
  std::vector<std::deque<std::pair<std::string, AtomicReadFn>>> pending_reads_;
  // Pending CAS callbacks per issuing processor, likewise positional.
  std::vector<std::deque<CasFn>> pending_cas_;
  // Pending barrier callbacks per issuing processor, likewise positional.
  std::vector<std::deque<BarrierFn>> pending_barriers_;
};

/// Wire format of operations carried as TO data values: a write (key,
/// value) or a read marker (key). decode returns nullopt for foreign data.
core::Value encode_write(const std::string& key, const std::string& value);
std::optional<std::pair<std::string, std::string>> decode_write(const core::Value& v);
core::Value encode_read_marker(const std::string& key);
std::optional<std::string> decode_read_marker(const core::Value& v);

}  // namespace vsg::app
