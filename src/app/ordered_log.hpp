#pragma once

// Ordered shared log ("ledger"/"chat room"): the simplest application of
// totally ordered broadcast. Every process appends entries; all processes
// observe the same log, each seeing a prefix of the common order.

#include <memory>
#include <string>
#include <vector>

#include "to/service.hpp"

namespace vsg::app {

class OrderedLog {
 public:
  struct Entry {
    ProcId author = kNoProc;
    std::string text;
    bool operator==(const Entry&) const = default;
  };

  /// Attaches one to::Client per processor of `to_service`.
  explicit OrderedLog(to::Service& to_service);

  /// Append an entry authored at processor p.
  void append(ProcId p, std::string text);

  /// The log as seen at processor p (a prefix of the common order).
  const std::vector<Entry>& log(ProcId p) const;

  /// True iff every process's log is a prefix of the longest one
  /// (the application-level statement of the TO guarantee).
  bool prefix_consistent() const;

 private:
  to::Service* to_;
  std::vector<std::unique_ptr<to::Client>> clients_;  // one per processor
  std::vector<std::vector<Entry>> logs_;
};

}  // namespace vsg::app
