#include "app/ordered_log.hpp"

#include <cassert>

namespace vsg::app {

OrderedLog::OrderedLog(to::Service& to_service)
    : to_(&to_service), logs_(static_cast<std::size_t>(to_service.size())) {
  for (ProcId p = 0; p < to_->size(); ++p) {
    clients_.push_back(std::make_unique<to::CallbackClient>(
        [this, p](ProcId origin, const core::Value& v) {
          logs_[static_cast<std::size_t>(p)].push_back(Entry{origin, v});
        }));
    to_->attach(p, *clients_.back());
  }
}

void OrderedLog::append(ProcId p, std::string text) {
  assert(p >= 0 && p < to_->size());
  to_->bcast(p, std::move(text));
}

const std::vector<OrderedLog::Entry>& OrderedLog::log(ProcId p) const {
  assert(p >= 0 && p < to_->size());
  return logs_[static_cast<std::size_t>(p)];
}

bool OrderedLog::prefix_consistent() const {
  const std::vector<Entry>* longest = nullptr;
  for (const auto& log : logs_)
    if (longest == nullptr || log.size() > longest->size()) longest = &log;
  if (longest == nullptr) return true;
  for (const auto& log : logs_) {
    for (std::size_t i = 0; i < log.size(); ++i)
      if (!(log[i] == (*longest)[i])) return false;
  }
  return true;
}

}  // namespace vsg::app
