#include "app/seqcst_checker.hpp"

#include <cassert>

namespace vsg::app {

SeqCstChecker::SeqCstChecker(int n)
    : n_(n),
      submitted_(static_cast<std::size_t>(n)),
      ordered_per_submitter_(static_cast<std::size_t>(n), 0),
      applied_count_(static_cast<std::size_t>(n), 0) {
  assert(n > 0);
}

void SeqCstChecker::on_submit(ProcId p, const std::string& key, const std::string& value) {
  submitted_[static_cast<std::size_t>(p)].emplace_back(key, value);
}

void SeqCstChecker::on_apply(ProcId replica, const AppliedWrite& w) {
  auto& pos = applied_count_[static_cast<std::size_t>(replica)];
  if (pos < common_.size()) {
    const auto& expect = common_[pos];
    if (expect.origin != w.origin || expect.key != w.key || expect.value != w.value)
      violations_.push_back("replica " + std::to_string(replica) +
                            " diverged from the common write order at position " +
                            std::to_string(pos));
  } else {
    // This replica defines the next element of the common order; it must be
    // the submitter's next not-yet-ordered write (integrity + FIFO).
    const auto origin = static_cast<std::size_t>(w.origin);
    if (w.origin < 0 || w.origin >= n_ ||
        ordered_per_submitter_[origin] >= submitted_[origin].size()) {
      violations_.push_back("applied write has no corresponding submission");
    } else {
      const auto& next = submitted_[origin][ordered_per_submitter_[origin]];
      if (next.first != w.key || next.second != w.value)
        violations_.push_back("applied write violates submitter " +
                              std::to_string(w.origin) + "'s program order");
      ++ordered_per_submitter_[origin];
    }
    common_.push_back(w);
  }
  ++pos;
}

void SeqCstChecker::on_read(ProcId replica, const std::string& key,
                            const std::optional<std::string>& result,
                            std::size_t applied_count) {
  (void)replica;
  if (applied_count > common_.size()) {
    violations_.push_back("read observed more writes than exist in the common order");
    return;
  }
  // Latest value for `key` among the first `applied_count` common writes.
  std::optional<std::string> expect;
  for (std::size_t i = 0; i < applied_count; ++i)
    if (common_[i].key == key) expect = common_[i].value;
  if (expect != result)
    violations_.push_back("read of '" + key + "' returned " +
                          (result ? "'" + *result + "'" : "missing") + " but the prefix says " +
                          (expect ? "'" + *expect + "'" : "missing"));
}

// --- CrossShardChecker --------------------------------------------------------

CrossShardChecker::CrossShardChecker(int shards)
    : shards_(shards), shard_orders_(static_cast<std::size_t>(shards)) {
  assert(shards > 0);
}

void CrossShardChecker::on_write(ProcId p, int shard, const std::string& key,
                                 const std::string& value) {
  assert(shard >= 0 && shard < shards_);
  const std::size_t id = ops_.size();
  ops_.push_back(Op{true, p, shard, key, value, std::nullopt, 0, 0, false});
  if (static_cast<std::size_t>(p) >= by_proc_.size())
    by_proc_.resize(static_cast<std::size_t>(p) + 1);
  by_proc_[static_cast<std::size_t>(p)].push_back(id);
  unmatched_[{p, shard}].push_back(id);
}

void CrossShardChecker::on_read(ProcId p, int shard, const std::string& key,
                                const std::optional<std::string>& result,
                                std::size_t applied_count) {
  assert(shard >= 0 && shard < shards_);
  const std::size_t id = ops_.size();
  ops_.push_back(Op{false, p, shard, key, std::string(), result, applied_count, 0, false});
  if (static_cast<std::size_t>(p) >= by_proc_.size())
    by_proc_.resize(static_cast<std::size_t>(p) + 1);
  by_proc_[static_cast<std::size_t>(p)].push_back(id);
}

void CrossShardChecker::on_order(int shard, const AppliedWrite& w) {
  assert(shard >= 0 && shard < shards_);
  auto& queue = unmatched_[{w.origin, shard}];
  // Writes of one process on one shard are FIFO (TO per-sender FIFO), so
  // the next unmatched submission must be this applied write.
  if (queue.empty() || ops_[queue.front()].key != w.key ||
      ops_[queue.front()].value != w.value) {
    violations_.push_back("shard " + std::to_string(shard) + " ordered a write from p" +
                          std::to_string(w.origin) + " ('" + w.key + "'='" + w.value +
                          "') that does not match the submission history");
    return;
  }
  Op& op = ops_[queue.front()];
  op.ordered = true;
  op.order_pos = shard_orders_[static_cast<std::size_t>(shard)].size();
  shard_orders_[static_cast<std::size_t>(shard)].push_back(queue.front());
  queue.erase(queue.begin());
}

std::string CrossShardChecker::describe(const Op& op) const {
  if (op.is_write)
    return "p" + std::to_string(op.proc) + ":W(" + op.key + "='" + op.value + "')@shard" +
           std::to_string(op.shard);
  return "p" + std::to_string(op.proc) + ":R(" + op.key + ")=" +
         (op.result ? "'" + *op.result + "'" : "missing") + "@shard" +
         std::to_string(op.shard);
}

const std::vector<std::string>& CrossShardChecker::check() {
  if (checked_) return violations_;
  checked_ = true;

  for (const auto& [key, queue] : unmatched_)
    for (const std::size_t id : queue)
      violations_.push_back(describe(ops_[id]) +
                            " was submitted but never ordered by its shard");

  // Constraint edges; edges[i] holds (successor, edge label).
  std::vector<std::vector<std::pair<std::size_t, const char*>>> edges(ops_.size());
  for (const auto& prog : by_proc_)
    for (std::size_t i = 1; i < prog.size(); ++i)
      edges[prog[i - 1]].emplace_back(prog[i], "po");
  for (const auto& order : shard_orders_)
    for (std::size_t i = 1; i < order.size(); ++i)
      edges[order[i - 1]].emplace_back(order[i], "so");

  for (std::size_t r = 0; r < ops_.size(); ++r) {
    const Op& read = ops_[r];
    if (read.is_write) continue;
    const auto& order = shard_orders_[static_cast<std::size_t>(read.shard)];
    const std::size_t prefix = std::min(read.applied_count, order.size());
    // rf: the last write to the key in the observed prefix (or init).
    std::size_t src = ops_.size();  // sentinel: reads-from-init
    for (std::size_t i = prefix; i-- > 0;) {
      if (ops_[order[i]].key == read.key) {
        src = order[i];
        break;
      }
    }
    const std::optional<std::string> expect =
        src == ops_.size() ? std::nullopt : std::optional<std::string>(ops_[src].value);
    if (expect != read.result) {
      violations_.push_back(describe(read) + " disagrees with its shard prefix (expected " +
                            (expect ? "'" + *expect + "'" : "missing") + ")");
      continue;
    }
    if (src != ops_.size()) edges[src].emplace_back(r, "rf");
    // fr: the read precedes the key's next write in the shard order (the
    // first write to the key at all when reading from init).
    const std::size_t from = src == ops_.size() ? 0 : ops_[src].order_pos + 1;
    for (std::size_t i = from; i < order.size(); ++i) {
      if (ops_[order[i]].key == read.key) {
        edges[r].emplace_back(order[i], "fr");
        break;
      }
    }
  }

  // Iterative three-color DFS; the eventual back edge closes the cycle.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(ops_.size(), kWhite);
  std::vector<std::size_t> parent(ops_.size(), ops_.size());
  std::vector<const char*> parent_label(ops_.size(), "");
  for (std::size_t root = 0; root < ops_.size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < edges[v].size()) {
        const auto [w, label] = edges[v][next++];
        if (color[w] == kWhite) {
          color[w] = kGray;
          parent[w] = v;
          parent_label[w] = label;
          stack.emplace_back(w, 0);
        } else if (color[w] == kGray) {
          // Cycle w -> ... -> v -> w: walk parents from v back to w.
          std::string cycle = describe(ops_[w]);
          std::vector<std::string> steps;
          for (std::size_t u = v; u != w; u = parent[u])
            steps.push_back(" -" + std::string(parent_label[u]) + "-> " + describe(ops_[u]));
          for (auto it = steps.rbegin(); it != steps.rend(); ++it) cycle += *it;
          cycle += " -" + std::string(label) + "-> " + describe(ops_[w]);
          violations_.push_back("not sequentially consistent; ordering cycle: " + cycle);
          return violations_;
        }
      } else {
        color[v] = kBlack;
        stack.pop_back();
      }
    }
  }
  return violations_;
}

}  // namespace vsg::app
