#include "app/seqcst_checker.hpp"

#include <cassert>

namespace vsg::app {

SeqCstChecker::SeqCstChecker(int n)
    : n_(n),
      submitted_(static_cast<std::size_t>(n)),
      ordered_per_submitter_(static_cast<std::size_t>(n), 0),
      applied_count_(static_cast<std::size_t>(n), 0) {
  assert(n > 0);
}

void SeqCstChecker::on_submit(ProcId p, const std::string& key, const std::string& value) {
  submitted_[static_cast<std::size_t>(p)].emplace_back(key, value);
}

void SeqCstChecker::on_apply(ProcId replica, const AppliedWrite& w) {
  auto& pos = applied_count_[static_cast<std::size_t>(replica)];
  if (pos < common_.size()) {
    const auto& expect = common_[pos];
    if (expect.origin != w.origin || expect.key != w.key || expect.value != w.value)
      violations_.push_back("replica " + std::to_string(replica) +
                            " diverged from the common write order at position " +
                            std::to_string(pos));
  } else {
    // This replica defines the next element of the common order; it must be
    // the submitter's next not-yet-ordered write (integrity + FIFO).
    const auto origin = static_cast<std::size_t>(w.origin);
    if (w.origin < 0 || w.origin >= n_ ||
        ordered_per_submitter_[origin] >= submitted_[origin].size()) {
      violations_.push_back("applied write has no corresponding submission");
    } else {
      const auto& next = submitted_[origin][ordered_per_submitter_[origin]];
      if (next.first != w.key || next.second != w.value)
        violations_.push_back("applied write violates submitter " +
                              std::to_string(w.origin) + "'s program order");
      ++ordered_per_submitter_[origin];
    }
    common_.push_back(w);
  }
  ++pos;
}

void SeqCstChecker::on_read(ProcId replica, const std::string& key,
                            const std::optional<std::string>& result,
                            std::size_t applied_count) {
  (void)replica;
  if (applied_count > common_.size()) {
    violations_.push_back("read observed more writes than exist in the common order");
    return;
  }
  // Latest value for `key` among the first `applied_count` common writes.
  std::optional<std::string> expect;
  for (std::size_t i = 0; i < applied_count; ++i)
    if (common_[i].key == key) expect = common_[i].value;
  if (expect != result)
    violations_.push_back("read of '" + key + "' returned " +
                          (result ? "'" + *result + "'" : "missing") + " but the prefix says " +
                          (expect ? "'" + *expect + "'" : "missing"));
}

}  // namespace vsg::app
