#include "util/logging.hpp"

#include <cstdio>
#include <mutex>

namespace vsg::util {
namespace {

// Read on every VSG_LOG macro expansion (the enabled() hot path) and
// written by test/example/tool toggles, possibly while Worlds run on other
// threads — hence atomic. Relaxed suffices: the level is an independent
// flag, nothing is published through it.
std::atomic<LogLevel> g_level{LogLevel::kOff};

void default_sink(LogLevel level, const std::string& msg) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  std::fprintf(stderr, "[%s] %s\n", idx >= 0 && idx < 4 ? names[idx] : "?", msg.c_str());
}

// The sink is cold (only reached once a line passed enabled()), so a plain
// mutex keeps set_sink / write from racing without touching the hot path.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

Log::Sink& sink_ref() {
  static Log::Sink sink = default_sink;
  return sink;
}

}  // namespace

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() noexcept { return g_level.load(std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  sink_ref() = std::move(sink);
}

void Log::reset_sink() {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  sink_ref() = default_sink;
}

bool Log::enabled(LogLevel level) noexcept {
  const LogLevel cur = g_level.load(std::memory_order_relaxed);
  return static_cast<int>(level) >= static_cast<int>(cur) && cur != LogLevel::kOff;
}

void Log::write(LogLevel level, const std::string& msg) {
  if (!enabled(level)) return;
  // Copy under the lock, call outside it: a sink that logs (or swaps the
  // sink) must not deadlock.
  Sink sink;
  {
    const std::lock_guard<std::mutex> lock(sink_mutex());
    sink = sink_ref();
  }
  if (sink) sink(level, msg);
}

}  // namespace vsg::util
