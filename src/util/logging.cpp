#include "util/logging.hpp"

#include <cstdio>

namespace vsg::util {
namespace {

LogLevel g_level = LogLevel::kOff;

void default_sink(LogLevel level, const std::string& msg) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  std::fprintf(stderr, "[%s] %s\n", idx >= 0 && idx < 4 ? names[idx] : "?", msg.c_str());
}

Log::Sink& sink_ref() {
  static Log::Sink sink = default_sink;
  return sink;
}

}  // namespace

void Log::set_level(LogLevel level) noexcept { g_level = level; }
LogLevel Log::level() noexcept { return g_level; }
void Log::set_sink(Sink sink) { sink_ref() = std::move(sink); }
void Log::reset_sink() { sink_ref() = default_sink; }

bool Log::enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(g_level) && g_level != LogLevel::kOff;
}

void Log::write(LogLevel level, const std::string& msg) {
  if (enabled(level)) sink_ref()(level, msg);
}

}  // namespace vsg::util
