#pragma once

// Seeded key-distribution sampler for open-system workloads: draws key
// indices in [0, keys) either uniformly or Zipf-skewed (frequency of the
// rank-r key proportional to 1/r^s). Zipf is the shape real KV traffic has —
// a few hot keys absorb most of the load — and is what the sharded
// throughput bench drives through the hash partitioner: skew stresses the
// claim that a stable key->shard hash still spreads *throughput* when the
// key popularity is anything but flat.
//
// Sampling is exact inverse-CDF over a precomputed cumulative table
// (O(log keys) per draw, O(keys) memory), not an approximation, so the
// statistical sanity tests can pin expected frequencies tightly. All draws
// come from the caller's util::Rng: same seed, same key sequence.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace vsg::util {

class KeyDist {
 public:
  /// `keys` > 0 distinct keys; `s` is the Zipf exponent (0 = uniform,
  /// 1 = classic Zipf, larger = more skew). Negative s is invalid.
  KeyDist(std::uint64_t keys, double s);

  std::uint64_t keys() const noexcept { return keys_; }
  double s() const noexcept { return s_; }

  /// Key index in [0, keys): index 0 is the hottest rank under skew.
  std::uint64_t next(Rng& rng) const;

  /// Expected probability of drawing `index` (exact, from the same table
  /// sampling uses) — what the sanity tests compare frequencies against.
  double probability(std::uint64_t index) const;

  /// Canonical key naming for benches and demos: "k<index>".
  static std::string key_name(std::uint64_t index);

 private:
  std::uint64_t keys_;
  double s_;
  /// Cumulative probabilities, cdf_[i] = P(key <= i); empty when uniform
  /// (uniform sampling needs no table).
  std::vector<double> cdf_;
};

}  // namespace vsg::util
