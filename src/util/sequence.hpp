#pragma once

// Sequence utilities mirroring the paper's mathematical preliminaries
// (Section 2): prefix ordering, consistent collections, lub, applyall.
//
// The paper manipulates finite sequences of labels and of (value, origin)
// pairs; we model them as std::vector and provide the exact operations the
// proofs rely on, so the verification layer can be a literal transcription.

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

namespace vsg::util {

/// True iff `shorter` is a prefix of `longer` (the paper's s <= t).
template <typename T>
bool is_prefix(const std::vector<T>& shorter, const std::vector<T>& longer) {
  if (shorter.size() > longer.size()) return false;
  return std::equal(shorter.begin(), shorter.end(), longer.begin());
}

/// True iff one of the two sequences is a prefix of the other.
template <typename T>
bool comparable(const std::vector<T>& a, const std::vector<T>& b) {
  return is_prefix(a, b) || is_prefix(b, a);
}

/// True iff every pair in the collection is prefix-comparable
/// (the paper's "consistent collection of sequences").
template <typename T>
bool is_consistent(const std::vector<std::vector<T>>& seqs) {
  for (std::size_t i = 0; i < seqs.size(); ++i)
    for (std::size_t j = i + 1; j < seqs.size(); ++j)
      if (!comparable(seqs[i], seqs[j])) return false;
  return true;
}

/// Least upper bound of a consistent collection: the minimum sequence that
/// has every member as a prefix (i.e. the longest member). Returns
/// std::nullopt if the collection is not consistent.
template <typename T>
std::optional<std::vector<T>> lub(const std::vector<std::vector<T>>& seqs) {
  if (!is_consistent(seqs)) return std::nullopt;
  const std::vector<T>* longest = nullptr;
  for (const auto& s : seqs)
    if (longest == nullptr || s.size() > longest->size()) longest = &s;
  if (longest == nullptr) return std::vector<T>{};
  return *longest;
}

/// The paper's applyall(f, s): map f over sequence s.
template <typename T, typename F>
auto applyall(F&& f, const std::vector<T>& s) {
  using R = decltype(f(s.front()));
  std::vector<R> out;
  out.reserve(s.size());
  for (const auto& x : s) out.push_back(f(x));
  return out;
}

/// First `n` elements of `s` (n may exceed s.size(); then the whole of s).
template <typename T>
std::vector<T> prefix_of(const std::vector<T>& s, std::size_t n) {
  return std::vector<T>(s.begin(), s.begin() + std::min(n, s.size()));
}

/// True iff `x` occurs in `s`.
template <typename T>
bool contains(const std::vector<T>& s, const T& x) {
  return std::find(s.begin(), s.end(), x) != s.end();
}

/// Index of the first occurrence of `x` in `s`, or nullopt.
template <typename T>
std::optional<std::size_t> index_of(const std::vector<T>& s, const T& x) {
  auto it = std::find(s.begin(), s.end(), x);
  if (it == s.end()) return std::nullopt;
  return static_cast<std::size_t>(it - s.begin());
}

}  // namespace vsg::util
