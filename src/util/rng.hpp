#pragma once

// Deterministic, splittable random number generation.
//
// Every source of nondeterminism in the simulation (link jitter on "ugly"
// links, scheduling choices in spec drivers, workload generators) draws from
// an Rng seeded from the scenario seed, so a (seed, scenario) pair replays
// bit-identically. We use xoshiro256**, seeded via splitmix64, rather than
// std::mt19937 so that streams are cheap to fork per component.

#include <array>
#include <cstdint>

namespace vsg::util {

/// xoshiro256** PRNG with a splitmix64-based seeder and a `split()`
/// operation that derives an independent child stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound) using Lemire-style rejection; bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Derive an independent child generator; deterministic in this
  /// generator's current state (and advances it).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace vsg::util
