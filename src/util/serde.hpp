#pragma once

// Compact binary serialization used on the simulated wire.
//
// The membership/token-ring implementation and the VStoTO peer protocol
// exchange real byte buffers (so message sizes in benchmarks are honest and
// the decode path is exercised by failure-injection tests). The format is a
// simple length-prefixed little-endian encoding; Decoder is defensive and
// reports malformed input via ok() rather than UB.
//
// Zero-copy data plane (docs/DATAPLANE.md): Encoder::finish() hands the
// encoded bytes off as an immutable shared Buffer without copying, and a
// Decoder constructed from a Buffer can slice blobs out of it by reference
// (raw_buffer) instead of copying them.

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/buffer.hpp"

namespace vsg::util {

/// Append-only binary writer.
class Encoder {
 public:
  /// Pre-size the output; with a measured hint, the whole encode costs one
  /// allocation (allocs() lets tests assert exactly that).
  void reserve(std::size_t n);

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void boolean(bool v);
  void str(const std::string& v);
  void raw(const Bytes& v);       // length-prefixed blob
  void raw(BufferView v);         // length-prefixed blob
  void append(BufferView v);      // splice bytes verbatim (no length prefix)

  // Variable-width integers (docs/WIRE.md, "Varint rules"): LEB128 with the
  // low 7 bits first and the high bit as continuation; svarint zigzags so
  // small-magnitude signed deltas stay short. These are the v3 frame-body
  // primitives; uvarint_size/svarint_size below keep encoded_size exact.
  void uvarint(std::uint64_t v);
  void svarint(std::int64_t v);
  void vstr(const std::string& v);  // uvarint-length-prefixed string
  void vraw(BufferView v);          // uvarint-length-prefixed blob

  /// Overwrite 4 previously written bytes at `pos` (checksum back-patching,
  /// so a framed packet needs no second buffer).
  void patch_u32(std::size_t pos, std::uint32_t v);

  std::size_t size() const noexcept { return buf_.size(); }
  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }
  /// Hand the encoded bytes off as an immutable shared Buffer (no copy).
  Buffer finish() noexcept { return Buffer(std::move(buf_)); }

  /// Number of backing-store (re)allocations so far, including the one made
  /// by reserve(). A measured reserve + encode shows exactly 1.
  std::size_t allocs() const noexcept { return allocs_; }

 private:
  void note_capacity();

  Bytes buf_;
  std::size_t last_cap_ = 0;
  std::size_t allocs_ = 0;
};

/// Sequential binary reader over a borrowed byte range. Any out-of-bounds
/// read sets ok() to false and yields zero values; callers check ok() once
/// at the end of decoding a message.
///
/// Constructed from a Buffer, the decoder remembers the owning storage so
/// raw_buffer() can return refcounted slices instead of copies. The other
/// constructors borrow; the source must outlive the decoder.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) noexcept : view_(buf) {}
  explicit Decoder(BufferView view) noexcept : view_(view) {}
  /// Holds a (cheap, refcounted) reference to the Buffer, so decoding from a
  /// temporary is safe and raw_buffer() slices stay alive.
  explicit Decoder(const Buffer& buf) noexcept : view_(buf.view()), origin_(buf) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  bool boolean();
  std::string str();
  Bytes raw();

  /// LEB128 uvarint/svarint (v3 frame bodies). Defensive like every other
  /// read: a missing terminator or an encoding longer than 10 bytes sets
  /// ok() to false and yields 0.
  std::uint64_t uvarint();
  std::int64_t svarint();
  std::string vstr();      // uvarint-length-prefixed string
  BufferView vraw_view();  // uvarint-length-prefixed blob (borrowed)
  Buffer vraw_buffer();    // uvarint-length-prefixed blob (slice when possible)
  /// Length-prefixed blob as a view into the decoder's input (no copy; same
  /// lifetime as the input).
  BufferView raw_view();
  /// Length-prefixed blob as a Buffer. Zero-copy (a slice sharing the
  /// input's storage) when the decoder was constructed from a Buffer; a
  /// copying fallback otherwise.
  Buffer raw_buffer();

  bool ok() const noexcept { return ok_; }
  /// Mark the input malformed — for codec-level validation failures the
  /// field readers cannot see (e.g. a zero-count token segment).
  void fail() noexcept { ok_ = false; }
  bool at_end() const noexcept { return pos_ == view_.size(); }
  /// True iff decoding consumed the whole buffer without error.
  bool complete() const noexcept { return ok_ && at_end(); }
  /// Current read offset (for slicing sections out of the input).
  std::size_t pos() const noexcept { return pos_; }
  /// Slice [from, to) of the input as a Buffer (zero-copy when possible).
  Buffer input_slice(std::size_t from, std::size_t to) const;

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  BufferView view_;
  Buffer origin_;  // empty unless constructed from a Buffer
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Exact encoded length of Encoder::uvarint(v): 1..10 bytes.
constexpr std::size_t uvarint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Zigzag mapping used by svarint: small magnitudes (either sign) get small
/// codes. Exposed so size accounting and the mirror tests share one truth.
constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Exact encoded length of Encoder::svarint(v).
constexpr std::size_t svarint_size(std::int64_t v) noexcept {
  return uvarint_size(zigzag(v));
}

// --- Chaos fault injection ------------------------------------------------
//
// Historical bug, kept re-enableable so the chaos campaign's oracles can be
// demonstrated against a known fault: when unchecked decode is on, the wire
// decoders in vstoto/wire.cpp and membership/messages.cpp skip their
// ok()/complete()/checksum validation, so truncated or corrupted packets
// decode as zero-filled messages instead of being rejected. Never enable
// outside tests or `chaos_runner --inject-unchecked-decode`.
//
// The flag is thread_local: it scopes to the calling thread, i.e. to the
// World the current thread is executing. Worlds running in parallel
// (docs/CHAOS.md, "Parallel execution") each see their own flag, and a
// guard taken on one thread neither injects into nor races with another.
// Toggle it on the thread that runs the World, before the World decodes.

bool unchecked_decode() noexcept;
void set_unchecked_decode_for_test(bool on) noexcept;

/// RAII scope for the injection flag (restores the previous value).
class UncheckedDecodeGuard {
 public:
  UncheckedDecodeGuard() : prev_(unchecked_decode()) { set_unchecked_decode_for_test(true); }
  ~UncheckedDecodeGuard() { set_unchecked_decode_for_test(prev_); }
  UncheckedDecodeGuard(const UncheckedDecodeGuard&) = delete;
  UncheckedDecodeGuard& operator=(const UncheckedDecodeGuard&) = delete;

 private:
  bool prev_;
};

// --- Generic helpers for containers -------------------------------------

template <typename T, typename F>
void encode_vector(Encoder& e, const std::vector<T>& v, F&& encode_elem) {
  e.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& x : v) encode_elem(e, x);
}

template <typename T, typename F>
std::vector<T> decode_vector(Decoder& d, F&& decode_elem) {
  const std::uint32_t n = d.u32();
  std::vector<T> v;
  // Guard against hostile lengths: cap reserve, rely on ok() to stop loops.
  v.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n && d.ok(); ++i) v.push_back(decode_elem(d));
  return v;
}

}  // namespace vsg::util
