#pragma once

// Compact binary serialization used on the simulated wire.
//
// The membership/token-ring implementation and the VStoTO peer protocol
// exchange real byte buffers (so message sizes in benchmarks are honest and
// the decode path is exercised by failure-injection tests). The format is a
// simple length-prefixed little-endian encoding; Decoder is defensive and
// reports malformed input via ok() rather than UB.

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace vsg::util {

using Bytes = std::vector<std::uint8_t>;

/// Append-only binary writer.
class Encoder {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void boolean(bool v);
  void str(const std::string& v);
  void raw(const Bytes& v);  // length-prefixed blob

  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential binary reader over a borrowed buffer. Any out-of-bounds read
/// sets ok() to false and yields zero values; callers check ok() once at the
/// end of decoding a message.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) noexcept : buf_(&buf) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  bool boolean();
  std::string str();
  Bytes raw();

  bool ok() const noexcept { return ok_; }
  bool at_end() const noexcept { return pos_ == buf_->size(); }
  /// True iff decoding consumed the whole buffer without error.
  bool complete() const noexcept { return ok_ && at_end(); }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  const Bytes* buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Chaos fault injection ------------------------------------------------
//
// Historical bug, kept re-enableable so the chaos campaign's oracles can be
// demonstrated against a known fault: when unchecked decode is on, the wire
// decoders in vstoto/wire.cpp and membership/messages.cpp skip their
// ok()/complete()/checksum validation, so truncated or corrupted packets
// decode as zero-filled messages instead of being rejected. Never enable
// outside tests or `chaos_runner --inject-unchecked-decode`.

bool unchecked_decode() noexcept;
void set_unchecked_decode_for_test(bool on) noexcept;

/// RAII scope for the injection flag (restores the previous value).
class UncheckedDecodeGuard {
 public:
  UncheckedDecodeGuard() : prev_(unchecked_decode()) { set_unchecked_decode_for_test(true); }
  ~UncheckedDecodeGuard() { set_unchecked_decode_for_test(prev_); }
  UncheckedDecodeGuard(const UncheckedDecodeGuard&) = delete;
  UncheckedDecodeGuard& operator=(const UncheckedDecodeGuard&) = delete;

 private:
  bool prev_;
};

// --- Generic helpers for containers -------------------------------------

template <typename T, typename F>
void encode_vector(Encoder& e, const std::vector<T>& v, F&& encode_elem) {
  e.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& x : v) encode_elem(e, x);
}

template <typename T, typename F>
std::vector<T> decode_vector(Decoder& d, F&& decode_elem) {
  const std::uint32_t n = d.u32();
  std::vector<T> v;
  // Guard against hostile lengths: cap reserve, rely on ok() to stop loops.
  v.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n && d.ok(); ++i) v.push_back(decode_elem(d));
  return v;
}

}  // namespace vsg::util
