#include "util/buffer.hpp"

#include <atomic>
#include <cstring>

namespace vsg::util {

namespace {
// Monotone storage ids: unlike a heap address, an id is never reused, so a
// (id, offset, size) triple stays a safe cache key after the storage dies.
// The simulator itself is single-threaded, but buffers are allocated from
// test harnesses and tooling that do spin up threads, so the counter is
// atomic; relaxed ordering suffices — uniqueness is all anyone relies on.
std::atomic<std::uint64_t> g_next_storage_uid{1};
}  // namespace

Buffer::Storage::Storage(Bytes&& b)
    : bytes(std::move(b)), uid(g_next_storage_uid.fetch_add(1, std::memory_order_relaxed)) {}

BufferView BufferView::subview(std::size_t off, std::size_t len) const noexcept {
  if (off > size_) return {};
  return BufferView(data_ + off, len < size_ - off ? len : size_ - off);
}

bool BufferView::operator==(const BufferView& o) const noexcept {
  if (size_ != o.size_) return false;
  if (data_ == o.data_ || size_ == 0) return true;
  return std::memcmp(data_, o.data_, size_) == 0;
}

Buffer::Buffer(Bytes&& b) {
  if (b.empty()) return;
  storage_ = std::make_shared<const Storage>(std::move(b));
  data_ = storage_->bytes.data();
  size_ = storage_->bytes.size();
}

Buffer::Buffer(const Bytes& b) : Buffer(Bytes(b)) {}

Buffer Buffer::copy(BufferView v) { return Buffer(Bytes(v.begin(), v.end())); }

Buffer Buffer::slice(std::size_t off, std::size_t len) const {
  Buffer s;
  if (off > size_) return s;
  if (len > size_ - off) len = size_ - off;
  if (len == 0) return s;
  s.storage_ = storage_;
  s.data_ = data_ + off;
  s.size_ = len;
  return s;
}

std::uint64_t Buffer::id() const noexcept { return storage_ ? storage_->uid : 0; }

std::size_t Buffer::storage_offset() const noexcept {
  return storage_ ? static_cast<std::size_t>(data_ - storage_->bytes.data()) : 0;
}

}  // namespace vsg::util
