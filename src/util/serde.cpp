#include "util/serde.hpp"

namespace vsg::util {

namespace {
// thread_local, not a process global: the flag is read on every packet
// decode, and independent Worlds may run on executor threads concurrently
// (chaos --jobs, bench sweeps). A plain bool here was a data race the
// moment two Worlds ran at once; per-thread scoping also means an
// UncheckedDecodeGuard in one World can never leak the injection into a
// World running on another thread.
thread_local bool t_unchecked_decode = false;
}  // namespace

bool unchecked_decode() noexcept { return t_unchecked_decode; }
void set_unchecked_decode_for_test(bool on) noexcept { t_unchecked_decode = on; }

void Encoder::note_capacity() {
  if (buf_.capacity() != last_cap_) {
    last_cap_ = buf_.capacity();
    ++allocs_;
  }
}

void Encoder::reserve(std::size_t n) {
  buf_.reserve(n);
  note_capacity();
}

void Encoder::u8(std::uint8_t v) {
  buf_.push_back(v);
  note_capacity();
}

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  note_capacity();
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  note_capacity();
}

void Encoder::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Encoder::boolean(bool v) { u8(v ? 1 : 0); }

void Encoder::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
  note_capacity();
}

void Encoder::raw(const Bytes& v) { raw(BufferView(v)); }

void Encoder::raw(BufferView v) {
  u32(static_cast<std::uint32_t>(v.size()));
  append(v);
}

void Encoder::uvarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
  note_capacity();
}

void Encoder::svarint(std::int64_t v) { uvarint(zigzag(v)); }

void Encoder::vstr(const std::string& v) {
  uvarint(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
  note_capacity();
}

void Encoder::vraw(BufferView v) {
  uvarint(v.size());
  append(v);
}

void Encoder::append(BufferView v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
  note_capacity();
}

void Encoder::patch_u32(std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_[pos + static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(v >> (8 * i));
}

bool Decoder::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || view_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = view_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t Decoder::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return 0;
  return *p;
}

std::uint32_t Decoder::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t Decoder::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::int64_t Decoder::i64() { return static_cast<std::int64_t>(u64()); }

bool Decoder::boolean() { return u8() != 0; }

std::string Decoder::str() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), n);
}

Bytes Decoder::raw() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return {};
  return Bytes(p, p + n);
}

BufferView Decoder::raw_view() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return {};
  return BufferView(p, n);
}

std::uint64_t Decoder::uvarint() {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const std::uint8_t* p = nullptr;
    if (!take(1, &p)) return 0;
    const std::uint64_t bits = *p & 0x7F;
    // The 10th byte carries the final bit 63; anything above it means the
    // encoding does not fit a u64 (hostile input).
    if (i == 9 && (*p & 0xFE) != 0) {
      ok_ = false;
      return 0;
    }
    v |= bits << (7 * i);
    if ((*p & 0x80) == 0) return v;
  }
  ok_ = false;  // unreachable: the loop returns by byte 10
  return 0;
}

std::int64_t Decoder::svarint() { return unzigzag(uvarint()); }

std::string Decoder::vstr() {
  const std::uint64_t n = uvarint();
  const std::uint8_t* p = nullptr;
  if (!take(static_cast<std::size_t>(n), &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
}

BufferView Decoder::vraw_view() {
  const std::uint64_t n = uvarint();
  const std::uint8_t* p = nullptr;
  if (!take(static_cast<std::size_t>(n), &p)) return {};
  return BufferView(p, static_cast<std::size_t>(n));
}

Buffer Decoder::vraw_buffer() {
  const BufferView v = vraw_view();
  if (!ok_ || v.empty()) return {};
  const std::size_t start = pos_ - v.size();
  if (!origin_.empty()) return origin_.slice(start, v.size());
  return Buffer::copy(v);
}

Buffer Decoder::raw_buffer() {
  const std::size_t start = pos_ + 4;  // past the length prefix (if in range)
  const BufferView v = raw_view();
  if (!ok_ || v.empty()) return {};
  if (!origin_.empty()) return origin_.slice(start, v.size());
  return Buffer::copy(v);
}

Buffer Decoder::input_slice(std::size_t from, std::size_t to) const {
  if (to > view_.size() || from > to) return {};
  if (!origin_.empty()) return origin_.slice(from, to - from);
  return Buffer::copy(view_.subview(from, to - from));
}

}  // namespace vsg::util
