#pragma once

// Minimal leveled logger for the simulation harness.
//
// Logging is off by default (benchmarks and tests run silent); examples turn
// it on to narrate protocol activity. All output goes through a single sink
// so tests can capture it.

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace vsg::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log configuration, shared by every World in the process. Each
/// World is single-threaded, but Worlds may run concurrently (chaos
/// `--jobs`, bench sweeps), so the level is an atomic — enabled() does one
/// relaxed load on the hot path — and the sink swap is mutex-guarded.
/// The sink itself must be thread-safe if logging is enabled while
/// parallel Worlds run (the default stderr sink is; campaign/bench runs
/// are silent by default).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;
  static void set_sink(Sink sink);
  /// Restore the default stderr sink.
  static void reset_sink();

  static bool enabled(LogLevel level) noexcept;
  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace vsg::util

#define VSG_LOG(lvl)                                  \
  if (!::vsg::util::Log::enabled(lvl)) {              \
  } else                                              \
    ::vsg::util::detail::LogLine(lvl)

#define VSG_DEBUG VSG_LOG(::vsg::util::LogLevel::kDebug)
#define VSG_INFO VSG_LOG(::vsg::util::LogLevel::kInfo)
#define VSG_WARN VSG_LOG(::vsg::util::LogLevel::kWarn)
#define VSG_ERROR VSG_LOG(::vsg::util::LogLevel::kError)
