#include "util/keydist.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vsg::util {

KeyDist::KeyDist(std::uint64_t keys, double s) : keys_(keys), s_(s) {
  if (keys == 0) throw std::invalid_argument("KeyDist: keys must be positive");
  if (!(s >= 0.0)) throw std::invalid_argument("KeyDist: Zipf exponent must be >= 0");
  if (s == 0.0) return;  // uniform: no table
  cdf_.resize(static_cast<std::size_t>(keys));
  double total = 0.0;
  for (std::uint64_t r = 0; r < keys; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cdf_[static_cast<std::size_t>(r)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // exact despite rounding
}

std::uint64_t KeyDist::next(Rng& rng) const {
  if (cdf_.empty()) return rng.below(keys_);
  const double u = rng.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return idx < cdf_.size() ? idx : keys_ - 1;
}

double KeyDist::probability(std::uint64_t index) const {
  if (index >= keys_) return 0.0;
  if (cdf_.empty()) return 1.0 / static_cast<double>(keys_);
  const auto i = static_cast<std::size_t>(index);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

std::string KeyDist::key_name(std::uint64_t index) { return "k" + std::to_string(index); }

}  // namespace vsg::util
