#pragma once

// Fundamental identifier types shared across every layer.

#include <cstdint>
#include <limits>

namespace vsg {

/// Processor identifier; the paper's totally ordered finite set P.
/// Processors are numbered 0..n-1.
using ProcId = std::int32_t;

constexpr ProcId kNoProc = -1;

}  // namespace vsg
