#pragma once

// FNV-1a hashing, used as the packet checksum on the simulated wire (the
// paper's channels lose or delay messages but never corrupt them; our
// ugly-link corruption injector is an extension, so packets carry a
// checksum the way real datagrams do).

#include <cstdint>

#include "util/serde.hpp"

namespace vsg::util {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Chainable: pass a previous fnv1a result as `seed` to hash a logically
/// concatenated byte sequence without materializing it (the versioned frame
/// checksum covers version byte + body, which are not contiguous relative
/// to the checksum field itself).
inline std::uint64_t fnv1a(BufferView data, std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(const Bytes& data) noexcept { return fnv1a(BufferView(data)); }

}  // namespace vsg::util
