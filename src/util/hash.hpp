#pragma once

// FNV-1a hashing, used as the packet checksum on the simulated wire (the
// paper's channels lose or delay messages but never corrupt them; our
// ugly-link corruption injector is an extension, so packets carry a
// checksum the way real datagrams do).

#include <cstdint>

#include "util/serde.hpp"

namespace vsg::util {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a(BufferView data) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(const Bytes& data) noexcept { return fnv1a(BufferView(data)); }

}  // namespace vsg::util
