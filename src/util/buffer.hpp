#pragma once

// Zero-copy data plane primitives (docs/DATAPLANE.md).
//
// Buffer is a refcounted, immutable byte buffer: once constructed, the bytes
// behind it never change, so one allocation can be shared by every layer that
// touches a packet — the network fans a broadcast out to k destinations with
// k refcount bumps instead of k payload copies, the trace recorder retains
// payloads by reference, and decoded token entries are slices into the packet
// that carried them. slice() produces a Buffer sharing the same storage; a
// slice keeps the storage alive after the parent Buffer is released.
//
// Every distinct storage carries a process-unique 64-bit id (never reused,
// unlike a heap address), which gives the decode-once cache and the trace
// layer a safe identity for "these are the same bytes".
//
// BufferView is the non-owning counterpart (pointer + length): the cheap
// currency for scanning and decoding within a call, where no lifetime needs
// extending.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace vsg::util {

using Bytes = std::vector<std::uint8_t>;

/// Non-owning view of a contiguous byte range. Valid only while the owner
/// (a Buffer, a Bytes, a stack array) lives; never stores one beyond a call.
class BufferView {
 public:
  constexpr BufferView() noexcept = default;
  constexpr BufferView(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  BufferView(const Bytes& b) noexcept : data_(b.data()), size_(b.size()) {}

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const noexcept { return data_[i]; }
  const std::uint8_t* begin() const noexcept { return data_; }
  const std::uint8_t* end() const noexcept { return data_ + size_; }

  /// Sub-view; clamps to the valid range (off > size yields an empty view).
  BufferView subview(std::size_t off, std::size_t len) const noexcept;

  bool operator==(const BufferView& o) const noexcept;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Refcounted immutable byte buffer; may window a slice of shared storage.
class Buffer {
 public:
  Buffer() noexcept = default;

  /// Wrap: take ownership of the vector, no byte copy (the data plane's
  /// default — Encoder::finish() and explicit moves land here).
  Buffer(Bytes&& b);
  /// Copy: one allocation + memcpy. Implicit for migration ergonomics
  /// (tests and out-of-tree callers holding util::Bytes); hot paths move.
  Buffer(const Bytes& b);

  static Buffer wrap(Bytes&& b) { return Buffer(std::move(b)); }
  static Buffer copy(BufferView v);

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const noexcept { return data_[i]; }
  const std::uint8_t* begin() const noexcept { return data_; }
  const std::uint8_t* end() const noexcept { return data_ + size_; }

  BufferView view() const noexcept { return BufferView(data_, size_); }
  operator BufferView() const noexcept { return view(); }

  /// Share the same storage, windowed to [off, off+len). The slice keeps the
  /// storage alive past release of this Buffer. Clamped to the valid range.
  Buffer slice(std::size_t off, std::size_t len) const;

  /// Process-unique id of the backing storage (0 for an empty Buffer).
  /// Slices of one storage share its id; ids are never reused.
  std::uint64_t id() const noexcept;
  /// Offset of this window within its storage (0 for an empty Buffer).
  std::size_t storage_offset() const noexcept;
  /// Number of Buffers sharing this storage (refcount; 0 when empty).
  long use_count() const noexcept { return storage_.use_count(); }

  /// Copy out as an owned vector (explicit: this is the only way a Buffer
  /// turns back into mutable bytes).
  Bytes to_bytes() const { return Bytes(data_, data_ + size_); }

  /// Content equality (not identity).
  bool operator==(const Buffer& o) const noexcept { return view() == o.view(); }
  bool operator==(const Bytes& o) const noexcept { return view() == BufferView(o); }

 private:
  struct Storage {
    Bytes bytes;
    std::uint64_t uid;
    explicit Storage(Bytes&& b);
  };

  std::shared_ptr<const Storage> storage_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

inline bool operator==(const Bytes& a, const Buffer& b) noexcept { return b == a; }

}  // namespace vsg::util
