#include "trace/recorder.hpp"

namespace vsg::trace {

void Recorder::record(Event event) {
  events_.push_back(TimedEvent{sim_->now(), std::move(event)});
  for (const auto& tap : taps_) tap(events_.back());
}

}  // namespace vsg::trace
