#include "trace/recorder.hpp"

#include <stdexcept>

namespace vsg::trace {

namespace {
struct DispatchGuard {
  explicit DispatchGuard(bool& flag) : flag_(flag) { flag_ = true; }
  ~DispatchGuard() { flag_ = false; }
  bool& flag_;
};
}  // namespace

void Recorder::record(Event event) {
  if (dispatching_)
    throw std::logic_error(
        "trace::Recorder: record() called from a tap of the same recorder "
        "(taps must observe, not emit)");
  events_.push_back(TimedEvent{sim_->now(), std::move(event)});
  DispatchGuard guard(dispatching_);
  for (const auto& tap : taps_) tap(events_.back());
}

void Recorder::clear() {
  if (dispatching_)
    throw std::logic_error(
        "trace::Recorder: clear() called from a tap of the same recorder "
        "(the dispatched event would be destroyed mid-tap)");
  events_.clear();
}

}  // namespace vsg::trace
