#pragma once

// Trace recorder: the single sink all layers report interface events to.
// Timestamps come from the simulator clock, so the recorded sequence is a
// timed trace in the sense of Section 2 (non-decreasing times, total order).

#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/events.hpp"

namespace vsg::trace {

class Recorder {
 public:
  explicit Recorder(sim::Simulator& simulator) : sim_(&simulator) {}

  /// Append the event and invoke every subscribed tap on it. Taps must not
  /// call record() or clear() on the recorder they are subscribed to: a
  /// re-entrant record() would recurse through the tap list (and make the
  /// trace order depend on tap registration order), and a clear() would
  /// invalidate the TimedEvent reference the taps are holding. Both throw
  /// std::logic_error when attempted mid-dispatch.
  void record(Event event);

  /// The simulator clock events are stamped with (for layers that hold a
  /// recorder but not the simulator itself).
  sim::Time now() const noexcept { return sim_->now(); }

  const std::vector<TimedEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear();

  /// Copy out only the events of type T (in trace order), with times.
  template <typename T>
  std::vector<std::pair<sim::Time, T>> select() const {
    std::vector<std::pair<sim::Time, T>> out;
    for (const auto& te : events_)
      if (const T* e = as<T>(te)) out.emplace_back(te.at, *e);
    return out;
  }

  /// Live tap invoked on every recorded event (used by online checkers).
  using Tap = std::function<void(const TimedEvent&)>;
  void subscribe(Tap tap) { taps_.push_back(std::move(tap)); }

 private:
  sim::Simulator* sim_;
  std::vector<TimedEvent> events_;
  std::vector<Tap> taps_;
  bool dispatching_ = false;  // true while taps run; guards re-entrancy
};

}  // namespace vsg::trace
