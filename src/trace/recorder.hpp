#pragma once

// Trace recorder: the single sink all layers report interface events to.
// Timestamps come from the simulator clock, so the recorded sequence is a
// timed trace in the sense of Section 2 (non-decreasing times, total order).

#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/events.hpp"

namespace vsg::trace {

class Recorder {
 public:
  explicit Recorder(sim::Simulator& simulator) : sim_(&simulator) {}

  void record(Event event);

  /// The simulator clock events are stamped with (for layers that hold a
  /// recorder but not the simulator itself).
  sim::Time now() const noexcept { return sim_->now(); }

  const std::vector<TimedEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

  /// Copy out only the events of type T (in trace order), with times.
  template <typename T>
  std::vector<std::pair<sim::Time, T>> select() const {
    std::vector<std::pair<sim::Time, T>> out;
    for (const auto& te : events_)
      if (const T* e = as<T>(te)) out.emplace_back(te.at, *e);
    return out;
  }

  /// Live tap invoked on every recorded event (used by online checkers).
  using Tap = std::function<void(const TimedEvent&)>;
  void subscribe(Tap tap) { taps_.push_back(std::move(tap)); }

 private:
  sim::Simulator* sim_;
  std::vector<TimedEvent> events_;
  std::vector<Tap> taps_;
};

}  // namespace vsg::trace
