#include "trace/events.hpp"

#include <sstream>

namespace vsg::trace {
namespace {

std::string hex_prefix(util::BufferView b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  const std::size_t n = b.size() < 6 ? b.size() : 6;
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(digits[b[i] >> 4]);
    s.push_back(digits[b[i] & 0xf]);
  }
  if (b.size() > n) s += "..";
  return s;
}

struct Describer {
  std::ostringstream os;

  void operator()(const BcastEvent& e) { os << "bcast(" << e.a << ")_" << e.p; }
  void operator()(const BrcvEvent& e) {
    os << "brcv(" << e.a << ")_{" << e.origin << "," << e.dest << "}";
  }
  void operator()(const GpsndEvent& e) { os << "gpsnd(" << hex_prefix(e.m) << ")_" << e.p; }
  void operator()(const GprcvEvent& e) {
    os << "gprcv(" << hex_prefix(e.m) << ")_{" << e.src << "," << e.dst << "}";
  }
  void operator()(const SafeEvent& e) {
    os << "safe(" << hex_prefix(e.m) << ")_{" << e.src << "," << e.dst << "}";
  }
  void operator()(const NewViewEvent& e) {
    os << "newview(" << core::to_string(e.v) << ")_" << e.p;
  }
  void operator()(const sim::StatusEvent& e) {
    os << to_string(e.status) << "_";
    if (e.is_link)
      os << "{" << e.p << "," << e.q << "}";
    else
      os << e.p;
  }
};

}  // namespace

std::string describe(const TimedEvent& te) {
  Describer d;
  d.os << "@" << te.at << " ";
  std::visit(d, te.event);
  return d.os.str();
}

}  // namespace vsg::trace
