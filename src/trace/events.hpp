#pragma once

// Timed trace events at the two service interfaces of Figure 2, plus the
// failure-status input actions of Figure 4.
//
// Everything the property checkers (spec/, props/) consume is one of these
// records; checkers never look inside implementations. Payloads at the VS
// interface are the raw bytes handed to gpsnd, so event identity and
// correlation work for any client protocol.

#include <string>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "sim/failure_table.hpp"
#include "sim/time.hpp"
#include "util/buffer.hpp"
#include "util/serde.hpp"

namespace vsg::trace {

/// bcast(a)_p — client at p submits value a to the TO service.
struct BcastEvent {
  ProcId p = kNoProc;
  core::Value a;
};

/// brcv(a)_{p,q} — delivery at q of value a originated at p.
struct BrcvEvent {
  ProcId origin = kNoProc;
  ProcId dest = kNoProc;
  core::Value a;
};

/// gpsnd(m)_p — client at p hands message m to the VS service. The recorder
/// stores a shared reference to the submitted buffer (its storage id), not a
/// copy of the bytes.
struct GpsndEvent {
  ProcId p = kNoProc;
  util::Buffer m;
};

/// gprcv(m)_{p,q} — VS delivers to q the message m sent by p.
struct GprcvEvent {
  ProcId src = kNoProc;
  ProcId dst = kNoProc;
  util::Buffer m;
};

/// safe(m)_{p,q} — VS notifies q that m (sent by p) reached every member of
/// q's current view.
struct SafeEvent {
  ProcId src = kNoProc;
  ProcId dst = kNoProc;
  util::Buffer m;
};

/// newview(v)_p — VS informs p of its new current view.
struct NewViewEvent {
  ProcId p = kNoProc;
  core::View v;
};

/// One event, any interface. sim::StatusEvent covers good/bad/ugly actions.
using Event = std::variant<BcastEvent, BrcvEvent, GpsndEvent, GprcvEvent, SafeEvent,
                           NewViewEvent, sim::StatusEvent>;

struct TimedEvent {
  sim::Time at = 0;
  Event event;
};

/// Typed access: pointer to the alternative if the event holds it.
template <typename T>
const T* as(const TimedEvent& te) {
  return std::get_if<T>(&te.event);
}

std::string describe(const TimedEvent& te);

}  // namespace vsg::trace
