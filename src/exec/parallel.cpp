#include "exec/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace vsg::exec {

int effective_jobs(int n_jobs, std::size_t count) noexcept {
  if (count == 0) return 1;
  if (n_jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n_jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
  const std::size_t cap = count < static_cast<std::size_t>(n_jobs)
                              ? count
                              : static_cast<std::size_t>(n_jobs);
  return static_cast<int>(cap);
}

void run_parallel(int n_jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  const int jobs = effective_jobs(n_jobs, count);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Work stealing in its simplest form: one shared cursor, each worker
  // claims the next unclaimed index. No per-task allocation, natural load
  // balancing when task costs vary (chaos seeds differ wildly in schedule
  // length).
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs) - 1);
  for (int t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vsg::exec
