#pragma once

// Thread-pool execution of independent Worlds.
//
// The simulator stays single-threaded per World (determinism), but
// independent Worlds — chaos campaign seeds, bench sweep cells — share no
// state and are embarrassingly parallel. run_parallel fans an index range
// out over a transient pool of worker threads; callers keep determinism by
// writing task i's result into slot i of a pre-sized vector and doing all
// cross-task aggregation afterwards, in index order, on the calling thread.
//
// Thread-safety contract (docs/CHAOS.md, "Parallel execution"): everything
// a World touches is per-World except three process-wide pieces of state,
// each made safe for concurrent Worlds —
//   - util::Buffer storage uids: relaxed atomic counter,
//   - util::Log level: relaxed atomic (sink swaps are mutex-guarded),
//   - util::unchecked_decode(): thread_local, so the fault injection
//     scopes to the thread running the World (tasks must re-assert it;
//     see inherit note on run_parallel).

#include <cstddef>
#include <functional>

namespace vsg::exec {

/// Worker-thread count for `n_jobs` requested jobs over `count` tasks:
/// clamps to [1, count] and resolves n_jobs <= 0 to the hardware
/// concurrency (so `--jobs 0` means "use the machine").
int effective_jobs(int n_jobs, std::size_t count) noexcept;

/// Run fn(0) .. fn(count - 1), each exactly once, on up to n_jobs threads.
///
/// - n_jobs <= 1 (or count <= 1) degenerates to a plain in-order loop on
///   the calling thread — the sequential baseline is the same code path.
/// - Task order across threads is nondeterministic; tasks must be
///   independent (no shared mutable state beyond their own result slot).
/// - thread_local state (e.g. util::unchecked_decode()) is NOT inherited
///   by workers; a task needing it must set it itself.
/// - If any task throws, the first exception (in completion order) is
///   rethrown on the calling thread after all workers drain; remaining
///   tasks still run.
void run_parallel(int n_jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace vsg::exec
