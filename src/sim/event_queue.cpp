#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace vsg::sim {

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  in_heap_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  // Only ids still in the heap are marked: cancelling an already-run,
  // unknown, or doubly-cancelled id must not grow cancelled_ past the ids
  // it can ever drain, or pending() underflows.
  if (id != kNoEvent && in_heap_.count(id) != 0) cancelled_.insert(id);
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    in_heap_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_head();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  return heap_.empty() ? kForever : heap_.top().at;
}

Time EventQueue::pop_and_run() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // priority_queue::top() is const; the entry is moved out via const_cast,
  // which is safe because we pop immediately and never reuse the slot.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  in_heap_.erase(entry.id);
  entry.fn();
  return entry.at;
}

}  // namespace vsg::sim
