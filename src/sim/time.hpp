#pragma once

// Simulated time. The timed-automaton model of the paper (Lynch-Vaandrager)
// uses real-valued time; we use integer microseconds, which keeps event
// ordering exact and reproducible.

#include <cstdint>
#include <limits>

namespace vsg::sim {

using Time = std::int64_t;  // microseconds since simulation start

constexpr Time kTimeZero = 0;
constexpr Time kForever = std::numeric_limits<Time>::max();

constexpr Time usec(std::int64_t n) { return n; }
constexpr Time msec(std::int64_t n) { return n * 1000; }
constexpr Time sec(std::int64_t n) { return n * 1000000; }

}  // namespace vsg::sim
