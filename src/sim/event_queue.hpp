#pragma once

// Priority queue of timed events with stable FIFO ordering among events
// scheduled for the same instant, and O(log n) lazy cancellation.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace vsg::sim {

using EventId = std::uint64_t;
constexpr EventId kNoEvent = 0;

class EventQueue {
 public:
  /// Schedule `fn` to run at absolute time `at`. Events at equal times run
  /// in scheduling order. Returns a handle usable with cancel().
  EventId schedule(Time at, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-run or unknown id is a
  /// true no-op (timers race with the work they guard; that is expected):
  /// only ids actually in the heap are marked, so pending() cannot
  /// underflow from stray cancels.
  void cancel(EventId id);

  bool empty() const;

  /// Time of the earliest pending (non-cancelled) event; kForever if none.
  Time next_time() const;

  /// Pop the earliest event and run it. Requires !empty().
  /// Returns the time at which the event ran.
  Time pop_and_run();

  /// Number of pending (non-cancelled) events. cancelled_ is always a
  /// subset of the ids in heap_ (cancel() checks membership), so the
  /// subtraction cannot underflow.
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<EventId> in_heap_;    // ids currently in heap_
  mutable std::unordered_set<EventId> cancelled_;  // subset of in_heap_
  EventId next_id_ = 1;
};

}  // namespace vsg::sim
