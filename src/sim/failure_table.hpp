#pragma once

// Failure-status model: the paper's good / bad / ugly input actions
// (Figure 4), for processors and for ordered pairs of processors.
//
// The table is the single source of truth consulted by the network (link
// behaviour) and by processor executors (step scheduling), and it records
// every status change as a timestamped event — the failure-status portion of
// the timed trace that TO-property / VS-property quantify over.

#include <functional>
#include <set>
#include <vector>

#include "sim/time.hpp"
#include "util/types.hpp"

namespace vsg::sim {

enum class Status : std::uint8_t { kGood = 0, kBad = 1, kUgly = 2 };

const char* to_string(Status s) noexcept;

/// One failure-status input action, as it appears in a timed trace.
struct StatusEvent {
  Time at = 0;
  bool is_link = false;  // false: processor event good_p; true: link good_{p,q}
  ProcId p = kNoProc;
  ProcId q = kNoProc;  // destination, only for link events
  Status status = Status::kGood;
};

class FailureTable {
 public:
  /// All processors and links start `good` (the paper's default).
  explicit FailureTable(int n);

  int size() const noexcept { return n_; }

  Status proc(ProcId p) const;
  /// Status of the ordered pair (p, q). The pair (p, p) is always good.
  Status link(ProcId p, ProcId q) const;

  /// Mutators validate their arguments (schedule files and chaos generators
  /// feed them) and throw std::invalid_argument on out-of-range processors,
  /// self-links, or overlapping partition components.
  void set_proc(ProcId p, Status s, Time now);
  void set_link(ProcId p, ProcId q, Status s, Time now);
  /// Set both (p,q) and (q,p).
  void set_link_sym(ProcId p, ProcId q, Status s, Time now);

  /// Scenario helper: make links within each component good and links
  /// between different components bad. Processors keep their own status.
  /// Components must be disjoint; processors absent from every component
  /// are isolated (all their links become bad). Throws std::invalid_argument
  /// on overlapping or out-of-range components.
  void partition(const std::vector<std::set<ProcId>>& components, Time now);

  /// Scenario helper: fully connect everything with good links.
  void heal(Time now);

  /// Every status change ever applied, in time order.
  const std::vector<StatusEvent>& history() const noexcept { return history_; }

  /// Listener invoked synchronously on every status change.
  using Listener = std::function<void(const StatusEvent&)>;
  void subscribe(Listener fn) { listeners_.push_back(std::move(fn)); }

 private:
  void record(StatusEvent ev);

  int n_;
  std::vector<Status> proc_;
  std::vector<Status> link_;  // n*n row-major
  std::vector<StatusEvent> history_;
  std::vector<Listener> listeners_;
};

}  // namespace vsg::sim
