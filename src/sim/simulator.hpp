#pragma once

// The discrete-event simulator driving every execution in this repository.
//
// All components (network links, membership timers, token circulation,
// workload generators, failure injections) schedule callbacks here. Time
// advances only between events, so an execution is a totally ordered
// alternating sequence of states and actions — exactly the timed-execution
// notion of the paper's model (Section 2).

#include <cstddef>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace vsg::sim {

class Simulator {
 public:
  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId at(Time t, std::function<void()> fn);

  /// Schedule `fn` after `delay` from now (delay >= 0).
  EventId after(Time delay, std::function<void()> fn);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Run a single event if one is pending. Returns false if idle.
  bool step();

  /// Run all events with time <= t, then advance the clock to exactly t.
  void run_until(Time t);

  /// Run until the event queue drains (or `max_events` is hit, a guard
  /// against livelock in protocol bugs). Returns events processed.
  std::size_t run(std::size_t max_events = 50'000'000);

  std::size_t events_processed() const noexcept { return processed_; }
  bool idle() const { return queue_.empty(); }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::size_t processed_ = 0;
};

}  // namespace vsg::sim
