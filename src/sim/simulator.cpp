#include "sim/simulator.hpp"

#include <cassert>

namespace vsg::sim {

EventId Simulator::at(Time t, std::function<void()> fn) {
  assert(t >= now_);
  return queue_.schedule(t < now_ ? now_ : t, std::move(fn));
}

EventId Simulator::after(Time delay, std::function<void()> fn) {
  assert(delay >= 0);
  return at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Advance the clock before running the event, so the callback observes
  // now() == its scheduled time.
  now_ = queue_.next_time();
  queue_.pop_and_run();
  ++processed_;
  return true;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  if (t > now_) now_ = t;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace vsg::sim
