#include "sim/failure_table.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace vsg::sim {

namespace {
void require_proc(int n, ProcId p, const char* what) {
  if (p < 0 || p >= n)
    throw std::invalid_argument(std::string(what) + ": processor " + std::to_string(p) +
                                " out of range [0, " + std::to_string(n) + ")");
}
}  // namespace

const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::kGood:
      return "good";
    case Status::kBad:
      return "bad";
    case Status::kUgly:
      return "ugly";
  }
  return "?";
}

FailureTable::FailureTable(int n)
    : n_(n),
      proc_(static_cast<std::size_t>(n), Status::kGood),
      link_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), Status::kGood) {
  assert(n > 0);
}

Status FailureTable::proc(ProcId p) const {
  assert(p >= 0 && p < n_);
  return proc_[static_cast<std::size_t>(p)];
}

Status FailureTable::link(ProcId p, ProcId q) const {
  assert(p >= 0 && p < n_ && q >= 0 && q < n_);
  if (p == q) return Status::kGood;
  return link_[static_cast<std::size_t>(p) * n_ + q];
}

void FailureTable::record(StatusEvent ev) {
  history_.push_back(ev);
  for (const auto& fn : listeners_) fn(ev);
}

void FailureTable::set_proc(ProcId p, Status s, Time now) {
  // Real checks, not asserts: these take schedule-file / chaos-generator
  // input, and asserts are compiled out of release builds (OOB write UB).
  require_proc(n_, p, "FailureTable::set_proc");
  proc_[static_cast<std::size_t>(p)] = s;
  record(StatusEvent{now, false, p, kNoProc, s});
}

void FailureTable::set_link(ProcId p, ProcId q, Status s, Time now) {
  require_proc(n_, p, "FailureTable::set_link");
  require_proc(n_, q, "FailureTable::set_link");
  if (p == q) throw std::invalid_argument("FailureTable::set_link: self-link (p == q)");
  link_[static_cast<std::size_t>(p) * n_ + q] = s;
  record(StatusEvent{now, true, p, q, s});
}

void FailureTable::set_link_sym(ProcId p, ProcId q, Status s, Time now) {
  set_link(p, q, s, now);
  set_link(q, p, s, now);
}

void FailureTable::partition(const std::vector<std::set<ProcId>>& components, Time now) {
  std::vector<int> comp(static_cast<std::size_t>(n_), -1);
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (ProcId p : components[c]) {
      require_proc(n_, p, "FailureTable::partition");
      if (comp[static_cast<std::size_t>(p)] != -1)
        throw std::invalid_argument("FailureTable::partition: processor " + std::to_string(p) +
                                    " appears in more than one component");
      comp[static_cast<std::size_t>(p)] = static_cast<int>(c);
    }
  }
  for (ProcId p = 0; p < n_; ++p) {
    for (ProcId q = 0; q < n_; ++q) {
      if (p == q) continue;
      const bool same = comp[static_cast<std::size_t>(p)] != -1 &&
                        comp[static_cast<std::size_t>(p)] == comp[static_cast<std::size_t>(q)];
      const Status want = same ? Status::kGood : Status::kBad;
      if (link(p, q) != want) set_link(p, q, want, now);
    }
  }
}

void FailureTable::heal(Time now) {
  for (ProcId p = 0; p < n_; ++p)
    for (ProcId q = 0; q < n_; ++q)
      if (p != q && link(p, q) != Status::kGood) set_link(p, q, Status::kGood, now);
}

}  // namespace vsg::sim
