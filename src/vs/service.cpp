#include "vs/service.hpp"
// Interface-only translation unit; keeps the library non-empty and gives the
// vtable a home.
namespace vsg::vs {}
