#pragma once

// SpecVS: the VS specification machine run as an actual service.
//
// VS-machine (Figure 6) is nondeterministic; SpecVS resolves the
// nondeterminism with a *partition oracle*: it watches the FailureTable,
// computes connected components of the bidirectionally-good link graph
// (excluding bad processors), and creates exactly the views that match the
// components — so executions of SpecVS stabilize the way VS-property
// demands, with a configurable view-formation latency standing in for a
// membership protocol's convergence time.
//
// SpecVS is the reference back end: it is useful for validating VStoTO in
// isolation (any bug observed over SpecVS is a VStoTO bug, not a membership
// protocol bug) and for differential testing against TokenRingVS.

#include <memory>
#include <optional>
#include <vector>

#include "sim/failure_table.hpp"
#include "sim/simulator.hpp"
#include "spec/vs_machine.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"
#include "vs/service.hpp"

namespace vsg::vs {

struct SpecVSConfig {
  /// Latency from a failure-status change to the oracle installing matching
  /// views (stands in for the membership protocol's stabilization time b).
  sim::Time view_form_delay = sim::msec(10);
  /// Per-hop delivery latency range for gprcv/safe pumping.
  sim::Time deliver_min = sim::usec(100);
  sim::Time deliver_max = sim::msec(2);
  /// Extra delay applied to pumping at an `ugly` processor.
  sim::Time ugly_extra_max = sim::msec(200);
};

class SpecVS final : public Service {
 public:
  /// n processors, 0..n0-1 in the initial view.
  SpecVS(sim::Simulator& simulator, sim::FailureTable& failures, trace::Recorder& recorder,
         int n, int n0, SpecVSConfig config, util::Rng rng);

  int size() const override { return machine_.size(); }
  void attach(ProcId p, Client& client) override;
  void gpsnd(ProcId p, Payload m) override;

  /// The underlying specification machine (read-only; used by the
  /// verification layer to inspect global state).
  const spec::VSMachine& machine() const noexcept { return machine_; }

 private:
  void on_failure_change(const sim::StatusEvent& ev);
  void evaluate_views();
  void schedule_step(ProcId p);
  void step(ProcId p);
  bool anything_enabled(ProcId p) const;

  sim::Simulator* sim_;
  sim::FailureTable* failures_;
  trace::Recorder* recorder_;
  SpecVSConfig config_;
  util::Rng rng_;
  spec::VSMachine machine_;
  std::vector<Client*> clients_;
  std::vector<std::optional<core::View>> target_;  // latest oracle view per proc
  std::vector<bool> step_scheduled_;
  std::uint64_t next_epoch_ = 1;
  bool eval_scheduled_ = false;
};

}  // namespace vsg::vs
