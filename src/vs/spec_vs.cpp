#include "vs/spec_vs.hpp"

#include <cassert>

#include "util/logging.hpp"

namespace vsg::vs {

SpecVS::SpecVS(sim::Simulator& simulator, sim::FailureTable& failures,
               trace::Recorder& recorder, int n, int n0, SpecVSConfig config, util::Rng rng)
    : sim_(&simulator),
      failures_(&failures),
      recorder_(&recorder),
      config_(config),
      rng_(rng),
      machine_(n, n0),
      clients_(static_cast<std::size_t>(n), nullptr),
      target_(static_cast<std::size_t>(n)),
      step_scheduled_(static_cast<std::size_t>(n), false) {
  const core::View v0 = core::initial_view(n0);
  for (ProcId p = 0; p < n0; ++p) target_[static_cast<std::size_t>(p)] = v0;
  failures_->subscribe([this](const sim::StatusEvent& ev) { on_failure_change(ev); });
  // Initial oracle pass: if the network at time zero is connected beyond P0,
  // views covering the extra processors form after one formation delay.
  eval_scheduled_ = true;
  sim_->after(config_.view_form_delay, [this] {
    eval_scheduled_ = false;
    evaluate_views();
  });
}

void SpecVS::attach(ProcId p, Client& client) {
  assert(p >= 0 && p < size());
  clients_[static_cast<std::size_t>(p)] = &client;
}

void SpecVS::gpsnd(ProcId p, Payload m) {
  assert(p >= 0 && p < size());
  recorder_->record(trace::GpsndEvent{p, m});
  const auto cur = machine_.current_viewid(p);
  machine_.gpsnd(p, std::move(m));
  if (cur.has_value()) {
    // Resolve the vs-order nondeterminism eagerly: FIFO into the view queue.
    while (machine_.vs_order_enabled(p, *cur)) machine_.vs_order(p, *cur);
    const auto members = machine_.created_membership(*cur);
    if (members.has_value())
      for (ProcId q : *members) schedule_step(q);
  }
}

void SpecVS::on_failure_change(const sim::StatusEvent& ev) {
  if (!eval_scheduled_) {
    eval_scheduled_ = true;
    sim_->after(config_.view_form_delay, [this] {
      eval_scheduled_ = false;
      evaluate_views();
    });
  }
  // A processor coming back from `bad` resumes pumping.
  if (!ev.is_link && ev.status != sim::Status::kBad) schedule_step(ev.p);
}

void SpecVS::evaluate_views() {
  const int n = size();
  // Connected components of the undirected graph with an edge between p and
  // q iff both directed links are good; bad processors are excluded.
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int ncomp = 0;
  for (ProcId p = 0; p < n; ++p) {
    if (comp[static_cast<std::size_t>(p)] != -1) continue;
    if (failures_->proc(p) == sim::Status::kBad) continue;
    const int c = ncomp++;
    std::vector<ProcId> stack{p};
    comp[static_cast<std::size_t>(p)] = c;
    while (!stack.empty()) {
      const ProcId u = stack.back();
      stack.pop_back();
      for (ProcId v = 0; v < n; ++v) {
        if (comp[static_cast<std::size_t>(v)] != -1) continue;
        if (failures_->proc(v) == sim::Status::kBad) continue;
        if (failures_->link(u, v) == sim::Status::kGood &&
            failures_->link(v, u) == sim::Status::kGood) {
          comp[static_cast<std::size_t>(v)] = c;
          stack.push_back(v);
        }
      }
    }
  }

  for (int c = 0; c < ncomp; ++c) {
    std::set<ProcId> members;
    for (ProcId p = 0; p < n; ++p)
      if (comp[static_cast<std::size_t>(p)] == c) members.insert(p);

    // Skip if every member is already targeted at one identical view with
    // exactly this membership.
    bool already = true;
    const auto& first = target_[static_cast<std::size_t>(*members.begin())];
    for (ProcId p : members) {
      const auto& t = target_[static_cast<std::size_t>(p)];
      if (!t.has_value() || t->members != members || !first.has_value() || !(*t == *first)) {
        already = false;
        break;
      }
    }
    if (already) continue;

    core::View v;
    v.id = core::ViewId{next_epoch_++, *members.begin()};
    v.members = members;
    assert(machine_.createview_enabled(v));
    machine_.createview(v);
    VSG_DEBUG << "oracle created view " << core::to_string(v);
    for (ProcId p : members) {
      target_[static_cast<std::size_t>(p)] = v;
      schedule_step(p);
    }
  }
}

void SpecVS::schedule_step(ProcId p) {
  if (step_scheduled_[static_cast<std::size_t>(p)]) return;
  step_scheduled_[static_cast<std::size_t>(p)] = true;
  sim::Time delay = rng_.range(config_.deliver_min, config_.deliver_max);
  if (failures_->proc(p) == sim::Status::kUgly)
    delay += rng_.range(0, config_.ugly_extra_max);
  sim_->after(delay, [this, p] {
    step_scheduled_[static_cast<std::size_t>(p)] = false;
    step(p);
  });
}

bool SpecVS::anything_enabled(ProcId p) const {
  const auto& t = target_[static_cast<std::size_t>(p)];
  if (t.has_value()) {
    const auto cur = machine_.current_viewid(p);
    if (!cur.has_value() || t->id > *cur) return true;
  }
  return machine_.gprcv_next(p).has_value() || machine_.safe_next(p).has_value();
}

void SpecVS::step(ProcId p) {
  // The paper's VStoTO' model: a bad processor performs no locally
  // controlled actions. Pumping resumes when its status changes.
  if (failures_->proc(p) == sim::Status::kBad) return;

  Client* client = clients_[static_cast<std::size_t>(p)];

  // 1. Install the oracle's latest view if it is newer than p's current one.
  const auto& t = target_[static_cast<std::size_t>(p)];
  if (t.has_value() && machine_.newview_enabled(*t, p)) {
    machine_.newview(*t, p);
    recorder_->record(trace::NewViewEvent{p, *t});
    if (client != nullptr) client->on_newview(*t);
  }

  // 2. Deliver everything currently deliverable at p, then safes.
  while (auto entry = machine_.gprcv_next(p)) {
    machine_.gprcv(p);
    recorder_->record(trace::GprcvEvent{entry->p, p, entry->m});
    if (client != nullptr) client->on_gprcv(entry->p, entry->m);
  }
  bool advanced_safe = false;
  while (auto entry = machine_.safe_next(p)) {
    machine_.safe(p);
    recorder_->record(trace::SafeEvent{entry->p, p, entry->m});
    if (client != nullptr) client->on_safe(entry->p, entry->m);
    advanced_safe = true;
  }
  (void)advanced_safe;

  // 3. p's deliveries may have enabled safe at fellow members; reschedule
  // anyone with work (each proc checks enabledness before being scheduled,
  // so this converges).
  const auto cur = machine_.current_viewid(p);
  if (cur.has_value()) {
    const auto members = machine_.created_membership(*cur);
    if (members.has_value())
      for (ProcId q : *members)
        if (anything_enabled(q)) schedule_step(q);
  }
  if (anything_enabled(p)) schedule_step(p);
}

}  // namespace vsg::vs
