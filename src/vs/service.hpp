#pragma once

// The VS service interface, as seen by a client process (Figure 2).
//
// A client at processor p calls gpsnd and receives gprcv / safe / newview
// callbacks. Two interchangeable back ends implement this interface:
//   - vs::SpecVS        — VS-machine itself, driven by a partition oracle
//                         (the reference implementation, zero protocol noise);
//   - membership::TokenRingVS — the Section 8 protocol (Cristian-Schmuck
//                         membership + token ring) over the simulated network.
// Every back end records its interface events in a trace::Recorder, so the
// same checkers validate both.

#include "core/types.hpp"
#include "util/buffer.hpp"
#include "util/serde.hpp"

namespace vsg::vs {

/// Payloads are shared immutable buffers: a gpsnd'd message is delivered to
/// every group member by reference, never re-copied (docs/DATAPLANE.md).
using Payload = util::Buffer;

/// Client-side callbacks. All callbacks for processor p are invoked in
/// trace order for p; implementations must be reentrant-safe in the sense
/// that callbacks may call Service::gpsnd.
class Client {
 public:
  virtual ~Client() = default;

  /// gprcv(m)_{src,p}: delivery of m sent by src in p's current view.
  virtual void on_gprcv(ProcId src, const Payload& m) = 0;

  /// safe(m)_{src,p}: m has been delivered to every member of the view.
  virtual void on_safe(ProcId src, const Payload& m) = 0;

  /// newview(v)_p: p's current view is now v.
  virtual void on_newview(const core::View& v) = 0;
};

class Service {
 public:
  virtual ~Service() = default;

  virtual int size() const = 0;

  /// Register the client for processor p. Must be called for every p before
  /// the simulation starts.
  virtual void attach(ProcId p, Client& client) = 0;

  /// gpsnd(m)_p: submit message m at processor p (input action; never
  /// fails — a message sent while p's view is undefined is silently lost,
  /// per the specification).
  virtual void gpsnd(ProcId p, Payload m) = 0;
};

}  // namespace vsg::vs
