#include "props/vstoto_property.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/types.hpp"

namespace vsg::props {

VStoTOPropertyReport evaluate_vstoto_property(const std::vector<trace::TimedEvent>& trace,
                                              const std::set<ProcId>& q, int n, int n0,
                                              sim::Time d, sim::Time ignore_after) {
  VStoTOPropertyReport report;

  // Premise: VS-level stabilization — final views of Q members are one
  // view with membership Q; record the last newview time at Q.
  std::vector<std::optional<core::View>> current(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n0; ++p)
    current[static_cast<std::size_t>(p)] = core::initial_view(n0);
  sim::Time last_newview = 0;
  for (const auto& te : trace) {
    const auto* e = trace::as<trace::NewViewEvent>(te);
    if (e == nullptr || e->p < 0 || e->p >= n) continue;
    current[static_cast<std::size_t>(e->p)] = e->v;
    if (q.count(e->p) != 0) last_newview = std::max(last_newview, te.at);
  }
  std::optional<core::View> final_view;
  for (ProcId p : q) {
    const auto& cur = current[static_cast<std::size_t>(p)];
    if (!cur.has_value()) {
      report.why_not = "member " + std::to_string(p) + " has no view";
      return report;
    }
    if (!final_view.has_value()) {
      final_view = cur;
    } else if (!(*cur == *final_view)) {
      report.why_not = "members of Q disagree on the final view";
      return report;
    }
  }
  if (!final_view.has_value() || final_view->members != q) {
    report.why_not = "final view membership is not Q";
    return report;
  }
  report.premise_holds = true;
  report.view_stab_time = last_newview;

  // Conclusion: TO-level delivery with the split at view_stab_time + l'''.
  std::map<ProcId, std::vector<sim::Time>> bcasts;
  std::map<std::pair<ProcId, ProcId>, std::size_t> rcount;
  std::map<std::pair<ProcId, std::size_t>, std::map<ProcId, sim::Time>> delivs;
  for (const auto& te : trace) {
    if (const auto* e = trace::as<trace::BcastEvent>(te)) {
      bcasts[e->p].push_back(te.at);
    } else if (const auto* e = trace::as<trace::BrcvEvent>(te)) {
      auto& k = rcount[{e->origin, e->dest}];
      delivs[{e->origin, k}].emplace(e->dest, te.at);
      ++k;
    }
  }

  sim::Time l3 = 0;
  auto constrain = [&](sim::Time reference, sim::Time all) {
    if (all > reference + d)
      l3 = std::max(l3, all - d - report.view_stab_time);
  };

  for (ProcId p : q) {
    const auto bit = bcasts.find(p);
    if (bit == bcasts.end()) continue;
    for (std::size_t k = 0; k < bit->second.size(); ++k) {
      const sim::Time t = bit->second[k];
      if (t > ignore_after) continue;
      const auto dit = delivs.find({p, k});
      sim::Time all = 0;
      bool complete = dit != delivs.end();
      if (complete)
        for (ProcId r : q) {
          const auto rt = dit->second.find(r);
          if (rt == dit->second.end()) {
            complete = false;
            break;
          }
          all = std::max(all, rt->second);
        }
      if (!complete) {
        std::ostringstream os;
        os << "value #" << k << " from " << p << " never delivered at all of Q";
        report.violations.push_back(os.str());
        continue;
      }
      constrain(t, all);
    }
  }
  for (const auto& [key, by_dest] : delivs) {
    sim::Time t_min = sim::kForever;
    for (ProcId r : q) {
      const auto rt = by_dest.find(r);
      if (rt != by_dest.end()) t_min = std::min(t_min, rt->second);
    }
    if (t_min == sim::kForever || t_min > ignore_after) continue;
    sim::Time all = 0;
    bool complete = true;
    for (ProcId r : q) {
      const auto rt = by_dest.find(r);
      if (rt == by_dest.end()) {
        complete = false;
        break;
      }
      all = std::max(all, rt->second);
    }
    if (!complete) {
      report.violations.push_back("value delivered to part of Q only");
      continue;
    }
    constrain(t_min, all);
  }

  if (report.violations.empty()) report.required_l3 = l3;
  return report;
}

}  // namespace vsg::props
