#include "props/to_property.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace vsg::props {

TOPropertyReport evaluate_to_property(const std::vector<trace::TimedEvent>& trace,
                                      const std::set<ProcId>& q, int n, sim::Time d,
                                      sim::Time ignore_after) {
  TOPropertyReport report;
  report.stability = analyze_stability(trace, q, n);
  if (!report.stability.premise_holds) return report;
  const sim::Time l = report.stability.l;

  // Values are identified positionally: (origin, k) is the k-th value bcast
  // by origin, matched to the k-th brcv with that origin at each receiver
  // (per-sender FIFO is enforced separately by TOTraceChecker).
  std::map<ProcId, std::vector<sim::Time>> bcasts;
  std::map<std::pair<ProcId, ProcId>, std::size_t> rcount;  // (origin, dest) -> count
  std::map<std::pair<ProcId, std::size_t>, std::map<ProcId, sim::Time>> delivs;

  for (const auto& te : trace) {
    if (const auto* e = trace::as<trace::BcastEvent>(te)) {
      bcasts[e->p].push_back(te.at);
    } else if (const auto* e = trace::as<trace::BrcvEvent>(te)) {
      auto& k = rcount[{e->origin, e->dest}];
      delivs[{e->origin, k}].emplace(e->dest, te.at);
      ++k;
    }
  }

  sim::Time lprime = 0;
  struct Obs {
    sim::Time sent;
    sim::Time all;
  };
  std::vector<Obs> sent_obs;

  // Conclusion (b): values bcast from members of Q.
  for (ProcId p : q) {
    auto bit = bcasts.find(p);
    if (bit == bcasts.end()) continue;
    for (std::size_t k = 0; k < bit->second.size(); ++k) {
      const sim::Time t = bit->second[k];
      if (t > ignore_after) continue;
      const auto dit = delivs.find({p, k});
      sim::Time all = 0;
      bool complete = dit != delivs.end();
      if (complete) {
        for (ProcId r : q) {
          auto rt = dit->second.find(r);
          if (rt == dit->second.end()) {
            complete = false;
            break;
          }
          all = std::max(all, rt->second);
        }
      }
      if (!complete) {
        std::ostringstream os;
        os << "value #" << k << " bcast by " << p << " at " << t
           << " was never delivered at every member of Q";
        report.violations.push_back(os.str());
        continue;
      }
      sent_obs.push_back({t, all});
      if (all > t + d) lprime = std::max(lprime, all - d - l);
    }
  }

  // Conclusion (c): values delivered to any member of Q.
  for (const auto& [key, by_dest] : delivs) {
    sim::Time t_min = sim::kForever;
    for (ProcId r : q) {
      auto rt = by_dest.find(r);
      if (rt != by_dest.end()) t_min = std::min(t_min, rt->second);
    }
    if (t_min == sim::kForever || t_min > ignore_after) continue;
    sim::Time all = 0;
    bool complete = true;
    for (ProcId r : q) {
      auto rt = by_dest.find(r);
      if (rt == by_dest.end()) {
        complete = false;
        break;
      }
      all = std::max(all, rt->second);
    }
    if (!complete) {
      std::ostringstream os;
      os << "value #" << key.second << " from " << key.first
         << " was delivered to some but not all members of Q";
      report.violations.push_back(os.str());
      continue;
    }
    if (all > t_min + d) lprime = std::max(lprime, all - d - l);
  }

  if (report.violations.empty()) {
    report.required_lprime = lprime;
    for (const auto& obs : sent_obs)
      if (obs.sent >= l + lprime)
        report.max_delivery_lag = std::max(report.max_delivery_lag, obs.all - obs.sent);
    report.values_checked = sent_obs.size();
  }
  return report;
}

}  // namespace vsg::props
