#include "props/stability.hpp"

#include <sstream>

namespace vsg::props {

StabilityInfo analyze_stability(const std::vector<trace::TimedEvent>& trace,
                                const std::set<ProcId>& q, int n) {
  StabilityInfo info;

  // Replay statuses (defaults: everything good).
  std::vector<sim::Status> proc(static_cast<std::size_t>(n), sim::Status::kGood);
  std::vector<sim::Status> link(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                                sim::Status::kGood);
  auto touches_q = [&q](const sim::StatusEvent& e) {
    if (!e.is_link) return q.count(e.p) != 0;
    return q.count(e.p) != 0 || q.count(e.q) != 0;
  };

  for (const auto& te : trace) {
    const auto* e = trace::as<sim::StatusEvent>(te);
    if (e == nullptr) continue;
    if (e->is_link)
      link[static_cast<std::size_t>(e->p) * n + e->q] = e->status;
    else
      proc[static_cast<std::size_t>(e->p)] = e->status;
    if (touches_q(*e) && te.at > info.l) info.l = te.at;
  }

  std::ostringstream why;
  bool holds = true;
  for (ProcId p : q) {
    if (proc[static_cast<std::size_t>(p)] != sim::Status::kGood) {
      holds = false;
      why << "processor " << p << " not good; ";
    }
  }
  for (ProcId p : q) {
    for (ProcId r = 0; r < n; ++r) {
      if (r == p) continue;
      const sim::Status out = link[static_cast<std::size_t>(p) * n + r];
      const sim::Status in = link[static_cast<std::size_t>(r) * n + p];
      if (q.count(r) != 0) {
        if (out != sim::Status::kGood) {
          holds = false;
          why << "intra-Q link (" << p << "," << r << ") not good; ";
        }
      } else {
        if (out != sim::Status::kBad || in != sim::Status::kBad) {
          holds = false;
          why << "boundary pair (" << p << "," << r << ") not bad; ";
        }
      }
    }
  }
  info.premise_holds = holds;
  if (!holds) info.why_not = why.str();
  return info;
}

}  // namespace vsg::props
