#pragma once

// Premise analysis shared by TO-property and VS-property (Figures 5 and 7).
//
// Both properties are conditional: they only constrain executions whose
// failure-status inputs stabilize to a "consistently partitioned" situation
// for a set Q — every location in Q good, every pair within Q good, every
// pair crossing the Q boundary bad, and no further status events for
// anything touching Q. This module replays the failure-status events of a
// timed trace and determines whether that premise holds and, if so, the
// stabilization point l (the time of the last status event touching Q).

#include <set>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/events.hpp"

namespace vsg::props {

struct StabilityInfo {
  /// True iff the final statuses realize the consistently-partitioned
  /// premise for Q and hence the property's conclusions apply.
  bool premise_holds = false;
  /// Time of the last failure-status event touching Q (0 if none): the
  /// split point l of the property definitions.
  sim::Time l = 0;
  /// Diagnostic when premise_holds is false.
  std::string why_not;
};

/// Analyze the failure-status events of `trace` with respect to group Q
/// (subset of 0..n-1). Pair statuses are required bad in *both* directions
/// across the Q boundary.
StabilityInfo analyze_stability(const std::vector<trace::TimedEvent>& trace,
                                const std::set<ProcId>& q, int n);

}  // namespace vsg::props
