#include "props/vs_property.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace vsg::props {

VSPropertyReport evaluate_vs_property(const std::vector<trace::TimedEvent>& trace,
                                      const std::set<ProcId>& q, int n, int n0, sim::Time d,
                                      sim::Time ignore_after) {
  VSPropertyReport report;
  report.stability = analyze_stability(trace, q, n);
  if (!report.stability.premise_holds) return report;
  const sim::Time l = report.stability.l;

  // Walk the trace: view timelines, send streams, safe times.
  std::vector<std::optional<core::View>> current(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n0; ++p)
    current[static_cast<std::size_t>(p)] = core::initial_view(n0);

  struct SendRec {
    sim::Time at;
  };
  using StreamKey = std::pair<core::ViewId, ProcId>;            // (view, sender)
  std::map<StreamKey, std::vector<SendRec>> sends;
  // (view, sender, index) -> receiver -> time of its safe event
  std::map<std::tuple<core::ViewId, ProcId, std::size_t>, std::map<ProcId, sim::Time>> safes;
  std::map<std::tuple<core::ViewId, ProcId, ProcId>, std::size_t> scount;
  sim::Time last_newview_in_q = l;

  for (const auto& te : trace) {
    if (const auto* e = trace::as<trace::NewViewEvent>(te)) {
      if (e->p >= 0 && e->p < n) {
        current[static_cast<std::size_t>(e->p)] = e->v;
        if (q.count(e->p) != 0) last_newview_in_q = std::max(last_newview_in_q, te.at);
      }
    } else if (const auto* e = trace::as<trace::GpsndEvent>(te)) {
      const auto& cur = current[static_cast<std::size_t>(e->p)];
      if (cur.has_value()) sends[{cur->id, e->p}].push_back({te.at});
    } else if (const auto* e = trace::as<trace::SafeEvent>(te)) {
      const auto& cur = current[static_cast<std::size_t>(e->dst)];
      if (!cur.has_value()) continue;
      auto& k = scount[{cur->id, e->src, e->dst}];
      safes[{cur->id, e->src, k}].emplace(e->dst, te.at);
      ++k;
    }
  }

  // Conclusion (c): converged final view with membership exactly Q.
  report.view_stab_time = last_newview_in_q;
  bool first = true;
  bool converged = true;
  for (ProcId p : q) {
    const auto& cur = current[static_cast<std::size_t>(p)];
    if (!cur.has_value()) {
      converged = false;
      report.violations.push_back("member " + std::to_string(p) + " has no view");
      break;
    }
    if (first) {
      report.final_view = *cur;
      first = false;
    } else if (!(*cur == report.final_view)) {
      converged = false;
      report.violations.push_back("members of Q disagree on the final view");
      break;
    }
  }
  if (converged && report.final_view.members != q) {
    converged = false;
    report.violations.push_back("final view membership " +
                                core::to_string(report.final_view.members) +
                                " differs from Q " + core::to_string(q));
  }
  report.views_converged = converged;
  if (!converged) return report;

  // Conclusions (b) and (d): minimal l'.
  sim::Time lprime = std::max<sim::Time>(0, last_newview_in_q - l);
  bool finite = true;

  const core::ViewId g = report.final_view.id;
  struct MsgObs {
    sim::Time sent;
    sim::Time all_safe;
  };
  std::vector<MsgObs> observations;
  for (ProcId p : q) {
    const auto sit = sends.find({g, p});
    if (sit == sends.end()) continue;
    for (std::size_t k = 0; k < sit->second.size(); ++k) {
      const sim::Time t = sit->second[k].at;
      if (t > ignore_after) continue;
      const auto fit = safes.find({g, p, k});
      sim::Time all_safe = 0;
      bool complete = fit != safes.end();
      if (complete) {
        for (ProcId r : q) {
          auto rt = fit->second.find(r);
          if (rt == fit->second.end()) {
            complete = false;
            break;
          }
          all_safe = std::max(all_safe, rt->second);
        }
      }
      if (!complete) {
        finite = false;
        std::ostringstream os;
        os << "message #" << k << " sent by " << p << " at " << t
           << " in the final view never became safe at every member of Q";
        report.violations.push_back(os.str());
        continue;
      }
      observations.push_back({t, all_safe});
      if (all_safe > t + d) lprime = std::max(lprime, all_safe - d - l);
    }
  }

  if (finite) {
    report.required_lprime = lprime;
    for (const auto& obs : observations) {
      if (obs.sent >= l + lprime)
        report.max_safe_lag = std::max(report.max_safe_lag, obs.all_safe - obs.sent);
    }
    report.messages_checked = observations.size();
  }
  return report;
}

}  // namespace vsg::props
