#pragma once

// TO-property(b, d, Q) — Figure 5, the performance/fault-tolerance half of
// the TO specification.
//
// Under the same stabilization premise as VS-property, the conclusions are:
//   (b) every data value bcast from a member of Q at time t is delivered
//       (brcv) at every member of Q by max(t, l + l') + d, and
//   (c) every data value delivered to any member of Q at time t is
//       delivered at every member of Q by max(t, l + l') + d,
// for some split l' <= b. As with VS-property we compute the minimal l'
// for a given d, so Theorem 7.1's claim — the stack satisfies
// TO-property(b + d, d, Q) when VS satisfies VS-property(b, d, Q) — is
// checked by comparing the measured l' against b + d.

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "props/stability.hpp"
#include "trace/events.hpp"

namespace vsg::props {

struct TOPropertyReport {
  StabilityInfo stability;

  /// Minimal l' making conclusions (b) and (c) true for the given d;
  /// nullopt if some value is never delivered at every member of Q.
  std::optional<sim::Time> required_lprime;

  /// Max over values bcast from Q after l + l' of
  /// (time delivered at all of Q) - (bcast time): the measured d.
  sim::Time max_delivery_lag = 0;
  std::size_t values_checked = 0;

  std::vector<std::string> violations;

  bool holds_with(sim::Time b) const {
    if (!stability.premise_holds) return true;  // vacuous
    return violations.empty() && required_lprime.has_value() && *required_lprime <= b;
  }
};

/// Evaluate TO-property conclusions for group Q. Values bcast after
/// `ignore_after` contribute no constraints.
TOPropertyReport evaluate_to_property(const std::vector<trace::TimedEvent>& trace,
                                      const std::set<ProcId>& q, int n, sim::Time d,
                                      sim::Time ignore_after = sim::kForever);

}  // namespace vsg::props
