#pragma once

// VStoTO-property (Figure 11): the conditional property of the *algorithm*
// used as the bridge in the proof of Theorem 7.1. Its premise is the
// conclusion of VS-property — after some point, no newview at members of
// Q, one final view <g, S> with S = Q, and timely safes — and its
// conclusion is the conclusion of TO-property shifted by one more interval
// l''' <= d (the time to finish the safe exchange of the final view):
// every value sent from (or delivered to) Q is delivered at all of Q
// within d after max(send, end of l''').
//
// Checking it separately from TO-property exhibits the proof's
// decomposition executably:
//     VS stabilizes by l + l'  (VS-property, measured)
//  -> recovery completes by l + l' + l''' with l''' <= d  (this property)
//  -> TO stabilizes by l + (l' + l''') <= l + b + d       (TO-property).

#include <optional>
#include <set>
#include <vector>

#include "props/stability.hpp"
#include "trace/events.hpp"

namespace vsg::props {

struct VStoTOPropertyReport {
  /// Premise: did the VS level stabilize (one final view = Q, no later
  /// newviews at Q)? If not, the property is vacuous.
  bool premise_holds = false;
  std::string why_not;

  /// Time of the last newview at a member of Q: the start of the recovery
  /// interval (the paper's ltime(alpha')).
  sim::Time view_stab_time = 0;

  /// Minimal l''' such that every value is delivered at all of Q within d
  /// of max(its send/first-delivery time, view_stab_time + l'''); nullopt
  /// if some value is never delivered everywhere.
  std::optional<sim::Time> required_l3;

  std::vector<std::string> violations;

  /// The Figure 11 verdict: recovery interval bounded by d.
  bool holds_with_d(sim::Time d) const {
    return premise_holds && violations.empty() && required_l3.has_value() &&
           *required_l3 <= d;
  }
};

/// Evaluate VStoTO-property over a timed trace for group Q. `d` bounds
/// both the recovery interval l''' and the post-recovery delivery lag.
VStoTOPropertyReport evaluate_vstoto_property(const std::vector<trace::TimedEvent>& trace,
                                              const std::set<ProcId>& q, int n, int n0,
                                              sim::Time d,
                                              sim::Time ignore_after = sim::kForever);

}  // namespace vsg::props
