#pragma once

// VS-property(b, d, Q) — Figure 7, the performance/fault-tolerance half of
// the VS specification.
//
// Given a timed trace whose failure-status inputs stabilize (at time l) to a
// consistent partition with component Q, the property requires a split point
// l + l' with l' <= b such that after it
//   (b) no further newview events occur at members of Q,
//   (c) all members of Q share one final view <g, S> with S = Q, and
//   (d) every message sent in that view from a member of Q at time t is
//       `safe` at every member of Q by max(t, l + l') + d.
//
// The checker computes the *minimal* l' that makes the conclusions true for
// a given d (infinite if none does), so benches can report measured
// stabilization against the paper's bound b, and tests can assert
// satisfaction.

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "props/stability.hpp"
#include "trace/events.hpp"

namespace vsg::props {

struct VSPropertyReport {
  /// Premise analysis; if premise_holds is false the property is vacuous.
  StabilityInfo stability;

  /// Conclusion (c): did the latest views at members of Q converge to one
  /// view with membership exactly Q?
  bool views_converged = false;
  core::View final_view;

  /// Time of the last newview event at any member of Q (l if none after l).
  sim::Time view_stab_time = 0;

  /// Minimal l' satisfying conclusions (b)-(d) for the given d; nullopt if
  /// no finite l' works (e.g. a message never became safe everywhere).
  std::optional<sim::Time> required_lprime;

  /// Max over messages sent in the final view after l + l' of
  /// (time all Q members have the safe indication) - (send time); the
  /// measured analogue of d. 0 when no such message exists.
  sim::Time max_safe_lag = 0;
  std::size_t messages_checked = 0;

  std::vector<std::string> violations;

  /// The full VS-property(b, d, Q) verdict (d was fixed when evaluating).
  bool holds_with(sim::Time b) const {
    if (!stability.premise_holds) return true;  // vacuous
    return violations.empty() && required_lprime.has_value() && *required_lprime <= b;
  }
};

/// Evaluate the conclusions of VS-property for group Q over a timed trace.
/// `d` is the delivery bound used in conclusion (d). Messages sent after
/// `ignore_after` contribute no constraints (lets callers exclude the
/// un-settled tail of a finite trace).
VSPropertyReport evaluate_vs_property(const std::vector<trace::TimedEvent>& trace,
                                      const std::set<ProcId>& q, int n, int n0, sim::Time d,
                                      sim::Time ignore_after = sim::kForever);

}  // namespace vsg::props
