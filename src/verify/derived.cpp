#include "verify/derived.hpp"

#include <algorithm>
#include <set>

#include "util/sequence.hpp"

namespace vsg::verify {

std::optional<core::Summary> payload_summary(util::BufferView payload) {
  auto msg = vstoto::decode_message_ex(payload);
  if (!msg.ok()) return std::nullopt;
  if (const auto* x = std::get_if<core::Summary>(&*msg.value)) return *x;
  return std::nullopt;
}

std::optional<vstoto::LabeledValue> payload_labeled(util::BufferView payload) {
  auto msg = vstoto::decode_message_ex(payload);
  if (!msg.ok()) return std::nullopt;
  if (const auto* lv = std::get_if<vstoto::LabeledValue>(&*msg.value)) return *lv;
  return std::nullopt;
}

std::vector<core::Summary> allstate_pg(const GlobalState& s, ProcId p, const core::ViewId& g) {
  std::vector<core::Summary> out;
  const auto& st = s.st(p);

  // (1) p's local summary when its current view is g.
  if (st.current.has_value() && st.current->id == g)
    out.push_back(s.procs[static_cast<std::size_t>(p)]->local_summary());

  // (2) summaries pending in the VS machine for (p, g).
  for (const auto& payload : s.machine->pending(p, g))
    if (auto x = payload_summary(payload)) out.push_back(std::move(*x));

  // (3) summaries from p in queue[g].
  for (const auto& entry : s.machine->queue(g))
    if (entry.p == p)
      if (auto x = payload_summary(entry.m)) out.push_back(std::move(*x));

  // (4) gotstate(p) at any q currently in view g.
  for (ProcId q = 0; q < s.size(); ++q) {
    const auto& stq = s.st(q);
    if (!stq.current.has_value() || !(stq.current->id == g)) continue;
    const auto it = stq.gotstate.find(p);
    if (it != stq.gotstate.end()) out.push_back(it->second);
  }
  return out;
}

std::vector<core::ViewId> relevant_viewids(const GlobalState& s) {
  std::set<core::ViewId> ids;
  for (const auto& g : s.machine->touched_viewids()) ids.insert(g);
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    if (st.current.has_value()) ids.insert(st.current->id);
  }
  return std::vector<core::ViewId>(ids.begin(), ids.end());
}

std::vector<core::Summary> allstate_g(const GlobalState& s, const core::ViewId& g) {
  std::vector<core::Summary> out;
  for (ProcId p = 0; p < s.size(); ++p) {
    auto part = allstate_pg(s, p, g);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::vector<core::Summary> allstate(const GlobalState& s) {
  std::vector<core::Summary> out;
  for (const auto& g : relevant_viewids(s)) {
    auto part = allstate_g(s, g);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

std::map<core::Label, core::Value> allcontent(const GlobalState& s,
                                              std::vector<std::string>* violations) {
  std::map<core::Label, core::Value> all;
  auto merge = [&](const std::map<core::Label, core::Value>& con) {
    for (const auto& [l, a] : con) {
      auto [it, inserted] = all.emplace(l, a);
      if (!inserted && it->second != a && violations != nullptr)
        violations->push_back("Lemma 6.5 violated: label " + core::to_string(l) +
                              " bound to two values");
    }
  };
  for (const auto& x : allstate(s)) merge(x.con);
  // Labeled values in flight also carry content bindings; include them so
  // allcontent truly is "all the information available anywhere".
  for (const auto& g : relevant_viewids(s)) {
    for (const auto& entry : s.machine->queue(g))
      if (auto lv = payload_labeled(entry.m)) merge({{lv->label, lv->value}});
    for (ProcId p = 0; p < s.size(); ++p)
      for (const auto& payload : s.machine->pending(p, g))
        if (auto lv = payload_labeled(payload)) merge({{lv->label, lv->value}});
  }
  return all;
}

std::optional<std::vector<core::Label>> allconfirm(const GlobalState& s,
                                                   std::vector<std::string>* violations) {
  std::vector<std::vector<core::Label>> prefixes;
  for (const auto& x : allstate(s)) prefixes.push_back(core::confirmed_prefix(x));
  auto result = util::lub(prefixes);
  if (!result.has_value() && violations != nullptr)
    violations->push_back("Corollary 6.24 violated: confirm prefixes are inconsistent");
  return result;
}

}  // namespace vsg::verify
