#pragma once

// Executable versions of the safety proof's invariants (Lemmas 6.1-6.24 and
// Corollaries 6.19/6.23/6.24). Each lemma is one checker over the global
// state of VStoTO-system; check_all_invariants runs every one and returns
// human-readable violations (empty = all invariants hold in this state).
//
// Notes on fidelity:
//  - Lemma 6.8 (status = send) is vacuous here: our executor sends the
//    state-exchange summary atomically inside the newview transition, so no
//    observable state has status = send.
//  - Lemma 6.18 and Corollary 6.19 quantify over all prefixes sigma; we
//    check the strongest instance (the longest common prefix of the
//    established members' buildorders), which implies every weaker one.

#include <string>
#include <vector>

#include "verify/derived.hpp"

namespace vsg::verify {

std::vector<std::string> check_lemma_6_1(const GlobalState& s);
std::vector<std::string> check_lemma_6_2(const GlobalState& s);
std::vector<std::string> check_lemma_6_3(const GlobalState& s);
std::vector<std::string> check_lemma_6_4(const GlobalState& s);
std::vector<std::string> check_lemma_6_5(const GlobalState& s);
std::vector<std::string> check_lemma_6_6(const GlobalState& s);
std::vector<std::string> check_lemma_6_7(const GlobalState& s);
std::vector<std::string> check_lemma_6_9(const GlobalState& s);
std::vector<std::string> check_lemma_6_10(const GlobalState& s);
std::vector<std::string> check_lemma_6_11(const GlobalState& s);
std::vector<std::string> check_lemma_6_12(const GlobalState& s);
std::vector<std::string> check_lemma_6_13(const GlobalState& s);
std::vector<std::string> check_lemma_6_14(const GlobalState& s);
std::vector<std::string> check_lemma_6_15(const GlobalState& s);
std::vector<std::string> check_lemma_6_16(const GlobalState& s);
std::vector<std::string> check_lemma_6_17(const GlobalState& s);
std::vector<std::string> check_corollary_6_19(const GlobalState& s);
std::vector<std::string> check_lemma_6_20(const GlobalState& s);
std::vector<std::string> check_lemma_6_21(const GlobalState& s);
std::vector<std::string> check_lemma_6_22(const GlobalState& s);
std::vector<std::string> check_corollary_6_23(const GlobalState& s);
std::vector<std::string> check_corollary_6_24(const GlobalState& s);

/// Audit of the proof's history variables themselves: buildorder[p, g]
/// tracks order_p while p is in view g (so for an established current view
/// they must be equal), and established ids never exceed the current view.
std::vector<std::string> check_history_wellformed(const GlobalState& s);

/// Run every invariant checker.
std::vector<std::string> check_all_invariants(const GlobalState& s);

}  // namespace vsg::verify
