#include "verify/forward_simulation.hpp"

#include <algorithm>
#include <set>

#include "trace/recorder.hpp"

namespace vsg::verify {

std::optional<TOImage> compute_f(const GlobalState& s, std::vector<std::string>* violations) {
  const auto content = allcontent(s, violations);
  const auto confirm = allconfirm(s, violations);
  if (!confirm.has_value()) return std::nullopt;

  TOImage image;
  image.queue.reserve(confirm->size());
  std::set<core::Label> confirmed(confirm->begin(), confirm->end());
  for (const auto& l : *confirm) {
    const auto it = content.find(l);
    if (it == content.end()) {
      if (violations != nullptr)
        violations->push_back("f: confirmed label " + core::to_string(l) +
                              " missing from allcontent");
      return std::nullopt;
    }
    image.queue.push_back(spec::TOMachine::Entry{it->second, l.origin});
  }

  const int n = s.size();
  image.pending.resize(static_cast<std::size_t>(n));
  image.next.resize(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    auto& pend = image.pending[static_cast<std::size_t>(p)];
    // Unconfirmed labels with origin p, in label order (map iteration).
    for (const auto& [l, a] : content)
      if (l.origin == p && confirmed.count(l) == 0) pend.push_back(a);
    for (const auto& a : s.st(p).delay) pend.push_back(a);
    image.next[static_cast<std::size_t>(p)] = s.st(p).nextreport;
  }
  return image;
}

SimulationChecker::SimulationChecker(GlobalState s)
    : state_(std::move(s)), oracle_(state_.size()) {}

void SimulationChecker::attach(trace::Recorder& recorder) {
  recorder.subscribe([this](const trace::TimedEvent& te) { on_event(te); });
}

void SimulationChecker::sync() {
  const auto confirm = allconfirm(state_, &violations_);
  if (!confirm.has_value()) return;
  if (oracle_.queue().size() > confirm->size()) {
    violations_.push_back("simulation: allconfirm shrank below the oracle queue");
    return;
  }
  const auto content = allcontent(state_, &violations_);
  for (std::size_t i = oracle_.queue().size(); i < confirm->size(); ++i) {
    const core::Label& l = (*confirm)[i];
    const auto it = content.find(l);
    if (it == content.end()) {
      violations_.push_back("simulation: confirmed label missing from allcontent");
      return;
    }
    const ProcId origin = l.origin;
    if (!oracle_.to_order_enabled(origin)) {
      violations_.push_back("simulation: to-order not enabled for origin " +
                            std::to_string(origin) + " (nothing pending)");
      return;
    }
    if (oracle_.pending(origin).front() != it->second) {
      violations_.push_back(
          "simulation: to-order would order a value out of per-sender FIFO order");
      return;
    }
    oracle_.to_order(origin);
  }
}

void SimulationChecker::on_event(const trace::TimedEvent& te) {
  if (const auto* b = trace::as<trace::BcastEvent>(te)) {
    oracle_.bcast(b->p, b->a);
    return;
  }
  const auto* r = trace::as<trace::BrcvEvent>(te);
  if (r == nullptr) return;
  sync();
  const auto entry = oracle_.brcv_next(r->dest);
  if (!entry.has_value()) {
    violations_.push_back("simulation: brcv at " + std::to_string(r->dest) +
                          " but the oracle queue has nothing for it");
    return;
  }
  if (entry->a != r->a || entry->p != r->origin) {
    violations_.push_back("simulation: brcv at " + std::to_string(r->dest) +
                          " delivered (" + r->a + "," + std::to_string(r->origin) +
                          ") but the oracle expected (" + entry->a + "," +
                          std::to_string(entry->p) + ")");
    return;
  }
  oracle_.brcv(r->dest);
}

bool SimulationChecker::check_f_matches() {
  sync();
  const auto image = compute_f(state_, &violations_);
  if (!image.has_value()) return false;
  bool match = true;
  if (image->queue != oracle_.queue()) {
    violations_.push_back("f-match: queue differs from oracle");
    match = false;
  }
  for (ProcId p = 0; p < state_.size(); ++p) {
    const auto& oracle_pending = oracle_.pending(p);
    const auto& f_pending = image->pending[static_cast<std::size_t>(p)];
    if (!std::equal(oracle_pending.begin(), oracle_pending.end(), f_pending.begin(),
                    f_pending.end())) {
      violations_.push_back("f-match: pending[" + std::to_string(p) + "] differs");
      match = false;
    }
    if (image->next[static_cast<std::size_t>(p)] != oracle_.next(p)) {
      violations_.push_back("f-match: next[" + std::to_string(p) + "] differs");
      match = false;
    }
  }
  return match;
}

}  // namespace vsg::verify
