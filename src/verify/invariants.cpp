#include "verify/invariants.hpp"

#include <algorithm>

#include "util/sequence.hpp"

namespace vsg::verify {
namespace {

// highprimary comparison treating nullopt as the paper's bottom (< all).
bool lt(const std::optional<core::ViewId>& a, const core::ViewId& b) {
  return !a.has_value() || *a < b;
}
bool le(const std::optional<core::ViewId>& a, const core::ViewId& b) {
  return !a.has_value() || *a <= b;
}
bool ge(const std::optional<core::ViewId>& a, const core::ViewId& b) {
  return a.has_value() && *a >= b;
}

std::string pname(ProcId p) { return "p" + std::to_string(p); }

bool established(const GlobalState& s, ProcId p, const core::ViewId& g) {
  return s.st(p).established.count(g) != 0;
}

const std::vector<core::Label>* buildorder(const GlobalState& s, ProcId p,
                                           const core::ViewId& g) {
  const auto& bo = s.st(p).buildorder;
  auto it = bo.find(g);
  return it == bo.end() ? nullptr : &it->second;
}

}  // namespace

std::vector<std::string> check_lemma_6_1(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    const auto& mcur = s.machine->current_viewid(p);
    if (st.current.has_value() != mcur.has_value())
      bad.push_back("6.1(1): " + pname(p) + " current definedness mismatch with VS-machine");
    if (st.current.has_value() && mcur.has_value() && !(st.current->id == *mcur))
      bad.push_back("6.1(2): " + pname(p) + " current viewid mismatch with VS-machine");
    if (st.current.has_value()) {
      const auto members = s.machine->created_membership(st.current->id);
      if (!members.has_value() || *members != st.current->members)
        bad.push_back("6.1(3): " + pname(p) + " current view not in created");
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_2(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p)
    if (!s.st(p).current.has_value() && s.st(p).status != vstoto::PStatus::kNormal)
      bad.push_back("6.2: " + pname(p) + " has no view but status != normal");
  return bad;
}

std::vector<std::string> check_lemma_6_3(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    for (const auto& l : st.buffer) {
      if (!st.current.has_value())
        bad.push_back("6.3(1): " + pname(p) + " buffered label without a view");
      else if (l.origin != p || !(l.id == st.current->id))
        bad.push_back("6.3(1): " + pname(p) + " buffered label " + core::to_string(l) +
                      " not own/current");
    }
  }
  for (const auto& g : relevant_viewids(s)) {
    for (ProcId p = 0; p < s.size(); ++p) {
      for (const auto& payload : s.machine->pending(p, g))
        if (auto lv = payload_labeled(payload))
          if (lv->label.origin != p || !(lv->label.id == g))
            bad.push_back("6.3(2): pending labeled value with wrong origin/view");
    }
    for (const auto& entry : s.machine->queue(g))
      if (auto lv = payload_labeled(entry.m))
        if (lv->label.origin != entry.p || !(lv->label.id == g))
          bad.push_back("6.3(3): queued labeled value with wrong origin/view");
  }
  return bad;
}

std::vector<std::string> check_lemma_6_4(const GlobalState& s) {
  std::vector<std::string> bad;
  const auto all = allcontent(s);
  for (const auto& [l, a] : all) {
    const ProcId p = l.origin;
    if (p < 0 || p >= s.size()) {
      bad.push_back("6.4: label with unknown origin");
      continue;
    }
    const auto& st = s.st(p);
    if (!st.current.has_value()) {
      bad.push_back("6.4: label " + core::to_string(l) + " exists but origin has no view");
      continue;
    }
    const core::Label bound{st.current->id, st.nextseqno, p};
    if (!(l < bound))
      bad.push_back("6.4: label " + core::to_string(l) + " not below " +
                    core::to_string(bound));
  }
  return bad;
}

std::vector<std::string> check_lemma_6_5(const GlobalState& s) {
  std::vector<std::string> bad;
  (void)allcontent(s, &bad);
  return bad;
}

std::vector<std::string> check_lemma_6_6(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    for (const auto& l : st.buffer)
      if (st.content.find(l) == st.content.end())
        bad.push_back("6.6: " + pname(p) + " buffered label missing from content");
  }
  return bad;
}

std::vector<std::string> check_lemma_6_7(const GlobalState& s) {
  std::vector<std::string> bad;
  const auto ids = relevant_viewids(s);
  const auto all = allcontent(s);
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    for (const auto& g : ids) {
      const bool premise = !st.current.has_value() || st.current->id < g;
      if (!premise) continue;
      if (!s.machine->pending(p, g).empty())
        bad.push_back("6.7(1): pending[" + pname(p) + ", " + core::to_string(g) +
                      "] nonempty though p never reached g");
      for (const auto& entry : s.machine->queue(g))
        if (entry.p == p)
          bad.push_back("6.7(2): queue[" + core::to_string(g) + "] holds message from " +
                        pname(p));
      for (ProcId q = 0; q < s.size(); ++q) {
        const auto& stq = s.st(q);
        if (stq.current.has_value() && stq.current->id == g &&
            stq.gotstate.count(p) != 0)
          bad.push_back("6.7(3): gotstate at " + pname(q) + " names " + pname(p));
      }
      if (!allstate_pg(s, p, g).empty())
        bad.push_back("6.7(4): allstate[" + pname(p) + ", " + core::to_string(g) +
                      "] nonempty");
      for (const auto& [l, a] : all)
        if (l.origin == p && l.id == g)
          bad.push_back("6.7(5/6): label " + core::to_string(l) +
                        " exists though origin never reached its view");
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_9(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    if (st.status != vstoto::PStatus::kCollect || !st.current.has_value()) continue;
    const auto& g = st.current->id;
    for (const auto& x : allstate_pg(s, p, g)) {
      for (const auto& [l, a] : x.con)
        if (st.content.find(l) == st.content.end())
          bad.push_back("6.9(1): collect-phase summary con not subset of content at " +
                        pname(p));
      if (x.ord != st.order)
        bad.push_back("6.9(2): collect-phase summary ord differs from order at " + pname(p));
      if (x.next != st.nextconfirm)
        bad.push_back("6.9(3): collect-phase summary next differs at " + pname(p));
      if (x.high != st.highprimary)
        bad.push_back("6.9(4): collect-phase summary high differs at " + pname(p));
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_10(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    for (const auto& g : st.established) {
      if (!st.current.has_value() || st.current->id < g)
        bad.push_back("6.10(1): " + pname(p) + " established " + core::to_string(g) +
                      " but current below it");
    }
    if (st.current.has_value()) {
      const bool est = established(s, p, st.current->id);
      const bool normal = st.status == vstoto::PStatus::kNormal;
      if (est != normal)
        bad.push_back("6.10(2): " + pname(p) + " established[current] = " +
                      (est ? "true" : "false") + " but status = " +
                      vstoto::to_string(st.status));
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_11(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    const bool primary = s.procs[static_cast<std::size_t>(p)]->primary();
    if (st.current.has_value()) {
      const auto& g = st.current->id;
      if (established(s, p, g)) {
        if (primary && st.highprimary != std::optional<core::ViewId>(g))
          bad.push_back("6.11(1): established primary but highprimary != current at " +
                        pname(p));
        if (!primary && !lt(st.highprimary, g))
          bad.push_back("6.11(2): established non-primary but highprimary >= current at " +
                        pname(p));
      } else if (!lt(st.highprimary, g)) {
        bad.push_back("6.11(3): not established but highprimary >= current at " + pname(p));
      }
      for (const auto& [q, x] : st.gotstate)
        if (!lt(x.high, g))
          bad.push_back("6.11(4): gotstate summary high >= current at " + pname(p));
    }
  }
  for (const auto& g : relevant_viewids(s)) {
    for (const auto& entry : s.machine->queue(g))
      if (auto x = payload_summary(entry.m))
        if (!lt(x->high, g))
          bad.push_back("6.11(5): queued summary high >= its view " + core::to_string(g));
    for (ProcId q = 0; q < s.size(); ++q)
      for (const auto& payload : s.machine->pending(q, g))
        if (auto x = payload_summary(payload))
          if (!lt(x->high, g))
            bad.push_back("6.11(6): pending summary high >= its view " + core::to_string(g));
  }
  return bad;
}

std::vector<std::string> check_lemma_6_12(const GlobalState& s) {
  std::vector<std::string> bad;
  for (const auto& g : relevant_viewids(s)) {
    for (ProcId p = 0; p < s.size(); ++p) {
      const auto& st = s.st(p);
      for (const auto& x : allstate_pg(s, p, g)) {
        if (!le(x.high, g))
          bad.push_back("6.12(1): summary in allstate[" + pname(p) + "," +
                        core::to_string(g) + "] has high above g");
        if (st.current.has_value() && !le(x.high, st.current->id))
          bad.push_back("6.12(2): summary in allstate[" + pname(p) +
                        "] has high above p's current view");
      }
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_13(const GlobalState& s) {
  std::vector<std::string> bad;
  for (const auto& v : s.machine->created()) {
    if (!s.quorums->contains_quorum(v.members)) continue;
    for (ProcId p = 0; p < s.size(); ++p) {
      const auto& st = s.st(p);
      if (!established(s, p, v.id)) continue;
      if (!st.current.has_value() || !(st.current->id > v.id)) continue;
      if (!ge(st.highprimary, v.id))
        bad.push_back("6.13: " + pname(p) + " established primary " + core::to_string(v.id) +
                      " and moved on, but highprimary below it");
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_14(const GlobalState& s) {
  std::vector<std::string> bad;
  const auto ids = relevant_viewids(s);
  for (const auto& v : s.machine->created()) {
    if (!s.quorums->contains_quorum(v.members)) continue;
    for (ProcId p = 0; p < s.size(); ++p) {
      if (!established(s, p, v.id)) continue;
      for (const auto& w : ids) {
        if (!(w > v.id)) continue;
        for (const auto& x : allstate_pg(s, p, w))
          if (!ge(x.high, v.id))
            bad.push_back("6.14: summary of " + pname(p) + " in view " + core::to_string(w) +
                          " has high below established primary " + core::to_string(v.id));
      }
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_15(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    if (!st.current.has_value()) continue;
    const auto& g = st.current->id;
    if (established(s, p, g)) continue;
    for (const auto& x : allstate_pg(s, p, g))
      if (x.high == std::optional<core::ViewId>(g))
        bad.push_back("6.15: unestablished " + pname(p) + " has summary with high = current");
  }
  return bad;
}

std::vector<std::string> check_lemma_6_16(const GlobalState& s) {
  std::vector<std::string> bad;
  for (const auto& g : relevant_viewids(s)) {
    for (ProcId p = 0; p < s.size(); ++p) {
      for (const auto& x : allstate_pg(s, p, g)) {
        if (!x.high.has_value()) {
          if (!x.ord.empty())
            bad.push_back("6.16: summary with bottom high but nonempty ord at " + pname(p));
          continue;
        }
        const auto members = s.machine->created_membership(*x.high);
        if (!members.has_value()) {
          bad.push_back("6.16: summary high names an uncreated view");
          continue;
        }
        bool found = false;
        for (ProcId q : *members) {
          if (!established(s, q, *x.high)) continue;
          const auto* bo = buildorder(s, q, *x.high);
          if (bo == nullptr || *bo != x.ord) continue;
          const auto& stq = s.st(q);
          const bool last_clause =
              *x.high == g ||
              (stq.current.has_value() && stq.current->id > *x.high);
          if (last_clause) {
            found = true;
            break;
          }
        }
        if (!found)
          bad.push_back("6.16: no witness q for summary with high " +
                        core::to_string(*x.high) + " in allstate[" + pname(p) + "," +
                        core::to_string(g) + "]");
      }
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_17(const GlobalState& s) {
  std::vector<std::string> bad;
  for (const auto& v : s.machine->created()) {
    bool someone = false;
    for (ProcId p = 0; p < s.size(); ++p)
      if (established(s, p, v.id)) someone = true;
    if (!someone) continue;
    for (ProcId q : v.members) {
      const auto& stq = s.st(q);
      if (!stq.current.has_value() || stq.current->id < v.id)
        bad.push_back("6.17: " + core::to_string(v.id) + " established somewhere but member " +
                      pname(q) + " is behind it");
    }
  }
  return bad;
}

std::vector<std::string> check_corollary_6_19(const GlobalState& s) {
  std::vector<std::string> bad;
  for (const auto& v : s.machine->created()) {
    if (!s.quorums->contains_quorum(v.members)) continue;
    bool all_established = true;
    for (ProcId p : v.members)
      if (!established(s, p, v.id)) all_established = false;
    if (!all_established || v.members.empty()) continue;

    // sigma := longest common prefix of the members' buildorders for v.
    std::vector<core::Label> sigma;
    bool first = true;
    for (ProcId p : v.members) {
      const auto* bo = buildorder(s, p, v.id);
      const std::vector<core::Label> empty;
      const auto& mine = bo == nullptr ? empty : *bo;
      if (first) {
        sigma = mine;
        first = false;
      } else {
        std::size_t k = 0;
        while (k < sigma.size() && k < mine.size() && sigma[k] == mine[k]) ++k;
        sigma.resize(k);
      }
    }
    if (sigma.empty()) continue;
    for (const auto& x : allstate(s)) {
      if (!ge(x.high, v.id)) continue;
      if (!util::is_prefix(sigma, x.ord))
        bad.push_back("Cor 6.19: summary with high >= " + core::to_string(v.id) +
                      " does not extend the view's agreed prefix");
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_20(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    if (st.safe_labels.empty()) continue;
    if (!s.procs[static_cast<std::size_t>(p)]->primary()) {
      bad.push_back("6.20: nonempty safe-labels at non-primary " + pname(p));
      continue;
    }
    for (std::size_t i = 0; i < st.order.size(); ++i) {
      if (st.safe_labels.count(st.order[i]) == 0) continue;
      const auto sigma = util::prefix_of(st.order, i + 1);
      for (ProcId q : st.current->members) {
        const auto* bo = buildorder(s, q, st.current->id);
        if (bo == nullptr || !util::is_prefix(sigma, *bo))
          bad.push_back("6.20: safe label at " + pname(p) + " position " + std::to_string(i) +
                        " not in member " + pname(q) + "'s buildorder prefix");
      }
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_21(const GlobalState& s) {
  std::vector<std::string> bad;
  const auto all = allcontent(s);
  // Per origin, the sorted list of its labels in allcontent.
  std::map<ProcId, std::vector<core::Label>> by_origin;
  for (const auto& [l, a] : all) by_origin[l.origin].push_back(l);  // map order = sorted

  for (const auto& x : allstate(s)) {
    std::map<core::Label, std::size_t> pos;
    for (std::size_t i = 0; i < x.ord.size(); ++i) pos.emplace(x.ord[i], i);
    for (std::size_t i = 0; i < x.ord.size(); ++i) {
      const auto& lp = x.ord[i];
      const auto it = by_origin.find(lp.origin);
      if (it == by_origin.end()) continue;
      for (const auto& l : it->second) {
        if (!(l < lp)) break;  // sorted; only smaller labels matter
        const auto pit = pos.find(l);
        if (pit == pos.end() || pit->second >= i) {
          bad.push_back("6.21: ord contains " + core::to_string(lp) +
                        " without earlier same-origin label " + core::to_string(l));
        }
      }
    }
  }
  return bad;
}

std::vector<std::string> check_lemma_6_22(const GlobalState& s) {
  std::vector<std::string> bad;
  for (const auto& x : allstate(s)) {
    if (x.next > x.ord.size() + 1)
      bad.push_back("6.22(2): summary next exceeds length(ord) + 1");
    const auto confirm = core::confirmed_prefix(x);
    if (confirm.empty()) continue;
    bool found = false;
    for (const auto& v : s.machine->created()) {
      if (!x.high.has_value() || !(v.id <= *x.high)) continue;
      if (!s.quorums->contains_quorum(v.members)) continue;
      bool witness = true;
      for (ProcId q : v.members) {
        if (!established(s, q, v.id)) {
          witness = false;
          break;
        }
        const auto* bo = buildorder(s, q, v.id);
        if (bo == nullptr || !util::is_prefix(confirm, *bo)) {
          witness = false;
          break;
        }
      }
      if (witness) {
        found = true;
        break;
      }
    }
    if (!found)
      bad.push_back("6.22(1): no quorum view witnesses a nonempty confirm prefix");
  }
  return bad;
}

std::vector<std::string> check_corollary_6_23(const GlobalState& s) {
  std::vector<std::string> bad;
  const auto xs = allstate(s);
  for (const auto& x1 : xs) {
    const auto c1 = core::confirmed_prefix(x1);
    if (c1.empty()) continue;
    for (const auto& x2 : xs) {
      const bool le_high =
          !x1.high.has_value() || (x2.high.has_value() && *x1.high <= *x2.high);
      if (!le_high) continue;
      if (!util::is_prefix(c1, x2.ord))
        bad.push_back("Cor 6.23: confirm prefix not a prefix of higher summary's ord");
    }
  }
  return bad;
}

std::vector<std::string> check_corollary_6_24(const GlobalState& s) {
  std::vector<std::string> bad;
  (void)allconfirm(s, &bad);
  return bad;
}

std::vector<std::string> check_history_wellformed(const GlobalState& s) {
  std::vector<std::string> bad;
  for (ProcId p = 0; p < s.size(); ++p) {
    const auto& st = s.st(p);
    if (!st.current.has_value()) continue;
    const auto& g = st.current->id;
    if (established(s, p, g)) {
      const auto* bo = buildorder(s, p, g);
      if (bo == nullptr || *bo != st.order)
        bad.push_back("history: buildorder[" + pname(p) +
                      ", current] does not track order");
    }
    for (const auto& [bg, ord] : st.buildorder)
      if (bg > g)
        bad.push_back("history: buildorder at " + pname(p) + " names a future view");
  }
  return bad;
}

std::vector<std::string> check_all_invariants(const GlobalState& s) {
  std::vector<std::string> bad;
  auto run = [&bad](std::vector<std::string> more) {
    bad.insert(bad.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  };
  run(spec::check_lemma_4_1(*s.machine));
  run(check_lemma_6_1(s));
  run(check_lemma_6_2(s));
  run(check_lemma_6_3(s));
  run(check_lemma_6_4(s));
  run(check_lemma_6_5(s));
  run(check_lemma_6_6(s));
  run(check_lemma_6_7(s));
  run(check_lemma_6_9(s));
  run(check_lemma_6_10(s));
  run(check_lemma_6_11(s));
  run(check_lemma_6_12(s));
  run(check_lemma_6_13(s));
  run(check_lemma_6_14(s));
  run(check_lemma_6_15(s));
  run(check_lemma_6_16(s));
  run(check_lemma_6_17(s));
  run(check_corollary_6_19(s));
  run(check_lemma_6_20(s));
  run(check_lemma_6_21(s));
  run(check_lemma_6_22(s));
  run(check_corollary_6_23(s));
  run(check_corollary_6_24(s));
  run(check_history_wellformed(s));
  return bad;
}

}  // namespace vsg::verify
