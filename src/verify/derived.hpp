#pragma once

// Derived variables of the safety proof (Section 6): allstate[p,g],
// allstate, allcontent, allconfirm, computed over the *global* state of
// VStoTO-system = (VS-machine, VStoTO_0..VStoTO_{n-1}).
//
// allstate[p,g] collects every summary of p's state "in flight" for view g:
//   1. p's own local summary, if p's current view is g;
//   2. summaries in VS-machine's pending[p,g];
//   3. summaries from p in VS-machine's queue[g];
//   4. summaries recorded as gotstate(p) by any q whose current view is g.
// allcontent is the union of con components (a function, by Lemma 6.5);
// allconfirm is the lub of the confirm prefixes (well defined by
// Corollary 6.24). Both lemmas are *checked*, not assumed: the accessors
// report violations instead of asserting.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/quorum.hpp"
#include "core/summary.hpp"
#include "spec/vs_machine.hpp"
#include "vstoto/process.hpp"

namespace vsg::verify {

/// A read-only composite of the whole system's state.
struct GlobalState {
  const spec::VSMachine* machine = nullptr;
  std::vector<const vstoto::Process*> procs;  // indexed by ProcId
  const core::QuorumSystem* quorums = nullptr;

  int size() const { return static_cast<int>(procs.size()); }
  const vstoto::ProcessState& st(ProcId p) const {
    return procs[static_cast<std::size_t>(p)]->state();
  }
};

/// allstate[p,g].
std::vector<core::Summary> allstate_pg(const GlobalState& s, ProcId p, const core::ViewId& g);

/// allstate[g] = union over p.
std::vector<core::Summary> allstate_g(const GlobalState& s, const core::ViewId& g);

/// All view ids with any VS-machine or process state (the sweep domain).
std::vector<core::ViewId> relevant_viewids(const GlobalState& s);

/// allstate = union over p, g.
std::vector<core::Summary> allstate(const GlobalState& s);

/// allcontent; any (label -> two different values) conflict is appended to
/// `violations` (Lemma 6.5 failure).
std::map<core::Label, core::Value> allcontent(const GlobalState& s,
                                              std::vector<std::string>* violations = nullptr);

/// allconfirm = lub of confirm prefixes; nullopt (plus a violation entry)
/// if the prefixes are not pairwise consistent (Corollary 6.24 failure).
std::optional<std::vector<core::Label>> allconfirm(
    const GlobalState& s, std::vector<std::string>* violations = nullptr);

/// Decode a VS payload as a summary, if it is one (helper shared with the
/// invariant checkers). Accepts Buffer or Bytes via implicit view.
std::optional<core::Summary> payload_summary(util::BufferView payload);

/// Decode a VS payload as a labeled value, if it is one.
std::optional<vstoto::LabeledValue> payload_labeled(util::BufferView payload);

}  // namespace vsg::verify
