#pragma once

// The forward simulation f from VStoTO-system to TO-machine (Section 6.2),
// made executable two ways:
//
//  1. compute_f(state): the literal definition —
//       f(x).queue      = applyall(<allcontent, origin>, allconfirm)
//       f(x).next[p]    = nextreport_p
//       f(x).pending[p] = values of p's unconfirmed labels (label order)
//                         followed by delay_p
//
//  2. SimulationChecker: an online refinement checker. It maintains a live
//     TO-machine oracle; every bcast/brcv trace event must be a legal
//     TO-machine transition after catching the oracle up with to-order
//     steps dictated by the growth of allconfirm. If the oracle ever gets
//     stuck, the simulation relation (and hence Theorem 6.26) is violated.
//     At quiescent points, check_f_matches verifies f(state) equals the
//     oracle state exactly.

#include <optional>
#include <string>
#include <vector>

#include "spec/to_machine.hpp"
#include "trace/events.hpp"
#include "verify/derived.hpp"

namespace vsg::trace {
class Recorder;
}

namespace vsg::verify {

/// The image of the simulation relation: a TO-machine state.
struct TOImage {
  std::vector<spec::TOMachine::Entry> queue;
  std::vector<std::vector<core::Value>> pending;  // per processor
  std::vector<std::size_t> next;                  // per processor, 1-based
};

/// Compute f(state); nullopt (with reasons in `violations`) when the
/// derived variables are ill-defined (an invariant violation).
std::optional<TOImage> compute_f(const GlobalState& s, std::vector<std::string>* violations);

class SimulationChecker {
 public:
  /// The GlobalState must outlive the checker and always reflect the
  /// current system state (it holds pointers).
  explicit SimulationChecker(GlobalState s);

  /// Feed every trace event (non-TO events are ignored). Brcv events
  /// trigger a sync against allconfirm first.
  void on_event(const trace::TimedEvent& te);

  /// Subscribe as a live oracle on the recorder (refinement checking must
  /// run online — it reads the live GlobalState at each event). The checker
  /// must outlive the run.
  void attach(trace::Recorder& recorder);

  /// Catch the oracle's queue up with allconfirm (performs to-order steps).
  void sync();

  /// Compare f(state) with the oracle state; call at quiescent points.
  /// Appends discrepancies to violations(); returns true when equal.
  bool check_f_matches();

  bool ok() const noexcept { return violations_.empty(); }
  const std::vector<std::string>& violations() const noexcept { return violations_; }
  const spec::TOMachine& oracle() const noexcept { return oracle_; }

 private:
  GlobalState state_;
  spec::TOMachine oracle_;
  std::vector<std::string> violations_;
};

}  // namespace vsg::verify
