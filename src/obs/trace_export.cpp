#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <string_view>

#include "obs/json_util.hpp"

namespace vsg::obs {

namespace {

/// Stable per-layer thread ids inside each trace process. Shard-prefixed
/// categories ("shard2.to") land in their own tid decade so each shard's
/// layer tracks stay separate in a merged multi-tracer document. Unknown
/// categories fall back to a high tid rather than colliding.
int track_tid(const std::string& cat) {
  int decade = 0;
  std::string_view base = cat;
  if (base.rfind("shard", 0) == 0) {
    const auto dot = base.find('.');
    if (dot != std::string_view::npos && dot > 5) {
      int k = 0;
      bool numeric = true;
      for (std::size_t i = 5; i < dot; ++i) {
        if (base[i] < '0' || base[i] > '9') {
          numeric = false;
          break;
        }
        k = k * 10 + (base[i] - '0');
      }
      if (numeric) {
        decade = (k + 1) * 10;
        base = base.substr(dot + 1);
      }
    }
  }
  if (base == "to") return decade + 1;
  if (base == "view") return decade + 2;
  if (base == "net") return decade + 3;
  if (base == "fault") return decade + 4;
  return decade + 9;
}

void append_field(std::string& out, const char* key, const std::string& value) {
  json::append_escaped(out, key);
  out += ":";
  json::append_escaped(out, value);
}

struct Line {
  sim::Time ts = 0;
  // Async events with one (cat, id) nest per lane, and chain phases tile
  // (phase k ends where phase k+1 begins), so at equal timestamps ends must
  // precede begins (rank 0 < 2). A zero-length span would then close before
  // it opens; its b/e pair is emitted glued as one line at rank 1.
  int rank = 0;
  std::string json;
};

std::string event_json(const Span& s, const char* ph, sim::Time ts) {
  std::string out = "{";
  append_field(out, "name", s.name);
  out += ",";
  append_field(out, "cat", s.cat);
  out += ",\"ph\":\"";
  out += ph;
  out += "\"";
  if (!s.instant) {
    out += ",";
    append_field(out, "id", s.id);
  } else {
    out += ",\"s\":\"t\"";  // thread-scoped instant
  }
  out += ",\"pid\":" + std::to_string(s.proc);
  out += ",\"tid\":" + std::to_string(track_tid(s.cat));
  out += ",\"ts\":" + std::to_string(ts);
  if (!s.arg.empty() && ph[0] != 'e') {
    out += ",\"args\":{";
    append_field(out, "detail", s.arg);
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace

std::string chrome_trace_json(const std::vector<const SpanTracer*>& tracers) {
  std::vector<Line> lines;
  std::size_t total = 0;
  for (const SpanTracer* t : tracers)
    if (t != nullptr) total += t->spans().size();
  lines.reserve(total * 2);
  std::set<ProcId> pids;
  std::set<std::pair<ProcId, std::string>> tracks;
  for (const SpanTracer* t : tracers) {
    if (t == nullptr) continue;
    for (const Span& s : t->spans()) {
      pids.insert(s.proc);
      tracks.insert({s.proc, s.cat});
      if (s.instant) {
        lines.push_back({s.end, 1, event_json(s, "i", s.end)});
      } else if (s.begin == s.end) {
        lines.push_back(
            {s.end, 1, event_json(s, "b", s.begin) + ",\n" + event_json(s, "e", s.end)});
      } else {
        lines.push_back({s.begin, 2, event_json(s, "b", s.begin)});
        lines.push_back({s.end, 0, event_json(s, "e", s.end)});
      }
    }
  }
  std::stable_sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return a.ts != b.ts ? a.ts < b.ts : a.rank < b.rank;
  });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    out += first ? "\n" : ",\n";
    first = false;
    out += ev;
  };
  for (ProcId p : pids) {
    std::string ev = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                     std::to_string(p) + ",\"tid\":0,\"ts\":0,\"args\":{";
    append_field(ev, "name", "processor " + std::to_string(p));
    ev += "}}";
    emit(ev);
  }
  for (const auto& [p, cat] : tracks) {
    std::string ev = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                     std::to_string(p) + ",\"tid\":" + std::to_string(track_tid(cat)) +
                     ",\"ts\":0,\"args\":{";
    append_field(ev, "name", cat);
    ev += "}}";
    emit(ev);
  }
  for (const Line& line : lines) emit(line.json);
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string chrome_trace_json(const SpanTracer& tracer) {
  return chrome_trace_json(std::vector<const SpanTracer*>{&tracer});
}

bool write_chrome_trace_file(const SpanTracer& tracer, const std::string& path) {
  return write_chrome_trace_file(std::vector<const SpanTracer*>{&tracer}, path);
}

bool write_chrome_trace_file(const std::vector<const SpanTracer*>& tracers,
                             const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << chrome_trace_json(tracers);
  return static_cast<bool>(f);
}

std::vector<std::string> validate_chrome_trace(const std::string& text) {
  std::vector<std::string> problems;
  json::Reader r(text);
  bool saw_events = false;
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> last_ts;  // per track
  std::map<std::string, std::int64_t> open;  // async begins awaiting their end
  std::size_t index = 0;

  r.object([&](const std::string& key) {
    if (key != "traceEvents") {
      r.skip_value();
      return;
    }
    saw_events = true;
    r.array([&] {
      std::string ph, name, cat, id;
      bool have_ph = false, have_name = false, have_pid = false, have_tid = false,
           have_ts = false, have_id = false;
      std::int64_t pid = 0, tid = 0, ts = 0;
      r.object([&](const std::string& field) {
        if (field == "ph") {
          ph = r.string();
          have_ph = true;
        } else if (field == "name") {
          name = r.string();
          have_name = true;
        } else if (field == "cat") {
          cat = r.string();
        } else if (field == "id") {
          id = r.string();
          have_id = true;
        } else if (field == "pid") {
          pid = r.integer();
          have_pid = true;
        } else if (field == "tid") {
          tid = r.integer();
          have_tid = true;
        } else if (field == "ts") {
          ts = r.integer();
          have_ts = true;
        } else {
          r.skip_value();
        }
      });
      if (!r.ok()) return;
      const std::string at = "event " + std::to_string(index);
      ++index;
      if (!have_ph || !have_name || !have_pid || !have_tid || !have_ts) {
        problems.push_back(at + ": missing required field (ph/name/pid/tid/ts)");
        return;
      }
      if (ph != "M" && ph != "b" && ph != "e" && ph != "i") {
        problems.push_back(at + ": unexpected ph \"" + ph + "\"");
        return;
      }
      auto& last = last_ts[{pid, tid}];
      if (ts < last)
        problems.push_back(at + " (" + name + "): ts " + std::to_string(ts) +
                           " goes backwards on track pid=" + std::to_string(pid) +
                           " tid=" + std::to_string(tid));
      last = std::max(last, ts);
      if (ph == "b" || ph == "e") {
        if (!have_id) {
          problems.push_back(at + " (" + name + "): async event without id");
          return;
        }
        const std::string key2 =
            cat + "|" + id + "|" + name + "|" + std::to_string(pid);
        if (ph == "b") {
          ++open[key2];
        } else if (--open[key2] < 0) {
          problems.push_back(at + ": end without begin for " + key2);
          open[key2] = 0;
        }
      }
    });
  });
  if (!r.ok() || !r.at_end()) {
    problems.push_back("malformed JSON");
    return problems;
  }
  if (!saw_events) problems.push_back("no traceEvents array");
  for (const auto& [key, count] : open)
    if (count > 0)
      problems.push_back("begin without end for " + key + " (x" +
                         std::to_string(count) + ")");
  return problems;
}

}  // namespace vsg::obs
