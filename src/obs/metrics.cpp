#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace vsg::obs {

const char* to_string(Unit u) noexcept {
  switch (u) {
    case Unit::kSimMicros:
      return "us_sim";
    case Unit::kWallMicros:
      return "us_wall";
    case Unit::kCount:
      return "count";
  }
  return "?";
}

Histogram::Histogram(std::vector<std::int64_t> bounds, Unit unit)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0), unit_(unit) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end() &&
         "histogram bounds must be strictly increasing");
}

void Histogram::observe(std::int64_t sample) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

std::int64_t Histogram::quantile_upper(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based ceiling.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.9999999999));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return i < bounds_.size() ? bounds_[i] : max();
  }
  return max();
}

bool Histogram::merge(const HistogramSnapshot& other) noexcept {
  if (other.unit != unit_ || other.bounds != bounds_ ||
      other.buckets.size() != buckets_.size())
    return false;
  if (other.count == 0) return true;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets[i];
  if (count_ == 0) {
    min_ = other.min;
    max_ = other.max;
  } else {
    min_ = std::min(min_, other.min);
    max_ = std::max(max_, other.max);
  }
  count_ += other.count;
  sum_ += other.sum;
  return true;
}

std::vector<std::int64_t> default_latency_buckets() {
  // Microseconds; 1-2-5-ish ladder from 250us to 10s.
  return {250,     500,     1000,    2000,    5000,    10000,   20000,
          50000,   100000,  200000,  500000,  1000000, 2000000, 5000000,
          10000000};
}

bool is_wall_metric(const std::string& name) {
  const std::size_t dot = name.rfind('.');
  const std::size_t tail = dot == std::string::npos ? 0 : dot + 1;
  if (name.compare(tail, std::string::npos, "jobs") == 0) return true;
  return name.find("wall", tail) != std::string::npos;
}

bool is_wall_metric(const std::string& name, Unit unit) {
  return unit == Unit::kWallMicros || is_wall_metric(name);
}

MetricsSnapshot strip_wall_metrics(const MetricsSnapshot& snap) {
  MetricsSnapshot out;
  for (const auto& e : snap.counters)
    if (!is_wall_metric(e.first)) out.counters.push_back(e);
  for (const auto& e : snap.gauges)
    if (!is_wall_metric(e.first)) out.gauges.push_back(e);
  for (const auto& h : snap.histograms)
    if (!is_wall_metric(h.name, h.unit)) out.histograms.push_back(h);
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) { return counters_[name]; }

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name, Unit unit,
                                      std::vector<std::int64_t> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (bounds.empty()) bounds = default_latency_buckets();
  return histograms_.emplace(name, Histogram(std::move(bounds), unit)).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counter(name).inc(v);
  for (const auto& [name, v] : other.gauges) gauge(name).add(v);
  bool ok = true;
  for (const auto& hs : other.histograms) {
    // Create absent series with the source's exact shape (not via
    // histogram(), whose empty-bounds default would mis-shape a
    // deliberately boundless series).
    auto it = histograms_.find(hs.name);
    if (it == histograms_.end())
      it = histograms_.emplace(hs.name, Histogram(hs.bounds, hs.unit)).first;
    ok = it->second.merge(hs) && ok;
  }
  return ok;
}

bool MetricsRegistry::merge_from(const MetricsSnapshot& other, const std::string& prefix) {
  if (prefix.empty()) return merge_from(other);
  MetricsSnapshot renamed = other;
  for (auto& [name, v] : renamed.counters) name.insert(0, prefix);
  for (auto& [name, v] : renamed.gauges) name.insert(0, prefix);
  for (auto& hs : renamed.histograms) hs.name.insert(0, prefix);
  return merge_from(renamed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c.value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g.value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.unit = h.unit();
    hs.bounds = h.bounds();
    hs.buckets = h.buckets();
    hs.count = h.count();
    hs.sum = h.sum();
    hs.min = h.min();
    hs.max = h.max();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

}  // namespace vsg::obs
