#include "obs/json_exporter.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace vsg::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

template <typename Int>
void append_int(std::string& out, Int v) {
  out += std::to_string(v);
}

// ---------------------------------------------------------------------------
// A minimal JSON reader covering what vsg-metrics-v1 uses: objects, arrays,
// strings, and integer numbers. No floats, no unicode escapes beyond what
// the exporter emits; good enough for round-tripping our own snapshots.

class Reader {
 public:
  explicit Reader(const std::string& text) : s_(text.c_str()), end_(s_ + text.size()) {}

  bool ok() const noexcept { return ok_; }
  void fail() noexcept { ok_ = false; }

  void skip_ws() {
    while (s_ < end_ && std::isspace(static_cast<unsigned char>(*s_))) ++s_;
  }

  bool consume(char c) {
    skip_ws();
    if (!ok_ || s_ >= end_ || *s_ != c) return false;
    ++s_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return ok_ && s_ < end_ && *s_ == c;
  }

  bool at_end() {
    skip_ws();
    return s_ >= end_;
  }

  std::string string() {
    skip_ws();
    std::string out;
    if (!consume('"')) {
      fail();
      return out;
    }
    // consume('"') already advanced past the opening quote.
    while (s_ < end_ && *s_ != '"') {
      if (*s_ == '\\' && s_ + 1 < end_) {
        ++s_;
        switch (*s_) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (end_ - s_ < 5) {
              fail();
              return out;
            }
            out += static_cast<char>(std::strtol(std::string(s_ + 1, s_ + 5).c_str(),
                                                 nullptr, 16));
            s_ += 4;
            break;
          }
          default:
            out += *s_;
        }
        ++s_;
      } else {
        out += *s_++;
      }
    }
    if (s_ >= end_) {
      fail();
      return out;
    }
    ++s_;  // closing quote
    return out;
  }

  std::int64_t integer() {
    skip_ws();
    char* after = nullptr;
    const long long v = std::strtoll(s_, &after, 10);
    if (after == s_) {
      fail();
      return 0;
    }
    s_ = after;
    return v;
  }

  /// Skip any JSON value (for fields we do not model).
  void skip_value() {
    skip_ws();
    if (!ok_ || s_ >= end_) {
      fail();
      return;
    }
    if (*s_ == '"') {
      string();
    } else if (*s_ == '{') {
      ++s_;
      if (peek('}')) {
        consume('}');
        return;
      }
      do {
        string();
        if (!consume(':')) fail();
        skip_value();
      } while (ok_ && consume(','));
      if (!consume('}')) fail();
    } else if (*s_ == '[') {
      ++s_;
      if (peek(']')) {
        consume(']');
        return;
      }
      do skip_value();
      while (ok_ && consume(','));
      if (!consume(']')) fail();
    } else {
      // number / true / false / null
      while (s_ < end_ && (std::isalnum(static_cast<unsigned char>(*s_)) || *s_ == '-' ||
                           *s_ == '+' || *s_ == '.'))
        ++s_;
    }
  }

  /// Iterate an object: calls fn(key) positioned at the value; fn must
  /// consume the value.
  template <typename Fn>
  void object(Fn fn) {
    if (!consume('{')) {
      fail();
      return;
    }
    if (consume('}')) return;
    do {
      std::string key = string();
      if (!consume(':')) {
        fail();
        return;
      }
      fn(key);
    } while (ok_ && consume(','));
    if (!consume('}')) fail();
  }

  template <typename Fn>
  void array(Fn fn) {
    if (!consume('[')) {
      fail();
      return;
    }
    if (consume(']')) return;
    do fn();
    while (ok_ && consume(','));
    if (!consume(']')) fail();
  }

 private:
  const char* s_;
  const char* end_;
  bool ok_ = true;
};

std::optional<Unit> unit_from_string(const std::string& s) {
  if (s == "us_sim") return Unit::kSimMicros;
  if (s == "us_wall") return Unit::kWallMicros;
  if (s == "count") return Unit::kCount;
  return std::nullopt;
}

}  // namespace

std::string JsonExporter::to_json(const MetricsSnapshot& snap, const std::string& label) {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"schema\": \"vsg-metrics-v1\",\n  \"label\": ";
  append_escaped(out, label);
  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_int(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_int(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, h.name);
    out += ": {\n      \"unit\": ";
    append_escaped(out, to_string(h.unit));
    out += ",\n      \"count\": ";
    append_int(out, h.count);
    out += ",\n      \"sum\": ";
    append_int(out, h.sum);
    out += ",\n      \"min\": ";
    append_int(out, h.min);
    out += ",\n      \"max\": ";
    append_int(out, h.max);
    out += ",\n      \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ", ";
      append_int(out, h.bounds[i]);
    }
    out += "],\n      \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ", ";
      append_int(out, h.buckets[i]);
    }
    out += "]\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool JsonExporter::write_file(const MetricsRegistry& registry, const std::string& path,
                              const std::string& label) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << to_json(registry, label);
  return static_cast<bool>(f);
}

std::optional<MetricsSnapshot> JsonExporter::parse(const std::string& json) {
  Reader r(json);
  MetricsSnapshot snap;
  bool schema_ok = false;
  r.object([&](const std::string& key) {
    if (key == "schema") {
      schema_ok = r.string() == "vsg-metrics-v1";
    } else if (key == "counters") {
      r.object([&](const std::string& name) {
        snap.counters.emplace_back(name, static_cast<std::uint64_t>(r.integer()));
      });
    } else if (key == "gauges") {
      r.object([&](const std::string& name) { snap.gauges.emplace_back(name, r.integer()); });
    } else if (key == "histograms") {
      r.object([&](const std::string& name) {
        HistogramSnapshot h;
        h.name = name;
        bool unit_ok = true;
        r.object([&](const std::string& field) {
          if (field == "unit") {
            const auto u = unit_from_string(r.string());
            if (u)
              h.unit = *u;
            else
              unit_ok = false;
          } else if (field == "count") {
            h.count = static_cast<std::uint64_t>(r.integer());
          } else if (field == "sum") {
            h.sum = r.integer();
          } else if (field == "min") {
            h.min = r.integer();
          } else if (field == "max") {
            h.max = r.integer();
          } else if (field == "bounds") {
            r.array([&] { h.bounds.push_back(r.integer()); });
          } else if (field == "buckets") {
            r.array([&] { h.buckets.push_back(static_cast<std::uint64_t>(r.integer())); });
          } else {
            r.skip_value();
          }
        });
        if (!unit_ok || h.buckets.size() != h.bounds.size() + 1) r.fail();
        snap.histograms.push_back(std::move(h));
      });
    } else {
      r.skip_value();
    }
  });
  if (!r.ok() || !r.at_end() || !schema_ok) return std::nullopt;
  return snap;
}

std::string JsonExporter::parse_label(const std::string& json) {
  Reader r(json);
  std::string label;
  r.object([&](const std::string& key) {
    if (key == "label")
      label = r.string();
    else
      r.skip_value();
  });
  return r.ok() ? label : "";
}

std::optional<std::string> export_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--export" && i + 1 < argc) return std::string(argv[i + 1]);
    if (arg.rfind("--export=", 0) == 0) return arg.substr(std::strlen("--export="));
  }
  return std::nullopt;
}

}  // namespace vsg::obs
