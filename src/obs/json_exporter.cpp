#include "obs/json_exporter.hpp"

#include "obs/json_util.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace vsg::obs {

namespace {

using json::append_escaped;
using json::Reader;

template <typename Int>
void append_int(std::string& out, Int v) {
  out += std::to_string(v);
}

std::optional<Unit> unit_from_string(const std::string& s) {
  if (s == "us_sim") return Unit::kSimMicros;
  if (s == "us_wall") return Unit::kWallMicros;
  if (s == "count") return Unit::kCount;
  return std::nullopt;
}

}  // namespace

void JsonExporter::append_snapshot_body(std::string& out, const MetricsSnapshot& snap,
                                        int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad1 = pad + "  ";
  const std::string pad2 = pad1 + "  ";
  out += pad + "\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" + pad1 : ",\n" + pad1;
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_int(out, v);
  }
  out += first ? "},\n" : "\n" + pad + "},\n";
  out += pad + "\"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" + pad1 : ",\n" + pad1;
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_int(out, v);
  }
  out += first ? "},\n" : "\n" + pad + "},\n";
  out += pad + "\"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n" + pad1 : ",\n" + pad1;
    first = false;
    append_escaped(out, h.name);
    out += ": {\n" + pad2 + "\"unit\": ";
    append_escaped(out, to_string(h.unit));
    out += ",\n" + pad2 + "\"count\": ";
    append_int(out, h.count);
    out += ",\n" + pad2 + "\"sum\": ";
    append_int(out, h.sum);
    out += ",\n" + pad2 + "\"min\": ";
    append_int(out, h.min);
    out += ",\n" + pad2 + "\"max\": ";
    append_int(out, h.max);
    out += ",\n" + pad2 + "\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ", ";
      append_int(out, h.bounds[i]);
    }
    out += "],\n" + pad2 + "\"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ", ";
      append_int(out, h.buckets[i]);
    }
    out += "]\n" + pad1 + "}";
  }
  out += first ? "}" : "\n" + pad + "}";
}

std::string JsonExporter::to_json(const MetricsSnapshot& snap, const std::string& label) {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"schema\": \"vsg-metrics-v1\",\n  \"label\": ";
  append_escaped(out, label);
  out += ",\n";
  append_snapshot_body(out, snap, 2);
  out += "\n}\n";
  return out;
}

bool JsonExporter::write_file(const MetricsRegistry& registry, const std::string& path,
                              const std::string& label) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << to_json(registry, label);
  return static_cast<bool>(f);
}

bool JsonExporter::parse_snapshot_field(Reader& r, const std::string& key,
                                        MetricsSnapshot& snap) {
  if (key == "counters") {
    r.object([&](const std::string& name) {
      snap.counters.emplace_back(name, static_cast<std::uint64_t>(r.integer()));
    });
    return true;
  }
  if (key == "gauges") {
    r.object([&](const std::string& name) { snap.gauges.emplace_back(name, r.integer()); });
    return true;
  }
  if (key == "histograms") {
    r.object([&](const std::string& name) {
      HistogramSnapshot h;
      h.name = name;
      bool unit_ok = true;
      r.object([&](const std::string& field) {
        if (field == "unit") {
          const auto u = unit_from_string(r.string());
          if (u)
            h.unit = *u;
          else
            unit_ok = false;
        } else if (field == "count") {
          h.count = static_cast<std::uint64_t>(r.integer());
        } else if (field == "sum") {
          h.sum = r.integer();
        } else if (field == "min") {
          h.min = r.integer();
        } else if (field == "max") {
          h.max = r.integer();
        } else if (field == "bounds") {
          r.array([&] { h.bounds.push_back(r.integer()); });
        } else if (field == "buckets") {
          r.array([&] { h.buckets.push_back(static_cast<std::uint64_t>(r.integer())); });
        } else {
          r.skip_value();
        }
      });
      if (!unit_ok || h.buckets.size() != h.bounds.size() + 1) r.fail();
      snap.histograms.push_back(std::move(h));
    });
    return true;
  }
  return false;
}

std::optional<MetricsSnapshot> JsonExporter::parse(const std::string& json) {
  Reader r(json);
  MetricsSnapshot snap;
  bool schema_ok = false;
  r.object([&](const std::string& key) {
    if (key == "schema") {
      schema_ok = r.string() == "vsg-metrics-v1";
    } else if (!parse_snapshot_field(r, key, snap)) {
      r.skip_value();
    }
  });
  if (!r.ok() || !r.at_end() || !schema_ok) return std::nullopt;
  return snap;
}

std::string JsonExporter::parse_label(const std::string& json) {
  Reader r(json);
  std::string label;
  r.object([&](const std::string& key) {
    if (key == "label")
      label = r.string();
    else
      r.skip_value();
  });
  return r.ok() ? label : "";
}

std::optional<std::string> export_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--export" && i + 1 < argc) return std::string(argv[i + 1]);
    if (arg.rfind("--export=", 0) == 0) return arg.substr(std::strlen("--export="));
  }
  return std::nullopt;
}

}  // namespace vsg::obs
