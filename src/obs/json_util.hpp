#pragma once

// Shared JSON primitives for the observability exporters: string escaping
// for the writers (metrics snapshots, Chrome trace events, repro manifests)
// and a minimal recursive-descent Reader covering what those schemas use —
// objects, arrays, strings, and integer numbers. Not a general JSON
// library; good enough for round-tripping our own output and validating
// trace files in tests.

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace vsg::obs::json {

/// Append `s` to `out` as a quoted JSON string, escaping quotes,
/// backslashes, and control characters.
inline void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Reader {
 public:
  explicit Reader(const std::string& text) : s_(text.c_str()), end_(s_ + text.size()) {}

  /// Containers (objects/arrays, including skipped ones) may nest at most
  /// this deep. Our schemas use 4-5 levels; the cap exists so adversarial
  /// input like ten thousand '['s fails cleanly instead of exhausting the
  /// call stack (skip_value recurses per nesting level).
  static constexpr int kMaxDepth = 64;

  bool ok() const noexcept { return ok_; }
  void fail() noexcept { ok_ = false; }

  void skip_ws() {
    while (s_ < end_ && std::isspace(static_cast<unsigned char>(*s_))) ++s_;
  }

  bool consume(char c) {
    skip_ws();
    if (!ok_ || s_ >= end_ || *s_ != c) return false;
    ++s_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return ok_ && s_ < end_ && *s_ == c;
  }

  bool at_end() {
    skip_ws();
    return s_ >= end_;
  }

  std::string string() {
    skip_ws();
    std::string out;
    if (!consume('"')) {
      fail();
      return out;
    }
    // consume('"') already advanced past the opening quote.
    while (s_ < end_ && *s_ != '"') {
      if (*s_ == '\\' && s_ + 1 < end_) {
        ++s_;
        switch (*s_) {
          case '"':
          case '\\':
          case '/':
            out += *s_;
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            // Exactly four hex digits; anything shorter or non-hex is a
            // malformed document, not something to guess a byte for.
            if (end_ - s_ < 5) {
              fail();
              return out;
            }
            for (int k = 1; k <= 4; ++k)
              if (!std::isxdigit(static_cast<unsigned char>(s_[k]))) {
                fail();
                return out;
              }
            out += static_cast<char>(std::strtol(std::string(s_ + 1, s_ + 5).c_str(),
                                                 nullptr, 16));
            s_ += 4;
            break;
          }
          default:
            // Unknown escape: reject rather than silently de-escaping.
            fail();
            return out;
        }
        ++s_;
      } else {
        out += *s_++;
      }
    }
    if (s_ >= end_) {
      fail();
      return out;
    }
    ++s_;  // closing quote
    return out;
  }

  std::int64_t integer() {
    skip_ws();
    char* after = nullptr;
    const long long v = std::strtoll(s_, &after, 10);
    if (after == s_) {
      fail();
      return 0;
    }
    s_ = after;
    return v;
  }

  /// Skip any JSON value (for fields we do not model).
  void skip_value() {
    skip_ws();
    if (!ok_ || s_ >= end_) {
      fail();
      return;
    }
    if (*s_ == '"') {
      string();
    } else if (*s_ == '{') {
      if (!enter()) return;
      ++s_;
      if (peek('}')) {
        consume('}');
        --depth_;
        return;
      }
      do {
        string();
        if (!consume(':')) fail();
        skip_value();
      } while (ok_ && consume(','));
      if (!consume('}')) fail();
      --depth_;
    } else if (*s_ == '[') {
      if (!enter()) return;
      ++s_;
      if (peek(']')) {
        consume(']');
        --depth_;
        return;
      }
      do skip_value();
      while (ok_ && consume(','));
      if (!consume(']')) fail();
      --depth_;
    } else {
      // number / true / false / null
      while (s_ < end_ && (std::isalnum(static_cast<unsigned char>(*s_)) || *s_ == '-' ||
                           *s_ == '+' || *s_ == '.'))
        ++s_;
    }
  }

  /// Iterate an object: calls fn(key) positioned at the value; fn must
  /// consume the value. Duplicate keys are NOT rejected — fn simply runs
  /// once per occurrence, so map-building parsers get last-wins semantics.
  template <typename Fn>
  void object(Fn fn) {
    if (!consume('{')) {
      fail();
      return;
    }
    if (!enter()) return;
    if (consume('}')) {
      --depth_;
      return;
    }
    do {
      std::string key = string();
      if (!consume(':')) {
        fail();
        return;
      }
      fn(key);
    } while (ok_ && consume(','));
    if (!consume('}')) fail();
    --depth_;
  }

  template <typename Fn>
  void array(Fn fn) {
    if (!consume('[')) {
      fail();
      return;
    }
    if (!enter()) return;
    if (consume(']')) {
      --depth_;
      return;
    }
    do fn();
    while (ok_ && consume(','));
    if (!consume(']')) fail();
    --depth_;
  }

 private:
  bool enter() {
    if (++depth_ > kMaxDepth) {
      fail();
      return false;
    }
    return true;
  }

  const char* s_;
  const char* end_;
  bool ok_ = true;
  int depth_ = 0;
};

}  // namespace vsg::obs::json
