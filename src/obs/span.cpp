#include "obs/span.hpp"

#include <utility>

namespace vsg::obs {

namespace {

/// One async-id per (chain, processor): phases of the same payload at the
/// same processor share a lifecycle lane; different processors must not be
/// merged by a trace viewer.
std::string msg_id(const core::Label& l, ProcId proc) {
  return "m:" + core::to_string(l) + "/p" + std::to_string(proc);
}

std::string view_id(const core::ViewId& g, ProcId proc) {
  return "v:" + core::to_string(g) + "/p" + std::to_string(proc);
}

}  // namespace

SpanTracer::SpanTracer(TraceConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
}

void SpanTracer::bind_metrics(MetricsRegistry& registry) {
  spans_total_ = &registry.counter("obs.trace.spans");
  spans_dropped_ = &registry.counter("obs.trace.dropped_spans");
  for (const char* name :
       {"label", "gpsnd", "token.board", "net.transit", "tentative", "confirmed", "tobrcv"})
    phase_latency_[name] = &registry.histogram("to.phase_latency." + std::string(name));
}

void SpanTracer::push(Span span) {
  if (!config_.name_prefix.empty()) {
    span.name.insert(0, config_.name_prefix);
    span.cat.insert(0, config_.name_prefix);
    if (!span.id.empty()) span.id.insert(0, config_.name_prefix);
  }
  ++emitted_;
  bump(spans_total_);
  ring_.push_back(std::move(span));
  while (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++dropped_;
    bump(spans_dropped_);
  }
}

void SpanTracer::phase(const char* name, const core::Label& l, ProcId proc,
                       sim::Time begin, sim::Time end) {
  if (begin < 0 || begin > end) begin = end;  // milestone missed: zero-length
  const auto it = phase_latency_.find(name);
  if (it != phase_latency_.end() && it->second != nullptr)
    it->second->observe(end - begin);
  push(Span{name, "to", msg_id(l, proc), proc, begin, end, false, core::to_string(l)});
}

SpanTracer::MsgChain* SpanTracer::chain(const core::Label& l) {
  const auto it = chains_.find(l);
  return it == chains_.end() ? nullptr : &it->second;
}

void SpanTracer::evict_chains() {
  while (chains_.size() > config_.capacity && !chain_fifo_.empty()) {
    chains_.erase(chain_fifo_.front());
    chain_fifo_.pop_front();
    ++dropped_;
    bump(spans_dropped_);
  }
  while (uid_to_label_.size() > config_.capacity && !uid_fifo_.empty()) {
    uid_to_label_.erase(uid_fifo_.front());
    uid_fifo_.pop_front();
  }
}

// --- message lifecycle --------------------------------------------------------

void SpanTracer::msg_submitted(ProcId p, sim::Time now) {
  auto& q = submits_[p];
  q.push_back(now);
  if (q.size() > config_.capacity) q.pop_front();
}

void SpanTracer::msg_labeled(ProcId p, const core::Label& l, sim::Time now) {
  MsgChain c;
  auto& q = submits_[p];
  if (!q.empty()) {
    c.submit = q.front();
    q.pop_front();
  }
  c.label = now;
  phase("label", l, p, c.submit, now);
  chains_.insert_or_assign(l, std::move(c));
  chain_fifo_.push_back(l);
  evict_chains();
}

void SpanTracer::msg_sent(ProcId p, const core::Label& l, std::uint64_t uid,
                          sim::Time now) {
  MsgChain* c = chain(l);
  if (c == nullptr) return;
  c->gpsnd = now;
  phase("gpsnd", l, p, c->label, now);
  uid_to_label_.insert_or_assign(uid, l);
  uid_fifo_.push_back(uid);
  evict_chains();
}

void SpanTracer::msg_boarded(ProcId p, std::uint64_t uid, sim::Time now) {
  const auto it = uid_to_label_.find(uid);
  if (it == uid_to_label_.end()) return;  // not a client payload (e.g. summary)
  MsgChain* c = chain(it->second);
  if (c == nullptr || c->board >= 0) return;
  c->board = now;
  phase("token.board", it->second, p, c->gpsnd, now);
}

void SpanTracer::msg_received(ProcId p, const core::Label& l, sim::Time now) {
  MsgChain* c = chain(l);
  if (c == nullptr) return;
  DestState& d = c->dests[p];
  if (d.gprcv >= 0) return;
  d.gprcv = now;
  // Transit: from boarding the token (origin) to gprcv at this destination.
  // The spec back end has no token; fall back to the gpsnd milestone.
  phase("net.transit", l, p, c->board >= 0 ? c->board : c->gpsnd, now);
}

void SpanTracer::msg_tentative(ProcId p, const core::Label& l, sim::Time now) {
  MsgChain* c = chain(l);
  if (c == nullptr) return;
  DestState& d = c->dests[p];
  if (d.tentative >= 0) return;
  d.tentative = now;
  phase("tentative", l, p, d.gprcv, now);
}

void SpanTracer::msg_confirmed(ProcId p, const core::Label& l, sim::Time now) {
  MsgChain* c = chain(l);
  if (c == nullptr) return;
  DestState& d = c->dests[p];
  if (d.confirmed >= 0) return;
  d.confirmed = now;
  phase("confirmed", l, p, d.tentative >= 0 ? d.tentative : d.gprcv, now);
}

void SpanTracer::msg_delivered(ProcId p, const core::Label& l, sim::Time now) {
  MsgChain* c = chain(l);
  if (c == nullptr) return;
  DestState& d = c->dests[p];
  if (d.delivered) return;
  d.delivered = true;
  phase("tobrcv", l, p, d.confirmed >= 0 ? d.confirmed : d.tentative, now);
}

// --- view lifecycle -----------------------------------------------------------

void SpanTracer::view_proposed(ProcId p, const core::ViewId& g, sim::Time now) {
  proposals_[p] = PendingProposal{g, now};
}

void SpanTracer::view_installed(ProcId p, const core::ViewId& g, sim::Time now) {
  const auto it = proposals_.find(p);
  if (it == proposals_.end()) return;
  // Only the proposer's own winning round becomes a span; a superseded
  // proposal (another view installed over it) is dropped.
  if (it->second.gid == g)
    push(Span{"view.proposal", "view", view_id(g, p), p, it->second.at, now, false,
              core::to_string(g)});
  proposals_.erase(it);
}

void SpanTracer::view_newview(ProcId p, const core::ViewId& g, sim::Time now) {
  exchanges_[p] = {g, now};
  digest_marks_.erase(p);  // a new exchange supersedes any stale digest mark
}

void SpanTracer::view_digests_collected(ProcId p, const core::ViewId& g,
                                        sim::Time now) {
  digest_marks_[p] = {g, now};
}

void SpanTracer::view_established(ProcId p, const core::ViewId& g, bool primary,
                                  sim::Time now) {
  sim::Time begin = now;
  const auto it = exchanges_.find(p);
  if (it != exchanges_.end() && it->second.first == g) {
    begin = it->second.second;
    exchanges_.erase(it);
  }
  push(Span{"view.state_exchange", "view", view_id(g, p), p, begin, now, false,
            core::to_string(g)});
  // Delta mode: split the exchange into its digest and delta phases when the
  // digest-collection milestone was recorded for this view.
  const auto mark = digest_marks_.find(p);
  if (mark != digest_marks_.end() && mark->second.first == g) {
    const sim::Time split = mark->second.second;
    digest_marks_.erase(mark);
    push(Span{"view.exchange.digest", "view", view_id(g, p), p, begin, split, false,
              core::to_string(g)});
    push(Span{"view.exchange.delta", "view", view_id(g, p), p, split, now, false,
              core::to_string(g)});
  }
  if (primary)
    push(Span{"view.primary_established", "view", view_id(g, p), p, now, now, true,
              core::to_string(g)});
}

// --- network ------------------------------------------------------------------

void SpanTracer::packet_sent(ProcId src, ProcId dst, std::uint64_t uid, sim::Time now) {
  (void)src;
  const auto key = std::make_pair(uid, dst);
  if (!packets_.emplace(key, now).second) return;
  packet_fifo_.push_back(key);
  while (packets_.size() > config_.capacity && !packet_fifo_.empty()) {
    packets_.erase(packet_fifo_.front());
    packet_fifo_.pop_front();
  }
}

void SpanTracer::packet_delivered(ProcId src, ProcId dst, std::uint64_t uid,
                                  sim::Time now) {
  const auto it = packets_.find(std::make_pair(uid, dst));
  if (it == packets_.end()) return;  // evicted, or corrupted in flight (new uid)
  const sim::Time begin = it->second;
  packets_.erase(it);
  push(Span{"net.packet", "net",
            "n:" + std::to_string(uid) + "/p" + std::to_string(dst), dst, begin, now,
            false, "from p" + std::to_string(src)});
}

// --- faults -------------------------------------------------------------------

void SpanTracer::fault_marker(const sim::StatusEvent& ev) {
  std::string name = std::string(ev.is_link ? "link." : "proc.") + to_string(ev.status);
  std::string arg = ev.is_link
                        ? "p" + std::to_string(ev.p) + "->p" + std::to_string(ev.q)
                        : "p" + std::to_string(ev.p);
  push(Span{std::move(name), "fault", "", ev.p, ev.at, ev.at, true, std::move(arg)});
}

}  // namespace vsg::obs
