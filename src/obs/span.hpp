#pragma once

// Causal span tracing for the VStoTO stack. The paper's performance claims
// are phase budgets — TO-property(b+d, d, Q) and the Section 8 token-ring
// bound — and this layer attributes where that budget is spent by turning
// protocol milestones into timed spans:
//
//   message lifecycle (one chain per TO payload, correlated by its
//   core::Label, which is system-wide unique):
//     tosnd -> label -> gpsnd -> token.board -> net.transit -> gprcv
//           -> tentative -> confirmed -> tobrcv
//   Each span is named after the milestone it *ends* at and covers the time
//   since the previous milestone, so the chain tiles the bcast->brcv
//   interval. Origin-side milestones (label, gpsnd, token.board) exist once
//   per payload; delivery-side milestones (tentative, confirmed, tobrcv)
//   and net.transit exist once per destination processor.
//
//   view lifecycle (per processor): view.proposal (formation round at the
//   proposer, initiate -> install), view.state_exchange (newview ->
//   established), and a view.primary_established instant when the
//   establishing processor holds a quorum.
//
//   packets: one net.packet span per delivered network packet (src -> dst).
//
// Correlation keys. Across the wire, the key is the label: the zero-copy
// plane's storage uids do NOT survive a hop (a token entry decoded at a
// remote node is a slice of the arriving packet's storage, a different
// allocation — see docs/DATAPLANE.md). Origin-side, uids DO correlate for
// free: the buffer handed to gpsnd is the same storage the outbox, the
// token entry and the self-delivery hold, which is how the membership
// layer — which never decodes client payloads — reports token.board: the
// tracer learns uid->label at the gpsnd hook and resolves boarding by uid.
//
// The tracer doubles as a bounded flight recorder: completed spans go into
// a ring of `TraceConfig::capacity` entries; overflow evicts the oldest and
// counts obs.trace.dropped_spans. Pending correlation state (open chains,
// the uid->label map, in-flight packets) is bounded the same way, so the
// tracer is safe to leave on indefinitely. Completed message phases also
// feed to.phase_latency.<phase> histograms in the MetricsRegistry.
//
// Tracing is off by default. Layers hold a `SpanTracer*` that is null
// unless harness::World was configured with trace.enabled, so the disabled
// path costs one pointer test per hook site and perturbs nothing — fixed
// seeds produce bit-identical protocol counters and traces either way.

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "core/label.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "sim/failure_table.hpp"
#include "sim/time.hpp"

namespace vsg::obs {

struct TraceConfig {
  /// Master switch; a World only constructs (and wires) a tracer when set.
  bool enabled = false;
  /// Flight-recorder ring capacity in completed spans. Pending-state maps
  /// (open chains, uid->label, in-flight packets) share this bound.
  std::size_t capacity = 4096;
  /// Prepended to every completed span's name, category and correlation id
  /// (e.g. "shard1."). Multi-shard Worlds run one tracer per shard; the
  /// prefix keeps chains with equal labels from different shards on
  /// distinct tracks when their traces are merged into one export.
  std::string name_prefix;
};

/// One completed (or instant) span, as kept by the flight recorder.
struct Span {
  std::string name;      // milestone / phase, e.g. "token.board"
  std::string cat;       // layer track: "to" | "ring" | "net" | "view" | "fault"
  std::string id;        // async correlation id (shared by one chain+proc)
  ProcId proc = kNoProc; // the processor ("process" in the trace) it belongs to
  sim::Time begin = 0;
  sim::Time end = 0;
  bool instant = false;  // instant marker, not an interval
  std::string arg;       // optional detail (label, view, uid, status)
};

class SpanTracer {
 public:
  explicit SpanTracer(TraceConfig config);

  const TraceConfig& config() const noexcept { return config_; }

  /// Publish obs.trace.* counters and to.phase_latency.* histograms.
  void bind_metrics(MetricsRegistry& registry);

  // --- message lifecycle hooks (times are the recorder's clock) -------------
  /// bcast(a)_p accepted; matched to the next label at p (TO is FIFO per
  /// origin, so the k-th label at p labels p's k-th submission).
  void msg_submitted(ProcId p, sim::Time now);
  /// label_p assigned label l; opens the chain for l.
  void msg_labeled(ProcId p, const core::Label& l, sim::Time now);
  /// gpsnd of <l, a>; `uid` is the encoded buffer's storage id, which the
  /// membership layer will see again when the payload boards the token.
  void msg_sent(ProcId p, const core::Label& l, std::uint64_t uid, sim::Time now);
  /// A client payload with storage id `uid` boarded the token at its origin.
  /// Unknown uids (state-exchange summaries) are ignored.
  void msg_boarded(ProcId p, std::uint64_t uid, sim::Time now);
  /// gprcv of <l, a> at destination p.
  void msg_received(ProcId p, const core::Label& l, sim::Time now);
  /// l entered p's tentative total order (gprcv append or state exchange).
  void msg_tentative(ProcId p, const core::Label& l, sim::Time now);
  /// l confirmed at p (safe + primary).
  void msg_confirmed(ProcId p, const core::Label& l, sim::Time now);
  /// brcv of l's value at p; completes the chain for this destination.
  void msg_delivered(ProcId p, const core::Label& l, sim::Time now);

  // --- view lifecycle hooks -------------------------------------------------
  /// p initiated a formation round for view id g.
  void view_proposed(ProcId p, const core::ViewId& g, sim::Time now);
  /// p installed view g (ends p's open proposal span if g matches it).
  void view_installed(ProcId p, const core::ViewId& g, sim::Time now);
  /// newview(v)_p delivered to the client: state exchange starts at p.
  void view_newview(ProcId p, const core::ViewId& g, sim::Time now);
  /// Delta-mode exchange only: p collected every member's digest for g and
  /// sent its delta. Splits the exchange interval — view_established then
  /// emits view.exchange.digest (newview -> here) and view.exchange.delta
  /// (here -> established) alongside the usual view.state_exchange span.
  void view_digests_collected(ProcId p, const core::ViewId& g, sim::Time now);
  /// p collected all summaries and established g; `primary` per Figure 9.
  void view_established(ProcId p, const core::ViewId& g, bool primary, sim::Time now);

  // --- network hooks --------------------------------------------------------
  /// Packet (storage id `uid`, post copy-on-corrupt) entered the link p->q.
  void packet_sent(ProcId src, ProcId dst, std::uint64_t uid, sim::Time now);
  void packet_delivered(ProcId src, ProcId dst, std::uint64_t uid, sim::Time now);

  /// Failure-status change: an instant marker on the affected processor.
  void fault_marker(const sim::StatusEvent& ev);

  // --- flight recorder ------------------------------------------------------
  /// Completed spans, oldest first (at most config().capacity of them).
  const std::deque<Span>& spans() const noexcept { return ring_; }
  std::uint64_t emitted() const noexcept { return emitted_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  /// Delivery-side milestones, tracked per (chain, destination).
  struct DestState {
    sim::Time gprcv = -1;
    sim::Time tentative = -1;
    sim::Time confirmed = -1;
    bool delivered = false;
  };
  /// One message chain, keyed by label.
  struct MsgChain {
    sim::Time submit = -1;
    sim::Time label = -1;
    sim::Time gpsnd = -1;
    sim::Time board = -1;
    std::map<ProcId, DestState> dests;
  };
  struct PendingProposal {
    core::ViewId gid;
    sim::Time at = 0;
  };

  void push(Span span);
  void phase(const char* name, const core::Label& l, ProcId proc, sim::Time begin,
             sim::Time end);
  MsgChain* chain(const core::Label& l);
  void evict_chains();

  TraceConfig config_;
  std::deque<Span> ring_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;

  // Pending correlation state, all FIFO-bounded by config_.capacity.
  std::map<core::Label, MsgChain> chains_;
  std::deque<core::Label> chain_fifo_;
  std::map<std::uint64_t, core::Label> uid_to_label_;
  std::deque<std::uint64_t> uid_fifo_;
  // In-flight packets. Storage ids are process-unique, so (uid, dst)
  // identifies one delivery even when a multicast shares the allocation.
  std::map<std::pair<std::uint64_t, ProcId>, sim::Time> packets_;
  std::deque<std::pair<std::uint64_t, ProcId>> packet_fifo_;
  std::map<ProcId, std::deque<sim::Time>> submits_;    // unmatched bcast times
  std::map<ProcId, PendingProposal> proposals_;        // open proposal per proc
  std::map<ProcId, std::pair<core::ViewId, sim::Time>> exchanges_;  // newview->established
  std::map<ProcId, std::pair<core::ViewId, sim::Time>> digest_marks_;  // digests collected

  Counter* spans_total_ = nullptr;
  Counter* spans_dropped_ = nullptr;
  std::map<std::string, Histogram*> phase_latency_;
};

}  // namespace vsg::obs
