#include "obs/sampler.hpp"

#include "obs/json_exporter.hpp"
#include "obs/json_util.hpp"
#include "sim/simulator.hpp"
#include "util/hash.hpp"

namespace vsg::obs {

namespace {

using json::append_escaped;
using json::Reader;

}  // namespace

void Sampler::add_source(std::string name, std::function<MetricsSnapshot()> fn) {
  sources_.push_back(Source{std::move(name), std::move(fn)});
}

void Sampler::start(sim::Simulator& sim) {
  if (!cfg_.enabled) return;
  schedule_tick(sim);
}

void Sampler::schedule_tick(sim::Simulator& sim) {
  sim.after(cfg_.interval, [this, &sim] {
    sample_now(sim.now());
    schedule_tick(sim);
  });
}

void Sampler::sample_now(sim::Time now) {
  // Re-sampling the same instant (export-time final sample landing on a
  // tick boundary) replaces rather than duplicates: the last batch at any
  // timestamp is the authoritative one.
  while (!samples_.empty() && samples_.back().at == now) samples_.pop_back();
  for (const Source& src : sources_) {
    TimeseriesSample s;
    s.at = now;
    s.series = src.name;
    s.metrics = strip_wall_metrics(src.fn());
    health_.observe(s.series, now, s.metrics);
    if (cfg_.capacity > 0 && samples_.size() >= cfg_.capacity) {
      samples_.erase(samples_.begin());
      ++dropped_;
    }
    samples_.push_back(std::move(s));
  }
}

TimeseriesDoc Sampler::doc() const {
  TimeseriesDoc d;
  d.interval = cfg_.interval;
  d.dropped = dropped_;
  d.samples = samples_;
  d.health_events = health_.events();
  return d;
}

std::string write_timeseries(const TimeseriesDoc& doc) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"vsg-timeseries-v1\",\n  \"interval_us\": ";
  out += std::to_string(doc.interval);
  out += ",\n  \"dropped\": ";
  out += std::to_string(doc.dropped);
  out += ",\n  \"samples\": [";
  bool first = true;
  for (const TimeseriesSample& s : doc.samples) {
    out += first ? "\n    {\n" : ",\n    {\n";
    first = false;
    out += "      \"at_us\": ";
    out += std::to_string(s.at);
    out += ",\n      \"series\": ";
    append_escaped(out, s.series);
    out += ",\n";
    JsonExporter::append_snapshot_body(out, s.metrics, 6);
    out += "\n    }";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"health_events\": [";
  first = true;
  for (const HealthEvent& e : doc.health_events) {
    out += first ? "\n    {\"at_us\": " : ",\n    {\"at_us\": ";
    first = false;
    out += std::to_string(e.at);
    out += ", \"rule\": ";
    append_escaped(out, e.rule);
    out += ", \"series\": ";
    append_escaped(out, e.series);
    out += ", \"detail\": ";
    append_escaped(out, e.detail);
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::optional<TimeseriesDoc> parse_timeseries(const std::string& json) {
  Reader r(json);
  TimeseriesDoc doc;
  bool schema_ok = false;
  r.object([&](const std::string& key) {
    if (key == "schema") {
      schema_ok = r.string() == "vsg-timeseries-v1";
    } else if (key == "interval_us") {
      doc.interval = r.integer();
    } else if (key == "dropped") {
      doc.dropped = static_cast<std::uint64_t>(r.integer());
    } else if (key == "samples") {
      r.array([&] {
        TimeseriesSample s;
        r.object([&](const std::string& field) {
          if (field == "at_us") {
            s.at = r.integer();
          } else if (field == "series") {
            s.series = r.string();
          } else if (!JsonExporter::parse_snapshot_field(r, field, s.metrics)) {
            r.skip_value();
          }
        });
        doc.samples.push_back(std::move(s));
      });
    } else if (key == "health_events") {
      r.array([&] {
        HealthEvent e;
        r.object([&](const std::string& field) {
          if (field == "at_us") {
            e.at = r.integer();
          } else if (field == "rule") {
            e.rule = r.string();
          } else if (field == "series") {
            e.series = r.string();
          } else if (field == "detail") {
            e.detail = r.string();
          } else {
            r.skip_value();
          }
        });
        doc.health_events.push_back(std::move(e));
      });
    } else {
      r.skip_value();
    }
  });
  if (!r.ok() || !r.at_end() || !schema_ok) return std::nullopt;
  return doc;
}

std::uint64_t timeseries_fingerprint(const TimeseriesDoc& doc) {
  const std::string canon = write_timeseries(doc);
  return util::fnv1a(util::BufferView(
      reinterpret_cast<const std::uint8_t*>(canon.data()), canon.size()));
}

}  // namespace vsg::obs
