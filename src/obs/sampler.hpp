#pragma once

// obs::Sampler — the time dimension of the metrics stack. A
// MetricsRegistry answers "how much, in total"; the paper's conditional
// performance properties (TO-property, Theorems 7.1/7.2) are statements
// about *when*: within how long of a view stabilizing do deliveries
// resume, how fast does a backlog drain after a merge. The sampler
// snapshots every registered source (the World's aggregate registry plus
// each shard's) on a fixed virtual-time interval into an in-memory ring,
// feeds each sample to the obs::Health watchdogs, and serializes the run
// as a `vsg-timeseries-v1` document (docs/OBSERVABILITY.md, "Timelines").
//
// Determinism contract: sampling only *reads* registries — no RNG draws,
// no protocol interaction — so enabling the sampler leaves every protocol
// counter bit-identical to an unsampled run, and a fixed seed produces a
// byte-identical timeline. Snapshots are wall-stripped at capture time
// (obs::strip_wall_metrics), so timelines also compare byte-identical
// across --jobs.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace vsg::sim {
class Simulator;
}

namespace vsg::obs {

struct SamplerConfig {
  /// Off by default: zero events scheduled, zero samples, zero overhead.
  bool enabled = false;
  /// Virtual time between samples.
  sim::Time interval = sim::msec(100);
  /// Ring capacity in samples (one per source per tick); oldest samples
  /// are evicted once full and counted in dropped(). 0 = unbounded.
  std::size_t capacity = 65536;
  HealthConfig health;
};

/// One source's wall-stripped snapshot at one instant.
struct TimeseriesSample {
  sim::Time at = 0;
  std::string series;
  MetricsSnapshot metrics;

  bool operator==(const TimeseriesSample&) const = default;
};

/// In-memory form of a vsg-timeseries-v1 document.
struct TimeseriesDoc {
  sim::Time interval = 0;
  std::uint64_t dropped = 0;
  std::vector<TimeseriesSample> samples;
  std::vector<HealthEvent> health_events;

  bool operator==(const TimeseriesDoc&) const = default;
};

/// Serialize as vsg-timeseries-v1 JSON (byte-stable: fixed key order and
/// indentation, snapshot bodies shared with the vsg-metrics-v1 writer).
std::string write_timeseries(const TimeseriesDoc& doc);

/// Parse a vsg-timeseries-v1 document; nullopt on malformed JSON, wrong
/// schema tag, or malformed histograms. Accepts any standard JSON of this
/// shape, not only the writer's byte layout.
std::optional<TimeseriesDoc> parse_timeseries(const std::string& json);

/// FNV-1a over the canonical serialization — the timeline fingerprint
/// check.sh pins for the fixed-seed K=1 smoke.
std::uint64_t timeseries_fingerprint(const TimeseriesDoc& doc);

class Sampler {
 public:
  explicit Sampler(SamplerConfig cfg) : cfg_(cfg), health_(cfg.health) {}

  const SamplerConfig& config() const noexcept { return cfg_; }
  Health& health() noexcept { return health_; }
  const Health& health() const noexcept { return health_; }

  /// Register a snapshot source. Sources are sampled (and fed to Health)
  /// in registration order each tick; register the aggregate first, then
  /// shards, for stable series ordering in the export.
  void add_source(std::string name, std::function<MetricsSnapshot()> fn);

  /// Begin periodic sampling (no-op when not enabled). The first sample
  /// fires one interval after start; the simulator must outlive this
  /// sampler.
  void start(sim::Simulator& sim);

  /// Capture one sample of every source at `now`, replacing any samples
  /// already taken at exactly `now` (harnesses call this once more at
  /// export time so the final sample reflects the end-of-run registries).
  void sample_now(sim::Time now);

  const std::vector<TimeseriesSample>& samples() const noexcept { return samples_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Assemble the document for write_timeseries.
  TimeseriesDoc doc() const;

 private:
  struct Source {
    std::string name;
    std::function<MetricsSnapshot()> fn;
  };

  void schedule_tick(sim::Simulator& sim);

  SamplerConfig cfg_;
  Health health_;
  std::vector<Source> sources_;
  std::vector<TimeseriesSample> samples_;
  std::uint64_t dropped_ = 0;
};

}  // namespace vsg::obs
