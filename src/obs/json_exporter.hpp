#pragma once

// Machine-readable metrics snapshots. The exporter writes the
// `vsg-metrics-v1` schema documented in docs/OBSERVABILITY.md:
//
//   {
//     "schema": "vsg-metrics-v1",
//     "label": "<free-form producer label>",
//     "counters":   { "<name>": <u64>, ... },
//     "gauges":     { "<name>": <i64>, ... },
//     "histograms": {
//       "<name>": { "unit": "us_sim" | "us_wall" | "count",
//                   "count": <u64>, "sum": <i64>,
//                   "min": <i64>, "max": <i64>,
//                   "bounds":  [<i64>, ...],
//                   "buckets": [<u64>, ...] }   // bounds.size() + 1 entries
//     }
//   }
//
// `parse` reads the same schema back (it accepts any standard JSON with
// this shape, not only the exporter's exact byte layout), so snapshots
// round-trip and downstream tooling can diff BENCH_*.json files.

#include <optional>
#include <string>

#include "obs/json_util.hpp"
#include "obs/metrics.hpp"

namespace vsg::obs {

class JsonExporter {
 public:
  static std::string to_json(const MetricsSnapshot& snapshot,
                             const std::string& label = "");
  static std::string to_json(const MetricsRegistry& registry,
                             const std::string& label = "") {
    return to_json(registry.snapshot(), label);
  }

  /// Write the registry snapshot to `path`; false on I/O failure.
  static bool write_file(const MetricsRegistry& registry, const std::string& path,
                         const std::string& label = "");

  /// Parse a vsg-metrics-v1 document. nullopt on malformed JSON, wrong
  /// schema tag, or a histogram whose buckets/bounds sizes disagree.
  static std::optional<MetricsSnapshot> parse(const std::string& json);

  /// The label field of a vsg-metrics-v1 document ("" when absent).
  static std::string parse_label(const std::string& json);

  /// Append the `"counters": {...}, "gauges": {...}, "histograms": {...}`
  /// body of a snapshot (no surrounding braces, no trailing comma), with
  /// each top-level key indented by `indent` spaces. to_json and the
  /// vsg-timeseries-v1 writer share this so both schemas encode snapshots
  /// byte-identically.
  static void append_snapshot_body(std::string& out, const MetricsSnapshot& snap,
                                   int indent);

  /// Parse one of the body keys written by append_snapshot_body into
  /// `snap`; the reader must be positioned at the key's value. Returns
  /// false (consuming nothing) when `key` is not a body key. Fails the
  /// reader on malformed histograms (bad unit, buckets/bounds mismatch).
  static bool parse_snapshot_field(json::Reader& r, const std::string& key,
                                   MetricsSnapshot& snap);
};

/// `--export PATH` / `--export=PATH` from a bench's argv; nullopt when the
/// flag is absent. All converted benches share this flag.
std::optional<std::string> export_path_from_args(int argc, char** argv);

}  // namespace vsg::obs
