#pragma once

// obs::Health — declarative watchdog rules over sampled metric series.
//
// The paper specifies the service by *conditional performance properties*:
// once a view stabilizes, deliveries happen within a bound. End-of-run
// counters cannot say when such a condition was violated mid-run; the
// watchdogs evaluate every obs::Sampler window and flag the three failure
// shapes the roadmap's flow-control and recovery work will be judged by:
//
//   token_stall       — ring.token_rotations made no progress for
//                       `stall_after` of virtual time while the liveness
//                       probe says at least one member is up. Singleton
//                       views still rotate their parked token, so a global
//                       stall means formation limbo or a liveness bug (the
//                       class of the historical stuck-proposal find).
//   backlog_growth    — a backlog gauge (ring.backlog_depth,
//                       to.pending_labels) strictly increased over
//                       `growth_windows` consecutive samples: offered load
//                       is outrunning the ordering rate without bound.
//   view_convergence  — view formation activity (ring.formation_rounds)
//                       was observed, but no process established a primary
//                       view (to.primary_established) within
//                       `convergence_bound` — the premise of the paper's
//                       TO-property never re-arms.
//
// Rules are edge-triggered: one event per episode, re-armed when the
// series recovers. Health consumes only sampled snapshots, so verdicts are
// a deterministic function of the sample stream — fixed seeds reproduce
// the same health_events byte for byte, which is what lets the chaos
// campaign treat them as (soft) oracle verdicts and ddmin preserve them.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace vsg::obs {

struct HealthConfig {
  bool token_stall = true;
  /// T: no ring.token_rotations progress for this long (while live) stalls.
  sim::Time stall_after = sim::msec(500);
  bool backlog_growth = true;
  /// W: consecutive strictly-increasing samples before a backlog gauge is
  /// declared unbounded.
  int growth_windows = 8;
  bool view_convergence = true;
  /// Bound from first formation activity to a primary establishment.
  sim::Time convergence_bound = sim::sec(2);
};

/// One watchdog firing, as recorded in the vsg-timeseries-v1 export.
struct HealthEvent {
  sim::Time at = 0;
  std::string rule;    // "token_stall" | "backlog_growth" | "view_convergence"
  std::string series;  // sampler source that tripped it ("aggregate", "shard1", ...)
  std::string detail;

  bool operator==(const HealthEvent&) const = default;
};

/// The "health: <rule> [<series>] at <t>us: <detail>" string the chaos
/// campaign records as a soft-oracle verdict (and classifies shrink
/// candidates by).
std::string to_verdict(const HealthEvent& e);

class Health {
 public:
  explicit Health(HealthConfig cfg) : cfg_(cfg) {}

  /// Publish health.* counters into `registry` (health.token_stall,
  /// health.backlog_growth, health.view_convergence, one inc per event).
  void bind_metrics(MetricsRegistry& registry);

  /// Liveness probe for the stall rule: "is at least one member up right
  /// now?". Unset means assume live (rule fires on any stall).
  void set_liveness(std::function<bool()> fn) { live_ = std::move(fn); }

  /// Feed the next sample of series `name`; evaluates every enabled rule.
  /// Samples of one series must arrive in nondecreasing time order.
  void observe(const std::string& series, sim::Time at, const MetricsSnapshot& snap);

  const std::vector<HealthEvent>& events() const noexcept { return events_; }

  /// Campaign-facing verdicts: one "health: <rule> ..." line per event,
  /// the format the chaos shrinker classifies by.
  std::vector<std::string> verdicts() const;

 private:
  struct GaugeWatch {
    std::int64_t last = 0;
    int streak = 0;       // consecutive strictly-increasing samples
    bool flagged = false; // episode already reported
  };
  struct SeriesState {
    bool seen = false;
    std::uint64_t rotations = 0;
    sim::Time rotation_progress_at = 0;
    bool live_since_progress = false;  // probe held at some sample in the window
    bool stall_flagged = false;
    std::map<std::string, GaugeWatch> backlog;
    std::uint64_t formation_rounds = 0;
    std::uint64_t established = 0;
    sim::Time formation_seen_at = 0;
    bool awaiting_convergence = false;
    bool convergence_flagged = false;
  };

  void emit(const std::string& rule, const std::string& series, sim::Time at,
            std::string detail, Counter* metric);

  HealthConfig cfg_;
  std::function<bool()> live_;
  std::map<std::string, SeriesState> state_;
  std::vector<HealthEvent> events_;
  Counter* ev_stall_ = nullptr;
  Counter* ev_growth_ = nullptr;
  Counter* ev_convergence_ = nullptr;
};

}  // namespace vsg::obs
