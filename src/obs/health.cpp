#include "obs/health.hpp"

#include <algorithm>

namespace vsg::obs {

namespace {

const std::uint64_t* counter_value(const MetricsSnapshot& snap, const std::string& name) {
  const auto it = std::lower_bound(
      snap.counters.begin(), snap.counters.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  return it != snap.counters.end() && it->first == name ? &it->second : nullptr;
}

const std::int64_t* gauge_value(const MetricsSnapshot& snap, const std::string& name) {
  const auto it = std::lower_bound(
      snap.gauges.begin(), snap.gauges.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  return it != snap.gauges.end() && it->first == name ? &it->second : nullptr;
}

}  // namespace

void Health::bind_metrics(MetricsRegistry& registry) {
  ev_stall_ = &registry.counter("health.token_stall");
  ev_growth_ = &registry.counter("health.backlog_growth");
  ev_convergence_ = &registry.counter("health.view_convergence");
}

void Health::emit(const std::string& rule, const std::string& series, sim::Time at,
                  std::string detail, Counter* metric) {
  events_.push_back(HealthEvent{at, rule, series, std::move(detail)});
  bump(metric);
}

void Health::observe(const std::string& series, sim::Time at,
                     const MetricsSnapshot& snap) {
  SeriesState& st = state_[series];
  const bool live = !live_ || live_();

  // --- token_stall -------------------------------------------------------
  // Skipped entirely while the counter is absent (spec-backend Worlds have
  // no ring); present-but-flat-at-zero is a ring that never launched, which
  // does count as a stall.
  const std::uint64_t* rot_ptr =
      cfg_.token_stall ? counter_value(snap, "ring.token_rotations") : nullptr;
  if (cfg_.token_stall && rot_ptr != nullptr) {
    const std::uint64_t rot = *rot_ptr;
    if (!st.seen || rot != st.rotations) {
      st.rotations = rot;
      st.rotation_progress_at = at;
      st.live_since_progress = false;
      st.stall_flagged = false;  // progress re-arms the episode
    }
    // A stall only counts against windows where the liveness probe held:
    // all-members-down quiet periods are expected, not watchdog material.
    if (live) st.live_since_progress = true;
    if (!st.stall_flagged && st.live_since_progress && live &&
        at - st.rotation_progress_at >= cfg_.stall_after) {
      emit("token_stall", series, at,
           "ring.token_rotations flat at " + std::to_string(st.rotations) + " for " +
               std::to_string(at - st.rotation_progress_at) + "us with members live",
           ev_stall_);
      st.stall_flagged = true;
    }
  }

  // --- backlog_growth ----------------------------------------------------
  if (cfg_.backlog_growth) {
    for (const char* name : {"ring.backlog_depth", "to.pending_labels"}) {
      const std::int64_t* v = gauge_value(snap, name);
      if (v == nullptr) continue;
      GaugeWatch& w = st.backlog[name];
      if (st.seen && *v > w.last) {
        ++w.streak;
      } else if (st.seen && *v < w.last) {
        w.streak = 0;
        w.flagged = false;  // drain re-arms the episode
      }
      // Equal samples neither extend nor reset the streak: a plateau is
      // not unbounded growth, but it also is not a drain.
      w.last = *v;
      if (!w.flagged && w.streak >= cfg_.growth_windows) {
        emit("backlog_growth", series, at,
             std::string(name) + " rose for " + std::to_string(w.streak) +
                 " consecutive windows to " + std::to_string(*v),
             ev_growth_);
        w.flagged = true;
      }
    }
  }

  // --- view_convergence --------------------------------------------------
  if (cfg_.view_convergence) {
    const std::uint64_t* r = counter_value(snap, "ring.formation_rounds");
    const std::uint64_t* e = counter_value(snap, "to.primary_established");
    const std::uint64_t rounds = r != nullptr ? *r : 0;
    const std::uint64_t est = e != nullptr ? *e : 0;
    if (st.seen && est != st.established) {
      // Any primary establishment settles every pending formation episode.
      st.awaiting_convergence = false;
      st.convergence_flagged = false;
    }
    if (st.seen && rounds != st.formation_rounds && !st.awaiting_convergence) {
      st.awaiting_convergence = true;
      st.formation_seen_at = at;
    }
    if (st.awaiting_convergence && !st.convergence_flagged &&
        at - st.formation_seen_at >= cfg_.convergence_bound) {
      emit("view_convergence", series, at,
           "formation activity at " + std::to_string(st.formation_seen_at) +
               "us but no primary established within " +
               std::to_string(cfg_.convergence_bound) + "us",
           ev_convergence_);
      st.convergence_flagged = true;
    }
    st.formation_rounds = rounds;
    st.established = est;
  }

  st.seen = true;
}

std::string to_verdict(const HealthEvent& e) {
  return "health: " + e.rule + " [" + e.series + "] at " + std::to_string(e.at) +
         "us: " + e.detail;
}

std::vector<std::string> Health::verdicts() const {
  std::vector<std::string> out;
  out.reserve(events_.size());
  for (const HealthEvent& e : events_) out.push_back(to_verdict(e));
  return out;
}

}  // namespace vsg::obs
