#pragma once

// Chrome trace-event JSON export for SpanTracer: loadable by Perfetto
// (ui.perfetto.dev) and chrome://tracing. One trace "process" per simulated
// processor, one named thread (track) per layer (to / ring / net / view /
// fault). Message and view lifecycles use async begin/end events
// (ph "b"/"e") because phases of different payloads overlap without
// nesting on one processor — async events are the trace-event primitive
// for exactly that shape; instants (fault markers, primary-established)
// use ph "i". Timestamps are simulated microseconds, which is the unit
// the format expects.

#include <string>
#include <vector>

#include "obs/span.hpp"

namespace vsg::obs {

/// The full trace document: {"traceEvents": [...]} with process/thread
/// metadata, globally sorted by timestamp (so per-track timestamps are
/// monotone, which validate_chrome_trace and some viewers require).
std::string chrome_trace_json(const SpanTracer& tracer);

/// Merge several tracers (one per shard in a multi-shard World) into one
/// document. Null entries are skipped; spans keep their per-tracer name
/// prefixes, which is what keeps equal-label chains from different shards
/// on distinct tracks.
std::string chrome_trace_json(const std::vector<const SpanTracer*>& tracers);

/// chrome_trace_json to a file; false on I/O failure.
bool write_chrome_trace_file(const SpanTracer& tracer, const std::string& path);
bool write_chrome_trace_file(const std::vector<const SpanTracer*>& tracers,
                             const std::string& path);

/// Schema check used by tests and scripts/check.sh: parses the document and
/// verifies (1) it is well-formed JSON with a traceEvents array, (2) every
/// event's ph is one of M/b/e/i with name, pid, tid, ts (and id for b/e),
/// (3) timestamps are monotone non-decreasing per (pid, tid) track, and
/// (4) every async begin has a matching end (same cat, id, name, pid) and
/// vice versa. Returns human-readable problems; empty means valid.
std::vector<std::string> validate_chrome_trace(const std::string& json);

}  // namespace vsg::obs
