#pragma once

// Wall-clock measurement for benches: simulated time tells us what the
// *model* predicts; wall time tells us what the simulator itself costs.
// Samples land in Unit::kWallMicros histograms so exported snapshots keep
// the two time bases apart.

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace vsg::obs {

inline std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Observes the elapsed wall microseconds into a histogram on destruction.
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(Histogram& hist) : hist_(&hist), start_(wall_now_us()) {}
  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;
  ~ScopedWallTimer() { hist_->observe(wall_now_us() - start_); }

 private:
  Histogram* hist_;
  std::int64_t start_;
};

}  // namespace vsg::obs
