#pragma once

// Observability primitives: counters, gauges and fixed-bucket histograms,
// collected in a MetricsRegistry that every layer of an assembled World
// reports into (net packets, ring protocol activity, VStoTO order depth,
// TO-level bcast->brcv latency). The registry is the measurement
// counterpart of the trace::Recorder: the recorder captures *what*
// happened for the safety checkers, the registry captures *how much / how
// fast* for the performance properties (TO-property, Theorem 7.1/7.2) and
// the BENCH_*.json trajectory.
//
// Design notes:
//  - get-or-create by name; references returned by the registry are stable
//    for its lifetime (node-based map), so hot paths cache Counter*/
//    Histogram* once at bind time and pay one pointer increment per event;
//  - histograms carry a time unit (simulated vs wall microseconds) so an
//    exported snapshot is self-describing;
//  - no locking: a registry belongs to one World and each World runs on
//    one thread. Parallel chaos/bench runs give every World its own
//    registry and fold them afterwards with merge_from (deterministic in
//    fold order) — registries are never shared across threads.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vsg::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level; may go up and down.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t delta) noexcept { value_ += delta; }
  /// Retain the maximum of the current value and v (watermark gauges).
  void max_of(std::int64_t v) noexcept {
    if (v > value_) value_ = v;
  }
  std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Increment through a possibly-unbound cached counter pointer (layers
/// keep null pointers until bind_metrics is called).
inline void bump(Counter* c, std::uint64_t delta = 1) noexcept {
  if (c != nullptr) c->inc(delta);
}

/// What a histogram's samples measure. Simulated time and wall-clock time
/// are both microseconds but must never be mixed in one series.
enum class Unit : std::uint8_t { kSimMicros, kWallMicros, kCount };

const char* to_string(Unit u) noexcept;

struct HistogramSnapshot;

/// Fixed-bucket histogram: `bounds` are strictly increasing inclusive
/// upper bounds; one implicit +inf bucket is appended. Also tracks count,
/// sum, min and max exactly.
class Histogram {
 public:
  Histogram(std::vector<std::int64_t> bounds, Unit unit);

  void observe(std::int64_t sample) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::int64_t sum() const noexcept { return sum_; }
  /// Exact extremes; 0 when empty.
  std::int64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const noexcept { return count_ == 0 ? 0 : max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  Unit unit() const noexcept { return unit_; }

  const std::vector<std::int64_t>& bounds() const noexcept { return bounds_; }
  /// buckets()[i] counts samples <= bounds()[i]; the last entry (index
  /// bounds().size()) is the overflow (+inf) bucket. Non-cumulative.
  const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

  /// Upper bound of the bucket containing quantile q in (0, 1]; max() when
  /// q lands in the overflow bucket, 0 when empty. A bucketed estimate,
  /// not an exact order statistic.
  std::int64_t quantile_upper(double q) const noexcept;

  /// Add another series of this exact shape (same unit, same bounds):
  /// buckets and count/sum add, min/max combine. False (no change) on a
  /// shape mismatch. Basis of MetricsRegistry::merge_from.
  bool merge(const HistogramSnapshot& other) noexcept;

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  Unit unit_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Default latency buckets in microseconds: 250us .. 10s, roughly 1-2-5
/// per decade. Suits both message latencies (~ms) and stabilization times
/// (~100ms..s) under the default TokenRingConfig.
std::vector<std::int64_t> default_latency_buckets();

/// Everything a registry holds, frozen for export. Entries are sorted by
/// name (the registry iterates its ordered maps).
struct HistogramSnapshot {
  std::string name;
  Unit unit = Unit::kSimMicros;
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;

  bool operator==(const HistogramSnapshot&) const = default;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// The wall-clock exclusion list, centralized. True for metrics that
/// measure *this invocation* (elapsed wall time, worker counts) rather than
/// the simulated execution: the trailing dot-component contains "wall"
/// (bench.run_wall, bench.sweep_wall_us, chaos.campaign.wall_us) or is
/// exactly "jobs" (bench.jobs, chaos.campaign.jobs). Every bit-identical
/// fixed-seed comparison — check.sh fingerprints, determinism tests, the
/// vsg-timeseries-v1 export — must exclude exactly this set, so the
/// knowledge lives here instead of ad-hoc in scripts and tests. Prefixed
/// shard series ("shard0.bench.run_wall") classify like their base name.
bool is_wall_metric(const std::string& name);

/// is_wall_metric, strengthened with the series unit: any kWallMicros
/// histogram is wall-clock regardless of its name.
bool is_wall_metric(const std::string& name, Unit unit);

/// Copy of `snap` with every wall-clock entry removed (counters and gauges
/// by name, histograms by name or kWallMicros unit). What the timeline
/// export writes, so fixed-seed timelines are byte-identical across --jobs.
MetricsSnapshot strip_wall_metrics(const MetricsSnapshot& snap);

class MetricsRegistry {
 public:
  /// Get-or-create. Returned references are stable for the registry's
  /// lifetime; hot paths should cache them.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` empty means default_latency_buckets(). If the histogram
  /// already exists, unit/bounds arguments are ignored.
  Histogram& histogram(const std::string& name, Unit unit = Unit::kSimMicros,
                       std::vector<std::int64_t> bounds = {});

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  MetricsSnapshot snapshot() const;

  /// Fold another registry's snapshot into this one: counters add, gauges
  /// add, histograms add bucket-wise (created here with the source's
  /// unit/bounds when absent). Merging is commutative and associative over
  /// these operations, so folding per-World registries in a fixed (seed)
  /// order yields the same totals as any other order — and the same totals
  /// one shared registry would have accumulated single-threaded. A
  /// histogram that already exists under the same name with a different
  /// unit or bounds is a series mix-up; its samples are dropped and the
  /// merge reports false (all other entries still merge).
  bool merge_from(const MetricsSnapshot& other);
  bool merge_from(const MetricsRegistry& other) { return merge_from(other.snapshot()); }

  /// merge_from with every incoming name prepended with `prefix` (e.g.
  /// "shard1."). Shard-scoped registries fold into one aggregate registry
  /// twice — once unprefixed (cross-shard totals) and once prefixed
  /// (per-shard view) — and the prefix guarantees shard0.ring.* can never
  /// alias shard1.ring.* or the unprefixed aggregate series.
  bool merge_from(const MetricsSnapshot& other, const std::string& prefix);
  bool merge_from(const MetricsRegistry& other, const std::string& prefix) {
    return merge_from(other.snapshot(), prefix);
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace vsg::obs
