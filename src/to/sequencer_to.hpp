#pragma once

// Baseline: sequencer-based totally ordered broadcast WITHOUT group
// membership — the classic Isis-era design the paper positions itself
// against ("The Isis system was designed for an environment where ...
// the network does not partition", Section 1).
//
// Processor 0 is the fixed sequencer: every bcast is forwarded to it, it
// stamps a global sequence number and rebroadcasts; receivers deliver in
// stamp order, buffering gaps and NACKing missing stamps on a timer (the
// sequencer keeps full history for retransmission).
//
// Safety: its traces satisfy the same TO specification (one total order,
// per-sender FIFO via sequencer-side per-sender queues? no — FIFO holds
// because each sender's values reach the sequencer over one FIFO-by-
// retransmission channel; see note below). Liveness: NONE of the paper's
// conditional guarantees hold under partition — any component without the
// sequencer stalls completely, and the sequencer's component delivers only
// its own submissions. bench_baseline compares this against VStoTO, which
// keeps every quorum component live and reconciles on merge.
//
// Note on per-sender FIFO: the network may reorder two submissions from
// one sender in flight to the sequencer, which would break TO's
// per-sender-order requirement. Senders therefore tag submissions with a
// per-sender sequence number and the sequencer orders each sender's
// stream by it (buffering gaps), exactly like a FIFO channel
// implementation would.

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "to/service.hpp"
#include "trace/recorder.hpp"

namespace vsg::to {

struct SequencerConfig {
  /// The fixed sequencer processor.
  ProcId sequencer = 0;
  /// Receivers NACK missing stamps at this interval.
  sim::Time nack_interval = sim::msec(50);
};

class SequencerTO final : public Service {
 public:
  SequencerTO(sim::Simulator& simulator, net::Network& network, trace::Recorder& recorder,
              SequencerConfig config);

  int size() const override { return network_->size(); }
  void bcast(ProcId p, core::Value a) override;
  void attach(ProcId p, Client& client) override;
  void set_delivery(DeliveryFn fn) override { delivery_ = std::move(fn); }

  /// Values delivered at p so far (origin, value), in order.
  const std::vector<std::pair<ProcId, core::Value>>& delivered(ProcId p) const {
    return delivered_[static_cast<std::size_t>(p)];
  }

 private:
  struct Stamped {
    std::uint64_t seq;
    ProcId origin;
    core::Value value;
  };

  void on_packet(ProcId me, ProcId src, const util::Buffer& packet);
  void sequencer_admit(ProcId origin, std::uint64_t sender_seq, core::Value a);
  void stamp_and_broadcast(ProcId origin, core::Value a);
  void receiver_accept(ProcId me, const Stamped& s);
  void nack_tick(ProcId me);

  sim::Simulator* sim_;
  net::Network* network_;
  trace::Recorder* recorder_;
  SequencerConfig config_;
  DeliveryFn delivery_;

  // Sender side: per-sender submission counters.
  std::vector<std::uint64_t> sender_seq_;

  // Sequencer side.
  std::uint64_t next_stamp_ = 1;
  std::vector<std::uint64_t> admitted_;                      // per-sender next expected
  std::map<std::pair<ProcId, std::uint64_t>, core::Value> admit_buffer_;  // out-of-order
  std::vector<Stamped> history_;                             // for retransmission

  // Receiver side.
  std::vector<std::uint64_t> next_deliver_;                  // per-receiver next stamp
  std::vector<std::map<std::uint64_t, Stamped>> reorder_;    // per-receiver gap buffer
  std::vector<std::vector<std::pair<ProcId, core::Value>>> delivered_;
  std::vector<Client*> clients_;  // per-processor delivery clients
};

}  // namespace vsg::to
