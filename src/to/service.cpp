#include "to/service.hpp"
// Interface-only translation unit.
namespace vsg::to {}
