#include "to/stack.hpp"

#include <cassert>

namespace vsg::to {

Stack::Stack(vs::Service& vs_service, trace::Recorder& recorder,
             std::shared_ptr<const core::QuorumSystem> quorums, int n0,
             vstoto::ExchangeMode exchange)
    : recorder_(&recorder) {
  const int n = vs_service.size();
  procs_.reserve(static_cast<std::size_t>(n));
  clients_.resize(static_cast<std::size_t>(n), nullptr);
  for (ProcId p = 0; p < n; ++p) {
    auto proc = std::make_unique<vstoto::Process>(p, n0, quorums, vs_service, recorder);
    proc->set_exchange_mode(exchange);
    proc->set_delivery([this, p](ProcId origin, const core::Value& a) {
      on_deliver(p, origin, a);
    });
    // One decode-once cache per stack: the VS back end hands every process
    // the same shared payload buffers, so fan-in decodes hit across
    // processes, not just across the gprcv/safe pair.
    proc->set_decode_cache(&decode_cache_);
    vs_service.attach(p, *proc);
    procs_.push_back(std::move(proc));
  }
}

void Stack::bcast(ProcId p, core::Value a) {
  assert(p >= 0 && p < size());
  if (admission_max_ > 0 && gate_holds(p)) {
    // Defer policy: queue FIFO behind the congestion; on_ring_drain admits
    // it once the transport frees capacity (docs/FLOWCONTROL.md).
    deferred_[static_cast<std::size_t>(p)].push_back({std::move(a), recorder_->now()});
    if (sends_deferred_ != nullptr) sends_deferred_->inc();
    return;
  }
  admit(p, std::move(a), 0);
}

bool Stack::trysend(ProcId p, core::Value a) {
  assert(p >= 0 && p < size());
  if (admission_max_ > 0 && gate_holds(p)) {
    // Shed policy: the caller chose losing this sample over queueing it.
    if (sends_shed_ != nullptr) sends_shed_->inc();
    return false;
  }
  admit(p, std::move(a), 0);
  return true;
}

bool Stack::gate_holds(ProcId p) const {
  return !deferred_[static_cast<std::size_t>(p)].empty() ||
         admission_backlog_(p) >= admission_max_;
}

void Stack::admit(ProcId p, core::Value a, sim::Time waited) {
  if (admission_wait_ != nullptr) admission_wait_->observe(waited);
  if (latency_all_ != nullptr)
    bcast_times_[static_cast<std::size_t>(p)].push_back(recorder_->now());
  procs_[static_cast<std::size_t>(p)]->bcast(std::move(a));
}

void Stack::arm_admission(std::size_t max_backlog, std::function<std::size_t(ProcId)> backlog,
                          obs::MetricsRegistry& registry) {
  assert(max_backlog > 0 && backlog != nullptr);
  admission_max_ = max_backlog;
  admission_backlog_ = std::move(backlog);
  deferred_.assign(static_cast<std::size_t>(size()), {});
  sends_deferred_ = &registry.counter("ring.sends_deferred");
  sends_shed_ = &registry.counter("ring.sends_shed");
  admission_wait_ = &registry.histogram("to.admission_wait");
}

void Stack::on_ring_drain(ProcId p) {
  if (admission_max_ == 0) return;
  auto& q = deferred_[static_cast<std::size_t>(p)];
  // Each admission re-submits through the VStoTO process, growing the
  // backlog again — re-check the gate per value so a drain admits exactly
  // as many deferred sends as the freed capacity covers.
  while (!q.empty() && admission_backlog_(p) < admission_max_) {
    Deferred d = std::move(q.front());
    q.pop_front();
    admit(p, std::move(d.value), recorder_->now() - d.since);
  }
}

void Stack::attach(ProcId p, Client& client) {
  assert(p >= 0 && p < size());
  clients_[static_cast<std::size_t>(p)] = &client;
}

void Stack::set_delivery(DeliveryFn fn) { delivery_ = std::move(fn); }

void Stack::bind_metrics(obs::MetricsRegistry& registry) {
  vstoto::ProcessObs obs;
  obs.labels_assigned = &registry.counter("to.labels_assigned");
  obs.values_sent = &registry.counter("to.values_sent");
  obs.summaries_sent = &registry.counter("to.summaries_sent");
  obs.summaries_received = &registry.counter("to.summaries_received");
  obs.digests_sent = &registry.counter("to.digests_sent");
  obs.digests_received = &registry.counter("to.digests_received");
  obs.deltas_sent = &registry.counter("to.deltas_sent");
  obs.deltas_received = &registry.counter("to.deltas_received");
  obs.payload_copies = &registry.counter("to.payload_copies");
  obs.payload_moves = &registry.counter("to.payload_moves");
  obs.order_depth = &registry.gauge("to.order_depth");
  obs.confirmed_depth = &registry.gauge("to.confirmed_depth");
  obs.pending_labels = &registry.gauge("to.pending_labels");
  obs.views_established = &registry.counter("to.views_established");
  obs.primary_established = &registry.counter("to.primary_established");
  obs.decode_hits = &registry.counter("to.decode_hits");
  obs.decode_misses = &registry.counter("to.decode_misses");
  for (auto& proc : procs_) proc->bind_metrics(obs);

  latency_all_ = &registry.histogram("to.brcv_latency.all");
  latency_per_proc_.assign(static_cast<std::size_t>(size()), nullptr);
  for (ProcId p = 0; p < size(); ++p)
    latency_per_proc_[static_cast<std::size_t>(p)] =
        &registry.histogram("to.brcv_latency.p" + std::to_string(p));
  bcast_times_.assign(static_cast<std::size_t>(size()), {});
  deliver_index_.assign(static_cast<std::size_t>(size()),
                        std::vector<std::size_t>(static_cast<std::size_t>(size()), 0));
}

void Stack::set_tracer(obs::SpanTracer* tracer) {
  for (auto& proc : procs_) proc->set_tracer(tracer);
}

void Stack::on_deliver(ProcId dest, ProcId origin, const core::Value& a) {
  if (latency_all_ != nullptr) {
    // TO's per-sender FIFO: the k-th delivery at dest from origin is
    // origin's k-th submission; its bcast timestamp gives the latency.
    std::size_t& k = deliver_index_[static_cast<std::size_t>(dest)]
                                   [static_cast<std::size_t>(origin)];
    const auto& times = bcast_times_[static_cast<std::size_t>(origin)];
    if (k < times.size()) {
      const sim::Time lat = recorder_->now() - times[k];
      latency_all_->observe(lat);
      latency_per_proc_[static_cast<std::size_t>(dest)]->observe(lat);
    }
    ++k;
  }
  if (clients_[static_cast<std::size_t>(dest)] != nullptr)
    clients_[static_cast<std::size_t>(dest)]->on_brcv(origin, a);
  if (delivery_) delivery_(dest, origin, a);
}

}  // namespace vsg::to
