#include "to/stack.hpp"

#include <cassert>

namespace vsg::to {

Stack::Stack(vs::Service& vs_service, trace::Recorder& recorder,
             std::shared_ptr<const core::QuorumSystem> quorums, int n0) {
  const int n = vs_service.size();
  procs_.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    auto proc = std::make_unique<vstoto::Process>(p, n0, quorums, vs_service, recorder);
    proc->set_delivery([this, p](ProcId origin, const core::Value& a) {
      if (delivery_) delivery_(p, origin, a);
    });
    vs_service.attach(p, *proc);
    procs_.push_back(std::move(proc));
  }
}

void Stack::bcast(ProcId p, core::Value a) {
  assert(p >= 0 && p < size());
  procs_[static_cast<std::size_t>(p)]->bcast(std::move(a));
}

void Stack::set_delivery(DeliveryFn fn) { delivery_ = std::move(fn); }

}  // namespace vsg::to
