#include "to/sequencer_to.hpp"

#include <cassert>

#include "util/hash.hpp"

namespace vsg::to {
namespace {

constexpr std::uint8_t kMsgSubmit = 1;   // sender -> sequencer
constexpr std::uint8_t kMsgStamped = 2;  // sequencer -> everyone
constexpr std::uint8_t kMsgNack = 3;     // receiver -> sequencer

// Checksum framing (u32 checksum | u32 length | body) built in a single
// buffer: reserve the measured size, write a placeholder checksum, the body,
// then back-patch. `Framer` keeps the call sites one-liner-ish.
class Framer {
 public:
  explicit Framer(std::size_t body_size) {
    e_.reserve(8 + body_size);
    e_.u32(0);  // checksum placeholder
    e_.u32(static_cast<std::uint32_t>(body_size));
  }
  util::Encoder& body() noexcept { return e_; }
  util::Buffer finish() {
    e_.patch_u32(0, static_cast<std::uint32_t>(util::fnv1a(
                        util::BufferView(e_.bytes().data() + 8, e_.size() - 8))));
    return e_.finish();
  }

 private:
  util::Encoder e_;
};

std::optional<util::Buffer> unframe(const util::Buffer& packet) {
  util::Decoder d(packet);
  const std::uint32_t checksum = d.u32();
  util::Buffer body = d.raw_buffer();  // zero-copy slice of packet
  if (!d.complete()) return std::nullopt;
  if (checksum != static_cast<std::uint32_t>(util::fnv1a(body.view()))) return std::nullopt;
  return body;
}

}  // namespace

SequencerTO::SequencerTO(sim::Simulator& simulator, net::Network& network,
                         trace::Recorder& recorder, SequencerConfig config)
    : sim_(&simulator),
      network_(&network),
      recorder_(&recorder),
      config_(config),
      sender_seq_(static_cast<std::size_t>(network.size()), 0),
      admitted_(static_cast<std::size_t>(network.size()), 1),
      next_deliver_(static_cast<std::size_t>(network.size()), 1),
      reorder_(static_cast<std::size_t>(network.size())),
      delivered_(static_cast<std::size_t>(network.size())),
      clients_(static_cast<std::size_t>(network.size()), nullptr) {
  assert(config_.sequencer >= 0 && config_.sequencer < network.size());
  for (ProcId p = 0; p < network.size(); ++p) {
    network_->attach(p, [this, p](ProcId src, const util::Buffer& pkt) {
      on_packet(p, src, pkt);
    });
    sim_->after(config_.nack_interval + p, [this, p] { nack_tick(p); });
  }
}

void SequencerTO::bcast(ProcId p, core::Value a) {
  recorder_->record(trace::BcastEvent{p, a});
  const std::uint64_t seq = ++sender_seq_[static_cast<std::size_t>(p)];
  if (p == config_.sequencer) {
    sequencer_admit(p, seq, std::move(a));
    return;
  }
  Framer f(1 + 8 + 4 + a.size());
  f.body().u8(kMsgSubmit);
  f.body().u64(seq);
  f.body().str(a);
  network_->send(p, config_.sequencer, f.finish());
}

void SequencerTO::sequencer_admit(ProcId origin, std::uint64_t sender_seq, core::Value a) {
  // Admit each sender's stream in submission order (buffer gaps), so the
  // global order respects per-sender FIFO even if the network reordered.
  auto& expected = admitted_[static_cast<std::size_t>(origin)];
  if (sender_seq < expected) return;  // duplicate
  admit_buffer_[{origin, sender_seq}] = std::move(a);
  for (;;) {
    const auto it = admit_buffer_.find({origin, expected});
    if (it == admit_buffer_.end()) break;
    stamp_and_broadcast(origin, std::move(it->second));
    admit_buffer_.erase(it);
    ++expected;
  }
}

void SequencerTO::stamp_and_broadcast(ProcId origin, core::Value a) {
  const Stamped stamped{next_stamp_++, origin, std::move(a)};
  history_.push_back(stamped);
  Framer f(1 + 8 + 4 + 4 + stamped.value.size());
  f.body().u8(kMsgStamped);
  f.body().u64(stamped.seq);
  f.body().u32(static_cast<std::uint32_t>(stamped.origin));
  f.body().str(stamped.value);
  // One shared buffer for the whole rebroadcast.
  std::vector<ProcId> dests;
  for (ProcId q = 0; q < network_->size(); ++q)
    if (q != config_.sequencer) dests.push_back(q);
  if (!dests.empty()) network_->multicast(config_.sequencer, dests, f.finish());
  receiver_accept(config_.sequencer, stamped);
}

void SequencerTO::attach(ProcId p, Client& client) {
  assert(p >= 0 && p < size());
  clients_[static_cast<std::size_t>(p)] = &client;
}

void SequencerTO::receiver_accept(ProcId me, const Stamped& s) {
  auto& next = next_deliver_[static_cast<std::size_t>(me)];
  if (s.seq < next) return;  // duplicate (retransmission)
  reorder_[static_cast<std::size_t>(me)].emplace(s.seq, s);
  auto& pending = reorder_[static_cast<std::size_t>(me)];
  for (;;) {
    const auto it = pending.find(next);
    if (it == pending.end()) break;
    const Stamped& ready = it->second;
    recorder_->record(trace::BrcvEvent{ready.origin, me, ready.value});
    delivered_[static_cast<std::size_t>(me)].emplace_back(ready.origin, ready.value);
    if (clients_[static_cast<std::size_t>(me)] != nullptr)
      clients_[static_cast<std::size_t>(me)]->on_brcv(ready.origin, ready.value);
    if (delivery_) delivery_(me, ready.origin, ready.value);
    pending.erase(it);
    ++next;
  }
}

void SequencerTO::on_packet(ProcId me, ProcId src, const util::Buffer& packet) {
  const auto body = unframe(packet);
  if (!body.has_value()) return;
  util::Decoder d(*body);
  const std::uint8_t tag = d.u8();
  if (tag == kMsgSubmit && me == config_.sequencer) {
    const std::uint64_t seq = d.u64();
    core::Value a = d.str();
    if (d.complete()) sequencer_admit(src, seq, std::move(a));
  } else if (tag == kMsgStamped) {
    Stamped s;
    s.seq = d.u64();
    s.origin = static_cast<ProcId>(d.u32());
    s.value = d.str();
    if (d.complete()) receiver_accept(me, s);
  } else if (tag == kMsgNack && me == config_.sequencer) {
    const std::uint64_t from = d.u64();
    if (!d.complete()) return;
    // Retransmit everything the receiver is missing (bounded burst).
    for (std::uint64_t seq = from; seq < next_stamp_ && seq < from + 64; ++seq) {
      const Stamped& s = history_[static_cast<std::size_t>(seq - 1)];
      Framer f(1 + 8 + 4 + 4 + s.value.size());
      f.body().u8(kMsgStamped);
      f.body().u64(s.seq);
      f.body().u32(static_cast<std::uint32_t>(s.origin));
      f.body().str(s.value);
      network_->send(config_.sequencer, src, f.finish());
    }
  }
}

void SequencerTO::nack_tick(ProcId me) {
  if (me != config_.sequencer) {
    // Ask for anything missing: either a gap (buffered ahead) or possibly
    // stamps we have never seen. We cannot know about unseen stamps, so we
    // nack whenever a gap exists, and probe blindly otherwise — a real
    // implementation piggybacks the latest stamp on heartbeats; our probe
    // asks from next_deliver_, which the sequencer answers only if there
    // is history beyond it.
    Framer f(1 + 8);
    f.body().u8(kMsgNack);
    f.body().u64(next_deliver_[static_cast<std::size_t>(me)]);
    network_->send(me, config_.sequencer, f.finish());
  }
  sim_->after(config_.nack_interval, [this, me] { nack_tick(me); });
}

}  // namespace vsg::to
