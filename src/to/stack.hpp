#pragma once

// The TO stack (Figure 1): one VStoTO process per processor, composed with
// a VS service back end. This is the "TO Service" dashed box of the paper —
// clients see only bcast/brcv (via an attached to::Client per processor, or
// the legacy global callback); everything else is internal.

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/quorum.hpp"
#include "obs/metrics.hpp"
#include "to/service.hpp"
#include "trace/recorder.hpp"
#include "vs/service.hpp"
#include "vstoto/process.hpp"

namespace vsg::to {

class Stack final : public Service {
 public:
  /// Builds and attaches one VStoTO process per processor of `vs_service`.
  /// `n0` is the initial-view size (processors 0..n0-1). `exchange` selects
  /// the state-exchange protocol for every process (see
  /// vstoto::ExchangeMode; the harness pairs kDigestDelta with wire v3).
  Stack(vs::Service& vs_service, trace::Recorder& recorder,
        std::shared_ptr<const core::QuorumSystem> quorums, int n0,
        vstoto::ExchangeMode exchange = vstoto::ExchangeMode::kFullSummary);

  int size() const override { return static_cast<int>(procs_.size()); }
  void bcast(ProcId p, core::Value a) override;
  bool trysend(ProcId p, core::Value a) override;
  void attach(ProcId p, Client& client) override;
  void set_delivery(DeliveryFn fn) override;

  /// Arm sender-side backpressure (docs/FLOWCONTROL.md): once `backlog(p)`
  /// reaches max_backlog entries, bcast defers (queued FIFO per processor,
  /// admitted by on_ring_drain as the transport frees capacity) and
  /// trysend sheds. Registers the gate metrics — ring.sends_deferred,
  /// ring.sends_shed, and the to.admission_wait histogram (deferral time of
  /// every admitted send; 0 for sends admitted immediately) — in
  /// `registry`, so ungated worlds carry none of them and stay
  /// bit-identical. Wired by harness::World when
  /// TokenRingConfig::admission_max_backlog > 0.
  void arm_admission(std::size_t max_backlog, std::function<std::size_t(ProcId)> backlog,
                     obs::MetricsRegistry& registry);

  /// Transport drain notification: admit deferred sends at p in FIFO order
  /// while the gate has room (the ring's drain hook lands here).
  void on_ring_drain(ProcId p);

  /// Publish TO-level metrics into `registry`: the shared to.* counters and
  /// depth gauges of every VStoTO process, plus bcast->brcv latency
  /// histograms — one per processor ("to.brcv_latency.p<i>") and one
  /// aggregate ("to.brcv_latency.all"). Latency is matched positionally per
  /// origin (TO's per-sender FIFO makes the k-th delivery from an origin
  /// the k-th submission), so for exact histograms submit via this Stack
  /// rather than poking vstoto::Process::bcast directly.
  void bind_metrics(obs::MetricsRegistry& registry);

  /// Attach a causal span tracer to every VStoTO process of the stack
  /// (null detaches). See obs::SpanTracer.
  void set_tracer(obs::SpanTracer* tracer);

  /// Direct access to a VStoTO process (verification layer, tests).
  vstoto::Process& process(ProcId p) { return *procs_[static_cast<std::size_t>(p)]; }
  const vstoto::Process& process(ProcId p) const {
    return *procs_[static_cast<std::size_t>(p)];
  }

  /// The stack's decode-once cache (shared by all its processes).
  const vstoto::DecodeCache& decode_cache() const noexcept { return decode_cache_; }

 private:
  void on_deliver(ProcId dest, ProcId origin, const core::Value& a);
  /// True when the armed gate must hold a new submission at p: the backlog
  /// is at the limit, or earlier sends are already deferred (FIFO).
  bool gate_holds(ProcId p) const;
  /// Hand a gate-cleared value to the VStoTO process, recording its
  /// admission wait and (when metrics are bound) its bcast timestamp.
  void admit(ProcId p, core::Value a, sim::Time waited);

  trace::Recorder* recorder_;
  vstoto::DecodeCache decode_cache_;
  std::vector<std::unique_ptr<vstoto::Process>> procs_;
  std::vector<Client*> clients_;
  DeliveryFn delivery_;

  // Latency tracking (active only when metrics are bound).
  obs::Histogram* latency_all_ = nullptr;
  std::vector<obs::Histogram*> latency_per_proc_;        // indexed by dest
  std::vector<std::vector<sim::Time>> bcast_times_;      // per origin, in order
  std::vector<std::vector<std::size_t>> deliver_index_;  // [dest][origin]

  // Admission gate (inactive until arm_admission).
  struct Deferred {
    core::Value value;
    sim::Time since = 0;
  };
  std::size_t admission_max_ = 0;  // 0 = gate off
  std::function<std::size_t(ProcId)> admission_backlog_;
  std::vector<std::deque<Deferred>> deferred_;  // per processor, FIFO
  obs::Counter* sends_deferred_ = nullptr;
  obs::Counter* sends_shed_ = nullptr;
  obs::Histogram* admission_wait_ = nullptr;
};

}  // namespace vsg::to
