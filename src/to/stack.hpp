#pragma once

// The TO stack (Figure 1): one VStoTO process per processor, composed with
// a VS service back end. This is the "TO Service" dashed box of the paper —
// clients see only bcast/brcv; everything else is internal.

#include <memory>
#include <vector>

#include "core/quorum.hpp"
#include "to/service.hpp"
#include "trace/recorder.hpp"
#include "vs/service.hpp"
#include "vstoto/process.hpp"

namespace vsg::to {

class Stack final : public Service {
 public:
  /// Builds and attaches one VStoTO process per processor of `vs_service`.
  /// `n0` is the initial-view size (processors 0..n0-1).
  Stack(vs::Service& vs_service, trace::Recorder& recorder,
        std::shared_ptr<const core::QuorumSystem> quorums, int n0);

  int size() const override { return static_cast<int>(procs_.size()); }
  void bcast(ProcId p, core::Value a) override;
  void set_delivery(DeliveryFn fn) override;

  /// Direct access to a VStoTO process (verification layer, tests).
  vstoto::Process& process(ProcId p) { return *procs_[static_cast<std::size_t>(p)]; }
  const vstoto::Process& process(ProcId p) const {
    return *procs_[static_cast<std::size_t>(p)];
  }

 private:
  std::vector<std::unique_ptr<vstoto::Process>> procs_;
  DeliveryFn delivery_;
};

}  // namespace vsg::to
