#pragma once

// The TO service interface (Figure 2, top): clients submit values with
// bcast and receive deliveries through a per-processor Client, mirroring
// vs::Client one layer down. The paper's TO specification (Section 3) is
// the contract: deliveries at each processor form a prefix of one total
// order consistent with per-sender submission order, with conditional
// timeliness per TO-property.
//
// API note: the original interface had a single global set_delivery
// callback; it remains as a compatibility shim (it fires in addition to
// any attached client) but new code should attach a to::Client per
// processor — that is what the stack itself, the app layer and the
// examples use.

#include <functional>
#include <utility>

#include "core/types.hpp"

namespace vsg::to {

/// Legacy delivery callback: brcv(a)_{origin, dest} for every processor.
using DeliveryFn = std::function<void(ProcId dest, ProcId origin, const core::Value& a)>;

/// Per-processor client-side callback (mirrors vs::Client).
class Client {
 public:
  virtual ~Client() = default;

  /// brcv(a)_{origin, p}: value a, originated at `origin`, delivered at
  /// the processor this client is attached to.
  virtual void on_brcv(ProcId origin, const core::Value& a) = 0;
};

/// Adapts a callable to a Client for call sites that want a lambda:
///   to::CallbackClient tap([&](ProcId origin, const core::Value& a) { ... });
///   world.stack().attach(0, tap);
/// The adapter must outlive the service it is attached to (or the run).
class CallbackClient final : public Client {
 public:
  using Fn = std::function<void(ProcId origin, const core::Value& a)>;
  explicit CallbackClient(Fn fn) : fn_(std::move(fn)) {}
  void on_brcv(ProcId origin, const core::Value& a) override {
    if (fn_) fn_(origin, a);
  }

 private:
  Fn fn_;
};

class Service {
 public:
  virtual ~Service() = default;

  virtual int size() const = 0;

  /// bcast(a)_p: submit value a at processor p. When a sender-side
  /// admission gate is armed (docs/FLOWCONTROL.md) an over-limit submission
  /// is deferred — queued FIFO and admitted once the transport drains —
  /// never dropped.
  virtual void bcast(ProcId p, core::Value a) = 0;

  /// bcast with shed-on-overload semantics: submit a iff the admission
  /// gate (when armed) has room, else drop it and return false — the
  /// caller-chosen alternative to bcast's defer policy for open-loop
  /// senders that would rather lose a sample than queue unboundedly.
  /// Without a gate this is exactly bcast (always true).
  virtual bool trysend(ProcId p, core::Value a) {
    bcast(p, std::move(a));
    return true;
  }

  /// Register the client for processor p. At most one per processor;
  /// attaching again replaces the previous client.
  virtual void attach(ProcId p, Client& client) = 0;

  /// Legacy: register a single global delivery callback. Compat shim over
  /// the Client interface — it observes the same deliveries, after any
  /// attached per-processor client.
  virtual void set_delivery(DeliveryFn fn) = 0;
};

}  // namespace vsg::to
