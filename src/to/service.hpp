#pragma once

// The TO service interface (Figure 2, top): clients submit values with
// bcast and receive deliveries via a callback. The paper's TO specification
// (Section 3) is the contract: deliveries at each processor form a prefix of
// one total order consistent with per-sender submission order, with
// conditional timeliness per TO-property.

#include <functional>

#include "core/types.hpp"

namespace vsg::to {

/// Delivery callback: brcv(a)_{origin, dest}.
using DeliveryFn = std::function<void(ProcId dest, ProcId origin, const core::Value& a)>;

class Service {
 public:
  virtual ~Service() = default;

  virtual int size() const = 0;

  /// bcast(a)_p: submit value a at processor p.
  virtual void bcast(ProcId p, core::Value a) = 0;

  /// Register the (single, global) delivery callback.
  virtual void set_delivery(DeliveryFn fn) = 0;
};

}  // namespace vsg::to
