#pragma once

// VStoTO_p (Figures 9 and 10): the per-processor automaton that implements
// totally ordered broadcast on top of a view-synchronous group service.
//
// The transcription is literal; each handler below is one transition of the
// paper's automaton, and the locally controlled actions (label, gpsnd,
// confirm, brcv) are run eagerly to quiescence after every input — the
// "good processors take enabled steps immediately" discipline of Section 7.
// (Failure modelling — bad/ugly processors — happens in the VS back end's
// delivery pump, not here: a stopped processor simply receives no
// callbacks.)
//
// One deliberate deviation, documented in DESIGN.md: on gprcv of an
// ordinary message in a primary view we append the label to `order` only if
// it is not already present. With a scheduler that may interleave `label`
// between newview and the state-exchange send, the literal code can append
// a label that establishment already placed in `order` via fullorder
// (because the sender's summary contained it), double-delivering the value.
// Our eager executor never produces that interleaving, and the guard makes
// the automaton safe under every scheduler.
//
// History variables established[p,g] and buildorder[p,g] (Section 6) are
// maintained so the verification layer can check the paper's invariants.

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/quorum.hpp"
#include "core/summary.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/recorder.hpp"
#include "vs/service.hpp"
#include "vstoto/wire.hpp"

namespace vsg::vstoto {

/// Shared metrics all VStoTO processes of one stack report into (names:
/// to.*). Counters/gauges aggregate over every process bound to them; the
/// depth gauges are maintained incrementally, so for one registry they read
/// as the current totals across processes. Null pointers (the default) are
/// skipped — an unbound process pays one branch per event.
struct ProcessObs {
  obs::Counter* labels_assigned = nullptr;     // label_p actions (label churn)
  obs::Counter* values_sent = nullptr;         // gpsnd of <l, a> messages
  obs::Counter* summaries_sent = nullptr;      // full-summary exchange sends
  obs::Counter* summaries_received = nullptr;  // full-summary exchange receipts
  obs::Counter* digests_sent = nullptr;        // delta mode: digest sends
  obs::Counter* digests_received = nullptr;    // delta mode: digest receipts
  obs::Counter* deltas_sent = nullptr;         // delta mode: delta sends
  obs::Counter* deltas_received = nullptr;     // delta mode: delta receipts
  obs::Counter* payload_copies = nullptr;      // Value copies on the bcast->brcv path
  obs::Counter* payload_moves = nullptr;       // Value moves on the bcast->brcv path
  obs::Gauge* order_depth = nullptr;           // sum over procs of |order|
  obs::Gauge* confirmed_depth = nullptr;       // sum over procs of nextconfirm-1
  obs::Gauge* pending_labels = nullptr;        // sum over procs of |delay| + |buffer|
  obs::Counter* views_established = nullptr;   // establishment completions (any view)
  obs::Counter* primary_established = nullptr; // ... where the view is primary
  obs::Counter* decode_hits = nullptr;         // decode-once cache hits (fan-in)
  obs::Counter* decode_misses = nullptr;       // payloads actually parsed
};

enum class PStatus : std::uint8_t { kNormal, kSend, kCollect };

const char* to_string(PStatus s) noexcept;

/// How a process ships its state on newview. kFullSummary is the paper's
/// literal gpsnd(x): the whole summary in one message. kDigestDelta is the
/// two-phase anti-entropy exchange (docs/WIRE.md, "v3 state exchange"): a
/// compact digest first, then — once every member's digest is in — one
/// delta against the pointwise-weakest digest, reconstructed by receivers
/// via core::apply_delta against their own frozen exchange base. The
/// reconstructed summaries feed the same establishment algebra, so the two
/// modes deliver identically; only exchange bytes and message counts move.
enum class ExchangeMode : std::uint8_t { kFullSummary, kDigestDelta };

const char* to_string(ExchangeMode m) noexcept;

/// The full automaton state of Figure 9, plus the proof's history variables.
struct ProcessState {
  std::optional<core::View> current;        // current (views_bot)
  PStatus status = PStatus::kNormal;        // status
  std::map<core::Label, core::Value> content;
  std::uint32_t nextseqno = 1;
  std::deque<core::Label> buffer;
  std::vector<core::Label> order;
  std::uint32_t nextconfirm = 1;
  std::uint32_t nextreport = 1;
  std::optional<core::ViewId> highprimary;  // G_bot
  std::deque<core::Value> delay;
  core::SummaryMap gotstate;
  std::set<ProcId> safe_exch;
  std::set<core::Label> safe_labels;

  // Delta-mode exchange state (unused under kFullSummary). exch_base is the
  // local summary frozen at newview: the digest we advertised, the state our
  // delta describes, and the base every incoming delta is applied against.
  core::Summary exch_base;
  std::map<ProcId, core::SummaryDigest> gotdigest;
  bool delta_sent = false;

  // History variables (not part of the algorithm; used by verify/).
  std::set<core::ViewId> established;
  std::map<core::ViewId, std::vector<core::Label>> buildorder;
};

class Process final : public vs::Client {
 public:
  /// Called on each brcv(a)_{origin, p} output.
  using DeliveryFn = std::function<void(ProcId origin, const core::Value& a)>;

  /// `n0` is |P0|; processors 0..n0-1 start in the initial view with
  /// highprimary = g0 (Figure 9's initialization).
  Process(ProcId p, int n0, std::shared_ptr<const core::QuorumSystem> quorums,
          vs::Service& service, trace::Recorder& recorder);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcId id() const noexcept { return p_; }

  /// Input bcast(a)_p. Records the trace event and runs to quiescence.
  void bcast(core::Value a);

  void set_delivery(DeliveryFn fn) { deliver_ = std::move(fn); }

  /// Point this process at shared to.* metrics (see ProcessObs).
  void bind_metrics(const ProcessObs& obs) { obs_ = obs; }

  /// Attach a causal span tracer (null detaches). Hooks fire on label
  /// assignment, gpsnd, gprcv, order placement, confirmation, delivery and
  /// view establishment; a null tracer costs one pointer test per hook.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }

  /// Select the state-exchange protocol (default kFullSummary). Must be set
  /// before the first newview; the Stack threads the World's choice here.
  void set_exchange_mode(ExchangeMode m) { exchange_mode_ = m; }
  ExchangeMode exchange_mode() const noexcept { return exchange_mode_; }

  /// Share a decode-once cache (owned by the Stack, shared by its
  /// processes). VS delivers the same Buffer to every member and again for
  /// the safe indication, so with a shared cache each distinct payload is
  /// parsed once per node rather than once per callback. Unset: decode
  /// per callback.
  void set_decode_cache(DecodeCache* cache) { cache_ = cache; }

  // vs::Client (inputs from the VS layer):
  void on_gprcv(ProcId src, const vs::Payload& m) override;
  void on_safe(ProcId src, const vs::Payload& m) override;
  void on_newview(const core::View& v) override;

  /// Derived variable `primary` (Figure 9).
  bool primary() const;

  /// The summary <content, order, nextconfirm, highprimary> of local state.
  core::Summary local_summary() const;

  const ProcessState& state() const noexcept { return st_; }

  /// Values confirmed-and-reported so far, in order (for tests).
  const std::vector<std::pair<ProcId, core::Value>>& delivered() const noexcept {
    return delivered_;
  }

  /// Checkpoint/restore of the full automaton state (used by the
  /// exhaustive small-scope explorer to branch over schedules, and handy
  /// for debugging). The service/recorder bindings are not part of the
  /// checkpoint.
  struct Checkpoint {
    ProcessState st;
    std::vector<std::pair<ProcId, core::Value>> delivered;
  };
  Checkpoint checkpoint() const { return Checkpoint{st_, delivered_}; }
  void restore(const Checkpoint& cp);

 private:
  // Locally controlled actions (preconditions checked by callers via the
  // run-to-quiescence loop).
  bool try_label();
  bool try_gpsnd_value();
  bool try_confirm();
  bool try_brcv();
  void run_to_quiescence();

  /// Decode via the shared cache when bound, else parse locally. nullptr on
  /// malformed input.
  std::shared_ptr<const Message> decode_shared(const vs::Payload& payload);

  void handle_labeled(ProcId src, const LabeledValue& lv);
  void handle_summary(ProcId src, const core::Summary& x);
  void handle_digest(ProcId src, const core::SummaryDigest& g);
  void handle_delta(ProcId src, const core::SummaryDelta& dl);
  /// Delta mode: once every member's digest is in, broadcast the one delta
  /// against their meet (VS has no point-to-point send).
  void maybe_send_delta();
  void handle_safe_labeled(ProcId src, const LabeledValue& lv);
  /// A state-exchange message (full summary, or delta-mode delta) became
  /// safe at every member; digests carry no labels and do not count.
  void handle_safe_exchange(ProcId src);

  void assign_order(std::vector<core::Label> order);
  void append_order(const core::Label& l);

  ProcId p_;
  std::shared_ptr<const core::QuorumSystem> quorums_;
  vs::Service* service_;
  trace::Recorder* recorder_;
  DeliveryFn deliver_;
  DecodeCache* cache_ = nullptr;
  ExchangeMode exchange_mode_ = ExchangeMode::kFullSummary;
  ProcessObs obs_;
  obs::SpanTracer* tracer_ = nullptr;
  ProcessState st_;
  std::set<core::Label> order_members_;  // duplicate guard index over st_.order
  std::vector<std::pair<ProcId, core::Value>> delivered_;
};

}  // namespace vsg::vstoto
