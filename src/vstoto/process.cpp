#include "vstoto/process.hpp"

#include <cassert>

#include "util/logging.hpp"
#include "util/sequence.hpp"

namespace vsg::vstoto {

const char* to_string(PStatus s) noexcept {
  switch (s) {
    case PStatus::kNormal:
      return "normal";
    case PStatus::kSend:
      return "send";
    case PStatus::kCollect:
      return "collect";
  }
  return "?";
}

const char* to_string(ExchangeMode m) noexcept {
  return m == ExchangeMode::kFullSummary ? "full-summary" : "digest-delta";
}

Process::Process(ProcId p, int n0, std::shared_ptr<const core::QuorumSystem> quorums,
                 vs::Service& service, trace::Recorder& recorder)
    : p_(p), quorums_(std::move(quorums)), service_(&service), recorder_(&recorder) {
  assert(quorums_ != nullptr);
  if (p < n0) {
    st_.current = core::initial_view(n0);
    st_.highprimary = core::ViewId::initial();
    // The initial view is established by fiat: every member starts in it
    // with status normal (Figure 9 initializes status to normal).
    st_.established.insert(core::ViewId::initial());
    st_.buildorder[core::ViewId::initial()] = {};
  }
}

void Process::restore(const Checkpoint& cp) {
  if (obs_.order_depth != nullptr)
    obs_.order_depth->add(static_cast<std::int64_t>(cp.st.order.size()) -
                          static_cast<std::int64_t>(st_.order.size()));
  if (obs_.confirmed_depth != nullptr)
    obs_.confirmed_depth->add(static_cast<std::int64_t>(cp.st.nextconfirm) -
                              static_cast<std::int64_t>(st_.nextconfirm));
  if (obs_.pending_labels != nullptr)
    obs_.pending_labels->add(
        static_cast<std::int64_t>(cp.st.delay.size() + cp.st.buffer.size()) -
        static_cast<std::int64_t>(st_.delay.size() + st_.buffer.size()));
  st_ = cp.st;
  delivered_ = cp.delivered;
  order_members_ = std::set<core::Label>(st_.order.begin(), st_.order.end());
}

bool Process::primary() const {
  return st_.current.has_value() && quorums_->contains_quorum(st_.current->members);
}

core::Summary Process::local_summary() const {
  core::Summary x;
  x.con = st_.content;
  x.ord = st_.order;
  x.next = st_.nextconfirm;
  x.high = st_.highprimary;
  return x;
}

void Process::assign_order(std::vector<core::Label> order) {
  if (obs_.order_depth != nullptr)
    obs_.order_depth->add(static_cast<std::int64_t>(order.size()) -
                          static_cast<std::int64_t>(st_.order.size()));
  if (tracer_ != nullptr)
    for (const core::Label& l : order)
      if (order_members_.count(l) == 0) tracer_->msg_tentative(p_, l, recorder_->now());
  st_.order = std::move(order);
  order_members_ = std::set<core::Label>(st_.order.begin(), st_.order.end());
  if (st_.current.has_value()) st_.buildorder[st_.current->id] = st_.order;
}

void Process::append_order(const core::Label& l) {
  if (obs_.order_depth != nullptr) obs_.order_depth->add(1);
  if (tracer_ != nullptr) tracer_->msg_tentative(p_, l, recorder_->now());
  st_.order.push_back(l);
  order_members_.insert(l);
  if (st_.current.has_value()) st_.buildorder[st_.current->id] = st_.order;
}

// --- Input bcast(a)_p --------------------------------------------------------

void Process::bcast(core::Value a) {
  recorder_->record(trace::BcastEvent{p_, a});  // the trace keeps its own copy
  obs::bump(obs_.payload_copies);
  st_.delay.push_back(std::move(a));
  obs::bump(obs_.payload_moves);
  if (obs_.pending_labels != nullptr) obs_.pending_labels->add(1);
  run_to_quiescence();
}

// --- Internal label(a)_p -----------------------------------------------------

bool Process::try_label() {
  if (st_.delay.empty() || !st_.current.has_value()) return false;
  const core::Label l{st_.current->id, st_.nextseqno, p_};
  st_.content.emplace(l, std::move(st_.delay.front()));
  obs::bump(obs_.payload_moves);
  obs::bump(obs_.labels_assigned);
  if (tracer_ != nullptr) tracer_->msg_labeled(p_, l, recorder_->now());
  st_.buffer.push_back(l);
  ++st_.nextseqno;
  st_.delay.pop_front();
  return true;
}

// --- Output gpsnd(<l, a>)_p --------------------------------------------------

bool Process::try_gpsnd_value() {
  if (st_.status != PStatus::kNormal || st_.buffer.empty()) return false;
  const core::Label l = st_.buffer.front();
  const auto it = st_.content.find(l);
  assert(it != st_.content.end());  // Lemma 6.6
  util::Buffer m = encode_message(Message{LabeledValue{l, it->second}});
  // The storage uid of this buffer is the tracer's origin-side correlation
  // key: the outbox, the token entry and the self-delivery all share it.
  if (tracer_ != nullptr) tracer_->msg_sent(p_, l, m.id(), recorder_->now());
  service_->gpsnd(p_, std::move(m));
  obs::bump(obs_.values_sent);
  st_.buffer.pop_front();
  if (obs_.pending_labels != nullptr) obs_.pending_labels->add(-1);
  return true;
}

// --- Internal confirm_p ------------------------------------------------------

bool Process::try_confirm() {
  if (!primary()) return false;
  // nextconfirm == 0 is unreachable from any real execution (it starts at 1
  // and only grows), but a garbage summary under the injected
  // unchecked-decode fault (docs/CHAOS.md) can plant it via maxnextconfirm;
  // stand down rather than index order[-1].
  if (st_.nextconfirm == 0 || st_.nextconfirm > st_.order.size()) return false;
  const core::Label& l = st_.order[st_.nextconfirm - 1];
  if (st_.safe_labels.count(l) == 0) return false;
  if (tracer_ != nullptr) tracer_->msg_confirmed(p_, l, recorder_->now());
  ++st_.nextconfirm;
  if (obs_.confirmed_depth != nullptr) obs_.confirmed_depth->add(1);
  return true;
}

// --- Output brcv(a)_{q,p} ----------------------------------------------------

bool Process::try_brcv() {
  if (st_.nextreport >= st_.nextconfirm) return false;
  // In any real state nextreport < nextconfirm <= order.size() + 1 and every
  // order label has content (Lemma 6.6). A corrupted summary under the
  // injected unchecked-decode fault (docs/CHAOS.md) can break both; stand
  // down instead of reading past the vector, so the damage stays visible to
  // the oracles rather than becoming undefined behavior.
  if (st_.nextreport > st_.order.size()) return false;
  const core::Label& l = st_.order[st_.nextreport - 1];
  const auto it = st_.content.find(l);
  if (it == st_.content.end()) return false;
  const ProcId origin = l.origin;
  if (tracer_ != nullptr) tracer_->msg_delivered(p_, l, recorder_->now());
  // Two deliberate copies: the trace event and the delivered() accessor.
  recorder_->record(trace::BrcvEvent{origin, p_, it->second});
  delivered_.emplace_back(origin, it->second);
  obs::bump(obs_.payload_copies, 2);
  if (deliver_) deliver_(origin, it->second);
  ++st_.nextreport;
  return true;
}

void Process::run_to_quiescence() {
  // Locally controlled actions fire until none is enabled. Each iteration
  // performs at least one transition, and every transition strictly consumes
  // (delay, buffer) or advances a monotone counter bounded by order/content
  // sizes, so the loop terminates.
  for (;;) {
    bool progressed = false;
    while (try_label()) progressed = true;
    while (try_gpsnd_value()) progressed = true;
    while (try_confirm()) progressed = true;
    while (try_brcv()) progressed = true;
    if (!progressed) break;
  }
}

// --- Input newview(v)_p ------------------------------------------------------

void Process::on_newview(const core::View& v) {
  assert(v.contains(p_));
  st_.current = v;
  st_.nextseqno = 1;
  if (!st_.buffer.empty() && obs_.pending_labels != nullptr)
    obs_.pending_labels->add(-static_cast<std::int64_t>(st_.buffer.size()));
  st_.buffer.clear();
  st_.gotstate.clear();
  st_.safe_exch.clear();
  st_.safe_labels.clear();
  st_.gotdigest.clear();
  st_.delta_sent = false;
  st_.status = PStatus::kSend;

  // Output gpsnd(x)_p with x = <content, order, nextconfirm, highprimary>:
  // performed immediately (see the header comment: sending the summary
  // before any other local action closes the label/state-exchange race).
  // Both modes freeze the exchange base here; delta mode advertises its
  // digest instead of shipping the whole summary (phase 1 of the
  // anti-entropy exchange — the delta follows in maybe_send_delta).
  st_.exch_base = local_summary();
  if (exchange_mode_ == ExchangeMode::kDigestDelta) {
    service_->gpsnd(p_, encode_message(Message{core::digest(st_.exch_base)}));
    obs::bump(obs_.digests_sent);
  } else {
    service_->gpsnd(p_, encode_message(Message{st_.exch_base}));
    obs::bump(obs_.summaries_sent);
  }
  st_.status = PStatus::kCollect;

  run_to_quiescence();
}

// --- Inputs gprcv(m)_{q,p} ---------------------------------------------------

std::shared_ptr<const Message> Process::decode_shared(const vs::Payload& payload) {
  if (cache_ != nullptr) {
    const std::uint64_t h = cache_->hits();
    auto msg = cache_->decode(payload);
    obs::bump(cache_->hits() != h ? obs_.decode_hits : obs_.decode_misses);
    return msg;
  }
  obs::bump(obs_.decode_misses);
  auto decoded = decode_message_ex(payload.view());
  if (!decoded.ok()) {
    VSG_WARN << "process " << p_ << ": " << decoded.error;
    return nullptr;
  }
  return std::make_shared<const Message>(std::move(*decoded.value));
}

void Process::on_gprcv(ProcId src, const vs::Payload& payload) {
  const auto decoded = decode_shared(payload);
  if (decoded == nullptr) {
    VSG_WARN << "process " << p_ << ": undecodable gprcv payload dropped";
    return;
  }
  if (const auto* lv = std::get_if<LabeledValue>(decoded.get()))
    handle_labeled(src, *lv);
  else if (const auto* x = std::get_if<core::Summary>(decoded.get()))
    handle_summary(src, *x);
  else if (const auto* g = std::get_if<core::SummaryDigest>(decoded.get()))
    handle_digest(src, *g);
  else
    handle_delta(src, std::get<core::SummaryDelta>(*decoded));
  run_to_quiescence();
}

void Process::handle_labeled(ProcId src, const LabeledValue& lv) {
  (void)src;
  if (tracer_ != nullptr) tracer_->msg_received(p_, lv.label, recorder_->now());
  // The self-delivered copy (the VS layer gprcvs to the sender too) finds
  // its label already in content; only a genuine insertion copies the value
  // out of the shared decoded message.
  if (st_.content.emplace(lv.label, lv.value).second)
    obs::bump(obs_.payload_copies);
  if (primary() && order_members_.count(lv.label) == 0) append_order(lv.label);
}

void Process::handle_summary(ProcId src, const core::Summary& x) {
  obs::bump(obs_.summaries_received);
  st_.content.insert(x.con.begin(), x.con.end());
  st_.gotstate.insert_or_assign(src, x);

  if (!st_.current.has_value()) return;
  // Establishment: all members' summaries collected.
  std::set<ProcId> have;
  for (const auto& [q, xs] : st_.gotstate) have.insert(q);
  if (have != st_.current->members || st_.status != PStatus::kCollect) return;

  const std::uint32_t prevconfirm = st_.nextconfirm;
  st_.nextconfirm = core::maxnextconfirm(st_.gotstate);
  if (obs_.confirmed_depth != nullptr)
    obs_.confirmed_depth->add(static_cast<std::int64_t>(st_.nextconfirm) -
                              static_cast<std::int64_t>(prevconfirm));
  if (primary()) {
    assign_order(core::fullorder(st_.gotstate));
    st_.highprimary = st_.current->id;
  } else {
    assign_order(core::shortorder(st_.gotstate));
    st_.highprimary = core::maxprimary(st_.gotstate);
  }
  st_.status = PStatus::kNormal;
  st_.established.insert(st_.current->id);  // history variable
  obs::bump(obs_.views_established);
  if (primary()) obs::bump(obs_.primary_established);
  if (tracer_ != nullptr)
    tracer_->view_established(p_, st_.current->id, primary(), recorder_->now());
  VSG_DEBUG << "process " << p_ << " established view " << core::to_string(*st_.current)
            << (primary() ? " (primary)" : " (non-primary)");
}

void Process::handle_digest(ProcId src, const core::SummaryDigest& g) {
  obs::bump(obs_.digests_received);
  if (!st_.current.has_value() || !st_.current->contains(src)) return;
  st_.gotdigest.insert_or_assign(src, g);
  maybe_send_delta();
}

void Process::maybe_send_delta() {
  if (st_.delta_sent || st_.status != PStatus::kCollect || !st_.current.has_value())
    return;
  // Phase 2 needs every member's digest (including our own, self-delivered
  // by VS): the broadcast delta must be sound for the weakest peer.
  core::SummaryDigest weakest;
  bool first = true;
  for (const ProcId q : st_.current->members) {
    const auto it = st_.gotdigest.find(q);
    if (it == st_.gotdigest.end()) return;
    weakest = first ? it->second : core::meet(weakest, it->second);
    first = false;
  }
  st_.delta_sent = true;
  if (tracer_ != nullptr)
    tracer_->view_digests_collected(p_, st_.current->id, recorder_->now());
  service_->gpsnd(p_,
                  encode_message(Message{core::delta(st_.exch_base, weakest)}));
  obs::bump(obs_.deltas_sent);
}

void Process::handle_delta(ProcId src, const core::SummaryDelta& dl) {
  obs::bump(obs_.deltas_received);
  // Reconstruct the sender's frozen summary against our own frozen base and
  // feed it into the untouched establishment path. apply_delta only fails on
  // input no correct sender produces (an ord prefix beyond our digest).
  auto x = core::apply_delta(dl, st_.exch_base);
  if (!x.has_value()) {
    VSG_WARN << "process " << p_ << ": delta from " << src
             << " overruns the local exchange base; dropped";
    return;
  }
  handle_summary(src, *x);
}

// --- Inputs safe(m)_{q,p} ----------------------------------------------------

void Process::on_safe(ProcId src, const vs::Payload& payload) {
  const auto decoded = decode_shared(payload);
  if (decoded == nullptr) {
    VSG_WARN << "process " << p_ << ": undecodable safe payload dropped";
    return;
  }
  if (const auto* lv = std::get_if<LabeledValue>(decoded.get()))
    handle_safe_labeled(src, *lv);
  else if (std::holds_alternative<core::SummaryDigest>(*decoded)) {
    // Digests carry no labels; only the delta gates the second phase.
  } else {
    handle_safe_exchange(src);
  }
  run_to_quiescence();
}

void Process::handle_safe_labeled(ProcId src, const LabeledValue& lv) {
  (void)src;
  if (primary()) st_.safe_labels.insert(lv.label);
}

void Process::handle_safe_exchange(ProcId src) {
  st_.safe_exch.insert(src);
  if (!st_.current.has_value()) return;
  if (st_.safe_exch == st_.current->members && primary()) {
    // All state-exchange messages are safe: every label placed by the
    // exchange is now safe (second phase of recovery, Section 5). In delta
    // mode the qualifying message per member is its delta — same cardinality
    // as the full-summary exchange, so the condition is unchanged.
    for (const auto& l : core::fullorder(st_.gotstate)) st_.safe_labels.insert(l);
  }
}

}  // namespace vsg::vstoto
