#pragma once

// Wire format for the two kinds of messages VStoTO processes exchange
// through VS (Figure 9's signature): labeled client values <l, a> during
// normal activity, and state-exchange summaries during recovery.

#include <optional>
#include <utility>
#include <variant>

#include "core/label.hpp"
#include "core/summary.hpp"
#include "util/serde.hpp"

namespace vsg::vstoto {

/// An ordinary message: a labeled client value.
struct LabeledValue {
  core::Label label;
  core::Value value;
  bool operator==(const LabeledValue&) const = default;
};

using Message = std::variant<LabeledValue, core::Summary>;

util::Bytes encode_message(const Message& m);

/// Decode; nullopt on malformed input (defensive: the network layer hands
/// us raw bytes).
std::optional<Message> decode_message(const util::Bytes& bytes);

}  // namespace vsg::vstoto
