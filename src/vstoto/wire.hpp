#pragma once

// Wire format for the two kinds of messages VStoTO processes exchange
// through VS (Figure 9's signature): labeled client values <l, a> during
// normal activity, and state-exchange summaries during recovery.
//
// Decode-once fan-in (docs/DATAPLANE.md): VS delivers the same shared
// Buffer to every member and again for the safe indication, so the same
// bytes reach decode_message several times per node. DecodeCache keys on
// the buffer's storage identity (uid, offset, size) — never its contents —
// and hands back one shared decoded Message for all of them.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <variant>

#include "core/codec.hpp"
#include "core/label.hpp"
#include "core/summary.hpp"
#include "util/buffer.hpp"
#include "util/serde.hpp"

namespace vsg::vstoto {

/// VSTOTO message tags (docs/WIRE.md, "VSTOTO payload layer"). These bytes
/// ride *inside* VS payloads — they are below the versioned frame header,
/// so changing them does not need a frame version bump, but it does need a
/// WIRE.md update and a scenario re-pin. Tags are self-describing: digest
/// and delta bodies are varint-coded under every frame version, so decoders
/// never need the carrying frame's version byte. The values are shared with
/// the membership layer (wire::kPayload*), which peeks at them to classify
/// state-exchange bytes.
inline constexpr std::uint8_t kTagLabeledValue = wire::kPayloadValue;
inline constexpr std::uint8_t kTagSummary = wire::kPayloadSummary;
inline constexpr std::uint8_t kTagDigest = wire::kPayloadDigest;
inline constexpr std::uint8_t kTagDelta = wire::kPayloadDelta;

/// An ordinary message: a labeled client value.
struct LabeledValue {
  core::Label label;
  core::Value value;
  bool operator==(const LabeledValue&) const = default;
};

using Message =
    std::variant<LabeledValue, core::Summary, core::SummaryDigest, core::SummaryDelta>;

/// Exact wire size of encode_message(m) (Encoder::reserve hint).
std::size_t encoded_message_size(const Message& m);

/// Encode with a measured reserve: exactly one allocation (asserted by
/// vstoto_wire_test via Encoder::allocs()).
util::Buffer encode_message(const Message& m);

/// Outcome-based decode (the single public decode entry point, mirroring
/// membership::decode_packet_ex): `error` names the reject reason iff
/// `value` is disengaged. Defensive — the network layer hands us raw bytes.
wire::DecodeOutcome<Message> decode_message_ex(util::BufferView bytes);

/// Test-only shim over decode_message_ex (drops the diagnosis). No non-test
/// caller remains — new code must use decode_message_ex, and
/// scripts/check.sh gates src/, bench/, examples/ and tools/ against
/// regressions.
std::optional<Message> decode_message(util::BufferView bytes);

/// Test-only shim for callers still holding plain bytes.
inline std::optional<Message> decode_message(const util::Bytes& bytes) {
  return decode_message(util::BufferView(bytes));
}

/// Decode-once cache over buffer identity. Only successful strict decodes
/// are cached; identity is the storage uid (process-unique, never reused)
/// plus the window, so a hit can never alias different bytes. Bounded FIFO
/// with deterministic eviction. Single-threaded, like the whole stack.
class DecodeCache {
 public:
  explicit DecodeCache(std::size_t capacity = 128) : capacity_(capacity) {}

  /// The decoded message for `payload`, from cache or by decoding now.
  /// nullptr if the payload is malformed (malformed payloads are not
  /// cached: they are rare and never re-delivered by a correct VS).
  std::shared_ptr<const Message> decode(const util::Buffer& payload);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  /// (storage uid, window offset, window size) — full buffer identity.
  using Key = std::tuple<std::uint64_t, std::size_t, std::size_t>;

  std::size_t capacity_;
  std::map<Key, std::shared_ptr<const Message>> by_key_;
  std::deque<Key> order_;  // FIFO: push_back, evict front
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vsg::vstoto
