#include "vstoto/wire.hpp"

namespace vsg::vstoto {

std::size_t encoded_message_size(const Message& m) {
  if (const auto* lv = std::get_if<LabeledValue>(&m))
    return 1 + core::encoded_size(lv->label) + 4 + lv->value.size();
  return 1 + core::encoded_size(std::get<core::Summary>(m));
}

util::Buffer encode_message(const Message& m) {
  util::Encoder e;
  e.reserve(encoded_message_size(m));
  if (const auto* lv = std::get_if<LabeledValue>(&m)) {
    e.u8(kTagLabeledValue);
    core::encode(e, lv->label);
    e.str(lv->value);
  } else {
    e.u8(kTagSummary);
    core::encode(e, std::get<core::Summary>(m));
  }
  return e.finish();
}

std::optional<Message> decode_message(util::BufferView bytes) {
  // util::unchecked_decode() re-enables the historical accept-anything bug
  // (truncated input decodes as a zero-filled message) for chaos-oracle demos.
  const bool strict = !util::unchecked_decode();
  util::Decoder d(bytes);
  const std::uint8_t tag = d.u8();
  if (tag == kTagLabeledValue) {
    LabeledValue lv;
    lv.label = core::decode_label(d);
    lv.value = d.str();
    if (strict && !d.complete()) return std::nullopt;
    return Message{std::move(lv)};
  }
  if (tag == kTagSummary) {
    core::Summary x = core::decode_summary(d);
    if (strict && !d.complete()) return std::nullopt;
    return Message{std::move(x)};
  }
  return std::nullopt;
}

std::shared_ptr<const Message> DecodeCache::decode(const util::Buffer& payload) {
  // Identity-keyed caching is only sound for real shared storage (id != 0),
  // and only while strict decoding is on — the chaos injection changes what
  // the same bytes decode to, so a warm cache would mask the injected bug.
  const bool cacheable = payload.id() != 0 && !util::unchecked_decode();
  const Key key{payload.id(), payload.storage_offset(), payload.size()};
  if (cacheable) {
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      ++hits_;
      return it->second;
    }
  }
  ++misses_;
  auto decoded = decode_message(payload.view());
  if (!decoded.has_value()) return nullptr;  // malformed: not cached
  auto msg = std::make_shared<const Message>(std::move(*decoded));
  if (cacheable) {
    if (order_.size() >= capacity_ && !order_.empty()) {
      by_key_.erase(order_.front());
      order_.pop_front();
    }
    by_key_.emplace(key, msg);
    order_.push_back(key);
  }
  return msg;
}

}  // namespace vsg::vstoto
