#include "vstoto/wire.hpp"

namespace vsg::vstoto {
namespace {
constexpr std::uint8_t kTagLabeledValue = 1;
constexpr std::uint8_t kTagSummary = 2;
}  // namespace

util::Bytes encode_message(const Message& m) {
  util::Encoder e;
  if (const auto* lv = std::get_if<LabeledValue>(&m)) {
    e.u8(kTagLabeledValue);
    core::encode(e, lv->label);
    e.str(lv->value);
  } else {
    e.u8(kTagSummary);
    core::encode(e, std::get<core::Summary>(m));
  }
  return e.take();
}

std::optional<Message> decode_message(const util::Bytes& bytes) {
  // util::unchecked_decode() re-enables the historical accept-anything bug
  // (truncated input decodes as a zero-filled message) for chaos-oracle demos.
  const bool strict = !util::unchecked_decode();
  util::Decoder d(bytes);
  const std::uint8_t tag = d.u8();
  if (tag == kTagLabeledValue) {
    LabeledValue lv;
    lv.label = core::decode_label(d);
    lv.value = d.str();
    if (strict && !d.complete()) return std::nullopt;
    return Message{std::move(lv)};
  }
  if (tag == kTagSummary) {
    core::Summary x = core::decode_summary(d);
    if (strict && !d.complete()) return std::nullopt;
    return Message{std::move(x)};
  }
  return std::nullopt;
}

}  // namespace vsg::vstoto
