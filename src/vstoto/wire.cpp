#include "vstoto/wire.hpp"

namespace vsg::vstoto {

namespace {

// Digest and delta payloads are new in the v3 exchange and have no legacy
// fixed-width layout to preserve, so their bodies are always varint-coded
// (wire::Version::kV3) regardless of the frame version that carries them.
constexpr wire::Version kCompactBody = wire::Version::kV3;

}  // namespace

std::size_t encoded_message_size(const Message& m) {
  if (const auto* lv = std::get_if<LabeledValue>(&m))
    return 1 + core::encoded_size(lv->label) + 4 + lv->value.size();
  if (const auto* x = std::get_if<core::Summary>(&m))
    return 1 + core::encoded_size(*x);
  if (const auto* g = std::get_if<core::SummaryDigest>(&m))
    return 1 + wire::Codec<core::SummaryDigest>::size(*g, kCompactBody);
  return 1 + wire::Codec<core::SummaryDelta>::size(
                 std::get<core::SummaryDelta>(m), kCompactBody);
}

util::Buffer encode_message(const Message& m) {
  util::Encoder e;
  e.reserve(encoded_message_size(m));
  if (const auto* lv = std::get_if<LabeledValue>(&m)) {
    e.u8(kTagLabeledValue);
    core::encode(e, lv->label);
    e.str(lv->value);
  } else if (const auto* x = std::get_if<core::Summary>(&m)) {
    e.u8(kTagSummary);
    core::encode(e, *x);
  } else if (const auto* g = std::get_if<core::SummaryDigest>(&m)) {
    e.u8(kTagDigest);
    wire::Codec<core::SummaryDigest>::encode(e, *g, kCompactBody);
  } else {
    e.u8(kTagDelta);
    wire::Codec<core::SummaryDelta>::encode(
        e, std::get<core::SummaryDelta>(m), kCompactBody);
  }
  return e.finish();
}

wire::DecodeOutcome<Message> decode_message_ex(util::BufferView bytes) {
  // util::unchecked_decode() re-enables the historical accept-anything bug
  // (truncated input decodes as a zero-filled message) for chaos-oracle demos.
  const bool strict = !util::unchecked_decode();
  wire::DecodeOutcome<Message> out;
  if (bytes.empty()) {
    out.error = "empty VSTOTO payload";
    return out;
  }
  util::Decoder d(bytes);
  const std::uint8_t tag = d.u8();
  switch (tag) {
    case kTagLabeledValue: {
      LabeledValue lv;
      lv.label = core::decode_label(d);
      lv.value = d.str();
      if (strict && !d.complete()) {
        out.error = "truncated or oversized labeled-value payload";
        return out;
      }
      out.value = Message{std::move(lv)};
      return out;
    }
    case kTagSummary: {
      core::Summary x = core::decode_summary(d);
      if (strict && !d.complete()) {
        out.error = "truncated or oversized summary payload";
        return out;
      }
      out.value = Message{std::move(x)};
      return out;
    }
    case kTagDigest: {
      core::SummaryDigest g =
          wire::Codec<core::SummaryDigest>::decode(d, kCompactBody);
      if (strict && !d.complete()) {
        out.error = "truncated or oversized digest payload";
        return out;
      }
      out.value = Message{std::move(g)};
      return out;
    }
    case kTagDelta: {
      core::SummaryDelta dl =
          wire::Codec<core::SummaryDelta>::decode(d, kCompactBody);
      if (strict && !d.complete()) {
        out.error = "truncated or oversized delta payload";
        return out;
      }
      out.value = Message{std::move(dl)};
      return out;
    }
    default:
      out.error = "unknown VSTOTO payload tag " + std::to_string(tag) +
                  " (known tags 1..4; see docs/WIRE.md)";
      return out;
  }
}

std::optional<Message> decode_message(util::BufferView bytes) {
  return std::move(decode_message_ex(bytes).value);
}

std::shared_ptr<const Message> DecodeCache::decode(const util::Buffer& payload) {
  // Identity-keyed caching is only sound for real shared storage (id != 0),
  // and only while strict decoding is on — the chaos injection changes what
  // the same bytes decode to, so a warm cache would mask the injected bug.
  const bool cacheable = payload.id() != 0 && !util::unchecked_decode();
  const Key key{payload.id(), payload.storage_offset(), payload.size()};
  if (cacheable) {
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      ++hits_;
      return it->second;
    }
  }
  ++misses_;
  auto decoded = decode_message_ex(payload.view());
  if (!decoded.ok()) return nullptr;  // malformed: not cached
  auto msg = std::make_shared<const Message>(std::move(*decoded.value));
  if (cacheable) {
    if (order_.size() >= capacity_ && !order_.empty()) {
      by_key_.erase(order_.front());
      order_.pop_front();
    }
    by_key_.emplace(key, msg);
    order_.push_back(key);
  }
  return msg;
}

}  // namespace vsg::vstoto
