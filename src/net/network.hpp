#pragma once

// Simulated asynchronous point-to-point network.
//
// Packets are opaque immutable byte buffers (everything above serializes),
// routed between processors subject to the FailureTable:
//  - the ordered-pair link status is consulted at send time (bad => drop,
//    good => delay in [min_delay, delta], ugly => RNG drop/delay), and again
//    at delivery time (a link that has become bad in flight drops the
//    packet, matching "while bad, no packet is delivered");
//  - processor status is NOT interpreted here; stopping/slowing a processor
//    is the receiving executor's job (bad processors take no steps).
//
// Zero-copy data plane (docs/DATAPLANE.md): a multicast/broadcast shares one
// util::Buffer across all destinations — fan-out costs refcount bumps, not
// payload copies. The only physical copy the network ever makes is
// copy-on-corrupt: an ugly link that flips bits materializes a private copy
// for that destination so the shared storage stays immutable. The
// bytes_copied / buffer_allocs / buffer_shares counters make this visible.

#include <cstdint>
#include <functional>
#include <vector>

#include "net/link_model.hpp"
#include "obs/metrics.hpp"
#include "sim/failure_table.hpp"
#include "sim/simulator.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace vsg::obs {
class SpanTracer;
}

namespace vsg::net {

struct NetStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  // Frame-version census (docs/WIRE.md): the leading version byte of every
  // sent packet. `unknown` should stay 0 unless a test forges frames.
  std::uint64_t frames_v1 = 0;
  std::uint64_t frames_v2 = 0;
  std::uint64_t frames_v3 = 0;
  std::uint64_t frames_unknown = 0;
  // Zero-copy accounting.
  std::uint64_t bytes_copied = 0;    // payload bytes physically copied
  std::uint64_t buffer_allocs = 0;   // logical packet buffers entering the plane
  std::uint64_t buffer_shares = 0;   // extra zero-copy references (fan-out)
};

/// Logical port on the shared substrate. Each protocol stack instance
/// (shard) claims one port; traffic is routed by (port, destination), so a
/// frame sent on one port can never reach — let alone cross-decode in —
/// another port's stack. Port 0 is the default and is what every
/// single-stack caller uses implicitly.
using Port = int;

class Network {
 public:
  /// Handler invoked at the destination when a packet arrives. The Buffer is
  /// shared — keep slices, not copies.
  using Handler = std::function<void(ProcId src, const util::Buffer& packet)>;

  Network(sim::Simulator& simulator, sim::FailureTable& failures, LinkModel model,
          util::Rng rng);

  int size() const noexcept { return failures_->size(); }

  /// Register the receive handler for processor p (one per processor and
  /// port). The two-arg form attaches on port 0.
  void attach(ProcId p, Handler handler) { attach(0, p, std::move(handler)); }
  void attach(Port port, ProcId p, Handler handler);

  /// Send one packet from p to q. Self-sends are delivered with min delay
  /// regardless of failure status (local loopback never partitions).
  void send(ProcId p, ProcId q, util::Buffer packet, Port port = 0);

  /// Send the same packet from p to every processor in `dests`: one shared
  /// buffer, zero payload copies regardless of fan-out.
  void multicast(ProcId p, const std::vector<ProcId>& dests, const util::Buffer& packet,
                 Port port = 0);

  /// Send from p to all n processors except p (shared buffer, as above).
  void broadcast(ProcId p, const util::Buffer& packet, Port port = 0);

  const NetStats& stats() const noexcept { return stats_; }
  const LinkModel& model() const noexcept { return model_; }

  /// Publish packet/byte counters into `registry` (names: net.*). Counter
  /// references are cached, so binding costs nothing on the send path.
  void bind_metrics(obs::MetricsRegistry& registry);

  /// Attach a causal span tracer (null detaches): every delivered packet
  /// becomes a net.packet transit span. The tracer never touches the RNG or
  /// the schedule, so traced and untraced runs stay bit-identical. The
  /// one-arg form serves port 0; multi-shard Worlds attach one tracer per
  /// port so each shard's packet spans land in its own trace.
  void set_tracer(obs::SpanTracer* tracer) noexcept { set_tracer(0, tracer); }
  void set_tracer(Port port, obs::SpanTracer* tracer) noexcept;

 private:
  void send_one(ProcId p, ProcId q, util::Buffer packet, Port port);
  void deliver(ProcId src, ProcId dst, util::Buffer packet, Port port);
  obs::SpanTracer* tracer_for(Port port) const noexcept {
    const auto i = static_cast<std::size_t>(port);
    return i < tracers_.size() ? tracers_[i] : nullptr;
  }

  struct Obs {
    obs::Counter* packets_sent = nullptr;
    obs::Counter* packets_delivered = nullptr;
    obs::Counter* packets_dropped = nullptr;
    obs::Counter* packets_corrupted = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_delivered = nullptr;
    obs::Counter* frames_v1 = nullptr;
    obs::Counter* frames_v2 = nullptr;
    obs::Counter* frames_v3 = nullptr;
    obs::Counter* frames_unknown = nullptr;
    obs::Counter* bytes_copied = nullptr;
    obs::Counter* buffer_allocs = nullptr;
    obs::Counter* buffer_shares = nullptr;
  };

  sim::Simulator* sim_;
  sim::FailureTable* failures_;
  LinkModel model_;
  util::Rng rng_;
  /// handlers_[port][proc]; ports are created lazily by attach().
  std::vector<std::vector<Handler>> handlers_;
  NetStats stats_;
  Obs obs_;
  /// tracers_[port]; grown lazily by set_tracer().
  std::vector<obs::SpanTracer*> tracers_;
};

/// A port-scoped view of the shared Network. Mirrors the Network send/attach
/// surface minus the port parameter, so a protocol stack written against one
/// "network" compiles unchanged whether it owns the substrate (port 0) or is
/// one shard among K. Copyable, non-owning.
class Endpoint {
 public:
  Endpoint(Network& network, Port port) : net_(&network), port_(port) {}

  int size() const noexcept { return net_->size(); }
  Port port() const noexcept { return port_; }
  Network& underlying() noexcept { return *net_; }

  void attach(ProcId p, Network::Handler handler) {
    net_->attach(port_, p, std::move(handler));
  }
  void send(ProcId p, ProcId q, util::Buffer packet) {
    net_->send(p, q, std::move(packet), port_);
  }
  void multicast(ProcId p, const std::vector<ProcId>& dests, const util::Buffer& packet) {
    net_->multicast(p, dests, packet, port_);
  }
  void broadcast(ProcId p, const util::Buffer& packet) { net_->broadcast(p, packet, port_); }

  const NetStats& stats() const noexcept { return net_->stats(); }
  const LinkModel& model() const noexcept { return net_->model(); }

 private:
  Network* net_;
  Port port_;
};

}  // namespace vsg::net
