#pragma once

// Link timing/loss model.
//
// Realizes the paper's channel semantics (Sections 3.2/8):
//   good link: every packet arrives within delta of sending;
//   bad link:  no packet is delivered;
//   ugly link: packets may or may not arrive, with no timing bound.

#include <optional>

#include "sim/failure_table.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace vsg::net {

struct LinkModel {
  /// Minimum propagation delay on a good link.
  sim::Time min_delay = sim::usec(100);
  /// The paper's delta: maximum delay on a good link.
  sim::Time delta = sim::msec(5);
  /// Drop probability on an ugly link.
  double ugly_drop = 0.5;
  /// Maximum delay on an ugly packet that is delivered (>= delta).
  sim::Time ugly_max_delay = sim::msec(500);
  /// Probability that a delivered ugly packet arrives corrupted (random
  /// byte flips). Receivers must treat the wire as untrusted.
  double ugly_corrupt = 0.0;

  /// Decide the fate of one packet sent while the link has status `s`:
  /// nullopt means dropped, otherwise the propagation delay.
  std::optional<sim::Time> decide(sim::Status s, util::Rng& rng) const;
};

}  // namespace vsg::net
