#include "net/link_model.hpp"

namespace vsg::net {

std::optional<sim::Time> LinkModel::decide(sim::Status s, util::Rng& rng) const {
  switch (s) {
    case sim::Status::kBad:
      return std::nullopt;
    case sim::Status::kGood:
      return rng.range(min_delay, delta);
    case sim::Status::kUgly:
      if (rng.chance(ugly_drop)) return std::nullopt;
      return rng.range(min_delay, ugly_max_delay);
  }
  return std::nullopt;
}

}  // namespace vsg::net
