#include "net/network.hpp"

#include <cassert>
#include <utility>

#include "obs/span.hpp"

namespace vsg::net {

Network::Network(sim::Simulator& simulator, sim::FailureTable& failures, LinkModel model,
                 util::Rng rng)
    : sim_(&simulator), failures_(&failures), model_(model), rng_(rng) {
  handlers_.emplace_back(static_cast<std::size_t>(failures.size()));
}

void Network::attach(Port port, ProcId p, Handler handler) {
  assert(port >= 0);
  assert(p >= 0 && p < size());
  if (static_cast<std::size_t>(port) >= handlers_.size())
    handlers_.resize(static_cast<std::size_t>(port) + 1,
                     std::vector<Handler>(static_cast<std::size_t>(size())));
  handlers_[static_cast<std::size_t>(port)][static_cast<std::size_t>(p)] = std::move(handler);
}

void Network::set_tracer(Port port, obs::SpanTracer* tracer) noexcept {
  assert(port >= 0);
  if (static_cast<std::size_t>(port) >= tracers_.size())
    tracers_.resize(static_cast<std::size_t>(port) + 1, nullptr);
  tracers_[static_cast<std::size_t>(port)] = tracer;
}

void Network::bind_metrics(obs::MetricsRegistry& registry) {
  obs_.packets_sent = &registry.counter("net.packets_sent");
  obs_.packets_delivered = &registry.counter("net.packets_delivered");
  obs_.packets_dropped = &registry.counter("net.packets_dropped");
  obs_.packets_corrupted = &registry.counter("net.packets_corrupted");
  obs_.bytes_sent = &registry.counter("net.bytes_sent");
  obs_.bytes_delivered = &registry.counter("net.bytes_delivered");
  obs_.frames_v1 = &registry.counter("net.frames.v1");
  obs_.frames_v2 = &registry.counter("net.frames.v2");
  obs_.frames_v3 = &registry.counter("net.frames.v3");
  obs_.frames_unknown = &registry.counter("net.frames.unknown");
  obs_.bytes_copied = &registry.counter("net.bytes_copied");
  obs_.buffer_allocs = &registry.counter("net.buffer_allocs");
  obs_.buffer_shares = &registry.counter("net.buffer_shares");
}

void Network::send(ProcId p, ProcId q, util::Buffer packet, Port port) {
  ++stats_.buffer_allocs;
  obs::bump(obs_.buffer_allocs);
  send_one(p, q, std::move(packet), port);
}

void Network::send_one(ProcId p, ProcId q, util::Buffer packet, Port port) {
  assert(p >= 0 && p < size() && q >= 0 && q < size());
  ++stats_.packets_sent;
  stats_.bytes_sent += packet.size();
  if (obs_.packets_sent != nullptr) {
    obs_.packets_sent->inc();
    obs_.bytes_sent->inc(packet.size());
  }
  // Census the frame's leading version byte (the network is payload-agnostic
  // otherwise; this peek exists so mixed-version runs are observable).
  const std::uint8_t version = packet.empty() ? 0 : packet.view()[0];
  switch (version) {
    case 1: ++stats_.frames_v1; obs::bump(obs_.frames_v1); break;
    case 2: ++stats_.frames_v2; obs::bump(obs_.frames_v2); break;
    case 3: ++stats_.frames_v3; obs::bump(obs_.frames_v3); break;
    default: ++stats_.frames_unknown; obs::bump(obs_.frames_unknown); break;
  }

  if (p == q) {
    if (auto* tr = tracer_for(port)) tr->packet_sent(p, q, packet.id(), sim_->now());
    sim_->after(model_.min_delay, [this, p, q, port, pkt = std::move(packet)]() mutable {
      deliver(p, q, std::move(pkt), port);
    });
    return;
  }

  const sim::Status status = failures_->link(p, q);
  const auto fate = model_.decide(status, rng_);
  if (!fate) {
    ++stats_.packets_dropped;
    if (obs_.packets_dropped != nullptr) obs_.packets_dropped->inc();
    return;
  }
  // Ugly links may also corrupt what they deliver. Copy-on-corrupt: the
  // flipped bytes go into a private buffer for this destination only; the
  // shared storage other destinations hold stays pristine.
  if (status == sim::Status::kUgly && !packet.empty() &&
      rng_.chance(model_.ugly_corrupt)) {
    util::Bytes mut = packet.to_bytes();
    const std::size_t flips = 1 + rng_.below(3);
    for (std::size_t i = 0; i < flips; ++i)
      mut[rng_.below(mut.size())] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
    stats_.bytes_copied += mut.size();
    ++stats_.buffer_allocs;
    packet = util::Buffer(std::move(mut));
    ++stats_.packets_corrupted;
    if (obs_.packets_corrupted != nullptr) {
      obs_.packets_corrupted->inc();
      obs_.bytes_copied->inc(packet.size());
      obs_.buffer_allocs->inc();
    }
  }
  // Span hook after copy-on-corrupt so the uid matches what deliver() sees.
  if (auto* tr = tracer_for(port)) tr->packet_sent(p, q, packet.id(), sim_->now());
  sim_->after(*fate, [this, p, q, port, pkt = std::move(packet)]() mutable {
    deliver(p, q, std::move(pkt), port);
  });
}

void Network::deliver(ProcId src, ProcId dst, util::Buffer packet, Port port) {
  // A link that went bad while the packet was in flight loses it.
  if (src != dst && failures_->link(src, dst) == sim::Status::kBad) {
    ++stats_.packets_dropped;
    if (obs_.packets_dropped != nullptr) obs_.packets_dropped->inc();
    return;
  }
  ++stats_.packets_delivered;
  stats_.bytes_delivered += packet.size();
  if (obs_.packets_delivered != nullptr) {
    obs_.packets_delivered->inc();
    obs_.bytes_delivered->inc(packet.size());
  }
  if (auto* tr = tracer_for(port)) tr->packet_delivered(src, dst, packet.id(), sim_->now());
  if (static_cast<std::size_t>(port) >= handlers_.size()) return;
  auto& handler = handlers_[static_cast<std::size_t>(port)][static_cast<std::size_t>(dst)];
  if (handler) handler(src, packet);
}

void Network::multicast(ProcId p, const std::vector<ProcId>& dests, const util::Buffer& packet,
                        Port port) {
  ++stats_.buffer_allocs;
  obs::bump(obs_.buffer_allocs);
  bool first = true;
  for (ProcId q : dests) {
    if (!first) {
      ++stats_.buffer_shares;
      obs::bump(obs_.buffer_shares);
    }
    first = false;
    send_one(p, q, packet, port);  // refcount bump, not a payload copy
  }
}

void Network::broadcast(ProcId p, const util::Buffer& packet, Port port) {
  ++stats_.buffer_allocs;
  obs::bump(obs_.buffer_allocs);
  bool first = true;
  for (ProcId q = 0; q < size(); ++q) {
    if (q == p) continue;
    if (!first) {
      ++stats_.buffer_shares;
      obs::bump(obs_.buffer_shares);
    }
    first = false;
    send_one(p, q, packet, port);
  }
}

}  // namespace vsg::net
