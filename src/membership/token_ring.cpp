// Token-ring ordering: the half of Node that handles the circulating token
// (see membership.hpp). The token is the view's single serialization point:
// its entry sequence *is* the per-view total order, and its per-member
// delivered counters drive the safe indications.

#include <algorithm>
#include <cassert>

#include "membership/membership.hpp"
#include "membership/token_ring_vs.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"

namespace vsg::membership {

void Node::launch_tick(std::uint64_t gen) {
  if (gen != view_gen_ || !view_.has_value()) return;  // stale timer
  const auto& cfg = parent_->config();
  if (!self_bad()) {
    if (token_out_) {
      // The previous token did not return within pi (> n*delta): it is lost
      // or the ring is broken. Never relaunch stale token state — members
      // may hold entries the parked copy lacks; form a new view instead.
      maybe_propose();
    } else {
      token_.lap += 1;
      process_token(token_);
      if (view_->members.size() > 1) {
        forward_token(token_, successor());
        token_out_ = true;
      }
      // Singleton view: the lap completes locally; the token stays parked.
    }
  }
  parent_->simulator().after(cfg.pi, [this, gen] { launch_tick(gen); });
}

void Node::handle_token(ProcId src, Token t) {
  (void)src;
  max_epoch_ = std::max(max_epoch_, t.gid.epoch);
  if (!view_.has_value() || !(t.gid == view_->id)) return;  // stale view's token
  last_token_seen_ = parent_->simulator().now();
  process_token(t);
  if (is_leader()) {
    // Lap complete: park the token until the next launch tick.
    token_ = std::move(t);
    token_out_ = false;
  } else {
    forward_token(t, successor());
  }
}

void Node::process_token(Token& t) {
  ++stats_.tokens_processed;
  obs::bump(parent_->obs().tokens_processed);

  // 1. Absorb entries we have not seen (the token is authoritative for the
  // order; indices are t.base + k).
  for (std::size_t k = 0; k < t.entries.size(); ++k) {
    const std::size_t idx = static_cast<std::size_t>(t.base) + k;
    if (idx == log_.size()) {
      log_.push_back(t.entries[k]);
    } else if (idx < log_.size() && !(log_[idx] == t.entries[k])) {
      // Cannot happen while a single token per view exists; defensive.
      VSG_ERROR << "node " << me_ << ": token order mismatch at index " << idx;
    }
  }

  // 2. Deliver everything not yet passed to the client, in order.
  while (delivered_ < log_.size()) {
    const auto& [src, payload] = log_[delivered_];
    ++delivered_;
    ++stats_.entries_delivered;
    obs::bump(parent_->obs().entries_delivered);
    parent_->emit_gprcv(me_, src, payload);
  }

  // 3. Board the buffered backlog onto the token as one batch (and deliver
  // the entries to ourselves — we are a view member like any other), up to
  // the per-pass flow-control cap and byte budget (docs/FLOWCONTROL.md).
  // The budget is checked before each payload boards, so the first payload
  // always boards — a budget smaller than one payload still moves one
  // payload per pass. The client's on_gprcv may submit more messages; the
  // loops drain those too, within the same per-pass bounds.
  const TokenRingConfig& cfg = parent_->config();
  const std::size_t cap = cfg.max_entries_per_pass;
  const std::size_t budget = cfg.board_budget_bytes;
  std::size_t boarded = 0;
  std::int64_t boarded_bytes = 0;
  const auto within_budget = [&] {
    return (cap == 0 || boarded < cap) &&
           (budget == 0 || static_cast<std::size_t>(boarded_bytes) < budget);
  };
  const auto board_one = [&](std::deque<util::Buffer>& lane) {
    ++boarded;
    util::Buffer payload = std::move(lane.front());
    lane.pop_front();
    boarded_bytes += static_cast<std::int64_t>(payload.size());
    log_.emplace_back(me_, payload);  // shares storage with the submission
    // Boarding is an origin-side milestone: the payload still carries the
    // storage uid the client's gpsnd buffer had, which is how the tracer
    // maps it back to its label without decoding.
    if (auto* tracer = parent_->tracer())
      tracer->msg_boarded(me_, payload.id(), parent_->simulator().now());
    t.entries.emplace_back(me_, std::move(payload));
    ++delivered_;
    ++stats_.entries_delivered;
    obs::bump(parent_->obs().entries_delivered);
    parent_->emit_gprcv(me_, me_, log_.back().second);
  };
  // Urgent lane first: state-exchange traffic preempts bulk within a pass
  // (empty unless config.lanes routed payloads there at submit).
  while (!outbox_urgent_.empty() && within_budget()) board_one(outbox_urgent_);
  // Bulk lane: within budget, plus a guaranteed minimum share per pass so
  // sustained urgent traffic can never starve client values. With lanes
  // off this floor is unreachable (the first bulk payload is always within
  // budget), keeping the default path bit-identical to pre-lane boarding.
  std::size_t bulk_boarded = 0;
  while (!outbox_.empty() && (within_budget() || bulk_boarded < cfg.bulk_min_share)) {
    board_one(outbox_);
    ++bulk_boarded;
  }
  // Urgent payloads submitted by on_gprcv reactions during bulk boarding
  // still get this pass's remaining budget.
  while (!outbox_urgent_.empty() && within_budget()) board_one(outbox_urgent_);
  // The batch is one same-source run: under wire v2 it becomes a single
  // cold segment (one splice build per pass; the rest of the cached
  // entries section stays warm), under v1 it invalidates the whole
  // section cache — exactly the pre-batching behavior.
  t.note_boarded(boarded);
  if (auto* h = parent_->obs().payloads_per_pass) h->observe(static_cast<std::int64_t>(boarded));
  if (auto* h = parent_->obs().board_bytes_per_pass) h->observe(boarded_bytes);
  if (boarded > 0)
    if (auto* g = parent_->obs().backlog_depth)
      g->add(-static_cast<std::int64_t>(boarded));

  // 4. Record how many entries we have passed to the client.
  t.delivered[me_] = static_cast<std::uint32_t>(delivered_);

  // 5. Safe indications: every entry below the minimum delivered counter has
  // been passed to the client at every member.
  std::uint32_t threshold = static_cast<std::uint32_t>(delivered_);
  for (ProcId r : view_->members) {
    const auto it = t.delivered.find(r);
    threshold = std::min(threshold, it == t.delivered.end() ? 0 : it->second);
  }
  while (safe_emitted_ < threshold) {
    const auto& [src, payload] = log_[safe_emitted_];
    ++safe_emitted_;
    ++stats_.safes_emitted;
    obs::bump(parent_->obs().safes_emitted);
    parent_->emit_safe(me_, src, payload);
  }

  if (t.entries.size() > stats_.max_token_entries)
    stats_.max_token_entries = t.entries.size();
  if (parent_->obs().max_token_entries != nullptr)
    parent_->obs().max_token_entries->max_of(static_cast<std::int64_t>(t.entries.size()));

  // 6. Trim: entries below the threshold are delivered everywhere and never
  // needed again; drop them so the token stays small.
  if (parent_->config().trim_token && threshold > t.base) {
    const std::size_t drop =
        std::min<std::size_t>(threshold - t.base, t.entries.size());
    t.entries.erase(t.entries.begin(), t.entries.begin() + static_cast<std::ptrdiff_t>(drop));
    t.base = threshold;
    // v1: invalidates the whole section cache; v2: drops covered segments
    // whole, only a split boundary segment goes cold.
    t.note_trimmed(drop);
  }

  // 7. The pass freed backlog space: let deferred sends behind the
  // admission gate re-enter (docs/FLOWCONTROL.md). Anything they submit
  // waits for the next pass — this pass's token is already formed.
  if (boarded > 0) parent_->notify_drained(me_);
}

void Node::forward_token(const Token& t, ProcId to) {
  // The variant copy shares entry storage with t (refcounts, not bytes).
  // Encoding warms the copy's entries-section wire caches; propagate them
  // back to t so the next forward of an unmutated token splices instead of
  // re-encoding (the caches are mutable — cache state, not data).
  Packet pkt{t};
  WireEncodeStats wire_stats;
  util::Buffer packet = encode_packet(pkt, parent_->config().wire, &wire_stats);
  const Token& encoded = std::get<Token>(pkt);
  t.entries_wire = encoded.entries_wire;
  t.entries_segs = encoded.entries_segs;
  t.segs_version = encoded.segs_version;
  stats_.entries_rebuilt += wire_stats.entries_rebuilt;
  stats_.entries_spliced += wire_stats.entries_spliced;
  obs::bump(parent_->obs().entries_rebuilds, wire_stats.entries_rebuilt);
  obs::bump(parent_->obs().entries_spliced, wire_stats.entries_spliced);
  stats_.token_bytes_sent += packet.size();
  obs::bump(parent_->obs().token_bytes_sent, packet.size());
  parent_->network().send(me_, to, std::move(packet));
}

}  // namespace vsg::membership
