#include "membership/membership.hpp"

#include <algorithm>
#include <cassert>

#include "membership/token_ring_vs.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"

namespace vsg::membership {

Node::Node(ProcId me, TokenRingVS& parent, util::Rng rng)
    : me_(me),
      parent_(&parent),
      rng_(rng),
      last_heard_(static_cast<std::size_t>(parent.size()), -1) {}

bool Node::self_bad() const {
  return parent_->failures().proc(me_) == sim::Status::kBad;
}

bool Node::is_leader() const {
  return view_.has_value() && *view_->members.begin() == me_;
}

ProcId Node::successor() const {
  assert(view_.has_value());
  auto it = view_->members.find(me_);
  assert(it != view_->members.end());
  ++it;
  return it == view_->members.end() ? *view_->members.begin() : *it;
}

void Node::start(bool in_initial_view, int n0) {
  if (in_initial_view) install_view(core::initial_view(n0), /*initial=*/true);
  // Stagger probe ticks so simultaneous starts do not synchronize proposals.
  parent_->simulator().after(rng_.range(0, parent_->config().mu), [this] { probe_tick(); });
}

void Node::submit(vs::Payload m) {
  if (!view_.has_value()) return;  // bottom view: silently lost (Figure 6)
  // Urgency lanes (docs/FLOWCONTROL.md): a tag-byte peek — not a decode —
  // routes state-exchange payloads to the urgent lane so they preempt bulk
  // client values at the next boarding pass.
  const bool urgent = parent_->config().lanes && !m.empty() &&
                      (m[0] == wire::kPayloadSummary || m[0] == wire::kPayloadDigest ||
                       m[0] == wire::kPayloadDelta);
  (urgent ? outbox_urgent_ : outbox_).push_back(std::move(m));
  if (auto* g = parent_->obs().backlog_depth) {
    g->add(1);
    if (auto* peak = parent_->obs().backlog_peak) peak->max_of(g->value());
  }
}

void Node::on_packet(ProcId src, const util::Buffer& packet) {
  switch (parent_->failures().proc(me_)) {
    case sim::Status::kBad:
      return;  // a stopped processor takes no steps
    case sim::Status::kUgly: {
      // Nondeterministic speed: handle after a random extra delay (and
      // re-check status then — the processor may have stopped meanwhile).
      // Retaining the packet costs a refcount, not a byte copy.
      const sim::Time extra = rng_.range(0, parent_->config().ugly_proc_max_delay);
      parent_->simulator().after(extra, [this, src, packet] {
        if (!self_bad()) dispatch(src, packet);
      });
      return;
    }
    case sim::Status::kGood:
      break;
  }
  dispatch(src, packet);
}

void Node::dispatch(ProcId src, const util::Buffer& packet) {
  if (src >= 0 && src < parent_->size())
    last_heard_[static_cast<std::size_t>(src)] = parent_->simulator().now();
  auto decoded = decode_packet_ex(packet);
  if (!decoded.ok()) {
    VSG_WARN << "node " << me_ << ": rejected packet from " << src << ": "
             << decoded.error;
    return;
  }
  auto& pkt = decoded.packet;
  if (const auto* c = std::get_if<Call>(&*pkt))
    handle_call(src, *c);
  else if (const auto* r = std::get_if<CallReply>(&*pkt))
    handle_call_reply(src, *r);
  else if (const auto* a = std::get_if<ViewAnnounce>(&*pkt))
    handle_announce(src, *a);
  else if (auto* t = std::get_if<Token>(&*pkt))
    handle_token(src, std::move(*t));
  else if (const auto* p = std::get_if<Probe>(&*pkt))
    handle_probe(src, *p);
}

// --- View formation ------------------------------------------------------------

void Node::maybe_propose() {
  const sim::Time now = parent_->simulator().now();
  // A proposal whose deadline passed while this processor was stopped can
  // never complete: on_proposal_deadline took no step, so proposing_ would
  // stay set forever and block every future proposal (found by the chaos
  // campaign — tests/scenarios/chaos_seed248_stuck_proposal.scn).
  if (proposing_ && now - last_propose_ > parent_->config().formation_wait())
    proposing_ = false;
  if (proposing_) return;
  if (last_propose_ >= 0 && now - last_propose_ < parent_->config().proposal_cooldown())
    return;
  initiate_proposal();
}

void Node::initiate_proposal() {
  const auto& cfg = parent_->config();
  if (cfg.formation == FormationMode::kOneRound) {
    initiate_one_round();
    return;
  }
  proposing_ = true;
  ++max_epoch_;
  prop_gid_ = core::ViewId{max_epoch_, me_};
  promised_ = prop_gid_;  // proposing counts as accepting one's own call
  prop_accepted_ = {me_};
  last_propose_ = parent_->simulator().now();
  ++stats_.proposals;
  obs::bump(parent_->obs().proposals);
  if (auto* tracer = parent_->tracer())
    tracer->view_proposed(me_, prop_gid_, last_propose_);
  VSG_DEBUG << "node " << me_ << " proposes view " << core::to_string(prop_gid_);
  parent_->network().broadcast(me_, encode_packet(Packet{Call{prop_gid_}}, cfg.wire));
  parent_->simulator().after(cfg.formation_wait(),
                             [this, gid = prop_gid_] { on_proposal_deadline(gid); });
}

void Node::initiate_one_round() {
  // Footnote 7's faster-but-cruder variant: no call/accept rounds — the
  // proposer announces a view built from its heard-from estimate. Wrong
  // estimates (stale entries, processors it has not heard from yet) are
  // corrected by later proposals triggered by token timeouts and probes,
  // which is why this variant stabilizes less quickly.
  const auto& cfg = parent_->config();
  const sim::Time now = parent_->simulator().now();
  ++max_epoch_;
  core::View v;
  v.id = core::ViewId{max_epoch_, me_};
  v.members.insert(me_);
  for (ProcId q = 0; q < parent_->size(); ++q) {
    if (q == me_) continue;
    const sim::Time heard = last_heard_[static_cast<std::size_t>(q)];
    if (heard >= 0 && now - heard <= cfg.heard_window) v.members.insert(q);
  }
  promised_ = v.id;
  last_propose_ = now;
  ++stats_.proposals;
  obs::bump(parent_->obs().proposals);
  if (auto* tracer = parent_->tracer()) tracer->view_proposed(me_, v.id, now);
  VSG_DEBUG << "node " << me_ << " one-round announces " << core::to_string(v);
  std::vector<ProcId> others(v.members.begin(), v.members.end());
  others.erase(std::remove(others.begin(), others.end(), me_), others.end());
  if (!others.empty())
    parent_->network().multicast(me_, others,
                                 encode_packet(Packet{ViewAnnounce{v}}, cfg.wire));
  install_view(v, /*initial=*/false);
}

void Node::handle_call(ProcId src, const Call& c) {
  max_epoch_ = std::max(max_epoch_, c.gid.epoch);
  // Accept iff we have not already accepted a call with a >= viewid; a
  // processor may not reply to one call after replying to another with a
  // higher viewid.
  if (!promised_.has_value() || c.gid > *promised_) {
    promised_ = c.gid;
    parent_->network().send(me_, src,
                            encode_packet(Packet{CallReply{c.gid}}, parent_->config().wire));
    // A concurrent lower proposal of ours can no longer win: abandon it.
    if (proposing_ && c.gid > prop_gid_) proposing_ = false;
  }
}

void Node::handle_call_reply(ProcId src, const CallReply& r) {
  if (proposing_ && r.gid == prop_gid_) prop_accepted_.insert(src);
}

void Node::on_proposal_deadline(core::ViewId gid) {
  if (self_bad()) return;
  if (!proposing_ || !(prop_gid_ == gid)) return;  // superseded
  proposing_ = false;
  if (promised_.has_value() && *promised_ > prop_gid_) return;  // promised higher
  core::View v;
  v.id = prop_gid_;
  v.members = prop_accepted_;
  std::vector<ProcId> others(v.members.begin(), v.members.end());
  others.erase(std::remove(others.begin(), others.end(), me_), others.end());
  if (!others.empty())
    parent_->network().multicast(
        me_, others, encode_packet(Packet{ViewAnnounce{v}}, parent_->config().wire));
  install_view(v, /*initial=*/false);
}

void Node::handle_announce(ProcId src, const ViewAnnounce& a) {
  (void)src;
  max_epoch_ = std::max(max_epoch_, a.view.id.epoch);
  if (!a.view.contains(me_)) return;
  if (promised_.has_value() && *promised_ > a.view.id) return;  // joined higher
  if (view_.has_value() && !(a.view.id > view_->id)) return;    // monotonicity
  install_view(a.view, /*initial=*/false);
}

void Node::install_view(const core::View& v, bool initial) {
  const auto& cfg = parent_->config();
  view_ = v;
  ++view_gen_;
  ++stats_.views_installed;
  obs::bump(parent_->obs().views_installed);
  if (auto* tracer = parent_->tracer())
    tracer->view_installed(me_, v.id, parent_->simulator().now());
  log_.clear();
  delivered_ = 0;
  safe_emitted_ = 0;
  const std::size_t stale = backlog();
  if (stale > 0)
    if (auto* g = parent_->obs().backlog_depth)
      g->add(-static_cast<std::int64_t>(stale));
  outbox_.clear();  // stale messages belonged to the previous view
  outbox_urgent_.clear();
  token_ = Token{};
  token_.gid = v.id;
  for (ProcId r : v.members) token_.delivered[r] = 0;
  token_out_ = false;
  last_token_seen_ = parent_->simulator().now();
  proposing_ = false;
  VSG_INFO << "node " << me_ << " installs view " << core::to_string(v);

  if (!initial) parent_->emit_newview(me_, v);

  // Arm the token machinery for this view.
  const std::uint64_t gen = view_gen_;
  if (is_leader()) {
    // First launch quickly (state exchange is waiting), then every pi.
    parent_->simulator().after(cfg.delta, [this, gen] { launch_tick(gen); });
  }
  const sim::Time check = std::max<sim::Time>(cfg.delta, cfg.pi / 4);
  parent_->simulator().after(check, [this, gen] { token_check(gen); });

  // The install cleared the backlog: deferred sends parked behind the old
  // view's congestion may re-enter now (docs/FLOWCONTROL.md).
  if (stale > 0) parent_->notify_drained(me_);
}

void Node::token_check(std::uint64_t gen) {
  if (gen != view_gen_ || !view_.has_value()) return;  // stale timer
  const auto& cfg = parent_->config();
  const sim::Time now = parent_->simulator().now();
  if (!self_bad()) {
    const sim::Time timeout = cfg.token_timeout(static_cast<int>(view_->members.size()));
    if (view_->members.size() > 1 && now - last_token_seen_ > timeout) maybe_propose();
  }
  const sim::Time check = std::max<sim::Time>(cfg.delta, cfg.pi / 4);
  parent_->simulator().after(check, [this, gen] { token_check(gen); });
}

void Node::probe_tick() {
  const auto& cfg = parent_->config();
  if (!self_bad()) {
    if (!view_.has_value()) {
      // No view at all: keep trying to form one (covers isolated startup).
      maybe_propose();
    } else {
      // One encode, one shared buffer for every stranger probed this tick.
      std::vector<ProcId> dests;
      for (ProcId q = 0; q < parent_->size(); ++q)
        if (q != me_ && !view_->contains(q)) dests.push_back(q);
      if (!dests.empty()) {
        parent_->network().multicast(me_, dests, encode_packet(Packet{Probe{view_->id}}, cfg.wire));
        stats_.probes_sent += dests.size();
        obs::bump(parent_->obs().probes_sent, dests.size());
      }
    }
  }
  parent_->simulator().after(cfg.mu + rng_.range(0, cfg.delta), [this] { probe_tick(); });
}

void Node::handle_probe(ProcId src, const Probe& p) {
  if (p.gid.has_value()) max_epoch_ = std::max(max_epoch_, p.gid->epoch);
  // Contact from a processor outside the current membership triggers view
  // formation (merge). The node with a view proposes; the cooldown keeps
  // dueling bounded while the network is still changing.
  if (!view_.has_value() || !view_->contains(src)) maybe_propose();
}

}  // namespace vsg::membership
