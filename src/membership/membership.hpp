#pragma once

// Per-processor protocol state machine for the Section 8 implementation of
// VS: Cristian-Schmuck style membership (call / accept / announce rounds,
// viewids = (epoch, proposer) so ids are unique and each processor's views
// increase), merge probing every mu, and a token ring that carries the
// per-view total order and per-member delivery counters.
//
// Timing parameters follow the paper's analysis:
//   delta — assumed maximum link delay while a link is good;
//   pi    — spacing of token launches by the ring leader (pi > n*delta);
//   mu    — spacing of attempts to contact newly connected processors.
// The paper's bounds for this protocol are
//   b = 9*delta + max{pi + (n+3)*delta, mu},  d = 2*pi + n*delta;
// our token variant propagates delivery counters with one extra lap, so we
// also report d_impl = 3*(pi + n*delta): one pi+n*delta each to board the
// token, deliver everywhere, and circulate the counters (see EXPERIMENTS.md).
//
// The class is split across two translation units: membership.cpp (view
// formation) and token_ring.cpp (token processing and ordering).

#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "membership/messages.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "vs/service.hpp"

namespace vsg::membership {

/// Membership formation protocol (Section 8 / footnote 7): the 3-round
/// call/accept/announce protocol, or the 1-round variant where the
/// proposer announces directly from its heard-from estimate. The paper
/// notes the 1-round variant "would stabilize less quickly" —
/// bench_formation_rounds measures exactly that.
enum class FormationMode : std::uint8_t { kThreeRound, kOneRound };

struct TokenRingConfig {
  sim::Time delta = sim::msec(5);  // assumed good-link delay bound
  sim::Time pi = sim::msec(40);    // token launch spacing
  sim::Time mu = sim::msec(250);   // merge-probe spacing

  /// Proposer's collection window after broadcasting a call (2 rounds).
  sim::Time formation_wait() const { return 2 * delta; }
  /// Token-loss timeout for a view of n members: pi + (n+3)*delta.
  sim::Time token_timeout(int n) const { return pi + (n + 3) * delta; }
  /// Minimum spacing between proposals initiated by one node.
  sim::Time proposal_cooldown() const { return formation_wait() + 6 * delta; }

  /// Maximum extra processing delay at an `ugly` processor (ugly = runs at
  /// nondeterministic speed; bad = stopped).
  sim::Time ugly_proc_max_delay = sim::msec(50);

  /// Trim entries that are safe everywhere off the token (ablation knob:
  /// without trimming the token grows with the view's whole history).
  bool trim_token = true;

  /// Flow control: at most this many buffered client messages board the
  /// token per pass (0 = unlimited). Bounds the token's growth per lap
  /// under bursty load; the remainder waits for the next pass.
  std::size_t max_entries_per_pass = 0;

  /// Frame formation (docs/FLOWCONTROL.md): at most this many payload
  /// bytes board the token per pass (0 = unlimited, the default — bit-
  /// identical to the pre-budget boarding). The budget is checked before
  /// each payload boards, so the first payload of a pass always boards
  /// even when it alone exceeds the budget (progress guarantee: a budget
  /// smaller than one payload still moves one payload per pass). The
  /// remainder carries to the next pass in FIFO order.
  std::size_t board_budget_bytes = 0;

  /// Urgency lanes (docs/FLOWCONTROL.md): when set, state-exchange
  /// payloads (summary/digest/delta VSTOTO tag bytes) queue in a separate
  /// urgent lane that boards before bulk client values within a pass, so
  /// view-change traffic is never stuck behind a bulk backlog. Off by
  /// default; VStoTO's status gating already orders all exchange traffic
  /// before all values per (view, sender), so enabling lanes never
  /// reorders a real VStoTO stream — it bounds the exchange's queueing
  /// delay when budgets leave a bulk backlog behind.
  bool lanes = false;

  /// Lanes only: bulk payloads guaranteed to board per pass even when
  /// urgent traffic exhausted the byte budget or entry cap — the
  /// starvation-freedom floor of the two-lane queue. Must be >= 1 when
  /// lanes are on (WorldConfig::validate enforces this).
  std::size_t bulk_min_share = 1;

  /// Sender-side backpressure threshold (docs/FLOWCONTROL.md): when > 0
  /// the harness arms to::Stack's admission gate — once a processor's
  /// boarding backlog reaches this many entries, Stack::bcast defers the
  /// send (admitted when the ring drains) and Stack::trysend sheds it.
  /// 0 (default) leaves the gate off and registers no gate metrics.
  std::size_t admission_max_backlog = 0;

  /// Wire version every packet this node encodes is framed as (docs/
  /// WIRE.md). Decoders accept all known versions regardless; recorded
  /// chaos scenarios pin this (`config wire N`) to the version they were
  /// minimized under so replays stay byte-for-byte reproducible.
  WireFormat wire = kDefaultWireFormat;

  /// Logical network port this ring instance claims on the shared
  /// substrate (net::Port). Each shard's ring runs on its own port, so a
  /// frame from one ring can never reach — let alone cross-decode in —
  /// another ring's nodes. Assigned by the harness (shard index); leave 0
  /// for a single-stack World.
  int port = 0;

  /// Membership formation protocol.
  FormationMode formation = FormationMode::kThreeRound;
  /// 1-round only: a processor counts as connected if heard from within
  /// this window.
  sim::Time heard_window = sim::msec(600);
};

struct NodeStats {
  std::uint64_t proposals = 0;
  std::uint64_t views_installed = 0;
  std::uint64_t tokens_processed = 0;
  std::uint64_t entries_delivered = 0;
  std::uint64_t safes_emitted = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t token_bytes_sent = 0;   // encoded size of forwarded tokens
  std::uint64_t max_token_entries = 0;  // peak entry count seen on a token
  // Entries-cache effectiveness when encoding tokens (see WireEncodeStats):
  // serialized-from-structs vs carried by verbatim splice of a warm cache.
  std::uint64_t entries_rebuilt = 0;
  std::uint64_t entries_spliced = 0;
};

class TokenRingVS;

class Node {
 public:
  Node(ProcId me, TokenRingVS& parent, util::Rng rng);

  /// Arm timers; processors in the initial view install it silently
  /// (clients already know v0, per the specification's hybrid initial-view
  /// rule — no newview event is emitted for it).
  void start(bool in_initial_view, int n0);

  /// A packet arrived from the network. A bad processor drops it (stopped
  /// processors take no steps); an ugly one handles it after a random
  /// extra delay (nondeterministic speed). The buffer is shared with the
  /// network; a delayed handler retains it by reference, not by copy.
  void on_packet(ProcId src, const util::Buffer& packet);

  /// Client gpsnd at this processor. Silently dropped when the node has no
  /// view (the paper's bottom-view rule).
  void submit(vs::Payload m);

  const std::optional<core::View>& view() const noexcept { return view_; }
  const NodeStats& stats() const noexcept { return stats_; }

  /// Boarding backlog: submitted payloads (both lanes) waiting to board a
  /// token. The admission gate's depth signal (docs/FLOWCONTROL.md).
  std::size_t backlog() const noexcept { return outbox_.size() + outbox_urgent_.size(); }

 private:
  // --- membership.cpp -------------------------------------------------------
  void dispatch(ProcId src, const util::Buffer& packet);
  void handle_call(ProcId src, const Call& c);
  void handle_call_reply(ProcId src, const CallReply& r);
  void handle_announce(ProcId src, const ViewAnnounce& a);
  void handle_probe(ProcId src, const Probe& p);
  void maybe_propose();
  void initiate_proposal();
  void initiate_one_round();
  void on_proposal_deadline(core::ViewId gid);
  void install_view(const core::View& v, bool initial);
  void token_check(std::uint64_t gen);
  void probe_tick();
  bool is_leader() const;
  ProcId successor() const;
  bool self_bad() const;

  // --- token_ring.cpp -------------------------------------------------------
  void handle_token(ProcId src, Token t);
  void launch_tick(std::uint64_t gen);
  void process_token(Token& t);
  void forward_token(const Token& t, ProcId to);

  ProcId me_;
  TokenRingVS* parent_;
  util::Rng rng_;

  // Membership state.
  std::optional<core::View> view_;
  std::optional<core::ViewId> promised_;  // highest viewid accepted
  std::uint64_t max_epoch_ = 0;
  bool proposing_ = false;
  core::ViewId prop_gid_;
  std::set<ProcId> prop_accepted_;
  sim::Time last_propose_ = -1;
  std::uint64_t view_gen_ = 0;  // bumped on install; stale timers no-op
  std::vector<sim::Time> last_heard_;  // per-processor last packet time

  // Per-view ordering state (reset on install). Payloads are shared
  // Buffers: the log and outbox hold references into the packets / client
  // submissions that carried them, never copies.
  std::vector<std::pair<ProcId, util::Buffer>> log_;  // the view's common order
  std::size_t delivered_ = 0;                         // gprcv'd prefix (== log_.size())
  std::size_t safe_emitted_ = 0;                      // safe'd prefix
  std::deque<util::Buffer> outbox_;                   // bulk lane: client values
  std::deque<util::Buffer> outbox_urgent_;            // urgent lane (config.lanes)

  // Leader token custody.
  Token token_;
  bool token_out_ = false;
  sim::Time last_token_seen_ = 0;

  NodeStats stats_;
};

}  // namespace vsg::membership
