#pragma once

// Protocol packets of the Section 8 implementation: the Cristian-Schmuck
// membership rounds (call-for-participation / accept / join) plus the
// circulating token that carries the per-view message order and per-member
// delivery counters, and the merge probe.

#include <map>
#include <optional>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "util/buffer.hpp"
#include "util/serde.hpp"

namespace vsg::membership {

/// Round 1: broadcast call-for-participation in a new view.
struct Call {
  core::ViewId gid;
};

/// Round 2: accept — the receiver agrees to participate (and will not reply
/// to any call with a smaller viewid afterwards).
struct CallReply {
  core::ViewId gid;
};

/// Round 3: the proposer announces the decided membership; receivers join
/// unless they have promised a higher viewid.
struct ViewAnnounce {
  core::View view;
};

/// The circulating token. `base` is the order index of entries[0]; entries
/// below `base` are safe everywhere and have been trimmed. `delivered[r]` is
/// the number of order entries member r had passed to its client when the
/// token last left r.
struct Token {
  core::ViewId gid;
  std::uint32_t lap = 0;
  std::uint32_t base = 0;
  /// Ordered payloads; each Buffer is a slice of the packet that carried it
  /// (absorb) or the client's original submission (board) — never a copy.
  std::vector<std::pair<ProcId, util::Buffer>> entries;
  std::map<ProcId, std::uint32_t> delivered;

  /// Cached wire image of the entries section (count + entries). Set by
  /// decode_packet / encode_packet; MUST be cleared by any code that mutates
  /// `entries` (boarding, trimming), or forward_token re-sends stale bytes.
  /// Empty <=> invalid (a real entries section is at least its 4-byte count).
  /// With the cache warm, forwarding a token re-encodes only the mutated
  /// header/counter fields and splices the payload section verbatim.
  mutable util::Buffer entries_wire;
};

/// Periodic contact attempt towards processors outside the current view;
/// receiving one from a stranger triggers view formation (merge).
struct Probe {
  std::optional<core::ViewId> gid;  // sender's current view, if any
};

using Packet = std::variant<Call, CallReply, ViewAnnounce, Token, Probe>;

/// Exact wire size of `pkt` (frame header + body). encode_packet reserves
/// precisely this, so the whole encode costs one allocation.
std::size_t encoded_packet_size(const Packet& pkt);

/// Encode with exact measured reserve: one allocation per packet (tests
/// assert Encoder::allocs() == 1). Checksum-framed; for a Token the cached
/// entries_wire section is spliced if warm, and warmed (zero-copy, a slice
/// of the returned packet) if cold.
util::Buffer encode_packet(const Packet& pkt);

/// Decode from a shared packet buffer. Token entry payloads and entries_wire
/// come out as slices of `packet` (no payload copies).
std::optional<Packet> decode_packet(const util::Buffer& packet);

/// Deprecated shim for callers still holding plain bytes (copies once).
std::optional<Packet> decode_packet(const util::Bytes& bytes);

}  // namespace vsg::membership
