#pragma once

// Protocol packets of the Section 8 implementation: the Cristian-Schmuck
// membership rounds (call-for-participation / accept / join) plus the
// circulating token that carries the per-view message order and per-member
// delivery counters, and the merge probe.
//
// Every packet travels in a versioned checksummed frame; the byte-level
// layouts (frame header, v1 flat entries, v2 batched entry segments, v3
// varint bodies) are specified in docs/WIRE.md. The wire version is an
// encoding choice (TokenRingConfig::wire); decoders accept every known
// version and reject unknown version bytes loudly regardless of the chaos
// unchecked-decode injection. Byte layouts live in wire::Codec
// specializations (core/codec.hpp plus the Token/FrameHeader codecs below);
// this header's free functions are the packet-level entry points over them.

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/codec.hpp"
#include "core/types.hpp"
#include "util/buffer.hpp"
#include "util/serde.hpp"

namespace vsg::membership {

/// The frame-header version set and names now live in wire::Version
/// (core/codec.hpp); membership keeps its historical aliases.
using WireFormat = wire::Version;
using wire::to_string;

// v3 (varint/delta frame bodies + digest/delta state exchange) became the
// default after its evaluation PR shipped a 22.9x state-exchange-bytes
// drop at identical deliveries and a full v2-vs-v3 cross-checked campaign;
// docs/WIRE.md records the flip recipe. v1/v2 remain fully decodable and
// encodable (TokenRingConfig::wire / scenario `config wire` pins).
constexpr WireFormat kDefaultWireFormat = WireFormat::kV3;

/// The fixed-width frame prelude every packet starts with:
/// u8 version | u32 checksum | u32 body length (9 bytes under every
/// version, so the checksum can be back-patched in place). The checksum
/// covers the version byte and the body, so corrupting the version byte
/// into another *known* version can never reinterpret the body under the
/// wrong layout.
struct FrameHeader {
  std::uint8_t version = 0;
  std::uint32_t checksum = 0;
  std::uint32_t body_len = 0;

  bool operator==(const FrameHeader&) const = default;
};

inline constexpr std::size_t kFrameHeaderSize = 9;

/// Round 1: broadcast call-for-participation in a new view.
struct Call {
  core::ViewId gid;
};

/// Round 2: accept — the receiver agrees to participate (and will not reply
/// to any call with a smaller viewid afterwards).
struct CallReply {
  core::ViewId gid;
};

/// Round 3: the proposer announces the decided membership; receivers join
/// unless they have promised a higher viewid.
struct ViewAnnounce {
  core::View view;
};

/// One cached batch of the segmented entries section: `count` consecutive
/// entries from one source, plus (when warm) their exact wire image — the
/// segment's run bytes under the version stamped on the owning token, a
/// slice of the packet that carried them or a one-time encode at boarding.
/// An empty `wire` marks a cold segment rebuilt (and re-cached) by the next
/// encode.
struct TokenSeg {
  std::uint32_t count = 0;
  util::Buffer wire;
};

/// The circulating token. `base` is the order index of entries[0]; entries
/// below `base` are safe everywhere and have been trimmed. `delivered[r]` is
/// the number of order entries member r had passed to its client when the
/// token last left r.
struct Token {
  core::ViewId gid;
  std::uint32_t lap = 0;
  std::uint32_t base = 0;
  /// Ordered payloads; each Buffer is a slice of the packet that carried it
  /// (absorb) or the client's original submission (board) — never a copy.
  std::vector<std::pair<ProcId, util::Buffer>> entries;
  std::map<ProcId, std::uint32_t> delivered;

  /// v1 wire cache: the encoded entries section (count + flat entries) as
  /// one buffer. Empty <=> invalid. Any mutation of `entries` must go
  /// through note_boarded()/note_trimmed(), which keep both caches honest.
  /// With the cache warm, forwarding a token re-encodes only the mutated
  /// header/counter fields and splices the payload section verbatim.
  mutable util::Buffer entries_wire;

  /// Segmented wire cache (v2 and v3): per-batch segments covering
  /// `entries` front to back (sum of counts == entries.size() whenever
  /// non-empty). Boarding appends one segment per pass, so the older
  /// segments stay warm; trimming drops leading segments whole and only the
  /// split boundary segment goes cold. Empty with non-empty `entries` <=>
  /// no cache (full rebuild on encode).
  mutable std::vector<TokenSeg> entries_segs;

  /// The wire version the warm segment images were encoded under (0 =
  /// unset: no segment has been warmed yet). v2 and v3 run layouts differ,
  /// so an encode at a different version than the stamp must not splice the
  /// warm images — it rebuilds the whole section and restamps.
  mutable std::uint8_t segs_version = 0;

  /// Cache maintenance after appending `n` same-source entries in one
  /// boarding pass: invalidates the v1 section cache and appends one cold
  /// segment (or drops the segment cache if it was already invalid).
  void note_boarded(std::size_t n);

  /// Cache maintenance after erasing the first `n` entries (trim):
  /// invalidates the v1 section cache; drops covered segments whole and
  /// marks a split boundary segment cold.
  void note_trimmed(std::size_t n);

  /// Drop both wire caches (decoded-state consistency checks in tests).
  void invalidate_wire_caches() const;
};

/// Periodic contact attempt towards processors outside the current view;
/// receiving one from a stranger triggers view formation (merge).
struct Probe {
  std::optional<core::ViewId> gid;  // sender's current view, if any
};

using Packet = std::variant<Call, CallReply, ViewAnnounce, Token, Probe>;

/// Wire-cache accounting for one encode (forward_token aggregates these
/// into ring.entries_rebuilds / ring.entries_spliced):
///  - entries_rebuilt: token entries serialized from structs because no
///    warm wire image covered them (v1: the whole section on any mutation;
///    v2/v3: only the entries of cold segments — each payload once, when
///    its boarding segment is first encoded);
///  - entries_spliced: token entries carried by splicing a warm cached wire
///    image verbatim.
struct WireEncodeStats {
  std::uint64_t entries_rebuilt = 0;
  std::uint64_t entries_spliced = 0;
};

/// Exact wire size of `pkt` (frame header + body) under wire version `w`.
/// encode_packet reserves precisely this, so the whole encode costs one
/// allocation.
std::size_t encoded_packet_size(const Packet& pkt, WireFormat w = kDefaultWireFormat);

/// Encode with exact measured reserve: one allocation per packet (tests
/// assert Encoder::allocs() == 1). Version-byte + checksum framed; for a
/// Token the warm parts of the version-appropriate entries cache are
/// spliced, and cold parts are rebuilt and re-cached (zero-copy, slices of
/// the returned packet). `stats`, when non-null, receives the splice/rebuild
/// accounting of this encode.
util::Buffer encode_packet(const Packet& pkt, WireFormat w = kDefaultWireFormat,
                           WireEncodeStats* stats = nullptr);

/// decode_packet with a diagnosis: `error` is non-empty iff `packet` is
/// disengaged, and names the reject reason (unknown wire version, checksum
/// mismatch, truncation, ...). Unknown version bytes are rejected even when
/// the chaos unchecked-decode injection is active.
///
/// This is THE packet decode entry point (docs/WIRE.md, "Decode outcome
/// contract"): every non-test call site goes through it; the optional
/// decode_packet shims below exist only for tests.
/// It predates wire::DecodeOutcome<T> and keeps its `packet` member name.
struct DecodeOutcome {
  std::optional<Packet> packet;
  std::string error;
  bool ok() const noexcept { return packet.has_value(); }
};

DecodeOutcome decode_packet_ex(const util::Buffer& packet);

/// Test-only shim over decode_packet_ex (drops the diagnosis). No non-test
/// caller remains — new code must use decode_packet_ex, and
/// scripts/check.sh gates src/, bench/, examples/ and tools/ against
/// regressions. Token entry payloads and the wire caches come out as
/// slices of `packet` (no payload copies).
std::optional<Packet> decode_packet(const util::Buffer& packet);

/// Test-only shim for callers still holding plain bytes (copies once).
std::optional<Packet> decode_packet(const util::Bytes& bytes);

}  // namespace vsg::membership

namespace vsg::wire {

/// Fixed 9-byte frame prelude (same layout under every version; the
/// version argument is the header's own `version` field by convention).
template <>
struct Codec<membership::FrameHeader> {
  static std::size_t size(const membership::FrameHeader& h, Version w);
  static void encode(util::Encoder& e, const membership::FrameHeader& h, Version w);
  static membership::FrameHeader decode(util::Decoder& d, Version w);
};

/// Token body (everything after the packet tag byte): gid, lap, base,
/// entries section, delivered map. Shares the byte layout with
/// encode_packet/decode_packet_ex but takes the plain always-rebuild path —
/// the cache-aware splice/warm machinery stays in encode_packet, which owns
/// the finished packet buffer the caches slice from.
template <>
struct Codec<membership::Token> {
  static std::size_t size(const membership::Token& t, Version w);
  static void encode(util::Encoder& e, const membership::Token& t, Version w);
  static membership::Token decode(util::Decoder& d, Version w);
};

}  // namespace vsg::wire
