#pragma once

// Protocol packets of the Section 8 implementation: the Cristian-Schmuck
// membership rounds (call-for-participation / accept / join) plus the
// circulating token that carries the per-view message order and per-member
// delivery counters, and the merge probe.

#include <map>
#include <optional>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "util/serde.hpp"

namespace vsg::membership {

/// Round 1: broadcast call-for-participation in a new view.
struct Call {
  core::ViewId gid;
};

/// Round 2: accept — the receiver agrees to participate (and will not reply
/// to any call with a smaller viewid afterwards).
struct CallReply {
  core::ViewId gid;
};

/// Round 3: the proposer announces the decided membership; receivers join
/// unless they have promised a higher viewid.
struct ViewAnnounce {
  core::View view;
};

/// The circulating token. `base` is the order index of entries[0]; entries
/// below `base` are safe everywhere and have been trimmed. `delivered[r]` is
/// the number of order entries member r had passed to its client when the
/// token last left r.
struct Token {
  core::ViewId gid;
  std::uint32_t lap = 0;
  std::uint32_t base = 0;
  std::vector<std::pair<ProcId, util::Bytes>> entries;
  std::map<ProcId, std::uint32_t> delivered;
};

/// Periodic contact attempt towards processors outside the current view;
/// receiving one from a stranger triggers view formation (merge).
struct Probe {
  std::optional<core::ViewId> gid;  // sender's current view, if any
};

using Packet = std::variant<Call, CallReply, ViewAnnounce, Token, Probe>;

util::Bytes encode_packet(const Packet& pkt);
std::optional<Packet> decode_packet(const util::Bytes& bytes);

}  // namespace vsg::membership
