#pragma once

// TokenRingVS: the vs::Service facade over the Section 8 protocol — n Node
// state machines wired to the simulated network. Interface events are
// recorded exactly like SpecVS records them, so the same trace checkers and
// property checkers validate this implementation against the VS
// specification (safety: VSTraceChecker; performance: VS-property with
// b = 9*delta + max{pi + (n+3)*delta, mu} and d as discussed in
// membership.hpp).

#include <functional>
#include <memory>
#include <vector>

#include "membership/membership.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/failure_table.hpp"
#include "sim/simulator.hpp"
#include "trace/recorder.hpp"
#include "vs/service.hpp"

namespace vsg::obs {
class SpanTracer;
}

namespace vsg::membership {

/// Shared counters the ring reports into when metrics are bound (names:
/// ring.* and vs.*). All pointers null until bind_metrics; Node checks one
/// pointer per event.
struct RingObs {
  obs::Counter* proposals = nullptr;         // view-formation rounds initiated
  obs::Counter* views_installed = nullptr;   // newview installations (all nodes)
  obs::Counter* tokens_processed = nullptr;  // token rotations through a node
  obs::Counter* entries_delivered = nullptr;
  obs::Counter* safes_emitted = nullptr;
  obs::Counter* probes_sent = nullptr;
  obs::Counter* token_bytes_sent = nullptr;  // state-exchange bytes on the wire
  obs::Counter* entries_rebuilds = nullptr;  // token entries serialized from structs
  obs::Counter* entries_spliced = nullptr;   // token entries spliced from a warm cache
  // Exchange payload census at gpsnd, classified by the VSTOTO tag byte
  // without decoding (wire::kPayload*): whole-summary vs digest vs delta
  // bytes submitted to the VS layer. The PR 6 acceptance compares the sum
  // of these across full-summary and delta worlds.
  obs::Counter* exch_summary_bytes = nullptr;
  obs::Counter* exch_digest_bytes = nullptr;
  obs::Counter* exch_delta_bytes = nullptr;
  obs::Histogram* payloads_per_pass = nullptr;  // client payloads boarded per token pass
  obs::Histogram* board_bytes_per_pass = nullptr;  // payload bytes boarded per token pass
  obs::Gauge* max_token_entries = nullptr;   // watermark across all tokens
  // Send-backlog census across all members: entries sitting in outboxes
  // waiting to board a token. Level + watermark; the pair the flow-control
  // roadmap item plots against offered load.
  obs::Gauge* backlog_depth = nullptr;
  obs::Gauge* backlog_peak = nullptr;
  obs::Counter* gpsnd = nullptr;             // VS interface events
  obs::Counter* gprcv = nullptr;
  obs::Counter* safe = nullptr;
  obs::Counter* newview = nullptr;
};

class TokenRingVS final : public vs::Service {
 public:
  TokenRingVS(sim::Simulator& simulator, net::Network& network, sim::FailureTable& failures,
              trace::Recorder& recorder, int n, int n0, TokenRingConfig config, util::Rng rng);

  /// Arm every node's timers; call once before running the simulation.
  void start();

  // clients_ is fully sized in the member-initializer list, so size() is
  // valid even while nodes_ is still being populated (nodes consult it in
  // their constructors).
  int size() const override { return static_cast<int>(clients_.size()); }
  void attach(ProcId p, vs::Client& client) override;
  void gpsnd(ProcId p, vs::Payload m) override;

  const Node& node(ProcId p) const { return *nodes_[static_cast<std::size_t>(p)]; }
  NodeStats total_stats() const;

  /// Boarding backlog (payloads waiting to board a token, both lanes) at
  /// processor p — the admission gate's depth signal (docs/FLOWCONTROL.md).
  std::size_t backlog(ProcId p) const { return nodes_[static_cast<std::size_t>(p)]->backlog(); }

  /// Hook fired with the processor id whenever that node's backlog shrank
  /// (a boarding pass, or a view install clearing stale entries). The
  /// harness wires it to to::Stack::on_ring_drain so deferred sends behind
  /// the admission gate re-enter as capacity frees (docs/FLOWCONTROL.md).
  void set_drain_hook(std::function<void(ProcId)> hook) { drain_hook_ = std::move(hook); }
  void notify_drained(ProcId p) {
    if (drain_hook_) drain_hook_(p);
  }

  /// Publish ring protocol counters into `registry` (names: ring.*, vs.*).
  void bind_metrics(obs::MetricsRegistry& registry);
  RingObs& obs() noexcept { return obs_; }

  /// Attach a causal span tracer (null detaches); nodes consult tracer()
  /// for view-formation and token-boarding spans.
  void set_tracer(obs::SpanTracer* tracer) noexcept { tracer_ = tracer; }
  obs::SpanTracer* tracer() const noexcept { return tracer_; }

  // --- services for Node ------------------------------------------------------
  sim::Simulator& simulator() noexcept { return *sim_; }
  /// The ring's port-scoped view of the shared network (port =
  /// TokenRingConfig::port). Nodes send through this, so every frame stays
  /// on the ring's own port.
  net::Endpoint& network() noexcept { return endpoint_; }
  sim::FailureTable& failures() noexcept { return *failures_; }
  const TokenRingConfig& config() const noexcept { return config_; }

  void emit_gprcv(ProcId dst, ProcId src, const util::Buffer& m);
  void emit_safe(ProcId dst, ProcId src, const util::Buffer& m);
  void emit_newview(ProcId p, const core::View& v);

 private:
  sim::Simulator* sim_;
  net::Endpoint endpoint_;
  sim::FailureTable* failures_;
  trace::Recorder* recorder_;
  TokenRingConfig config_;
  int n0_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<vs::Client*> clients_;
  bool started_ = false;
  RingObs obs_;
  obs::SpanTracer* tracer_ = nullptr;
  std::function<void(ProcId)> drain_hook_;
};

}  // namespace vsg::membership
