#include "membership/messages.hpp"

#include "util/hash.hpp"

namespace vsg::membership {
namespace {
constexpr std::uint8_t kTagCall = 1;
constexpr std::uint8_t kTagCallReply = 2;
constexpr std::uint8_t kTagViewAnnounce = 3;
constexpr std::uint8_t kTagToken = 4;
constexpr std::uint8_t kTagProbe = 5;

// Frame layout (docs/WIRE.md): u8 version | u32 checksum | u32 body length |
// body. The checksum covers the version byte and the body, so corrupting
// the version byte into another *known* version can never reinterpret the
// body under the wrong layout.
constexpr std::size_t kFrameHeader = 9;

bool known_version(std::uint8_t v) noexcept {
  return v == static_cast<std::uint8_t>(WireFormat::kV1) ||
         v == static_cast<std::uint8_t>(WireFormat::kV2);
}

std::uint32_t frame_checksum(std::uint8_t version, util::BufferView body) noexcept {
  return static_cast<std::uint32_t>(
      util::fnv1a(body, util::fnv1a(util::BufferView(&version, 1))));
}

using Entries = std::vector<std::pair<ProcId, util::Buffer>>;

/// True iff the v2 segment cache is usable: segments cover the entries
/// exactly (an empty cache only matches an entry-less token).
bool segs_cover(const Token& t) {
  std::size_t sum = 0;
  for (const auto& s : t.entries_segs) sum += s.count;
  return sum == t.entries.size() && (!t.entries_segs.empty() || t.entries.empty());
}

/// Exact v2 wire size of entries [off, off+count): one `u32 src | u32 count`
/// header per maximal same-source run plus each payload length-prefixed.
std::size_t v2_range_size(const Entries& entries, std::size_t off, std::size_t count) {
  std::size_t n = 0;
  std::size_t i = off;
  const std::size_t end = off + count;
  while (i < end) {
    std::size_t j = i + 1;
    while (j < end && entries[j].first == entries[i].first) ++j;
    n += 8;  // run header
    for (; i < j; ++i) n += 4 + entries[i].second.size();
  }
  return n;
}

std::size_t entries_section_size_v1(const Token& p) {
  if (!p.entries_wire.empty()) return p.entries_wire.size();
  std::size_t n = 4;  // count
  for (const auto& [src, payload] : p.entries) n += 4 + 4 + payload.size();
  return n;
}

std::size_t entries_section_size_v2(const Token& p) {
  std::size_t n = 4;  // total entry count
  if (segs_cover(p)) {
    std::size_t off = 0;
    for (const auto& s : p.entries_segs) {
      n += s.wire.empty() ? v2_range_size(p.entries, off, s.count) : s.wire.size();
      off += s.count;
    }
  } else {
    n += v2_range_size(p.entries, 0, p.entries.size());
  }
  return n;
}

struct BodySize {
  WireFormat w;
  std::size_t operator()(const Call&) const { return 1 + core::encoded_size(core::ViewId{}); }
  std::size_t operator()(const CallReply&) const { return 1 + core::encoded_size(core::ViewId{}); }
  std::size_t operator()(const ViewAnnounce& p) const { return 1 + core::encoded_size(p.view); }
  std::size_t operator()(const Token& p) const {
    const std::size_t entries = w == WireFormat::kV1 ? entries_section_size_v1(p)
                                                     : entries_section_size_v2(p);
    return 1 + core::encoded_size(p.gid) + 4 + 4 + entries + 4 + 8 * p.delivered.size();
  }
  std::size_t operator()(const Probe& p) const {
    return 1 + 1 + (p.gid ? core::encoded_size(*p.gid) : 0);
  }
};

struct BodyEncoder {
  util::Encoder& e;
  WireFormat w;
  WireEncodeStats* stats;

  // Bounds of cold (rebuilt-from-structs) entry regions within the packet,
  // recorded so encode_packet can warm the caches off the finished buffer.
  std::size_t entries_begin = 0;
  std::size_t entries_end = 0;
  bool rebuilt_whole = false;  // v2: segment cache was unusable; one region
  std::vector<std::pair<std::size_t, std::pair<std::size_t, std::size_t>>>
      cold_spans;  // v2: (segment index, [begin, end) in packet)

  void note(std::uint64_t rebuilt, std::uint64_t spliced) const {
    if (stats != nullptr) {
      stats->entries_rebuilt += rebuilt;
      stats->entries_spliced += spliced;
    }
  }

  /// Serialize entries [off, off+count) as maximal same-source runs.
  void encode_runs(const Entries& entries, std::size_t off, std::size_t count) {
    std::size_t i = off;
    const std::size_t end = off + count;
    while (i < end) {
      std::size_t j = i + 1;
      while (j < end && entries[j].first == entries[i].first) ++j;
      e.u32(static_cast<std::uint32_t>(entries[i].first));
      e.u32(static_cast<std::uint32_t>(j - i));
      for (; i < j; ++i) e.raw(entries[i].second.view());
    }
  }

  void operator()(const Call& p) {
    e.u8(kTagCall);
    core::encode(e, p.gid);
  }
  void operator()(const CallReply& p) {
    e.u8(kTagCallReply);
    core::encode(e, p.gid);
  }
  void operator()(const ViewAnnounce& p) {
    e.u8(kTagViewAnnounce);
    core::encode(e, p.view);
  }
  void operator()(const Token& p) {
    e.u8(kTagToken);
    core::encode(e, p.gid);
    e.u32(p.lap);
    e.u32(p.base);
    if (w == WireFormat::kV1) {
      entries_begin = e.size();
      if (!p.entries_wire.empty()) {
        // Warm cache: splice the encoded entries section verbatim.
        e.append(p.entries_wire.view());
        note(0, p.entries.size());
      } else {
        e.u32(static_cast<std::uint32_t>(p.entries.size()));
        for (const auto& [src, payload] : p.entries) {
          e.u32(static_cast<std::uint32_t>(src));
          e.raw(payload.view());
        }
        note(p.entries.size(), 0);
      }
      entries_end = e.size();
    } else {
      e.u32(static_cast<std::uint32_t>(p.entries.size()));
      if (segs_cover(p)) {
        std::size_t off = 0;
        for (std::size_t k = 0; k < p.entries_segs.size(); ++k) {
          const TokenSeg& seg = p.entries_segs[k];
          if (!seg.wire.empty()) {
            e.append(seg.wire.view());
            note(0, seg.count);
          } else {
            const std::size_t begin = e.size();
            encode_runs(p.entries, off, seg.count);
            cold_spans.push_back({k, {begin, e.size()}});
            note(seg.count, 0);
          }
          off += seg.count;
        }
      } else {
        rebuilt_whole = true;
        entries_begin = e.size();
        encode_runs(p.entries, 0, p.entries.size());
        entries_end = e.size();
        note(p.entries.size(), 0);
      }
    }
    e.u32(static_cast<std::uint32_t>(p.delivered.size()));
    for (const auto& [r, count] : p.delivered) {
      e.u32(static_cast<std::uint32_t>(r));
      e.u32(count);
    }
  }
  void operator()(const Probe& p) {
    e.u8(kTagProbe);
    e.boolean(p.gid.has_value());
    if (p.gid) core::encode(e, *p.gid);
  }
};

}  // namespace

const char* to_string(WireFormat w) noexcept {
  return w == WireFormat::kV1 ? "v1" : "v2";
}

void Token::note_boarded(std::size_t n) {
  if (n == 0) return;
  entries_wire = util::Buffer{};
  std::size_t covered = 0;
  for (const auto& s : entries_segs) covered += s.count;
  // The cache was valid before the append iff it covered everything but the
  // new batch; then the batch becomes one cold segment and the warm
  // segments stay warm. Otherwise drop the cache (full rebuild on encode).
  if (covered + n == entries.size())
    entries_segs.push_back(TokenSeg{static_cast<std::uint32_t>(n), util::Buffer{}});
  else
    entries_segs.clear();
}

void Token::note_trimmed(std::size_t n) {
  if (n == 0) return;
  entries_wire = util::Buffer{};
  std::size_t drop = n;
  while (drop > 0 && !entries_segs.empty()) {
    TokenSeg& front = entries_segs.front();
    if (front.count <= drop) {
      drop -= front.count;
      entries_segs.erase(entries_segs.begin());
    } else {
      // Trim splits this segment: its surviving tail goes cold (rebuilt,
      // and re-cached, by the next encode); later segments stay warm.
      front.count -= static_cast<std::uint32_t>(drop);
      front.wire = util::Buffer{};
      drop = 0;
    }
  }
  if (drop > 0) entries_segs.clear();  // cache did not cover the trim: invalid
}

void Token::invalidate_wire_caches() const {
  entries_wire = util::Buffer{};
  entries_segs.clear();
}

std::size_t encoded_packet_size(const Packet& pkt, WireFormat w) {
  return kFrameHeader + std::visit(BodySize{w}, pkt);
}

util::Buffer encode_packet(const Packet& pkt, WireFormat w, WireEncodeStats* stats) {
  const std::size_t body_size = std::visit(BodySize{w}, pkt);
  util::Encoder e;
  e.reserve(kFrameHeader + body_size);
  e.u8(static_cast<std::uint8_t>(w));
  e.u32(0);  // checksum placeholder, back-patched below
  e.u32(static_cast<std::uint32_t>(body_size));
  BodyEncoder enc{e, w, stats, 0, 0, false, {}};
  std::visit(enc, pkt);
  e.patch_u32(1, frame_checksum(static_cast<std::uint8_t>(w),
                                util::BufferView(e.bytes().data() + kFrameHeader,
                                                 e.size() - kFrameHeader)));
  util::Buffer packet = e.finish();
  if (const Token* t = std::get_if<Token>(&pkt); t != nullptr) {
    // Warm whatever was rebuilt, as zero-copy slices of the packet.
    if (w == WireFormat::kV1) {
      if (t->entries_wire.empty())
        t->entries_wire = packet.slice(enc.entries_begin, enc.entries_end - enc.entries_begin);
    } else if (enc.rebuilt_whole) {
      t->entries_segs.clear();
      if (!t->entries.empty())
        t->entries_segs.push_back(
            TokenSeg{static_cast<std::uint32_t>(t->entries.size()),
                     packet.slice(enc.entries_begin, enc.entries_end - enc.entries_begin)});
    } else {
      for (const auto& [seg_index, span] : enc.cold_spans)
        t->entries_segs[seg_index].wire =
            packet.slice(span.first, span.second - span.first);
    }
  }
  return packet;
}

namespace {

/// Decode the token body after the common gid/lap/base prefix. `d` reads the
/// frame body; caches are warmed with slices of it (zero-copy).
bool decode_token_entries(util::Decoder& d, WireFormat w, bool strict, Token& p) {
  if (w == WireFormat::kV1) {
    const std::size_t entries_begin = d.pos();
    const std::uint32_t ne = d.u32();
    for (std::uint32_t i = 0; i < ne && d.ok(); ++i) {
      const auto src = static_cast<ProcId>(d.u32());
      p.entries.emplace_back(src, d.raw_buffer());  // slice, not copy
    }
    const std::size_t entries_end = d.pos();
    if (d.ok()) p.entries_wire = d.input_slice(entries_begin, entries_end);
    return true;
  }
  const std::uint32_t total = d.u32();
  std::size_t acc = 0;
  bool malformed = false;
  std::vector<std::pair<std::size_t, std::size_t>> seg_spans;
  std::vector<std::uint32_t> seg_counts;
  while (acc < total && d.ok()) {
    const std::size_t seg_begin = d.pos();
    const auto src = static_cast<ProcId>(d.u32());
    const std::uint32_t count = d.u32();
    if (!d.ok()) break;
    if (count == 0 || acc + count > total) {
      malformed = true;  // zero-length or overrunning segment
      break;
    }
    for (std::uint32_t i = 0; i < count && d.ok(); ++i)
      p.entries.emplace_back(src, d.raw_buffer());
    acc += count;
    seg_spans.emplace_back(seg_begin, d.pos());
    seg_counts.push_back(count);
  }
  const bool complete = !malformed && acc == total && d.ok();
  if (strict && !complete) return false;
  if (complete)
    for (std::size_t k = 0; k < seg_counts.size(); ++k)
      p.entries_segs.push_back(
          TokenSeg{seg_counts[k], d.input_slice(seg_spans[k].first, seg_spans[k].second)});
  return true;
}

}  // namespace

DecodeOutcome decode_packet_ex(const util::Buffer& packet) {
  // util::unchecked_decode() re-enables the historical accept-anything bug
  // (no checksum, truncated fields read as zero) for chaos-oracle demos.
  // The wire version byte is validated unconditionally: an unknown version
  // must never be interpreted under some other version's layout.
  const bool strict = !util::unchecked_decode();
  DecodeOutcome out;
  if (packet.empty()) {
    out.error = "empty packet";
    return out;
  }
  const std::uint8_t version = packet[0];
  if (!known_version(version)) {
    out.error = "unknown wire version " + std::to_string(version) +
                " (this build speaks v1 and v2; see docs/WIRE.md)";
    return out;
  }
  const WireFormat w = static_cast<WireFormat>(version);

  util::Decoder frame(packet);
  (void)frame.u8();  // version, validated above
  const std::uint32_t checksum = frame.u32();
  const util::Buffer body = frame.raw_buffer();  // zero-copy slice of packet
  if (strict && !frame.complete()) {
    out.error = "truncated or oversized frame";
    return out;
  }
  if (strict && checksum != frame_checksum(version, body.view())) {
    out.error = "frame checksum mismatch";
    return out;
  }

  util::Decoder d(body);
  const std::uint8_t tag = d.u8();
  auto reject_incomplete = [&out, &d, strict](const char* what) {
    if (strict && !d.complete()) {
      out.error = std::string("malformed ") + what + " body";
      return true;
    }
    return false;
  };
  switch (tag) {
    case kTagCall: {
      Call p{core::decode_viewid(d)};
      if (reject_incomplete("call")) return out;
      out.packet = Packet{p};
      return out;
    }
    case kTagCallReply: {
      CallReply p{core::decode_viewid(d)};
      if (reject_incomplete("call-reply")) return out;
      out.packet = Packet{p};
      return out;
    }
    case kTagViewAnnounce: {
      ViewAnnounce p{core::decode_view(d)};
      if (reject_incomplete("view-announce")) return out;
      out.packet = Packet{p};
      return out;
    }
    case kTagToken: {
      Token p;
      p.gid = core::decode_viewid(d);
      p.lap = d.u32();
      p.base = d.u32();
      if (!decode_token_entries(d, w, strict, p)) {
        out.error = std::string("malformed ") + to_string(w) + " token entries section";
        return out;
      }
      const std::uint32_t nd = d.u32();
      for (std::uint32_t i = 0; i < nd && d.ok(); ++i) {
        const auto r = static_cast<ProcId>(d.u32());
        p.delivered[r] = d.u32();
      }
      if (strict && !d.complete()) {
        out.error = "malformed token body";
        return out;
      }
      out.packet = Packet{std::move(p)};
      return out;
    }
    case kTagProbe: {
      Probe p;
      if (d.boolean()) p.gid = core::decode_viewid(d);
      if (reject_incomplete("probe")) return out;
      out.packet = Packet{p};
      return out;
    }
    default:
      out.error = "unknown packet tag " + std::to_string(tag);
      return out;
  }
}

std::optional<Packet> decode_packet(const util::Buffer& packet) {
  return decode_packet_ex(packet).packet;
}

std::optional<Packet> decode_packet(const util::Bytes& bytes) {
  return decode_packet(util::Buffer(bytes));
}

}  // namespace vsg::membership
