#include "membership/messages.hpp"

#include "util/hash.hpp"

namespace vsg::membership {
namespace {
constexpr std::uint8_t kTagCall = 1;
constexpr std::uint8_t kTagCallReply = 2;
constexpr std::uint8_t kTagViewAnnounce = 3;
constexpr std::uint8_t kTagToken = 4;
constexpr std::uint8_t kTagProbe = 5;

struct Encoder {
  util::Encoder e;

  void operator()(const Call& p) {
    e.u8(kTagCall);
    core::encode(e, p.gid);
  }
  void operator()(const CallReply& p) {
    e.u8(kTagCallReply);
    core::encode(e, p.gid);
  }
  void operator()(const ViewAnnounce& p) {
    e.u8(kTagViewAnnounce);
    core::encode(e, p.view);
  }
  void operator()(const Token& p) {
    e.u8(kTagToken);
    core::encode(e, p.gid);
    e.u32(p.lap);
    e.u32(p.base);
    e.u32(static_cast<std::uint32_t>(p.entries.size()));
    for (const auto& [src, payload] : p.entries) {
      e.u32(static_cast<std::uint32_t>(src));
      e.raw(payload);
    }
    e.u32(static_cast<std::uint32_t>(p.delivered.size()));
    for (const auto& [r, count] : p.delivered) {
      e.u32(static_cast<std::uint32_t>(r));
      e.u32(count);
    }
  }
  void operator()(const Probe& p) {
    e.u8(kTagProbe);
    e.boolean(p.gid.has_value());
    if (p.gid) core::encode(e, *p.gid);
  }
};

}  // namespace

util::Bytes encode_packet(const Packet& pkt) {
  Encoder enc;
  std::visit(enc, pkt);
  util::Bytes body = enc.e.take();
  // Checksum-framed: a corrupted packet must be detectably garbage, never
  // a structurally valid packet with flipped payload bytes.
  util::Encoder framed;
  framed.u32(static_cast<std::uint32_t>(util::fnv1a(body)));
  framed.raw(body);
  return framed.take();
}

std::optional<Packet> decode_packet(const util::Bytes& bytes) {
  // util::unchecked_decode() re-enables the historical accept-anything bug
  // (no checksum, truncated fields read as zero) for chaos-oracle demos.
  const bool strict = !util::unchecked_decode();
  util::Decoder frame(bytes);
  const std::uint32_t checksum = frame.u32();
  const util::Bytes body = frame.raw();
  if (strict && !frame.complete()) return std::nullopt;
  if (strict && checksum != static_cast<std::uint32_t>(util::fnv1a(body))) return std::nullopt;

  util::Decoder d(body);
  const std::uint8_t tag = d.u8();
  switch (tag) {
    case kTagCall: {
      Call p{core::decode_viewid(d)};
      if (strict && !d.complete()) return std::nullopt;
      return Packet{p};
    }
    case kTagCallReply: {
      CallReply p{core::decode_viewid(d)};
      if (strict && !d.complete()) return std::nullopt;
      return Packet{p};
    }
    case kTagViewAnnounce: {
      ViewAnnounce p{core::decode_view(d)};
      if (strict && !d.complete()) return std::nullopt;
      return Packet{p};
    }
    case kTagToken: {
      Token p;
      p.gid = core::decode_viewid(d);
      p.lap = d.u32();
      p.base = d.u32();
      const std::uint32_t ne = d.u32();
      for (std::uint32_t i = 0; i < ne && d.ok(); ++i) {
        const auto src = static_cast<ProcId>(d.u32());
        p.entries.emplace_back(src, d.raw());
      }
      const std::uint32_t nd = d.u32();
      for (std::uint32_t i = 0; i < nd && d.ok(); ++i) {
        const auto r = static_cast<ProcId>(d.u32());
        p.delivered[r] = d.u32();
      }
      if (strict && !d.complete()) return std::nullopt;
      return Packet{std::move(p)};
    }
    case kTagProbe: {
      Probe p;
      if (d.boolean()) p.gid = core::decode_viewid(d);
      if (strict && !d.complete()) return std::nullopt;
      return Packet{p};
    }
    default:
      return std::nullopt;
  }
}

}  // namespace vsg::membership
