#include "membership/messages.hpp"

#include "util/hash.hpp"

namespace vsg::membership {
namespace {
constexpr std::uint8_t kTagCall = 1;
constexpr std::uint8_t kTagCallReply = 2;
constexpr std::uint8_t kTagViewAnnounce = 3;
constexpr std::uint8_t kTagToken = 4;
constexpr std::uint8_t kTagProbe = 5;

// Frame layout: u32 checksum | u32 body length | body. The checksum covers
// the body only, so it matches what the pre-zero-copy framing produced.
constexpr std::size_t kFrameHeader = 8;

std::size_t entries_section_size(const Token& p) {
  if (!p.entries_wire.empty()) return p.entries_wire.size();
  std::size_t n = 4;  // count
  for (const auto& [src, payload] : p.entries) n += 4 + 4 + payload.size();
  return n;
}

struct BodySize {
  std::size_t operator()(const Call&) const { return 1 + core::encoded_size(core::ViewId{}); }
  std::size_t operator()(const CallReply&) const { return 1 + core::encoded_size(core::ViewId{}); }
  std::size_t operator()(const ViewAnnounce& p) const { return 1 + core::encoded_size(p.view); }
  std::size_t operator()(const Token& p) const {
    return 1 + core::encoded_size(p.gid) + 4 + 4 + entries_section_size(p) + 4 +
           8 * p.delivered.size();
  }
  std::size_t operator()(const Probe& p) const {
    return 1 + 1 + (p.gid ? core::encoded_size(*p.gid) : 0);
  }
};

struct BodyEncoder {
  util::Encoder& e;
  // Entries-section bounds within the packet (Token only), for warming the
  // wire cache off the finished buffer.
  std::size_t entries_begin = 0;
  std::size_t entries_end = 0;

  void operator()(const Call& p) {
    e.u8(kTagCall);
    core::encode(e, p.gid);
  }
  void operator()(const CallReply& p) {
    e.u8(kTagCallReply);
    core::encode(e, p.gid);
  }
  void operator()(const ViewAnnounce& p) {
    e.u8(kTagViewAnnounce);
    core::encode(e, p.view);
  }
  void operator()(const Token& p) {
    e.u8(kTagToken);
    core::encode(e, p.gid);
    e.u32(p.lap);
    e.u32(p.base);
    entries_begin = e.size();
    if (!p.entries_wire.empty()) {
      // Warm cache: splice the encoded entries section verbatim.
      e.append(p.entries_wire.view());
    } else {
      e.u32(static_cast<std::uint32_t>(p.entries.size()));
      for (const auto& [src, payload] : p.entries) {
        e.u32(static_cast<std::uint32_t>(src));
        e.raw(payload.view());
      }
    }
    entries_end = e.size();
    e.u32(static_cast<std::uint32_t>(p.delivered.size()));
    for (const auto& [r, count] : p.delivered) {
      e.u32(static_cast<std::uint32_t>(r));
      e.u32(count);
    }
  }
  void operator()(const Probe& p) {
    e.u8(kTagProbe);
    e.boolean(p.gid.has_value());
    if (p.gid) core::encode(e, *p.gid);
  }
};

}  // namespace

std::size_t encoded_packet_size(const Packet& pkt) {
  return kFrameHeader + std::visit(BodySize{}, pkt);
}

util::Buffer encode_packet(const Packet& pkt) {
  const std::size_t body_size = std::visit(BodySize{}, pkt);
  util::Encoder e;
  e.reserve(kFrameHeader + body_size);
  e.u32(0);  // checksum placeholder, back-patched below
  e.u32(static_cast<std::uint32_t>(body_size));
  BodyEncoder enc{e};
  std::visit(enc, pkt);
  e.patch_u32(0, static_cast<std::uint32_t>(util::fnv1a(
                     util::BufferView(e.bytes().data() + kFrameHeader, e.size() - kFrameHeader))));
  util::Buffer packet = e.finish();
  if (const Token* t = std::get_if<Token>(&pkt); t != nullptr && t->entries_wire.empty()) {
    t->entries_wire = packet.slice(enc.entries_begin, enc.entries_end - enc.entries_begin);
  }
  return packet;
}

std::optional<Packet> decode_packet(const util::Buffer& packet) {
  // util::unchecked_decode() re-enables the historical accept-anything bug
  // (no checksum, truncated fields read as zero) for chaos-oracle demos.
  const bool strict = !util::unchecked_decode();
  util::Decoder frame(packet);
  const std::uint32_t checksum = frame.u32();
  const util::Buffer body = frame.raw_buffer();  // zero-copy slice of packet
  if (strict && !frame.complete()) return std::nullopt;
  if (strict && checksum != static_cast<std::uint32_t>(util::fnv1a(body.view())))
    return std::nullopt;

  util::Decoder d(body);
  const std::uint8_t tag = d.u8();
  switch (tag) {
    case kTagCall: {
      Call p{core::decode_viewid(d)};
      if (strict && !d.complete()) return std::nullopt;
      return Packet{p};
    }
    case kTagCallReply: {
      CallReply p{core::decode_viewid(d)};
      if (strict && !d.complete()) return std::nullopt;
      return Packet{p};
    }
    case kTagViewAnnounce: {
      ViewAnnounce p{core::decode_view(d)};
      if (strict && !d.complete()) return std::nullopt;
      return Packet{p};
    }
    case kTagToken: {
      Token p;
      p.gid = core::decode_viewid(d);
      p.lap = d.u32();
      p.base = d.u32();
      const std::size_t entries_begin = d.pos();
      const std::uint32_t ne = d.u32();
      for (std::uint32_t i = 0; i < ne && d.ok(); ++i) {
        const auto src = static_cast<ProcId>(d.u32());
        p.entries.emplace_back(src, d.raw_buffer());  // slice, not copy
      }
      const std::size_t entries_end = d.pos();
      const std::uint32_t nd = d.u32();
      for (std::uint32_t i = 0; i < nd && d.ok(); ++i) {
        const auto r = static_cast<ProcId>(d.u32());
        p.delivered[r] = d.u32();
      }
      if (strict && !d.complete()) return std::nullopt;
      if (d.ok()) p.entries_wire = d.input_slice(entries_begin, entries_end);
      return Packet{std::move(p)};
    }
    case kTagProbe: {
      Probe p;
      if (d.boolean()) p.gid = core::decode_viewid(d);
      if (strict && !d.complete()) return std::nullopt;
      return Packet{p};
    }
    default:
      return std::nullopt;
  }
}

std::optional<Packet> decode_packet(const util::Bytes& bytes) {
  return decode_packet(util::Buffer(bytes));
}

}  // namespace vsg::membership
