#include "membership/messages.hpp"

#include "util/hash.hpp"

namespace vsg::membership {
namespace {
constexpr std::uint8_t kTagCall = 1;
constexpr std::uint8_t kTagCallReply = 2;
constexpr std::uint8_t kTagViewAnnounce = 3;
constexpr std::uint8_t kTagToken = 4;
constexpr std::uint8_t kTagProbe = 5;

std::uint32_t frame_checksum(std::uint8_t version, util::BufferView body) noexcept {
  return static_cast<std::uint32_t>(
      util::fnv1a(body, util::fnv1a(util::BufferView(&version, 1))));
}

using Entries = std::vector<std::pair<ProcId, util::Buffer>>;

/// True iff the segment cache covers the entries exactly (an empty cache
/// only matches an entry-less token).
bool segs_cover(const Token& t) {
  std::size_t sum = 0;
  for (const auto& s : t.entries_segs) sum += s.count;
  return sum == t.entries.size() && (!t.entries_segs.empty() || t.entries.empty());
}

/// True iff the segment cache can drive an encode at version `w`: it must
/// cover the entries, and any *warm* images must carry w's run layout
/// (v2 and v3 runs differ). A cache whose segments are all cold has no
/// layout commitment — it is usable at any version and restamped when its
/// segments are first warmed.
bool segs_usable(const Token& t, WireFormat w) {
  if (!segs_cover(t)) return false;
  if (t.segs_version == static_cast<std::uint8_t>(w)) return true;
  for (const auto& s : t.entries_segs)
    if (!s.wire.empty()) return false;
  return true;
}

/// Exact wire size of entries [off, off+count) as maximal same-source runs.
/// v2: `u32 src | u32 count` run header, u32-length-prefixed payloads.
/// v3: uvarint src/count, uvarint-length-prefixed payloads.
std::size_t range_size(const Entries& entries, std::size_t off, std::size_t count,
                       WireFormat w) {
  std::size_t n = 0;
  std::size_t i = off;
  const std::size_t end = off + count;
  while (i < end) {
    std::size_t j = i + 1;
    while (j < end && entries[j].first == entries[i].first) ++j;
    if (w == WireFormat::kV3) {
      n += util::uvarint_size(static_cast<std::uint64_t>(entries[i].first));
      n += util::uvarint_size(j - i);
      for (; i < j; ++i)
        n += util::uvarint_size(entries[i].second.size()) + entries[i].second.size();
    } else {
      n += 8;  // run header
      for (; i < j; ++i) n += 4 + entries[i].second.size();
    }
  }
  return n;
}

std::size_t entries_section_size_v1(const Token& p) {
  if (!p.entries_wire.empty()) return p.entries_wire.size();
  std::size_t n = 4;  // count
  for (const auto& [src, payload] : p.entries) n += 4 + 4 + payload.size();
  return n;
}

/// Segmented entries section size (v2/v3): total-count prefix plus per-
/// segment warm image or rebuilt-run size. Must agree with BodyEncoder's
/// splice-vs-rebuild choice, so both go through segs_usable.
std::size_t entries_section_size_segmented(const Token& p, WireFormat w) {
  std::size_t n = w == WireFormat::kV3 ? util::uvarint_size(p.entries.size()) : 4;
  if (segs_usable(p, w)) {
    std::size_t off = 0;
    for (const auto& s : p.entries_segs) {
      n += s.wire.empty() ? range_size(p.entries, off, s.count, w) : s.wire.size();
      off += s.count;
    }
  } else {
    n += range_size(p.entries, 0, p.entries.size(), w);
  }
  return n;
}

std::size_t delivered_size(const Token& p, WireFormat w) {
  if (w != WireFormat::kV3) return 4 + 8 * p.delivered.size();
  std::size_t n = util::uvarint_size(p.delivered.size());
  for (const auto& [r, count] : p.delivered)
    n += util::uvarint_size(static_cast<std::uint64_t>(r)) + util::uvarint_size(count);
  return n;
}

/// Token body size minus the entries section (gid, lap, base, delivered).
std::size_t token_scalar_size(const Token& p, WireFormat w) {
  std::size_t n = wire::Codec<core::ViewId>::size(p.gid, w);
  n += w == WireFormat::kV3 ? util::uvarint_size(p.lap) + util::uvarint_size(p.base)
                            : 4 + 4;
  return n + delivered_size(p, w);
}

struct BodySize {
  WireFormat w;
  std::size_t operator()(const Call& p) const {
    return 1 + wire::Codec<core::ViewId>::size(p.gid, w);
  }
  std::size_t operator()(const CallReply& p) const {
    return 1 + wire::Codec<core::ViewId>::size(p.gid, w);
  }
  std::size_t operator()(const ViewAnnounce& p) const {
    return 1 + wire::Codec<core::View>::size(p.view, w);
  }
  std::size_t operator()(const Token& p) const {
    const std::size_t entries = w == WireFormat::kV1
                                    ? entries_section_size_v1(p)
                                    : entries_section_size_segmented(p, w);
    return 1 + token_scalar_size(p, w) + entries;
  }
  std::size_t operator()(const Probe& p) const {
    return 1 + 1 + (p.gid ? wire::Codec<core::ViewId>::size(*p.gid, w) : 0);
  }
};

/// Serialize entries [off, off+count) as maximal same-source runs under
/// version `w` (shared by the cache-aware BodyEncoder and Codec<Token>).
void encode_runs(util::Encoder& e, const Entries& entries, std::size_t off,
                 std::size_t count, WireFormat w) {
  std::size_t i = off;
  const std::size_t end = off + count;
  while (i < end) {
    std::size_t j = i + 1;
    while (j < end && entries[j].first == entries[i].first) ++j;
    if (w == WireFormat::kV3) {
      e.uvarint(static_cast<std::uint64_t>(entries[i].first));
      e.uvarint(j - i);
      for (; i < j; ++i) e.vraw(entries[i].second.view());
    } else {
      e.u32(static_cast<std::uint32_t>(entries[i].first));
      e.u32(static_cast<std::uint32_t>(j - i));
      for (; i < j; ++i) e.raw(entries[i].second.view());
    }
  }
}

void encode_token_prefix(util::Encoder& e, const Token& p, WireFormat w) {
  wire::Codec<core::ViewId>::encode(e, p.gid, w);
  if (w == WireFormat::kV3) {
    e.uvarint(p.lap);
    e.uvarint(p.base);
  } else {
    e.u32(p.lap);
    e.u32(p.base);
  }
}

void encode_token_delivered(util::Encoder& e, const Token& p, WireFormat w) {
  if (w == WireFormat::kV3) {
    e.uvarint(p.delivered.size());
    for (const auto& [r, count] : p.delivered) {
      e.uvarint(static_cast<std::uint64_t>(r));
      e.uvarint(count);
    }
  } else {
    e.u32(static_cast<std::uint32_t>(p.delivered.size()));
    for (const auto& [r, count] : p.delivered) {
      e.u32(static_cast<std::uint32_t>(r));
      e.u32(count);
    }
  }
}

struct BodyEncoder {
  util::Encoder& e;
  WireFormat w;
  WireEncodeStats* stats;

  // Bounds of cold (rebuilt-from-structs) entry regions within the packet,
  // recorded so encode_packet can warm the caches off the finished buffer.
  std::size_t entries_begin = 0;
  std::size_t entries_end = 0;
  bool rebuilt_whole = false;  // v2/v3: segment cache was unusable; one region
  std::vector<std::pair<std::size_t, std::pair<std::size_t, std::size_t>>>
      cold_spans;  // v2/v3: (segment index, [begin, end) in packet)

  void note(std::uint64_t rebuilt, std::uint64_t spliced) const {
    if (stats != nullptr) {
      stats->entries_rebuilt += rebuilt;
      stats->entries_spliced += spliced;
    }
  }

  void operator()(const Call& p) {
    e.u8(kTagCall);
    wire::Codec<core::ViewId>::encode(e, p.gid, w);
  }
  void operator()(const CallReply& p) {
    e.u8(kTagCallReply);
    wire::Codec<core::ViewId>::encode(e, p.gid, w);
  }
  void operator()(const ViewAnnounce& p) {
    e.u8(kTagViewAnnounce);
    wire::Codec<core::View>::encode(e, p.view, w);
  }
  void operator()(const Token& p) {
    e.u8(kTagToken);
    encode_token_prefix(e, p, w);
    if (w == WireFormat::kV1) {
      entries_begin = e.size();
      if (!p.entries_wire.empty()) {
        // Warm cache: splice the encoded entries section verbatim.
        e.append(p.entries_wire.view());
        note(0, p.entries.size());
      } else {
        e.u32(static_cast<std::uint32_t>(p.entries.size()));
        for (const auto& [src, payload] : p.entries) {
          e.u32(static_cast<std::uint32_t>(src));
          e.raw(payload.view());
        }
        note(p.entries.size(), 0);
      }
      entries_end = e.size();
    } else {
      if (w == WireFormat::kV3)
        e.uvarint(p.entries.size());
      else
        e.u32(static_cast<std::uint32_t>(p.entries.size()));
      if (segs_usable(p, w)) {
        std::size_t off = 0;
        for (std::size_t k = 0; k < p.entries_segs.size(); ++k) {
          const TokenSeg& seg = p.entries_segs[k];
          if (!seg.wire.empty()) {
            e.append(seg.wire.view());
            note(0, seg.count);
          } else {
            const std::size_t begin = e.size();
            encode_runs(e, p.entries, off, seg.count, w);
            cold_spans.push_back({k, {begin, e.size()}});
            note(seg.count, 0);
          }
          off += seg.count;
        }
      } else {
        rebuilt_whole = true;
        entries_begin = e.size();
        encode_runs(e, p.entries, 0, p.entries.size(), w);
        entries_end = e.size();
        note(p.entries.size(), 0);
      }
    }
    encode_token_delivered(e, p, w);
  }
  void operator()(const Probe& p) {
    e.u8(kTagProbe);
    e.boolean(p.gid.has_value());
    if (p.gid) wire::Codec<core::ViewId>::encode(e, *p.gid, w);
  }
};

}  // namespace

void Token::note_boarded(std::size_t n) {
  if (n == 0) return;
  entries_wire = util::Buffer{};
  std::size_t covered = 0;
  for (const auto& s : entries_segs) covered += s.count;
  // The cache was valid before the append iff it covered everything but the
  // new batch; then the batch becomes one cold segment and the warm
  // segments stay warm. Otherwise drop the cache (full rebuild on encode).
  if (covered + n == entries.size())
    entries_segs.push_back(TokenSeg{static_cast<std::uint32_t>(n), util::Buffer{}});
  else
    entries_segs.clear();
}

void Token::note_trimmed(std::size_t n) {
  if (n == 0) return;
  entries_wire = util::Buffer{};
  std::size_t drop = n;
  while (drop > 0 && !entries_segs.empty()) {
    TokenSeg& front = entries_segs.front();
    if (front.count <= drop) {
      drop -= front.count;
      entries_segs.erase(entries_segs.begin());
    } else {
      // Trim splits this segment: its surviving tail goes cold (rebuilt,
      // and re-cached, by the next encode); later segments stay warm.
      front.count -= static_cast<std::uint32_t>(drop);
      front.wire = util::Buffer{};
      drop = 0;
    }
  }
  if (drop > 0) entries_segs.clear();  // cache did not cover the trim: invalid
}

void Token::invalidate_wire_caches() const {
  entries_wire = util::Buffer{};
  entries_segs.clear();
  segs_version = 0;
}

std::size_t encoded_packet_size(const Packet& pkt, WireFormat w) {
  return kFrameHeaderSize + std::visit(BodySize{w}, pkt);
}

util::Buffer encode_packet(const Packet& pkt, WireFormat w, WireEncodeStats* stats) {
  const std::size_t body_size = std::visit(BodySize{w}, pkt);
  util::Encoder e;
  e.reserve(kFrameHeaderSize + body_size);
  wire::Codec<FrameHeader>::encode(
      e, FrameHeader{static_cast<std::uint8_t>(w), 0,
                     static_cast<std::uint32_t>(body_size)},
      w);  // checksum 0: back-patched below
  BodyEncoder enc{e, w, stats, 0, 0, false, {}};
  std::visit(enc, pkt);
  e.patch_u32(1, frame_checksum(static_cast<std::uint8_t>(w),
                                util::BufferView(e.bytes().data() + kFrameHeaderSize,
                                                 e.size() - kFrameHeaderSize)));
  util::Buffer packet = e.finish();
  if (const Token* t = std::get_if<Token>(&pkt); t != nullptr) {
    // Warm whatever was rebuilt, as zero-copy slices of the packet.
    if (w == WireFormat::kV1) {
      if (t->entries_wire.empty())
        t->entries_wire = packet.slice(enc.entries_begin, enc.entries_end - enc.entries_begin);
    } else if (enc.rebuilt_whole) {
      t->entries_segs.clear();
      if (!t->entries.empty())
        t->entries_segs.push_back(
            TokenSeg{static_cast<std::uint32_t>(t->entries.size()),
                     packet.slice(enc.entries_begin, enc.entries_end - enc.entries_begin)});
      t->segs_version = static_cast<std::uint8_t>(w);
    } else {
      for (const auto& [seg_index, span] : enc.cold_spans)
        t->entries_segs[seg_index].wire =
            packet.slice(span.first, span.second - span.first);
      t->segs_version = static_cast<std::uint8_t>(w);
    }
  }
  return packet;
}

namespace {

/// Decode the token body after the common gid/lap/base prefix. `d` reads the
/// frame body; caches are warmed with slices of it (zero-copy). Returns
/// false iff the entries section is malformed under strict decoding.
bool decode_token_entries(util::Decoder& d, WireFormat w, bool strict, Token& p) {
  if (w == WireFormat::kV1) {
    const std::size_t entries_begin = d.pos();
    const std::uint32_t ne = d.u32();
    for (std::uint32_t i = 0; i < ne && d.ok(); ++i) {
      const auto src = static_cast<ProcId>(d.u32());
      p.entries.emplace_back(src, d.raw_buffer());  // slice, not copy
    }
    const std::size_t entries_end = d.pos();
    if (d.ok()) p.entries_wire = d.input_slice(entries_begin, entries_end);
    return true;
  }
  const bool v3 = w == WireFormat::kV3;
  const std::uint64_t total = v3 ? d.uvarint() : d.u32();
  std::size_t acc = 0;
  bool malformed = false;
  std::vector<std::pair<std::size_t, std::size_t>> seg_spans;
  std::vector<std::uint32_t> seg_counts;
  while (acc < total && d.ok()) {
    const std::size_t seg_begin = d.pos();
    const auto src = static_cast<ProcId>(v3 ? d.uvarint() : d.u32());
    const std::uint64_t count = v3 ? d.uvarint() : d.u32();
    if (!d.ok()) break;
    if (count == 0 || acc + count > total) {
      malformed = true;  // zero-length or overrunning segment
      break;
    }
    for (std::uint64_t i = 0; i < count && d.ok(); ++i)
      p.entries.emplace_back(src, v3 ? d.vraw_buffer() : d.raw_buffer());
    acc += count;
    seg_spans.emplace_back(seg_begin, d.pos());
    seg_counts.push_back(static_cast<std::uint32_t>(count));
  }
  const bool complete = !malformed && acc == total && d.ok();
  if (strict && !complete) return false;
  if (complete) {
    for (std::size_t k = 0; k < seg_counts.size(); ++k)
      p.entries_segs.push_back(
          TokenSeg{seg_counts[k], d.input_slice(seg_spans[k].first, seg_spans[k].second)});
    p.segs_version = static_cast<std::uint8_t>(w);
  }
  return true;
}

/// Shared token-body decode (everything after the tag byte). Returns false
/// iff the entries section was rejected; other field damage is left in the
/// decoder's ok() as usual.
bool decode_token_body(util::Decoder& d, WireFormat w, bool strict, Token& p) {
  p.gid = wire::Codec<core::ViewId>::decode(d, w);
  if (w == WireFormat::kV3) {
    p.lap = static_cast<std::uint32_t>(d.uvarint());
    p.base = static_cast<std::uint32_t>(d.uvarint());
  } else {
    p.lap = d.u32();
    p.base = d.u32();
  }
  if (!decode_token_entries(d, w, strict, p)) return false;
  const std::uint64_t nd = w == WireFormat::kV3 ? d.uvarint() : d.u32();
  for (std::uint64_t i = 0; i < nd && d.ok(); ++i) {
    const auto r = static_cast<ProcId>(w == WireFormat::kV3 ? d.uvarint() : d.u32());
    p.delivered[r] =
        static_cast<std::uint32_t>(w == WireFormat::kV3 ? d.uvarint() : d.u32());
  }
  return true;
}

}  // namespace

DecodeOutcome decode_packet_ex(const util::Buffer& packet) {
  // util::unchecked_decode() re-enables the historical accept-anything bug
  // (no checksum, truncated fields read as zero) for chaos-oracle demos.
  // The wire version byte is validated unconditionally: an unknown version
  // must never be interpreted under some other version's layout.
  const bool strict = !util::unchecked_decode();
  DecodeOutcome out;
  if (packet.empty()) {
    out.error = "empty packet";
    return out;
  }
  const std::uint8_t version = packet[0];
  if (!wire::known_version(version)) {
    out.error = "unknown wire version " + std::to_string(version) +
                " (this build speaks v1, v2, and v3; see docs/WIRE.md)";
    return out;
  }
  const WireFormat w = static_cast<WireFormat>(version);

  util::Decoder frame(packet);
  const FrameHeader header = wire::Codec<FrameHeader>::decode(frame, w);
  const util::Buffer body =
      frame.input_slice(kFrameHeaderSize, kFrameHeaderSize + header.body_len);
  if (strict &&
      (!frame.ok() || kFrameHeaderSize + header.body_len != packet.size())) {
    out.error = "truncated or oversized frame";
    return out;
  }
  if (strict && header.checksum != frame_checksum(version, body.view())) {
    out.error = "frame checksum mismatch";
    return out;
  }

  util::Decoder d(body);
  const std::uint8_t tag = d.u8();
  auto reject_incomplete = [&out, &d, strict](const char* what) {
    if (strict && !d.complete()) {
      out.error = std::string("malformed ") + what + " body";
      return true;
    }
    return false;
  };
  switch (tag) {
    case kTagCall: {
      Call p{wire::Codec<core::ViewId>::decode(d, w)};
      if (reject_incomplete("call")) return out;
      out.packet = Packet{p};
      return out;
    }
    case kTagCallReply: {
      CallReply p{wire::Codec<core::ViewId>::decode(d, w)};
      if (reject_incomplete("call-reply")) return out;
      out.packet = Packet{p};
      return out;
    }
    case kTagViewAnnounce: {
      ViewAnnounce p{wire::Codec<core::View>::decode(d, w)};
      if (reject_incomplete("view-announce")) return out;
      out.packet = Packet{p};
      return out;
    }
    case kTagToken: {
      Token p;
      if (!decode_token_body(d, w, strict, p)) {
        out.error = std::string("malformed ") + to_string(w) + " token entries section";
        return out;
      }
      if (strict && !d.complete()) {
        out.error = "malformed token body";
        return out;
      }
      out.packet = Packet{std::move(p)};
      return out;
    }
    case kTagProbe: {
      Probe p;
      if (d.boolean()) p.gid = wire::Codec<core::ViewId>::decode(d, w);
      if (reject_incomplete("probe")) return out;
      out.packet = Packet{p};
      return out;
    }
    default:
      out.error = "unknown packet tag " + std::to_string(tag);
      return out;
  }
}

std::optional<Packet> decode_packet(const util::Buffer& packet) {
  return decode_packet_ex(packet).packet;
}

std::optional<Packet> decode_packet(const util::Bytes& bytes) {
  return decode_packet(util::Buffer(bytes));
}

}  // namespace vsg::membership

namespace vsg::wire {

std::size_t Codec<membership::FrameHeader>::size(const membership::FrameHeader&,
                                                 Version) {
  return membership::kFrameHeaderSize;
}

void Codec<membership::FrameHeader>::encode(util::Encoder& e,
                                            const membership::FrameHeader& h,
                                            Version) {
  e.u8(h.version);
  e.u32(h.checksum);
  e.u32(h.body_len);
}

membership::FrameHeader Codec<membership::FrameHeader>::decode(util::Decoder& d,
                                                               Version) {
  membership::FrameHeader h;
  h.version = d.u8();
  h.checksum = d.u32();
  h.body_len = d.u32();
  return h;
}

std::size_t Codec<membership::Token>::size(const membership::Token& t, Version w) {
  // Plain (cache-blind) size, matching this codec's always-rebuild encode:
  // whole-range runs can be shorter than per-segment warm images when
  // adjacent segments share a source.
  std::size_t entries;
  if (w == Version::kV1) {
    entries = 4;
    for (const auto& [src, payload] : t.entries) entries += 4 + 4 + payload.size();
  } else {
    entries = (w == Version::kV3 ? util::uvarint_size(t.entries.size()) : 4) +
              membership::range_size(t.entries, 0, t.entries.size(), w);
  }
  return membership::token_scalar_size(t, w) + entries;
}

void Codec<membership::Token>::encode(util::Encoder& e, const membership::Token& t,
                                      Version w) {
  membership::encode_token_prefix(e, t, w);
  if (w == Version::kV1) {
    e.u32(static_cast<std::uint32_t>(t.entries.size()));
    for (const auto& [src, payload] : t.entries) {
      e.u32(static_cast<std::uint32_t>(src));
      e.raw(payload.view());
    }
  } else {
    if (w == Version::kV3)
      e.uvarint(t.entries.size());
    else
      e.u32(static_cast<std::uint32_t>(t.entries.size()));
    membership::encode_runs(e, t.entries, 0, t.entries.size(), w);
  }
  membership::encode_token_delivered(e, t, w);
}

membership::Token Codec<membership::Token>::decode(util::Decoder& d, Version w) {
  membership::Token t;
  const bool strict = !util::unchecked_decode();
  if (!membership::decode_token_body(d, w, strict, t)) d.fail();
  return t;
}

}  // namespace vsg::wire
