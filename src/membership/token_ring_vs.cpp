#include "membership/token_ring_vs.hpp"

#include <algorithm>
#include <cassert>

namespace vsg::membership {

TokenRingVS::TokenRingVS(sim::Simulator& simulator, net::Network& network,
                         sim::FailureTable& failures, trace::Recorder& recorder, int n, int n0,
                         TokenRingConfig config, util::Rng rng)
    : sim_(&simulator),
      endpoint_(network, config.port),
      failures_(&failures),
      recorder_(&recorder),
      config_(config),
      n0_(n0),
      clients_(static_cast<std::size_t>(n), nullptr) {
  assert(n > 0 && n0 > 0 && n0 <= n);
  assert(network.size() == n);
  nodes_.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    nodes_.push_back(std::make_unique<Node>(p, *this, rng.split()));
    endpoint_.attach(p, [this, p](ProcId src, const util::Buffer& pkt) {
      nodes_[static_cast<std::size_t>(p)]->on_packet(src, pkt);
    });
  }
}

void TokenRingVS::start() {
  assert(!started_);
  started_ = true;
  for (ProcId p = 0; p < size(); ++p)
    nodes_[static_cast<std::size_t>(p)]->start(p < n0_, n0_);
}

void TokenRingVS::attach(ProcId p, vs::Client& client) {
  assert(p >= 0 && p < size());
  clients_[static_cast<std::size_t>(p)] = &client;
}

void TokenRingVS::gpsnd(ProcId p, vs::Payload m) {
  assert(p >= 0 && p < size());
  recorder_->record(trace::GpsndEvent{p, m});
  if (obs_.gpsnd != nullptr) obs_.gpsnd->inc();
  // Classify state-exchange payloads by their VSTOTO tag byte — a peek, not
  // a decode, so the membership layer stays ignorant of the payload format.
  if (!m.empty()) {
    switch (m[0]) {
      case wire::kPayloadSummary:
        if (obs_.exch_summary_bytes != nullptr) obs_.exch_summary_bytes->inc(m.size());
        break;
      case wire::kPayloadDigest:
        if (obs_.exch_digest_bytes != nullptr) obs_.exch_digest_bytes->inc(m.size());
        break;
      case wire::kPayloadDelta:
        if (obs_.exch_delta_bytes != nullptr) obs_.exch_delta_bytes->inc(m.size());
        break;
      default:
        break;  // client values are not exchange traffic
    }
  }
  nodes_[static_cast<std::size_t>(p)]->submit(std::move(m));
}

void TokenRingVS::bind_metrics(obs::MetricsRegistry& registry) {
  obs_.proposals = &registry.counter("ring.formation_rounds");
  obs_.views_installed = &registry.counter("ring.views_installed");
  obs_.tokens_processed = &registry.counter("ring.token_rotations");
  obs_.entries_delivered = &registry.counter("ring.entries_delivered");
  obs_.safes_emitted = &registry.counter("ring.safes_emitted");
  obs_.probes_sent = &registry.counter("ring.probes_sent");
  obs_.token_bytes_sent = &registry.counter("ring.state_exchange_bytes");
  obs_.exch_summary_bytes = &registry.counter("ring.state_exchange_bytes.summary");
  obs_.exch_digest_bytes = &registry.counter("ring.state_exchange_bytes.digest");
  obs_.exch_delta_bytes = &registry.counter("ring.state_exchange_bytes.delta");
  obs_.entries_rebuilds = &registry.counter("ring.entries_rebuilds");
  obs_.entries_spliced = &registry.counter("ring.entries_spliced");
  obs_.payloads_per_pass = &registry.histogram(
      "ring.payloads_per_pass", obs::Unit::kCount, {0, 1, 2, 4, 8, 16, 32, 64, 128});
  obs_.board_bytes_per_pass = &registry.histogram(
      "ring.board_bytes_per_pass", obs::Unit::kCount,
      {0, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384});
  obs_.max_token_entries = &registry.gauge("ring.max_token_entries");
  obs_.backlog_depth = &registry.gauge("ring.backlog_depth");
  obs_.backlog_peak = &registry.gauge("ring.backlog_peak");
  obs_.gpsnd = &registry.counter("vs.gpsnd");
  obs_.gprcv = &registry.counter("vs.gprcv");
  obs_.safe = &registry.counter("vs.safe");
  obs_.newview = &registry.counter("vs.newview");
}

NodeStats TokenRingVS::total_stats() const {
  NodeStats total;
  for (const auto& node : nodes_) {
    const NodeStats& s = node->stats();
    total.proposals += s.proposals;
    total.views_installed += s.views_installed;
    total.tokens_processed += s.tokens_processed;
    total.entries_delivered += s.entries_delivered;
    total.safes_emitted += s.safes_emitted;
    total.probes_sent += s.probes_sent;
    total.token_bytes_sent += s.token_bytes_sent;
    total.entries_rebuilt += s.entries_rebuilt;
    total.entries_spliced += s.entries_spliced;
    total.max_token_entries = std::max(total.max_token_entries, s.max_token_entries);
  }
  return total;
}

void TokenRingVS::emit_gprcv(ProcId dst, ProcId src, const util::Buffer& m) {
  recorder_->record(trace::GprcvEvent{src, dst, m});
  if (obs_.gprcv != nullptr) obs_.gprcv->inc();
  auto* client = clients_[static_cast<std::size_t>(dst)];
  if (client != nullptr) client->on_gprcv(src, m);
}

void TokenRingVS::emit_safe(ProcId dst, ProcId src, const util::Buffer& m) {
  recorder_->record(trace::SafeEvent{src, dst, m});
  if (obs_.safe != nullptr) obs_.safe->inc();
  auto* client = clients_[static_cast<std::size_t>(dst)];
  if (client != nullptr) client->on_safe(src, m);
}

void TokenRingVS::emit_newview(ProcId p, const core::View& v) {
  recorder_->record(trace::NewViewEvent{p, v});
  if (obs_.newview != nullptr) obs_.newview->inc();
  auto* client = clients_[static_cast<std::size_t>(p)];
  if (client != nullptr) client->on_newview(v);
}

}  // namespace vsg::membership
