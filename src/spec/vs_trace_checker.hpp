#pragma once

// Online safety checker for the VS interface.
//
// Accepts a stream of newview/gpsnd/gprcv/safe events and verifies they
// could have been produced by VS-machine (Figure 6). Checked properties
// (Section 1's enumeration plus Lemma 4.2):
//   - self-inclusion and local monotonicity of views;
//   - view-id uniqueness (one membership per id, globally);
//   - initial-view rule: processors outside P0 receive nothing before their
//     first newview;
//   - sending-view delivery, message integrity, at-most-once, per-sender
//     FIFO (the cause function of Lemma 4.2 is constructed positionally);
//   - per-view common total order: every member's gprcv sequence in a view
//     is a prefix of one shared order for that view;
//   - safe soundness: the k-th safe at q in view g refers to the k-th
//     message of the shared order, and every member of the view has
//     already delivered it (next[r,g] > next-safe[q,g]).
//
// The checker also exposes the cause mapping it builds, which is the
// existence half of Lemma 4.2.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "trace/events.hpp"

namespace vsg::trace {
class Recorder;
}

namespace vsg::spec {

class VSTraceChecker {
 public:
  /// n processors, of which 0..n0-1 start in the initial view.
  VSTraceChecker(int n, int n0);

  void on_event(const trace::TimedEvent& te);
  void check_all(const std::vector<trace::TimedEvent>& trace);

  /// Subscribe as a live oracle on the recorder (see TOTraceChecker::attach).
  void attach(trace::Recorder& recorder);

  bool ok() const noexcept { return violations_.empty(); }
  const std::vector<std::string>& violations() const noexcept { return violations_; }

  /// cause: index of the gprcv (resp. safe) event, counted over all events
  /// fed to the checker, -> index of its gpsnd cause. Partial when the trace
  /// is unsafe.
  const std::map<std::size_t, std::size_t>& gprcv_cause() const noexcept { return gprcv_cause_; }
  const std::map<std::size_t, std::size_t>& safe_cause() const noexcept { return safe_cause_; }

  /// The reconstructed per-view common order (sender, payload). Payloads are
  /// shared references to the traced buffers, not copies.
  const std::vector<std::pair<ProcId, util::Buffer>>& view_order(const core::ViewId& g) const;

  /// Latest view installed at p (nullopt before any newview for p >= n0).
  const std::optional<core::View>& current_view(ProcId p) const;

 private:
  using ViewProc = std::pair<core::ViewId, ProcId>;
  struct PairKey {
    core::ViewId g;
    ProcId src;
    ProcId dst;
    auto operator<=>(const PairKey&) const = default;
  };

  void complain(const std::string& what);
  void handle_newview(const trace::NewViewEvent& e);
  void handle_gpsnd(const trace::GpsndEvent& e);
  void handle_gprcv(const trace::GprcvEvent& e);
  void handle_safe(const trace::SafeEvent& e);

  int n_;
  std::vector<std::optional<core::View>> current_;
  std::map<core::ViewId, std::set<ProcId>> views_by_id_;
  // gpsnd events per (view, sender): (event index, payload)
  std::map<ViewProc, std::vector<std::pair<std::size_t, util::Buffer>>> sent_;
  std::map<PairKey, std::size_t> gprcv_count_;
  std::map<PairKey, std::size_t> safe_count_;
  std::map<core::ViewId, std::vector<std::pair<ProcId, util::Buffer>>> order_;
  std::map<ViewProc, std::size_t> recv_idx_;  // (g, q) -> prefix delivered at q
  std::map<ViewProc, std::size_t> safe_idx_;  // (g, q) -> prefix safe at q
  std::map<std::size_t, std::size_t> gprcv_cause_;
  std::map<std::size_t, std::size_t> safe_cause_;
  std::vector<std::string> violations_;
  std::size_t events_seen_ = 0;
};

}  // namespace vsg::spec
