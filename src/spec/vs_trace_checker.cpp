#include "spec/vs_trace_checker.hpp"

#include <cassert>
#include <sstream>

#include "trace/recorder.hpp"

namespace vsg::spec {

VSTraceChecker::VSTraceChecker(int n, int n0) : n_(n), current_(static_cast<std::size_t>(n)) {
  assert(n > 0 && n0 > 0 && n0 <= n);
  const core::View v0 = core::initial_view(n0);
  views_by_id_[v0.id] = v0.members;
  for (ProcId p = 0; p < n0; ++p) current_[static_cast<std::size_t>(p)] = v0;
}

void VSTraceChecker::attach(trace::Recorder& recorder) {
  recorder.subscribe([this](const trace::TimedEvent& te) { on_event(te); });
}

void VSTraceChecker::complain(const std::string& what) {
  std::ostringstream os;
  os << "VS safety violation (event " << events_seen_ << "): " << what;
  violations_.push_back(os.str());
}

void VSTraceChecker::on_event(const trace::TimedEvent& te) {
  // events_seen_ is the index of this event in the fed stream.
  if (const auto* e = trace::as<trace::NewViewEvent>(te))
    handle_newview(*e);
  else if (const auto* e = trace::as<trace::GpsndEvent>(te))
    handle_gpsnd(*e);
  else if (const auto* e = trace::as<trace::GprcvEvent>(te))
    handle_gprcv(*e);
  else if (const auto* e = trace::as<trace::SafeEvent>(te))
    handle_safe(*e);
  ++events_seen_;
}

void VSTraceChecker::check_all(const std::vector<trace::TimedEvent>& trace) {
  for (const auto& te : trace) on_event(te);
}

void VSTraceChecker::handle_newview(const trace::NewViewEvent& e) {
  if (e.p < 0 || e.p >= n_) {
    complain("newview at unknown processor");
    return;
  }
  if (!e.v.contains(e.p))
    complain("self-inclusion violated: " + std::to_string(e.p) + " not in " +
             core::to_string(e.v));
  auto [it, inserted] = views_by_id_.emplace(e.v.id, e.v.members);
  if (!inserted && it->second != e.v.members)
    complain("two views share id " + core::to_string(e.v.id));
  auto& cur = current_[static_cast<std::size_t>(e.p)];
  if (cur.has_value() && !(e.v.id > cur->id))
    complain("local monotonicity violated at " + std::to_string(e.p) + ": " +
             core::to_string(e.v.id) + " after " + core::to_string(cur->id));
  cur = e.v;
}

void VSTraceChecker::handle_gpsnd(const trace::GpsndEvent& e) {
  if (e.p < 0 || e.p >= n_) {
    complain("gpsnd at unknown processor");
    return;
  }
  const auto& cur = current_[static_cast<std::size_t>(e.p)];
  if (!cur.has_value()) return;  // sent into bottom view: legal, never delivered
  sent_[{cur->id, e.p}].emplace_back(events_seen_, e.m);
}

void VSTraceChecker::handle_gprcv(const trace::GprcvEvent& e) {
  if (e.dst < 0 || e.dst >= n_ || e.src < 0 || e.src >= n_) {
    complain("gprcv with unknown processor");
    return;
  }
  const auto& cur = current_[static_cast<std::size_t>(e.dst)];
  if (!cur.has_value()) {
    complain("gprcv at " + std::to_string(e.dst) + " before any view (initial-view rule)");
    return;
  }
  const core::ViewId g = cur->id;

  // Cause construction (Lemma 4.2): the k-th gprcv_{src,dst} in view g is
  // caused by the k-th gpsnd_src in view g.
  auto& k = gprcv_count_[{g, e.src, e.dst}];
  const auto sit = sent_.find({g, e.src});
  if (sit == sent_.end() || k >= sit->second.size()) {
    complain("gprcv at " + std::to_string(e.dst) + " from " + std::to_string(e.src) +
             " in view " + core::to_string(g) + " has no cause (prefix exhausted)");
  } else {
    const auto& [send_idx, payload] = sit->second[k];
    if (payload != e.m)
      complain("gprcv payload differs from its positional cause (sending-view delivery "
               "or FIFO violated) at " +
               std::to_string(e.dst));
    else
      gprcv_cause_[events_seen_] = send_idx;
  }
  ++k;

  // Per-view common total order: match-or-extend.
  auto& order = order_[g];
  auto& pos = recv_idx_[{g, e.dst}];
  if (pos < order.size()) {
    if (order[pos].first != e.src || order[pos].second != e.m)
      complain("per-view total order violated at " + std::to_string(e.dst) + " in view " +
               core::to_string(g) + " position " + std::to_string(pos));
  } else {
    order.emplace_back(e.src, e.m);
  }
  ++pos;
}

void VSTraceChecker::handle_safe(const trace::SafeEvent& e) {
  if (e.dst < 0 || e.dst >= n_ || e.src < 0 || e.src >= n_) {
    complain("safe with unknown processor");
    return;
  }
  const auto& cur = current_[static_cast<std::size_t>(e.dst)];
  if (!cur.has_value()) {
    complain("safe at " + std::to_string(e.dst) + " before any view");
    return;
  }
  const core::ViewId g = cur->id;

  // Cause construction for safe events.
  auto& k = safe_count_[{g, e.src, e.dst}];
  const auto sit = sent_.find({g, e.src});
  if (sit == sent_.end() || k >= sit->second.size()) {
    complain("safe at " + std::to_string(e.dst) + " from " + std::to_string(e.src) +
             " in view " + core::to_string(g) + " has no cause");
  } else {
    const auto& [send_idx, payload] = sit->second[k];
    if (payload != e.m)
      complain("safe payload differs from its positional cause at " + std::to_string(e.dst));
    else
      safe_cause_[events_seen_] = send_idx;
  }
  ++k;

  // Queue-order soundness: the j-th safe at q refers to the j-th element of
  // the view's common order, and every view member has delivered past it.
  const auto& order = order_[g];
  auto& pos = safe_idx_[{g, e.dst}];
  if (pos >= order.size()) {
    complain("safe at " + std::to_string(e.dst) + " for a message nobody delivered yet");
  } else if (order[pos].first != e.src || order[pos].second != e.m) {
    complain("safe order violated at " + std::to_string(e.dst) + " in view " +
             core::to_string(g) + " position " + std::to_string(pos));
  } else {
    for (ProcId r : cur->members) {
      auto it = recv_idx_.find({g, r});
      const std::size_t delivered = it == recv_idx_.end() ? 0 : it->second;
      if (delivered <= pos)
        complain("safe at " + std::to_string(e.dst) + " but member " + std::to_string(r) +
                 " has delivered only " + std::to_string(delivered) + " messages in view " +
                 core::to_string(g));
    }
  }
  ++pos;
}

const std::vector<std::pair<ProcId, util::Buffer>>& VSTraceChecker::view_order(
    const core::ViewId& g) const {
  static const std::vector<std::pair<ProcId, util::Buffer>> kEmpty;
  auto it = order_.find(g);
  return it == order_.end() ? kEmpty : it->second;
}

const std::optional<core::View>& VSTraceChecker::current_view(ProcId p) const {
  assert(p >= 0 && p < n_);
  return current_[static_cast<std::size_t>(p)];
}

}  // namespace vsg::spec
