#include "spec/vs_machine.hpp"

#include <cassert>
#include <sstream>

namespace vsg::spec {

VSMachine::VSMachine(int n, int n0)
    : n_(n), current_(static_cast<std::size_t>(n)) {
  assert(n > 0 && n0 > 0 && n0 <= n);
  const core::View v0 = core::initial_view(n0);
  created_.push_back(v0);
  for (ProcId p = 0; p < n0; ++p) current_[static_cast<std::size_t>(p)] = v0.id;
}

const VSMachine::PerView* VSMachine::find(const core::ViewId& g) const {
  auto it = perview_.find(g);
  return it == perview_.end() ? nullptr : &it->second;
}

VSMachine::PerView& VSMachine::at(const core::ViewId& g) {
  auto it = perview_.find(g);
  if (it == perview_.end()) {
    PerView pv;
    pv.pending.resize(static_cast<std::size_t>(n_));
    pv.next.assign(static_cast<std::size_t>(n_), 1);
    pv.next_safe.assign(static_cast<std::size_t>(n_), 1);
    it = perview_.emplace(g, std::move(pv)).first;
  }
  return it->second;
}

bool VSMachine::createview_enabled(const core::View& v) const {
  for (ProcId p : v.members)
    if (p < 0 || p >= n_) return false;
  if (v.members.empty()) return false;
  for (const auto& w : created_)
    if (!(v.id > w.id)) return false;
  return true;
}

void VSMachine::createview(const core::View& v) {
  assert(createview_enabled(v));
  created_.push_back(v);
}

bool VSMachine::newview_enabled(const core::View& v, ProcId p) const {
  if (p < 0 || p >= n_) return false;
  if (!v.contains(p)) return false;  // signature: p in v.set
  bool is_created = false;
  for (const auto& w : created_)
    if (w.id == v.id && w.members == v.members) is_created = true;
  if (!is_created) return false;
  const auto& cur = current_[static_cast<std::size_t>(p)];
  return !cur.has_value() || v.id > *cur;
}

void VSMachine::newview(const core::View& v, ProcId p) {
  assert(newview_enabled(v, p));
  current_[static_cast<std::size_t>(p)] = v.id;
}

void VSMachine::gpsnd(ProcId p, Message m) {
  assert(p >= 0 && p < n_);
  const auto& cur = current_[static_cast<std::size_t>(p)];
  if (!cur.has_value()) return;  // sent before any view: ignored forever
  at(*cur).pending[static_cast<std::size_t>(p)].push_back(std::move(m));
}

bool VSMachine::vs_order_enabled(ProcId p, const core::ViewId& g) const {
  if (p < 0 || p >= n_) return false;
  const PerView* pv = find(g);
  return pv != nullptr && !pv->pending[static_cast<std::size_t>(p)].empty();
}

void VSMachine::vs_order(ProcId p, const core::ViewId& g) {
  assert(vs_order_enabled(p, g));
  PerView& pv = at(g);
  auto& pend = pv.pending[static_cast<std::size_t>(p)];
  pv.queue.push_back(Entry{std::move(pend.front()), p});
  pend.pop_front();
}

std::optional<VSMachine::Entry> VSMachine::gprcv_next(ProcId q) const {
  assert(q >= 0 && q < n_);
  const auto& cur = current_[static_cast<std::size_t>(q)];
  if (!cur.has_value()) return std::nullopt;
  const PerView* pv = find(*cur);
  if (pv == nullptr) return std::nullopt;
  const std::size_t idx = pv->next[static_cast<std::size_t>(q)];
  if (idx > pv->queue.size()) return std::nullopt;
  return pv->queue[idx - 1];
}

VSMachine::Entry VSMachine::gprcv(ProcId q) {
  auto entry = gprcv_next(q);
  assert(entry.has_value());
  PerView& pv = at(*current_[static_cast<std::size_t>(q)]);
  ++pv.next[static_cast<std::size_t>(q)];
  return *entry;
}

std::optional<VSMachine::Entry> VSMachine::safe_next(ProcId q) const {
  assert(q >= 0 && q < n_);
  const auto& cur = current_[static_cast<std::size_t>(q)];
  if (!cur.has_value()) return std::nullopt;
  const auto members = created_membership(*cur);
  if (!members.has_value()) return std::nullopt;
  const PerView* pv = find(*cur);
  if (pv == nullptr) return std::nullopt;
  const std::size_t idx = pv->next_safe[static_cast<std::size_t>(q)];
  if (idx > pv->queue.size()) return std::nullopt;
  // for all r in S: next[r, g] > next-safe[q, g]
  for (ProcId r : *members)
    if (pv->next[static_cast<std::size_t>(r)] <= idx) return std::nullopt;
  return pv->queue[idx - 1];
}

VSMachine::Entry VSMachine::safe(ProcId q) {
  auto entry = safe_next(q);
  assert(entry.has_value());
  PerView& pv = at(*current_[static_cast<std::size_t>(q)]);
  ++pv.next_safe[static_cast<std::size_t>(q)];
  return *entry;
}

std::optional<std::set<ProcId>> VSMachine::created_membership(const core::ViewId& g) const {
  for (const auto& v : created_)
    if (v.id == g) return v.members;
  return std::nullopt;
}

const std::optional<core::ViewId>& VSMachine::current_viewid(ProcId p) const {
  assert(p >= 0 && p < n_);
  return current_[static_cast<std::size_t>(p)];
}

std::vector<core::ViewId> VSMachine::created_viewids() const {
  std::vector<core::ViewId> out;
  out.reserve(created_.size());
  for (const auto& v : created_) out.push_back(v.id);
  return out;
}

const std::vector<VSMachine::Entry>& VSMachine::queue(const core::ViewId& g) const {
  static const std::vector<Entry> kEmpty;
  const PerView* pv = find(g);
  return pv == nullptr ? kEmpty : pv->queue;
}

const std::deque<VSMachine::Message>& VSMachine::pending(ProcId p, const core::ViewId& g) const {
  static const std::deque<Message> kEmpty;
  assert(p >= 0 && p < n_);
  const PerView* pv = find(g);
  return pv == nullptr ? kEmpty : pv->pending[static_cast<std::size_t>(p)];
}

std::size_t VSMachine::next(ProcId p, const core::ViewId& g) const {
  assert(p >= 0 && p < n_);
  const PerView* pv = find(g);
  return pv == nullptr ? 1 : pv->next[static_cast<std::size_t>(p)];
}

std::size_t VSMachine::next_safe(ProcId p, const core::ViewId& g) const {
  assert(p >= 0 && p < n_);
  const PerView* pv = find(g);
  return pv == nullptr ? 1 : pv->next_safe[static_cast<std::size_t>(p)];
}

std::vector<core::ViewId> VSMachine::touched_viewids() const {
  std::vector<core::ViewId> out;
  for (const auto& [g, pv] : perview_) out.push_back(g);
  for (const auto& v : created_) {
    bool seen = false;
    for (const auto& g : out)
      if (g == v.id) seen = true;
    if (!seen) out.push_back(v.id);
  }
  return out;
}

// --- Lemma 4.1 ----------------------------------------------------------------

std::vector<std::string> check_lemma_4_1(const VSMachine& m) {
  std::vector<std::string> bad;
  auto complain = [&bad](int part, const std::string& msg) {
    std::ostringstream os;
    os << "Lemma 4.1(" << part << "): " << msg;
    bad.push_back(os.str());
  };

  // (1) unique membership per created viewid
  const auto& created = m.created();
  for (std::size_t i = 0; i < created.size(); ++i)
    for (std::size_t j = i + 1; j < created.size(); ++j)
      if (created[i].id == created[j].id && created[i].members != created[j].members)
        complain(1, "two created views share id " + core::to_string(created[i].id));

  auto is_created = [&](const core::ViewId& g) {
    return m.created_membership(g).has_value();
  };

  for (ProcId p = 0; p < m.size(); ++p) {
    const auto& cur = m.current_viewid(p);
    // (2) current viewid is created
    if (cur.has_value() && !is_created(*cur))
      complain(2, "current viewid of " + std::to_string(p) + " not created");
    // (3) self-inclusion
    if (cur.has_value()) {
      const auto members = m.created_membership(*cur);
      if (members.has_value() && members->count(p) == 0)
        complain(3, "processor " + std::to_string(p) + " not member of its current view");
    }
  }

  for (const auto& g : m.touched_viewids()) {
    const auto& queue = m.queue(g);
    // (7) nonempty queue implies created
    if (!queue.empty() && !is_created(g))
      complain(7, "queue nonempty for uncreated view " + core::to_string(g));
    for (ProcId p = 0; p < m.size(); ++p) {
      const auto& pend = m.pending(p, g);
      if (!pend.empty()) {
        // (4,5,6)
        if (!is_created(g)) complain(4, "pending for uncreated view " + core::to_string(g));
        const auto& cur = m.current_viewid(p);
        if (!cur.has_value())
          complain(5, "pending but no current view at " + std::to_string(p));
        else if (!(g <= *cur))
          complain(6, "pending view id above current at " + std::to_string(p));
      }
      // (8,9): senders in queue have defined, later-or-equal current view
      for (const auto& entry : queue) {
        if (entry.p != p) continue;
        const auto& cur = m.current_viewid(p);
        if (!cur.has_value())
          complain(8, "queued message but no current view at " + std::to_string(p));
        else if (!(g <= *cur))
          complain(9, "queued message view id above current at " + std::to_string(p));
      }
      // (10,11,12)
      if (m.next(p, g) > queue.size() + 1) complain(10, "next out of range");
      if (m.next_safe(p, g) > queue.size() + 1) complain(11, "next-safe out of range");
      if (m.next_safe(p, g) > m.next(p, g)) complain(12, "next-safe exceeds next");
      // (13,14): only members advance next/next-safe
      const auto members = m.created_membership(g);
      if (members.has_value() && members->count(p) == 0) {
        if (m.next(p, g) != 1) complain(13, "non-member advanced next");
        if (m.next_safe(p, g) != 1) complain(14, "non-member advanced next-safe");
      }
    }
  }
  return bad;
}

}  // namespace vsg::spec
