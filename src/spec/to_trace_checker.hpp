#pragma once

// Online safety checker for the TO interface.
//
// Accepts a stream of bcast/brcv events and verifies they could have been
// produced by TO-machine (Figure 3), i.e. the defining properties of totally
// ordered broadcast:
//   - integrity: every delivery corresponds to a distinct earlier bcast with
//     the same value and origin;
//   - per-sender FIFO: the common order lists each sender's values in the
//     order they were broadcast;
//   - common total order: every receiver's delivery sequence is a prefix of
//     one shared order (reconstructed greedily: match-or-extend).
//
// The checker trusts nothing: it rebuilds the common order purely from the
// observed events.

#include <string>
#include <vector>

#include "trace/events.hpp"

namespace vsg::trace {
class Recorder;
}

namespace vsg::spec {

class TOTraceChecker {
 public:
  explicit TOTraceChecker(int n);

  /// Feed one event (non-TO events are ignored).
  void on_event(const trace::TimedEvent& te);

  /// Feed a whole trace.
  void check_all(const std::vector<trace::TimedEvent>& trace);

  /// Subscribe as a live oracle: every event the recorder sees from now on
  /// is fed to on_event as it happens. The checker must outlive the run
  /// (the recorder keeps a reference to it until the recorder dies).
  void attach(trace::Recorder& recorder);

  bool ok() const noexcept { return violations_.empty(); }
  const std::vector<std::string>& violations() const noexcept { return violations_; }

  /// The reconstructed common total order (origin, value).
  const std::vector<std::pair<ProcId, core::Value>>& global_order() const noexcept {
    return global_;
  }
  /// Number of deliveries observed at q (its prefix length).
  std::size_t delivered(ProcId q) const;

 private:
  void complain(const std::string& what);

  int n_;
  std::vector<std::vector<core::Value>> sent_;       // bcast values per origin
  std::vector<std::pair<ProcId, core::Value>> global_;
  std::vector<std::size_t> ordered_per_sender_;      // entries of global per origin
  std::vector<std::size_t> recv_idx_;                // prefix length per receiver
  std::vector<std::string> violations_;
  std::size_t events_seen_ = 0;
};

}  // namespace vsg::spec
