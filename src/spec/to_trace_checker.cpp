#include "spec/to_trace_checker.hpp"

#include <cassert>
#include <sstream>

#include "trace/recorder.hpp"

namespace vsg::spec {

TOTraceChecker::TOTraceChecker(int n)
    : n_(n),
      sent_(static_cast<std::size_t>(n)),
      ordered_per_sender_(static_cast<std::size_t>(n), 0),
      recv_idx_(static_cast<std::size_t>(n), 0) {
  assert(n > 0);
}

void TOTraceChecker::attach(trace::Recorder& recorder) {
  recorder.subscribe([this](const trace::TimedEvent& te) { on_event(te); });
}

void TOTraceChecker::complain(const std::string& what) {
  std::ostringstream os;
  os << "TO safety violation (event " << events_seen_ << "): " << what;
  violations_.push_back(os.str());
}

void TOTraceChecker::on_event(const trace::TimedEvent& te) {
  ++events_seen_;
  if (const auto* b = trace::as<trace::BcastEvent>(te)) {
    if (b->p < 0 || b->p >= n_) {
      complain("bcast at unknown processor");
      return;
    }
    sent_[static_cast<std::size_t>(b->p)].push_back(b->a);
    return;
  }
  const auto* r = trace::as<trace::BrcvEvent>(te);
  if (r == nullptr) return;

  if (r->dest < 0 || r->dest >= n_ || r->origin < 0 || r->origin >= n_) {
    complain("brcv with unknown processor");
    return;
  }
  auto& pos = recv_idx_[static_cast<std::size_t>(r->dest)];
  if (pos < global_.size()) {
    // Receiver extends its prefix of the already-reconstructed order.
    const auto& expect = global_[pos];
    if (expect.first != r->origin || expect.second != r->a) {
      std::ostringstream os;
      os << "receiver " << r->dest << " delivered (" << r->a << " from " << r->origin
         << ") at position " << pos << " but the common order has (" << expect.second
         << " from " << expect.first << ")";
      complain(os.str());
      return;  // do not advance: subsequent checks stay meaningful
    }
  } else {
    // Receiver is ahead of everyone: it defines the next element of the
    // common order. Integrity + per-sender FIFO: this must be the next
    // not-yet-ordered value broadcast by its origin.
    const auto origin = static_cast<std::size_t>(r->origin);
    const std::size_t k = ordered_per_sender_[origin];
    if (k >= sent_[origin].size()) {
      std::ostringstream os;
      os << "delivery of (" << r->a << " from " << r->origin
         << ") has no corresponding bcast (only " << sent_[origin].size() << " sent)";
      complain(os.str());
      return;
    }
    if (sent_[origin][k] != r->a) {
      std::ostringstream os;
      os << "per-sender FIFO violated: sender " << r->origin << "'s value #" << k
         << " is '" << sent_[origin][k] << "' but '" << r->a << "' was ordered";
      complain(os.str());
      return;
    }
    ++ordered_per_sender_[origin];
    global_.emplace_back(r->origin, r->a);
  }
  ++pos;
}

void TOTraceChecker::check_all(const std::vector<trace::TimedEvent>& trace) {
  for (const auto& te : trace) on_event(te);
}

std::size_t TOTraceChecker::delivered(ProcId q) const {
  assert(q >= 0 && q < n_);
  return recv_idx_[static_cast<std::size_t>(q)];
}

}  // namespace vsg::spec
