#include "spec/weak_vs_machine.hpp"

namespace vsg::spec {

bool WeakVSMachine::createview_enabled(const core::View& v) const {
  for (ProcId p : v.members)
    if (p < 0 || p >= size()) return false;
  if (v.members.empty()) return false;
  for (const auto& w : created())
    if (v.id == w.id) return false;
  return true;
}

}  // namespace vsg::spec
