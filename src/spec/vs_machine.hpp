#pragma once

// VS-machine (Figure 6): the abstract state machine specifying the safety
// part of the partitionable view-synchronous group communication service.
//
// The machine is nondeterministic; drivers (vs/spec_vs.*, test explorers)
// resolve the nondeterminism by choosing which enabled action to perform.
// Transition methods assert their preconditions.
//
// Construction takes n (|P|) and n0 (|P0|): processors 0..n0-1 start in the
// initial view v0 = (g0, P0); the rest start with current view undefined.

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/types.hpp"
#include "util/buffer.hpp"
#include "util/serde.hpp"

namespace vsg::spec {

class VSMachine {
 public:
  /// Shared immutable payload: queue[g] and pending[p,g] hold references to
  /// the same storage the client submitted — the machine never copies bytes.
  using Message = util::Buffer;

  /// One element of queue[g]: message plus sender.
  struct Entry {
    Message m;
    ProcId p = kNoProc;
    bool operator==(const Entry&) const = default;
  };

  /// Per-view-identifier state: the paper's queue[g], pending[p,g],
  /// next[p,g], next-safe[p,g] for one g.
  struct PerView {
    std::vector<Entry> queue;
    std::vector<std::deque<Message>> pending;  // indexed by p
    std::vector<std::size_t> next;             // 1-based, initially 1
    std::vector<std::size_t> next_safe;        // 1-based, initially 1
  };

  VSMachine(int n, int n0);
  virtual ~VSMachine() = default;

  int size() const noexcept { return n_; }

  // --- Internal createview(v) ----------------------------------------------
  /// Strict precondition: v.id greater than every created id, and every
  /// member of v is a real processor.
  virtual bool createview_enabled(const core::View& v) const;
  void createview(const core::View& v);

  // --- Output newview(v)_p --------------------------------------------------
  /// Signature constraint p in v.set, plus: v created and v.id greater than
  /// p's current viewid (or current undefined).
  bool newview_enabled(const core::View& v, ProcId p) const;
  void newview(const core::View& v, ProcId p);

  // --- Input gpsnd(m)_p -----------------------------------------------------
  /// Appends to pending[p, current-viewid[p]]; silently ignored while p's
  /// current view is undefined (the paper's bottom case).
  void gpsnd(ProcId p, Message m);

  // --- Internal vs-order(m, p, g) --------------------------------------------
  bool vs_order_enabled(ProcId p, const core::ViewId& g) const;
  void vs_order(ProcId p, const core::ViewId& g);

  // --- Output gprcv(m)_{p,q} --------------------------------------------------
  /// The entry gprcv would deliver at q next (in q's current view), if any.
  std::optional<Entry> gprcv_next(ProcId q) const;
  Entry gprcv(ProcId q);

  // --- Output safe(m)_{p,q} -----------------------------------------------------
  /// The entry safe would report at q next, if its precondition holds:
  /// every member r of q's current view has next[r,g] > next-safe[q,g].
  std::optional<Entry> safe_next(ProcId q) const;
  Entry safe(ProcId q);

  // --- State accessors --------------------------------------------------------
  const std::vector<core::View>& created() const noexcept { return created_; }
  /// Membership of the created view with id g, if created.
  std::optional<std::set<ProcId>> created_membership(const core::ViewId& g) const;
  const std::optional<core::ViewId>& current_viewid(ProcId p) const;
  /// Created view ids in creation order.
  std::vector<core::ViewId> created_viewids() const;

  const std::vector<Entry>& queue(const core::ViewId& g) const;
  const std::deque<Message>& pending(ProcId p, const core::ViewId& g) const;
  std::size_t next(ProcId p, const core::ViewId& g) const;
  std::size_t next_safe(ProcId p, const core::ViewId& g) const;

  /// All view ids that have any per-view state (superset of created ids
  /// touched by gpsnd); used by invariant checkers to sweep the state.
  std::vector<core::ViewId> touched_viewids() const;

 protected:
  const PerView* find(const core::ViewId& g) const;
  PerView& at(const core::ViewId& g);

  int n_;
  std::vector<core::View> created_;
  std::vector<std::optional<core::ViewId>> current_;
  std::map<core::ViewId, PerView> perview_;
};

/// Check the state invariants of Lemma 4.1; returns human-readable
/// descriptions of any violations (empty = all hold).
std::vector<std::string> check_lemma_4_1(const VSMachine& m);

}  // namespace vsg::spec
