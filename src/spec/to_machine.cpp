#include "spec/to_machine.hpp"

namespace vsg::spec {

TOMachine::TOMachine(int n)
    : n_(n),
      pending_(static_cast<std::size_t>(n)),
      next_(static_cast<std::size_t>(n), 1) {
  assert(n > 0);
}

void TOMachine::bcast(ProcId p, core::Value a) {
  assert(p >= 0 && p < n_);
  pending_[static_cast<std::size_t>(p)].push_back(std::move(a));
}

bool TOMachine::to_order_enabled(ProcId p) const {
  assert(p >= 0 && p < n_);
  return !pending_[static_cast<std::size_t>(p)].empty();
}

void TOMachine::to_order(ProcId p) {
  assert(to_order_enabled(p));
  auto& pend = pending_[static_cast<std::size_t>(p)];
  queue_.push_back(Entry{std::move(pend.front()), p});
  pend.pop_front();
}

std::optional<TOMachine::Entry> TOMachine::brcv_next(ProcId q) const {
  assert(q >= 0 && q < n_);
  const std::size_t idx = next_[static_cast<std::size_t>(q)];
  if (idx > queue_.size()) return std::nullopt;
  return queue_[idx - 1];
}

TOMachine::Entry TOMachine::brcv(ProcId q) {
  auto entry = brcv_next(q);
  assert(entry.has_value());
  ++next_[static_cast<std::size_t>(q)];
  return *entry;
}

const std::deque<core::Value>& TOMachine::pending(ProcId p) const {
  assert(p >= 0 && p < n_);
  return pending_[static_cast<std::size_t>(p)];
}

std::size_t TOMachine::next(ProcId q) const {
  assert(q >= 0 && q < n_);
  return next_[static_cast<std::size_t>(q)];
}

}  // namespace vsg::spec
