#pragma once

// WeakVS-machine (Remark, Section 4.1): identical to VS-machine except the
// createview precondition only enforces *unique* ids, not in-order creation.
//
// The paper states (without proof) that WeakVS-machine and VS-machine allow
// exactly the same finite traces — creation order of views is unobservable
// because newview still presents views to each processor in increasing id
// order. tests/spec_weak_vs_test.cpp probes this equivalence empirically.

#include "spec/vs_machine.hpp"

namespace vsg::spec {

class WeakVSMachine final : public VSMachine {
 public:
  WeakVSMachine(int n, int n0) : VSMachine(n, n0) {}

  /// Weak precondition: only id uniqueness (plus well-formed membership).
  bool createview_enabled(const core::View& v) const override;
};

}  // namespace vsg::spec
