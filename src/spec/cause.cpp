#include "spec/cause.hpp"

#include <optional>
#include <set>
#include <sstream>

#include "core/types.hpp"

namespace vsg::spec {
namespace {

struct Walk {
  // Per-event context gathered in one pass over the trace.
  struct SendRec {
    std::size_t idx;
    util::Buffer payload;  // shared reference to the traced buffer
  };
  using Key = std::pair<core::ViewId, ProcId>;  // (view, sender)

  std::map<Key, std::vector<SendRec>> sends;
  std::map<std::size_t, core::ViewId> view_at;  // event idx -> viewid of the acting proc
};

}  // namespace

CauseResult build_cause(const std::vector<trace::TimedEvent>& trace, int n, int n0) {
  CauseResult result;
  auto complain = [&result](std::size_t idx, const std::string& what) {
    std::ostringstream os;
    os << "Lemma 4.2 violation (event " << idx << "): " << what;
    result.violations.push_back(os.str());
  };

  // Pass 1: track views, collect sends, and positionally assign causes.
  std::vector<std::optional<core::ViewId>> current(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n0; ++p)
    current[static_cast<std::size_t>(p)] = core::ViewId::initial();

  Walk walk;
  std::map<std::tuple<core::ViewId, ProcId, ProcId>, std::size_t> rcount, scount;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& te = trace[i];
    if (const auto* e = trace::as<trace::NewViewEvent>(te)) {
      if (e->p >= 0 && e->p < n) current[static_cast<std::size_t>(e->p)] = e->v.id;
    } else if (const auto* e = trace::as<trace::GpsndEvent>(te)) {
      const auto& cur = current[static_cast<std::size_t>(e->p)];
      if (cur.has_value()) {
        walk.sends[{*cur, e->p}].push_back({i, e->m});
        walk.view_at[i] = *cur;
      }
    } else if (const auto* e = trace::as<trace::GprcvEvent>(te)) {
      const auto& cur = current[static_cast<std::size_t>(e->dst)];
      if (!cur.has_value()) {
        complain(i, "gprcv before any view");
        continue;
      }
      walk.view_at[i] = *cur;
      auto& k = rcount[{*cur, e->src, e->dst}];
      const auto sit = walk.sends.find({*cur, e->src});
      if (sit == walk.sends.end() || k >= sit->second.size())
        complain(i, "no gpsnd available as cause for gprcv");
      else if (sit->second[k].payload != e->m)
        complain(i, "cause payload mismatch for gprcv");
      else
        result.gprcv_cause[i] = sit->second[k].idx;
      ++k;
    } else if (const auto* e = trace::as<trace::SafeEvent>(te)) {
      const auto& cur = current[static_cast<std::size_t>(e->dst)];
      if (!cur.has_value()) {
        complain(i, "safe before any view");
        continue;
      }
      walk.view_at[i] = *cur;
      auto& k = scount[{*cur, e->src, e->dst}];
      const auto sit = walk.sends.find({*cur, e->src});
      if (sit == walk.sends.end() || k >= sit->second.size())
        complain(i, "no gpsnd available as cause for safe");
      else if (sit->second[k].payload != e->m)
        complain(i, "cause payload mismatch for safe");
      else
        result.safe_cause[i] = sit->second[k].idx;
      ++k;
    }
  }

  // Pass 2: verify the lemma's four properties from the mapping itself.
  auto verify = [&](const std::map<std::size_t, std::size_t>& cause, const char* kind) {
    // (1) Message integrity: cause precedes the event, views match.
    for (const auto& [ev, cs] : cause) {
      if (cs >= ev) complain(ev, std::string(kind) + " cause does not precede event");
      const auto vi = walk.view_at.find(ev);
      const auto vc = walk.view_at.find(cs);
      if (vi == walk.view_at.end() || vc == walk.view_at.end() || vi->second != vc->second)
        complain(ev, std::string(kind) + " occurs in a different view than its cause");
    }
    // (2) No duplication: per destination, the mapping is injective.
    std::map<ProcId, std::set<std::size_t>> used;
    for (const auto& [ev, cs] : cause) {
      ProcId dst = kNoProc;
      if (const auto* r = trace::as<trace::GprcvEvent>(trace[ev]))
        dst = r->dst;
      else if (const auto* s = trace::as<trace::SafeEvent>(trace[ev]))
        dst = s->dst;
      if (!used[dst].insert(cs).second)
        complain(ev, std::string(kind) + " duplicates a cause at destination " +
                         std::to_string(dst));
    }
    // (3) No reordering + (4) prefix: per (view, src, dst), the cause indices
    // must be exactly the first k sends, in increasing order.
    std::map<std::tuple<core::ViewId, ProcId, ProcId>, std::vector<std::size_t>> streams;
    for (const auto& [ev, cs] : cause) {
      ProcId src = kNoProc, dst = kNoProc;
      if (const auto* r = trace::as<trace::GprcvEvent>(trace[ev])) {
        src = r->src;
        dst = r->dst;
      } else if (const auto* s = trace::as<trace::SafeEvent>(trace[ev])) {
        src = s->src;
        dst = s->dst;
      }
      streams[{walk.view_at.at(ev), src, dst}].push_back(cs);
    }
    for (const auto& [key, causes] : streams) {
      const auto& [g, src, dst] = key;
      const auto sit = walk.sends.find({g, src});
      if (sit == walk.sends.end()) continue;
      for (std::size_t k = 0; k < causes.size(); ++k) {
        if (k >= sit->second.size() || causes[k] != sit->second[k].idx) {
          complain(causes[k], std::string(kind) + " causes are not the FIFO prefix of sends");
          break;
        }
      }
    }
  };
  verify(result.gprcv_cause, "gprcv");
  verify(result.safe_cause, "safe");

  return result;
}

}  // namespace vsg::spec
