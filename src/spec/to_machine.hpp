#pragma once

// TO-machine (Figure 3): the abstract global state machine specifying
// totally ordered broadcast. Used three ways:
//   1. as the correctness oracle in the forward-simulation checker
//      (verify/forward_simulation.*);
//   2. as a directly runnable reference service in tests;
//   3. as documentation: the transition methods are literal transcriptions
//      of the precondition/effect code.
//
// Each action has an `enabled` predicate and an effect method that asserts
// its precondition, mirroring I/O-automaton preconditions.

#include <cassert>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace vsg::spec {

class TOMachine {
 public:
  /// One element of `queue`: a data value paired with its origin.
  struct Entry {
    core::Value a;
    ProcId p = kNoProc;
    bool operator==(const Entry&) const = default;
  };

  explicit TOMachine(int n);

  int size() const noexcept { return n_; }

  // --- Input bcast(a)_p ---------------------------------------------------
  void bcast(ProcId p, core::Value a);

  // --- Internal to-order(a, p) --------------------------------------------
  /// Enabled iff pending[p] is nonempty (the head is the `a` to order).
  bool to_order_enabled(ProcId p) const;
  /// Move head of pending[p] onto the end of queue.
  void to_order(ProcId p);

  // --- Output brcv(a)_{p,q} -----------------------------------------------
  /// The entry that brcv would deliver at q next, if any.
  std::optional<Entry> brcv_next(ProcId q) const;
  /// Perform brcv at q; requires brcv_next(q) to be engaged.
  Entry brcv(ProcId q);

  // --- State accessors (for checkers and tests) ----------------------------
  const std::vector<Entry>& queue() const noexcept { return queue_; }
  const std::deque<core::Value>& pending(ProcId p) const;
  /// 1-based next-delivery index for q (the paper's next[q]).
  std::size_t next(ProcId q) const;

  bool operator==(const TOMachine&) const = default;

 private:
  int n_;
  std::vector<Entry> queue_;
  std::vector<std::deque<core::Value>> pending_;
  std::vector<std::size_t> next_;
};

}  // namespace vsg::spec
