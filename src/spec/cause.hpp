#pragma once

// The cause function of Lemma 4.2, as a standalone artifact.
//
// Given a VS-interface trace, build the unique mapping from gprcv and safe
// events to the gpsnd events that caused them, and verify its four defining
// properties (message integrity, no duplication, no reordering, no losses /
// prefix property). VSTraceChecker performs these checks online; this module
// re-derives the mapping and re-verifies the properties *from the mapping
// itself*, which is what the lemma actually asserts — so the two
// implementations cross-check each other in tests.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "trace/events.hpp"

namespace vsg::spec {

struct CauseResult {
  /// Trace index of each gprcv event -> trace index of its gpsnd cause.
  std::map<std::size_t, std::size_t> gprcv_cause;
  /// Trace index of each safe event -> trace index of its gpsnd cause.
  std::map<std::size_t, std::size_t> safe_cause;
  /// Lemma 4.2 property violations (empty iff the trace is VS-safe in the
  /// cause-related sense).
  std::vector<std::string> violations;

  bool ok() const noexcept { return violations.empty(); }
};

/// Construct and verify the cause mapping for a trace over n processors
/// with initial-view membership {0..n0-1}.
CauseResult build_cause(const std::vector<trace::TimedEvent>& trace, int n, int n0);

}  // namespace vsg::spec
