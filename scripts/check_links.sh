#!/usr/bin/env bash
# Intra-repo markdown link checker (grep-based, no dependencies).
#
# Scans every tracked *.md file for inline links [text](target) and verifies
# that each relative target exists, resolved against the linking file's
# directory. External links (scheme://, mailto:) and pure #fragments are
# skipped; a fragment on a relative target is stripped before the existence
# check. Exits 1 listing every broken link.
#
#   $ scripts/check_links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

broken=0
checked=0
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Pull out every inline-link target. Markdown images share the syntax.
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      *://*|mailto:*) continue ;;  # external
      '#'*) continue ;;            # same-file fragment
    esac
    path="${target%%#*}"           # strip fragment from relative links
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $md -> $target" >&2
      broken=$((broken + 1))
    fi
  done < <(grep -o '\[[^][]*\]([^()[:space:]]*)' "$md" | sed 's/.*(\(.*\))/\1/')
done < <(git ls-files '*.md')

if [ "$broken" -ne 0 ]; then
  echo "check_links.sh: $broken broken link(s) out of $checked checked" >&2
  exit 1
fi
echo "check_links.sh: $checked intra-repo links OK"
