#!/usr/bin/env bash
# CI entry point: build, run the tier-1 test suite, then exercise one bench
# in --export mode and sanity-check the emitted vsg-metrics-v1 snapshot.
#
#   $ scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Docs stage (docs/WIRE.md and friends): every intra-repo markdown link
# must resolve. Runs first — it needs no build.
scripts/check_links.sh

# Tier-1 verify line (ROADMAP.md).
cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

# Observability smoke: the throughput bench must emit a parseable snapshot.
./build/bench/bench_throughput --export build/BENCH_throughput.json
test -s build/BENCH_throughput.json
grep -q '"schema": "vsg-metrics-v1"' build/BENCH_throughput.json
grep -q '"net.packets_sent"' build/BENCH_throughput.json
grep -q '"ring.formation_rounds"' build/BENCH_throughput.json
grep -q '"to.brcv_latency.all"' build/BENCH_throughput.json

# Chaos smoke campaign (docs/CHAOS.md): 200 fixed seeds under the full
# oracle set must run clean, and the campaign metrics must export.
./build/tools/chaos_runner --seeds 200 --smoke --export build/CHAOS_smoke.json
grep -q '"schema": "vsg-metrics-v1"' build/CHAOS_smoke.json
grep -q '"chaos.runs": 200' build/CHAOS_smoke.json
grep -q '"chaos.failures": 0' build/CHAOS_smoke.json

# Minimized regression scenarios from past campaign finds must replay clean,
# and each must pin the wire version it was minimized under (docs/WIRE.md,
# "Scenario pinning") — bit-flip repros are meaningless under another layout.
for scn in tests/scenarios/*.scn; do
  grep -q '^config wire ' "$scn" || {
    echo "check.sh: $scn is missing its 'config wire' pin" >&2
    exit 1
  }
  ./build/tools/chaos_runner --replay "$scn"
done

# Tracing smoke (docs/OBSERVABILITY.md, "Tracing"): replay a fixed-seed
# scenario with the span tracer on and export a Chrome trace. The schema
# itself (matched b/e pairs, monotone per-track timestamps) is validated by
# obs::validate_chrome_trace in tests/obs_span_test.cpp; here we check the
# file materializes with both span families and the Perfetto metadata.
./build/tools/chaos_runner --replay tests/scenarios/chaos_seed248_stuck_proposal.scn \
    --trace-out build/replay.trace.json
test -s build/replay.trace.json
grep -q '"traceEvents"' build/replay.trace.json
grep -q '"process_name"' build/replay.trace.json
grep -q '"tobrcv"' build/replay.trace.json
grep -q '"view.state_exchange"' build/replay.trace.json

# The injected-fault demo: with the historical decode bug re-enabled, the
# same oracles must catch it (exit 1) on its minimized repro.
if ./build/tools/chaos_runner --replay tests/scenarios/chaos_seed75_unchecked_decode.scn \
    --inject-unchecked-decode >/dev/null; then
  echo "check.sh: injected decode fault was NOT caught" >&2
  exit 1
fi

# Sanitizer pass (docs/DATAPLANE.md): the zero-copy plane shares one
# allocation across layers and holds slices past their parent Buffer, so the
# whole suite plus a chaos smoke runs again under ASan + UBSan. Halt on the
# first report (-fno-sanitize-recover=all makes any finding fatal).
cmake -B build-asan -S . -DVSG_SANITIZE=ON
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j)
./build-asan/tools/chaos_runner --seeds 200 --smoke

echo "check.sh: all green"
