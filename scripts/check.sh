#!/usr/bin/env bash
# CI entry point: build, run the tier-1 test suite, then exercise one bench
# in --export mode and sanity-check the emitted vsg-metrics-v1 snapshot.
#
#   $ scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Tier-1 verify line (ROADMAP.md).
cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

# Observability smoke: the throughput bench must emit a parseable snapshot.
./build/bench/bench_throughput --export build/BENCH_throughput.json
test -s build/BENCH_throughput.json
grep -q '"schema": "vsg-metrics-v1"' build/BENCH_throughput.json
grep -q '"net.packets_sent"' build/BENCH_throughput.json
grep -q '"ring.formation_rounds"' build/BENCH_throughput.json
grep -q '"to.brcv_latency.all"' build/BENCH_throughput.json

echo "check.sh: all green"
