#!/usr/bin/env bash
# CI entry point: build, run the tier-1 test suite, then exercise one bench
# in --export mode and sanity-check the emitted vsg-metrics-v1 snapshot.
#
#   $ scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Docs stage (docs/WIRE.md and friends): every intra-repo markdown link
# must resolve. Runs first — it needs no build.
scripts/check_links.sh

# Tier-1 verify line (ROADMAP.md).
cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

# Observability smoke: the throughput bench must emit a parseable snapshot.
./build/bench/bench_throughput --export build/BENCH_throughput.json
test -s build/BENCH_throughput.json
grep -q '"schema": "vsg-metrics-v1"' build/BENCH_throughput.json
grep -q '"net.packets_sent"' build/BENCH_throughput.json
grep -q '"ring.formation_rounds"' build/BENCH_throughput.json
grep -q '"to.brcv_latency.all"' build/BENCH_throughput.json

# Wire-compat gate (docs/WIRE.md, "Wire-compat gate"): the golden frame
# fixtures committed under tests/wire/ were encoded when each version
# shipped; every build must keep decoding them, and must refuse the
# unknown-version fixture. A layout change that breaks old bytes fails
# here instead of in a mixed-version deployment.
for f in tests/wire/golden_v*.frame; do
  ./build/tools/chaos_runner --decode-frame "$f"
done
if ./build/tools/chaos_runner --decode-frame tests/wire/unknown_version.frame; then
  echo "check.sh: unknown-version frame was accepted" >&2
  exit 1
fi

# Chaos smoke campaign (docs/CHAOS.md): 200 fixed seeds under the full
# oracle set must run clean, and the campaign metrics must export.
./build/tools/chaos_runner --seeds 200 --smoke --export build/CHAOS_smoke.json \
    | tee build/chaos_smoke_jobs1.out
grep -q '"schema": "vsg-metrics-v1"' build/CHAOS_smoke.json
grep -q '"chaos.runs": 200' build/CHAOS_smoke.json
grep -q '"chaos.failures": 0' build/CHAOS_smoke.json

# Parallel determinism gate (docs/CHAOS.md, "Parallel execution"): the same
# campaign fanned out across 4 worker threads must produce a bit-identical
# campaign fingerprint (order-sensitive fold over every seed's verdict and
# delivery fingerprint) — Worlds share no mutable state, so jobs must only
# change wall-clock, never results.
./build/tools/chaos_runner --seeds 200 --smoke --jobs 4 \
    | tee build/chaos_smoke_jobs4.out
fp1=$(grep -o 'campaign fingerprint [0-9a-f]*' build/chaos_smoke_jobs1.out)
fp4=$(grep -o 'campaign fingerprint [0-9a-f]*' build/chaos_smoke_jobs4.out)
test -n "$fp1"
if [ "$fp1" != "$fp4" ]; then
  echo "check.sh: campaign fingerprint differs across --jobs ($fp1 vs $fp4)" >&2
  exit 1
fi

# Sharding equivalence gate (docs/SHARDING.md, "K=1 is the classic
# harness"): shards=1 must stay bit-identical to the pre-shard harness.
# The smoke fingerprint and the headline protocol counters are pinned to
# the values the single-stack harness produced; any drift here means the
# default topology is no longer the same system.
if [ "$fp1" != "campaign fingerprint 8bc76ebef3d2f2e6" ]; then
  echo "check.sh: K=1 smoke fingerprint drifted from the single-stack baseline ($fp1)" >&2
  exit 1
fi
grep -q '"net.packets_sent": 247105' build/CHAOS_smoke.json
grep -q '"ring.entries_delivered": 46179' build/CHAOS_smoke.json
grep -q '"ring.token_rotations": 267240' build/CHAOS_smoke.json

# Sharded smoke (docs/SHARDING.md): a four-shard campaign with correlated
# failure-domain faults must run clean under the per-shard oracle set, and
# the checked-in sharded scenario must replay through both replayers.
./build/tools/chaos_runner --seeds 50 --smoke --shards 4 --domains 2
./build/tools/chaos_runner --replay examples/scenarios/sharded_two_rings.scn
./build/examples/scenario_runner examples/scenarios/sharded_two_rings.scn >/dev/null

# Cross-shard consistency demo (docs/SHARDING.md, "The anomaly"): phase 1
# must FIND the crafted cross-shard seq-cst violation, phase 2 (per-shard
# barriers) must come back clean — the demo exits 0 only when both hold.
./build/examples/sharded_kv_demo >/dev/null

# Decode-shim gate: the optional-returning decode shims are test-only.
# Production code (src/, bench/, examples/, tools/) must use the *_ex API;
# only the defining headers may still spell the shim names.
if grep -rnE --include='*.cpp' --include='*.hpp' \
    '(^|[^_[:alnum:]])decode_(packet|message)\(' src bench examples tools \
    | grep -v 'src/membership/messages' | grep -v 'src/vstoto/wire'; then
  echo "check.sh: non-test caller of a test-only decode shim (use decode_*_ex)" >&2
  exit 1
fi

# Wire cross-check (docs/WIRE.md, "v3 state exchange"): the same chaos
# schedules under wire v2 (full summaries) and v3 (digest/delta) must agree
# on every oracle verdict and deliver the same value multisets.
./build/tools/chaos_runner --cross-check --seeds 25 --smoke

# Minimized regression scenarios from past campaign finds must replay clean,
# and each must pin the wire version it was minimized under (docs/WIRE.md,
# "Scenario pinning") — bit-flip repros are meaningless under another layout.
for scn in tests/scenarios/*.scn; do
  grep -q '^config wire ' "$scn" || {
    echo "check.sh: $scn is missing its 'config wire' pin" >&2
    exit 1
  }
  ./build/tools/chaos_runner --replay "$scn"
done

# Tracing smoke (docs/OBSERVABILITY.md, "Tracing"): replay a fixed-seed
# scenario with the span tracer on and export a Chrome trace. The schema
# itself (matched b/e pairs, monotone per-track timestamps) is validated by
# obs::validate_chrome_trace in tests/obs_span_test.cpp; here we check the
# file materializes with both span families and the Perfetto metadata.
./build/tools/chaos_runner --replay tests/scenarios/chaos_seed248_stuck_proposal.scn \
    --trace-out build/replay.trace.json
test -s build/replay.trace.json
grep -q '"traceEvents"' build/replay.trace.json
grep -q '"process_name"' build/replay.trace.json
grep -q '"tobrcv"' build/replay.trace.json
grep -q '"view.state_exchange"' build/replay.trace.json

# Timeline smoke (docs/OBSERVABILITY.md, "Timelines"): a 50-seed smoke
# campaign with per-seed timelines — every emitted file must validate as
# vsg-timeseries-v1, and sampling must not perturb the run (the campaign
# still exits clean).
rm -rf build/timelines && mkdir -p build/timelines
./build/tools/chaos_runner --seeds 50 --smoke --timeline-out build/timelines
./build/tools/vsg_report --validate build/timelines/timeline_seed*.json >/dev/null
test "$(ls build/timelines/timeline_seed*.json | wc -l)" -eq 50

# Timeline determinism pin: a fixed-seed K=1 replay's timeline is hashed
# with the canonical vsg-timeseries-v1 fingerprint. Sampler reads never
# touch the RNG or the schedule, so this value only moves when the metric
# set or the protocol itself changes — update it alongside the campaign
# fingerprint above when that is intentional.
./build/tools/chaos_runner --replay tests/scenarios/chaos_seed248_stuck_proposal.scn \
    --timeline-out build/replay_timeline.json
tfp=$(./build/tools/vsg_report --fingerprint build/replay_timeline.json | cut -d' ' -f1)
if [ "$tfp" != "76f52e0f2f785e7a" ]; then
  echo "check.sh: fixed-seed timeline fingerprint drifted ($tfp)" >&2
  exit 1
fi

# The write_timeline contract: a churned sharded bench's final aggregate
# sample must equal its end-of-run export (modulo wall exclusions), and the
# report must render as self-contained HTML.
./build/bench/bench_throughput --churn --shards 4 \
    --timeline-out build/TL_churn.json --export build/BENCH_churn.json >/dev/null
./build/tools/vsg_report --check-final build/BENCH_churn.json build/TL_churn.json
./build/tools/vsg_report build/TL_churn.json --html build/TL_churn.html >/dev/null
test -s build/TL_churn.html
grep -q '<svg' build/TL_churn.html

# Health watchdogs (docs/CHAOS.md, "Health oracle"): slowing the ring past
# the stall bound must trip token_stall under --health-oracle, the failing
# seed must shrink with the rule preserved, and the v2 manifest must index
# the timeline artifact next to the trace.
rm -rf build/stall_repro && mkdir -p build/stall_repro
if ./build/tools/chaos_runner --seeds 1 --first-seed 5 --smoke --pi 1500 \
    --health-oracle --repro-dir build/stall_repro >/dev/null; then
  echo "check.sh: injected ring stall was NOT flagged by the health oracle" >&2
  exit 1
fi
grep -q '"vsg-repro-manifest-v2"' build/stall_repro/repro_manifest.json
grep -q 'token_stall' build/stall_repro/repro_manifest.json
grep -q '"timeline": "chaos_seed5_timeline.json"' build/stall_repro/repro_manifest.json
./build/tools/vsg_report --validate build/stall_repro/chaos_seed5_timeline.json >/dev/null
./build/tools/vsg_report build/stall_repro/chaos_seed5_timeline.json \
    | grep -q 'token_stall'
# Shrink preserved the rule: replaying the minimized repro under the same
# injection flags still stalls. (--pi is invocation config, not pinned in
# the scenario, so it must be passed again — like --corrupt.)
if ./build/tools/chaos_runner --replay build/stall_repro/chaos_seed5.scn \
    --pi 1500 --health-oracle >/dev/null; then
  echo "check.sh: shrunk stall repro no longer trips token_stall" >&2
  exit 1
fi

# The injected-fault demo: with the historical decode bug re-enabled, the
# same oracles must catch it (exit 1) on its minimized repros — one per
# wire layout (v1 bytes: seed 75; v3 bytes: seed 138), since corruption
# offsets that slip past an unchecked decoder are layout-dependent.
for scn in tests/scenarios/chaos_seed75_unchecked_decode.scn \
           tests/scenarios/chaos_seed138_unchecked_decode.scn; do
  if ./build/tools/chaos_runner --replay "$scn" --inject-unchecked-decode >/dev/null; then
    echo "check.sh: injected decode fault was NOT caught ($scn)" >&2
    exit 1
  fi
done

# Flow-control gate (docs/FLOWCONTROL.md): a churned rate sweep past ring
# capacity under a byte budget + shed admission gate must log ZERO
# backlog_growth health events — the gate caps the backlog by
# construction, so the watchdog's monotone-growth streak can never form.
./build/bench/bench_throughput --rate 100,200,400 --churn \
    --budget 64 --gate shed --backlog 8 | tee build/fc_rate.out
grep -q '^backlog_growth events: 0$' build/fc_rate.out
# Golden render: vsg_report over the committed flow-controlled timeline
# must reproduce the committed report byte-for-byte, including the
# to.admission_wait percentiles and the sends_shed flag. To regenerate
# after an intentional metric/render change:
#   ./build/bench/bench_throughput --rate 400 --churn --budget 64 \
#       --gate shed --backlog 8 --timeline-out tests/golden/flowcontrol_timeline.json
#   ./build/tools/vsg_report tests/golden/flowcontrol_timeline.json \
#       > tests/golden/flowcontrol_report.txt
./build/tools/vsg_report tests/golden/flowcontrol_timeline.json > build/fc_report.out
diff -u tests/golden/flowcontrol_report.txt build/fc_report.out
grep -q 'to.admission_wait' build/fc_report.out
grep -q 'SHED at the admission gate' build/fc_report.out
# Budgeted chaos smoke: 50 seeds under a boarding budget (+lanes) must run
# clean — budget-found repros pinning `config budget` are unit-tested in
# tests/chaos_test.cpp.
./build/tools/chaos_runner --seeds 50 --smoke --budget 256

# Sanitizer pass (docs/DATAPLANE.md): the zero-copy plane shares one
# allocation across layers and holds slices past their parent Buffer, so the
# whole suite plus a chaos smoke runs again under ASan + UBSan. Halt on the
# first report (-fno-sanitize-recover=all makes any finding fatal).
cmake -B build-asan -S . -DVSG_SANITIZE=ON
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j)
# The varint fuzz suite (random byte soup, truncations, overlong forms) is
# where an out-of-bounds read in the LEB128 decoder would surface; run it
# by name so a filter rename cannot silently drop it from the ASan pass
# (gtest exits 0 on an empty filter, hence the passed-count grep).
./build-asan/tests/util_test --gtest_filter='VarintFuzz.*' | grep -q '^\[  PASSED  \] [1-9]'
./build-asan/tools/chaos_runner --seeds 200 --smoke
# Multi-job under ASan: the executor's thread pool plus per-World registries
# must stay clean with sanitizers watching the shared globals.
./build-asan/tools/chaos_runner --seeds 200 --smoke --jobs 4

# Optional TSan pass (VSG_CHECK_TSAN=1): a third full build is expensive, so
# it is opt-in. TSan is the authoritative check on the three cross-World
# globals (thread_local decode flag, atomic log level, atomic storage uid) —
# run the suite plus a multi-job smoke under it.
if [ "${VSG_CHECK_TSAN:-0}" = "1" ]; then
  cmake -B build-tsan -S . -DVSG_TSAN=ON
  cmake --build build-tsan -j
  (cd build-tsan && ctest --output-on-failure -j)
  ./build-tsan/tools/chaos_runner --seeds 200 --smoke --jobs 4
fi

echo "check.sh: all green"
