// vsg_report — render vsg-metrics-v1 and vsg-timeseries-v1 exports as
// terminal text or a self-contained HTML page (docs/OBSERVABILITY.md).
//
//   $ ./vsg_report BENCH_E6.json                    # percentile tables
//   $ ./vsg_report timeline.json                    # per-series timelines
//   $ ./vsg_report --validate /tmp/tl/*.json        # schema check, exit 0/1
//   $ ./vsg_report --fingerprint timeline.json      # canonical fnv1a, hex
//   $ ./vsg_report --check-final EXPORT.json timeline.json
//   $ ./vsg_report --html report.html timeline.json BENCH_E6.json
//
// File kind is auto-detected from the schema tag. `--metric NAME` adds a
// series to the timeline plots (default: token rotation rate, backlog
// depths, pending labels). `--check-final` asserts the timeline's final
// "aggregate" sample equals the end-of-run registry export modulo the
// wall-clock exclusions (obs::is_wall_metric) and export-only extras —
// the acceptance contract between World::write_timeline and --export.
//
// Exit status: 0 clean, 1 validation/check failure, 2 usage/IO errors.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "obs/json_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

using namespace vsg;

namespace {

struct Options {
  bool validate = false;
  bool fingerprint = false;
  std::string check_final;  // vsg-metrics-v1 export to compare against
  std::string html_out;
  std::vector<std::string> metrics;  // extra timeline plot series
  std::vector<std::string> files;
};

/// One input file, parsed as whichever schema its tag declares.
struct Doc {
  std::string path;
  std::optional<obs::TimeseriesDoc> timeseries;
  std::optional<obs::MetricsSnapshot> snapshot;  // vsg-metrics-v1
  std::string label;                             // metrics-v1 label field
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--validate") {
      opt.validate = true;
    } else if (arg == "--fingerprint") {
      opt.fingerprint = true;
    } else if (arg == "--check-final") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.check_final = v;
    } else if (arg == "--html") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.html_out = v;
    } else if (arg == "--metric") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.metrics.push_back(v);
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      opt.files.push_back(arg);
    }
  }
  return !opt.files.empty();
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::optional<Doc> load(const std::string& path) {
  const auto text = slurp(path);
  if (!text.has_value()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  Doc doc;
  doc.path = path;
  doc.timeseries = obs::parse_timeseries(*text);
  if (!doc.timeseries.has_value()) {
    doc.snapshot = obs::JsonExporter::parse(*text);
    if (doc.snapshot.has_value()) doc.label = obs::JsonExporter::parse_label(*text);
  }
  if (!doc.timeseries.has_value() && !doc.snapshot.has_value()) {
    std::fprintf(stderr,
                 "%s: neither a vsg-timeseries-v1 nor a vsg-metrics-v1 document\n",
                 path.c_str());
    return std::nullopt;
  }
  return doc;
}

// --- snapshot lookups (entries are sorted by name) -------------------------

const std::uint64_t* find_counter(const obs::MetricsSnapshot& s, const std::string& n) {
  const auto it = std::lower_bound(
      s.counters.begin(), s.counters.end(), n,
      [](const auto& e, const std::string& name) { return e.first < name; });
  return it != s.counters.end() && it->first == n ? &it->second : nullptr;
}

const std::int64_t* find_gauge(const obs::MetricsSnapshot& s, const std::string& n) {
  const auto it = std::lower_bound(
      s.gauges.begin(), s.gauges.end(), n,
      [](const auto& e, const std::string& name) { return e.first < name; });
  return it != s.gauges.end() && it->first == n ? &it->second : nullptr;
}

const obs::HistogramSnapshot* find_histogram(const obs::MetricsSnapshot& s,
                                             const std::string& n) {
  const auto it = std::lower_bound(
      s.histograms.begin(), s.histograms.end(), n,
      [](const auto& h, const std::string& name) { return h.name < name; });
  return it != s.histograms.end() && it->name == n ? &*it : nullptr;
}

/// Upper bound of the bucket containing quantile q (same bucketed estimate
/// as Histogram::quantile_upper, but over an exported snapshot).
std::int64_t quantile_upper(const obs::HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(h.count)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cum += h.buckets[i];
    if (cum >= target && cum > 0)
      return i < h.bounds.size() ? h.bounds[i] : h.max;
  }
  return h.max;
}

// --- timeline extraction ---------------------------------------------------

/// Series names in order of first appearance ("aggregate" first by
/// construction of the sampler's source list).
std::vector<std::string> series_names(const obs::TimeseriesDoc& doc) {
  std::vector<std::string> out;
  for (const auto& s : doc.samples)
    if (std::find(out.begin(), out.end(), s.series) == out.end())
      out.push_back(s.series);
  return out;
}

struct Track {
  std::string metric;  // display name ("Δ" prefix for counter rates)
  std::vector<sim::Time> at;
  std::vector<double> value;
};

/// Default plots: token rotation rate plus the two backlog gauges the
/// backlog_growth watchdog watches. --metric adds raw counters/gauges.
std::vector<Track> extract_tracks(const obs::TimeseriesDoc& doc,
                                  const std::string& series,
                                  const std::vector<std::string>& extra) {
  std::vector<std::string> wanted{"ring.token_rotations", "ring.backlog_depth",
                                  "to.pending_labels"};
  for (const auto& m : extra)
    if (std::find(wanted.begin(), wanted.end(), m) == wanted.end()) wanted.push_back(m);

  std::vector<Track> tracks;
  for (const auto& name : wanted) {
    Track t;
    bool is_counter = false, present = false;
    double prev = 0;
    for (const auto& s : doc.samples) {
      if (s.series != series) continue;
      double v = 0;
      if (const auto* c = find_counter(s.metrics, name)) {
        is_counter = true;
        present = true;
        v = static_cast<double>(*c);
      } else if (const auto* g = find_gauge(s.metrics, name)) {
        present = true;
        v = static_cast<double>(*g);
      }
      // Counters plot as per-window deltas (a rate), gauges as levels.
      t.at.push_back(s.at);
      t.value.push_back(is_counter && !t.value.empty() ? v - prev : v);
      if (is_counter) prev = v;
    }
    if (!present) continue;
    if (is_counter && !t.value.empty()) t.value.front() = 0;  // no pre-window base
    t.metric = is_counter ? "Δ" + name : name;
    tracks.push_back(std::move(t));
  }
  return tracks;
}

std::string sparkline(const std::vector<double>& values, std::size_t width = 60) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = values.front(), hi = values.front();
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  const std::size_t n = values.size();
  const std::size_t cols = std::min(width, n);
  for (std::size_t c = 0; c < cols; ++c) {
    // Max-pool each column so narrow spikes survive downsampling.
    const std::size_t a = c * n / cols, b = std::max(a + 1, (c + 1) * n / cols);
    double v = values[a];
    for (std::size_t i = a; i < b; ++i) v = std::max(v, values[i]);
    const int idx =
        hi > lo ? static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5) : 0;
    out += kBlocks[std::clamp(idx, 0, 7)];
  }
  return out;
}

std::string fmt_us(sim::Time t) {
  char buf[32];
  if (t % 1000000 == 0)
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(t / 1000000));
  else if (t % 1000 == 0)
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(t / 1000));
  else
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(t));
  return buf;
}

// --- text rendering --------------------------------------------------------

void print_percentiles(const obs::MetricsSnapshot& snap, const char* indent) {
  bool any = false;
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    if (!any)
      std::printf("%s%-34s %10s %8s %10s %10s %10s %10s\n", indent, "histogram", "unit",
                  "count", "p50", "p90", "p99", "max");
    any = true;
    std::printf("%s%-34s %10s %8llu %10lld %10lld %10lld %10lld\n", indent,
                h.name.c_str(), obs::to_string(h.unit),
                static_cast<unsigned long long>(h.count),
                static_cast<long long>(quantile_upper(h, 0.50)),
                static_cast<long long>(quantile_upper(h, 0.90)),
                static_cast<long long>(quantile_upper(h, 0.99)),
                static_cast<long long>(h.max));
  }
  if (!any) std::printf("%s(no histogram samples)\n", indent);
}

/// Flow-control flag next to the health log: shed sends are silent data
/// loss the caller opted into (to::Service::trysend), so a nonzero
/// ring.sends_shed deserves the same prominence as a watchdog event
/// (docs/FLOWCONTROL.md).
void print_shed_flag(const obs::MetricsSnapshot& snap) {
  const auto* shed = find_counter(snap, "ring.sends_shed");
  if (shed != nullptr && *shed > 0)
    std::printf("flow control: %llu send%s SHED at the admission gate "
                "(ring.sends_shed > 0, docs/FLOWCONTROL.md)\n",
                static_cast<unsigned long long>(*shed), *shed == 1 ? "" : "s");
}

void print_health_events(const std::vector<obs::HealthEvent>& events) {
  if (events.empty()) {
    std::printf("health events: none\n");
    return;
  }
  std::printf("health events (%zu):\n", events.size());
  for (const auto& e : events)
    std::printf("  %-10s %-16s [%s] %s\n", fmt_us(e.at).c_str(), e.rule.c_str(),
                e.series.c_str(), e.detail.c_str());
}

void report_timeseries(const Doc& doc, const Options& opt) {
  const auto& ts = *doc.timeseries;
  const auto series = series_names(ts);
  std::printf("%s: vsg-timeseries-v1, interval %s, %zu samples, %zu series, "
              "%llu dropped\n",
              doc.path.c_str(), fmt_us(ts.interval).c_str(), ts.samples.size(),
              series.size(), static_cast<unsigned long long>(ts.dropped));
  for (const auto& name : series) {
    sim::Time first = 0, last = 0;
    std::size_t count = 0;
    const obs::MetricsSnapshot* final_snap = nullptr;
    for (const auto& s : ts.samples) {
      if (s.series != name) continue;
      if (count == 0) first = s.at;
      last = s.at;
      final_snap = &s.metrics;
      ++count;
    }
    std::printf("\nseries %s (%zu samples, %s..%s)\n", name.c_str(), count,
                fmt_us(first).c_str(), fmt_us(last).c_str());
    for (const auto& t : extract_tracks(ts, name, opt.metrics)) {
      double peak = t.value.empty() ? 0 : t.value.front();
      for (double v : t.value) peak = std::max(peak, v);
      // Pad by display width, not bytes (the Δ rate prefix is multi-byte).
      const std::size_t width = t.metric.size() - (t.metric[0] == '\xce' ? 1 : 0);
      std::string label = t.metric;
      if (width < 24) label.append(24 - width, ' ');
      std::printf("  %s %s  last %.0f  peak %.0f\n", label.c_str(),
                  sparkline(t.value).c_str(),
                  t.value.empty() ? 0.0 : t.value.back(), peak);
    }
    if (final_snap != nullptr) print_percentiles(*final_snap, "  ");
  }
  std::printf("\n");
  print_health_events(ts.health_events);
  // The lead series ("aggregate" by sampler construction) carries the
  // cross-shard totals the shed flag should reflect.
  const obs::MetricsSnapshot* lead_final = nullptr;
  if (!series.empty())
    for (const auto& s : ts.samples)
      if (s.series == series.front()) lead_final = &s.metrics;
  if (lead_final != nullptr) print_shed_flag(*lead_final);
}

void report_snapshot(const Doc& doc) {
  const auto& snap = *doc.snapshot;
  std::printf("%s: vsg-metrics-v1%s%s — %zu counters, %zu gauges, %zu histograms\n",
              doc.path.c_str(), doc.label.empty() ? "" : ", label ",
              doc.label.c_str(), snap.counters.size(), snap.gauges.size(),
              snap.histograms.size());
  print_percentiles(snap, "  ");
  print_shed_flag(snap);
}

// --- HTML rendering --------------------------------------------------------

std::string html_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '&')
      out += "&amp;";
    else if (c == '<')
      out += "&lt;";
    else if (c == '>')
      out += "&gt;";
    else
      out += c;
  }
  return out;
}

void html_svg(std::string& out, const Track& t) {
  const int w = 640, h = 80, pad = 4;
  double lo = 0, hi = 1;
  if (!t.value.empty()) {
    lo = hi = t.value.front();
    for (double v : t.value) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi == lo) hi = lo + 1;
  }
  out += "<div class=\"track\"><span class=\"m\">" + html_escape(t.metric) +
         "</span><svg viewBox=\"0 0 " + std::to_string(w) + " " + std::to_string(h) +
         "\" width=\"" + std::to_string(w) + "\" height=\"" + std::to_string(h) +
         "\"><polyline fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.5\" points=\"";
  const std::size_t n = t.value.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        pad + (n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.0) *
                  (w - 2 * pad);
    const double y = h - pad - (t.value[i] - lo) / (hi - lo) * (h - 2 * pad);
    char pt[48];
    std::snprintf(pt, sizeof pt, "%.1f,%.1f ", x, y);
    out += pt;
  }
  char range[96];
  std::snprintf(range, sizeof range, "%.0f..%.0f", lo, hi);
  out += "\"/></svg><span class=\"r\">" + std::string(range) + "</span></div>\n";
}

void html_percentiles(std::string& out, const obs::MetricsSnapshot& snap) {
  bool any = false;
  for (const auto& h : snap.histograms) {
    if (h.count == 0) continue;
    if (!any)
      out += "<table><tr><th>histogram</th><th>unit</th><th>count</th><th>p50</th>"
             "<th>p90</th><th>p99</th><th>max</th></tr>\n";
    any = true;
    out += "<tr><td>" + html_escape(h.name) + "</td><td>" + obs::to_string(h.unit) +
           "</td><td>" + std::to_string(h.count) + "</td><td>" +
           std::to_string(quantile_upper(h, 0.50)) + "</td><td>" +
           std::to_string(quantile_upper(h, 0.90)) + "</td><td>" +
           std::to_string(quantile_upper(h, 0.99)) + "</td><td>" +
           std::to_string(h.max) + "</td></tr>\n";
  }
  out += any ? "</table>\n" : "<p>(no histogram samples)</p>\n";
}

std::string html_report(const std::vector<Doc>& docs, const Options& opt) {
  std::string out =
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
      "<title>vsg report</title>\n<style>\n"
      "body{font:14px/1.5 system-ui,sans-serif;margin:2em;color:#111}\n"
      "h1{font-size:1.3em}h2{font-size:1.1em;border-bottom:1px solid #ddd}\n"
      "h3{font-size:1em;color:#444}\n"
      ".track{display:flex;align-items:center;gap:.75em;margin:.25em 0}\n"
      ".track .m{width:16em;font-family:monospace;font-size:12px}\n"
      ".track .r{color:#666;font-size:12px}\n"
      "table{border-collapse:collapse;margin:.5em 0}\n"
      "td,th{border:1px solid #ccc;padding:.2em .6em;font-size:13px;"
      "text-align:right}\ntd:first-child,th:first-child{text-align:left;"
      "font-family:monospace}\n"
      ".health{background:#fef2f2;border:1px solid #fca5a5;padding:.5em 1em}\n"
      "</style></head><body>\n<h1>vsg report</h1>\n";
  for (const auto& doc : docs) {
    out += "<h2>" + html_escape(doc.path) + "</h2>\n";
    if (doc.timeseries.has_value()) {
      const auto& ts = *doc.timeseries;
      out += "<p>vsg-timeseries-v1 — interval " + fmt_us(ts.interval) + ", " +
             std::to_string(ts.samples.size()) + " samples, " +
             std::to_string(ts.dropped) + " dropped</p>\n";
      for (const auto& name : series_names(ts)) {
        out += "<h3>series " + html_escape(name) + "</h3>\n";
        for (const auto& t : extract_tracks(ts, name, opt.metrics)) html_svg(out, t);
        const obs::MetricsSnapshot* final_snap = nullptr;
        for (const auto& s : ts.samples)
          if (s.series == name) final_snap = &s.metrics;
        if (final_snap != nullptr) html_percentiles(out, *final_snap);
      }
      if (ts.health_events.empty()) {
        out += "<p>health events: none</p>\n";
      } else {
        out += "<div class=\"health\"><b>health events (" +
               std::to_string(ts.health_events.size()) + ")</b><ul>\n";
        for (const auto& e : ts.health_events)
          out += "<li>" + fmt_us(e.at) + " <b>" + html_escape(e.rule) + "</b> [" +
                 html_escape(e.series) + "] " + html_escape(e.detail) + "</li>\n";
        out += "</ul></div>\n";
      }
      const obs::MetricsSnapshot* lead_final = nullptr;
      for (const auto& s : ts.samples)
        if (!ts.samples.empty() && s.series == series_names(ts).front())
          lead_final = &s.metrics;
      if (lead_final != nullptr) {
        const auto* shed = find_counter(*lead_final, "ring.sends_shed");
        if (shed != nullptr && *shed > 0)
          out += "<div class=\"health\"><b>flow control:</b> " + std::to_string(*shed) +
                 " sends SHED at the admission gate (ring.sends_shed &gt; 0, "
                 "docs/FLOWCONTROL.md)</div>\n";
      }
    } else {
      out += "<p>vsg-metrics-v1" +
             (doc.label.empty() ? std::string() : ", label " + html_escape(doc.label)) +
             " — " + std::to_string(doc.snapshot->counters.size()) + " counters, " +
             std::to_string(doc.snapshot->gauges.size()) + " gauges</p>\n";
      html_percentiles(out, *doc.snapshot);
    }
  }
  out += "</body></html>\n";
  return out;
}

// --- modes -----------------------------------------------------------------

int validate(const Options& opt) {
  int bad = 0;
  for (const auto& path : opt.files) {
    const auto doc = load(path);
    if (!doc.has_value()) {
      ++bad;
      continue;
    }
    if (doc->timeseries.has_value()) {
      const auto& ts = *doc->timeseries;
      std::printf("%s: vsg-timeseries-v1 OK (%zu samples, %zu series, %zu health "
                  "events)\n",
                  path.c_str(), ts.samples.size(), series_names(ts).size(),
                  ts.health_events.size());
    } else {
      std::printf("%s: vsg-metrics-v1 OK (%zu counters, %zu gauges, %zu histograms)\n",
                  path.c_str(), doc->snapshot->counters.size(),
                  doc->snapshot->gauges.size(), doc->snapshot->histograms.size());
    }
  }
  return bad == 0 ? 0 : 1;
}

int fingerprint(const Options& opt) {
  int bad = 0;
  for (const auto& path : opt.files) {
    const auto doc = load(path);
    if (!doc.has_value() || !doc->timeseries.has_value()) {
      if (doc.has_value())
        std::fprintf(stderr, "%s: --fingerprint needs a vsg-timeseries-v1 file\n",
                     path.c_str());
      ++bad;
      continue;
    }
    std::printf("%016llx  %s\n",
                static_cast<unsigned long long>(
                    obs::timeseries_fingerprint(*doc->timeseries)),
                path.c_str());
  }
  return bad == 0 ? 0 : 2;
}

/// The write_timeline contract: the final "aggregate" sample must equal the
/// end-of-run registry export, modulo wall exclusions (stripped from both
/// sides) and export-only extras (e.g. a bench CLI's own bench.* gauges).
int check_final(const Options& opt) {
  if (opt.files.size() != 1) {
    std::fprintf(stderr, "--check-final takes exactly one timeline file\n");
    return 2;
  }
  const auto timeline = load(opt.files.front());
  if (!timeline.has_value() || !timeline->timeseries.has_value()) {
    std::fprintf(stderr, "%s: not a vsg-timeseries-v1 file\n", opt.files.front().c_str());
    return 2;
  }
  const auto export_doc = load(opt.check_final);
  if (!export_doc.has_value() || !export_doc->snapshot.has_value()) {
    std::fprintf(stderr, "%s: not a vsg-metrics-v1 file\n", opt.check_final.c_str());
    return 2;
  }
  const obs::MetricsSnapshot exported = obs::strip_wall_metrics(*export_doc->snapshot);
  const obs::MetricsSnapshot* final_sample = nullptr;
  for (const auto& s : timeline->timeseries->samples)
    if (s.series == "aggregate") final_sample = &s.metrics;
  if (final_sample == nullptr) {
    std::fprintf(stderr, "%s: no \"aggregate\" samples\n", opt.files.front().c_str());
    return 1;
  }
  int mismatches = 0;
  for (const auto& [name, v] : final_sample->counters) {
    const auto* e = find_counter(exported, name);
    if (e == nullptr || *e != v) {
      ++mismatches;
      std::printf("counter %s: final sample %llu, export %s\n", name.c_str(),
                  static_cast<unsigned long long>(v),
                  e == nullptr ? "absent" : std::to_string(*e).c_str());
    }
  }
  for (const auto& [name, v] : final_sample->gauges) {
    const auto* e = find_gauge(exported, name);
    if (e == nullptr || *e != v) {
      ++mismatches;
      std::printf("gauge %s: final sample %lld, export %s\n", name.c_str(),
                  static_cast<long long>(v),
                  e == nullptr ? "absent" : std::to_string(*e).c_str());
    }
  }
  for (const auto& h : final_sample->histograms) {
    const auto* e = find_histogram(exported, h.name);
    if (e == nullptr || !(h == *e)) {
      ++mismatches;
      std::printf("histogram %s: final sample %s export\n", h.name.c_str(),
                  e == nullptr ? "absent from" : "differs from");
    }
  }
  if (mismatches > 0) {
    std::printf("FAIL: %d final-sample entr%s disagree with %s\n", mismatches,
                mismatches == 1 ? "y" : "ies", opt.check_final.c_str());
    return 1;
  }
  std::printf("OK: final aggregate sample (%zu counters, %zu gauges, %zu histograms) "
              "matches %s\n",
              final_sample->counters.size(), final_sample->gauges.size(),
              final_sample->histograms.size(), opt.check_final.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: %s [--validate | --fingerprint | --check-final EXPORT.json]\n"
                 "          [--html PATH] [--metric NAME]... FILE...\n",
                 argv[0]);
    return 2;
  }
  if (opt.validate) return validate(opt);
  if (opt.fingerprint) return fingerprint(opt);
  if (!opt.check_final.empty()) return check_final(opt);

  std::vector<Doc> docs;
  for (const auto& path : opt.files) {
    auto doc = load(path);
    if (!doc.has_value()) return 2;
    docs.push_back(std::move(*doc));
  }
  bool first = true;
  for (const auto& doc : docs) {
    if (!first) std::printf("\n");
    first = false;
    if (doc.timeseries.has_value())
      report_timeseries(doc, opt);
    else
      report_snapshot(doc);
  }
  if (!opt.html_out.empty()) {
    std::ofstream out(opt.html_out);
    out << html_report(docs, opt);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.html_out.c_str());
      return 2;
    }
    std::printf("\nHTML report written to %s\n", opt.html_out.c_str());
  }
  return 0;
}
