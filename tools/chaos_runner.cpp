// Chaos campaign runner: seeded random fault schedules against the full
// stack with the VS / TO / forward-simulation trace checkers attached as
// online oracles, plus a post-stabilization recovery oracle. Failures are
// delta-debug shrunk and written out as replayable scenario files.
//
//   $ ./chaos_runner --seeds 200 --smoke            # CI smoke campaign
//   $ ./chaos_runner --seeds 50 --n 5 --export CHAOS.json
//   $ ./chaos_runner --replay tests/scenarios/some_repro.scn
//   $ ./chaos_runner --replay repro.scn --trace-out repro.trace.json
//   $ ./chaos_runner --seeds 20 --inject-unchecked-decode --repro-dir /tmp
//   $ ./chaos_runner --seeds 50 --smoke --timeline-out /tmp/tl   # dir, 1/seed
//   $ ./chaos_runner --replay repro.scn --timeline-out repro_timeline.json
//
// With --repro-dir, each failure produces chaos_seed<S>.scn (minimized
// scenario) and chaos_seed<S>_trace.json (flight recorder of the failing
// run, Perfetto-loadable), indexed by a single repro_manifest.json.
//
// Exit status: 0 when every run (or the replay) is clean, 1 on violations,
// 2 on usage/IO errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "chaos/campaign.hpp"
#include "exec/parallel.hpp"
#include "harness/scenario_parser.hpp"
#include "membership/messages.hpp"
#include "obs/json_exporter.hpp"
#include "obs/stopwatch.hpp"
#include "util/serde.hpp"

using namespace vsg;

namespace {

struct Options {
  int seeds = 50;
  std::uint64_t first_seed = 1;
  int jobs = 1;  // worker threads for per-seed runs; 0 = hardware concurrency
  int n = 4;
  int shards = 1;   // independent VStoTO stacks per World
  int domains = 0;  // correlated failure-domain events per schedule
  harness::Backend backend = harness::Backend::kTokenRing;
  bool smoke = false;
  bool shrink = true;
  bool inject_unchecked_decode = false;
  bool cross_check = false;  // run each seed under wire v2 AND v3, compare
  int wire = 0;              // 0: default; 1..3 pins the campaign frame layout
  // Per-pass boarding budget in bytes (0: unbounded). Pairs with the
  // urgency lanes (docs/FLOWCONTROL.md) so state exchange stays prompt
  // while the campaign squeezes client traffic through a capacity bound.
  std::uint64_t budget = 0;
  double corrupt = 0.25;
  std::string replay_file;
  std::string decode_frame_file;   // decode one canned frame file, report verdict
  std::string emit_golden_dir;     // write the golden frame fixtures and exit
  std::string repro_dir;
  std::string export_path;
  std::string trace_out;  // replay mode: Chrome trace of the replayed run
  // Virtual-time telemetry (docs/OBSERVABILITY.md, "Timelines"): replay
  // mode writes one vsg-timeseries-v1 file; campaign mode treats the value
  // as a directory and writes timeline_seed<S>.json per seed.
  std::string timeline_out;
  bool health_oracle = false;  // health watchdog events fail their seed
  int stall_ms = 0;            // 0: HealthConfig default stall bound
  // Token launch spacing override in ms (0: TokenRingConfig default). The
  // stall-injection knob: pi beyond the watchdog's stall bound makes every
  // inter-launch gap a token_stall episode — the protocol's singleton
  // fallback otherwise keeps rotations moving under any schedule, so a
  // natural durable stall is by construction a liveness bug.
  int pi_ms = 0;
  sim::Time replay_until = 0;  // 0: meta / last op + tail
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.seeds = std::atoi(v);
    } else if (arg == "--first-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.first_seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.jobs = std::atoi(v);
      if (opt.jobs < 0) return false;
    } else if (arg == "--n") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.n = std::atoi(v);
      if (opt.n < 1) return false;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.shards = std::atoi(v);
      if (opt.shards < 1 || opt.shards > harness::kMaxShards) return false;
    } else if (arg == "--domains") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.domains = std::atoi(v);
      if (opt.domains < 0) return false;
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "ring") == 0)
        opt.backend = harness::Backend::kTokenRing;
      else if (std::strcmp(v, "spec") == 0)
        opt.backend = harness::Backend::kSpec;
      else
        return false;
    } else if (arg == "--corrupt") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.corrupt = std::atof(v);
    } else if (arg == "--wire") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.wire = std::atoi(v);
      if (!wire::known_version(static_cast<std::uint8_t>(opt.wire))) return false;
    } else if (arg == "--budget") {
      const char* v = next();
      if (v == nullptr) return false;
      const long long b = std::atoll(v);
      if (b < 1) return false;
      opt.budget = static_cast<std::uint64_t>(b);
    } else if (arg == "--cross-check") {
      opt.cross_check = true;
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--no-shrink") {
      opt.shrink = false;
    } else if (arg == "--inject-unchecked-decode") {
      opt.inject_unchecked_decode = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.replay_file = v;
    } else if (arg == "--decode-frame") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.decode_frame_file = v;
    } else if (arg == "--emit-golden-frames") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.emit_golden_dir = v;
    } else if (arg == "--until") {
      const char* v = next();
      if (v == nullptr) return false;
      const auto t = harness::parse_duration(v);
      if (!t.has_value()) return false;
      opt.replay_until = *t;
    } else if (arg == "--repro-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.repro_dir = v;
    } else if (arg == "--export") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.export_path = v;
    } else if (arg.rfind("--export=", 0) == 0) {
      opt.export_path = arg.substr(9);
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.trace_out = v;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      opt.trace_out = arg.substr(12);
    } else if (arg == "--timeline-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.timeline_out = v;
    } else if (arg.rfind("--timeline-out=", 0) == 0) {
      opt.timeline_out = arg.substr(15);
    } else if (arg == "--health-oracle") {
      opt.health_oracle = true;
    } else if (arg == "--stall-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.stall_ms = std::atoi(v);
      if (opt.stall_ms < 1) return false;
    } else if (arg == "--pi") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.pi_ms = std::atoi(v);
      if (opt.pi_ms < 1) return false;
    } else {
      return false;
    }
  }
  return true;
}

chaos::CampaignConfig campaign_config(const Options& opt) {
  chaos::CampaignConfig cfg;
  cfg.schedule.n = opt.n;
  cfg.schedule.failure_domains = opt.domains;
  cfg.shards = opt.shards;
  cfg.backend = opt.backend;
  cfg.link.ugly_corrupt = opt.corrupt;
  cfg.first_seed = opt.first_seed;
  cfg.seeds = opt.seeds;
  cfg.jobs = opt.jobs;
  cfg.shrink = opt.shrink;
  if (opt.wire != 0) cfg.ring.wire = static_cast<membership::WireFormat>(opt.wire);
  if (opt.pi_ms > 0) cfg.ring.pi = sim::msec(opt.pi_ms);
  if (opt.budget > 0) {
    // Budgeted campaigns always run with lanes: under a capacity bound the
    // state exchange must preempt queued bulk or view recovery inherits the
    // whole backlog's drain time (docs/FLOWCONTROL.md).
    cfg.ring.board_budget_bytes = static_cast<std::size_t>(opt.budget);
    cfg.ring.lanes = true;
  }
  // --health-oracle implies sampling (the watchdogs evaluate samples).
  if (!opt.timeline_out.empty() || opt.health_oracle) cfg.sampler.enabled = true;
  if (opt.stall_ms > 0) cfg.sampler.health.stall_after = sim::msec(opt.stall_ms);
  cfg.health_oracle = opt.health_oracle;
  if (opt.smoke) {
    // CI preset: shorter chaos window and tail, fewer ops per seed, so 200
    // seeds finish in seconds while still covering every op kind.
    cfg.schedule.horizon = sim::sec(3);
    cfg.schedule.quiescence = sim::sec(8);
    cfg.schedule.partition_rounds = 2;
    cfg.schedule.proc_flips = 2;
    cfg.schedule.link_flips = 4;
    cfg.schedule.traffic = 8;
    cfg.schedule.burst_size = 3;
    cfg.schedule.post_heal_traffic = 1;
  }
  return cfg;
}

int replay(const Options& opt) {
  std::ifstream in(opt.replay_file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.replay_file.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = harness::parse_scenario(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "scenario error in %s: %s\n", opt.replay_file.c_str(),
                 parsed.error.c_str());
    return 2;
  }
  // CLI flags override file metadata; metadata overrides defaults.
  const int n = parsed.meta.n.value_or(opt.n);
  const std::uint64_t seed = parsed.meta.seed.value_or(opt.first_seed);
  sim::Time until = opt.replay_until;
  if (until == 0) until = parsed.meta.until.value_or(parsed.scenario->last_time() + sim::sec(12));

  chaos::CampaignConfig cfg = campaign_config(opt);
  if (parsed.meta.shards.has_value()) {
    if (*parsed.meta.shards < 1 || *parsed.meta.shards > harness::kMaxShards) {
      std::fprintf(stderr,
                   "%s pins shards %d, but this build supports 1..%d shards "
                   "(docs/SHARDING.md) — refusing to replay under a different topology\n",
                   opt.replay_file.c_str(), *parsed.meta.shards, harness::kMaxShards);
      return 2;
    }
    cfg.shards = *parsed.meta.shards;
    if (cfg.shards > 1 && cfg.backend == harness::Backend::kSpec) {
      std::fprintf(stderr, "%s pins shards %d, which requires the ring backend\n",
                   opt.replay_file.c_str(), cfg.shards);
      return 2;
    }
  }
  if (parsed.meta.wire.has_value()) {
    if (!wire::known_version(static_cast<std::uint8_t>(*parsed.meta.wire))) {
      std::fprintf(stderr,
                   "%s pins wire v%d, but this build speaks v1, v2 and v3 (docs/WIRE.md)\n",
                   opt.replay_file.c_str(), *parsed.meta.wire);
      return 2;
    }
    cfg.ring.wire = static_cast<membership::WireFormat>(*parsed.meta.wire);
  }
  if (parsed.meta.budget.has_value()) {
    // Same pairing as --budget: a repro minimized under a capacity bound
    // replays with the bound and the lanes that came with it.
    cfg.ring.board_budget_bytes = static_cast<std::size_t>(*parsed.meta.budget);
    cfg.ring.lanes = true;
  }
  // Hand-written scenarios may not deliver every bcast everywhere (e.g. a
  // final partition); only order agreement is enforced on replay.
  const bool trace = !opt.trace_out.empty();
  const auto result = chaos::run_one(cfg, *parsed.scenario, n, seed, until, -1, trace);
  std::printf("replay %s: n=%d seed=%llu until=%s — %s\n", opt.replay_file.c_str(), n,
              static_cast<unsigned long long>(seed),
              harness::format_duration(until).c_str(),
              result.ok() ? "clean" : "VIOLATIONS");
  for (const auto& v : result.violations) std::printf("  %s\n", v.c_str());
  if (cfg.sampler.enabled) {
    // Under --health-oracle these already printed as violations above.
    if (!cfg.health_oracle)
      for (const auto& e : result.health_events)
        std::printf("  %s\n", obs::to_verdict(e).c_str());
    if (!opt.timeline_out.empty()) {
      std::ofstream out(opt.timeline_out);
      out << obs::write_timeseries(result.timeline);
      if (out)
        std::printf("timeline written to %s (%zu samples, %zu health events)\n",
                    opt.timeline_out.c_str(), result.timeline.samples.size(),
                    result.timeline.health_events.size());
      else {
        std::fprintf(stderr, "cannot write %s\n", opt.timeline_out.c_str());
        return 2;
      }
    }
  }
  if (trace) {
    std::ofstream out(opt.trace_out);
    out << result.flight_recorder;
    if (out)
      std::printf("trace written to %s (load in https://ui.perfetto.dev)\n",
                  opt.trace_out.c_str());
    else {
      std::fprintf(stderr, "cannot write %s\n", opt.trace_out.c_str());
      return 2;
    }
  }
  return result.ok() ? 0 : 1;
}

// The packet frozen into the golden frame fixtures (tests/wire/). check.sh
// re-decodes the committed files on every run, so a layout change that can
// no longer read old bytes fails the gate instead of shipping. Regenerate
// (with --emit-golden-frames tests/wire) only when adding a version: the
// existing files must keep decoding to this exact packet forever.
membership::Packet golden_packet() {
  membership::Token t;
  t.gid = core::ViewId{6, 1};
  t.lap = 11;
  t.base = 3;
  t.entries = {{0, util::Bytes{1, 2, 3}},
               {0, util::Bytes{4}},
               {2, util::Bytes{}},
               {1, util::Bytes{5, 6}}};
  t.delivered = {{0, 5}, {1, 4}, {2, 6}};
  return membership::Packet{t};
}

bool write_binary(const std::string& path, const util::Bytes& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return true;
}

int emit_golden_frames(const Options& opt) {
  const membership::Packet pkt = golden_packet();
  for (int v = 1; v <= 3; ++v) {
    const auto buf =
        membership::encode_packet(pkt, static_cast<membership::WireFormat>(v));
    if (!write_binary(opt.emit_golden_dir + "/golden_v" + std::to_string(v) + ".frame",
                      buf.to_bytes()))
      return 2;
  }
  // A structurally valid frame whose version byte is one past the newest
  // known version: decoders must refuse it outright, never guess a layout.
  auto unknown = membership::encode_packet(pkt, membership::WireFormat::kV3).to_bytes();
  unknown[0] = 4;
  if (!write_binary(opt.emit_golden_dir + "/unknown_version.frame", unknown)) return 2;
  return 0;
}

int decode_frame(const Options& opt) {
  std::ifstream in(opt.decode_frame_file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.decode_frame_file.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string& s = buf.str();
  util::Bytes bytes(s.begin(), s.end());
  const std::uint8_t version = bytes.empty() ? 0 : bytes[0];
  const auto out = membership::decode_packet_ex(util::Buffer{std::move(bytes)});
  if (!out.ok()) {
    std::printf("%s: refused — %s\n", opt.decode_frame_file.c_str(), out.error.c_str());
    return 1;
  }
  std::printf("%s: v%u frame, packet tag %zu — decodes clean\n",
              opt.decode_frame_file.c_str(), version, out.packet->index());
  return 0;
}

// Wire cross-check: every seed's schedule runs twice — once under wire v2
// (whole-summary state exchange) and once under wire v3 (digest/delta) —
// and the two shadow runs must agree on every oracle verdict and on the
// delivered (origin, value) sequence at every processor. This is the
// equivalence claim behind the v3 exchange: the compact protocol changes
// how knowledge moves, never what gets delivered.
int cross_check(const Options& opt) {
  chaos::CampaignConfig base = campaign_config(opt);
  std::printf("wire cross-check: %d seeds from %llu, n=%d, v2 (full summary) vs v3 "
              "(digest/delta)%s\n",
              base.seeds, static_cast<unsigned long long>(base.first_seed),
              base.schedule.n, opt.smoke ? " (smoke preset)" : "");

  chaos::CampaignConfig full = base;
  full.ring.wire = membership::WireFormat::kV2;
  chaos::CampaignConfig delta = base;
  delta.ring.wire = membership::WireFormat::kV3;

  // Both shadow runs of every seed are independent Worlds; fan them out
  // like the campaign does and report serially in seed order.
  std::vector<chaos::RunResult> v2_runs(static_cast<std::size_t>(base.seeds));
  std::vector<chaos::RunResult> v3_runs(static_cast<std::size_t>(base.seeds));
  const bool inject = util::unchecked_decode();  // thread_local: re-assert per worker
  exec::run_parallel(opt.jobs, v2_runs.size(), [&](std::size_t i) {
    util::set_unchecked_decode_for_test(inject);
    const std::uint64_t seed = base.first_seed + static_cast<std::uint64_t>(i);
    const chaos::GeneratedSchedule schedule = chaos::generate_schedule(base.schedule, seed);
    v2_runs[i] = chaos::run_one(full, schedule.scenario, base.schedule.n, seed,
                                schedule.run_until, schedule.bcasts);
    v3_runs[i] = chaos::run_one(delta, schedule.scenario, base.schedule.n, seed,
                                schedule.run_until, schedule.bcasts);
  });

  int mismatches = 0;
  int dirty = 0;
  for (int i = 0; i < base.seeds; ++i) {
    const std::uint64_t seed = base.first_seed + static_cast<std::uint64_t>(i);
    const auto& v2 = v2_runs[static_cast<std::size_t>(i)];
    const auto& v3 = v3_runs[static_cast<std::size_t>(i)];
    if (!v2.ok() || !v3.ok()) {
      ++dirty;
      std::printf("seed %llu: violations under %s\n",
                  static_cast<unsigned long long>(seed),
                  !v2.ok() && !v3.ok() ? "both wires" : (!v2.ok() ? "v2" : "v3"));
      for (const auto& v : v2.violations) std::printf("  [v2] %s\n", v.c_str());
      for (const auto& v : v3.violations) std::printf("  [v3] %s\n", v.c_str());
    }
    if (v2.violations != v3.violations) {
      ++mismatches;
      std::printf("seed %llu MISMATCH: oracle verdicts differ (%zu under v2, %zu under v3)\n",
                  static_cast<unsigned long long>(seed), v2.violations.size(),
                  v3.violations.size());
    }
    if (v2.delivery_fingerprint != v3.delivery_fingerprint ||
        v2.delivered_total != v3.delivered_total) {
      ++mismatches;
      std::printf("seed %llu MISMATCH: deliveries diverge (v2 %llu values fp=%016llx, "
                  "v3 %llu values fp=%016llx)\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(v2.delivered_total),
                  static_cast<unsigned long long>(v2.delivery_fingerprint),
                  static_cast<unsigned long long>(v3.delivered_total),
                  static_cast<unsigned long long>(v3.delivery_fingerprint));
    }
  }
  std::printf("%d/%d seeds agree across wires (%d with violations under some wire)\n",
              base.seeds - mismatches, base.seeds, dirty);
  if (mismatches > 0) return 1;
  return dirty > 0 ? 1 : 0;
}

int campaign(const Options& opt) {
  chaos::CampaignConfig cfg = campaign_config(opt);
  cfg.metrics = std::make_shared<obs::MetricsRegistry>();
  const int jobs =
      exec::effective_jobs(cfg.jobs, static_cast<std::size_t>(cfg.seeds > 0 ? cfg.seeds : 0));
  const std::string shards_note =
      cfg.shards > 1 ? ", shards=" + std::to_string(cfg.shards) : "";
  std::printf("chaos campaign: %d seeds from %llu, n=%d%s, backend=%s, jobs=%d%s%s\n",
              cfg.seeds, static_cast<unsigned long long>(cfg.first_seed), cfg.schedule.n,
              shards_note.c_str(),
              cfg.backend == harness::Backend::kSpec ? "spec" : "ring", jobs,
              opt.smoke ? " (smoke preset)" : "",
              opt.inject_unchecked_decode ? " [FAULT INJECTED: unchecked decode]" : "");

  const std::int64_t wall_start = obs::wall_now_us();
  const auto result = chaos::run_campaign(cfg);
  const std::int64_t wall_us = obs::wall_now_us() - wall_start;
  // Runner-side evidence gauges: wall time and jobs are properties of this
  // invocation, not of the (jobs-invariant) campaign itself, so they are
  // recorded here rather than inside run_campaign.
  cfg.metrics->gauge("chaos.campaign.wall_us").set(wall_us);
  cfg.metrics->gauge("chaos.campaign.jobs").set(jobs);

  if (!opt.timeline_out.empty()) {
    std::size_t health_seeds = 0;
    for (std::size_t i = 0; i < result.seed_timelines.size(); ++i) {
      const std::uint64_t seed = cfg.first_seed + static_cast<std::uint64_t>(i);
      const std::string path =
          opt.timeline_out + "/timeline_seed" + std::to_string(seed) + ".json";
      std::ofstream out(path);
      out << obs::write_timeseries(result.seed_timelines[i]);
      if (!out) {
        std::fprintf(stderr, "cannot write %s (does the directory exist?)\n",
                     path.c_str());
        return 2;
      }
      if (!result.seed_timelines[i].health_events.empty()) ++health_seeds;
    }
    std::printf("%zu timelines written to %s/ (%zu seed%s with health events)\n",
                result.seed_timelines.size(), opt.timeline_out.c_str(), health_seeds,
                health_seeds == 1 ? "" : "s");
  }

  std::vector<chaos::ManifestEntry> manifest;
  for (const auto& f : result.failures) {
    std::printf("seed %llu FAILED (%zu violation%s), shrunk %zu -> %zu ops (n=%d, %d "
                "candidates)\n",
                static_cast<unsigned long long>(f.seed), f.violations.size(),
                f.violations.size() == 1 ? "" : "s", f.schedule.scenario.ops.size(),
                f.minimal.scenario.ops.size(), f.minimal.n, f.minimal.candidates);
    for (const auto& v : f.violations) std::printf("  %s\n", v.c_str());
    if (!opt.repro_dir.empty()) {
      chaos::ManifestEntry entry;
      entry.seed = f.seed;
      entry.violations = f.violations;
      const std::string base = "chaos_seed" + std::to_string(f.seed);
      const std::string path = opt.repro_dir + "/" + base + ".scn";
      std::ofstream out(path);
      out << chaos::repro_text(f);
      if (out) {
        entry.scenario_path = base + ".scn";
        std::printf("  repro written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "  cannot write %s (does the directory exist?)\n",
                     path.c_str());
      }
      if (!f.flight_recorder.empty()) {
        const std::string trace_path = opt.repro_dir + "/" + base + "_trace.json";
        std::ofstream tout(trace_path);
        tout << f.flight_recorder;
        if (tout) {
          entry.flight_recorder_path = base + "_trace.json";
          std::printf("  flight recorder written to %s\n", trace_path.c_str());
        } else {
          std::fprintf(stderr, "  cannot write %s\n", trace_path.c_str());
        }
      }
      // The failing seed's timeline lives next to the trace so the manifest
      // indexes a complete artifact set regardless of --timeline-out.
      const std::size_t idx = static_cast<std::size_t>(f.seed - cfg.first_seed);
      if (cfg.sampler.enabled && idx < result.seed_timelines.size()) {
        const std::string tl_path = opt.repro_dir + "/" + base + "_timeline.json";
        std::ofstream tl(tl_path);
        tl << obs::write_timeseries(result.seed_timelines[idx]);
        if (tl) {
          entry.timeline_path = base + "_timeline.json";
          std::printf("  timeline written to %s\n", tl_path.c_str());
        } else {
          std::fprintf(stderr, "  cannot write %s\n", tl_path.c_str());
        }
      }
      entry.health_verdicts = f.health_verdicts;
      manifest.push_back(std::move(entry));
    }
  }

  if (!opt.repro_dir.empty() && !manifest.empty()) {
    const std::string manifest_path = opt.repro_dir + "/repro_manifest.json";
    std::ofstream out(manifest_path);
    out << chaos::repro_manifest_json(manifest, opt.export_path);
    if (out)
      std::printf("manifest written to %s\n", manifest_path.c_str());
    else
      std::fprintf(stderr, "cannot write %s\n", manifest_path.c_str());
  }

  if (!opt.export_path.empty() &&
      !obs::JsonExporter::write_file(*cfg.metrics, opt.export_path, "chaos_campaign"))
    std::fprintf(stderr, "cannot write %s\n", opt.export_path.c_str());

  // The fingerprint folds every seed's (verdicts, delivery fingerprint,
  // delivery total) in seed order: two invocations over the same seed range
  // must print the same value no matter how many jobs ran (docs/CHAOS.md,
  // "Parallel execution" — check.sh compares a --jobs 1 and a --jobs 4 run).
  std::printf("campaign fingerprint %016llx (%d jobs, %.2fs wall)\n",
              static_cast<unsigned long long>(result.campaign_fingerprint), jobs,
              static_cast<double>(wall_us) / 1e6);
  std::printf("%d/%d runs clean (%llu ops scheduled)\n",
              result.runs - static_cast<int>(result.failures.size()), result.runs,
              static_cast<unsigned long long>(result.ops));
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: %s [--seeds N] [--first-seed S] [--n N] [--jobs N]\n"
                 "          [--shards K] [--domains N] [--backend ring|spec]\n"
                 "          [--corrupt P] [--wire 1|2|3] [--budget BYTES] [--cross-check]\n"
                 "          [--smoke]\n"
                 "          [--no-shrink] [--repro-dir DIR] [--export PATH]\n"
                 "          [--timeline-out PATH] [--health-oracle] [--stall-ms N] "
                 "[--pi MS]\n"
                 "          [--inject-unchecked-decode]\n"
                 "          [--replay FILE [--until T] [--trace-out PATH]]\n"
                 "          [--decode-frame FILE] [--emit-golden-frames DIR]\n",
                 argv[0]);
    return 2;
  }
  if (opt.shards > 1 && opt.backend == harness::Backend::kSpec) {
    std::fprintf(stderr, "--shards %d requires the ring backend (the spec backend models "
                         "one group-communication instance)\n", opt.shards);
    return 2;
  }
  if (opt.inject_unchecked_decode) util::set_unchecked_decode_for_test(true);
  if (!opt.emit_golden_dir.empty()) return emit_golden_frames(opt);
  if (!opt.decode_frame_file.empty()) return decode_frame(opt);
  if (!opt.replay_file.empty()) return replay(opt);
  return opt.cross_check ? cross_check(opt) : campaign(opt);
}
