// Chaos subsystem: schedule generator, shrinker, campaign, and the
// acceptance demo — re-enable the historical unchecked-decode bug behind
// its flag, let the campaign's oracles catch it, and shrink the failure to
// a small replayable scenario file.

#include <gtest/gtest.h>

#include "chaos/campaign.hpp"
#include "chaos/schedule_gen.hpp"
#include "chaos/shrink.hpp"
#include "harness/scenario_parser.hpp"
#include "harness/world.hpp"
#include "obs/json_util.hpp"
#include "obs/trace_export.hpp"
#include "util/serde.hpp"

namespace vsg::chaos {
namespace {

ScheduleConfig small_schedule() {
  ScheduleConfig cfg;
  cfg.n = 4;
  cfg.horizon = sim::sec(3);
  cfg.quiescence = sim::sec(8);
  cfg.partition_rounds = 2;
  cfg.proc_flips = 2;
  cfg.link_flips = 4;
  cfg.traffic = 8;
  cfg.burst_size = 3;
  cfg.post_heal_traffic = 1;
  return cfg;
}

// --- Generator ------------------------------------------------------------

TEST(ScheduleGen, DeterministicInSeed) {
  const auto cfg = small_schedule();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto a = generate_schedule(cfg, seed);
    const auto b = generate_schedule(cfg, seed);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.run_until, b.run_until);
    EXPECT_EQ(a.bcasts, b.bcasts);
  }
  EXPECT_NE(generate_schedule(cfg, 1).scenario, generate_schedule(cfg, 2).scenario);
}

TEST(ScheduleGen, SchedulesAreValidSortedAndComplete) {
  const auto cfg = small_schedule();
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto g = generate_schedule(cfg, seed);
    EXPECT_EQ(g.run_until, cfg.horizon + cfg.quiescence);

    int bcasts = 0;
    sim::Time prev = 0;
    for (const auto& timed : g.scenario.ops) {
      EXPECT_GE(timed.at, prev) << "seed " << seed << " not sorted";
      prev = timed.at;
      if (const auto* part = std::get_if<harness::OpPartition>(&timed.op)) {
        EXPECT_NO_THROW(harness::World::validate_partition(cfg.n, part->components));
      }
      if (std::get_if<harness::OpBcast>(&timed.op) != nullptr) ++bcasts;
    }
    EXPECT_EQ(bcasts, g.bcasts);

    // Applies cleanly: every op passes World's strict validation.
    harness::WorldConfig wc;
    wc.n = cfg.n;
    harness::World world(wc);
    EXPECT_NO_THROW(g.scenario.apply(world)) << "seed " << seed;
  }
}

TEST(ScheduleGen, EndsWithStabilization) {
  const auto cfg = small_schedule();
  const auto g = generate_schedule(cfg, 3);
  bool heal_at_horizon = false;
  int good_at_horizon = 0;
  for (const auto& timed : g.scenario.ops) {
    if (timed.at != cfg.horizon) continue;
    if (std::get_if<harness::OpHeal>(&timed.op) != nullptr) heal_at_horizon = true;
    if (const auto* ps = std::get_if<harness::OpProcStatus>(&timed.op))
      if (ps->status == sim::Status::kGood) ++good_at_horizon;
  }
  EXPECT_TRUE(heal_at_horizon);
  EXPECT_GE(good_at_horizon, cfg.n);
}

// --- Shrinker (synthetic predicates: no simulation involved) --------------

int count_type(const harness::Scenario& s, const char* which) {
  int c = 0;
  for (const auto& t : s.ops) {
    if (which[0] == 'b' && std::get_if<harness::OpBcast>(&t.op) != nullptr) ++c;
    if (which[0] == 'h' && std::get_if<harness::OpHeal>(&t.op) != nullptr) ++c;
  }
  return c;
}

TEST(Shrink, DdminFindsTheTwoRelevantOps) {
  // 40 ops of noise around one bcast("needle") and one heal; the "failure"
  // needs both. ddmin must get down to exactly those two.
  harness::Scenario s;
  for (int i = 0; i < 20; ++i) s.add(sim::msec(10 * i), harness::OpBcast{0, "noise"});
  s.add(sim::msec(200), harness::OpBcast{1, "needle"});
  for (int i = 0; i < 19; ++i)
    s.add(sim::msec(210 + 10 * i), harness::OpProcStatus{0, sim::Status::kGood});
  s.add(sim::msec(400), harness::OpHeal{});

  auto fails = [](const harness::Scenario& c, int) {
    bool needle = false;
    for (const auto& t : c.ops)
      if (const auto* b = std::get_if<harness::OpBcast>(&t.op))
        if (b->a == "needle") needle = true;
    return needle && count_type(c, "heal") >= 1;
  };
  const auto out = shrink_schedule(s, 4, fails, {});
  ASSERT_EQ(out.scenario.ops.size(), 2u);
  EXPECT_TRUE(fails(out.scenario, out.n));
  EXPECT_GT(out.reductions, 0);
}

TEST(Shrink, UniverseShrinksWhenHighProcessorsIrrelevant) {
  harness::Scenario s;
  s.add(0, harness::OpBcast{0, "x"});
  s.add(sim::msec(1), harness::OpBcast{5, "high"});
  s.add(sim::msec(2), harness::OpPartition{{{0, 1, 2}, {3, 4, 5}}});
  auto fails = [](const harness::Scenario& c, int) {
    for (const auto& t : c.ops)
      if (const auto* b = std::get_if<harness::OpBcast>(&t.op))
        if (b->p == 0) return true;
    return false;
  };
  const auto out = shrink_schedule(s, 6, fails, {});
  EXPECT_EQ(out.n, 2);  // floor of the universe axis
  EXPECT_EQ(out.scenario.ops.size(), 1u);
  // Any surviving partition would have been restricted to [0, n).
  for (const auto& t : out.scenario.ops)
    if (const auto* part = std::get_if<harness::OpPartition>(&t.op))
      for (const auto& comp : part->components)
        for (ProcId p : comp) {
          EXPECT_LT(p, out.n);
        }
}

TEST(Shrink, TimesCompressTowardZero) {
  harness::Scenario s;
  s.add(sim::sec(4), harness::OpBcast{0, "x"});
  s.add(sim::sec(9), harness::OpHeal{});
  auto fails = [](const harness::Scenario& c, int) { return !c.ops.empty(); };
  const auto out = shrink_schedule(s, 2, fails, {});
  ASSERT_EQ(out.scenario.ops.size(), 1u);
  EXPECT_EQ(out.scenario.ops[0].at, 0);
}

TEST(Shrink, RespectsCandidateBudget) {
  harness::Scenario s;
  for (int i = 0; i < 50; ++i) s.add(sim::msec(i), harness::OpBcast{0, "x"});
  int calls = 0;
  auto fails = [&calls](const harness::Scenario&, int) {
    ++calls;
    return true;
  };
  ShrinkOptions opts;
  opts.max_candidates = 10;
  (void)shrink_schedule(s, 2, fails, opts);
  EXPECT_LE(calls, 10);
}

TEST(Shrink, EchoesInputWhenPredicateNeverFails) {
  harness::Scenario s;
  s.add(sim::msec(5), harness::OpBcast{0, "x"});
  auto never = [](const harness::Scenario&, int) { return false; };
  const auto out = shrink_schedule(s, 3, never, {});
  EXPECT_EQ(out.scenario, s);
  EXPECT_EQ(out.n, 3);
  EXPECT_EQ(out.reductions, 0);
}

// --- Campaign -------------------------------------------------------------

TEST(Campaign, SmokeSeedsRunCleanOnRing) {
  CampaignConfig cfg;
  cfg.schedule = small_schedule();
  cfg.seeds = 4;
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  cfg.metrics = metrics;
  const auto result = run_campaign(cfg);
  EXPECT_EQ(result.runs, 4);
  for (const auto& f : result.failures) {
    ADD_FAILURE() << "seed " << f.seed << " violated:";
    for (const auto& v : f.violations) ADD_FAILURE() << "  " << v;
  }
  EXPECT_EQ(metrics->counter("chaos.runs").value(), 4u);
  EXPECT_GT(metrics->counter("chaos.ops.bcast").value(), 0u);
}

TEST(Campaign, SpecBackendRunsAllThreeOracles) {
  CampaignConfig cfg;
  cfg.schedule = small_schedule();
  cfg.schedule.n = 3;
  cfg.backend = harness::Backend::kSpec;
  cfg.seeds = 2;
  const auto result = run_campaign(cfg);
  EXPECT_TRUE(result.ok()) << (result.failures.empty()
                                   ? ""
                                   : result.failures[0].violations[0]);
}

// --- Parallel executor: --jobs N must change nothing but the wall clock ---

TEST(Campaign, ParallelJobsAreBitIdenticalToSequential) {
  CampaignConfig base;
  base.schedule = small_schedule();
  base.seeds = 12;

  CampaignConfig seq = base;
  seq.jobs = 1;
  auto seq_metrics = std::make_shared<obs::MetricsRegistry>();
  seq.metrics = seq_metrics;
  const auto r1 = run_campaign(seq);

  CampaignConfig par = base;
  par.jobs = 4;
  auto par_metrics = std::make_shared<obs::MetricsRegistry>();
  par.metrics = par_metrics;
  const auto r4 = run_campaign(par);

  // Verdicts, per-seed delivery fingerprints, and the seed-order fold.
  ASSERT_EQ(r1.seed_results.size(), 12u);
  EXPECT_EQ(r1.seed_results, r4.seed_results);
  EXPECT_EQ(r1.campaign_fingerprint, r4.campaign_fingerprint);
  EXPECT_EQ(r1.runs, r4.runs);
  EXPECT_EQ(r1.ops, r4.ops);
  ASSERT_EQ(r1.failures.size(), r4.failures.size());

  // The campaign registry — chaos.* counters plus the merged per-World
  // protocol counters — is bit-identical too (Worlds record no wall-clock
  // series; everything merged is a deterministic function of the seeds).
  EXPECT_EQ(seq_metrics->snapshot(), par_metrics->snapshot());
  EXPECT_GT(seq_metrics->counter("net.packets_sent").value(), 0u)
      << "per-World protocol counters were not merged into the campaign registry";
}

TEST(Campaign, AdmissionGateCampaignIsJobsInvariant) {
  // Flow control under chaos (docs/FLOWCONTROL.md): a campaign with a
  // per-pass boarding budget, urgency lanes AND the defer-policy admission
  // gate armed is still a deterministic function of the seeds — the gate
  // and the drain hook live entirely inside the simulated World.
  CampaignConfig base;
  base.schedule = small_schedule();
  base.seeds = 8;
  base.ring.board_budget_bytes = 64;
  base.ring.lanes = true;
  base.ring.admission_max_backlog = 8;

  CampaignConfig seq = base;
  seq.jobs = 1;
  auto seq_metrics = std::make_shared<obs::MetricsRegistry>();
  seq.metrics = seq_metrics;
  const auto r1 = run_campaign(seq);

  CampaignConfig par = base;
  par.jobs = 4;
  auto par_metrics = std::make_shared<obs::MetricsRegistry>();
  par.metrics = par_metrics;
  const auto r4 = run_campaign(par);

  ASSERT_EQ(r1.seed_results.size(), 8u);
  EXPECT_EQ(r1.seed_results, r4.seed_results);
  EXPECT_EQ(r1.campaign_fingerprint, r4.campaign_fingerprint);
  EXPECT_EQ(seq_metrics->snapshot(), par_metrics->snapshot());
}

TEST(Campaign, BudgetIsPinnedInReproText) {
  Failure f;
  f.seed = 5;
  f.budget = 128;
  f.minimal.n = 3;
  f.schedule.run_until = sim::sec(5);
  f.minimal.scenario.add(sim::sec(1), harness::OpHeal{});
  const std::string text = repro_text(f);
  EXPECT_NE(text.find("config budget 128"), std::string::npos);
  const auto parsed = harness::parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.meta.budget, 128u);

  // No budget, no pin — default repros stay byte-identical to PR 9's.
  f.budget = 0;
  EXPECT_EQ(repro_text(f).find("config budget"), std::string::npos);
}

TEST(Campaign, ParallelJobsReproduceFailuresIdentically) {
  // Same equivalence, through the failure path: the injected decode bug
  // fires on worker threads (the thread_local flag is re-asserted per
  // task), and shrinking stays serialized in seed order, so --jobs N
  // produces byte-identical minimized repros.
  util::UncheckedDecodeGuard inject;

  CampaignConfig base;
  base.schedule = small_schedule();
  base.first_seed = 133;  // covers seed 138, the known v3-layout hit
  base.seeds = 10;
  base.shrink_options.max_candidates = 150;

  CampaignConfig seq = base;
  seq.jobs = 1;
  const auto r1 = run_campaign(seq);
  CampaignConfig par = base;
  par.jobs = 4;
  const auto r4 = run_campaign(par);

  ASSERT_FALSE(r1.ok());
  ASSERT_EQ(r1.failures.size(), r4.failures.size());
  EXPECT_EQ(r1.campaign_fingerprint, r4.campaign_fingerprint);
  for (std::size_t i = 0; i < r1.failures.size(); ++i) {
    EXPECT_EQ(r1.failures[i].seed, r4.failures[i].seed);
    EXPECT_EQ(r1.failures[i].violations, r4.failures[i].violations);
    EXPECT_EQ(r1.failures[i].minimal.scenario, r4.failures[i].minimal.scenario);
    EXPECT_EQ(repro_text(r1.failures[i]), repro_text(r4.failures[i]));
  }
}

// --- Regressions found by the campaign ------------------------------------

// Seed 248 (full preset): processor 1 crashed between initiating a view
// proposal and its 2*delta deadline; the deadline handler takes no step on a
// bad processor, so `proposing_` stayed set forever and blocked every future
// proposal — 1 stayed split from the group despite 12s of healed network.
// Fixed in membership.cpp (maybe_propose expires dead proposals). Mirrors
// tests/scenarios/chaos_seed248_stuck_proposal.scn, embedded here so the
// test is path-independent.
TEST(Campaign, Regression_Seed248_StuckProposalAfterCrash) {
  const char* text =
      "config n 4\n"
      "config seed 248\n"
      "config until 17s\n"
      "at 340ms proc 1 ugly\n"
      "at 694ms link 0 1 ugly\n"
      "at 1360ms partition 0,1,2,3\n"
      "at 1667ms link 2 3 bad\n"
      "at 3103ms proc 2 bad\n"
      "at 3273ms link 0 1 bad\n"
      "at 3372ms link 0 3 ugly\n"
      "at 3372ms bcast 0 c0.1\n"
      "at 3797ms heal\n"
      "at 4118ms proc 2 good\n"
      "at 4335ms proc 1 bad\n"
      "at 5s proc 0 good\n"
      "at 5s proc 1 good\n"
      "at 5s proc 2 good\n"
      "at 5s proc 3 good\n"
      "at 5s heal\n";
  const auto parsed = harness::parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  CampaignConfig cfg;  // default link model: ugly_corrupt = 0.25, as found
  const auto result = run_one(cfg, *parsed.scenario, *parsed.meta.n, *parsed.meta.seed,
                              *parsed.meta.until, 1);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? "" : result.violations[0]);
}

// --- Repro manifest --------------------------------------------------------

TEST(Manifest, ReproManifestJsonListsArtifacts) {
  ManifestEntry e;
  e.seed = 75;
  e.violations = {"to: bad \"order\"", "recovery: diverged"};
  e.scenario_path = "chaos_seed75.scn";
  e.flight_recorder_path = "chaos_seed75_trace.json";
  e.timeline_path = "chaos_seed75_timeline.json";
  e.health_verdicts = {"health: token_stall [aggregate] at 900000us: flat"};
  const std::string json = repro_manifest_json({e}, "CHAOS.json");
  EXPECT_NE(json.find("to: bad \\\"order\\\""), std::string::npos)
      << "violation text must be JSON-escaped";

  // Parse the document back — substring checks alone would not notice
  // structural breakage like mis-quoted strings.
  obs::json::Reader r(json);
  std::string schema, metrics_export;
  std::int64_t failure_count = -1;
  std::vector<std::string> seen_violations, seen_health;
  std::string scenario, recorder, timeline;
  std::int64_t seed = -1;
  r.object([&](const std::string& key) {
    if (key == "schema") {
      schema = r.string();
    } else if (key == "metrics_export") {
      metrics_export = r.string();
    } else if (key == "failure_count") {
      failure_count = r.integer();
    } else if (key == "failures") {
      r.array([&] {
        r.object([&](const std::string& fk) {
          if (fk == "seed") {
            seed = r.integer();
          } else if (fk == "violations") {
            r.array([&] { seen_violations.push_back(r.string()); });
          } else if (fk == "scenario") {
            scenario = r.string();
          } else if (fk == "flight_recorder") {
            recorder = r.string();
          } else if (fk == "timeline") {
            timeline = r.string();
          } else if (fk == "health_events") {
            r.array([&] { seen_health.push_back(r.string()); });
          } else {
            r.skip_value();
          }
        });
      });
    } else {
      r.skip_value();
    }
  });
  ASSERT_TRUE(r.ok() && r.at_end()) << json;
  EXPECT_EQ(schema, "vsg-repro-manifest-v2");
  EXPECT_EQ(metrics_export, "CHAOS.json");
  EXPECT_EQ(seed, 75);
  EXPECT_EQ(seen_violations, e.violations);
  EXPECT_EQ(scenario, "chaos_seed75.scn");
  EXPECT_EQ(recorder, "chaos_seed75_trace.json");
  EXPECT_EQ(timeline, "chaos_seed75_timeline.json");
  EXPECT_EQ(seen_health, e.health_verdicts);
  EXPECT_EQ(failure_count, 1);
}

TEST(Manifest, EmptyFailureListStillWellFormed) {
  const std::string json = repro_manifest_json({}, "");
  EXPECT_NE(json.find("\"vsg-repro-manifest-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"failures\": []"), std::string::npos);
  EXPECT_NE(json.find("\"failure_count\": 0"), std::string::npos);
}

TEST(Manifest, RoundTripsThroughVersionedParser) {
  ManifestEntry e;
  e.seed = 12;
  e.violations = {"health: token_stall [aggregate] at 1us: x"};
  e.scenario_path = "chaos_seed12.scn";
  e.flight_recorder_path = "chaos_seed12_trace.json";
  e.timeline_path = "chaos_seed12_timeline.json";
  e.health_verdicts = e.violations;
  const auto m = parse_repro_manifest(repro_manifest_json({e}, "CHAOS.json"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->version, 2);
  EXPECT_EQ(m->metrics_export, "CHAOS.json");
  ASSERT_EQ(m->entries.size(), 1u);
  EXPECT_EQ(m->entries[0].seed, 12u);
  EXPECT_EQ(m->entries[0].timeline_path, e.timeline_path);
  EXPECT_EQ(m->entries[0].health_verdicts, e.health_verdicts);
  EXPECT_EQ(m->entries[0].scenario_path, e.scenario_path);
}

TEST(Manifest, V1DocumentsStillParse) {
  // A pre-timeline manifest (no "timeline"/"health_events" fields) from an
  // older campaign must stay readable; the parser reports version 1.
  const std::string v1 =
      "{\n  \"schema\": \"vsg-repro-manifest-v1\",\n  \"metrics_export\": \"M.json\",\n"
      "  \"failures\": [\n    {\n      \"seed\": 75,\n"
      "      \"violations\": [\"to: bad\"],\n"
      "      \"scenario\": \"chaos_seed75.scn\",\n"
      "      \"flight_recorder\": \"chaos_seed75_trace.json\"\n    }\n  ],\n"
      "  \"failure_count\": 1\n}\n";
  const auto m = parse_repro_manifest(v1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->version, 1);
  ASSERT_EQ(m->entries.size(), 1u);
  EXPECT_EQ(m->entries[0].seed, 75u);
  EXPECT_TRUE(m->entries[0].timeline_path.empty());
  EXPECT_TRUE(m->entries[0].health_verdicts.empty());

  const std::string unknown = "{\"schema\": \"vsg-repro-manifest-v9\", \"failures\": []}";
  EXPECT_FALSE(parse_repro_manifest(unknown).has_value());
}

// --- Health oracle through the campaign ------------------------------------

// Slowing the ring's token launch spacing (pi) past the watchdog bound is
// the stall-injection knob: the singleton fallback keeps rotations moving
// under any schedule, so a natural durable stall would be a liveness bug.
CampaignConfig stall_injected_config() {
  CampaignConfig cfg;
  cfg.schedule = small_schedule();
  cfg.ring.pi = sim::msec(1500);
  cfg.sampler.enabled = true;
  return cfg;
}

TEST(HealthOracle, ReplayReproducesTheSameHealthEventSequence) {
  const CampaignConfig cfg = stall_injected_config();
  const auto g = generate_schedule(cfg.schedule, 21);
  const auto a = run_one(cfg, g.scenario, cfg.schedule.n, 21, g.run_until, g.bcasts);
  const auto b = run_one(cfg, g.scenario, cfg.schedule.n, 21, g.run_until, g.bcasts);
  ASSERT_FALSE(a.health_events.empty());
  EXPECT_EQ(a.health_events, b.health_events);
  bool stalled = false;
  for (const auto& e : a.health_events) stalled |= e.rule == "token_stall";
  EXPECT_TRUE(stalled) << "pi=1500ms past stall_after must trip the stall watchdog";
  EXPECT_EQ(write_timeseries(a.timeline), write_timeseries(b.timeline))
      << "fixed-seed timelines must be byte-identical";
  // Watchdogs observe without judging unless the oracle is armed.
  EXPECT_TRUE(a.ok()) << a.violations.front();
}

TEST(HealthOracle, CampaignRecordsVerdictsAndShrinkPreservesTheRule) {
  CampaignConfig cfg = stall_injected_config();
  cfg.health_oracle = true;
  cfg.first_seed = 21;
  cfg.seeds = 1;
  cfg.shrink_options.max_candidates = 150;
  const auto result = run_campaign(cfg);
  ASSERT_FALSE(result.ok()) << "armed health oracle must fail the stalled seed";
  ASSERT_EQ(result.seed_timelines.size(), 1u);
  EXPECT_FALSE(result.seed_timelines[0].samples.empty());

  const Failure& f = result.failures.front();
  ASSERT_FALSE(f.health_verdicts.empty());
  EXPECT_EQ(f.health_verdicts.front().rfind("health: ", 0), 0u);
  EXPECT_LT(f.minimal.scenario.ops.size(), f.schedule.scenario.ops.size());

  // The ddmin predicate keeps the health rule set: replaying the minimal
  // scenario still trips token_stall.
  const auto replay = run_one(cfg, f.minimal.scenario, f.minimal.n, f.seed,
                              f.schedule.run_until, 0);
  bool stalled = false;
  for (const auto& e : replay.health_events) stalled |= e.rule == "token_stall";
  EXPECT_TRUE(stalled) << "shrink lost the token_stall health event";
}

// --- Acceptance demo: injected fault caught, shrunk, replayable -----------

TEST(Campaign, InjectedDecodeBugIsCaughtShrunkAndReplayable) {
  util::UncheckedDecodeGuard inject;

  CampaignConfig cfg;
  cfg.schedule = small_schedule();
  // Seeds 133..142 cover seed 138, a known hit for the injected bug under
  // the smoke-preset schedule and the default (v3) wire layout (found by
  // `chaos_runner --seeds 200 --smoke --inject-unchecked-decode`; the v1
  // layout's hit was seed 75, and which corruption offsets slip past an
  // unchecked decoder depends on the byte layout). The surrounding seeds
  // keep the campaign honest about clean runs.
  cfg.first_seed = 133;
  cfg.seeds = 10;
  cfg.shrink_options.max_candidates = 150;
  const auto result = run_campaign(cfg);
  ASSERT_FALSE(result.ok())
      << "unchecked decode injected but no oracle fired in " << result.runs << " runs";

  const Failure& f = result.failures.front();
  EXPECT_FALSE(f.violations.empty());
  EXPECT_LE(f.minimal.scenario.ops.size(), 10u)
      << "shrinker left " << f.minimal.scenario.ops.size() << " ops";
  EXPECT_LT(f.minimal.scenario.ops.size(), f.schedule.scenario.ops.size());

  // The serialized repro parses back to the identical scenario + metadata.
  const std::string text = repro_text(f);
  const auto parsed = harness::parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error << "\n" << text;
  EXPECT_EQ(*parsed.scenario, f.minimal.scenario);
  ASSERT_TRUE(parsed.meta.n.has_value());
  EXPECT_EQ(*parsed.meta.n, f.minimal.n);
  ASSERT_TRUE(parsed.meta.seed.has_value());
  EXPECT_EQ(*parsed.meta.seed, f.seed);
  ASSERT_TRUE(parsed.meta.until.has_value());

  // Replaying the minimal repro still fails with the bug injected. The
  // expected-bcast count mirrors the shrink predicate's recovery oracle.
  int bcasts = 0;
  for (const auto& t : parsed.scenario->ops)
    if (std::get_if<harness::OpBcast>(&t.op) != nullptr) ++bcasts;
  const auto replay = run_one(cfg, *parsed.scenario, *parsed.meta.n, *parsed.meta.seed,
                              *parsed.meta.until, bcasts);
  EXPECT_FALSE(replay.ok()) << "minimal repro did not reproduce";

  // The failure carries a flight recorder of the minimized failing run — a
  // valid Chrome trace (what --repro-dir dumps next to the scenario and
  // indexes from repro_manifest.json).
  ASSERT_FALSE(f.flight_recorder.empty());
  const auto trace_problems = obs::validate_chrome_trace(f.flight_recorder);
  EXPECT_TRUE(trace_problems.empty()) << trace_problems.front();

  // ...and the violation disappears once decoding is strict again. (A
  // safety-class minimal may legitimately end un-healed and not recover;
  // only the safety oracles must go quiet.)
  util::set_unchecked_decode_for_test(false);
  const auto fixed = run_one(cfg, *parsed.scenario, *parsed.meta.n, *parsed.meta.seed,
                             *parsed.meta.until, bcasts);
  util::set_unchecked_decode_for_test(true);  // guard's dtor expects to restore
  for (const auto& v : fixed.violations)
    EXPECT_EQ(v.rfind("recovery:", 0), 0u) << "safety violation survives the fix: " << v;
}

}  // namespace
}  // namespace vsg::chaos
