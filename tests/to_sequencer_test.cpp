// The sequencer baseline: correct totally ordered broadcast on a healthy
// network, resilient to message loss via NACK/retransmit — but, unlike
// VStoTO, completely unavailable in any component that loses the
// sequencer. That contrast is the paper's motivation for partitionable
// group communication.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/failure_table.hpp"
#include "sim/simulator.hpp"
#include "spec/to_trace_checker.hpp"
#include "to/sequencer_to.hpp"
#include "trace/recorder.hpp"

namespace vsg::to {
namespace {

struct Fixture {
  sim::Simulator sim;
  sim::FailureTable failures;
  trace::Recorder recorder{sim};
  net::Network net;
  SequencerTO service;

  explicit Fixture(int n, std::uint64_t seed = 1, net::LinkModel model = {})
      : failures(n),
        net(sim, failures, model, util::Rng(seed)),
        service(sim, net, recorder, SequencerConfig{}) {}

  bool to_safe() {
    spec::TOTraceChecker checker(net.size());
    checker.check_all(recorder.events());
    return checker.ok();
  }
};

TEST(SequencerTO, DeliversToEveryoneInOneOrder) {
  Fixture f(4);
  for (int k = 0; k < 5; ++k)
    f.sim.at(sim::msec(10 + k), [&f, k] {
      f.service.bcast(static_cast<ProcId>(k % 4), "v" + std::to_string(k));
    });
  f.sim.run_until(sim::sec(2));

  EXPECT_TRUE(f.to_safe());
  const auto& reference = f.service.delivered(0);
  ASSERT_EQ(reference.size(), 5u);
  for (ProcId p = 1; p < 4; ++p) EXPECT_EQ(f.service.delivered(p), reference);
}

TEST(SequencerTO, PerSenderFifoDespiteNetworkReordering) {
  // Wide delay spread: later submissions can overtake earlier ones in
  // flight; the sequencer's per-sender admission must reorder them back.
  net::LinkModel model;
  model.min_delay = sim::usec(100);
  model.delta = sim::msec(50);
  Fixture f(3, 7, model);
  for (int k = 0; k < 10; ++k)
    f.sim.at(sim::msec(1), [&f, k] { f.service.bcast(1, "m" + std::to_string(k)); });
  f.sim.run_until(sim::sec(2));

  EXPECT_TRUE(f.to_safe());
  const auto& got = f.service.delivered(2);
  ASSERT_EQ(got.size(), 10u);
  for (int k = 0; k < 10; ++k)
    EXPECT_EQ(got[static_cast<std::size_t>(k)].second, "m" + std::to_string(k));
}

TEST(SequencerTO, NackRecoversFromLoss) {
  Fixture f(3, 11);
  // Make the sequencer->2 link ugly (half the stamps drop) for a while.
  f.failures.set_link(0, 2, sim::Status::kUgly, 0);
  for (int k = 0; k < 10; ++k)
    f.sim.at(sim::msec(10 * k + 1), [&f, k] {
      f.service.bcast(1, "x" + std::to_string(k));
    });
  f.sim.at(sim::sec(1), [&f] { f.failures.set_link(0, 2, sim::Status::kGood, f.sim.now()); });
  f.sim.run_until(sim::sec(4));

  EXPECT_TRUE(f.to_safe());
  EXPECT_EQ(f.service.delivered(2).size(), 10u) << "retransmission filled the gaps";
}

TEST(SequencerTO, PartitionWithoutSequencerStallsCompletely) {
  Fixture f(4, 13);
  // {2,3} lose the sequencer (processor 0).
  f.failures.partition({{0, 1}, {2, 3}}, 0);
  f.sim.at(sim::msec(10), [&f] { f.service.bcast(2, "doomed"); });
  f.sim.at(sim::msec(10), [&f] { f.service.bcast(0, "seq-side"); });
  f.sim.run_until(sim::sec(3));

  EXPECT_TRUE(f.to_safe());
  // The sequencer's side delivers its own value...
  EXPECT_EQ(f.service.delivered(0).size(), 1u);
  EXPECT_EQ(f.service.delivered(1).size(), 1u);
  // ...but the other component gets NOTHING, not even its own submission —
  // this is exactly what a partitionable group service avoids.
  EXPECT_TRUE(f.service.delivered(2).empty());
  EXPECT_TRUE(f.service.delivered(3).empty());
}

TEST(SequencerTO, SequencerCrashIsFatalForEveryone) {
  Fixture f(3, 17);
  f.failures.partition({{1, 2}}, 0);  // 0 (the sequencer) cut off entirely
  f.sim.at(sim::msec(10), [&f] { f.service.bcast(1, "nobody-will-see"); });
  f.sim.run_until(sim::sec(3));
  EXPECT_TRUE(f.service.delivered(1).empty());
  EXPECT_TRUE(f.service.delivered(2).empty());
}

}  // namespace
}  // namespace vsg::to
