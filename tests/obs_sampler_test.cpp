// obs::Sampler and the vsg-timeseries-v1 codec: round-trip property tests,
// the determinism contract (sampling never perturbs protocol counters, a
// fixed seed gives a byte-identical timeline), the final-sample-equals-
// export contract behind World::write_timeline, and the always-on backlog
// instrumentation the watchdog gauges are built from.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/world.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "util/rng.hpp"

namespace vsg::obs {
namespace {

TimeseriesDoc demo_doc() {
  TimeseriesDoc doc;
  doc.interval = sim::msec(100);
  doc.dropped = 3;
  TimeseriesSample s;
  s.at = sim::msec(100);
  s.series = "aggregate";
  s.metrics.counters.emplace_back("net.packets_sent", 42);
  s.metrics.counters.emplace_back("ring.token_rotations", 7);
  s.metrics.gauges.emplace_back("ring.backlog_depth", -2);
  HistogramSnapshot h;
  h.name = "to.brcv_latency.all";
  h.unit = Unit::kSimMicros;
  h.bounds = {10, 100};
  h.buckets = {1, 2, 0};
  h.count = 3;
  h.sum = 120;
  h.min = 4;
  h.max = 90;
  s.metrics.histograms.push_back(h);
  doc.samples.push_back(s);
  s.at = sim::msec(200);
  s.series = "shard0";
  doc.samples.push_back(s);
  doc.health_events.push_back(
      HealthEvent{sim::msec(200), "token_stall", "aggregate", "flat \"quoted\" detail"});
  return doc;
}

TEST(Timeseries, RoundTripsThroughJson) {
  const TimeseriesDoc doc = demo_doc();
  const auto parsed = parse_timeseries(write_timeseries(doc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, doc);
}

TEST(Timeseries, FingerprintIsStableAndSensitive) {
  const TimeseriesDoc doc = demo_doc();
  const std::uint64_t fp = timeseries_fingerprint(doc);
  EXPECT_EQ(fp, timeseries_fingerprint(*parse_timeseries(write_timeseries(doc))))
      << "fingerprint must survive a round-trip";
  TimeseriesDoc mutated = doc;
  mutated.samples[0].metrics.counters[0].second += 1;
  EXPECT_NE(fp, timeseries_fingerprint(mutated));
  TimeseriesDoc renamed = doc;
  renamed.health_events[0].rule = "backlog_growth";
  EXPECT_NE(fp, timeseries_fingerprint(renamed));
}

TEST(Timeseries, PropertyRandomDocsRoundTrip) {
  util::Rng rng(20260808);
  const char* name_pool[] = {"a.b", "with \"quotes\"", "back\\slash",
                             "tab\there", "ring.token_rotations", "x"};
  for (int iter = 0; iter < 60; ++iter) {
    TimeseriesDoc doc;
    doc.interval = rng.range(1, 1000000);
    doc.dropped = rng.below(10);
    const int samples = static_cast<int>(rng.below(5));
    sim::Time at = 0;
    for (int i = 0; i < samples; ++i) {
      TimeseriesSample s;
      at += rng.range(1, 100000);
      s.at = at;
      s.series = name_pool[rng.below(6)];
      const int counters = static_cast<int>(rng.below(4));
      for (int c = 0; c < counters; ++c)
        // Counter values ride through JSON as int64, so the codec's domain
        // is [0, 2^63) — generate inside it.
        s.metrics.counters.emplace_back(name_pool[rng.below(6)] + std::to_string(c),
                                        rng.below(std::uint64_t{1} << 62));
      const int gauges = static_cast<int>(rng.below(3));
      for (int g = 0; g < gauges; ++g)
        s.metrics.gauges.emplace_back(name_pool[rng.below(6)] + std::to_string(g),
                                      rng.range(-1000000, 1000000));
      if (rng.chance(0.5)) {
        HistogramSnapshot h;
        h.name = name_pool[rng.below(6)];
        h.unit = rng.chance(0.5) ? Unit::kSimMicros : Unit::kCount;
        const int nb = static_cast<int>(rng.below(4));
        std::int64_t bound = 0;
        for (int b = 0; b < nb; ++b) h.bounds.push_back(bound += rng.range(1, 100));
        for (int b = 0; b <= nb; ++b) h.buckets.push_back(rng.below(50));
        for (std::uint64_t n : h.buckets) h.count += n;
        h.sum = rng.range(-1000, 100000);
        h.min = rng.range(-10, 10);
        h.max = h.min + rng.range(0, 1000);
        s.metrics.histograms.push_back(std::move(h));
      }
      doc.samples.push_back(std::move(s));
    }
    if (rng.chance(0.5))
      doc.health_events.push_back(HealthEvent{at, "token_stall",
                                              name_pool[rng.below(6)],
                                              name_pool[rng.below(6)]});
    const auto parsed = parse_timeseries(write_timeseries(doc));
    ASSERT_TRUE(parsed.has_value()) << "iter " << iter << "\n" << write_timeseries(doc);
    EXPECT_EQ(*parsed, doc) << "iter " << iter;
  }
}

// --- sampler mechanics -----------------------------------------------------

TEST(Sampler, SampleNowAtSameInstantReplaces) {
  SamplerConfig cfg;
  cfg.enabled = true;
  Sampler sampler(cfg);
  MetricsRegistry reg;
  reg.counter("c").inc(1);
  sampler.add_source("aggregate", [&reg] { return reg.snapshot(); });
  sampler.sample_now(sim::msec(100));
  reg.counter("c").inc(1);
  sampler.sample_now(sim::msec(100));
  ASSERT_EQ(sampler.samples().size(), 1u);
  EXPECT_EQ(sampler.samples()[0].metrics.counters[0].second, 2u)
      << "the replacement must carry the newer registry state";
  sampler.sample_now(sim::msec(200));
  EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(Sampler, CapacityEvictionCountsDropped) {
  SamplerConfig cfg;
  cfg.enabled = true;
  cfg.capacity = 4;
  Sampler sampler(cfg);
  MetricsRegistry reg;
  sampler.add_source("aggregate", [&reg] { return reg.snapshot(); });
  for (int i = 1; i <= 10; ++i) sampler.sample_now(sim::msec(i));
  EXPECT_EQ(sampler.samples().size(), 4u);
  EXPECT_EQ(sampler.dropped(), 6u);
  EXPECT_EQ(sampler.samples().front().at, sim::msec(7)) << "oldest evicted first";
  EXPECT_EQ(sampler.doc().dropped, 6u);
}

TEST(Sampler, WallMetricsAreStrippedAtCaptureTime) {
  SamplerConfig cfg;
  cfg.enabled = true;
  Sampler sampler(cfg);
  MetricsRegistry reg;
  reg.counter("net.packets_sent").inc();
  reg.gauge("bench.sweep_wall_us").set(123456);
  reg.gauge("bench.jobs").set(8);
  reg.histogram("bench.run_wall", Unit::kWallMicros).observe(99);
  sampler.add_source("aggregate", [&reg] { return reg.snapshot(); });
  sampler.sample_now(sim::msec(100));
  const auto& snap = sampler.samples().at(0).metrics;
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

// --- determinism contract through the World harness ------------------------

harness::WorldConfig sampled_world_config(bool sampled) {
  harness::WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 99;
  cfg.sampler.enabled = sampled;
  return cfg;
}

void drive(harness::World& world) {
  world.partition_at(sim::msec(300), {{0, 1}, {2, 3}});
  for (int i = 0; i < 10; ++i)
    world.bcast_at(sim::msec(400 + 40 * i), static_cast<ProcId>(i % 4),
                   "v" + std::to_string(i));
  world.heal_at(sim::sec(2));
  world.run_until(sim::sec(6));
}

bool non_health(const std::string& name) { return name.rfind("health.", 0) != 0; }

TEST(Sampler, EnablingSamplingLeavesProtocolCountersBitIdentical) {
  harness::World plain(sampled_world_config(false));
  drive(plain);
  harness::World sampled(sampled_world_config(true));
  drive(sampled);

  // The sampled World's registry additionally carries health.* counters
  // (bound by the watchdogs); everything else must match exactly.
  const auto a = plain.metrics().snapshot();
  auto b = sampled.metrics().snapshot();
  std::erase_if(b.counters, [](const auto& e) { return !non_health(e.first); });
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_EQ(a.histograms, b.histograms);
  EXPECT_GT(sampled.sampler()->samples().size(), 10u);
}

TEST(Sampler, FixedSeedTimelineIsByteIdentical) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    harness::World world(sampled_world_config(true));
    drive(world);
    world.sampler()->sample_now(sim::sec(6));
    const std::string bytes = write_timeseries(world.sampler()->doc());
    if (run == 0)
      first = bytes;
    else
      EXPECT_EQ(first, bytes);
  }
}

TEST(Sampler, FinalSampleEqualsEndOfRunExport) {
  harness::WorldConfig cfg = sampled_world_config(true);
  cfg.shards = 2;  // exercise the per-shard series and the aggregate mirror
  harness::World world(cfg);
  drive(world);

  // The write_timeline double-sample: first pass may bump health.* counters,
  // second pass recaptures so the final sample sees them.
  world.sampler()->sample_now(sim::sec(6));
  world.sampler()->sample_now(sim::sec(6));

  const obs::MetricsSnapshot want = strip_wall_metrics(world.aggregate_snapshot());
  const obs::MetricsSnapshot* final_aggregate = nullptr;
  for (const auto& s : world.sampler()->samples())
    if (s.series == "aggregate") final_aggregate = &s.metrics;
  ASSERT_NE(final_aggregate, nullptr);
  EXPECT_EQ(*final_aggregate, want);
}

// --- always-on backlog instrumentation (sampler off) -----------------------

TEST(BacklogInstrumentation, GaugesAndPayloadBytesRecordedWithoutSampler) {
  harness::World world(sampled_world_config(false));
  drive(world);

  // Backlogs drained at quiescence, but the watermark and the per-pass
  // payload histogram prove traffic moved through the instrumented paths.
  EXPECT_EQ(world.metrics().gauge("ring.backlog_depth").value(), 0);
  EXPECT_GT(world.metrics().gauge("ring.backlog_peak").value(), 0);
  EXPECT_EQ(world.metrics().gauge("to.pending_labels").value(), 0);
  const auto& bytes = world.metrics().histogram("ring.board_bytes_per_pass", Unit::kCount);
  EXPECT_GT(bytes.count(), 0u);
  EXPECT_GT(bytes.sum(), 0);
  EXPECT_GT(world.metrics().counter("to.views_established").value(), 0u);
  EXPECT_GT(world.metrics().counter("to.primary_established").value(), 0u);
}

}  // namespace
}  // namespace vsg::obs
