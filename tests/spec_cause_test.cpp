// The cause function (Lemma 4.2): existence on safe traces, and detection
// of each property violation (integrity, duplication, reordering, losses).

#include <gtest/gtest.h>

#include "spec/cause.hpp"
#include "spec/vs_machine.hpp"
#include "spec/vs_trace_checker.hpp"
#include "util/rng.hpp"

namespace vsg::spec {
namespace {

using trace::GprcvEvent;
using trace::GpsndEvent;
using trace::NewViewEvent;
using trace::SafeEvent;
using trace::TimedEvent;

std::vector<TimedEvent> t(std::initializer_list<trace::Event> events) {
  std::vector<TimedEvent> out;
  sim::Time at = 0;
  for (auto& e : events) out.push_back({at++, e});
  return out;
}

util::Bytes b(std::uint8_t x) { return util::Bytes{x}; }

TEST(Cause, SimpleSendReceiveHasCause) {
  const auto trace = t({GpsndEvent{0, b(1)}, GprcvEvent{0, 1, b(1)}, GprcvEvent{0, 0, b(1)}});
  const auto result = build_cause(trace, 2, 2);
  EXPECT_TRUE(result.ok()) << result.violations.front();
  ASSERT_EQ(result.gprcv_cause.size(), 2u);
  EXPECT_EQ(result.gprcv_cause.at(1), 0u);
  EXPECT_EQ(result.gprcv_cause.at(2), 0u);
}

TEST(Cause, SafeEventsGetCausesToo) {
  const auto trace = t({GpsndEvent{0, b(1)}, GprcvEvent{0, 1, b(1)}, SafeEvent{0, 1, b(1)}});
  const auto result = build_cause(trace, 2, 2);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.safe_cause.at(2), 0u);
}

TEST(Cause, ReceiveWithoutSendIsViolation) {
  const auto trace = t({GprcvEvent{0, 1, b(9)}});
  const auto result = build_cause(trace, 2, 2);
  EXPECT_FALSE(result.ok());
}

TEST(Cause, DuplicateDeliveryIsViolation) {
  const auto trace =
      t({GpsndEvent{0, b(1)}, GprcvEvent{0, 1, b(1)}, GprcvEvent{0, 1, b(1)}});
  const auto result = build_cause(trace, 2, 2);
  EXPECT_FALSE(result.ok()) << "second delivery has no remaining cause";
}

TEST(Cause, ReorderingIsViolation) {
  const auto trace = t({GpsndEvent{0, b(1)}, GpsndEvent{0, b(2)},
                        GprcvEvent{0, 1, b(2)}, GprcvEvent{0, 1, b(1)}});
  const auto result = build_cause(trace, 2, 2);
  EXPECT_FALSE(result.ok()) << "FIFO prefix violated";
}

TEST(Cause, GapInPrefixIsViolation) {
  // Receiver gets message 2 without message 1: positional matching flags it.
  const auto trace = t({GpsndEvent{0, b(1)}, GpsndEvent{0, b(2)}, GprcvEvent{0, 1, b(2)}});
  const auto result = build_cause(trace, 2, 2);
  EXPECT_FALSE(result.ok());
}

TEST(Cause, PrefixDeliveryIsFine) {
  // Receiving only the first of two messages is legal (prefix).
  const auto trace = t({GpsndEvent{0, b(1)}, GpsndEvent{0, b(2)}, GprcvEvent{0, 1, b(1)}});
  const auto result = build_cause(trace, 2, 2);
  EXPECT_TRUE(result.ok());
}

TEST(Cause, CrossViewDeliveryIsViolation) {
  // 0 sends in g0; 1 moves to a new view, then "receives" the old message.
  const core::View v1{core::ViewId{1, 0}, {0, 1}};
  const auto trace =
      t({GpsndEvent{0, b(1)}, NewViewEvent{1, v1}, GprcvEvent{0, 1, b(1)}});
  const auto result = build_cause(trace, 2, 2);
  EXPECT_FALSE(result.ok()) << "sending view differs from delivery view";
}

TEST(Cause, SendBeforeAnyViewIsNeverDelivered) {
  // Processor 2 starts outside P0 (n0 = 2): its gpsnd is into bottom.
  const auto trace = t({GpsndEvent{2, b(1)}, GprcvEvent{2, 0, b(1)}});
  const auto result = build_cause(trace, 3, 2);
  EXPECT_FALSE(result.ok());
}

TEST(Cause, PerDestinationStreamsAreIndependent) {
  const auto trace = t({GpsndEvent{0, b(1)}, GpsndEvent{0, b(2)},
                        GprcvEvent{0, 1, b(1)}, GprcvEvent{0, 2, b(1)},
                        GprcvEvent{0, 1, b(2)}});
  const auto result = build_cause(trace, 3, 3);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.gprcv_cause.at(2), 0u);
  EXPECT_EQ(result.gprcv_cause.at(3), 0u);
  EXPECT_EQ(result.gprcv_cause.at(4), 1u);
}

TEST(Cause, ViewsPartitionTheStreams) {
  // Same payloads sent in two consecutive views; causes must stay within
  // the correct view.
  const core::View v1{core::ViewId{1, 0}, {0, 1}};
  const auto trace = t({
      GpsndEvent{0, b(7)},             // 0: in g0
      GprcvEvent{0, 1, b(7)},          // 1: in g0
      NewViewEvent{0, v1},             // 2
      NewViewEvent{1, v1},             // 3
      GpsndEvent{0, b(7)},             // 4: same payload, view v1
      GprcvEvent{0, 1, b(7)},          // 5: must map to event 4, not 0
  });
  const auto result = build_cause(trace, 2, 2);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.gprcv_cause.at(1), 0u);
  EXPECT_EQ(result.gprcv_cause.at(5), 4u);
}

// Cross-validation: the standalone build_cause and the online
// VSTraceChecker construct the cause mapping independently; on random
// machine-generated traces they must agree exactly (and both accept).
class CauseCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CauseCrossValidation, CheckerAndBuilderAgreeOnMachineTraces) {
  util::Rng rng(GetParam());
  const int n = 3;
  VSMachine m(n, n);
  std::vector<TimedEvent> tr;
  std::uint8_t next_msg = 0;
  std::uint64_t next_epoch = 1;

  for (int step = 0; step < 250; ++step) {
    const auto choice = rng.below(6);
    const auto p = static_cast<ProcId>(rng.below(n));
    switch (choice) {
      case 0: {
        std::set<ProcId> members;
        for (ProcId q = 0; q < n; ++q)
          if (rng.chance(0.7)) members.insert(q);
        if (members.empty()) members.insert(p);
        const core::View v{core::ViewId{next_epoch, *members.begin()}, members};
        if (m.createview_enabled(v)) {
          m.createview(v);
          ++next_epoch;
        }
        break;
      }
      case 1: {
        const auto& created = m.created();
        const auto& v = created[rng.below(created.size())];
        if (m.newview_enabled(v, p)) {
          m.newview(v, p);
          tr.push_back({static_cast<sim::Time>(step), NewViewEvent{p, v}});
        }
        break;
      }
      case 2: {
        const util::Bytes payload{next_msg++};
        m.gpsnd(p, payload);
        tr.push_back({static_cast<sim::Time>(step), GpsndEvent{p, payload}});
        break;
      }
      case 3: {
        for (const auto& g : m.touched_viewids())
          if (m.vs_order_enabled(p, g)) {
            m.vs_order(p, g);
            break;
          }
        break;
      }
      case 4:
        if (auto e = m.gprcv_next(p)) {
          m.gprcv(p);
          tr.push_back({static_cast<sim::Time>(step), GprcvEvent{e->p, p, e->m}});
        }
        break;
      case 5:
        if (auto e = m.safe_next(p)) {
          m.safe(p);
          tr.push_back({static_cast<sim::Time>(step), SafeEvent{e->p, p, e->m}});
        }
        break;
    }
  }

  // Both implementations accept the machine's trace...
  const auto built = build_cause(tr, n, n);
  EXPECT_TRUE(built.ok()) << built.violations.front();
  VSTraceChecker checker(n, n);
  checker.check_all(tr);
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  // ...and construct the same (unique, per Lemma 4.2) mapping.
  EXPECT_EQ(built.gprcv_cause, checker.gprcv_cause());
  EXPECT_EQ(built.safe_cause, checker.safe_cause());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CauseCrossValidation,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38, 39, 40));

}  // namespace
}  // namespace vsg::spec
