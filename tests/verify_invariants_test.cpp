// The proof's invariants (Lemmas 6.1-6.24) checked on reachable states of
// VStoTO-system: the stack running over the VS-machine back end, stepped
// event by event through scenarios with traffic, partitions, merges and
// random churn.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "verify/invariants.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig spec_cfg(int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = Backend::kSpec;
  cfg.seed = seed;
  return cfg;
}

// Step the simulator one event at a time, checking all invariants between
// events (every `stride`-th event, to keep runtime sane).
void run_checking(World& world, sim::Time until, int stride = 1) {
  const auto gs = world.global_state();
  int count = 0;
  while (world.simulator().now() < until && world.simulator().step()) {
    if (++count % stride != 0) continue;
    const auto bad = verify::check_all_invariants(gs);
    ASSERT_TRUE(bad.empty()) << "after event " << count << " at t="
                             << world.simulator().now() << ": " << bad.front();
  }
}

TEST(Invariants, HoldInitially) {
  World world(spec_cfg(3, 1));
  const auto bad = verify::check_all_invariants(world.global_state());
  EXPECT_TRUE(bad.empty()) << bad.front();
}

TEST(Invariants, HoldThroughNormalTraffic) {
  World world(spec_cfg(3, 2));
  harness::steady_traffic({0, 1, 2}, 5, sim::msec(10), sim::msec(15)).apply(world);
  run_checking(world, sim::sec(2));
}

TEST(Invariants, HoldThroughPartitionAndHeal) {
  World world(spec_cfg(5, 3));
  world.partition_at(sim::msec(50), {{0, 1, 2}, {3, 4}});
  world.bcast_at(sim::msec(200), 0, "maj");
  world.bcast_at(sim::msec(200), 3, "min");
  world.heal_at(sim::msec(400));
  world.bcast_at(sim::msec(600), 4, "post");
  run_checking(world, sim::sec(2));
}

TEST(Invariants, HoldThroughQuorumlessSplit) {
  World world(spec_cfg(4, 4));
  world.partition_at(sim::msec(50), {{0, 1}, {2, 3}});
  world.bcast_at(sim::msec(100), 0, "a");
  world.bcast_at(sim::msec(100), 2, "b");
  world.heal_at(sim::msec(300));
  run_checking(world, sim::sec(2));
}

class InvariantChurnFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantChurnFuzz, HoldUnderRandomChurn) {
  const auto seed = GetParam();
  World world(spec_cfg(4, seed));
  util::Rng rng(seed * 31 + 7);
  harness::random_churn(4, 10, sim::msec(20), sim::msec(800), {{0, 1, 2}, {3}}, rng)
      .apply(world);
  harness::random_traffic(4, 25, sim::msec(10), sim::msec(900), rng).apply(world);
  run_checking(world, sim::sec(3), /*stride=*/3);

  // Sanity: the run did something (views formed, values confirmed).
  const auto gs = world.global_state();
  EXPECT_GT(gs.machine->created().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantChurnFuzz,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(Invariants, DerivedVariablesWellFormedAfterBusyRun) {
  World world(spec_cfg(4, 99));
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3}});
  harness::steady_traffic({0, 1}, 10, sim::msec(150), sim::msec(10)).apply(world);
  world.heal_at(sim::msec(500));
  world.run_until(sim::sec(2));

  const auto gs = world.global_state();
  std::vector<std::string> bad;
  const auto content = verify::allcontent(gs, &bad);
  EXPECT_TRUE(bad.empty());
  EXPECT_EQ(content.size(), 20u) << "every labeled value appears in allcontent";
  const auto confirm = verify::allconfirm(gs, &bad);
  ASSERT_TRUE(confirm.has_value());
  EXPECT_EQ(confirm->size(), 20u) << "everything confirmed after heal";
}

TEST(Invariants, CheckersDetectSeededCorruption) {
  // White-box: corrupt a process state via const_cast and confirm the
  // relevant lemma checker fires (guards against vacuously-true checkers).
  World world(spec_cfg(3, 7));
  harness::steady_traffic({0}, 3, sim::msec(10), sim::msec(10)).apply(world);
  world.run_until(sim::sec(1));
  const auto gs = world.global_state();
  ASSERT_TRUE(verify::check_all_invariants(gs).empty());

  auto& st = const_cast<vstoto::ProcessState&>(gs.procs[0]->state());
  // 6.11(1): established primary must have highprimary == current view id.
  const auto saved = st.highprimary;
  st.highprimary = std::nullopt;
  EXPECT_FALSE(verify::check_lemma_6_11(gs).empty());
  st.highprimary = saved;
  ASSERT_TRUE(verify::check_lemma_6_11(gs).empty());

  // Corollary 6.24: two inconsistent confirm prefixes.
  ASSERT_GE(st.order.size(), 2u);
  std::swap(st.order[0], st.order[1]);
  EXPECT_FALSE(verify::check_corollary_6_24(gs).empty() &&
               verify::check_corollary_6_23(gs).empty())
      << "swapped confirmed order must trip a confirm-consistency corollary";
}

TEST(Invariants, MoreCheckersDetectSeededCorruption) {
  World world(spec_cfg(3, 8));
  harness::steady_traffic({0, 1}, 3, sim::msec(10), sim::msec(10)).apply(world);
  world.run_until(sim::sec(1));
  const auto gs = world.global_state();
  ASSERT_TRUE(verify::check_all_invariants(gs).empty());

  auto& st0 = const_cast<vstoto::ProcessState&>(gs.procs[0]->state());

  {
    // 6.4: a label at/above the origin's (current, nextseqno) bound.
    const auto saved = st0.content;
    st0.content.emplace(core::Label{st0.current->id, st0.nextseqno + 5, 0}, "future");
    EXPECT_FALSE(verify::check_lemma_6_4(gs).empty());
    st0.content = saved;
  }
  {
    // 6.5: the same label bound to two different values at two processors.
    auto& st1 = const_cast<vstoto::ProcessState&>(gs.procs[1]->state());
    ASSERT_FALSE(st0.content.empty());
    const auto label = st0.content.begin()->first;
    const auto saved = st1.content;
    st1.content[label] = st0.content.begin()->second + "-conflict";
    EXPECT_FALSE(verify::check_lemma_6_5(gs).empty());
    st1.content = saved;
  }
  {
    // 6.6: a buffered label with no content binding.
    st0.buffer.push_back(core::Label{st0.current->id, 99, 0});
    EXPECT_FALSE(verify::check_lemma_6_6(gs).empty());
    st0.buffer.pop_back();
  }
  {
    // 6.10(2): established[current] must match status == normal.
    const auto saved = st0.established;
    st0.established.erase(st0.current->id);
    EXPECT_FALSE(verify::check_lemma_6_10(gs).empty());
    st0.established = saved;
  }
  {
    // 6.16: an order that no established member's buildorder matches.
    const auto saved_order = st0.order;
    st0.order.push_back(core::Label{st0.current->id, 77, 0});
    // (keep buildorder stale so the witness search fails)
    const auto saved_bo = st0.buildorder;
    EXPECT_FALSE(verify::check_lemma_6_16(gs).empty() &&
                 verify::check_history_wellformed(gs).empty());
    st0.order = saved_order;
    st0.buildorder = saved_bo;
  }
  {
    // 6.17: someone established a view whose member lags behind it.
    auto& st2 = const_cast<vstoto::ProcessState&>(gs.procs[2]->state());
    const auto saved = st2.current;
    st2.current = std::nullopt;
    EXPECT_FALSE(verify::check_lemma_6_17(gs).empty() ||
                 verify::check_lemma_6_1(gs).empty())
        << "a member behind an established view trips 6.17 (or 6.1 first)";
    st2.current = saved;
  }
  {
    // 6.21: ord containing a later same-origin label without the earlier one.
    const auto saved_order = st0.order;
    const auto saved_bo = st0.buildorder;
    ASSERT_GE(st0.order.size(), 2u);
    // Remove the first of two same-origin labels from ord.
    st0.order.erase(st0.order.begin());
    st0.buildorder[st0.current->id] = st0.order;
    EXPECT_FALSE(verify::check_lemma_6_21(gs).empty() &&
                 verify::check_corollary_6_23(gs).empty());
    st0.order = saved_order;
    st0.buildorder = saved_bo;
  }
  // Everything restored: clean again.
  EXPECT_TRUE(verify::check_all_invariants(gs).empty());
}

}  // namespace
}  // namespace vsg
