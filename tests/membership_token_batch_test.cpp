// Batched boarding property (docs/WIRE.md): encoding a token after boarding
// N payloads in one pass — one cold segment, one splice build — must be
// byte- and content-equivalent to boarding them one at a time, across
// boarding, trimming, and decode round trips. Also pins the cache-honesty
// rules note_boarded/note_trimmed enforce.

#include <gtest/gtest.h>

#include "membership/messages.hpp"
#include "util/rng.hpp"

namespace vsg::membership {
namespace {

Token fresh_token() {
  Token t;
  t.gid = core::ViewId{3, 0};
  t.lap = 1;
  t.delivered = {{0, 0}, {1, 0}};
  return t;
}

util::Buffer payload(util::Rng& rng) {
  util::Bytes b;
  const auto len = rng.below(12);
  for (std::uint64_t i = 0; i < len; ++i)
    b.push_back(static_cast<std::uint8_t>(rng.next()));
  return util::Buffer{std::move(b)};
}

void board(Token& t, ProcId src, const std::vector<util::Buffer>& batch) {
  for (const auto& p : batch) t.entries.emplace_back(src, p);
  t.note_boarded(batch.size());
}

bool same_entries(const Token& a, const Token& b) { return a.entries == b.entries; }

// encode_packet warms the caches of the Packet it is handed — a copy. Real
// callers (forward_token) copy the warmed caches back onto the live token;
// mirror that here so warm-cache behavior is actually exercised.
util::Buffer encode_warm(Token& t, WireFormat w = kDefaultWireFormat,
                         WireEncodeStats* stats = nullptr) {
  Packet pkt{t};
  auto wire = encode_packet(pkt, w, stats);
  const Token& encoded = std::get<Token>(pkt);
  t.entries_wire = encoded.entries_wire;
  t.entries_segs = encoded.entries_segs;
  t.segs_version = encoded.segs_version;
  return wire;
}

TEST(TokenBatch, BatchedSpliceEqualsSingleBoards) {
  util::Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = rng.below(9);  // includes the empty backlog
    std::vector<util::Buffer> batch;
    for (std::size_t i = 0; i < n; ++i) batch.push_back(payload(rng));

    // One pass of n payloads...
    Token batched = fresh_token();
    board(batched, 1, batch);
    // ...versus n passes of one payload (with an encode between passes, the
    // worst case for cache bookkeeping).
    Token singles = fresh_token();
    for (const auto& p : batch) {
      board(singles, 1, {p});
      (void)encode_warm(singles);
    }

    ASSERT_TRUE(same_entries(batched, singles)) << "round " << round;
    const auto wire_batched = encode_warm(batched);
    const auto wire_singles = encode_warm(singles);
    // Warm single-boarded caches may keep finer-grained segments than a cold
    // rebuild would produce, so the packets need not be byte-identical —
    // but both must decode to the same entry sequence.
    const auto a = decode_packet(wire_batched);
    const auto b = decode_packet(wire_singles);
    ASSERT_TRUE(a.has_value() && b.has_value()) << "round " << round;
    EXPECT_TRUE(same_entries(std::get<Token>(*a), std::get<Token>(*b))) << "round " << round;
    // A re-encode from decoded state is a cold single-segment rebuild on
    // both sides: those ARE byte-identical.
    auto ta = std::get<Token>(*a);
    auto tb = std::get<Token>(*b);
    ta.invalidate_wire_caches();
    tb.invalidate_wire_caches();
    EXPECT_EQ(encode_packet(Packet{ta}), encode_packet(Packet{tb})) << "round " << round;
  }
}

TEST(TokenBatch, EmptyBacklogLeavesTheCacheWarm) {
  Token t = fresh_token();
  board(t, 0, {util::Bytes{1, 2}});
  WireEncodeStats first;
  (void)encode_warm(t, kDefaultWireFormat, &first);
  EXPECT_EQ(first.entries_rebuilt, 1u);

  t.note_boarded(0);  // a pass that boarded nothing must not invalidate
  WireEncodeStats second;
  (void)encode_warm(t, kDefaultWireFormat, &second);
  EXPECT_EQ(second.entries_rebuilt, 0u);
  EXPECT_EQ(second.entries_spliced, 1u);
}

TEST(TokenBatch, EachPayloadIsRebuiltExactlyOnceAcrossPasses) {
  // The headline claim behind ring.entries_rebuilds: under v2, a payload is
  // serialized from structs exactly once (its boarding pass); every later
  // pass carries it by splice.
  util::Rng rng(7);
  Token t = fresh_token();
  std::uint64_t rebuilt_total = 0;
  std::uint64_t boarded_total = 0;
  for (int pass = 0; pass < 20; ++pass) {
    std::vector<util::Buffer> batch;
    const std::size_t n = rng.below(5);
    for (std::size_t i = 0; i < n; ++i) batch.push_back(payload(rng));
    board(t, static_cast<ProcId>(pass % 3), batch);
    boarded_total += n;
    WireEncodeStats s;
    (void)encode_warm(t, WireFormat::kV2, &s);
    EXPECT_EQ(s.entries_rebuilt, n) << "pass " << pass;
    rebuilt_total += s.entries_rebuilt;
  }
  EXPECT_EQ(rebuilt_total, boarded_total);
}

TEST(TokenBatch, TrimMidPassDropsWholeSegmentsAndSplitsTheBoundary) {
  util::Rng rng(99);
  for (std::size_t trim = 0; trim <= 6; ++trim) {
    Token t = fresh_token();
    board(t, 0, {payload(rng), payload(rng)});
    (void)encode_warm(t);  // warm segment [0,2)
    board(t, 1, {payload(rng), payload(rng), payload(rng)});
    (void)encode_warm(t);  // warm segments [0,2) [2,5)
    board(t, 2, {payload(rng)});     // cold tail [5,6)

    Token reference = fresh_token();
    reference.entries = t.entries;

    // Trim mid-pass, straddling segment boundaries for trim in 1..4.
    t.entries.erase(t.entries.begin(), t.entries.begin() + static_cast<std::ptrdiff_t>(trim));
    t.base += static_cast<std::uint32_t>(trim);
    t.note_trimmed(trim);
    reference.entries.erase(reference.entries.begin(),
                            reference.entries.begin() + static_cast<std::ptrdiff_t>(trim));
    reference.base = t.base;

    const auto cached = decode_packet(encode_warm(t));
    const auto rebuilt = decode_packet(encode_packet(Packet{reference}));
    ASSERT_TRUE(cached.has_value() && rebuilt.has_value()) << "trim " << trim;
    EXPECT_TRUE(same_entries(std::get<Token>(*cached), std::get<Token>(*rebuilt)))
        << "trim " << trim;
    EXPECT_EQ(std::get<Token>(*cached).base, std::get<Token>(*rebuilt).base) << "trim " << trim;
  }
}

TEST(TokenBatch, V1PathStillInvalidatesWholeSectionPerPass) {
  // The legacy layout has a single section cache: any boarding pass forces
  // a full re-serialization of every riding entry. This is the contrast
  // the v1/v2 bench numbers quantify.
  util::Rng rng(5);
  Token t = fresh_token();
  std::uint64_t rebuilt_total = 0;
  for (int pass = 0; pass < 5; ++pass) {
    board(t, 0, {payload(rng)});
    WireEncodeStats s;
    (void)encode_warm(t, WireFormat::kV1, &s);
    EXPECT_EQ(s.entries_rebuilt, t.entries.size()) << "pass " << pass;
    rebuilt_total += s.entries_rebuilt;
  }
  EXPECT_EQ(rebuilt_total, 1u + 2 + 3 + 4 + 5);
}

}  // namespace
}  // namespace vsg::membership
