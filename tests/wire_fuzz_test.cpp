// Decode-hardening regression tests: every wire message and membership
// packet type must reject every strict-prefix truncation, any single-byte
// corruption (membership packets are checksummed), and arbitrary garbage —
// without crashing. The historical zero-filled-decode bug stays reproducible
// behind util::unchecked_decode() and is pinned down here too.

#include <gtest/gtest.h>

#include "membership/messages.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"
#include "vstoto/wire.hpp"

namespace vsg {
namespace {

std::vector<vstoto::Message> all_messages() {
  const core::Label label{core::ViewId{3, 1}, 7, 2};
  core::Summary x;
  x.con = {{label, "alpha"}, {core::Label{core::ViewId{3, 1}, 8, 0}, "beta"}};
  x.ord = {label};
  x.next = 1;
  x.high = core::ViewId{3, 1};
  return {vstoto::Message{vstoto::LabeledValue{label, "payload"}}, vstoto::Message{x}};
}

std::vector<membership::Packet> all_packets() {
  membership::Token token;
  token.gid = core::ViewId{5, 0};
  token.lap = 2;
  token.base = 1;
  token.entries = {{0, util::Bytes{1, 2, 3}}, {2, util::Bytes{}}};
  token.delivered = {{0, 4}, {2, 3}};
  return {
      membership::Packet{membership::Call{core::ViewId{7, 2}}},
      membership::Packet{membership::CallReply{core::ViewId{9, 0}}},
      membership::Packet{membership::ViewAnnounce{core::View{core::ViewId{3, 1}, {0, 1, 3}}}},
      membership::Packet{token},
      membership::Packet{membership::Probe{core::ViewId{4, 3}}},
      membership::Packet{membership::Probe{std::nullopt}},
  };
}

TEST(WireFuzz, EveryMessageTypeRejectsEveryTruncation) {
  for (const auto& m : all_messages()) {
    const auto bytes = vstoto::encode_message(m);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const util::Bytes prefix(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(vstoto::decode_message(prefix).has_value())
          << "message index accepted a " << len << "/" << bytes.size() << " prefix";
    }
  }
}

TEST(WireFuzz, EveryPacketTypeRejectsEveryTruncation) {
  for (const auto& p : all_packets()) {
    const auto bytes = membership::encode_packet(p);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const util::Bytes prefix(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(membership::decode_packet(prefix).has_value())
          << "packet index " << p.index() << " accepted a " << len << "/" << bytes.size()
          << " prefix";
    }
  }
}

// The frame checksum covers the whole body, so no single-byte corruption may
// slip through (a flip in the length prefix truncates the frame instead).
TEST(WireFuzz, EveryPacketTypeRejectsEverySingleByteFlip) {
  for (const auto& p : all_packets()) {
    const auto bytes = membership::encode_packet(p);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0xFF}}) {
        util::Bytes corrupt = bytes;
        corrupt[i] ^= flip;
        EXPECT_FALSE(membership::decode_packet(corrupt).has_value())
            << "packet index " << p.index() << " accepted byte " << i << " ^ " << int(flip);
      }
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(2026);
  for (int i = 0; i < 500; ++i) {
    util::Bytes buf(rng.below(64));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    (void)vstoto::decode_message(buf);   // must not crash; accept/reject is free
    (void)membership::decode_packet(buf);
  }
}

TEST(WireFuzz, RandomlyMangledEncodingsNeverCrash) {
  util::Rng rng(4049);
  const auto messages = all_messages();
  const auto packets = all_packets();
  for (int i = 0; i < 300; ++i) {
    auto mangle = [&rng](util::Bytes bytes) {
      const auto flips = 1 + rng.below(4);
      for (std::uint64_t k = 0; k < flips && !bytes.empty(); ++k)
        bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      return bytes;
    };
    (void)vstoto::decode_message(mangle(encode_message(messages[rng.below(messages.size())])));
    (void)membership::decode_packet(mangle(encode_packet(packets[rng.below(packets.size())])));
  }
}

// --- The injectable historical bug ---------------------------------------

TEST(WireFuzz, UncheckedDecodeAcceptsTruncatedMessage) {
  auto bytes = vstoto::encode_message(all_messages()[0]);
  bytes.resize(bytes.size() - 3);
  ASSERT_FALSE(vstoto::decode_message(bytes).has_value());

  util::UncheckedDecodeGuard guard;
  const auto lenient = vstoto::decode_message(bytes);
  ASSERT_TRUE(lenient.has_value());  // zero-filled fields — the old bug
}

TEST(WireFuzz, UncheckedDecodeAcceptsCorruptPacket) {
  auto bytes = membership::encode_packet(all_packets()[0]);
  bytes.back() ^= 0x40;  // body payload byte: checksum is the only defense
  ASSERT_FALSE(membership::decode_packet(bytes).has_value());

  util::UncheckedDecodeGuard guard;
  EXPECT_TRUE(membership::decode_packet(bytes).has_value());
}

TEST(WireFuzz, GuardRestoresStrictDecoding) {
  {
    util::UncheckedDecodeGuard guard;
    EXPECT_TRUE(util::unchecked_decode());
  }
  EXPECT_FALSE(util::unchecked_decode());
  auto bytes = vstoto::encode_message(all_messages()[0]);
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(vstoto::decode_message(bytes).has_value());
}

}  // namespace
}  // namespace vsg
