// Decode-hardening regression tests: every wire message and membership
// packet type must reject every strict-prefix truncation, any single-byte
// corruption (membership packets are checksummed), and arbitrary garbage —
// without crashing. The historical zero-filled-decode bug stays reproducible
// behind util::unchecked_decode() and is pinned down here too.

#include <gtest/gtest.h>

#include "membership/messages.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"
#include "vstoto/wire.hpp"

namespace vsg {
namespace {

std::vector<vstoto::Message> all_messages() {
  const core::Label label{core::ViewId{3, 1}, 7, 2};
  core::Summary x;
  x.con = {{label, "alpha"}, {core::Label{core::ViewId{3, 1}, 8, 0}, "beta"}};
  x.ord = {label};
  x.next = 1;
  x.high = core::ViewId{3, 1};
  return {vstoto::Message{vstoto::LabeledValue{label, "payload"}}, vstoto::Message{x}};
}

std::vector<membership::Packet> all_packets() {
  membership::Token token;
  token.gid = core::ViewId{5, 0};
  token.lap = 2;
  token.base = 1;
  token.entries = {{0, util::Bytes{1, 2, 3}}, {2, util::Bytes{}}};
  token.delivered = {{0, 4}, {2, 3}};
  return {
      membership::Packet{membership::Call{core::ViewId{7, 2}}},
      membership::Packet{membership::CallReply{core::ViewId{9, 0}}},
      membership::Packet{membership::ViewAnnounce{core::View{core::ViewId{3, 1}, {0, 1, 3}}}},
      membership::Packet{token},
      membership::Packet{membership::Probe{core::ViewId{4, 3}}},
      membership::Packet{membership::Probe{std::nullopt}},
  };
}

TEST(WireFuzz, EveryMessageTypeRejectsEveryTruncation) {
  for (const auto& m : all_messages()) {
    const auto bytes = vstoto::encode_message(m);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const util::Bytes prefix(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(vstoto::decode_message(prefix).has_value())
          << "message index accepted a " << len << "/" << bytes.size() << " prefix";
    }
  }
}

TEST(WireFuzz, EveryPacketTypeRejectsEveryTruncation) {
  for (const auto& p : all_packets()) {
    const auto bytes = membership::encode_packet(p);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const util::Bytes prefix(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(membership::decode_packet(prefix).has_value())
          << "packet index " << p.index() << " accepted a " << len << "/" << bytes.size()
          << " prefix";
    }
  }
}

// The frame checksum covers the whole body, so no single-byte corruption may
// slip through (a flip in the length prefix truncates the frame instead).
TEST(WireFuzz, EveryPacketTypeRejectsEverySingleByteFlip) {
  for (const auto& p : all_packets()) {
    const auto bytes = membership::encode_packet(p).to_bytes();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      for (std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0xFF}}) {
        util::Bytes corrupt = bytes;
        corrupt[i] ^= flip;
        EXPECT_FALSE(membership::decode_packet(corrupt).has_value())
            << "packet index " << p.index() << " accepted byte " << i << " ^ " << int(flip);
      }
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(2026);
  for (int i = 0; i < 500; ++i) {
    util::Bytes buf(rng.below(64));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    (void)vstoto::decode_message(buf);   // must not crash; accept/reject is free
    (void)membership::decode_packet(buf);
  }
}

TEST(WireFuzz, RandomlyMangledEncodingsNeverCrash) {
  util::Rng rng(4049);
  const auto messages = all_messages();
  const auto packets = all_packets();
  for (int i = 0; i < 300; ++i) {
    auto mangle = [&rng](util::Bytes bytes) {
      const auto flips = 1 + rng.below(4);
      for (std::uint64_t k = 0; k < flips && !bytes.empty(); ++k)
        bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      return bytes;
    };
    (void)vstoto::decode_message(
        mangle(encode_message(messages[rng.below(messages.size())]).to_bytes()));
    (void)membership::decode_packet(
        mangle(encode_packet(packets[rng.below(packets.size())]).to_bytes()));
  }
}

// --- BufferView / shared-buffer decoding ----------------------------------
//
// The zero-copy plane decodes out of views into shared storage at arbitrary
// offsets. These pin down that (a) a decode through a misaligned window of a
// bigger buffer equals the owning decode, (b) every strict-prefix view is
// rejected, and (c) token entries sliced from a shared arena stay valid after
// the arena Buffer is released (ASan enforces the lifetime half).

TEST(WireFuzz, MisalignedViewDecodingMatchesOwningDecode) {
  for (const auto& m : all_messages()) {
    const auto wire = vstoto::encode_message(m).to_bytes();
    for (std::size_t pad : {1u, 3u, 5u}) {  // odd pads: deliberately unaligned
      util::Bytes arena(pad, 0xEE);
      arena.insert(arena.end(), wire.begin(), wire.end());
      const auto via_view =
          vstoto::decode_message(util::BufferView(arena.data() + pad, wire.size()));
      ASSERT_TRUE(via_view.has_value()) << "pad " << pad;
      EXPECT_EQ(via_view->index(), m.index());
    }
  }
}

TEST(WireFuzz, TruncatedViewsAlwaysRejected) {
  for (const auto& m : all_messages()) {
    const auto wire = vstoto::encode_message(m);
    const util::BufferView full = wire.view();
    for (std::size_t len = 0; len < full.size(); ++len)
      EXPECT_FALSE(vstoto::decode_message(full.subview(0, len)).has_value())
          << len << "/" << full.size();
  }
}

TEST(WireFuzz, PacketsDecodeFromSlicesOfASharedArena) {
  // Pack every packet back-to-back into one storage (as a receive ring
  // would) and decode each through a slice; token entries must come out as
  // slices of the arena and survive its release.
  const auto packets = all_packets();
  util::Bytes raw;
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (const auto& p : packets) {
    const auto wire = membership::encode_packet(p).to_bytes();
    spans.emplace_back(raw.size(), wire.size());
    raw.insert(raw.end(), wire.begin(), wire.end());
  }
  std::vector<membership::Packet> decoded;
  {
    const util::Buffer arena{std::move(raw)};
    for (std::size_t i = 0; i < packets.size(); ++i) {
      auto back = membership::decode_packet(arena.slice(spans[i].first, spans[i].second));
      ASSERT_TRUE(back.has_value()) << "packet " << i;
      EXPECT_EQ(back->index(), packets[i].index());
      if (const auto* t = std::get_if<membership::Token>(&*back)) {
        for (const auto& [src, payload] : t->entries) {
          if (!payload.empty()) {  // an empty slice carries no storage (id 0)
            EXPECT_EQ(payload.id(), arena.id()) << "entry of " << src;
          }
        }
      }
      decoded.push_back(std::move(*back));
    }
  }  // arena Buffer released; entry slices must keep the storage alive
  const auto& token = std::get<membership::Token>(decoded[3]);
  const auto& orig = std::get<membership::Token>(packets[3]);
  ASSERT_EQ(token.entries.size(), orig.entries.size());
  for (std::size_t i = 0; i < token.entries.size(); ++i)
    EXPECT_EQ(token.entries[i].second, orig.entries[i].second);
}

// --- The injectable historical bug ---------------------------------------

TEST(WireFuzz, UncheckedDecodeAcceptsTruncatedMessage) {
  auto bytes = vstoto::encode_message(all_messages()[0]).to_bytes();
  bytes.resize(bytes.size() - 3);
  ASSERT_FALSE(vstoto::decode_message(bytes).has_value());

  util::UncheckedDecodeGuard guard;
  const auto lenient = vstoto::decode_message(bytes);
  ASSERT_TRUE(lenient.has_value());  // zero-filled fields — the old bug
}

TEST(WireFuzz, UncheckedDecodeAcceptsCorruptPacket) {
  auto bytes = membership::encode_packet(all_packets()[0]).to_bytes();
  bytes.back() ^= 0x40;  // body payload byte: checksum is the only defense
  ASSERT_FALSE(membership::decode_packet(bytes).has_value());

  util::UncheckedDecodeGuard guard;
  EXPECT_TRUE(membership::decode_packet(bytes).has_value());
}

TEST(WireFuzz, GuardRestoresStrictDecoding) {
  {
    util::UncheckedDecodeGuard guard;
    EXPECT_TRUE(util::unchecked_decode());
  }
  EXPECT_FALSE(util::unchecked_decode());
  auto bytes = vstoto::encode_message(all_messages()[0]).to_bytes();
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(vstoto::decode_message(bytes).has_value());
}

}  // namespace
}  // namespace vsg
