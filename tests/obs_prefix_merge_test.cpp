// Shard-prefixed metric merging (MetricsRegistry::merge_from with a name
// prefix) — the mechanism behind the World's per-shard metric namespaces.
// The contract: folding each shard registry twice (once unprefixed for the
// aggregate, once prefixed for the per-shard view) preserves totals
// exactly, and two shards' prefixed names can never alias each other.

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace vsg::obs {
namespace {

TEST(PrefixedMerge, PrependsThePrefixToEveryMetricKind) {
  MetricsRegistry shard;
  shard.counter("ring.token_rotations").inc(7);
  shard.gauge("ring.members").set(4);
  shard.histogram("ring.lap", Unit::kSimMicros, {10, 100}).observe(42);

  MetricsRegistry merged;
  ASSERT_TRUE(merged.merge_from(shard, "shard1."));
  ASSERT_NE(merged.find_counter("shard1.ring.token_rotations"), nullptr);
  EXPECT_EQ(merged.find_counter("shard1.ring.token_rotations")->value(), 7u);
  EXPECT_EQ(merged.find_counter("ring.token_rotations"), nullptr)
      << "unprefixed name must not appear in a prefixed merge";
  EXPECT_EQ(merged.gauge("shard1.ring.members").value(), 4);
  EXPECT_EQ(merged.histogram("shard1.ring.lap").count(), 1u);
}

TEST(PrefixedMerge, EmptyPrefixIsAPlainMerge) {
  MetricsRegistry shard;
  shard.counter("net.packets_sent").inc(3);
  MetricsRegistry merged;
  ASSERT_TRUE(merged.merge_from(shard, ""));
  EXPECT_EQ(merged.counter("net.packets_sent").value(), 3u);
}

TEST(PrefixedMerge, AggregatePlusPerShardPreservesTotals) {
  // The World's collect_shard_metrics shape: each shard registry folds
  // into the main one twice — unprefixed (aggregate) and "shard<k>."
  // prefixed (per-shard view).
  MetricsRegistry shard0, shard1, main;
  shard0.counter("ring.entries_delivered").inc(10);
  shard1.counter("ring.entries_delivered").inc(32);
  for (int k = 0; k < 2; ++k) {
    MetricsRegistry& shard = k == 0 ? shard0 : shard1;
    ASSERT_TRUE(main.merge_from(shard));
    ASSERT_TRUE(main.merge_from(shard, "shard" + std::to_string(k) + "."));
  }
  EXPECT_EQ(main.counter("ring.entries_delivered").value(), 42u)
      << "aggregate must be the exact sum of the shard counters";
  EXPECT_EQ(main.counter("shard0.ring.entries_delivered").value(), 10u);
  EXPECT_EQ(main.counter("shard1.ring.entries_delivered").value(), 32u);
}

TEST(PrefixedMerge, ShardNamespacesNeverAlias) {
  // "shard1." + "0.x" and "shard10." + "x" would collide under naive
  // concatenation schemes; the dot-terminated prefix keeps every shard
  // index unambiguous for K <= kMaxShards-style two-digit counts.
  MetricsRegistry a, b, main;
  a.counter("x").inc(1);
  b.counter("x").inc(100);
  ASSERT_TRUE(main.merge_from(a, "shard1."));
  ASSERT_TRUE(main.merge_from(b, "shard10."));
  EXPECT_EQ(main.counter("shard1.x").value(), 1u);
  EXPECT_EQ(main.counter("shard10.x").value(), 100u);

  // Repeated prefixed merges accumulate (merge semantics), they do not
  // overwrite — mirrored from the unprefixed contract.
  ASSERT_TRUE(main.merge_from(a, "shard1."));
  EXPECT_EQ(main.counter("shard1.x").value(), 2u);
}

TEST(PrefixedMerge, ShapeMismatchStillRejected) {
  MetricsRegistry shard, main;
  shard.histogram("h", Unit::kSimMicros, {10, 100}).observe(5);
  main.histogram("p.h", Unit::kSimMicros, {1, 2, 3}).observe(1);
  EXPECT_FALSE(main.merge_from(shard, "p."))
      << "prefixed merge must keep the bucket-shape check";
}

}  // namespace
}  // namespace vsg::obs
