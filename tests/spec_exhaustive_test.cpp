// Small-scope exhaustive model checking of VS-machine: enumerate EVERY
// reachable state of tiny configurations (bounded action alphabet, bounded
// depth) and check Lemma 4.1 plus trace safety on every path. This is the
// executable analogue of the inductive proofs: within the bounded scope,
// no interleaving whatsoever violates the invariants.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "spec/to_machine.hpp"
#include "spec/to_trace_checker.hpp"
#include "spec/vs_machine.hpp"
#include "spec/vs_trace_checker.hpp"
#include "spec/weak_vs_machine.hpp"
#include "trace/events.hpp"

namespace vsg::spec {
namespace {

// The bounded exploration universe: n processors, a fixed set of candidate
// views, a fixed per-processor message budget.
struct Universe {
  int n = 2;
  int n0 = 2;
  std::vector<core::View> candidate_views;
  int max_sends_per_proc = 1;
};

struct PathState {
  VSMachine machine;
  std::vector<trace::TimedEvent> trace;
  std::vector<int> sends_used;

  PathState(int n, int n0) : machine(n, n0), sends_used(static_cast<std::size_t>(n), 0) {}
};

// Depth-first exploration of every enabled action sequence up to `depth`.
// Calls `check` after every transition; counts states visited.
class Explorer {
 public:
  Explorer(Universe universe, int depth) : universe_(std::move(universe)), depth_(depth) {}

  void run(const std::function<void(const PathState&)>& check) {
    PathState root(universe_.n, universe_.n0);
    check_ = &check;
    states_ = 0;
    dfs(root, 0);
  }

  std::size_t states_visited() const { return states_; }

 private:
  void visit(PathState& s, int depth, const std::function<void(PathState&)>& apply) {
    PathState next = s;  // copy the whole system state: genuine branching
    apply(next);
    ++states_;
    (*check_)(next);
    dfs(next, depth + 1);
  }

  void dfs(PathState& s, int depth) {
    if (depth >= depth_) return;
    const int n = universe_.n;

    for (const auto& v : universe_.candidate_views) {
      if (s.machine.createview_enabled(v))
        visit(s, depth, [&v](PathState& t) { t.machine.createview(v); });
      for (ProcId p = 0; p < n; ++p)
        if (s.machine.newview_enabled(v, p))
          visit(s, depth, [&v, p](PathState& t) {
            t.machine.newview(v, p);
            t.trace.push_back({0, trace::NewViewEvent{p, v}});
          });
    }
    for (ProcId p = 0; p < n; ++p) {
      if (s.sends_used[static_cast<std::size_t>(p)] < universe_.max_sends_per_proc) {
        visit(s, depth, [p](PathState& t) {
          const util::Bytes payload{static_cast<std::uint8_t>(
              0x10 * (p + 1) + t.sends_used[static_cast<std::size_t>(p)])};
          t.machine.gpsnd(p, payload);
          t.trace.push_back({0, trace::GpsndEvent{p, payload}});
          ++t.sends_used[static_cast<std::size_t>(p)];
        });
      }
      for (const auto& g : s.machine.touched_viewids())
        if (s.machine.vs_order_enabled(p, g))
          visit(s, depth, [p, g](PathState& t) { t.machine.vs_order(p, g); });
      if (s.machine.gprcv_next(p).has_value())
        visit(s, depth, [p](PathState& t) {
          const auto e = t.machine.gprcv(p);
          t.trace.push_back({0, trace::GprcvEvent{e.p, p, e.m}});
        });
      if (s.machine.safe_next(p).has_value())
        visit(s, depth, [p](PathState& t) {
          const auto e = t.machine.safe(p);
          t.trace.push_back({0, trace::SafeEvent{e.p, p, e.m}});
        });
    }
  }

  Universe universe_;
  int depth_;
  const std::function<void(const PathState&)>* check_ = nullptr;
  std::size_t states_ = 0;
};

Universe two_proc_universe() {
  Universe u;
  u.n = 2;
  u.n0 = 2;
  u.candidate_views = {
      core::View{core::ViewId{1, 0}, {0, 1}},
      core::View{core::ViewId{2, 0}, {0}},
      core::View{core::ViewId{2, 1}, {1}},
  };
  u.max_sends_per_proc = 1;
  return u;
}

TEST(ExhaustiveVSMachine, Lemma41OnEveryReachableState) {
  Explorer explorer(two_proc_universe(), /*depth=*/7);
  std::size_t checked = 0;
  explorer.run([&checked](const PathState& s) {
    const auto bad = check_lemma_4_1(s.machine);
    ASSERT_TRUE(bad.empty()) << bad.front();
    ++checked;
  });
  EXPECT_GT(explorer.states_visited(), 10000u) << "the scope must be non-trivial";
  EXPECT_EQ(checked, explorer.states_visited());
}

TEST(ExhaustiveVSMachine, EveryTraceIsCheckerSafe) {
  // Checking the (quadratic) trace checker on every path is pricier: use a
  // slightly smaller depth.
  Explorer explorer(two_proc_universe(), /*depth=*/6);
  explorer.run([](const PathState& s) {
    VSTraceChecker checker(2, 2);
    checker.check_all(s.trace);
    ASSERT_TRUE(checker.ok()) << checker.violations().front();
  });
  EXPECT_GT(explorer.states_visited(), 1000u);
}

TEST(ExhaustiveVSMachine, ThreeProcessorsShallow) {
  Universe u;
  u.n = 3;
  u.n0 = 2;  // processor 2 starts outside P0
  u.candidate_views = {
      core::View{core::ViewId{1, 0}, {0, 1, 2}},
      core::View{core::ViewId{2, 2}, {2}},
  };
  u.max_sends_per_proc = 1;
  Explorer explorer(u, /*depth=*/6);
  explorer.run([](const PathState& s) {
    const auto bad = check_lemma_4_1(s.machine);
    ASSERT_TRUE(bad.empty()) << bad.front();
  });
  EXPECT_GT(explorer.states_visited(), 5000u);
}

// TO-machine, same treatment: every schedule of a small universe keeps the
// trace checker green and the queue/pending/next invariants intact.
struct TOExplorer {
  TOMachine machine{2};
  std::vector<trace::TimedEvent> trace;
  int sends = 0;
  int max_sends;
  int depth_limit;
  std::size_t states = 0;

  TOExplorer(int sends_budget, int depth) : max_sends(sends_budget), depth_limit(depth) {}

  void check() {
    ++states;
    TOTraceChecker checker(2);
    checker.check_all(trace);
    ASSERT_TRUE(checker.ok()) << checker.violations().front();
    for (ProcId p = 0; p < 2; ++p)
      ASSERT_LE(machine.next(p), machine.queue().size() + 1);
  }

  void dfs(int depth) {
    if (depth >= depth_limit || ::testing::Test::HasFatalFailure()) return;
    // Snapshot only the explored state, never the visit counter.
    const TOMachine saved_machine = machine;
    const std::vector<trace::TimedEvent> saved_trace = trace;
    const int saved_sends = sends;
    auto restore = [&] {
      machine = saved_machine;
      trace = saved_trace;
      sends = saved_sends;
    };
    for (ProcId p = 0; p < 2; ++p) {
      if (sends < max_sends) {
        machine.bcast(p, "v" + std::to_string(sends));
        trace.push_back({0, trace::BcastEvent{p, "v" + std::to_string(sends)}});
        ++sends;
        check();
        dfs(depth + 1);
        restore();
      }
      if (machine.to_order_enabled(p)) {
        machine.to_order(p);
        check();
        dfs(depth + 1);
        restore();
      }
      if (machine.brcv_next(p).has_value()) {
        const auto e = machine.brcv(p);
        trace.push_back({0, trace::BrcvEvent{e.p, p, e.a}});
        check();
        dfs(depth + 1);
        restore();
      }
    }
  }
};

TEST(ExhaustiveTOMachine, AllSchedulesOfTwoValues) {
  TOExplorer ex(/*sends_budget=*/3, /*depth=*/10);
  ex.check();
  ex.dfs(0);
  EXPECT_GT(ex.states, 30000u);
}

}  // namespace
}  // namespace vsg::spec
