// Percentile edge cases for harness::summarize — nearest-rank definition:
// index ceil(q*n)-1 on the sorted samples. Empty and single-sample inputs
// are the historical trouble spots.

#include <gtest/gtest.h>

#include "harness/stats.hpp"

namespace vsg::harness {
namespace {

struct Case {
  const char* name;
  std::vector<sim::Time> samples;  // any order; summarize sorts
  sim::Time min, p50, p90, max;
};

TEST(Stats, SummarizeNearestRankTable) {
  const Case cases[] = {
      {"single", {5}, 5, 5, 5, 5},
      {"two", {10, 20}, 10, 10, 20, 20},
      {"three-unsorted", {sim::msec(10), sim::msec(30), sim::msec(20)},
       sim::msec(10), sim::msec(20), sim::msec(30), sim::msec(30)},
      {"four", {1, 2, 3, 4}, 1, 2, 4, 4},
      {"five", {1, 2, 3, 4, 5}, 1, 3, 5, 5},
      // p90 of ten samples is the 9th order statistic, not the max.
      {"ten", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 1, 5, 9, 10},
      {"eleven", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 1, 6, 10, 11},
      {"ties", {7, 7, 7, 7}, 7, 7, 7, 7},
      {"zeros", {0, 0, 0}, 0, 0, 0, 0},
  };
  for (const auto& c : cases) {
    const auto s = summarize(c.samples);
    EXPECT_EQ(s.count, c.samples.size()) << c.name;
    EXPECT_EQ(s.min, c.min) << c.name;
    EXPECT_EQ(s.p50, c.p50) << c.name;
    EXPECT_EQ(s.p90, c.p90) << c.name;
    EXPECT_EQ(s.max, c.max) << c.name;
  }
}

TEST(Stats, SummarizeEmptyIsAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.incomplete, 0u);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.p50, 0);
  EXPECT_EQ(s.p90, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeEmptyKeepsIncompleteCount) {
  const auto s = summarize({}, 3);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.incomplete, 3u);
  EXPECT_EQ(s.p90, 0);
}

TEST(Stats, SummarizeMean) {
  const auto s = summarize({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.mean, 25.0);
}

}  // namespace
}  // namespace vsg::harness
