// Determinism: a (seed, scenario) pair replays bit-identically — the core
// property that makes every failure in this repository reproducible. Two
// independently constructed worlds with the same seed must produce
// byte-identical event traces; different seeds must diverge.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

std::vector<std::string> run_trace(Backend backend, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = backend;
  cfg.seed = seed;
  World world(cfg);
  world.partition_at(sim::msec(200), {{0, 1}, {2, 3}});
  harness::steady_traffic({0, 2}, 6, sim::msec(100), sim::msec(50)).apply(world);
  world.heal_at(sim::sec(1));
  world.run_until(sim::sec(5));

  std::vector<std::string> out;
  out.reserve(world.recorder().size());
  for (const auto& te : world.recorder().events()) out.push_back(trace::describe(te));
  return out;
}

TEST(Determinism, SameSeedSameTraceTokenRing) {
  const auto a = run_trace(Backend::kTokenRing, 42);
  const auto b = run_trace(Backend::kTokenRing, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "event " << i;
}

TEST(Determinism, SameSeedSameTraceSpec) {
  const auto a = run_trace(Backend::kSpec, 42);
  const auto b = run_trace(Backend::kSpec, 42);
  ASSERT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_trace(Backend::kTokenRing, 1);
  const auto b = run_trace(Backend::kTokenRing, 2);
  EXPECT_NE(a, b) << "seeds must actually vary the schedule";
}

TEST(Determinism, SimulatorEventCountsReproducible) {
  auto run = [] {
    WorldConfig cfg;
    cfg.n = 3;
    cfg.backend = Backend::kTokenRing;
    cfg.seed = 7;
    World world(cfg);
    world.bcast_at(sim::msec(10), 0, "x");
    world.run_until(sim::sec(2));
    return world.simulator().events_processed();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace vsg
