// Logging: levels, sink capture, macro short-circuiting, and the
// cross-thread contract (atomic level, mutex-guarded sink swap).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/logging.hpp"

namespace vsg::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_sink([this](LogLevel level, const std::string& msg) {
      captured.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    Log::reset_sink();
    Log::set_level(LogLevel::kOff);
  }
  std::vector<std::pair<LogLevel, std::string>> captured;
};

TEST_F(LoggingTest, OffByDefaultNothingLogged) {
  Log::set_level(LogLevel::kOff);
  VSG_INFO << "invisible";
  VSG_ERROR << "also invisible";
  EXPECT_TRUE(captured.empty());
}

TEST_F(LoggingTest, LevelThresholdFilters) {
  Log::set_level(LogLevel::kWarn);
  VSG_DEBUG << "nope";
  VSG_INFO << "nope";
  VSG_WARN << "yes1";
  VSG_ERROR << "yes2";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "yes1");
  EXPECT_EQ(captured[1].second, "yes2");
}

TEST_F(LoggingTest, StreamingComposesMessage) {
  Log::set_level(LogLevel::kDebug);
  VSG_DEBUG << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].second, "x=42 y=1.5");
}

TEST_F(LoggingTest, DisabledMacroDoesNotEvaluateOperands) {
  Log::set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "costly";
  };
  VSG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0) << "operands must be skipped when logging is off";
}

TEST_F(LoggingTest, EnabledReflectsLevel) {
  Log::set_level(LogLevel::kInfo);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_TRUE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
}

// The level is process-global state read by every World; parallel Worlds
// (chaos --jobs) hammer enabled() while a toggle may run elsewhere. The
// level is atomic, so this is race-free — under TSan (cmake -DVSG_TSAN=ON)
// this test is the proof; elsewhere it pins the visible semantics: readers
// see only values some writer actually set.
TEST_F(LoggingTest, LevelIsSafeToReadWhileAnotherThreadToggles) {
  Log::set_level(LogLevel::kOff);
  std::atomic<bool> stop{false};
  std::atomic<int> bogus{0};
  std::thread reader([&] {
    while (!stop.load()) {
      const LogLevel seen = Log::level();
      if (seen != LogLevel::kWarn && seen != LogLevel::kOff) bogus.fetch_add(1);
      (void)Log::enabled(LogLevel::kError);
    }
  });
  for (int i = 0; i < 20000; ++i)
    Log::set_level(i % 2 == 0 ? LogLevel::kWarn : LogLevel::kOff);
  stop.store(true);
  reader.join();
  EXPECT_EQ(bogus.load(), 0);
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
}

TEST_F(LoggingTest, SinkSwapWhileAnotherThreadWrites) {
  // write() copies the sink under the mutex and invokes it outside, so a
  // concurrent set_sink/reset_sink never races the invocation. The counting
  // sink here only touches an atomic — safe from any thread.
  std::atomic<int> hits{0};
  Log::set_level(LogLevel::kError);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) Log::write(LogLevel::kError, "x");
  });
  for (int i = 0; i < 2000; ++i)
    Log::set_sink([&hits](LogLevel, const std::string&) { hits.fetch_add(1); });
  // A single-CPU box may starve the writer thread entirely; one write from
  // this thread guarantees the counting sink fires at least once.
  Log::write(LogLevel::kError, "y");
  stop.store(true);
  writer.join();
  Log::reset_sink();
  EXPECT_GT(hits.load(), 0);
}

}  // namespace
}  // namespace vsg::util
