// Logging: levels, sink capture, macro short-circuiting.

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace vsg::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_sink([this](LogLevel level, const std::string& msg) {
      captured.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    Log::reset_sink();
    Log::set_level(LogLevel::kOff);
  }
  std::vector<std::pair<LogLevel, std::string>> captured;
};

TEST_F(LoggingTest, OffByDefaultNothingLogged) {
  Log::set_level(LogLevel::kOff);
  VSG_INFO << "invisible";
  VSG_ERROR << "also invisible";
  EXPECT_TRUE(captured.empty());
}

TEST_F(LoggingTest, LevelThresholdFilters) {
  Log::set_level(LogLevel::kWarn);
  VSG_DEBUG << "nope";
  VSG_INFO << "nope";
  VSG_WARN << "yes1";
  VSG_ERROR << "yes2";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "yes1");
  EXPECT_EQ(captured[1].second, "yes2");
}

TEST_F(LoggingTest, StreamingComposesMessage) {
  Log::set_level(LogLevel::kDebug);
  VSG_DEBUG << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].second, "x=42 y=1.5");
}

TEST_F(LoggingTest, DisabledMacroDoesNotEvaluateOperands) {
  Log::set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "costly";
  };
  VSG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0) << "operands must be skipped when logging is off";
}

TEST_F(LoggingTest, EnabledReflectsLevel) {
  Log::set_level(LogLevel::kInfo);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_TRUE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
}

}  // namespace
}  // namespace vsg::util
