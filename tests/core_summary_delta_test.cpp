// Anti-entropy digest/delta algebra (docs/WIRE.md, "v3 state exchange"):
// digest watermarks, the meet of digests, and the central round-trip
// property — apply_delta(delta(a, digest(b)), b) reconstructs a exactly on
// ord/next/high and up to union-equivalence on con — under the protocol
// invariant the exchange relies on (confirmed prefixes agree).

#include <gtest/gtest.h>

#include "core/summary.hpp"
#include "util/rng.hpp"

namespace vsg::core {
namespace {

Label lab(std::uint64_t epoch, std::uint32_t seqno, ProcId origin) {
  return Label{ViewId{epoch, 0}, seqno, origin};
}

// allcontent is a partial function (Lemma 6.5): every holder of a label
// holds the same value. Deriving the value from the label keeps randomly
// generated summaries consistent with that invariant.
Value value_of(const Label& l) {
  return "v" + std::to_string(l.id.epoch) + ":" + std::to_string(l.origin) + ":" +
         std::to_string(l.seqno);
}

TEST(SummaryDigest, EmptySummaryDigestsToEmptyAdvertisement) {
  const SummaryDigest d = digest(Summary{});
  EXPECT_EQ(d.next, 1u);
  EXPECT_EQ(d.ord_len, 0u);
  EXPECT_FALSE(d.high.has_value());
  EXPECT_TRUE(d.marks.empty());
}

TEST(SummaryDigest, WatermarkIsLargestDensePrefixPerStream) {
  Summary x;
  // Stream (1,0): seqnos 1,2,3 dense; stream (1,1): 1 then a gap at 2;
  // stream (2,0): starts at 2 — no prefix at all.
  for (std::uint32_t s : {1u, 2u, 3u}) x.con.emplace(lab(1, s, 0), value_of(lab(1, s, 0)));
  x.con.emplace(lab(1, 1, 1), value_of(lab(1, 1, 1)));
  x.con.emplace(lab(1, 3, 1), value_of(lab(1, 3, 1)));
  x.con.emplace(lab(2, 2, 0), value_of(lab(2, 2, 0)));
  const SummaryDigest d = digest(x);
  ASSERT_EQ(d.marks.size(), 2u);  // zero-watermark streams are absent
  EXPECT_EQ(d.marks.at({ViewId{1, 0}, 0}), 3u);
  EXPECT_EQ(d.marks.at({ViewId{1, 0}, 1}), 1u);
  EXPECT_EQ(d.marks.count({ViewId{2, 0}, 0}), 0u);
}

TEST(SummaryDigest, MeetIsPointwiseWeakest) {
  SummaryDigest a;
  a.next = 5;
  a.ord_len = 7;
  a.high = ViewId{3, 0};
  a.marks = {{{ViewId{1, 0}, 0}, 4}, {{ViewId{1, 0}, 1}, 2}};
  SummaryDigest b;
  b.next = 3;
  b.ord_len = 9;
  b.marks = {{{ViewId{1, 0}, 0}, 6}};

  const SummaryDigest m = meet(a, b);
  EXPECT_EQ(m.next, 3u);
  EXPECT_EQ(m.ord_len, 7u);
  // high is engaged only when both sides hold a primary: bottom is the
  // minimum of the paper's G_bot order.
  EXPECT_FALSE(m.high.has_value());
  ASSERT_EQ(m.marks.size(), 1u);
  EXPECT_EQ(m.marks.at({ViewId{1, 0}, 0}), 4u);

  // Commutative and idempotent.
  EXPECT_EQ(meet(a, b), meet(b, a));
  EXPECT_EQ(meet(a, a), a);
}

TEST(SummaryDelta, SelfDeltaShipsOnlyTheUnconfirmedTail) {
  Summary a;
  for (std::uint32_t s : {1u, 2u, 3u, 4u}) {
    a.con.emplace(lab(1, s, 0), value_of(lab(1, s, 0)));
    a.ord.push_back(lab(1, s, 0));
  }
  a.next = 3;  // ord[0..2) confirmed
  a.high = ViewId{1, 0};

  const SummaryDelta dl = delta(a, digest(a));
  EXPECT_EQ(dl.next, 3u);
  EXPECT_EQ(dl.high, a.high);
  EXPECT_EQ(dl.ord_prefix, 2u);
  EXPECT_EQ(dl.ord_suffix, (std::vector<Label>{lab(1, 3, 0), lab(1, 4, 0)}));
  // Everything in con sits below the watermark: nothing re-ships.
  EXPECT_TRUE(dl.con.empty());

  const auto back = apply_delta(dl, a);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, a);
}

TEST(SummaryDelta, ApplyRejectsOvershootingPrefix) {
  SummaryDelta dl;
  dl.ord_prefix = 2;
  EXPECT_FALSE(apply_delta(dl, Summary{}).has_value());
}

TEST(SummaryDelta, RandomizedRoundTripReconstructsUpToUnionEquivalence) {
  util::Rng rng(88);
  for (int round = 0; round < 2000; ++round) {
    // A shared label pool and a common confirmed prefix: the exchange's
    // soundness rests on TO safety (confirmed prefixes never diverge), so
    // generated pairs honor it — a.ord and b.ord share a prefix at least as
    // long as either confirmed region, then diverge freely.
    std::vector<Label> pool;
    for (std::uint64_t epoch : {1u, 2u})
      for (ProcId origin = 0; origin < 3; ++origin)
        for (std::uint32_t s = 1; s <= 4; ++s) pool.push_back(lab(epoch, s, origin));

    const std::size_t common_len = rng.below(7);
    std::vector<Label> common;
    for (std::size_t i = 0; i < common_len; ++i)
      common.push_back(pool[rng.below(pool.size())]);

    auto make = [&](std::uint64_t salt) {
      Summary x;
      x.ord = common;
      for (std::uint64_t i = rng.below(4); i > 0; --i)
        x.ord.push_back(pool[rng.below(pool.size())]);
      x.next = 1 + static_cast<std::uint32_t>(rng.below(common_len + 1));
      if (rng.chance(0.5)) x.high = ViewId{1 + rng.below(3), 0};
      // Random con: some dense prefixes, some gapped tails.
      for (std::uint64_t i = rng.below(12) + salt % 2; i > 0; --i) {
        const Label l = pool[rng.below(pool.size())];
        x.con.emplace(l, value_of(l));
      }
      return x;
    };
    const Summary a = make(round);
    const Summary b = make(round + 1);

    const auto got = apply_delta(delta(a, digest(b)), b);
    ASSERT_TRUE(got.has_value()) << "round " << round;
    EXPECT_EQ(got->next, a.next) << "round " << round;
    EXPECT_EQ(got->high, a.high) << "round " << round;
    EXPECT_EQ(got->ord, a.ord) << "round " << round;
    // con: everything a knew arrives intact...
    for (const auto& [l, v] : a.con) {
      auto it = got->con.find(l);
      ASSERT_TRUE(it != got->con.end()) << "round " << round << " lost " << to_string(l);
      EXPECT_EQ(it->second, v);
    }
    // ...and every extra entry is one the receiver already held, so a
    // union-style consumer (knowncontent) cannot tell the difference.
    for (const auto& [l, v] : got->con) {
      if (a.con.count(l) != 0) continue;
      auto it = b.con.find(l);
      ASSERT_TRUE(it != b.con.end()) << "round " << round << " invented " << to_string(l);
      EXPECT_EQ(it->second, v);
    }
  }
}

TEST(SummaryDelta, MeetOfDigestsIsSoundForEveryPeer) {
  // A delta computed against meet(d1, d2) must apply cleanly at BOTH peers
  // and reconstruct the same ord/next/high — the broadcast-delta argument.
  util::Rng rng(99);
  for (int round = 0; round < 500; ++round) {
    std::vector<Label> pool;
    for (ProcId origin = 0; origin < 2; ++origin)
      for (std::uint32_t s = 1; s <= 5; ++s) pool.push_back(lab(1, s, origin));
    const std::size_t common_len = rng.below(5);
    std::vector<Label> common;
    for (std::size_t i = 0; i < common_len; ++i)
      common.push_back(pool[rng.below(pool.size())]);
    auto make = [&]() {
      Summary x;
      x.ord = common;
      for (std::uint64_t i = rng.below(3); i > 0; --i)
        x.ord.push_back(pool[rng.below(pool.size())]);
      x.next = 1 + static_cast<std::uint32_t>(rng.below(common_len + 1));
      for (std::uint64_t i = rng.below(8); i > 0; --i) {
        const Label l = pool[rng.below(pool.size())];
        x.con.emplace(l, value_of(l));
      }
      return x;
    };
    const Summary a = make(), b1 = make(), b2 = make();
    const SummaryDelta dl = delta(a, meet(digest(b1), digest(b2)));
    const auto at1 = apply_delta(dl, b1);
    const auto at2 = apply_delta(dl, b2);
    ASSERT_TRUE(at1.has_value() && at2.has_value()) << "round " << round;
    EXPECT_EQ(at1->ord, a.ord);
    EXPECT_EQ(at2->ord, a.ord);
    EXPECT_EQ(at1->next, a.next);
    EXPECT_EQ(at2->next, a.next);
    EXPECT_EQ(at1->high, a.high);
    EXPECT_EQ(at2->high, a.high);
    for (const auto& [l, v] : a.con) {
      ASSERT_EQ(at1->con.count(l), 1u) << "round " << round;
      ASSERT_EQ(at2->con.count(l), 1u) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace vsg::core
