// Token-ring VS implementation: view formation, token circulation, loss
// recovery, merge probing, and conformance of its traces to the VS
// specification (VSTraceChecker + VS-property).

#include <gtest/gtest.h>

#include "harness/world.hpp"
#include "spec/vs_trace_checker.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig ring_cfg(int n, std::uint64_t seed, int n0 = -1) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.n0 = n0;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = seed;
  return cfg;
}

TEST(TokenRing, InitialViewStartsTokenAndDeliversTraffic) {
  World world(ring_cfg(3, 1));
  world.simulator().at(sim::msec(10), [&] {
    world.vs().gpsnd(0, util::Bytes{42});
  });
  world.run_until(sim::sec(1));

  // Everyone (including the sender) received it; safes followed.
  int gprcvs = 0, safes = 0;
  for (const auto& te : world.recorder().events()) {
    if (trace::as<trace::GprcvEvent>(te)) ++gprcvs;
    if (trace::as<trace::SafeEvent>(te)) ++safes;
  }
  EXPECT_EQ(gprcvs, 3);
  EXPECT_EQ(safes, 3);
  EXPECT_TRUE(world.check_vs_safety().empty());
}

TEST(TokenRing, NoTrafficStillNoSpuriousViews) {
  World world(ring_cfg(4, 2));
  world.run_until(sim::sec(5));
  // Stable network: the initial view survives; no newview events at all.
  for (const auto& te : world.recorder().events())
    EXPECT_EQ(trace::as<trace::NewViewEvent>(te), nullptr)
        << "spurious view change in a stable run";
  EXPECT_GT(world.token_ring()->total_stats().tokens_processed, 0u);
}

TEST(TokenRing, PartitionFormsMatchingViews) {
  World world(ring_cfg(5, 3));
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3, 4}});
  world.run_until(sim::sec(4));

  EXPECT_TRUE(world.check_vs_safety().empty());
  const auto& a = world.token_ring()->node(0).view();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->members, (std::set<ProcId>{0, 1, 2}));
  for (ProcId p : {1, 2}) EXPECT_EQ(world.token_ring()->node(p).view(), a);
  const auto& b = world.token_ring()->node(3).view();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->members, (std::set<ProcId>{3, 4}));
  EXPECT_EQ(world.token_ring()->node(4).view(), b);
}

TEST(TokenRing, HealMergesViews) {
  World world(ring_cfg(4, 4));
  world.partition_at(sim::msec(100), {{0, 1}, {2, 3}});
  world.heal_at(sim::sec(2));
  world.run_until(sim::sec(6));

  EXPECT_TRUE(world.check_vs_safety().empty());
  const auto& v = world.token_ring()->node(0).view();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->members, (std::set<ProcId>{0, 1, 2, 3})) << "merged back";
  for (ProcId p = 1; p < 4; ++p) EXPECT_EQ(world.token_ring()->node(p).view(), v);
}

TEST(TokenRing, IsolatedProcessorFormsSingletonView) {
  World world(ring_cfg(3, 5));
  world.partition_at(sim::msec(100), {{0, 1}, {2}});
  world.run_until(sim::sec(4));
  const auto& v = world.token_ring()->node(2).view();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->members, std::set<ProcId>{2});
  // Singleton group still functions: own messages become safe.
  world.simulator().at(world.simulator().now(), [&] {
    world.vs().gpsnd(2, util::Bytes{9});
  });
  world.run_until(sim::sec(6));
  int safes_at_2 = 0;
  for (const auto& te : world.recorder().events())
    if (const auto* e = trace::as<trace::SafeEvent>(te))
      if (e->dst == 2) ++safes_at_2;
  EXPECT_GE(safes_at_2, 1);
}

TEST(TokenRing, LeaderCrashTriggersReformation) {
  World world(ring_cfg(3, 6));
  // Leader of the initial view is 0 (min member). Stop it.
  world.proc_status_at(sim::sec(1), 0, sim::Status::kBad);
  world.partition_at(sim::sec(1), {{0}, {1, 2}});
  world.run_until(sim::sec(5));

  EXPECT_TRUE(world.check_vs_safety().empty());
  const auto& v = world.token_ring()->node(1).view();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->members, (std::set<ProcId>{1, 2})) << "survivors re-formed without leader";
}

TEST(TokenRing, ViewIdsNeverRegressPerNode) {
  World world(ring_cfg(4, 7));
  world.partition_at(sim::msec(200), {{0, 1}, {2, 3}});
  world.heal_at(sim::sec(2));
  world.partition_at(sim::sec(4), {{0}, {1, 2, 3}});
  world.heal_at(sim::sec(6));
  world.run_until(sim::sec(10));
  // VSTraceChecker enforces local monotonicity; just double-check no
  // violations of any kind.
  const auto violations = world.check_vs_safety();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(TokenRing, TrafficAcrossViewChangeStaysSafe) {
  World world(ring_cfg(4, 8));
  // Continuous VS traffic while the membership is reshaped underneath.
  for (int k = 0; k < 40; ++k) {
    world.simulator().at(sim::msec(50 * k + 10), [&world, k] {
      world.vs().gpsnd(static_cast<ProcId>(k % 4), util::Bytes{static_cast<std::uint8_t>(k)});
    });
  }
  world.partition_at(sim::msec(500), {{0, 1}, {2, 3}});
  world.heal_at(sim::msec(1200));
  world.run_until(sim::sec(6));

  const auto violations = world.check_vs_safety();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(FlowControl, BurstLargerThanCapStillFullyDelivered) {
  WorldConfig cfg = ring_cfg(3, 21);
  cfg.ring.max_entries_per_pass = 2;  // tight cap, bursty load
  World world(cfg);
  for (int k = 0; k < 15; ++k)
    world.simulator().at(sim::msec(100), [&world, k] {
      world.vs().gpsnd(0, util::Bytes{static_cast<std::uint8_t>(k)});
    });
  world.run_until(sim::sec(5));

  EXPECT_TRUE(world.check_vs_safety().empty());
  // Everything boards eventually (8 laps at 2 per pass), nothing is lost.
  int at_2 = 0;
  for (const auto& te : world.recorder().events())
    if (const auto* e = trace::as<trace::GprcvEvent>(te))
      if (e->dst == 2) ++at_2;
  EXPECT_EQ(at_2, 15);
  // And the token never carried more than a small multiple of the cap.
  EXPECT_LE(world.token_ring()->total_stats().max_token_entries, 8u);
}

TEST(FlowControl, UncappedMatchesDefaultBehaviour) {
  WorldConfig cfg = ring_cfg(3, 21);  // same seed as above, no cap
  World world(cfg);
  for (int k = 0; k < 15; ++k)
    world.simulator().at(sim::msec(100), [&world, k] {
      world.vs().gpsnd(0, util::Bytes{static_cast<std::uint8_t>(k)});
    });
  world.run_until(sim::sec(5));
  EXPECT_TRUE(world.check_vs_safety().empty());
  // The whole burst boards in one pass.
  EXPECT_GE(world.token_ring()->total_stats().max_token_entries, 15u);
}

TEST(OneRoundFormation, MergesAndStaysSafe) {
  WorldConfig cfg = ring_cfg(4, 15);
  cfg.ring.formation = membership::FormationMode::kOneRound;
  World world(cfg);
  world.partition_at(sim::msec(200), {{0, 1}, {2, 3}});
  world.heal_at(sim::sec(2));
  world.run_until(sim::sec(10));

  const auto violations = world.check_vs_safety();
  EXPECT_TRUE(violations.empty()) << violations.front();
  const auto& v = world.token_ring()->node(0).view();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->members, (std::set<ProcId>{0, 1, 2, 3}));
  for (ProcId p = 1; p < 4; ++p) EXPECT_EQ(world.token_ring()->node(p).view(), v);
}

TEST(OneRoundFormation, EndToEndTotalOrderStillHolds) {
  WorldConfig cfg = ring_cfg(3, 16);
  cfg.ring.formation = membership::FormationMode::kOneRound;
  World world(cfg);
  world.partition_at(sim::msec(200), {{0, 1}, {2}});
  world.bcast_at(sim::sec(1), 0, "one-round-a");
  world.heal_at(sim::sec(2));
  world.bcast_at(sim::sec(4), 2, "one-round-b");
  world.run_until(sim::sec(10));

  EXPECT_TRUE(world.check_to_safety().empty());
  const auto& reference = world.stack().process(0).delivered();
  ASSERT_EQ(reference.size(), 2u);
  for (ProcId p = 1; p < 3; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference);
}

TEST(OneRoundFormation, ChurnsMoreThanThreeRound) {
  // The measurable content of footnote 7, as a regression test.
  auto run = [](membership::FormationMode mode) {
    WorldConfig cfg = ring_cfg(4, 17);
    cfg.ring.formation = mode;
    World world(cfg);
    world.partition_at(sim::sec(1), {{0, 1}, {2, 3}});
    world.heal_at(sim::sec(3));
    world.run_until(sim::sec(8));
    EXPECT_TRUE(world.check_vs_safety().empty());
    return world.token_ring()->total_stats().views_installed;
  };
  EXPECT_GT(run(membership::FormationMode::kOneRound),
            run(membership::FormationMode::kThreeRound));
}

TEST(TokenRing, StatsAccumulate) {
  World world(ring_cfg(3, 9));
  world.partition_at(sim::msec(100), {{0, 1}, {2}});
  world.run_until(sim::sec(3));
  const auto stats = world.token_ring()->total_stats();
  EXPECT_GT(stats.tokens_processed, 10u);
  EXPECT_GT(stats.probes_sent, 0u) << "partitioned nodes probe the other side";
  EXPECT_GT(stats.views_installed, 0u);
  EXPECT_GT(stats.proposals, 0u);
}

}  // namespace
}  // namespace vsg
