// VStoTO_p unit tests: each transition of Figures 9-10 exercised against a
// hand-driven fake VS service, including the state-exchange recovery paths.

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hpp"
#include "to/stack.hpp"
#include "trace/recorder.hpp"
#include "vstoto/process.hpp"

namespace vsg::vstoto {
namespace {

// A VS service the test drives by hand: records gpsnd calls per processor.
class FakeVS final : public vs::Service {
 public:
  explicit FakeVS(int n) : n_(n), clients_(static_cast<std::size_t>(n), nullptr) {}
  int size() const override { return n_; }
  void attach(ProcId p, vs::Client& c) override {
    clients_[static_cast<std::size_t>(p)] = &c;
  }
  void gpsnd(ProcId p, vs::Payload m) override {
    sent[static_cast<std::size_t>(p)].push_back(std::move(m));
  }
  // Deliver message m (as sent by src) to q.
  void deliver(ProcId src, ProcId q, const vs::Payload& m) {
    clients_[static_cast<std::size_t>(q)]->on_gprcv(src, m);
  }
  void deliver_all(ProcId src, const vs::Payload& m, const std::set<ProcId>& members) {
    for (ProcId q : members) deliver(src, q, m);
  }
  void make_safe(ProcId src, const vs::Payload& m, const std::set<ProcId>& members) {
    for (ProcId q : members) clients_[static_cast<std::size_t>(q)]->on_safe(src, m);
  }
  void newview(const core::View& v) {
    for (ProcId q : v.members) clients_[static_cast<std::size_t>(q)]->on_newview(v);
  }

  std::vector<std::vector<vs::Payload>> sent{8};

 private:
  int n_;
  std::vector<vs::Client*> clients_;
};

struct Fixture {
  sim::Simulator sim;
  trace::Recorder recorder{sim};
  FakeVS fake{3};
  std::vector<std::unique_ptr<Process>> procs;

  explicit Fixture(int n0 = 3) {
    for (ProcId p = 0; p < 3; ++p) {
      procs.push_back(
          std::make_unique<Process>(p, n0, core::majorities(3), fake, recorder));
      fake.attach(p, *procs[static_cast<std::size_t>(p)]);
    }
  }
  Process& at(ProcId p) { return *procs[static_cast<std::size_t>(p)]; }
};

TEST(Process, InitialStateInP0) {
  Fixture f;
  const auto& st = f.at(0).state();
  ASSERT_TRUE(st.current.has_value());
  EXPECT_EQ(st.current->id, core::ViewId::initial());
  EXPECT_EQ(st.status, PStatus::kNormal);
  EXPECT_EQ(st.highprimary, std::optional<core::ViewId>(core::ViewId::initial()));
  EXPECT_TRUE(f.at(0).primary()) << "P0 = all three is a majority";
}

TEST(Process, InitialStateOutsideP0) {
  Fixture f(/*n0=*/2);
  const auto& st = f.at(2).state();
  EXPECT_FALSE(st.current.has_value());
  EXPECT_FALSE(st.highprimary.has_value());
  EXPECT_FALSE(f.at(2).primary());
}

TEST(Process, BcastLabelsAndSends) {
  Fixture f;
  f.at(0).bcast("hello");
  // label consumed the delay entry, gpsnd shipped the labeled value.
  const auto& st = f.at(0).state();
  EXPECT_TRUE(st.delay.empty());
  EXPECT_TRUE(st.buffer.empty());
  EXPECT_EQ(st.nextseqno, 2u);
  EXPECT_EQ(st.content.size(), 1u);
  ASSERT_EQ(f.fake.sent[0].size(), 1u);
  const auto msg = decode_message(f.fake.sent[0][0]);
  ASSERT_TRUE(msg.has_value());
  const auto& lv = std::get<LabeledValue>(*msg);
  EXPECT_EQ(lv.value, "hello");
  EXPECT_EQ(lv.label.origin, 0);
  EXPECT_EQ(lv.label.seqno, 1u);
}

TEST(Process, BcastWithNoViewStaysInDelay) {
  Fixture f(/*n0=*/2);
  f.at(2).bcast("stuck");
  EXPECT_EQ(f.at(2).state().delay.size(), 1u);
  EXPECT_TRUE(f.fake.sent[2].empty());
}

TEST(Process, PrimaryDeliveryPathConfirmsOnSafe) {
  Fixture f;
  f.at(0).bcast("v");
  const auto payload = f.fake.sent[0][0];
  f.fake.deliver_all(0, payload, {0, 1, 2});
  // Delivered into order everywhere, but not yet confirmed.
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_EQ(f.at(p).state().order.size(), 1u);
    EXPECT_TRUE(f.at(p).delivered().empty());
  }
  f.fake.make_safe(0, payload, {0, 1, 2});
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_EQ(f.at(p).state().nextconfirm, 2u);
    ASSERT_EQ(f.at(p).delivered().size(), 1u);
    EXPECT_EQ(f.at(p).delivered()[0].second, "v");
  }
}

TEST(Process, NonPrimaryRecordsContentButDoesNotOrder) {
  Fixture f;
  // Move 0 and 1 into a minority view {0,1}... of majorities(3), {0,1} IS a
  // majority; use {0} to get a real non-primary.
  const core::View v{core::ViewId{1, 0}, {0}};
  f.fake.newview(v);
  // Establish the singleton view: deliver 0's own summary back.
  ASSERT_EQ(f.fake.sent[0].size(), 1u);
  f.fake.deliver(0, 0, f.fake.sent[0][0]);
  EXPECT_EQ(f.at(0).state().status, PStatus::kNormal);
  EXPECT_FALSE(f.at(0).primary());

  f.at(0).bcast("lonely");
  ASSERT_EQ(f.fake.sent[0].size(), 2u);
  f.fake.deliver(0, 0, f.fake.sent[0][1]);
  EXPECT_EQ(f.at(0).state().content.size(), 1u);
  EXPECT_TRUE(f.at(0).state().order.empty()) << "non-primary must not extend order";
  f.at(0).on_safe(0, f.fake.sent[0][1]);
  EXPECT_TRUE(f.at(0).state().safe_labels.empty()) << "non-primary ignores safe";
  EXPECT_TRUE(f.at(0).delivered().empty());
}

TEST(Process, NewviewResetsPerViewState) {
  Fixture f;
  f.at(0).bcast("a");
  const core::View v{core::ViewId{1, 0}, {0, 1}};
  f.fake.newview(v);
  const auto& st = f.at(0).state();
  EXPECT_EQ(st.status, PStatus::kCollect) << "summary sent immediately, now collecting";
  EXPECT_TRUE(st.buffer.empty());
  EXPECT_TRUE(st.gotstate.empty());
  EXPECT_TRUE(st.safe_labels.empty());
  EXPECT_EQ(st.nextseqno, 1u);
  EXPECT_EQ(st.current->id, v.id);
  // The state-exchange summary went out and carries the old content.
  const auto msg = decode_message(f.fake.sent[0].back());
  ASSERT_TRUE(msg.has_value());
  const auto& x = std::get<core::Summary>(*msg);
  EXPECT_EQ(x.con.size(), 1u);
  EXPECT_EQ(x.high, std::optional<core::ViewId>(core::ViewId::initial()));
}

TEST(Process, EstablishmentAdoptsFullorderInPrimary) {
  Fixture f;
  // 0 has an unconfirmed labeled value from the initial view.
  f.at(0).bcast("z");
  const auto zmsg = f.fake.sent[0][0];
  f.fake.deliver(0, 0, zmsg);  // only 0 saw it

  const core::View v{core::ViewId{1, 0}, {0, 1, 2}};
  f.fake.newview(v);
  // Exchange all three summaries.
  for (ProcId p = 0; p < 3; ++p) {
    const auto summary = f.fake.sent[static_cast<std::size_t>(p)].back();
    for (ProcId q = 0; q < 3; ++q) f.fake.deliver(p, q, summary);
  }
  for (ProcId p = 0; p < 3; ++p) {
    const auto& st = f.at(p).state();
    EXPECT_EQ(st.status, PStatus::kNormal);
    ASSERT_EQ(st.order.size(), 1u) << "fullorder picked up the known label";
    EXPECT_EQ(st.highprimary, std::optional<core::ViewId>(v.id));
    EXPECT_TRUE(st.established.count(v.id)) << "history variable set";
  }
  // Safe exchange completes -> the label becomes safe -> confirm -> deliver.
  for (ProcId p = 0; p < 3; ++p) {
    const auto summary = f.fake.sent[static_cast<std::size_t>(p)].back();
    f.fake.make_safe(p, summary, {0, 1, 2});
  }
  for (ProcId p = 0; p < 3; ++p) {
    ASSERT_EQ(f.at(p).delivered().size(), 1u) << "at " << p;
    EXPECT_EQ(f.at(p).delivered()[0].second, "z");
  }
}

TEST(Process, NonPrimaryEstablishmentAdoptsShortorder) {
  Fixture f;
  const core::View v{core::ViewId{1, 0}, {0}};
  f.fake.newview(v);
  f.fake.deliver(0, 0, f.fake.sent[0][0]);
  const auto& st = f.at(0).state();
  EXPECT_EQ(st.status, PStatus::kNormal);
  // highprimary = maxprimary(gotstate) = g0 (from its own summary).
  EXPECT_EQ(st.highprimary, std::optional<core::ViewId>(core::ViewId::initial()));
}

TEST(Process, UndecodablePayloadIgnored) {
  Fixture f;
  f.at(0).on_gprcv(1, util::Bytes{0xFF, 0x00});
  f.at(0).on_safe(1, util::Bytes{});
  EXPECT_TRUE(f.at(0).state().content.empty());
}

TEST(Process, DuplicateOrderGuard) {
  // Deliver the same labeled value twice (which VS itself would never do):
  // content is a set, and the order must not grow twice.
  Fixture f;
  f.at(0).bcast("v");
  const auto payload = f.fake.sent[0][0];
  f.fake.deliver(0, 1, payload);
  f.fake.deliver(0, 1, payload);
  EXPECT_EQ(f.at(1).state().order.size(), 1u);
  EXPECT_EQ(f.at(1).state().content.size(), 1u);
}

TEST(Process, LocalSummaryReflectsState) {
  Fixture f;
  f.at(0).bcast("v");
  const auto x = f.at(0).local_summary();
  EXPECT_EQ(x.con.size(), 1u);
  EXPECT_EQ(x.next, 1u);
  EXPECT_EQ(x.high, std::optional<core::ViewId>(core::ViewId::initial()));
}

// A full succession of primaries, driven by hand: the representative
// choice must favor the member with the freshest primary history, and the
// confirmed prefix must survive every reconfiguration (the heart of
// Lemmas 6.13/6.18 at unit level).
TEST(Process, PrimarySuccessionPreservesConfirmedPrefixAndPicksFreshRep) {
  Fixture f;
  // Round 1: initial primary view {0,1,2} confirms value "a" from 0.
  f.at(0).bcast("a");
  const auto a_msg = f.fake.sent[0][0];
  f.fake.deliver_all(0, a_msg, {0, 1, 2});
  f.fake.make_safe(0, a_msg, {0, 1, 2});
  for (ProcId p = 0; p < 3; ++p) ASSERT_EQ(f.at(p).delivered().size(), 1u);

  // Round 2: {0,1} forms (still a majority of 3 => primary). 2 is cut off.
  const core::View v2{core::ViewId{1, 0}, {0, 1}};
  f.fake.newview(v2);
  for (ProcId p : {0, 1}) {
    const auto summary = f.fake.sent[static_cast<std::size_t>(p)].back();
    f.fake.deliver(p, 0, summary);
    f.fake.deliver(p, 1, summary);
  }
  EXPECT_EQ(f.at(0).state().highprimary, std::optional<core::ViewId>(v2.id));
  // New value "b" confirmed inside v2.
  f.at(1).bcast("b");
  const auto b_msg = f.fake.sent[1].back();
  f.fake.deliver(1, 0, b_msg);
  f.fake.deliver(1, 1, b_msg);
  f.fake.make_safe(1, b_msg, {0, 1});
  ASSERT_EQ(f.at(0).delivered().size(), 2u);
  EXPECT_EQ(f.at(0).delivered()[1].second, "b");
  // 2 is oblivious: still in the initial view with highprimary g0.
  EXPECT_EQ(f.at(2).state().highprimary,
            std::optional<core::ViewId>(core::ViewId::initial()));

  // Round 3: full merge {0,1,2}. The representative must come from {0,1}
  // (their highprimary v2.id beats 2's g0), so "b" keeps its place and 2
  // catches up on delivery.
  const core::View v3{core::ViewId{2, 0}, {0, 1, 2}};
  f.fake.newview(v3);
  for (ProcId p = 0; p < 3; ++p) {
    const auto summary = f.fake.sent[static_cast<std::size_t>(p)].back();
    for (ProcId q = 0; q < 3; ++q) f.fake.deliver(p, q, summary);
  }
  for (ProcId p = 0; p < 3; ++p) {
    const auto& st = f.at(p).state();
    EXPECT_EQ(st.status, PStatus::kNormal);
    ASSERT_EQ(st.order.size(), 2u) << "confirmed prefix [a, b] survives";
    EXPECT_EQ(st.highprimary, std::optional<core::ViewId>(v3.id));
  }
  for (ProcId p = 0; p < 3; ++p) {
    const auto summary = f.fake.sent[static_cast<std::size_t>(p)].back();
    f.fake.make_safe(p, summary, {0, 1, 2});
  }
  ASSERT_EQ(f.at(2).delivered().size(), 2u) << "2 recovered the full history";
  EXPECT_EQ(f.at(2).delivered()[0].second, "a");
  EXPECT_EQ(f.at(2).delivered()[1].second, "b");
}

// The stale-minority case: a non-primary member accumulates *tentative*
// state that a later primary must order after everything confirmed.
TEST(Process, StaleTentativeOrderLosesToFresherPrimary) {
  Fixture f;
  // 2 gets isolated into a singleton (non-primary) view and receives a
  // labeled value that only it knows (tentative, never ordered).
  const core::View lone{core::ViewId{1, 2}, {2}};
  f.fake.newview(lone);
  f.fake.deliver(2, 2, f.fake.sent[2].back());  // establish the singleton
  f.at(2).bcast("stale");
  const auto stale_msg = f.fake.sent[2].back();
  f.fake.deliver(2, 2, stale_msg);
  EXPECT_TRUE(f.at(2).state().order.empty()) << "non-primary: content only";

  // Meanwhile {0,1} confirms "fresh" in a primary view.
  const core::View duo{core::ViewId{2, 0}, {0, 1}};
  f.fake.newview(duo);
  for (ProcId p : {0, 1}) {
    const auto summary = f.fake.sent[static_cast<std::size_t>(p)].back();
    f.fake.deliver(p, 0, summary);
    f.fake.deliver(p, 1, summary);
  }
  f.at(0).bcast("fresh");
  const auto fresh_msg = f.fake.sent[0].back();
  f.fake.deliver(0, 0, fresh_msg);
  f.fake.deliver(0, 1, fresh_msg);
  f.fake.make_safe(0, fresh_msg, {0, 1});

  // Merge: fullorder = rep's order ("fresh") then remaining labels — 2's
  // "stale" value enters the order after it.
  const core::View all{core::ViewId{3, 0}, {0, 1, 2}};
  f.fake.newview(all);
  for (ProcId p = 0; p < 3; ++p) {
    const auto summary = f.fake.sent[static_cast<std::size_t>(p)].back();
    for (ProcId q = 0; q < 3; ++q) f.fake.deliver(p, q, summary);
  }
  for (ProcId p = 0; p < 3; ++p) {
    const auto summary = f.fake.sent[static_cast<std::size_t>(p)].back();
    f.fake.make_safe(p, summary, {0, 1, 2});
  }
  for (ProcId p = 0; p < 3; ++p) {
    ASSERT_EQ(f.at(p).delivered().size(), 2u) << "at " << p;
    EXPECT_EQ(f.at(p).delivered()[0].second, "fresh") << "confirmed history first";
    EXPECT_EQ(f.at(p).delivered()[1].second, "stale");
  }
}

TEST(Process, DeliveryCallbackFires) {
  Fixture f;
  std::vector<std::string> seen;
  f.at(2).set_delivery([&](ProcId origin, const core::Value& a) {
    EXPECT_EQ(origin, 0);
    seen.push_back(a);
  });
  f.at(0).bcast("cb");
  const auto payload = f.fake.sent[0][0];
  f.fake.deliver_all(0, payload, {0, 1, 2});
  f.fake.make_safe(0, payload, {0, 1, 2});
  EXPECT_EQ(seen, std::vector<std::string>{"cb"});
}

}  // namespace
}  // namespace vsg::vstoto
