// RNG determinism and distribution sanity.

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace vsg::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversTheRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(15);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // The child is deterministic given the parent state...
  Rng b(23);
  Rng child2 = b.split();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child.next(), child2.next());
  // ...and differs from the parent's continuing stream.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == child.next()) ++same;
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace vsg::util
