// Membership/token packet round trips and defensive decoding.

#include <gtest/gtest.h>

#include "membership/messages.hpp"
#include "util/rng.hpp"

namespace vsg::membership {
namespace {

TEST(Messages, CallRoundTrip) {
  const Call c{core::ViewId{7, 2}};
  const auto back = decode_packet(encode_packet(Packet{c}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<Call>(*back).gid, c.gid);
}

TEST(Messages, CallReplyRoundTrip) {
  const CallReply r{core::ViewId{9, 0}};
  const auto back = decode_packet(encode_packet(Packet{r}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<CallReply>(*back).gid, r.gid);
}

TEST(Messages, ViewAnnounceRoundTrip) {
  const ViewAnnounce a{core::View{core::ViewId{3, 1}, {0, 1, 3}}};
  const auto back = decode_packet(encode_packet(Packet{a}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<ViewAnnounce>(*back).view, a.view);
}

TEST(Messages, TokenRoundTrip) {
  Token t;
  t.gid = core::ViewId{5, 0};
  t.lap = 42;
  t.base = 7;
  t.entries = {{0, util::Bytes{1, 2}}, {2, util::Bytes{}}, {1, util::Bytes{9}}};
  t.delivered = {{0, 9}, {1, 8}, {2, 10}};
  const auto back = decode_packet(encode_packet(Packet{t}));
  ASSERT_TRUE(back.has_value());
  const auto& got = std::get<Token>(*back);
  EXPECT_EQ(got.gid, t.gid);
  EXPECT_EQ(got.lap, t.lap);
  EXPECT_EQ(got.base, t.base);
  EXPECT_EQ(got.entries, t.entries);
  EXPECT_EQ(got.delivered, t.delivered);
}

TEST(Messages, EmptyTokenRoundTrip) {
  Token t;
  t.gid = core::ViewId{1, 0};
  const auto back = decode_packet(encode_packet(Packet{t}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(std::get<Token>(*back).entries.empty());
}

TEST(Messages, ProbeRoundTripWithAndWithoutView) {
  const Probe with{core::ViewId{4, 3}};
  auto back = decode_packet(encode_packet(Packet{with}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<Probe>(*back).gid, with.gid);

  const Probe without{std::nullopt};
  back = decode_packet(encode_packet(Packet{without}));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(std::get<Probe>(*back).gid.has_value());
}

TEST(Messages, MeasuredSizeIsExactForEveryPacketType) {
  Token t;
  t.gid = core::ViewId{5, 0};
  t.entries = {{0, util::Bytes{1, 2, 3}}, {1, util::Bytes{}}};
  t.delivered = {{0, 2}, {1, 1}};
  const std::vector<Packet> packets{
      Packet{Call{core::ViewId{7, 2}}},
      Packet{CallReply{core::ViewId{9, 0}}},
      Packet{ViewAnnounce{core::View{core::ViewId{3, 1}, {0, 1, 3}}}},
      Packet{t},
      Packet{Probe{core::ViewId{4, 3}}},
      Packet{Probe{std::nullopt}},
  };
  // encode_packet reserves exactly this much, so the encode is a single
  // allocation (Serde.MeasuredReserveCostsExactlyOneAllocation pins the
  // Encoder side of that claim).
  for (const auto& p : packets)
    EXPECT_EQ(encode_packet(p).size(), encoded_packet_size(p)) << "tag index " << p.index();
}

TEST(Messages, WarmEntriesCacheReencodesIdentically) {
  for (const WireFormat w : {WireFormat::kV1, WireFormat::kV2}) {
    Token t;
    t.gid = core::ViewId{5, 1};
    t.lap = 3;
    t.entries = {{0, util::Bytes{1, 2, 3}}, {2, util::Bytes{4}}};
    t.delivered = {{0, 1}, {2, 2}};
    const Packet pkt{t};
    const auto cold = encode_packet(pkt, w);  // warms the version's cache
    if (w == WireFormat::kV1) {
      ASSERT_FALSE(std::get<Token>(pkt).entries_wire.empty());
    } else {
      ASSERT_FALSE(std::get<Token>(pkt).entries_segs.empty());
      ASSERT_FALSE(std::get<Token>(pkt).entries_segs.front().wire.empty());
    }
    const auto warm = encode_packet(pkt, w);  // splices the cached section
    EXPECT_EQ(warm, cold) << to_string(w);
    EXPECT_EQ(encoded_packet_size(pkt, w), warm.size()) << to_string(w);
  }
}

TEST(Messages, DecodedTokenEntriesAreSlicesOfThePacket) {
  for (const WireFormat w : {WireFormat::kV1, WireFormat::kV2}) {
    Token t;
    t.gid = core::ViewId{2, 0};
    t.entries = {{0, util::Bytes{1, 2, 3}}, {1, util::Bytes{4, 5}}};
    const auto packet = encode_packet(Packet{t}, w);
    const auto back = decode_packet(packet);
    ASSERT_TRUE(back.has_value());
    const auto& got = std::get<Token>(*back);
    for (const auto& [src, payload] : got.entries)
      EXPECT_EQ(payload.id(), packet.id()) << "entry from " << src << " must share storage";
    // Decoding also warms the version-appropriate cache with packet slices.
    if (w == WireFormat::kV1) {
      EXPECT_EQ(got.entries_wire.id(), packet.id());
    } else {
      ASSERT_FALSE(got.entries_segs.empty());
      for (const auto& seg : got.entries_segs) EXPECT_EQ(seg.wire.id(), packet.id());
    }
  }
}

TEST(Messages, UnknownTagRejected) {
  EXPECT_FALSE(decode_packet(util::Bytes{0x42}).has_value());
  EXPECT_FALSE(decode_packet(util::Bytes{}).has_value());
}

TEST(Messages, TruncatedPacketRejected) {
  auto bytes = encode_packet(Packet{Call{core::ViewId{7, 2}}}).to_bytes();
  bytes.pop_back();
  EXPECT_FALSE(decode_packet(bytes).has_value());
}

TEST(Messages, TrailingGarbageRejected) {
  auto bytes = encode_packet(Packet{Probe{std::nullopt}}).to_bytes();
  bytes.push_back(0x01);
  EXPECT_FALSE(decode_packet(bytes).has_value());
}

TEST(Messages, SingleByteCorruptionAlwaysDetected) {
  Token t;
  t.gid = core::ViewId{5, 0};
  t.entries = {{0, util::Bytes{1, 2, 3}}, {1, util::Bytes{4}}};
  t.delivered = {{0, 2}, {1, 1}};
  const auto bytes = encode_packet(Packet{t}).to_bytes();
  // Flip every byte position in turn: the checksum must reject each
  // mutation (payload corruption must never produce a different valid
  // packet).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mutated = bytes;
    mutated[i] ^= 0x5A;
    EXPECT_FALSE(decode_packet(mutated).has_value()) << "byte " << i;
  }
}

class PacketFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketFuzz, RandomBytesNeverCrash) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    util::Bytes buf;
    const auto len = rng.below(64);
    for (std::uint64_t k = 0; k < len; ++k)
      buf.push_back(static_cast<std::uint8_t>(rng.next()));
    (void)decode_packet(buf);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace vsg::membership
