// Token-loss timer regression tests (Section 8 recovery path).
//
// Audit result for the re-arm path in token_ring.cpp: every timer callback
// (launch_tick, token-check, probe) captures the view generation at arm
// time and returns early when the generation moved on, so a timer armed in
// a dead view can neither fire into a new view nor fail to be replaced —
// installing a view always arms a fresh generation's timers. These tests
// pin the observable consequence: a lost token (holder's outgoing links go
// dark mid-circulation) is always recovered via the token-check timeout,
// with no stalled ring and no safety violation, including under view churn.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg::harness {
namespace {

WorldConfig ring_config(int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = seed;
  return cfg;
}

void expect_converged(World& w, int n, std::size_t min_delivered) {
  const auto& reference = w.stack().process(0).delivered();
  EXPECT_GE(reference.size(), min_delivered);
  for (ProcId p = 1; p < n; ++p)
    EXPECT_EQ(w.stack().process(p).delivered(), reference) << "processor " << p;
  EXPECT_TRUE(w.check_to_safety().empty());
  EXPECT_TRUE(w.check_vs_safety().empty());
}

// One processor's outgoing links go dark for a window long past the token
// timeout, so any token it holds or receives is lost. The ring must reform
// and, after the window, deliver traffic from every processor again.
TEST(TokenTimer, LostTokenRecoveredViaTimeout) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    World w(ring_config(4, seed));
    for (ProcId q = 1; q < 4; ++q) {
      w.link_status_at(sim::msec(500), 0, q, sim::Status::kBad);
      w.link_status_at(sim::msec(900), 0, q, sim::Status::kGood);
    }
    for (int k = 0; k < 6; ++k)
      w.bcast_at(sim::msec(300 + 150 * k), static_cast<ProcId>(k % 4),
                 "v" + std::to_string(k));
    w.bcast_at(sim::sec(3), 0, "after-recovery");
    w.run_until(sim::sec(10));
    expect_converged(w, 4, 7);
  }
}

// Same loss window while the membership is also churning (partition during
// the window, heal after): the stale-generation guard must keep old-view
// token-check timers from misfiring into the views formed meanwhile.
TEST(TokenTimer, LossWindowUnderViewChurn) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    World w(ring_config(5, seed));
    for (ProcId q = 0; q < 5; ++q) {
      if (q == 2) continue;
      w.link_status_at(sim::msec(400), 2, q, sim::Status::kBad);
      w.link_status_at(sim::msec(800), 2, q, sim::Status::kGood);
    }
    w.partition_at(sim::msec(600), {{0, 1}, {2, 3, 4}});
    w.heal_at(sim::msec(1200));
    for (int k = 0; k < 8; ++k)
      w.bcast_at(sim::msec(200 + 200 * k), static_cast<ProcId>(k % 5),
                 "c" + std::to_string(k));
    w.run_until(sim::sec(12));
    expect_converged(w, 5, 8);
  }
}

// Back-to-back loss windows: each recovery re-arms the next generation's
// timers; a missing re-arm would stall the second window's recovery.
TEST(TokenTimer, RepeatedLossWindowsKeepRecovering) {
  World w(ring_config(3, 7));
  for (int round = 0; round < 3; ++round) {
    const sim::Time base = sim::msec(400 + 1500 * round);
    for (ProcId q = 1; q < 3; ++q) {
      w.link_status_at(base, 0, q, sim::Status::kBad);
      w.link_status_at(base + sim::msec(400), 0, q, sim::Status::kGood);
    }
    w.bcast_at(base + sim::msec(700), static_cast<ProcId>(round % 3),
               "r" + std::to_string(round));
  }
  w.run_until(sim::sec(12));
  expect_converged(w, 3, 3);
}

}  // namespace
}  // namespace vsg::harness
