// Adversarial input for obs::json::Reader: the exporters' parsers run over
// files an operator hands them (--replay artifacts, repro manifests,
// timeline dumps), so malformed documents must fail cleanly — no guessed
// bytes, no unbounded recursion — and the documented duplicate-key
// semantics must hold.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json_exporter.hpp"
#include "obs/json_util.hpp"
#include "obs/sampler.hpp"

namespace vsg::obs::json {
namespace {

bool skips_clean(const std::string& text) {
  Reader r(text);
  r.skip_value();
  return r.ok() && r.at_end();
}

TEST(Reader, TruncatedArrayFails) {
  EXPECT_FALSE(skips_clean("[1, 2"));
  EXPECT_FALSE(skips_clean("[1, 2,"));
  EXPECT_FALSE(skips_clean("["));
  EXPECT_TRUE(skips_clean("[1, 2]"));
  EXPECT_TRUE(skips_clean("[]"));
}

TEST(Reader, TruncatedObjectFails) {
  EXPECT_FALSE(skips_clean("{\"a\": 1"));
  EXPECT_FALSE(skips_clean("{\"a\":"));
  EXPECT_FALSE(skips_clean("{\"a\" 1}")) << "missing colon";
  EXPECT_TRUE(skips_clean("{\"a\": 1}"));
  EXPECT_TRUE(skips_clean("{}"));
}

TEST(Reader, DeepNestingFailsInsteadOfOverflowingTheStack) {
  // kMaxDepth levels are fine; one more is not; ten thousand must not crash
  // (skip_value recurses per level, so the cap is what stands between a
  // hostile file and stack exhaustion).
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_TRUE(skips_clean(nested(Reader::kMaxDepth)));
  EXPECT_FALSE(skips_clean(nested(Reader::kMaxDepth + 1)));
  EXPECT_FALSE(skips_clean(std::string(10000, '[')));

  std::string objects;
  for (int i = 0; i < 10000; ++i) objects += "{\"k\":";
  EXPECT_FALSE(skips_clean(objects));
}

TEST(Reader, UnknownEscapeIsRejectedNotGuessed) {
  const std::string text = "\"a\\qb\"";
  Reader r(text);
  (void)r.string();
  EXPECT_FALSE(r.ok());
}

TEST(Reader, TruncatedAndNonHexUnicodeEscapesFail) {
  for (const std::string text : {"\"\\u12\"", "\"\\u12zq\"", "\"\\u\"", "\"\\u123"}) {
    Reader r(text);
    (void)r.string();
    EXPECT_FALSE(r.ok()) << text;
  }
}

TEST(Reader, ValidEscapesRoundTrip) {
  const std::string text = "\"q\\\" b\\\\ s\\/ \\b\\f\\n\\r\\t \\u0041\"";
  Reader r(text);
  EXPECT_EQ(r.string(), "q\" b\\ s/ \b\f\n\r\t A");
  EXPECT_TRUE(r.ok());
}

TEST(Reader, UnterminatedStringFails) {
  const std::string text = "\"never closed";
  Reader r(text);
  (void)r.string();
  EXPECT_FALSE(r.ok());
}

TEST(Reader, DuplicateKeysRunTheCallbackPerOccurrence) {
  // The documented contract: duplicates are not rejected; fn fires once per
  // occurrence so map-building parsers get last-wins.
  const std::string text = "{\"a\": 1, \"a\": 2, \"b\": 3}";
  Reader r(text);
  std::vector<std::string> keys;
  std::vector<std::int64_t> values;
  r.object([&](const std::string& k) {
    keys.push_back(k);
    values.push_back(r.integer());
  });
  EXPECT_TRUE(r.ok() && r.at_end());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "a", "b"}));
  EXPECT_EQ(values, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(Reader, IntegerRejectsNonNumbers) {
  const std::string text = "xyz";
  Reader r(text);
  (void)r.integer();
  EXPECT_FALSE(r.ok());
}

// --- the same failure classes through the schema parsers -------------------

TEST(SchemaParsers, RejectTruncatedDocuments) {
  const std::string metrics = JsonExporter::to_json(MetricsSnapshot{}, "x");
  EXPECT_TRUE(JsonExporter::parse(metrics).has_value());
  for (std::size_t cut : {metrics.size() / 4, metrics.size() / 2, metrics.size() - 3})
    EXPECT_FALSE(JsonExporter::parse(metrics.substr(0, cut)).has_value())
        << "cut at " << cut;

  TimeseriesDoc doc;
  doc.interval = sim::msec(100);
  TimeseriesSample s;
  s.at = sim::msec(100);
  s.series = "aggregate";
  s.metrics.counters.emplace_back("ring.token_rotations", 7);
  doc.samples.push_back(s);
  const std::string timeline = write_timeseries(doc);
  EXPECT_TRUE(parse_timeseries(timeline).has_value());
  for (std::size_t cut : {timeline.size() / 4, timeline.size() / 2, timeline.size() - 3})
    EXPECT_FALSE(parse_timeseries(timeline.substr(0, cut)).has_value())
        << "cut at " << cut;
}

TEST(SchemaParsers, RejectWrongSchemaTagAndMalformedHistograms) {
  EXPECT_FALSE(JsonExporter::parse("{\"schema\": \"vsg-metrics-v9\"}").has_value());
  EXPECT_FALSE(parse_timeseries("{\"schema\": \"vsg-metrics-v1\"}").has_value());
  // buckets must be bounds.size() + 1.
  const char* bad_hist =
      "{\"schema\": \"vsg-metrics-v1\", \"histograms\": {\"h\": {\"unit\": \"count\","
      " \"count\": 1, \"sum\": 1, \"min\": 1, \"max\": 1,"
      " \"bounds\": [10, 20], \"buckets\": [1, 0]}}}";
  EXPECT_FALSE(JsonExporter::parse(bad_hist).has_value());
  const char* bad_unit =
      "{\"schema\": \"vsg-metrics-v1\", \"histograms\": {\"h\": {\"unit\": \"furlongs\","
      " \"count\": 0, \"sum\": 0, \"min\": 0, \"max\": 0,"
      " \"bounds\": [10], \"buckets\": [0, 0]}}}";
  EXPECT_FALSE(JsonExporter::parse(bad_unit).has_value());
}

}  // namespace
}  // namespace vsg::obs::json
