// Fault injection: ugly links (drops, unbounded delays, byte corruption)
// and ugly processors (nondeterministic speed). Safety must hold through
// all of it — the paper's safety machine has no timing assumptions — and
// the system must recover once the failure status returns to good.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

TEST(FaultInjection, UglyLinksDropAndDelayButSafetyHolds) {
  WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = 77;
  cfg.link.ugly_drop = 0.4;
  World world(cfg);
  // Make the 2<->3 links ugly for a while.
  world.link_status_at(sim::msec(100), 2, 3, sim::Status::kUgly);
  world.link_status_at(sim::msec(100), 3, 2, sim::Status::kUgly);
  harness::steady_traffic({0, 2}, 10, sim::msec(200), sim::msec(50)).apply(world);
  world.link_status_at(sim::sec(3), 2, 3, sim::Status::kGood);
  world.link_status_at(sim::sec(3), 3, 2, sim::Status::kGood);
  world.run_until(sim::sec(10));

  const auto to_violations = world.check_to_safety();
  EXPECT_TRUE(to_violations.empty()) << to_violations.front();
  const auto vs_violations = world.check_vs_safety();
  EXPECT_TRUE(vs_violations.empty()) << vs_violations.front();
  // Once good again, everything is delivered everywhere.
  const auto& reference = world.stack().process(0).delivered();
  EXPECT_EQ(reference.size(), 20u);
  for (ProcId p = 1; p < 4; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference);
}

TEST(FaultInjection, CorruptedPacketsAreDroppedNotMisinterpreted) {
  WorldConfig cfg;
  cfg.n = 3;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = 79;
  cfg.link.ugly_drop = 0.1;
  cfg.link.ugly_corrupt = 0.8;  // most surviving ugly packets are garbled
  cfg.link.ugly_max_delay = sim::msec(40);
  World world(cfg);
  // All links ugly for two seconds: heavy corruption on the wire.
  for (ProcId p = 0; p < 3; ++p)
    for (ProcId q = 0; q < 3; ++q)
      if (p != q) world.link_status_at(sim::msec(100), p, q, sim::Status::kUgly);
  harness::steady_traffic({0, 1, 2}, 8, sim::msec(200), sim::msec(80)).apply(world);
  world.heal_at(sim::sec(3));
  world.run_until(sim::sec(12));

  EXPECT_GT(world.network()->stats().packets_corrupted, 0u)
      << "the injector must actually have corrupted something";
  const auto to_violations = world.check_to_safety();
  EXPECT_TRUE(to_violations.empty()) << to_violations.front();
  const auto vs_violations = world.check_vs_safety();
  EXPECT_TRUE(vs_violations.empty()) << vs_violations.front();
  // Recovery: all values delivered everywhere after the network is good.
  const auto& reference = world.stack().process(0).delivered();
  EXPECT_EQ(reference.size(), 24u);
  for (ProcId p = 1; p < 3; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference);
}

TEST(FaultInjection, UglyProcessorSlowsButDoesNotCorrupt) {
  WorldConfig cfg;
  cfg.n = 3;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = 83;
  World world(cfg);
  world.proc_status_at(sim::msec(100), 1, sim::Status::kUgly);
  harness::steady_traffic({0, 2}, 10, sim::msec(200), sim::msec(60)).apply(world);
  world.proc_status_at(sim::sec(4), 1, sim::Status::kGood);
  world.run_until(sim::sec(12));

  const auto to_violations = world.check_to_safety();
  EXPECT_TRUE(to_violations.empty()) << to_violations.front();
  const auto vs_violations = world.check_vs_safety();
  EXPECT_TRUE(vs_violations.empty()) << vs_violations.front();
  const auto& reference = world.stack().process(0).delivered();
  EXPECT_EQ(reference.size(), 20u);
  EXPECT_EQ(world.stack().process(1).delivered(), reference)
      << "the slow processor still converges to the common order";
}

TEST(FaultInjection, FlappingProcessorNeverBreaksSafety) {
  WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = 89;
  World world(cfg);
  // Processor 3 flaps bad/good repeatedly while traffic flows.
  for (int k = 0; k < 5; ++k) {
    world.proc_status_at(sim::msec(300 + 600 * k), 3, sim::Status::kBad);
    world.proc_status_at(sim::msec(600 + 600 * k), 3, sim::Status::kGood);
  }
  harness::steady_traffic({0, 1}, 15, sim::msec(200), sim::msec(100)).apply(world);
  world.run_until(sim::sec(15));

  const auto to_violations = world.check_to_safety();
  EXPECT_TRUE(to_violations.empty()) << to_violations.front();
  const auto vs_violations = world.check_vs_safety();
  EXPECT_TRUE(vs_violations.empty()) << vs_violations.front();
  // The quorum side (0,1,2) always delivers everything.
  EXPECT_EQ(world.stack().process(0).delivered().size(), 30u);
}

class FaultInjectionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultInjectionFuzz, MixedUglinessStaysSafe) {
  const auto seed = GetParam();
  WorldConfig cfg;
  cfg.n = 5;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = seed;
  cfg.link.ugly_corrupt = 0.3;
  World world(cfg);
  util::Rng rng(seed * 7919 + 1);

  // Random link status flips including ugly, plus a random ugly processor
  // window, then full stabilization.
  harness::random_churn(5, 15, sim::msec(100), sim::sec(4), {{0, 1, 2, 3, 4}}, rng)
      .apply(world);
  const auto ugly_proc = static_cast<ProcId>(rng.below(5));
  world.proc_status_at(sim::msec(500), ugly_proc, sim::Status::kUgly);
  world.proc_status_at(sim::sec(3), ugly_proc, sim::Status::kGood);
  harness::random_traffic(5, 20, sim::msec(100), sim::sec(6), rng).apply(world);
  world.run_until(sim::sec(18));

  const auto to_violations = world.check_to_safety();
  EXPECT_TRUE(to_violations.empty()) << "seed " << seed << ": " << to_violations.front();
  const auto vs_violations = world.check_vs_safety();
  EXPECT_TRUE(vs_violations.empty()) << "seed " << seed << ": " << vs_violations.front();
  // Everything heals to one group that delivers all 20 values.
  EXPECT_EQ(world.stack().process(0).delivered().size(), 20u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjectionFuzz,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108));

}  // namespace
}  // namespace vsg
