// Checker mutation testing: record a *correct* trace from a real run, then
// apply targeted mutations (drop, duplicate, reorder, forge, cross-wire)
// and assert the checkers flag every one. Guards against vacuously-true
// checkers — each safety property has at least one mutation that violates
// exactly it.

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "spec/to_trace_checker.hpp"
#include "spec/vs_trace_checker.hpp"

namespace vsg {
namespace {

using trace::TimedEvent;

// A known-good trace with plenty of every event kind.
std::vector<TimedEvent> good_trace(std::uint64_t seed = 301) {
  harness::WorldConfig cfg;
  cfg.n = 3;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = seed;
  harness::World world(cfg);
  harness::steady_traffic({0, 1, 2}, 5, sim::msec(50), sim::msec(40)).apply(world);
  world.run_until(sim::sec(3));
  return world.recorder().events();
}

bool vs_ok(const std::vector<TimedEvent>& tr) {
  spec::VSTraceChecker checker(3, 3);
  checker.check_all(tr);
  return checker.ok();
}

bool to_ok(const std::vector<TimedEvent>& tr) {
  spec::TOTraceChecker checker(3);
  checker.check_all(tr);
  return checker.ok();
}

template <typename T>
std::size_t nth_index(const std::vector<TimedEvent>& tr, std::size_t n) {
  std::size_t seen = 0;
  for (std::size_t i = 0; i < tr.size(); ++i)
    if (trace::as<T>(tr[i]) && seen++ == n) return i;
  ADD_FAILURE() << "trace lacks enough events of the requested kind";
  return 0;
}

TEST(Mutation, BaselineIsClean) {
  const auto tr = good_trace();
  EXPECT_TRUE(vs_ok(tr));
  EXPECT_TRUE(to_ok(tr));
}

TEST(Mutation, DuplicatedGprcvCaught) {
  auto tr = good_trace();
  const auto i = nth_index<trace::GprcvEvent>(tr, 2);
  tr.insert(tr.begin() + static_cast<std::ptrdiff_t>(i), tr[i]);
  EXPECT_FALSE(vs_ok(tr)) << "at-most-once / total order must flag the duplicate";
}

TEST(Mutation, DroppedMiddleGprcvCaught) {
  auto tr = good_trace();
  // Drop an early delivery at processor 1 while later ones remain: its
  // sequence is no longer a prefix of the common order.
  std::size_t count_at_1 = 0;
  std::size_t victim = tr.size();
  for (std::size_t i = 0; i < tr.size(); ++i)
    if (const auto* e = trace::as<trace::GprcvEvent>(tr[i]))
      if (e->dst == 1 && count_at_1++ == 1) victim = i;
  ASSERT_LT(victim, tr.size());
  tr.erase(tr.begin() + static_cast<std::ptrdiff_t>(victim));
  EXPECT_FALSE(vs_ok(tr));
}

TEST(Mutation, SwappedGprcvOrderCaught) {
  auto tr = good_trace();
  // Swap two adjacent-in-stream deliveries at the same destination.
  std::size_t first = tr.size(), second = tr.size();
  for (std::size_t i = 0; i < tr.size(); ++i) {
    if (const auto* e = trace::as<trace::GprcvEvent>(tr[i])) {
      if (e->dst != 2) continue;
      if (first == tr.size()) {
        first = i;
      } else {
        second = i;
        break;
      }
    }
  }
  ASSERT_LT(second, tr.size());
  std::swap(tr[first].event, tr[second].event);
  EXPECT_FALSE(vs_ok(tr));
}

TEST(Mutation, ForgedGprcvWithoutSendCaught) {
  auto tr = good_trace();
  const auto i = nth_index<trace::GprcvEvent>(tr, 0);
  auto forged = *trace::as<trace::GprcvEvent>(tr[i]);
  auto mutated = forged.m.to_bytes();
  mutated.push_back(0xEE);  // payload that was never gpsnd
  forged.m = util::Buffer(std::move(mutated));
  tr.push_back({tr.back().at + 1, forged});
  EXPECT_FALSE(vs_ok(tr));
}

TEST(Mutation, PrematureSafeCaught) {
  auto tr = good_trace();
  // Move the first safe event to the very front (before anyone delivered).
  const auto i = nth_index<trace::SafeEvent>(tr, 0);
  const TimedEvent safe = tr[i];
  tr.erase(tr.begin() + static_cast<std::ptrdiff_t>(i));
  tr.insert(tr.begin(), safe);
  EXPECT_FALSE(vs_ok(tr));
}

TEST(Mutation, NonMonotoneNewviewCaught) {
  auto tr = good_trace();
  // Append a newview with a *smaller* id than the initial view is not
  // possible (g0 is minimal), so append the same id twice with different
  // membership instead — uniqueness violation.
  tr.push_back({tr.back().at + 1,
                trace::NewViewEvent{0, core::View{core::ViewId::initial(), {0}}}});
  EXPECT_FALSE(vs_ok(tr));
}

TEST(Mutation, SelfExclusionNewviewCaught) {
  auto tr = good_trace();
  tr.push_back({tr.back().at + 1,
                trace::NewViewEvent{2, core::View{core::ViewId{9, 0}, {0, 1}}}});
  EXPECT_FALSE(vs_ok(tr));
}

TEST(Mutation, DuplicatedBrcvCaught) {
  auto tr = good_trace();
  const auto i = nth_index<trace::BrcvEvent>(tr, 1);
  tr.insert(tr.begin() + static_cast<std::ptrdiff_t>(i), tr[i]);
  EXPECT_FALSE(to_ok(tr));
}

TEST(Mutation, CrossWiredBrcvValueCaught) {
  auto tr = good_trace();
  const auto i = nth_index<trace::BrcvEvent>(tr, 0);
  auto* e = std::get_if<trace::BrcvEvent>(&tr[i].event);
  e->a = "never-broadcast";
  EXPECT_FALSE(to_ok(tr));
}

TEST(Mutation, WrongOriginBrcvCaught) {
  auto tr = good_trace();
  const auto i = nth_index<trace::BrcvEvent>(tr, 0);
  auto* e = std::get_if<trace::BrcvEvent>(&tr[i].event);
  e->origin = (e->origin + 1) % 3;
  EXPECT_FALSE(to_ok(tr));
}

TEST(Mutation, DroppedBcastCaught) {
  auto tr = good_trace();
  const auto i = nth_index<trace::BcastEvent>(tr, 0);
  tr.erase(tr.begin() + static_cast<std::ptrdiff_t>(i));
  EXPECT_FALSE(to_ok(tr)) << "its deliveries now lack a cause";
}

TEST(Mutation, ReorderedPerSenderDeliveriesCaught) {
  auto tr = good_trace();
  // Find two brcv events at the same destination from the same origin and
  // swap them: per-sender FIFO broken.
  std::size_t first = tr.size(), second = tr.size();
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const auto* e = trace::as<trace::BrcvEvent>(tr[i]);
    if (e == nullptr || e->dest != 0 || e->origin != 1) continue;
    if (first == tr.size()) {
      first = i;
    } else {
      second = i;
      break;
    }
  }
  ASSERT_LT(second, tr.size());
  std::swap(tr[first].event, tr[second].event);
  EXPECT_FALSE(to_ok(tr));
}

}  // namespace
}  // namespace vsg
