// Stability premise analysis (shared by TO-property and VS-property).

#include <gtest/gtest.h>

#include "props/stability.hpp"

namespace vsg::props {
namespace {

trace::TimedEvent link(sim::Time at, ProcId p, ProcId q, sim::Status s) {
  return {at, sim::StatusEvent{at, true, p, q, s}};
}
trace::TimedEvent proc(sim::Time at, ProcId p, sim::Status s) {
  return {at, sim::StatusEvent{at, false, p, kNoProc, s}};
}

TEST(Stability, AllGoodWholeGroupPremiseHolds) {
  // Default statuses are good; Q = everyone => premise holds with l = 0.
  const auto info = analyze_stability({}, {0, 1, 2}, 3);
  EXPECT_TRUE(info.premise_holds);
  EXPECT_EQ(info.l, 0);
}

TEST(Stability, AllGoodProperSubsetFails) {
  // Q = {0,1} but links to 2 are good => boundary not bad => premise fails.
  const auto info = analyze_stability({}, {0, 1}, 3);
  EXPECT_FALSE(info.premise_holds);
  EXPECT_NE(info.why_not.find("boundary"), std::string::npos);
}

TEST(Stability, ConsistentPartitionHolds) {
  std::vector<trace::TimedEvent> tr{
      link(100, 0, 2, sim::Status::kBad), link(100, 2, 0, sim::Status::kBad),
      link(100, 1, 2, sim::Status::kBad), link(100, 2, 1, sim::Status::kBad)};
  const auto info = analyze_stability(tr, {0, 1}, 3);
  EXPECT_TRUE(info.premise_holds);
  EXPECT_EQ(info.l, 100);
}

TEST(Stability, OneWayCutIsNotConsistent) {
  std::vector<trace::TimedEvent> tr{link(100, 0, 2, sim::Status::kBad),
                                    link(100, 1, 2, sim::Status::kBad),
                                    link(100, 2, 1, sim::Status::kBad)};
  // (2,0) still good: boundary pair not bad both ways.
  EXPECT_FALSE(analyze_stability(tr, {0, 1}, 3).premise_holds);
}

TEST(Stability, BadProcessorInQFails) {
  std::vector<trace::TimedEvent> tr{proc(10, 0, sim::Status::kBad)};
  EXPECT_FALSE(analyze_stability(tr, {0, 1, 2}, 3).premise_holds);
}

TEST(Stability, UglyIntraLinkFails) {
  std::vector<trace::TimedEvent> tr{link(5, 0, 1, sim::Status::kUgly)};
  EXPECT_FALSE(analyze_stability(tr, {0, 1, 2}, 3).premise_holds);
}

TEST(Stability, LIsLastEventTouchingQ) {
  std::vector<trace::TimedEvent> tr{
      link(50, 0, 2, sim::Status::kBad),  link(60, 2, 0, sim::Status::kBad),
      link(70, 1, 2, sim::Status::kBad),  link(200, 2, 1, sim::Status::kBad),
  };
  const auto info = analyze_stability(tr, {0, 1}, 3);
  EXPECT_TRUE(info.premise_holds);
  EXPECT_EQ(info.l, 200);
}

TEST(Stability, EventsNotTouchingQDoNotMoveL) {
  // Flips wholly outside Q = {0,1} (between 2 and 3) don't count.
  std::vector<trace::TimedEvent> tr{
      link(10, 0, 2, sim::Status::kBad), link(10, 2, 0, sim::Status::kBad),
      link(10, 0, 3, sim::Status::kBad), link(10, 3, 0, sim::Status::kBad),
      link(10, 1, 2, sim::Status::kBad), link(10, 2, 1, sim::Status::kBad),
      link(10, 1, 3, sim::Status::kBad), link(10, 3, 1, sim::Status::kBad),
      link(500, 2, 3, sim::Status::kUgly),  // outside Q entirely
  };
  const auto info = analyze_stability(tr, {0, 1}, 4);
  EXPECT_TRUE(info.premise_holds);
  EXPECT_EQ(info.l, 10);
}

TEST(Stability, RecoveryToGoodCounts) {
  // Q-member flaps bad then good again: premise holds, l = recovery time.
  std::vector<trace::TimedEvent> tr{
      proc(100, 1, sim::Status::kBad),
      proc(300, 1, sim::Status::kGood),
  };
  const auto info = analyze_stability(tr, {0, 1, 2}, 3);
  EXPECT_TRUE(info.premise_holds);
  EXPECT_EQ(info.l, 300);
}

}  // namespace
}  // namespace vsg::props
