// Event queue: time ordering, FIFO tie-breaking, cancellation.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace vsg::sim {
namespace {

TEST(EventQueue, EmptyQueue) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kForever);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> ran;
  q.schedule(30, [&] { ran.push_back(3); });
  q.schedule(10, [&] { ran.push_back(1); });
  q.schedule(20, [&] { ran.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeRunsFifo) {
  EventQueue q;
  std::vector<int> ran;
  for (int i = 0; i < 5; ++i) q.schedule(100, [&ran, i] { ran.push_back(i); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsEventTime) {
  EventQueue q;
  q.schedule(77, [] {});
  EXPECT_EQ(q.pop_and_run(), 77);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(10, [&] { ran = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelMiddleEventOnly) {
  EventQueue q;
  std::vector<int> ran;
  q.schedule(10, [&] { ran.push_back(1); });
  const EventId id = q.schedule(20, [&] { ran.push_back(2); });
  q.schedule(30, [&] { ran.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelUnknownOrSpentIdIsNoop) {
  EventQueue q;
  q.cancel(999);
  const EventId id = q.schedule(1, [] {});
  q.pop_and_run();
  q.cancel(id);  // already ran
  EXPECT_TRUE(q.empty());
}

// Regression: cancel() of an id not in the heap used to park the id in the
// cancelled set forever, so pending() (heap size minus cancelled size)
// underflowed to ~2^64 and empty()/next_time() disagreed with it.
TEST(EventQueue, PendingSurvivesStrayCancels) {
  EventQueue q;
  q.cancel(kNoEvent);
  q.cancel(12345);  // never scheduled
  EXPECT_EQ(q.pending(), 0u);

  const EventId spent = q.schedule(1, [] {});
  q.pop_and_run();
  q.cancel(spent);  // already ran
  EXPECT_EQ(q.pending(), 0u);

  q.schedule(10, [] {});
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(id);
  q.cancel(id);  // idempotent: the set dedups, pending stays consistent
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.pop_and_run(), 20);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelAfterLazyDropIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  q.cancel(id);
  EXPECT_TRUE(q.empty());  // forces the lazy drop of the cancelled head
  q.cancel(id);            // id has left the heap; must not re-mark
  q.schedule(5, [] {});
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<int> ran;
  q.schedule(10, [&] {
    ran.push_back(1);
    q.schedule(15, [&] { ran.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace vsg::sim
