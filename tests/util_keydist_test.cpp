// util::KeyDist: the seeded Zipf / uniform key generator behind the sharded
// throughput workload. Exactness matters more than speed here — the
// distribution is an inverse-CDF table, so the statistical checks can be
// tight: empirical frequencies must track probability() closely, and the
// same seed must reproduce the same key stream bit-for-bit.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/keydist.hpp"
#include "util/rng.hpp"

namespace vsg::util {
namespace {

TEST(KeyDist, RejectsDegenerateParameters) {
  EXPECT_THROW(KeyDist(0, 1.0), std::invalid_argument);
  EXPECT_THROW(KeyDist(8, -0.5), std::invalid_argument);
}

TEST(KeyDist, ProbabilitiesSumToOne) {
  for (double s : {0.0, 0.5, 1.0, 1.5}) {
    const KeyDist dist(64, s);
    double sum = 0;
    for (std::uint64_t r = 0; r < 64; ++r) sum += dist.probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "s=" << s;
  }
}

TEST(KeyDist, ZipfRanksAreMonotonicallyLessLikely) {
  const KeyDist dist(100, 1.2);
  for (std::uint64_t r = 1; r < 100; ++r)
    EXPECT_LT(dist.probability(r), dist.probability(r - 1)) << "rank " << r;
  // Exact head probability: p(0) = 1 / sum_{r=1..100} r^-1.2.
  double norm = 0;
  for (int r = 1; r <= 100; ++r) norm += std::pow(r, -1.2);
  EXPECT_NEAR(dist.probability(0), 1.0 / norm, 1e-9);
}

TEST(KeyDist, EmpiricalFrequenciesMatchTheTable) {
  const KeyDist dist(32, 1.0);
  Rng rng(20260808);
  const int draws = 200'000;
  std::vector<int> counts(32, 0);
  for (int i = 0; i < draws; ++i) ++counts[dist.next(rng)];
  // Every rank's empirical frequency within 3 standard errors + epsilon of
  // its exact probability (flaky-proof: the seed is fixed).
  for (std::uint64_t r = 0; r < 32; ++r) {
    const double p = dist.probability(r);
    const double freq = static_cast<double>(counts[r]) / draws;
    const double sigma = std::sqrt(p * (1 - p) / draws);
    EXPECT_NEAR(freq, p, 3 * sigma + 1e-3) << "rank " << r;
  }
  // The skew is real: rank 0 drawn several times more often than rank 31.
  EXPECT_GT(counts[0], 5 * counts[31]);
}

TEST(KeyDist, UniformModeCoversAllKeysEvenly) {
  const KeyDist dist(16, 0.0);
  Rng rng(77);
  std::vector<int> counts(16, 0);
  const int draws = 160'000;
  for (int i = 0; i < draws; ++i) ++counts[dist.next(rng)];
  for (std::uint64_t r = 0; r < 16; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / draws, 1.0 / 16, 0.01) << "rank " << r;
    EXPECT_DOUBLE_EQ(dist.probability(r), 1.0 / 16);
  }
}

TEST(KeyDist, SameSeedSameStream) {
  const KeyDist dist(512, 1.1);
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(dist.next(a), dist.next(b)) << "draw " << i;
}

TEST(KeyDist, KeyNamesAreStable) {
  EXPECT_EQ(KeyDist::key_name(0), "k0");
  EXPECT_EQ(KeyDist::key_name(511), "k511");
}

}  // namespace
}  // namespace vsg::util
