// TOTraceChecker: accepts exactly the TO-machine behaviours — common total
// order, per-receiver prefixes, per-sender FIFO, integrity.

#include <gtest/gtest.h>

#include "spec/to_trace_checker.hpp"

namespace vsg::spec {
namespace {

using trace::BcastEvent;
using trace::BrcvEvent;
using trace::TimedEvent;

std::vector<TimedEvent> t(std::initializer_list<trace::Event> events) {
  std::vector<TimedEvent> out;
  sim::Time at = 0;
  for (auto& e : events) out.push_back({at++, e});
  return out;
}

TEST(TOTraceChecker, EmptyTraceIsSafe) {
  TOTraceChecker c(2);
  EXPECT_TRUE(c.ok());
}

TEST(TOTraceChecker, SimpleBroadcastDelivery) {
  TOTraceChecker c(2);
  c.check_all(t({BcastEvent{0, "a"}, BrcvEvent{0, 0, "a"}, BrcvEvent{0, 1, "a"}}));
  EXPECT_TRUE(c.ok());
  ASSERT_EQ(c.global_order().size(), 1u);
  EXPECT_EQ(c.delivered(0), 1u);
  EXPECT_EQ(c.delivered(1), 1u);
}

TEST(TOTraceChecker, DeliveryWithoutBcastFlagged) {
  TOTraceChecker c(2);
  c.check_all(t({BrcvEvent{0, 1, "ghost"}}));
  EXPECT_FALSE(c.ok());
}

TEST(TOTraceChecker, DivergentOrdersFlagged) {
  TOTraceChecker c(3);
  c.check_all(t({
      BcastEvent{0, "a"},
      BcastEvent{1, "b"},
      BrcvEvent{0, 2, "a"},  // 2 sees a first -> common order starts "a"
      BrcvEvent{1, 0, "b"},  // 0 sees b first -> divergence
  }));
  EXPECT_FALSE(c.ok());
}

TEST(TOTraceChecker, PrefixDeliveryIsFine) {
  TOTraceChecker c(3);
  c.check_all(t({
      BcastEvent{0, "a"},
      BcastEvent{1, "b"},
      BrcvEvent{0, 2, "a"},
      BrcvEvent{1, 2, "b"},
      BrcvEvent{0, 0, "a"},  // 0 is one behind: fine
  }));
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.global_order().size(), 2u);
}

TEST(TOTraceChecker, PerSenderFifoViolationFlagged) {
  TOTraceChecker c(2);
  c.check_all(t({
      BcastEvent{0, "first"},
      BcastEvent{0, "second"},
      BrcvEvent{0, 1, "second"},  // 0's second value ordered before its first
  }));
  EXPECT_FALSE(c.ok());
}

TEST(TOTraceChecker, DuplicateDeliveryFlagged) {
  TOTraceChecker c(2);
  c.check_all(t({
      BcastEvent{0, "a"},
      BrcvEvent{0, 1, "a"},
      BrcvEvent{0, 1, "a"},  // delivered twice at 1
  }));
  EXPECT_FALSE(c.ok());
}

TEST(TOTraceChecker, RepeatedValuesBySameSenderAreFine) {
  TOTraceChecker c(2);
  c.check_all(t({
      BcastEvent{0, "x"},
      BcastEvent{0, "x"},
      BrcvEvent{0, 1, "x"},
      BrcvEvent{0, 1, "x"},  // two distinct broadcasts of equal value
  }));
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.global_order().size(), 2u);
}

TEST(TOTraceChecker, SkippingAPositionFlagged) {
  TOTraceChecker c(3);
  c.check_all(t({
      BcastEvent{0, "a"},
      BcastEvent{1, "b"},
      BrcvEvent{0, 2, "a"},
      BrcvEvent{1, 2, "b"},
      BrcvEvent{1, 0, "b"},  // 0 skips "a": not a prefix
  }));
  EXPECT_FALSE(c.ok());
}

TEST(TOTraceChecker, InterleavedSendersOneCommonOrder) {
  TOTraceChecker c(3);
  c.check_all(t({
      BcastEvent{0, "a1"}, BcastEvent{1, "b1"}, BcastEvent{0, "a2"},
      BrcvEvent{1, 0, "b1"}, BrcvEvent{0, 0, "a1"}, BrcvEvent{0, 0, "a2"},
      BrcvEvent{1, 1, "b1"}, BrcvEvent{0, 1, "a1"}, BrcvEvent{0, 1, "a2"},
      BrcvEvent{1, 2, "b1"}, BrcvEvent{0, 2, "a1"},
  }));
  EXPECT_TRUE(c.ok());
  ASSERT_EQ(c.global_order().size(), 3u);
  EXPECT_EQ(c.global_order()[0].second, "b1");
  EXPECT_EQ(c.delivered(2), 2u);
}

TEST(TOTraceChecker, ViolationMessagesAreDescriptive) {
  TOTraceChecker c(2);
  c.check_all(t({BrcvEvent{0, 1, "ghost"}}));
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.violations().front().find("no corresponding bcast"), std::string::npos);
}

}  // namespace
}  // namespace vsg::spec
