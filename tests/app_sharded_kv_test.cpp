// ShardedKV (key-partitioned replicated memory over K TO shards) and the
// CrossShardChecker that judges its combined histories. The KV tests run a
// real two-shard World end to end; the checker tests hand-build small
// histories so each violation class is exercised in isolation.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "app/seqcst_checker.hpp"
#include "app/sharded_kv.hpp"
#include "harness/world.hpp"

namespace vsg::app {
namespace {

harness::World make_world(int shards, std::uint64_t seed = 11) {
  harness::WorldConfig cfg;
  cfg.n = 3;
  cfg.shards = shards;
  cfg.seed = seed;
  return harness::World(std::move(cfg));
}

std::vector<to::Service*> services_of(harness::World& world) {
  std::vector<to::Service*> services;
  for (int k = 0; k < world.shards(); ++k) services.push_back(&world.stack(k));
  return services;
}

TEST(ShardedKV, RoutingMatchesTheRouterAndIsStable) {
  harness::World world = make_world(2);
  auto services = services_of(world);
  ShardedKV kv(services);
  ASSERT_EQ(kv.shards(), 2);
  EXPECT_EQ(kv.n(), 3);
  ShardRouter reference(2, 3);
  for (int i = 0; i < 64; ++i) {
    const std::string key = "key" + std::to_string(i);
    const int shard = kv.shard_of(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 2);
    EXPECT_EQ(shard, reference.shard_of(key)) << key;
    EXPECT_EQ(shard, kv.shard_of(key)) << "placement must be stable: " << key;
  }
}

TEST(ShardedKV, WritesLandOnlyOnTheOwningShard) {
  harness::World world = make_world(2);
  auto services = services_of(world);
  ShardedKV kv(services);
  const int keys = 16;
  world.simulator().at(sim::sec(1), [&] {
    for (int i = 0; i < keys; ++i)
      kv.write(static_cast<ProcId>(i % 3), "key" + std::to_string(i), std::to_string(i));
  });
  world.run_until(sim::sec(15));

  std::size_t total = 0;
  for (int k = 0; k < 2; ++k) {
    for (ProcId p = 0; p < 3; ++p) {
      for (const auto& w : kv.shard(k).applied(p))
        EXPECT_EQ(kv.shard_of(w.key), k) << w.key << " applied on the wrong shard";
      EXPECT_EQ(kv.shard(k).applied(p).size(), kv.shard(k).applied(0).size());
    }
    total += kv.shard(k).applied(0).size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(keys)) << "every write applied exactly once";
  EXPECT_EQ(kv.total_applied(0), static_cast<std::size_t>(keys));
  EXPECT_EQ(kv.writes_in_flight(0), 0u);
  for (int i = 0; i < keys; ++i)
    EXPECT_EQ(kv.read(2, "key" + std::to_string(i)), std::to_string(i));
  EXPECT_EQ(kv.read(0, "nope"), std::nullopt);
}

TEST(ShardedKV, BarrierFiresAfterThePrecedingWriteApplies) {
  harness::World world = make_world(2);
  auto services = services_of(world);
  ShardedKV kv(services);
  // A key per shard so barrier_for exercises the routing path too.
  std::string k0, k1;
  for (int i = 0; k0.empty() || k1.empty(); ++i) {
    const std::string key = "b" + std::to_string(i);
    (kv.shard_of(key) == 0 ? k0 : k1) = key;
  }

  bool fired0 = false, fired1 = false;
  world.simulator().at(sim::sec(1), [&] {
    kv.write(0, k0, "v0");
    kv.write(0, k1, "v1");
    EXPECT_EQ(kv.writes_in_flight(0), 2u);
    // Writer-side fence: the marker follows the write in p0's per-sender
    // FIFO, so the callback must observe the write applied.
    kv.barrier_for(k0, 0, [&](std::size_t applied) {
      fired0 = true;
      EXPECT_GE(applied, 1u);
      EXPECT_EQ(kv.read(0, k0), "v0") << "barrier fired before the write applied";
    });
  });
  // Reader-side fence at another processor, issued once the writes have
  // long since been ordered.
  world.simulator().at(sim::sec(10), [&] {
    kv.barrier_for(k1, 1, [&](std::size_t) {
      fired1 = true;
      EXPECT_EQ(kv.read(1, k1), "v1");
    });
  });
  world.run_until(sim::sec(20));
  EXPECT_TRUE(fired0);
  EXPECT_TRUE(fired1);
  EXPECT_EQ(kv.writes_in_flight(0), 0u);
}

TEST(ShardedKV, SingleShardDegeneratesToPlainReplicatedKV) {
  harness::World world = make_world(1);
  auto services = services_of(world);
  ShardedKV kv(services);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(kv.shard_of("key" + std::to_string(i)), 0);
  world.simulator().at(sim::sec(1), [&] { kv.write(1, "a", "1"); });
  world.run_until(sim::sec(10));
  EXPECT_EQ(kv.total_applied(2), 1u);
  EXPECT_EQ(kv.read(2, "a"), "1");
}

// --- CrossShardChecker ---------------------------------------------------

TEST(CrossShardChecker, CleanCrossShardHistoryPasses) {
  CrossShardChecker checker(2);
  // p0 writes x@0 then y@1; p1 reads y then x, both present — the witness
  // serialization W(x) W(y) R(y) R(x) satisfies every edge.
  checker.on_write(0, 0, "x", "1");
  checker.on_write(0, 1, "y", "1");
  checker.on_read(1, 1, "y", "1", 1);
  checker.on_read(1, 0, "x", "1", 1);
  checker.on_order(0, AppliedWrite{0, "x", "1"});
  checker.on_order(1, AppliedWrite{0, "y", "1"});
  EXPECT_TRUE(checker.ok()) << checker.check().front();
}

TEST(CrossShardChecker, ClassicTwoShardAnomalyIsACycle) {
  CrossShardChecker checker(2);
  // The motivating anomaly: p1 observes y=1 but then misses x — no single
  // serialization orders W(x) -po-> W(y) -rf-> R(y) -po-> R(x) -fr-> W(x).
  checker.on_write(0, 0, "x", "1");
  checker.on_write(0, 1, "y", "1");
  checker.on_read(1, 1, "y", "1", 1);
  checker.on_read(1, 0, "x", std::nullopt, 0);
  checker.on_order(0, AppliedWrite{0, "x", "1"});
  checker.on_order(1, AppliedWrite{0, "y", "1"});
  const auto& violations = checker.check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations.front().find("ordering cycle"), std::string::npos)
      << violations.front();
  EXPECT_NE(violations.front().find("R(x)"), std::string::npos) << violations.front();
  // check() is memoized — a second call returns the identical verdict.
  EXPECT_EQ(&checker.check(), &violations);
}

TEST(CrossShardChecker, SubmittedButNeverOrderedWriteIsFlagged) {
  CrossShardChecker checker(2);
  checker.on_write(0, 0, "x", "1");
  const auto& violations = checker.check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations.front().find("never ordered"), std::string::npos);
}

TEST(CrossShardChecker, OrderViolatingSubmissionFifoIsFlagged) {
  CrossShardChecker checker(1);
  checker.on_write(0, 0, "a", "1");
  checker.on_write(0, 0, "b", "2");
  // The shard claims it ordered p0's writes b-then-a: per-sender FIFO broken.
  checker.on_order(0, AppliedWrite{0, "b", "2"});
  const auto& violations = checker.check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("does not match the submission history"),
            std::string::npos)
      << violations.front();
}

TEST(CrossShardChecker, ReadDisagreeingWithItsShardPrefixIsFlagged) {
  CrossShardChecker checker(1);
  checker.on_write(0, 0, "x", "1");
  checker.on_read(1, 0, "x", "2", 1);  // prefix of length 1 says x='1'
  checker.on_order(0, AppliedWrite{0, "x", "1"});
  const auto& violations = checker.check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations.front().find("disagrees with its shard prefix"), std::string::npos);
}

}  // namespace
}  // namespace vsg::app
