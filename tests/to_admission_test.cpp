// Sender-side admission gate (docs/FLOWCONTROL.md): trysend sheds at the
// backlog limit, bcast defers and drains in FIFO order as the ring frees
// capacity, the to.admission_wait histogram records every admitted send's
// deferral time, and an ungated Stack registers none of the gate metrics
// (default worlds stay bit-identical to pre-gate builds).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/world.hpp"
#include "to/service.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig gated_cfg(int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = seed;
  cfg.ring.max_entries_per_pass = 1;  // slow drain: one admission per pass
  cfg.ring.admission_max_backlog = 2;
  return cfg;
}

bool has_counter(const obs::MetricsSnapshot& s, const std::string& name) {
  return std::any_of(s.counters.begin(), s.counters.end(),
                     [&](const auto& e) { return e.first == name; });
}

bool has_histogram(const obs::MetricsSnapshot& s, const std::string& name) {
  return std::any_of(s.histograms.begin(), s.histograms.end(),
                     [&](const auto& h) { return h.name == name; });
}

TEST(Admission, TrysendShedsAtTheBacklogLimit) {
  World world(gated_cfg(3, 21));
  int delivered = 0;
  to::CallbackClient tap([&](ProcId, const core::Value&) { ++delivered; });
  world.stack().attach(1, tap);

  int accepted = 0;
  world.simulator().at(sim::sec(1), [&] {
    for (int i = 0; i < 10; ++i)
      if (world.stack().trysend(0, "v" + std::to_string(i))) ++accepted;
  });
  world.run_until(sim::sec(8));

  // Two admissions fill the backlog (limit 2); the other eight shed.
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(world.metrics().counter("ring.sends_shed").value(), 8u);
  EXPECT_EQ(world.metrics().counter("ring.sends_deferred").value(), 0u);
  EXPECT_EQ(delivered, 2) << "shed sends are gone, admitted ones deliver";
}

TEST(Admission, BcastDefersAndDrainsInFifoOrder) {
  World world(gated_cfg(3, 22));
  std::vector<std::string> delivered;
  to::CallbackClient tap(
      [&](ProcId, const core::Value& a) { delivered.push_back(a); });
  world.stack().attach(1, tap);

  world.simulator().at(sim::sec(1), [&] {
    for (int i = 0; i < 10; ++i) world.stack().bcast(0, "v" + std::to_string(i));
  });
  world.run_until(sim::sec(10));

  // Defer policy never drops: all ten deliver, in submission order.
  ASSERT_EQ(delivered.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(delivered[static_cast<std::size_t>(i)],
                                         "v" + std::to_string(i));
  EXPECT_EQ(world.metrics().counter("ring.sends_deferred").value(), 8u);
  EXPECT_EQ(world.metrics().counter("ring.sends_shed").value(), 0u);
  // Every admission records its wait: two immediate (0), eight positive.
  const auto& wait = world.metrics().histogram("to.admission_wait");
  EXPECT_EQ(wait.count(), 10u);
  EXPECT_EQ(wait.min(), 0);
  EXPECT_GT(wait.sum(), 0);
}

TEST(Admission, UngatedTrysendIsBcastAndRegistersNoGateMetrics) {
  WorldConfig cfg;
  cfg.n = 3;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = 23;
  World world(cfg);
  int delivered = 0;
  to::CallbackClient tap([&](ProcId, const core::Value&) { ++delivered; });
  world.stack().attach(1, tap);

  world.simulator().at(sim::sec(1), [&] {
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(world.stack().trysend(0, "v"));
  });
  world.run_until(sim::sec(6));

  EXPECT_EQ(delivered, 5) << "no gate: trysend is exactly bcast";
  const auto snap = world.metrics().snapshot();
  EXPECT_FALSE(has_counter(snap, "ring.sends_shed"));
  EXPECT_FALSE(has_counter(snap, "ring.sends_deferred"));
  EXPECT_FALSE(has_histogram(snap, "to.admission_wait"));
}

}  // namespace
}  // namespace vsg
