// Timeline report construction.

#include <gtest/gtest.h>

#include "harness/timeline.hpp"
#include "harness/world.hpp"

namespace vsg::harness {
namespace {

using trace::TimedEvent;

TEST(Timeline, EmptyTraceHasInitialIntervals) {
  const auto tl = build_timeline({}, 3, 2);
  ASSERT_EQ(tl.intervals.size(), 2u) << "one open interval per P0 member";
  EXPECT_EQ(tl.intervals[0].view, core::initial_view(2));
  EXPECT_EQ(tl.intervals[0].to, sim::kForever);
  EXPECT_EQ(tl.bcasts, 0u);
}

TEST(Timeline, NewviewClosesAndOpensIntervals) {
  const core::View v1{core::ViewId{1, 0}, {0, 1}};
  std::vector<TimedEvent> tr{
      {100, trace::NewViewEvent{0, v1}},
      {150, trace::NewViewEvent{1, v1}},
  };
  const auto tl = build_timeline(tr, 2, 2);
  ASSERT_EQ(tl.intervals.size(), 4u);
  // Processor 0: [0,100) initial, [100,end) v1.
  EXPECT_EQ(tl.intervals[0].p, 0);
  EXPECT_EQ(tl.intervals[0].to, 100);
  EXPECT_EQ(tl.intervals[1].view, v1);
  EXPECT_EQ(tl.intervals[1].from, 100);
  EXPECT_EQ(tl.intervals[1].to, sim::kForever);
  EXPECT_EQ(tl.intervals[2].p, 1);
  EXPECT_EQ(tl.intervals[2].to, 150);
}

TEST(Timeline, CountsAttributeToOpenInterval) {
  const core::View v1{core::ViewId{1, 0}, {0}};
  std::vector<TimedEvent> tr{
      {10, trace::GprcvEvent{0, 0, util::Bytes{1}}},
      {20, trace::NewViewEvent{0, v1}},
      {30, trace::GprcvEvent{0, 0, util::Bytes{2}}},
      {40, trace::SafeEvent{0, 0, util::Bytes{2}}},
  };
  const auto tl = build_timeline(tr, 1, 1);
  ASSERT_EQ(tl.intervals.size(), 2u);
  EXPECT_EQ(tl.intervals[0].gprcvs, 1u);
  EXPECT_EQ(tl.intervals[0].safes, 0u);
  EXPECT_EQ(tl.intervals[1].gprcvs, 1u);
  EXPECT_EQ(tl.intervals[1].safes, 1u);
}

TEST(Timeline, FailureEventsCollected) {
  std::vector<TimedEvent> tr{
      {5, sim::StatusEvent{5, true, 0, 1, sim::Status::kBad}},
      {9, sim::StatusEvent{9, false, 1, kNoProc, sim::Status::kUgly}},
  };
  const auto tl = build_timeline(tr, 2, 2);
  ASSERT_EQ(tl.failures.size(), 2u);
  EXPECT_TRUE(tl.failures[0].is_link);
  EXPECT_EQ(tl.end, 9);
}

TEST(Timeline, RenderMentionsEverything) {
  WorldConfig cfg;
  cfg.n = 3;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = 33;
  World world(cfg);
  world.partition_at(sim::msec(100), {{0, 1}, {2}});
  world.bcast_at(sim::sec(1), 0, "x");
  world.run_until(sim::sec(3));

  const auto tl = build_timeline(world.recorder().events(), 3, 3);
  const auto text = render_timeline(tl);
  EXPECT_NE(text.find("processor 0:"), std::string::npos);
  EXPECT_NE(text.find("processor 2:"), std::string::npos);
  EXPECT_NE(text.find("failure events:"), std::string::npos);
  EXPECT_NE(text.find("bcast"), std::string::npos);
  // Both the initial view and the post-partition views appear.
  EXPECT_NE(text.find("{0,1,2}"), std::string::npos);
  EXPECT_NE(text.find("{0,1}"), std::string::npos);
}

}  // namespace
}  // namespace vsg::harness
