// VS-machine (Figure 6): transition preconditions, per-view queues, safe
// semantics, and the Lemma 4.1 state invariants under random exploration.

#include <gtest/gtest.h>

#include "spec/vs_machine.hpp"
#include "util/rng.hpp"

namespace vsg::spec {
namespace {

util::Bytes msg(std::uint8_t b) { return util::Bytes{b}; }

core::View view(std::uint64_t epoch, std::set<ProcId> members) {
  return core::View{core::ViewId{epoch, *members.begin()}, std::move(members)};
}

TEST(VSMachine, InitialState) {
  VSMachine m(4, 3);
  ASSERT_EQ(m.created().size(), 1u);
  EXPECT_EQ(m.created()[0], core::initial_view(3));
  for (ProcId p = 0; p < 3; ++p)
    EXPECT_EQ(m.current_viewid(p), std::optional<core::ViewId>(core::ViewId::initial()));
  EXPECT_FALSE(m.current_viewid(3).has_value()) << "outside P0: bottom view";
}

TEST(VSMachine, CreateviewRequiresStrictlyIncreasingIds) {
  VSMachine m(3, 3);
  EXPECT_FALSE(m.createview_enabled(core::initial_view(3))) << "id not above g0";
  const auto v1 = view(1, {0, 1});
  EXPECT_TRUE(m.createview_enabled(v1));
  m.createview(v1);
  EXPECT_FALSE(m.createview_enabled(core::View{v1.id, {2}})) << "same id not above";
  EXPECT_TRUE(m.createview_enabled(view(1, {2}))) << "same epoch, higher origin is above";
  EXPECT_TRUE(m.createview_enabled(view(2, {2})));
}

TEST(VSMachine, CreateviewRejectsBadMembership) {
  VSMachine m(3, 3);
  EXPECT_FALSE(m.createview_enabled(view(1, {0, 7})));
  EXPECT_FALSE(m.createview_enabled(core::View{core::ViewId{1, 0}, {}}));
}

TEST(VSMachine, NewviewOnlyForMembersAndOnlyForward) {
  VSMachine m(3, 3);
  const auto v1 = view(1, {0, 1});
  m.createview(v1);
  EXPECT_TRUE(m.newview_enabled(v1, 0));
  EXPECT_FALSE(m.newview_enabled(v1, 2)) << "2 is not a member";
  m.newview(v1, 0);
  EXPECT_FALSE(m.newview_enabled(v1, 0)) << "not above current";
  EXPECT_TRUE(m.newview_enabled(v1, 1)) << "1 has not advanced yet";
}

TEST(VSMachine, GpsndIntoBottomViewIsIgnored) {
  VSMachine m(2, 1);
  m.gpsnd(1, msg(9));  // processor 1 starts with bottom view
  for (const auto& g : m.touched_viewids()) EXPECT_TRUE(m.pending(1, g).empty());
}

TEST(VSMachine, SendOrderDeliverWithinView) {
  VSMachine m(2, 2);
  const auto g0 = core::ViewId::initial();
  m.gpsnd(0, msg(1));
  m.gpsnd(0, msg(2));
  EXPECT_TRUE(m.vs_order_enabled(0, g0));
  m.vs_order(0, g0);
  m.vs_order(0, g0);
  EXPECT_FALSE(m.vs_order_enabled(0, g0));
  ASSERT_EQ(m.queue(g0).size(), 2u);

  auto e = m.gprcv(1);
  EXPECT_EQ(e.m, msg(1));
  EXPECT_EQ(e.p, 0);
  e = m.gprcv(1);
  EXPECT_EQ(e.m, msg(2));
  EXPECT_FALSE(m.gprcv_next(1).has_value());
}

TEST(VSMachine, SafeRequiresAllMembersDelivered) {
  VSMachine m(2, 2);
  const auto g0 = core::ViewId::initial();
  m.gpsnd(0, msg(7));
  m.vs_order(0, g0);
  m.gprcv(0);
  EXPECT_FALSE(m.safe_next(0).has_value()) << "1 has not delivered yet";
  m.gprcv(1);
  ASSERT_TRUE(m.safe_next(0).has_value());
  EXPECT_EQ(m.safe(0).m, msg(7));
  EXPECT_EQ(m.safe(1).m, msg(7));
  EXPECT_FALSE(m.safe_next(0).has_value());
}

TEST(VSMachine, SafeNeverOvertakesOwnDelivery) {
  VSMachine m(2, 2);
  const auto g0 = core::ViewId::initial();
  m.gpsnd(0, msg(1));
  m.gpsnd(0, msg(2));
  m.vs_order(0, g0);
  m.vs_order(0, g0);
  m.gprcv(0);
  m.gprcv(0);
  m.gprcv(1);  // 1 delivered only the first message
  ASSERT_TRUE(m.safe_next(0).has_value());
  m.safe(0);
  EXPECT_FALSE(m.safe_next(0).has_value()) << "second message not at member 1 yet";
}

TEST(VSMachine, MessagesSentInOldViewNotDeliveredInNew) {
  VSMachine m(2, 2);
  const auto g0 = core::ViewId::initial();
  m.gpsnd(0, msg(5));
  m.vs_order(0, g0);
  const auto v1 = view(1, {0, 1});
  m.createview(v1);
  m.newview(v1, 1);
  EXPECT_FALSE(m.gprcv_next(1).has_value())
      << "1 moved to v1; the old view's queue is out of reach";
  // 0 is still in g0 and may deliver.
  ASSERT_TRUE(m.gprcv_next(0).has_value());
}

TEST(VSMachine, PerViewQueuesAreIndependent) {
  VSMachine m(2, 2);
  const auto g0 = core::ViewId::initial();
  const auto v1 = view(1, {0, 1});
  m.createview(v1);
  m.gpsnd(0, msg(1));  // into g0
  m.vs_order(0, g0);
  m.newview(v1, 0);
  m.gpsnd(0, msg(2));  // into v1
  m.vs_order(0, v1.id);
  EXPECT_EQ(m.queue(g0).size(), 1u);
  EXPECT_EQ(m.queue(v1.id).size(), 1u);
  // 0 (in v1) sees only the v1 message.
  ASSERT_TRUE(m.gprcv_next(0).has_value());
  EXPECT_EQ(m.gprcv_next(0)->m, msg(2));
}

TEST(VSMachine, Lemma41HoldsInitially) {
  VSMachine m(5, 3);
  EXPECT_TRUE(check_lemma_4_1(m).empty());
}

class VSMachineRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VSMachineRandom, RandomExplorationPreservesLemma41) {
  util::Rng rng(GetParam());
  const int n = 4;
  VSMachine m(n, 3);
  std::uint64_t next_epoch = 1;
  std::uint8_t next_msg = 0;

  for (int step = 0; step < 400; ++step) {
    const auto choice = rng.below(6);
    const auto p = static_cast<ProcId>(rng.below(n));
    switch (choice) {
      case 0: {  // createview of a random membership
        std::set<ProcId> members;
        for (ProcId q = 0; q < n; ++q)
          if (rng.chance(0.5)) members.insert(q);
        if (members.empty()) members.insert(p);
        const core::View v{core::ViewId{next_epoch, *members.begin()}, members};
        if (m.createview_enabled(v)) {
          m.createview(v);
          ++next_epoch;
        }
        break;
      }
      case 1: {  // newview: advance p to a random created view containing it
        const auto& created = m.created();
        const auto& v = created[rng.below(created.size())];
        if (m.newview_enabled(v, p)) m.newview(v, p);
        break;
      }
      case 2:
        m.gpsnd(p, msg(next_msg++));
        break;
      case 3: {  // vs-order anywhere enabled for p
        for (const auto& g : m.touched_viewids())
          if (m.vs_order_enabled(p, g)) {
            m.vs_order(p, g);
            break;
          }
        break;
      }
      case 4:
        if (m.gprcv_next(p).has_value()) m.gprcv(p);
        break;
      case 5:
        if (m.safe_next(p).has_value()) m.safe(p);
        break;
    }
    const auto bad = check_lemma_4_1(m);
    ASSERT_TRUE(bad.empty()) << "step " << step << ": " << bad.front();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VSMachineRandom, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace vsg::spec
