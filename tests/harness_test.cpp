// Harness utilities: scenario parser, latency summaries, formatting,
// scenario generators.

#include <gtest/gtest.h>

#include "harness/scenario_parser.hpp"
#include "harness/stats.hpp"

namespace vsg::harness {
namespace {

TEST(ParseDuration, Units) {
  EXPECT_EQ(parse_duration("250ms"), std::optional<sim::Time>(sim::msec(250)));
  EXPECT_EQ(parse_duration("3s"), std::optional<sim::Time>(sim::sec(3)));
  EXPECT_EQ(parse_duration("1500us"), std::optional<sim::Time>(sim::usec(1500)));
  EXPECT_EQ(parse_duration("0ms"), std::optional<sim::Time>(0));
}

TEST(ParseDuration, Rejections) {
  EXPECT_FALSE(parse_duration("").has_value());
  EXPECT_FALSE(parse_duration("ms").has_value());
  EXPECT_FALSE(parse_duration("5").has_value());
  EXPECT_FALSE(parse_duration("5m").has_value());
  EXPECT_FALSE(parse_duration("abc").has_value());
}

TEST(ScenarioParser, FullScenario) {
  const auto result = parse_scenario(R"(
# demo
at 100ms partition 0,1 | 2
at 1s bcast 0 hello
at 2s proc 2 bad
at 3s link 0 2 ugly
at 4s heal
)");
  ASSERT_TRUE(result.ok()) << result.error;
  const auto& ops = result.scenario->ops;
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[0].at, sim::msec(100));
  const auto* part = std::get_if<OpPartition>(&ops[0].op);
  ASSERT_NE(part, nullptr);
  ASSERT_EQ(part->components.size(), 2u);
  EXPECT_EQ(part->components[0], (std::set<ProcId>{0, 1}));
  const auto* bc = std::get_if<OpBcast>(&ops[1].op);
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->a, "hello");
  const auto* ps = std::get_if<OpProcStatus>(&ops[2].op);
  ASSERT_NE(ps, nullptr);
  EXPECT_EQ(ps->status, sim::Status::kBad);
  const auto* ls = std::get_if<OpLinkStatus>(&ops[3].op);
  ASSERT_NE(ls, nullptr);
  EXPECT_EQ(ls->q, 2);
  EXPECT_NE(std::get_if<OpHeal>(&ops[4].op), nullptr);
  EXPECT_EQ(result.scenario->last_time(), sim::sec(4));
}

TEST(ScenarioParser, CommentsAndBlanksIgnored) {
  const auto result = parse_scenario("# nothing\n\n   \nat 1s heal # trailing\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.scenario->ops.size(), 1u);
}

TEST(ScenarioParser, ErrorsCarryLineNumbers) {
  const auto r1 = parse_scenario("at 1s heal\nat oops heal\n");
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.error.find("line 2"), std::string::npos);

  EXPECT_FALSE(parse_scenario("at 1s frobnicate\n").ok());
  EXPECT_FALSE(parse_scenario("partition 0 | 1\n").ok());
  EXPECT_FALSE(parse_scenario("at 1s bcast x hello\n").ok());
  EXPECT_FALSE(parse_scenario("at 1s proc 0 wonky\n").ok());
  EXPECT_FALSE(parse_scenario("at 1s partition\n").ok());
  EXPECT_FALSE(parse_scenario("at 1s link 0 1\n").ok());
}

TEST(Stats, SummarizeBasics) {
  const auto s = summarize({sim::msec(10), sim::msec(30), sim::msec(20)}, 2);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.incomplete, 2u);
  EXPECT_EQ(s.min, sim::msec(10));
  EXPECT_EQ(s.max, sim::msec(30));
  EXPECT_EQ(s.p50, sim::msec(20));
  EXPECT_DOUBLE_EQ(s.mean, 20000.0);
}

TEST(Stats, SummarizeEmpty) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0);
}

TEST(Stats, FmtTimeUnits) {
  EXPECT_EQ(fmt_time(sim::usec(42)), "42us");
  EXPECT_EQ(fmt_time(sim::msec(5)), "5ms");
  EXPECT_EQ(fmt_time(sim::sec(2)), "2s");
}

TEST(Stats, FmtRowPads) {
  const auto row = fmt_row({"a", "bb"}, {3, 4});
  EXPECT_EQ(row, "a   bb   ");
}

TEST(Stats, ToDeliveryLatencySynthetic) {
  using trace::TimedEvent;
  std::vector<TimedEvent> tr{
      {1000, trace::BcastEvent{0, "a"}},
      {1400, trace::BrcvEvent{0, 0, "a"}},
      {1900, trace::BrcvEvent{0, 1, "a"}},   // all-of-Q at 1900 -> 900 lag
      {5000, trace::BcastEvent{0, "b"}},
      {5100, trace::BrcvEvent{0, 0, "b"}},   // never reaches 1 -> incomplete
  };
  const auto s = to_delivery_latency(tr, {0, 1}, 0);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.incomplete, 1u);
  EXPECT_EQ(s.max, 900);
}

TEST(Stats, ToDeliveryLatencyFromCutoff) {
  using trace::TimedEvent;
  std::vector<TimedEvent> tr{
      {100, trace::BcastEvent{0, "early"}},
      {200, trace::BrcvEvent{0, 0, "early"}},
      {200, trace::BrcvEvent{0, 1, "early"}},
      {900, trace::BcastEvent{0, "late"}},
      {1100, trace::BrcvEvent{0, 0, "late"}},
      {1150, trace::BrcvEvent{0, 1, "late"}},
  };
  const auto s = to_delivery_latency(tr, {0, 1}, /*from=*/500);
  EXPECT_EQ(s.count, 1u) << "only the value sent after the cutoff counts";
  EXPECT_EQ(s.max, 250);
}

TEST(Stats, VsSafeLatencySynthetic) {
  using trace::TimedEvent;
  std::vector<TimedEvent> tr{
      {1000, trace::GpsndEvent{0, util::Bytes{1}}},
      {1200, trace::SafeEvent{0, 0, util::Bytes{1}}},
      {1600, trace::SafeEvent{0, 1, util::Bytes{1}}},
  };
  const auto s = vs_safe_latency(tr, {0, 1}, 2, 2, 0);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max, 600);
}

TEST(Stats, VsSafeLatencyOnlyFinalViewCounts) {
  using trace::TimedEvent;
  const core::View v{core::ViewId{1, 0}, {0, 1}};
  std::vector<TimedEvent> tr{
      {100, trace::GpsndEvent{0, util::Bytes{9}}},  // in g0, never safe
      {200, trace::NewViewEvent{0, v}},
      {200, trace::NewViewEvent{1, v}},
      {300, trace::GpsndEvent{0, util::Bytes{1}}},
      {350, trace::SafeEvent{0, 0, util::Bytes{1}}},
      {400, trace::SafeEvent{0, 1, util::Bytes{1}}},
  };
  const auto s = vs_safe_latency(tr, {0, 1}, 2, 2, 0);
  EXPECT_EQ(s.count, 1u) << "only the final view's message is measured";
  EXPECT_EQ(s.incomplete, 0u) << "the g0 message is outside the final view";
  EXPECT_EQ(s.max, 100);
}

TEST(Stats, DeliveriesAtWindow) {
  using trace::TimedEvent;
  std::vector<TimedEvent> tr{
      {100, trace::BrcvEvent{0, 1, "a"}},
      {200, trace::BrcvEvent{0, 1, "b"}},
      {300, trace::BrcvEvent{0, 1, "c"}},
      {200, trace::BrcvEvent{0, 0, "a"}},
  };
  EXPECT_EQ(deliveries_at(tr, 1, 150, 300), 1u);
  EXPECT_EQ(deliveries_at(tr, 1, 0, 1000), 3u);
  EXPECT_EQ(deliveries_at(tr, 0, 0, 1000), 1u);
}

TEST(ScenarioGenerators, SteadyTrafficShape) {
  const auto s = steady_traffic({1, 2}, 3, sim::msec(10), sim::msec(5));
  EXPECT_EQ(s.ops.size(), 6u);
  EXPECT_EQ(s.last_time(), sim::msec(20));
  for (const auto& op : s.ops) EXPECT_NE(std::get_if<OpBcast>(&op.op), nullptr);
}

TEST(ScenarioGenerators, RandomChurnEndsWithFinalPartition) {
  util::Rng rng(1);
  const auto s = random_churn(4, 5, sim::msec(10), sim::msec(100), {{0, 1}, {2, 3}}, rng);
  ASSERT_EQ(s.ops.size(), 6u);
  const auto* final_op = std::get_if<OpPartition>(&s.ops.back().op);
  ASSERT_NE(final_op, nullptr);
  EXPECT_EQ(s.ops.back().at, sim::msec(100));
}

}  // namespace
}  // namespace vsg::harness
