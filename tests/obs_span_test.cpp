// Causal span tracing: the flight recorder's span families over a real
// partition/merge run, the Chrome trace exporter and its validator, the
// bounded-ring drop accounting, and the zero-cost-when-disabled guarantee
// (identical protocol counters with tracing on and off).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "harness/world.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace vsg::obs {
namespace {

// The acceptance scenario: 5 processors, traffic, a partition into
// {0,1,2} | {3,4}, traffic on both sides, heal, reconciliation tail.
harness::World make_traced_world(bool enabled, std::size_t capacity = 4096) {
  harness::WorldConfig cfg;
  cfg.n = 5;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = 90210;
  cfg.trace.enabled = enabled;
  cfg.trace.capacity = capacity;
  return harness::World(std::move(cfg));
}

void drive_partition_merge(harness::World& world) {
  for (int k = 0; k < 6; ++k)
    world.bcast_at(sim::msec(200) + k * sim::msec(30), static_cast<ProcId>(k % 5),
                   "pre" + std::to_string(k));
  world.partition_at(sim::sec(1), {{0, 1, 2}, {3, 4}});
  for (int k = 0; k < 4; ++k) {
    world.bcast_at(sim::sec(2) + k * sim::msec(40), 0, "maj" + std::to_string(k));
    world.bcast_at(sim::sec(2) + k * sim::msec(40), 3, "min" + std::to_string(k));
  }
  world.heal_at(sim::sec(4));
  world.run_until(sim::sec(10));
}

bool has_span(const std::deque<Span>& spans, const std::string& name) {
  return std::any_of(spans.begin(), spans.end(),
                     [&](const Span& s) { return s.name == name; });
}

TEST(SpanTracer, PartitionMergeRunEmitsBothSpanFamilies) {
  harness::World world = make_traced_world(true);
  drive_partition_merge(world);

  ASSERT_NE(world.tracer(), nullptr);
  const auto& spans = world.tracer()->spans();
  ASSERT_FALSE(spans.empty());

  // Message lifecycle: every phase of the tosnd -> tobrcv chain.
  for (const char* phase : {"label", "gpsnd", "token.board", "net.transit",
                            "tentative", "confirmed", "tobrcv"})
    EXPECT_TRUE(has_span(spans, phase)) << "missing message phase: " << phase;

  // View lifecycle: proposals, state exchange, primary establishment.
  EXPECT_TRUE(has_span(spans, "view.proposal"));
  EXPECT_TRUE(has_span(spans, "view.state_exchange"));
  EXPECT_TRUE(has_span(spans, "view.primary_established"));

  // Fault markers for the partition and the heal.
  EXPECT_TRUE(std::any_of(spans.begin(), spans.end(),
                          [](const Span& s) { return s.cat == "fault"; }));

  // Phase-latency histograms feed the shared registry.
  for (const char* name :
       {"to.phase_latency.label", "to.phase_latency.gpsnd",
        "to.phase_latency.token.board", "to.phase_latency.net.transit",
        "to.phase_latency.tentative", "to.phase_latency.confirmed",
        "to.phase_latency.tobrcv"}) {
    const auto* h = world.metrics().find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count(), 0u) << name;
  }
  EXPECT_EQ(world.metrics().find_counter("obs.trace.spans")->value(),
            world.tracer()->emitted());
}

TEST(SpanTracer, ChromeTraceExportValidates) {
  harness::World world = make_traced_world(true);
  drive_partition_merge(world);

  const std::string json = chrome_trace_json(*world.tracer());
  const auto problems = validate_chrome_trace(json);
  EXPECT_TRUE(problems.empty()) << problems.front() << " (" << problems.size()
                                << " problems)";

  // One Perfetto "process" per simulated processor.
  for (int p = 0; p < 5; ++p)
    EXPECT_NE(json.find("\"processor " + std::to_string(p) + "\""), std::string::npos);
  // Layer tracks are named.
  for (const char* track : {"\"to\"", "\"view\"", "\"net\""})
    EXPECT_NE(json.find(track), std::string::npos);
}

TEST(SpanTracer, DisabledTracingIsBitIdentical) {
  auto snapshot_without_trace_metrics = [](const harness::World& world) {
    const auto is_trace_metric = [](const std::string& name) {
      return name.rfind("obs.trace.", 0) == 0 || name.rfind("to.phase_latency.", 0) == 0;
    };
    auto snap = world.metrics().snapshot();
    std::erase_if(snap.counters,
                  [&](const auto& kv) { return is_trace_metric(kv.first); });
    std::erase_if(snap.gauges,
                  [&](const auto& kv) { return is_trace_metric(kv.first); });
    std::erase_if(snap.histograms,
                  [&](const auto& h) { return is_trace_metric(h.name); });
    return snap;
  };

  harness::World off = make_traced_world(false);
  drive_partition_merge(off);
  harness::World on = make_traced_world(true);
  drive_partition_merge(on);

  EXPECT_EQ(off.tracer(), nullptr);
  EXPECT_FALSE(off.write_chrome_trace("/dev/null"));
  ASSERT_NE(on.tracer(), nullptr);

  // Same seed, same schedule: the tracer must not perturb the protocol.
  EXPECT_EQ(snapshot_without_trace_metrics(off), snapshot_without_trace_metrics(on));
  EXPECT_EQ(off.recorder().size(), on.recorder().size());
  for (ProcId p = 0; p < 5; ++p)
    EXPECT_EQ(off.stack().process(p).delivered(), on.stack().process(p).delivered());
}

TEST(SpanTracer, FlightRecorderRingIsBoundedAndCountsDrops) {
  harness::World world = make_traced_world(true, /*capacity=*/16);
  drive_partition_merge(world);

  const auto* tracer = world.tracer();
  ASSERT_NE(tracer, nullptr);
  EXPECT_LE(tracer->spans().size(), 16u);
  EXPECT_GT(tracer->dropped(), 0u) << "this run emits far more than 16 spans";
  EXPECT_EQ(tracer->emitted(), tracer->spans().size() + tracer->dropped());
  EXPECT_EQ(world.metrics().find_counter("obs.trace.dropped_spans")->value(),
            tracer->dropped());

  // The ring keeps the newest spans: the export still validates.
  EXPECT_TRUE(validate_chrome_trace(chrome_trace_json(*tracer)).empty());
}

TEST(Validator, FlagsMalformedJson) {
  EXPECT_FALSE(validate_chrome_trace("not json at all").empty());
  EXPECT_FALSE(validate_chrome_trace("{\"noTraceEvents\": []}").empty());
}

namespace {
std::string wrap(const std::string& events) {
  return "{\"traceEvents\":[" + events + "]}";
}
}  // namespace

TEST(Validator, FlagsEndWithoutBegin) {
  const auto problems = validate_chrome_trace(wrap(
      "{\"name\":\"x\",\"cat\":\"to\",\"ph\":\"e\",\"id\":\"m:1\",\"pid\":0,"
      "\"tid\":1,\"ts\":5}"));
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("end"), std::string::npos);
}

TEST(Validator, FlagsBeginWithoutEnd) {
  const auto problems = validate_chrome_trace(wrap(
      "{\"name\":\"x\",\"cat\":\"to\",\"ph\":\"b\",\"id\":\"m:1\",\"pid\":0,"
      "\"tid\":1,\"ts\":5}"));
  EXPECT_FALSE(problems.empty());
}

TEST(Validator, FlagsBackwardsTimestampsPerTrack) {
  const auto problems = validate_chrome_trace(wrap(
      "{\"name\":\"a\",\"cat\":\"to\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":1,"
      "\"ts\":10},"
      "{\"name\":\"b\",\"cat\":\"to\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":1,"
      "\"ts\":5}"));
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("backward"), std::string::npos);
}

TEST(Validator, FlagsUnknownPhase) {
  const auto problems = validate_chrome_trace(wrap(
      "{\"name\":\"a\",\"cat\":\"to\",\"ph\":\"Q\",\"pid\":0,\"tid\":1,\"ts\":1}"));
  EXPECT_FALSE(problems.empty());
}

TEST(Validator, AcceptsMatchedPairAndMetadata) {
  const auto problems = validate_chrome_trace(wrap(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0},"
      "{\"name\":\"x\",\"cat\":\"to\",\"ph\":\"b\",\"id\":\"m:1\",\"pid\":0,"
      "\"tid\":1,\"ts\":1},"
      "{\"name\":\"x\",\"cat\":\"to\",\"ph\":\"e\",\"id\":\"m:1\",\"pid\":0,"
      "\"tid\":1,\"ts\":4}"));
  EXPECT_TRUE(problems.empty()) << problems.front();
}

}  // namespace
}  // namespace vsg::obs
