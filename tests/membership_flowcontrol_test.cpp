// Flow-control contract at the boarding site (docs/FLOWCONTROL.md): the
// per-pass byte budget makes progress even when a single payload exceeds
// it, cuts off exactly at the budget boundary, and the urgency lanes let
// state-exchange traffic preempt bulk within a pass without ever starving
// the bulk lane (bulk_min_share).
//
// Payloads are crafted raw VS messages with exact sizes: first byte 0x7f
// (no VSTOTO tag — classified bulk, warn-dropped by the TO layer) or
// wire::kPayloadSummary (classified urgent). The observable is the gprcv
// trace: entries boarded in the same token pass deliver at the same
// simulated instant, entries split across passes deliver at distinct ones.
// Senders are non-leaders (the leader processes the token twice per lap —
// launch and return-park — which would merge two passes into one delivery
// batch at the observer).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/codec.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

constexpr std::uint8_t kBulkTag = 0x7f;

WorldConfig ring_cfg(int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = seed;
  return cfg;
}

util::Bytes payload(std::uint8_t tag, std::uint8_t id, std::size_t size) {
  util::Bytes b(size, 0);
  b[0] = tag;
  b[1] = id;
  return b;
}

struct Rcv {
  sim::Time at = 0;
  std::uint8_t tag = 0;
  std::uint8_t id = 0;
};

/// Crafted-payload deliveries at `dst` from `src`, in delivery order,
/// starting at `from` (skips the state-exchange traffic of view formation).
std::vector<Rcv> crafted_rcvs(const World& world, ProcId src, ProcId dst, sim::Time from) {
  std::vector<Rcv> out;
  for (const auto& te : world.recorder().events()) {
    if (te.at < from) continue;
    const auto* e = trace::as<trace::GprcvEvent>(te);
    if (e == nullptr || e->src != src || e->dst != dst) continue;
    const auto& m = e->m;
    if (m.size() < 2) continue;
    if (m[0] != kBulkTag && m[0] != wire::kPayloadSummary) continue;
    out.push_back({te.at, m[0], m[1]});
  }
  return out;
}

TEST(FlowControl, BudgetSmallerThanOnePayloadStillBoardsOnePerPass) {
  WorldConfig cfg = ring_cfg(3, 11);
  cfg.ring.board_budget_bytes = 1;  // smaller than any payload below
  World world(cfg);
  world.simulator().at(sim::sec(1), [&] {
    for (std::uint8_t i = 0; i < 5; ++i)
      world.vs().gpsnd(2, payload(kBulkTag, i, 8));
  });
  world.run_until(sim::sec(4));

  const auto got = crafted_rcvs(world, 2, 1, sim::sec(1));
  ASSERT_EQ(got.size(), 5u) << "progress: every payload eventually boards";
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, i) << "FIFO preserved";
    // One payload per pass: no two deliveries share a token arrival.
    if (i > 0) {
      EXPECT_GT(got[i].at, got[i - 1].at) << "payload " << i;
    }
  }
}

TEST(FlowControl, BudgetBoundaryExactlyAtPayloadEdge) {
  // budget == one 8-byte payload: the first boards (0 < 8), the second
  // waits for the next pass (8 < 8 is false). budget == two payloads:
  // both board the same pass. The check is strictly before each board.
  for (const std::size_t budget : {std::size_t{8}, std::size_t{16}}) {
    WorldConfig cfg = ring_cfg(3, 12);
    cfg.ring.board_budget_bytes = budget;
    World world(cfg);
    world.simulator().at(sim::sec(1), [&] {
      world.vs().gpsnd(2, payload(kBulkTag, 0, 8));
      world.vs().gpsnd(2, payload(kBulkTag, 1, 8));
    });
    world.run_until(sim::sec(4));

    const auto got = crafted_rcvs(world, 2, 1, sim::sec(1));
    ASSERT_EQ(got.size(), 2u) << "budget " << budget;
    if (budget == 8) {
      EXPECT_GT(got[1].at, got[0].at) << "boundary splits the pass";
    } else {
      EXPECT_EQ(got[1].at, got[0].at) << "both fit one pass";
    }
  }
}

TEST(FlowControl, UrgentLanePreemptsBulkWithinAPass) {
  WorldConfig cfg = ring_cfg(3, 13);
  cfg.ring.lanes = true;
  World world(cfg);
  // Bulk submitted BEFORE urgent, same instant: with lanes on, the urgent
  // lane drains first, so the urgent payload boards (and delivers) ahead.
  world.simulator().at(sim::sec(1), [&] {
    world.vs().gpsnd(2, payload(kBulkTag, 0, 8));
    world.vs().gpsnd(2, payload(wire::kPayloadSummary, 1, 8));
  });
  world.run_until(sim::sec(4));

  const auto got = crafted_rcvs(world, 2, 1, sim::sec(1));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].tag, wire::kPayloadSummary) << "urgent first";
  EXPECT_EQ(got[1].tag, kBulkTag);
}

TEST(FlowControl, BulkMinShareIsStarvationFree) {
  // Budget of one payload per pass and a deep urgent backlog: without the
  // bulk floor the urgent lane would own every pass. bulk_min_share=1
  // guarantees each pass still boards one bulk entry, so all bulk clears
  // while urgent traffic is still queued.
  WorldConfig cfg = ring_cfg(3, 14);
  cfg.ring.lanes = true;
  cfg.ring.board_budget_bytes = 8;
  World world(cfg);
  world.simulator().at(sim::sec(1), [&] {
    for (std::uint8_t i = 0; i < 10; ++i)
      world.vs().gpsnd(2, payload(wire::kPayloadSummary, i, 8));
    for (std::uint8_t i = 0; i < 3; ++i)
      world.vs().gpsnd(2, payload(kBulkTag, static_cast<std::uint8_t>(100 + i), 8));
  });
  world.run_until(sim::sec(6));

  const auto got = crafted_rcvs(world, 2, 1, sim::sec(1));
  ASSERT_EQ(got.size(), 13u) << "everything eventually delivers";
  // Group deliveries by pass (same timestamp = same token arrival).
  std::map<sim::Time, std::vector<std::uint8_t>> passes;
  for (const auto& r : got) passes[r.at].push_back(r.tag);
  std::size_t pass_index = 0, last_bulk_pass = 0, last_urgent_pass = 0;
  for (const auto& [at, tags] : passes) {
    ++pass_index;
    for (const std::uint8_t tag : tags) {
      if (tag == kBulkTag) last_bulk_pass = pass_index;
      if (tag == wire::kPayloadSummary) last_urgent_pass = pass_index;
    }
  }
  // First three passes: one urgent (budget) + one bulk (min share) each;
  // bulk is done by pass 3 while urgent keeps going to pass 10.
  EXPECT_EQ(last_bulk_pass, 3u) << "bulk floor boards one per pass";
  EXPECT_EQ(last_urgent_pass, 10u) << "urgent backlog drains after";
}

}  // namespace
}  // namespace vsg
