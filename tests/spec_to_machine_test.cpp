// TO-machine (Figure 3): transition legality and the prefix-delivery
// discipline, including randomized interleavings.

#include <gtest/gtest.h>

#include "spec/to_machine.hpp"
#include "util/rng.hpp"

namespace vsg::spec {
namespace {

TEST(TOMachine, InitialState) {
  TOMachine m(3);
  EXPECT_TRUE(m.queue().empty());
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_TRUE(m.pending(p).empty());
    EXPECT_EQ(m.next(p), 1u);
    EXPECT_FALSE(m.to_order_enabled(p));
    EXPECT_FALSE(m.brcv_next(p).has_value());
  }
}

TEST(TOMachine, BcastGoesToPending) {
  TOMachine m(2);
  m.bcast(0, "a");
  m.bcast(0, "b");
  EXPECT_EQ(m.pending(0).size(), 2u);
  EXPECT_EQ(m.pending(0).front(), "a");
  EXPECT_TRUE(m.to_order_enabled(0));
}

TEST(TOMachine, ToOrderMovesHeadToQueue) {
  TOMachine m(2);
  m.bcast(1, "x");
  m.bcast(1, "y");
  m.to_order(1);
  ASSERT_EQ(m.queue().size(), 1u);
  EXPECT_EQ(m.queue()[0], (TOMachine::Entry{"x", 1}));
  EXPECT_EQ(m.pending(1).size(), 1u);
}

TEST(TOMachine, BrcvDeliversQueuePrefixInOrder) {
  TOMachine m(2);
  m.bcast(0, "a");
  m.bcast(1, "b");
  m.to_order(0);
  m.to_order(1);
  EXPECT_EQ(m.brcv(0), (TOMachine::Entry{"a", 0}));
  EXPECT_EQ(m.brcv(0), (TOMachine::Entry{"b", 1}));
  EXPECT_FALSE(m.brcv_next(0).has_value());
  // Receiver 1 is independent.
  EXPECT_EQ(m.brcv(1), (TOMachine::Entry{"a", 0}));
  EXPECT_EQ(m.next(1), 2u);
}

TEST(TOMachine, InterleavedSendersKeepPerSenderOrder) {
  TOMachine m(2);
  m.bcast(0, "a1");
  m.bcast(0, "a2");
  m.bcast(1, "b1");
  m.to_order(1);  // b1 first globally
  m.to_order(0);
  m.to_order(0);
  ASSERT_EQ(m.queue().size(), 3u);
  EXPECT_EQ(m.queue()[0].a, "b1");
  EXPECT_EQ(m.queue()[1].a, "a1");
  EXPECT_EQ(m.queue()[2].a, "a2") << "per-sender FIFO preserved";
}

class TOMachineRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TOMachineRandom, RandomScheduleKeepsInvariants) {
  util::Rng rng(GetParam());
  const int n = 3;
  TOMachine m(n);
  int sent = 0;
  for (int step = 0; step < 500; ++step) {
    const auto choice = rng.below(3);
    const auto p = static_cast<ProcId>(rng.below(n));
    if (choice == 0 && sent < 100) {
      m.bcast(p, "v" + std::to_string(sent++));
    } else if (choice == 1 && m.to_order_enabled(p)) {
      m.to_order(p);
    } else if (choice == 2 && m.brcv_next(p).has_value()) {
      m.brcv(p);
    }
    // Invariants: next pointers within range; queue size bounded by sends.
    for (ProcId q = 0; q < n; ++q) ASSERT_LE(m.next(q), m.queue().size() + 1);
    ASSERT_LE(m.queue().size(), static_cast<std::size_t>(sent));
  }
  // Drain: everything eventually deliverable everywhere.
  for (ProcId p = 0; p < n; ++p)
    while (m.to_order_enabled(p)) m.to_order(p);
  for (ProcId p = 0; p < n; ++p) {
    while (m.brcv_next(p).has_value()) m.brcv(p);
    EXPECT_EQ(m.next(p), m.queue().size() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TOMachineRandom, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace vsg::spec
