// exec::run_parallel — the thread-pool World executor's contract: every
// index exactly once, inline degeneration at jobs <= 1, job clamping,
// exception propagation, and the per-thread scoping of the one
// thread_local the Worlds depend on (util::unchecked_decode).

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"
#include "util/serde.hpp"

namespace vsg::exec {
namespace {

TEST(RunParallel, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  run_parallel(4, kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(RunParallel, SingleJobRunsInlineAndInOrder) {
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  run_parallel(1, 20, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: inline path, no concurrency
  });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(RunParallel, ZeroTasksIsANoOp) {
  run_parallel(8, 0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(RunParallel, EffectiveJobsClampsAndResolvesHardware) {
  EXPECT_EQ(effective_jobs(1, 100), 1);
  EXPECT_EQ(effective_jobs(4, 100), 4);
  EXPECT_EQ(effective_jobs(8, 3), 3);   // never more workers than tasks
  EXPECT_EQ(effective_jobs(4, 0), 1);   // empty range degenerates
  EXPECT_GE(effective_jobs(0, 100), 1); // 0 = hardware concurrency, >= 1
}

TEST(RunParallel, FirstExceptionPropagatesAfterAllTasksRan) {
  std::atomic<int> ran{0};
  EXPECT_THROW(run_parallel(4, 50,
                            [&](std::size_t i) {
                              ran.fetch_add(1);
                              if (i == 7) throw std::runtime_error("task 7");
                            }),
               std::runtime_error);
  // Remaining tasks still ran; the pool drains before rethrowing.
  EXPECT_EQ(ran.load(), 50);
}

// The cross-World thread-safety contract (docs/CHAOS.md): the decode
// fault-injection flag is thread_local, so a fresh thread starts strict
// even while the spawning thread has a guard up, and the fresh thread's
// own toggle never leaks back.
TEST(RunParallel, UncheckedDecodeIsPerThread) {
  util::UncheckedDecodeGuard inject;  // this thread: injected
  ASSERT_TRUE(util::unchecked_decode());

  bool fresh_thread_saw = true;
  std::thread t([&] {
    fresh_thread_saw = util::unchecked_decode();
    util::set_unchecked_decode_for_test(true);  // affects only this thread
  });
  t.join();
  EXPECT_FALSE(fresh_thread_saw) << "guard leaked into a fresh thread";
  EXPECT_TRUE(util::unchecked_decode());

  // And on the executor: a pool worker never observes the caller's
  // injection (tasks that need it must re-assert it themselves, as
  // chaos/campaign.cpp does at task start).
  std::atomic<int> leaked{0};
  const auto caller = std::this_thread::get_id();
  run_parallel(4, 64, [&](std::size_t) {
    if (std::this_thread::get_id() != caller && util::unchecked_decode())
      leaked.fetch_add(1);
  });
  EXPECT_EQ(leaked.load(), 0);
  EXPECT_TRUE(util::unchecked_decode());
}

}  // namespace
}  // namespace vsg::exec
