// Partition behaviour of the TO stack: primary side keeps confirming,
// minority stalls, healing reconciles the divergent histories into one
// total order (the state-exchange recovery of Section 5), and safety holds
// through arbitrary churn.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig cfg_for(Backend backend, int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = backend;
  cfg.seed = seed;
  return cfg;
}

class StackPartition : public ::testing::TestWithParam<Backend> {};

TEST_P(StackPartition, MajoritySideKeepsDelivering) {
  World world(cfg_for(GetParam(), 5, 31));
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3, 4}});
  world.bcast_at(sim::sec(2), 0, "maj");
  world.bcast_at(sim::sec(2), 3, "min");
  world.run_until(sim::sec(8));

  EXPECT_TRUE(world.check_to_safety().empty());
  EXPECT_TRUE(world.check_vs_safety().empty());
  // The majority side confirms and delivers its value.
  for (ProcId p = 0; p < 3; ++p) {
    const auto& got = world.stack().process(p).delivered();
    ASSERT_EQ(got.size(), 1u) << "at majority member " << p;
    EXPECT_EQ(got[0].second, "maj");
  }
  // The minority never forms a primary view: nothing is confirmed there.
  for (ProcId p = 3; p < 5; ++p)
    EXPECT_TRUE(world.stack().process(p).delivered().empty())
        << "minority member " << p << " must not deliver";
}

TEST_P(StackPartition, HealReconcilesMinorityBacklog) {
  World world(cfg_for(GetParam(), 5, 37));
  world.partition_at(sim::msec(100), {{0, 1, 2}, {3, 4}});
  // Both sides submit during the partition.
  world.bcast_at(sim::sec(2), 1, "from-majority");
  world.bcast_at(sim::sec(2), 4, "from-minority");
  world.heal_at(sim::sec(4));
  world.run_until(sim::sec(12));

  EXPECT_TRUE(world.check_to_safety().empty());
  EXPECT_TRUE(world.check_vs_safety().empty());
  // After healing, everyone delivers both values in one common order, with
  // the majority's confirmed value first (it was confirmed in the earlier
  // primary view; the minority value enters the order at state exchange).
  const auto& reference = world.stack().process(0).delivered();
  ASSERT_EQ(reference.size(), 2u);
  EXPECT_EQ(reference[0].second, "from-majority");
  EXPECT_EQ(reference[1].second, "from-minority");
  for (ProcId p = 1; p < 5; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference) << "at processor " << p;
}

TEST_P(StackPartition, ValuesSubmittedWhilePartitionedSurviveHeal) {
  World world(cfg_for(GetParam(), 4, 41));
  // Split so that NO side has a quorum (2-2): nothing can be confirmed.
  world.partition_at(sim::msec(100), {{0, 1}, {2, 3}});
  for (int k = 0; k < 3; ++k) {
    world.bcast_at(sim::sec(1) + k * sim::msec(50), 0, "a" + std::to_string(k));
    world.bcast_at(sim::sec(1) + k * sim::msec(50), 2, "b" + std::to_string(k));
  }
  world.run_until(sim::sec(3));
  for (ProcId p = 0; p < 4; ++p)
    EXPECT_TRUE(world.stack().process(p).delivered().empty())
        << "no quorum: nothing may be confirmed at " << p;

  world.heal_at(sim::sec(3));
  world.run_until(sim::sec(10));

  EXPECT_TRUE(world.check_to_safety().empty());
  const auto& reference = world.stack().process(0).delivered();
  EXPECT_EQ(reference.size(), 6u) << "all six values delivered after heal";
  for (ProcId p = 1; p < 4; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference);
}

TEST_P(StackPartition, CascadingPartitionsStaySafe) {
  World world(cfg_for(GetParam(), 6, 43));
  world.partition_at(sim::msec(200), {{0, 1, 2, 3}, {4, 5}});
  world.bcast_at(sim::sec(1), 0, "x0");
  world.partition_at(sim::sec(2), {{0, 1}, {2, 3}, {4, 5}});
  world.bcast_at(sim::sec(3), 2, "x1");
  world.partition_at(sim::sec(4), {{0, 1, 2, 3, 4}, {5}});
  world.bcast_at(sim::sec(5), 4, "x2");
  world.heal_at(sim::sec(6));
  world.bcast_at(sim::sec(8), 5, "x3");
  world.run_until(sim::sec(14));

  const auto to_violations = world.check_to_safety();
  EXPECT_TRUE(to_violations.empty()) << (to_violations.empty() ? "" : to_violations.front());
  const auto vs_violations = world.check_vs_safety();
  EXPECT_TRUE(vs_violations.empty()) << (vs_violations.empty() ? "" : vs_violations.front());
  // All values eventually delivered everywhere, same order.
  const auto& reference = world.stack().process(0).delivered();
  EXPECT_EQ(reference.size(), 4u);
  for (ProcId p = 1; p < 6; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference);
}

TEST_P(StackPartition, CrashedProcessorDoesNotBlockQuorum) {
  World world(cfg_for(GetParam(), 5, 47));
  // Processor 4 goes bad (stopped) and its links drop; the remaining four
  // are a quorum and keep working.
  world.proc_status_at(sim::msec(100), 4, sim::Status::kBad);
  world.partition_at(sim::msec(100), {{0, 1, 2, 3}, {4}});
  world.bcast_at(sim::sec(2), 1, "without-4");
  world.run_until(sim::sec(8));

  EXPECT_TRUE(world.check_to_safety().empty());
  for (ProcId p = 0; p < 4; ++p) {
    const auto& got = world.stack().process(p).delivered();
    ASSERT_EQ(got.size(), 1u) << "at processor " << p;
    EXPECT_EQ(got[0].second, "without-4");
  }
}

TEST_P(StackPartition, RecoveredProcessorCatchesUp) {
  World world(cfg_for(GetParam(), 3, 53));
  world.proc_status_at(sim::msec(100), 2, sim::Status::kBad);
  world.partition_at(sim::msec(100), {{0, 1}, {2}});
  world.bcast_at(sim::sec(1), 0, "while-down");
  world.run_until(sim::sec(3));
  // 2 is down; {0,1} is a majority of 3, so the value is confirmed there.
  ASSERT_EQ(world.stack().process(0).delivered().size(), 1u);

  world.proc_status_at(sim::sec(3), 2, sim::Status::kGood);
  world.heal_at(sim::sec(3));
  world.run_until(sim::sec(10));

  EXPECT_TRUE(world.check_to_safety().empty());
  const auto& got = world.stack().process(2).delivered();
  ASSERT_EQ(got.size(), 1u) << "recovered processor must catch up";
  EXPECT_EQ(got[0].second, "while-down");
}

INSTANTIATE_TEST_SUITE_P(BothBackends, StackPartition,
                         ::testing::Values(Backend::kSpec, Backend::kTokenRing),
                         [](const auto& info) {
                           return info.param == Backend::kSpec ? "SpecVS" : "TokenRing";
                         });

}  // namespace
}  // namespace vsg
