// End-to-end tests of the full TO stack (VStoTO over both VS back ends) in
// failure-free executions: totally ordered delivery everywhere, VS- and
// TO-level trace safety, and basic timeliness.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig base_config(Backend backend, int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = backend;
  cfg.seed = seed;
  return cfg;
}

class StackEndToEnd : public ::testing::TestWithParam<Backend> {};

TEST_P(StackEndToEnd, SingleValueReachesEveryone) {
  World world(base_config(GetParam(), 3, 7));
  world.bcast_at(sim::msec(50), 0, "hello");
  world.run_until(sim::sec(3));

  EXPECT_TRUE(world.check_vs_safety().empty());
  EXPECT_TRUE(world.check_to_safety().empty());
  for (ProcId p = 0; p < 3; ++p) {
    const auto& got = world.stack().process(p).delivered();
    ASSERT_EQ(got.size(), 1u) << "at processor " << p;
    EXPECT_EQ(got[0].first, 0);
    EXPECT_EQ(got[0].second, "hello");
  }
}

TEST_P(StackEndToEnd, ManySendersTotalOrder) {
  World world(base_config(GetParam(), 5, 11));
  const auto traffic =
      harness::steady_traffic({0, 1, 2, 3, 4}, 10, sim::msec(50), sim::msec(20));
  traffic.apply(world);
  world.run_until(sim::sec(10));

  const auto to_violations = world.check_to_safety();
  EXPECT_TRUE(to_violations.empty()) << (to_violations.empty() ? "" : to_violations.front());
  const auto vs_violations = world.check_vs_safety();
  EXPECT_TRUE(vs_violations.empty()) << (vs_violations.empty() ? "" : vs_violations.front());

  // Everyone delivers all 50 values, in the same order.
  const auto& reference = world.stack().process(0).delivered();
  ASSERT_EQ(reference.size(), 50u);
  for (ProcId p = 1; p < 5; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference) << "at processor " << p;
}

TEST_P(StackEndToEnd, PerSenderFifoRespected) {
  World world(base_config(GetParam(), 3, 13));
  for (int k = 0; k < 20; ++k)
    world.bcast_at(sim::msec(10 + k), 1, "m" + std::to_string(k));
  world.run_until(sim::sec(5));

  const auto& got = world.stack().process(2).delivered();
  ASSERT_EQ(got.size(), 20u);
  for (int k = 0; k < 20; ++k)
    EXPECT_EQ(got[static_cast<std::size_t>(k)].second, "m" + std::to_string(k));
}

TEST_P(StackEndToEnd, BackToBackBurstsKeepOrder) {
  World world(base_config(GetParam(), 4, 17));
  for (ProcId p = 0; p < 4; ++p)
    for (int k = 0; k < 5; ++k)
      world.bcast_at(sim::msec(100), p, "b" + std::to_string(p) + "." + std::to_string(k));
  world.run_until(sim::sec(5));

  EXPECT_TRUE(world.check_to_safety().empty());
  const auto& reference = world.stack().process(0).delivered();
  EXPECT_EQ(reference.size(), 20u);
  for (ProcId p = 1; p < 4; ++p)
    EXPECT_EQ(world.stack().process(p).delivered(), reference);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, StackEndToEnd,
                         ::testing::Values(Backend::kSpec, Backend::kTokenRing),
                         [](const auto& info) {
                           return info.param == Backend::kSpec ? "SpecVS" : "TokenRing";
                         });

TEST(StackLateJoiner, ProcessorsOutsideP0JoinAndDeliver) {
  WorldConfig cfg = base_config(Backend::kTokenRing, 4, 23);
  cfg.n0 = 3;  // processor 3 starts outside the group
  World world(cfg);
  world.bcast_at(sim::sec(2), 0, "after-join");
  world.run_until(sim::sec(6));

  EXPECT_TRUE(world.check_vs_safety().empty());
  EXPECT_TRUE(world.check_to_safety().empty());
  // Once probing merges 3 into the group, it receives values confirmed
  // afterwards.
  const auto& got = world.stack().process(3).delivered();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second, "after-join");
}

}  // namespace
}  // namespace vsg
