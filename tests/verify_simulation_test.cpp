// The forward simulation f (Section 6.2, Theorem 6.26), checked online:
// every bcast/brcv in the stack's trace must be a legal TO-machine step of
// the oracle after syncing to-order steps with allconfirm, and at quiescent
// points f(state) must equal the oracle state exactly.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "verify/forward_simulation.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig spec_cfg(int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = Backend::kSpec;
  cfg.seed = seed;
  return cfg;
}

TEST(ForwardSimulation, FOfInitialStateIsInitial) {
  World world(spec_cfg(3, 1));
  std::vector<std::string> bad;
  const auto image = verify::compute_f(world.global_state(), &bad);
  ASSERT_TRUE(image.has_value());
  EXPECT_TRUE(image->queue.empty());
  for (ProcId p = 0; p < 3; ++p) {
    EXPECT_TRUE(image->pending[static_cast<std::size_t>(p)].empty());
    EXPECT_EQ(image->next[static_cast<std::size_t>(p)], 1u);
  }
}

TEST(ForwardSimulation, NormalTrafficRefinesTOMachine) {
  World world(spec_cfg(3, 5));
  verify::SimulationChecker checker(world.global_state());
  world.recorder().subscribe(
      [&checker](const trace::TimedEvent& te) { checker.on_event(te); });

  harness::steady_traffic({0, 1, 2}, 8, sim::msec(10), sim::msec(20)).apply(world);
  world.run_until(sim::sec(2));

  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_TRUE(checker.check_f_matches())
      << (checker.violations().empty() ? "" : checker.violations().back());
  EXPECT_EQ(checker.oracle().queue().size(), 24u);
}

TEST(ForwardSimulation, PartitionHealRefinesTOMachine) {
  World world(spec_cfg(5, 6));
  verify::SimulationChecker checker(world.global_state());
  world.recorder().subscribe(
      [&checker](const trace::TimedEvent& te) { checker.on_event(te); });

  world.partition_at(sim::msec(50), {{0, 1, 2}, {3, 4}});
  world.bcast_at(sim::msec(200), 1, "maj");
  world.bcast_at(sim::msec(200), 4, "min");
  world.heal_at(sim::msec(500));
  world.run_until(sim::sec(3));

  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_TRUE(checker.check_f_matches());
  EXPECT_EQ(checker.oracle().queue().size(), 2u);
}

TEST(ForwardSimulation, FMatchesAtEveryQuiescentPoint) {
  World world(spec_cfg(3, 7));
  verify::SimulationChecker checker(world.global_state());
  world.recorder().subscribe(
      [&checker](const trace::TimedEvent& te) { checker.on_event(te); });
  harness::steady_traffic({0, 2}, 5, sim::msec(10), sim::msec(30)).apply(world);

  while (world.simulator().step()) {
    ASSERT_TRUE(checker.ok()) << checker.violations().front();
    // f must match between *every* pair of events, not just at the end:
    // all our transitions are atomic w.r.t. simulator events.
    ASSERT_TRUE(checker.check_f_matches())
        << "t=" << world.simulator().now() << ": " << checker.violations().back();
  }
}

class SimulationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationFuzz, ChurnyExecutionsRefineTOMachine) {
  const auto seed = GetParam();
  World world(spec_cfg(4, seed));
  verify::SimulationChecker checker(world.global_state());
  world.recorder().subscribe(
      [&checker](const trace::TimedEvent& te) { checker.on_event(te); });

  util::Rng rng(seed * 131 + 11);
  harness::random_churn(4, 8, sim::msec(20), sim::msec(700), {{0, 1, 2, 3}}, rng)
      .apply(world);
  harness::random_traffic(4, 20, sim::msec(10), sim::msec(900), rng).apply(world);
  world.run_until(sim::sec(4));

  EXPECT_TRUE(checker.ok()) << "seed " << seed << ": " << checker.violations().front();
  EXPECT_TRUE(checker.check_f_matches()) << "seed " << seed;
  // After healing to the full group, everything is eventually ordered.
  checker.sync();
  EXPECT_EQ(checker.oracle().queue().size(), 20u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationFuzz, ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace vsg
