// The per-processor to::Client interface: attached clients observe the
// same delivery stream the legacy global set_delivery callback does, the
// two coexist (shim fires after the client), and the move-path through
// bcast -> Process is visible in the payload_copies / payload_moves
// counters.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/world.hpp"

namespace vsg {
namespace {

using Delivery = std::tuple<ProcId, ProcId, std::string>;  // dest, origin, value

harness::WorldConfig ring_cfg(int n, std::uint64_t seed) {
  harness::WorldConfig cfg;
  cfg.n = n;
  cfg.backend = harness::Backend::kTokenRing;
  cfg.seed = seed;
  return cfg;
}

void drive(harness::World& world, int n) {
  for (int round = 0; round < 2; ++round)
    for (ProcId p = 0; p < n; ++p)
      world.bcast_at(sim::msec(50 + 40 * round), p,
                     "r" + std::to_string(round) + "p" + std::to_string(p));
  world.run_until(sim::sec(3));
}

TEST(ToClient, AttachedClientsSeeTheLegacyDeliveryStream) {
  // Same seed, two worlds: one observed via attach, one via set_delivery.
  std::vector<Delivery> via_clients;
  {
    harness::World world(ring_cfg(3, 42));
    std::vector<std::unique_ptr<to::CallbackClient>> clients;
    for (ProcId p = 0; p < 3; ++p) {
      clients.push_back(std::make_unique<to::CallbackClient>(
          [&via_clients, p](ProcId origin, const core::Value& a) {
            via_clients.emplace_back(p, origin, a);
          }));
      world.stack().attach(p, *clients.back());
    }
    drive(world, 3);
  }

  std::vector<Delivery> via_legacy;
  {
    harness::World world(ring_cfg(3, 42));
    world.stack().set_delivery([&](ProcId dest, ProcId origin, const core::Value& a) {
      via_legacy.emplace_back(dest, origin, a);
    });
    drive(world, 3);
  }

  ASSERT_FALSE(via_clients.empty());
  EXPECT_EQ(via_clients, via_legacy)
      << "the Client API must be an observation change, not a behaviour change";
}

TEST(ToClient, ShimFiresAfterAttachedClient) {
  harness::World world(ring_cfg(2, 7));
  std::vector<std::string> order;
  to::CallbackClient client(
      [&](ProcId, const core::Value& a) { order.push_back("client:" + a); });
  world.stack().attach(0, client);
  world.stack().set_delivery([&](ProcId dest, ProcId, const core::Value& a) {
    if (dest == 0) order.push_back("legacy:" + a);
  });
  world.bcast_at(sim::msec(50), 1, "m");
  world.run_until(sim::sec(2));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "client:m");
  EXPECT_EQ(order[1], "legacy:m");
}

TEST(ToClient, UnattachedProcessorsStaySilent) {
  harness::World world(ring_cfg(3, 11));
  int at_1 = 0;
  to::CallbackClient client([&](ProcId, const core::Value&) { ++at_1; });
  world.stack().attach(1, client);
  drive(world, 3);
  // Only processor 1's stream reaches the client: 6 values, once each.
  EXPECT_EQ(at_1, 6);
}

TEST(ToClient, ReattachReplacesTheClient) {
  harness::World world(ring_cfg(2, 13));
  int first = 0, second = 0;
  to::CallbackClient a([&](ProcId, const core::Value&) { ++first; });
  to::CallbackClient b([&](ProcId, const core::Value&) { ++second; });
  world.stack().attach(0, a);
  world.stack().attach(0, b);
  world.bcast_at(sim::msec(50), 0, "x");
  world.run_until(sim::sec(2));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(ToClient, HotPathMovesPayloadsInsteadOfCopying) {
  harness::World world(ring_cfg(3, 99));
  drive(world, 3);

  const auto& m = world.metrics();
  const auto* moves = m.find_counter("to.payload_moves");
  const auto* copies = m.find_counter("to.payload_copies");
  ASSERT_NE(moves, nullptr);
  ASSERT_NE(copies, nullptr);

  // 6 bcasts in a 3-member view. Moves: 2 at each origin (bcast -> delay ->
  // content) = 6*2 = 12. Deliberate copies: the BcastEvent trace (1 per
  // bcast), the BrcvEvent trace + delivered_ accessor (2 per delivery, 18
  // deliveries), and each remote receiver copying the value out of the
  // shared decode-once message (2 per bcast) = 6 + 36 + 12 = 54.
  EXPECT_EQ(moves->value(), 12u);
  EXPECT_EQ(copies->value(), 54u);
}

TEST(ToClient, LatencyHistogramMatchesDeliveries) {
  harness::World world(ring_cfg(3, 5));
  drive(world, 3);
  const auto* all = world.metrics().find_histogram("to.brcv_latency.all");
  ASSERT_NE(all, nullptr);
  EXPECT_EQ(all->count(), 18u) << "6 values delivered at 3 processors";
  EXPECT_GT(all->min(), 0) << "delivery cannot be instantaneous";
  // Per-processor series partition the total.
  std::uint64_t per = 0;
  for (ProcId p = 0; p < 3; ++p) {
    const auto* h =
        world.metrics().find_histogram("to.brcv_latency.p" + std::to_string(p));
    ASSERT_NE(h, nullptr);
    per += h->count();
  }
  EXPECT_EQ(per, all->count());
}

// The legacy shim keeps pre-Client code working without edits (the
// stack_end_to_end_test exercises this wholesale; this is the focused
// regression).
TEST(ToClient, LegacySetDeliveryAloneStillWorks) {
  harness::World world(ring_cfg(2, 3));
  std::vector<std::string> got;
  world.stack().set_delivery(
      [&](ProcId dest, ProcId, const core::Value& a) {
        if (dest == 1) got.push_back(a);
      });
  world.bcast_at(sim::msec(20), 0, "a");
  world.bcast_at(sim::msec(60), 0, "b");
  world.run_until(sim::sec(2));
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace vsg
