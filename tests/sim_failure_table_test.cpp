// Failure table: defaults, transitions, partition/heal helpers, history and
// listeners — the substrate of the good/bad/ugly model (Figure 4).

#include <gtest/gtest.h>

#include "sim/failure_table.hpp"

namespace vsg::sim {
namespace {

TEST(FailureTable, EverythingStartsGood) {
  FailureTable t(4);
  for (ProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(t.proc(p), Status::kGood);
    for (ProcId q = 0; q < 4; ++q) EXPECT_EQ(t.link(p, q), Status::kGood);
  }
  EXPECT_TRUE(t.history().empty());
}

TEST(FailureTable, SelfLinkAlwaysGood) {
  FailureTable t(2);
  EXPECT_EQ(t.link(1, 1), Status::kGood);
}

TEST(FailureTable, SetProcAndLink) {
  FailureTable t(3);
  t.set_proc(1, Status::kBad, 10);
  t.set_link(0, 2, Status::kUgly, 20);
  EXPECT_EQ(t.proc(1), Status::kBad);
  EXPECT_EQ(t.link(0, 2), Status::kUgly);
  EXPECT_EQ(t.link(2, 0), Status::kGood) << "links are directed";
}

TEST(FailureTable, SymmetricLinkHelper) {
  FailureTable t(3);
  t.set_link_sym(0, 1, Status::kBad, 5);
  EXPECT_EQ(t.link(0, 1), Status::kBad);
  EXPECT_EQ(t.link(1, 0), Status::kBad);
}

TEST(FailureTable, PartitionSetsIntraGoodInterBad) {
  FailureTable t(5);
  t.partition({{0, 1, 2}, {3, 4}}, 100);
  EXPECT_EQ(t.link(0, 1), Status::kGood);
  EXPECT_EQ(t.link(1, 2), Status::kGood);
  EXPECT_EQ(t.link(3, 4), Status::kGood);
  EXPECT_EQ(t.link(0, 3), Status::kBad);
  EXPECT_EQ(t.link(4, 2), Status::kBad);
}

TEST(FailureTable, PartitionIsolatesUnlistedProcessors) {
  FailureTable t(3);
  t.partition({{0, 1}}, 1);
  EXPECT_EQ(t.link(0, 2), Status::kBad);
  EXPECT_EQ(t.link(2, 0), Status::kBad);
  EXPECT_EQ(t.link(2, 1), Status::kBad);
  EXPECT_EQ(t.link(0, 1), Status::kGood);
}

TEST(FailureTable, HealRestoresAllLinks) {
  FailureTable t(4);
  t.partition({{0}, {1}, {2}, {3}}, 1);
  t.heal(2);
  for (ProcId p = 0; p < 4; ++p)
    for (ProcId q = 0; q < 4; ++q) EXPECT_EQ(t.link(p, q), Status::kGood);
}

TEST(FailureTable, HealDoesNotTouchProcStatus) {
  FailureTable t(2);
  t.set_proc(0, Status::kBad, 1);
  t.heal(2);
  EXPECT_EQ(t.proc(0), Status::kBad);
}

TEST(FailureTable, HistoryRecordsEveryChangeInOrder) {
  FailureTable t(3);
  t.set_proc(0, Status::kUgly, 10);
  t.set_link(1, 2, Status::kBad, 20);
  ASSERT_EQ(t.history().size(), 2u);
  EXPECT_FALSE(t.history()[0].is_link);
  EXPECT_EQ(t.history()[0].at, 10);
  EXPECT_EQ(t.history()[0].status, Status::kUgly);
  EXPECT_TRUE(t.history()[1].is_link);
  EXPECT_EQ(t.history()[1].p, 1);
  EXPECT_EQ(t.history()[1].q, 2);
}

TEST(FailureTable, PartitionOnlyRecordsActualChanges) {
  FailureTable t(3);
  t.partition({{0, 1, 2}}, 5);  // already all-good: no events
  EXPECT_TRUE(t.history().empty());
  t.partition({{0, 1}, {2}}, 6);
  EXPECT_EQ(t.history().size(), 4u);  // 0<->2 and 1<->2, both directions
}

TEST(FailureTable, ListenersFireSynchronously) {
  FailureTable t(2);
  int calls = 0;
  t.subscribe([&](const StatusEvent& ev) {
    ++calls;
    EXPECT_EQ(ev.status, Status::kBad);
  });
  t.set_link_sym(0, 1, Status::kBad, 1);
  EXPECT_EQ(calls, 2);
}

TEST(FailureTable, ToStringNames) {
  EXPECT_STREQ(to_string(Status::kGood), "good");
  EXPECT_STREQ(to_string(Status::kBad), "bad");
  EXPECT_STREQ(to_string(Status::kUgly), "ugly");
}

}  // namespace
}  // namespace vsg::sim
