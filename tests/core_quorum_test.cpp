// Quorum systems: majority, weighted, explicit — the primary-view test and
// the pairwise-intersection requirement the proofs rely on.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/quorum.hpp"

namespace vsg::core {
namespace {

TEST(MajorityQuorums, StrictMajorityRequired) {
  MajorityQuorums q(5);
  EXPECT_TRUE(q.contains_quorum({0, 1, 2}));
  EXPECT_FALSE(q.contains_quorum({0, 1}));
  EXPECT_TRUE(q.contains_quorum({0, 1, 2, 3, 4}));
  EXPECT_FALSE(q.contains_quorum({}));
}

TEST(MajorityQuorums, EvenUniverseNeedsMoreThanHalf) {
  MajorityQuorums q(4);
  EXPECT_FALSE(q.contains_quorum({0, 1})) << "half is not a majority";
  EXPECT_TRUE(q.contains_quorum({0, 1, 2}));
}

TEST(MajorityQuorums, AnyTwoMajoritiesIntersect) {
  // Structural property: |A|+|B| > n forces intersection. Spot-check n=5.
  MajorityQuorums q(5);
  const std::set<ProcId> a{0, 1, 2};
  const std::set<ProcId> b{2, 3, 4};
  EXPECT_TRUE(q.contains_quorum(a) && q.contains_quorum(b));
  std::set<ProcId> inter;
  for (ProcId p : a)
    if (b.count(p)) inter.insert(p);
  EXPECT_FALSE(inter.empty());
}

TEST(WeightedQuorums, WeightsDecide) {
  // Processor 0 is a heavyweight tie-breaker.
  WeightedQuorums q({3, 1, 1, 1});  // total 6, need > 3
  EXPECT_TRUE(q.contains_quorum({0, 1}));   // 4 > 3
  EXPECT_FALSE(q.contains_quorum({1, 2, 3}));  // 3 !> 3
  EXPECT_FALSE(q.contains_quorum({0}));     // 3 !> 3
}

TEST(WeightedQuorums, IgnoresUnknownProcessors) {
  WeightedQuorums q({1, 1, 1});
  EXPECT_FALSE(q.contains_quorum({7, 8, 9}));
}

TEST(WeightedQuorums, RejectsBadWeights) {
  EXPECT_THROW(WeightedQuorums({0, 0}), std::invalid_argument);
  EXPECT_THROW(WeightedQuorums({2, -1}), std::invalid_argument);
}

TEST(ExplicitQuorums, MembershipBySuperset) {
  ExplicitQuorums q({{0, 1}, {1, 2}});
  EXPECT_TRUE(q.contains_quorum({0, 1}));
  EXPECT_TRUE(q.contains_quorum({0, 1, 2}));
  EXPECT_FALSE(q.contains_quorum({0, 2})) << "contains no listed quorum";
}

TEST(ExplicitQuorums, RejectsDisjointFamilies) {
  EXPECT_THROW(ExplicitQuorums({{0, 1}, {2, 3}}), std::invalid_argument);
  EXPECT_THROW(ExplicitQuorums(std::vector<std::set<ProcId>>{}), std::invalid_argument);
}

TEST(ExplicitQuorums, AcceptsIntersectingFamilies) {
  EXPECT_NO_THROW(ExplicitQuorums({{0, 1}, {1, 2}, {0, 2}}));
}

TEST(QuorumSystem, Names) {
  EXPECT_EQ(MajorityQuorums(3).name(), "majority(3)");
  EXPECT_EQ(WeightedQuorums({1, 2}).name(), "weighted");
  EXPECT_EQ(ExplicitQuorums(std::vector<std::set<ProcId>>{{0}}).name(), "explicit(1)");
}

TEST(QuorumSystem, MajoritiesFactory) {
  const auto q = majorities(3);
  EXPECT_TRUE(q->contains_quorum({0, 1}));
  EXPECT_FALSE(q->contains_quorum({2}));
}

}  // namespace
}  // namespace vsg::core
