// Performance/fault-tolerance properties over the full stack: once the
// failure status stabilizes to a consistent partition whose component Q
// contains a quorum, the recorded timed trace must satisfy
// VS-property(b, d, Q) at the group interface and TO-property(b+d, d, Q)
// at the broadcast interface (Theorem 7.1). Plus randomized churn fuzzing
// with safety checked on every seed.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

// Generous analytic bounds for the token-ring back end, per Section 8:
//   b = 9*delta + max{pi + (n+3)*delta, mu},   d_impl = 3*(pi + n*delta).
sim::Time ring_b(const membership::TokenRingConfig& cfg, int n) {
  const sim::Time token = cfg.pi + (n + 3) * cfg.delta;
  return 9 * cfg.delta + std::max(token, cfg.mu);
}
sim::Time ring_d(const membership::TokenRingConfig& cfg, int n) {
  return 3 * (cfg.pi + n * cfg.delta);
}

TEST(StackProperty, StableGroupSatisfiesVSAndTOProperties) {
  WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = 61;
  World world(cfg);
  // The "partition" is the full group: all links stay good, but we issue
  // the status events so the premise of the properties is explicit.
  std::set<ProcId> q{0, 1, 2, 3};
  world.partition_at(sim::msec(100), {{0, 1, 2, 3}});
  const auto traffic = harness::steady_traffic({0, 2}, 20, sim::sec(1), sim::msec(40));
  traffic.apply(world);
  world.run_until(sim::sec(12));

  const sim::Time b = ring_b(cfg.ring, 4);
  const sim::Time d = ring_d(cfg.ring, 4);

  const auto vs = world.vs_report(q, d, sim::sec(10));
  ASSERT_TRUE(vs.stability.premise_holds) << vs.stability.why_not;
  EXPECT_TRUE(vs.views_converged);
  EXPECT_TRUE(vs.holds_with(b)) << "required l' = "
                                << (vs.required_lprime ? *vs.required_lprime : -1)
                                << " vs b = " << b;
  EXPECT_GT(vs.messages_checked, 0u);

  const auto to = world.to_report(q, d, sim::sec(10));
  ASSERT_TRUE(to.stability.premise_holds);
  EXPECT_TRUE(to.holds_with(b + d)) << "required l' = "
                                    << (to.required_lprime ? *to.required_lprime : -1)
                                    << " vs b+d = " << (b + d);
}

TEST(StackProperty, MajorityComponentSatisfiesPropertiesAfterPartition) {
  WorldConfig cfg;
  cfg.n = 5;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = 67;
  World world(cfg);
  std::set<ProcId> q{0, 1, 2};
  world.partition_at(sim::sec(1), {{0, 1, 2}, {3, 4}});
  // Traffic inside the future majority component, after stabilization.
  const auto traffic = harness::steady_traffic({0, 1}, 15, sim::sec(4), sim::msec(50));
  traffic.apply(world);
  world.run_until(sim::sec(15));

  const sim::Time b = ring_b(cfg.ring, 3);
  const sim::Time d = ring_d(cfg.ring, 3);

  const auto vs = world.vs_report(q, d, sim::sec(12));
  ASSERT_TRUE(vs.stability.premise_holds) << vs.stability.why_not;
  EXPECT_TRUE(vs.views_converged)
      << (vs.violations.empty() ? "" : vs.violations.front());
  EXPECT_TRUE(vs.holds_with(b));

  const auto to = world.to_report(q, d, sim::sec(12));
  EXPECT_TRUE(to.holds_with(b + d))
      << (to.violations.empty() ? "ok-but-late" : to.violations.front());
}

TEST(StackProperty, SpecBackendSatisfiesProperties) {
  WorldConfig cfg;
  cfg.n = 4;
  cfg.backend = Backend::kSpec;
  cfg.seed = 71;
  World world(cfg);
  std::set<ProcId> q{0, 1, 2, 3};
  world.partition_at(sim::msec(100), {{0, 1, 2, 3}});
  const auto traffic = harness::steady_traffic({1, 3}, 10, sim::sec(1), sim::msec(30));
  traffic.apply(world);
  world.run_until(sim::sec(8));

  // SpecVS: stabilization within view_form_delay + pump latency; delivery
  // within a few pump hops.
  const sim::Time b = cfg.spec_vs.view_form_delay + sim::msec(20);
  const sim::Time d = sim::msec(50);
  const auto vs = world.vs_report(q, d, sim::sec(7));
  ASSERT_TRUE(vs.stability.premise_holds);
  EXPECT_TRUE(vs.holds_with(b));
  const auto to = world.to_report(q, d, sim::sec(7));
  EXPECT_TRUE(to.holds_with(b + d));
}

class StackChurnFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackChurnFuzz, SafetyHoldsAndStabilizes) {
  const std::uint64_t seed = GetParam();
  WorldConfig cfg;
  cfg.n = 5;
  cfg.backend = Backend::kTokenRing;
  cfg.seed = seed;
  World world(cfg);
  util::Rng rng(seed * 977 + 3);

  // Random churn for 5 simulated seconds, then stabilize to a majority
  // component {0,1,2}; traffic runs throughout.
  auto churn = harness::random_churn(5, 12, sim::msec(200), sim::sec(5), {{0, 1, 2}, {3, 4}},
                                     rng);
  churn.apply(world);
  auto traffic = harness::random_traffic(5, 30, sim::msec(100), sim::sec(8), rng);
  traffic.apply(world);
  world.run_until(sim::sec(20));

  const auto to_violations = world.check_to_safety();
  EXPECT_TRUE(to_violations.empty())
      << "seed " << seed << ": " << to_violations.front();
  const auto vs_violations = world.check_vs_safety();
  EXPECT_TRUE(vs_violations.empty())
      << "seed " << seed << ": " << vs_violations.front();

  // The stabilized component must converge to one view with membership Q.
  const auto vs = world.vs_report({0, 1, 2}, ring_d(cfg.ring, 3), sim::sec(18));
  ASSERT_TRUE(vs.stability.premise_holds) << vs.stability.why_not;
  EXPECT_TRUE(vs.views_converged) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackChurnFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace vsg
