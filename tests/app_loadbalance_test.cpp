// Load balancing over raw VS: disjoint slices in stable views, at-least-
// once (never lost) work under partitions, reconciliation on merge.

#include <gtest/gtest.h>

#include "app/load_balancer.hpp"
#include "harness/world.hpp"

namespace vsg {
namespace {

using harness::Backend;
using harness::World;
using harness::WorldConfig;

WorldConfig cfg_for(Backend backend, int n, std::uint64_t seed) {
  WorldConfig cfg;
  cfg.n = n;
  cfg.backend = backend;
  cfg.seed = seed;
  return cfg;
}

class LoadBalanceTest : public ::testing::TestWithParam<Backend> {};

TEST_P(LoadBalanceTest, StableGroupDoesEachTaskExactlyOnce) {
  World world(cfg_for(GetParam(), 4, 50));
  app::LoadBalancerConfig lb_cfg;
  lb_cfg.total_tasks = 40;
  app::LoadBalancer lb(world.vs(), world.simulator(), lb_cfg);
  world.run_until(sim::sec(5));

  for (ProcId p = 0; p < 4; ++p) EXPECT_TRUE(lb.all_done(p)) << "worker " << p;
  EXPECT_EQ(lb.total_executions(), 40u) << "disjoint slices: no duplicate work";
  // Work was split evenly (40 tasks / 4 workers).
  for (ProcId p = 0; p < 4; ++p) EXPECT_EQ(lb.executed(p), 10u);
  EXPECT_TRUE(world.check_vs_safety().empty());
}

TEST_P(LoadBalanceTest, PartitionedComponentsBothFinishEverything) {
  World world(cfg_for(GetParam(), 4, 51));
  app::LoadBalancerConfig lb_cfg;
  lb_cfg.total_tasks = 20;
  app::LoadBalancer lb(world.vs(), world.simulator(), lb_cfg);
  // Partition immediately: each side re-slices over its own view and
  // completes all 20 tasks independently (at-least-once, no primary
  // needed — load balancing works in every component).
  world.partition_at(sim::msec(30), {{0, 1}, {2, 3}});
  world.run_until(sim::sec(6));

  for (ProcId p = 0; p < 4; ++p) EXPECT_TRUE(lb.all_done(p)) << "worker " << p;
  EXPECT_GT(lb.total_executions(), 20u) << "both sides worked: duplicates expected";
  EXPECT_LE(lb.total_executions(), 40u);
  EXPECT_TRUE(world.check_vs_safety().empty());
}

TEST_P(LoadBalanceTest, MergeReconcilesDoneSets) {
  World world(cfg_for(GetParam(), 4, 52));
  app::LoadBalancerConfig lb_cfg;
  lb_cfg.total_tasks = 200;
  lb_cfg.task_duration = sim::msec(30);
  app::LoadBalancer lb(world.vs(), world.simulator(), lb_cfg);
  // Partition mid-run, then heal well before the work could finish on one
  // side alone; the merged group must not redo reconciled work.
  world.partition_at(sim::msec(200), {{0, 1}, {2, 3}});
  world.heal_at(sim::sec(1));
  world.run_until(sim::sec(20));

  for (ProcId p = 0; p < 4; ++p) EXPECT_TRUE(lb.all_done(p)) << "worker " << p;
  // Duplicates only from the partition window (~2 sides x ~27 ticks), far
  // fewer than doing everything twice.
  EXPECT_LT(lb.total_executions(), 300u);
  EXPECT_TRUE(world.check_vs_safety().empty());
}

TEST_P(LoadBalanceTest, CrashedWorkerShedsItsSlice) {
  World world(cfg_for(GetParam(), 3, 53));
  app::LoadBalancerConfig lb_cfg;
  lb_cfg.total_tasks = 30;
  lb_cfg.task_duration = sim::msec(40);
  app::LoadBalancer lb(world.vs(), world.simulator(), lb_cfg);
  // Worker 2 dies almost immediately; the survivors' next view covers its
  // slice.
  world.proc_status_at(sim::msec(100), 2, sim::Status::kBad);
  world.partition_at(sim::msec(100), {{0, 1}, {2}});
  world.run_until(sim::sec(10));

  EXPECT_TRUE(lb.all_done(0));
  EXPECT_TRUE(lb.all_done(1));
  EXPECT_GE(lb.executed(0) + lb.executed(1), 28u)
      << "survivors did (nearly) all the work";
}

INSTANTIATE_TEST_SUITE_P(BothBackends, LoadBalanceTest,
                         ::testing::Values(Backend::kSpec, Backend::kTokenRing),
                         [](const auto& info) {
                           return info.param == Backend::kSpec ? "SpecVS" : "TokenRing";
                         });

}  // namespace
}  // namespace vsg
